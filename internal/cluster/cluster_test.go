package cluster

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func gbSpec(cpuMilli int64, memGB int64, gpus int) ResourceSpec {
	return ResourceSpec{CPUMilli: cpuMilli, MemBytes: memGB << 30, GPUs: gpus}
}

func TestResourceSpecArithmetic(t *testing.T) {
	a := gbSpec(1000, 2, 1)
	b := gbSpec(500, 1, 0)
	sum := a.Add(b)
	if sum.CPUMilli != 1500 || sum.MemBytes != 3<<30 || sum.GPUs != 1 {
		t.Fatalf("Add = %+v", sum)
	}
	diff := a.Sub(b)
	if diff.CPUMilli != 500 || diff.MemBytes != 1<<30 {
		t.Fatalf("Sub = %+v", diff)
	}
	if !b.Fits(a) {
		t.Fatal("b must fit in a")
	}
	if a.Fits(b) {
		t.Fatal("a must not fit in b")
	}
	if (ResourceSpec{CPUMilli: -1}).Validate() == nil {
		t.Fatal("want validation error")
	}
	if a.String() == "" {
		t.Fatal("String must render")
	}
}

func TestNodePlaceRelease(t *testing.T) {
	n := NewNode("n1", gbSpec(4000, 8, 0))
	p := &Pod{Name: "p1", Resources: gbSpec(1000, 2, 0)}
	n.place(p)
	if n.PodCount() != 1 || p.Node != "n1" {
		t.Fatal("place bookkeeping broken")
	}
	free := n.Free()
	if free.CPUMilli != 3000 || free.MemBytes != 6<<30 {
		t.Fatalf("Free = %+v", free)
	}
	n.release(p)
	if n.PodCount() != 0 || n.Allocated().CPUMilli != 0 {
		t.Fatal("release bookkeeping broken")
	}
	// Releasing twice is harmless.
	n.release(p)
	if n.Allocated().CPUMilli != 0 {
		t.Fatal("double release corrupted accounting")
	}
}

func TestCreateDeploymentAndScale(t *testing.T) {
	c := New(NewNode("n1", gbSpec(8000, 64, 0)))
	d, err := c.CreateDeployment("web", gbSpec(1000, 4, 0), 10*time.Second, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	desired, ready := d.Replicas()
	if desired != 3 || ready != 0 {
		t.Fatalf("desired=%d ready=%d", desired, ready)
	}
	// Pods become ready after cold start.
	c.Tick(5 * time.Second)
	if _, ready := d.Replicas(); ready != 0 {
		t.Fatal("pods ready before cold start")
	}
	c.Tick(10 * time.Second)
	if _, ready := d.Replicas(); ready != 3 {
		t.Fatal("pods must be ready after cold start")
	}
	// Scale down removes pods and frees resources.
	if err := c.Scale("web", 1, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if desired, _ := d.Replicas(); desired != 1 {
		t.Fatalf("desired after scale-down = %d", desired)
	}
	if got := c.AllocatedMemBytes(); got != 4<<30 {
		t.Fatalf("allocated = %d", got)
	}
	if err := c.Scale("nope", 1, 0); err == nil {
		t.Fatal("want unknown-deployment error")
	}
	if err := c.Scale("web", -1, 0); err == nil {
		t.Fatal("want negative-replica error")
	}
	if _, err := c.CreateDeployment("web", gbSpec(1, 1, 0), 0, 1, 0); err == nil {
		t.Fatal("want duplicate-deployment error")
	}
}

func TestSchedulingRespectsCapacity(t *testing.T) {
	c := New(NewNode("n1", gbSpec(2000, 4, 0)))
	if _, err := c.CreateDeployment("a", gbSpec(1000, 2, 0), 0, 2, 0); err != nil {
		t.Fatal(err)
	}
	// Node is full: a third pod must fail on a fixed cluster.
	if err := c.Scale("a", 3, 0); err == nil {
		t.Fatal("want scheduling failure on full node")
	}
}

func TestGPUScheduling(t *testing.T) {
	c := New(NewNode("g1", gbSpec(32000, 120, 1)))
	if _, err := c.CreateDeployment("dense", gbSpec(8000, 4, 1), 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Second GPU pod cannot fit (one GPU per node).
	if err := c.Scale("dense", 2, 0); err == nil {
		t.Fatal("want GPU exhaustion error")
	}
}

func TestAutoProvisioning(t *testing.T) {
	c := NewAutoProvisioned(gbSpec(4000, 16, 0))
	if _, err := c.CreateDeployment("a", gbSpec(3000, 8, 0), 0, 5, 0); err != nil {
		t.Fatal(err)
	}
	// Each node fits one 3-core pod (4 cores total): 5 nodes.
	if got := c.NodesInUse(); got != 5 {
		t.Fatalf("NodesInUse = %d, want 5", got)
	}
	// A pod larger than the template must fail.
	if _, err := c.CreateDeployment("big", gbSpec(8000, 1, 0), 0, 1, 0); err == nil {
		t.Fatal("want template-exceeded error")
	}
}

func TestBinPackingPrefersTightFit(t *testing.T) {
	c := NewAutoProvisioned(gbSpec(10000, 100, 0))
	if _, err := c.CreateDeployment("a", gbSpec(6000, 10, 0), 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	// 4-core pod fits next to the 6-core pod on the same node.
	if _, err := c.CreateDeployment("b", gbSpec(4000, 10, 0), 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.NodesInUse(); got != 1 {
		t.Fatalf("NodesInUse = %d, want 1 (pack together)", got)
	}
}

func TestDeploymentsListing(t *testing.T) {
	c := NewAutoProvisioned(gbSpec(64000, 384, 0))
	_, _ = c.CreateDeployment("b", gbSpec(100, 1, 0), 0, 1, 0)
	_, _ = c.CreateDeployment("a", gbSpec(100, 1, 0), 0, 1, 0)
	names := c.Deployments()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Deployments = %v", names)
	}
	if _, ok := c.Deployment("a"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := c.Deployment("zz"); ok {
		t.Fatal("phantom deployment")
	}
}

func TestMaxReplicasCap(t *testing.T) {
	c := NewAutoProvisioned(gbSpec(64000, 384, 0))
	d, err := c.CreateDeployment("a", gbSpec(100, 1, 0), 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.MaxReplicas = 3
	if err := c.Scale("a", 10, 0); err != nil {
		t.Fatal(err)
	}
	if desired, _ := d.Replicas(); desired != 3 {
		t.Fatalf("desired = %d, want capped 3", desired)
	}
}

// --- HPA tests ---

func TestHPAPolicyValidation(t *testing.T) {
	good := HPAPolicy{Deployment: "d", Kind: MetricQPSPerReplica, Target: 10, MinReplicas: 1}
	if _, err := NewHPA(good); err != nil {
		t.Fatal(err)
	}
	cases := []HPAPolicy{
		{Kind: MetricQPSPerReplica, Target: 10, MinReplicas: 1},                           // no deployment
		{Deployment: "d", Kind: "cpu", Target: 10, MinReplicas: 1},                        // bad kind
		{Deployment: "d", Kind: MetricLatency, Target: 0, MinReplicas: 1},                 // bad target
		{Deployment: "d", Kind: MetricLatency, Target: 1, MinReplicas: 0},                 // bad min
		{Deployment: "d", Kind: MetricLatency, Target: 1, MinReplicas: 5, MaxReplicas: 2}, // max < min
		{Deployment: "d", Kind: MetricLatency, Target: 1, MinReplicas: 1, Tolerance: -1},  // bad tolerance
	}
	for i, p := range cases {
		if _, err := NewHPA(p); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func newTestHPA(t *testing.T, kind MetricKind, target float64) (*Cluster, *HPA) {
	t.Helper()
	c := NewAutoProvisioned(gbSpec(64000, 384, 0))
	if _, err := c.CreateDeployment("d", gbSpec(100, 1, 0), 0, 2, 0); err != nil {
		t.Fatal(err)
	}
	h, err := NewHPA(HPAPolicy{
		Deployment: "d", Kind: kind, Target: target,
		MinReplicas: 1, MaxReplicas: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, h
}

func TestHPAScalesUpOnQPS(t *testing.T) {
	c, h := newTestHPA(t, MetricQPSPerReplica, 10)
	// 2 replicas at 50 QPS = 25/replica vs target 10: want ceil(2*2.5)=5,
	// but the rate limit allows at most max(2*2, 2+4)=6, so 5 stands.
	got, err := h.Evaluate(c, MetricSample{OfferedQPS: 50}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("desired = %d, want 5", got)
	}
}

func TestHPARateLimitsScaleUp(t *testing.T) {
	c, h := newTestHPA(t, MetricQPSPerReplica, 1)
	// Demand implies 100 replicas, but one step allows max(4, 6)=6.
	got, err := h.Evaluate(c, MetricSample{OfferedQPS: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("desired = %d, want rate-limited 6", got)
	}
}

func TestHPAToleranceDeadBand(t *testing.T) {
	c, h := newTestHPA(t, MetricQPSPerReplica, 10)
	// 2 replicas at 21 QPS = 10.5/replica: ratio 1.05 within 0.1 band.
	got, err := h.Evaluate(c, MetricSample{OfferedQPS: 21}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("desired = %d, want unchanged 2", got)
	}
}

func TestHPAScaleDownStabilization(t *testing.T) {
	c := NewAutoProvisioned(gbSpec(64000, 384, 0))
	if _, err := c.CreateDeployment("d", gbSpec(100, 1, 0), 0, 8, 0); err != nil {
		t.Fatal(err)
	}
	h, err := NewHPA(HPAPolicy{
		Deployment: "d", Kind: MetricQPSPerReplica, Target: 10,
		MinReplicas: 1, ScaleDownStabilization: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Demand only needs 2 replicas, but stabilization holds 8.
	got, _ := h.Evaluate(c, MetricSample{OfferedQPS: 20}, 0)
	if got != 8 {
		t.Fatalf("scale-down before stabilization: %d", got)
	}
	got, _ = h.Evaluate(c, MetricSample{OfferedQPS: 20}, 30*time.Second)
	if got != 8 {
		t.Fatalf("scale-down mid-window: %d", got)
	}
	got, _ = h.Evaluate(c, MetricSample{OfferedQPS: 20}, 61*time.Second)
	if got != 2 {
		t.Fatalf("scale-down after window: %d, want 2", got)
	}
}

func TestHPAScaleDownWindowTracksHighestDemand(t *testing.T) {
	c := NewAutoProvisioned(gbSpec(64000, 384, 0))
	_, _ = c.CreateDeployment("d", gbSpec(100, 1, 0), 0, 8, 0)
	h, _ := NewHPA(HPAPolicy{
		Deployment: "d", Kind: MetricQPSPerReplica, Target: 10,
		MinReplicas: 1, ScaleDownStabilization: time.Minute,
	})
	_, _ = h.Evaluate(c, MetricSample{OfferedQPS: 20}, 0)              // wants 2
	_, _ = h.Evaluate(c, MetricSample{OfferedQPS: 50}, 30*time.Second) // wants 5
	got, _ := h.Evaluate(c, MetricSample{OfferedQPS: 20}, 61*time.Second)
	if got != 5 {
		t.Fatalf("stabilized scale-down = %d, want highest demand 5", got)
	}
}

func TestHPALatencyScaleUp(t *testing.T) {
	c, h := newTestHPA(t, MetricLatency, 0.26)
	got, err := h.Evaluate(c, MetricSample{LatencySeconds: 0.52}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 { // ceil(2 * 2.0) = 4
		t.Fatalf("desired = %d, want 4", got)
	}
}

func TestHPALatencyScaleDownOneStep(t *testing.T) {
	c := NewAutoProvisioned(gbSpec(64000, 384, 0))
	_, _ = c.CreateDeployment("d", gbSpec(100, 1, 0), 0, 8, 0)
	h, _ := NewHPA(HPAPolicy{
		Deployment: "d", Kind: MetricLatency, Target: 0.26, MinReplicas: 1,
	})
	// Very low latency implies a tiny desired count, but latency-kind
	// deployments shed only one replica per period.
	got, _ := h.Evaluate(c, MetricSample{LatencySeconds: 0.01}, 0)
	if got != 7 {
		t.Fatalf("desired = %d, want 7 (one-step shed)", got)
	}
}

func TestHPALatencyQPSGuardVetoesScaleDown(t *testing.T) {
	c := NewAutoProvisioned(gbSpec(64000, 384, 0))
	_, _ = c.CreateDeployment("d", gbSpec(100, 1, 0), 0, 4, 0)
	h, _ := NewHPA(HPAPolicy{
		Deployment: "d", Kind: MetricLatency, Target: 0.26, MinReplicas: 1,
		QPSGuard: 25,
	})
	// 4 replicas at 80 QPS: shedding to 3 gives 26.7/replica > 0.85*25,
	// so the guard vetoes.
	got, _ := h.Evaluate(c, MetricSample{OfferedQPS: 80, LatencySeconds: 0.01}, 0)
	if got != 4 {
		t.Fatalf("desired = %d, want guard veto at 4", got)
	}
	// At 20 QPS the shed is safe.
	got, _ = h.Evaluate(c, MetricSample{OfferedQPS: 20, LatencySeconds: 0.01}, 0)
	if got != 3 {
		t.Fatalf("desired = %d, want 3", got)
	}
}

func TestHPAUnknownDeployment(t *testing.T) {
	c := NewAutoProvisioned(gbSpec(1000, 8, 0))
	h, _ := NewHPA(HPAPolicy{Deployment: "ghost", Kind: MetricQPSPerReplica, Target: 1, MinReplicas: 1})
	if _, err := h.Evaluate(c, MetricSample{}, 0); err == nil {
		t.Fatal("want unknown-deployment error")
	}
}

func TestHPARespectsMinMax(t *testing.T) {
	c := NewAutoProvisioned(gbSpec(64000, 384, 0))
	_, _ = c.CreateDeployment("d", gbSpec(100, 1, 0), 0, 2, 0)
	h, _ := NewHPA(HPAPolicy{
		Deployment: "d", Kind: MetricQPSPerReplica, Target: 10,
		MinReplicas: 2, MaxReplicas: 3,
	})
	got, _ := h.Evaluate(c, MetricSample{OfferedQPS: 1000}, 0)
	if got != 3 {
		t.Fatalf("desired = %d, want max 3", got)
	}
	got, _ = h.Evaluate(c, MetricSample{OfferedQPS: 0}, time.Hour)
	if got != 2 {
		t.Fatalf("desired = %d, want min 2", got)
	}
}

func TestFailNodeReschedules(t *testing.T) {
	c := NewAutoProvisioned(gbSpec(4000, 16, 0))
	d, err := c.CreateDeployment("a", gbSpec(3000, 8, 0), 10*time.Second, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Tick(10 * time.Second)
	if _, ready := d.Replicas(); ready != 3 {
		t.Fatalf("ready = %d", ready)
	}
	victim := c.Nodes()[0].Name
	rescheduled, lost, err := c.FailNode(victim, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 0 {
		t.Fatalf("lost pods %v under auto-provisioning", lost)
	}
	if len(rescheduled) != 1 {
		t.Fatalf("rescheduled = %v, want the victim's single pod", rescheduled)
	}
	// The evicted pod restarts its cold start.
	desired, ready := d.Replicas()
	if desired != 3 || ready != 2 {
		t.Fatalf("desired=%d ready=%d after failure", desired, ready)
	}
	c.Tick(30 * time.Second)
	if _, ready := d.Replicas(); ready != 3 {
		t.Fatal("evicted pod must become ready after its cold start")
	}
}

func TestFailNodeCapacityExhausted(t *testing.T) {
	// Fixed two-node cluster, both full: evicted pods are lost.
	c := New(NewNode("n1", gbSpec(1000, 4, 0)), NewNode("n2", gbSpec(1000, 4, 0)))
	d, err := c.CreateDeployment("a", gbSpec(1000, 4, 0), 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, lost, err := c.FailNode("n1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 1 {
		t.Fatalf("lost = %v, want one pod", lost)
	}
	if desired, _ := d.Replicas(); desired != 1 {
		t.Fatalf("desired = %d after losing a replica", desired)
	}
	// Scaling back up restores the replica on remaining capacity... which
	// is full, so it errors.
	if err := c.Scale("a", 2, 0); err == nil {
		t.Fatal("want scheduling failure on a full cluster")
	}
}

func TestFailNodeUnknown(t *testing.T) {
	c := NewAutoProvisioned(gbSpec(1000, 4, 0))
	if _, _, err := c.FailNode("ghost", 0); err == nil {
		t.Fatal("want unknown-node error")
	}
}

// Property: no scheduling sequence may overcommit a node — allocations
// stay within capacity for every node at every step.
func TestSchedulingNeverOvercommitsProperty(t *testing.T) {
	f := func(seed uint64, nPods uint8) bool {
		rng := seed
		next := func(mod int64) int64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			v := int64(rng % uint64(mod))
			if v < 0 {
				v = -v
			}
			return v
		}
		c := NewAutoProvisioned(gbSpec(8000, 32, 1))
		pods := int(nPods%24) + 1
		for i := 0; i < pods; i++ {
			res := ResourceSpec{
				CPUMilli: next(8000) + 1,
				MemBytes: (next(32) + 1) << 30,
				GPUs:     int(next(2)),
			}
			name := fmt.Sprintf("d%d", i)
			if _, err := c.CreateDeployment(name, res, 0, 1, 0); err != nil {
				return false
			}
		}
		for _, n := range c.Nodes() {
			alloc := n.Allocated()
			if alloc.CPUMilli > n.Capacity.CPUMilli ||
				alloc.MemBytes > n.Capacity.MemBytes ||
				alloc.GPUs > n.Capacity.GPUs {
				return false
			}
			if alloc.CPUMilli < 0 || alloc.MemBytes < 0 || alloc.GPUs < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling a deployment up then back down restores the cluster's
// allocated memory exactly (no resource leaks).
func TestScaleUpDownConservesResourcesProperty(t *testing.T) {
	f := func(upRaw, downRaw uint8) bool {
		c := NewAutoProvisioned(gbSpec(64000, 384, 0))
		base := 2
		if _, err := c.CreateDeployment("d", gbSpec(500, 2, 0), 0, base, 0); err != nil {
			return false
		}
		before := c.AllocatedMemBytes()
		up := base + int(upRaw%20)
		if err := c.Scale("d", up, 0); err != nil {
			return false
		}
		if err := c.Scale("d", base, 0); err != nil {
			return false
		}
		return c.AllocatedMemBytes() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRepartitionPolicyValidate(t *testing.T) {
	good := &RepartitionPolicy{MinSkew: 0.5, MinRequests: 100, MinInterval: time.Minute}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*RepartitionPolicy{
		{MinSkew: 0},
		{MinSkew: 1.5},
		{MinSkew: 0.5, MinRequests: -1},
		{MinSkew: 0.5, MinInterval: -time.Second},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("policy %+v must not validate", bad)
		}
	}
}

func TestRepartitionPolicyTrigger(t *testing.T) {
	p := &RepartitionPolicy{MinSkew: 0.5, MinRequests: 100, MinInterval: time.Minute}
	now := time.Unix(1000, 0)
	// Healthy skew (strongly concentrated utility) never fires.
	if p.ShouldRepartition(0.8, 500, now) {
		t.Fatal("healthy skew fired")
	}
	// A flattened profile fires only after the warm-up request count.
	if p.ShouldRepartition(0.1, 50, now) {
		t.Fatal("fired during warm-up")
	}
	if !p.ShouldRepartition(0.1, 500, now) {
		t.Fatal("stale epoch did not fire")
	}
	// Re-firing is suppressed inside MinInterval, allowed after it.
	if p.ShouldRepartition(0.1, 500, now.Add(30*time.Second)) {
		t.Fatal("re-fired inside MinInterval")
	}
	if !p.ShouldRepartition(0.1, 500, now.Add(2*time.Minute)) {
		t.Fatal("did not re-fire after MinInterval")
	}
}

func TestRepartitionPolicyForget(t *testing.T) {
	p := &RepartitionPolicy{MinSkew: 0.5, MinRequests: 0, MinInterval: time.Hour,
		MinIntervalCached: time.Minute}
	now := time.Unix(1000, 0)
	if !p.ShouldRepartitionModel("a", 0.1, 10, now) {
		t.Fatal("model a should fire")
	}
	p.NoteSwap("a", true)
	if p.ShouldRepartitionModel("a", 0.1, 10, now.Add(time.Second)) {
		t.Fatal("model a re-fired inside its cached interval")
	}
	// Undeploying the model forgets its firing time AND its cheap-swap
	// flag: a redeployed "a" fires immediately and is throttled on the
	// full interval again (its first swap hasn't happened yet).
	p.Forget("a")
	if !p.ShouldRepartitionModel("a", 0.1, 10, now.Add(2*time.Second)) {
		t.Fatal("forgotten model inherited the retired firing time")
	}
	if p.ShouldRepartitionModel("a", 0.1, 10, now.Add(2*time.Minute)) {
		t.Fatal("forgotten model kept the retired cheap-swap flag (cached interval applied)")
	}
	// Forgetting an unknown model is a no-op.
	p.Forget("ghost")
	// Other models' state is untouched.
	if !p.ShouldRepartitionModel("b", 0.1, 10, now) {
		t.Fatal("model b throttled by forgetting a")
	}
}
