package cluster

import (
	"fmt"
	"sort"
	"time"
)

// Cluster is the orchestration state: a pool of nodes and the pods
// scheduled onto them. A fixed-size cluster schedules onto the provisioned
// nodes only; an auto-provisioning cluster (the "how many servers do we
// need" mode behind Figs. 15 and 18) adds nodes of a template capacity
// whenever a pod does not fit.
type Cluster struct {
	nodes        []*Node
	pods         map[string]*Pod
	deployments  map[string]*Deployment
	autoTemplate *ResourceSpec // non-nil enables auto-provisioning
	nextNodeID   int
	nextPodID    int
}

// New creates a cluster with the given pre-provisioned nodes.
func New(nodes ...*Node) *Cluster {
	c := &Cluster{
		pods:        make(map[string]*Pod),
		deployments: make(map[string]*Deployment),
	}
	c.nodes = append(c.nodes, nodes...)
	return c
}

// NewAutoProvisioned creates a cluster that grows on demand with nodes of
// the template capacity — the capacity-planning mode used to count servers.
func NewAutoProvisioned(template ResourceSpec) *Cluster {
	c := New()
	t := template
	c.autoTemplate = &t
	return c
}

// AddNodes provisions n identical nodes.
func (c *Cluster) AddNodes(n int, capacity ResourceSpec) {
	for i := 0; i < n; i++ {
		c.nextNodeID++
		c.nodes = append(c.nodes, NewNode(fmt.Sprintf("node-%d", c.nextNodeID), capacity))
	}
}

// Nodes returns the provisioned nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// NodesInUse returns the number of nodes hosting at least one pod — the
// server count of Figs. 15 and 18.
func (c *Cluster) NodesInUse() int {
	n := 0
	for _, node := range c.nodes {
		if node.PodCount() > 0 {
			n++
		}
	}
	return n
}

// AllocatedMemBytes sums the memory reserved by all scheduled pods.
func (c *Cluster) AllocatedMemBytes() int64 {
	var total int64
	for _, node := range c.nodes {
		total += node.Allocated().MemBytes
	}
	return total
}

// schedule places the pod on the first node with room, preferring the
// most-allocated node that still fits (best-fit-decreasing keeps server
// counts tight, mirroring the bin-packing the Kubernetes scheduler's
// default scoring approximates). Auto-provisioning clusters grow when
// nothing fits.
func (c *Cluster) schedule(p *Pod) error {
	if err := p.Resources.Validate(); err != nil {
		return err
	}
	candidates := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if p.Resources.Fits(n.Free()) {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) > 0 {
		sort.Slice(candidates, func(i, j int) bool {
			fi, fj := candidates[i].Free(), candidates[j].Free()
			if fi.MemBytes != fj.MemBytes {
				return fi.MemBytes < fj.MemBytes // tightest memory fit first
			}
			return candidates[i].Name < candidates[j].Name
		})
		candidates[0].place(p)
		return nil
	}
	if c.autoTemplate == nil {
		return fmt.Errorf("cluster: no node fits pod %s (%s)", p.Name, p.Resources)
	}
	if !p.Resources.Fits(*c.autoTemplate) {
		return fmt.Errorf("cluster: pod %s (%s) exceeds node template (%s)",
			p.Name, p.Resources, *c.autoTemplate)
	}
	c.nextNodeID++
	node := NewNode(fmt.Sprintf("node-%d", c.nextNodeID), *c.autoTemplate)
	c.nodes = append(c.nodes, node)
	node.place(p)
	return nil
}

// Deployment manages a replica set of identical pods.
type Deployment struct {
	Name      string
	Resources ResourceSpec
	// ColdStart is how long a new pod takes to become Ready
	// (parameter-load dominated; Sec. VI-D).
	ColdStart time.Duration
	// MaxReplicas caps scaling (0 = unlimited).
	MaxReplicas int

	pods []*Pod
}

// CreateDeployment registers a deployment and scales it to replicas pods
// at virtual time now.
func (c *Cluster) CreateDeployment(name string, res ResourceSpec, coldStart time.Duration, replicas int, now time.Duration) (*Deployment, error) {
	if _, exists := c.deployments[name]; exists {
		return nil, fmt.Errorf("cluster: deployment %q already exists", name)
	}
	d := &Deployment{Name: name, Resources: res, ColdStart: coldStart}
	c.deployments[name] = d
	if err := c.Scale(name, replicas, now); err != nil {
		return nil, err
	}
	return d, nil
}

// Deployment returns a registered deployment.
func (c *Cluster) Deployment(name string) (*Deployment, bool) {
	d, ok := c.deployments[name]
	return d, ok
}

// Deployments lists deployment names in sorted order.
func (c *Cluster) Deployments() []string {
	names := make([]string, 0, len(c.deployments))
	for n := range c.deployments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Scale adjusts a deployment to the desired replica count at virtual time
// now. Scale-ups create Starting pods that become Ready after ColdStart;
// scale-downs remove the newest pods first (they are least likely to be
// Ready, minimising serving disruption).
func (c *Cluster) Scale(name string, replicas int, now time.Duration) error {
	d, ok := c.deployments[name]
	if !ok {
		return fmt.Errorf("cluster: unknown deployment %q", name)
	}
	if replicas < 0 {
		return fmt.Errorf("cluster: negative replica count %d", replicas)
	}
	if d.MaxReplicas > 0 && replicas > d.MaxReplicas {
		replicas = d.MaxReplicas
	}
	for len(d.pods) < replicas {
		c.nextPodID++
		p := &Pod{
			Name:       fmt.Sprintf("%s-%d", name, c.nextPodID),
			Deployment: name,
			Resources:  d.Resources,
			Phase:      PodStarting,
			ReadyAt:    now + d.ColdStart,
		}
		if err := c.schedule(p); err != nil {
			return err
		}
		c.pods[p.Name] = p
		d.pods = append(d.pods, p)
	}
	for len(d.pods) > replicas {
		p := d.pods[len(d.pods)-1]
		d.pods = d.pods[:len(d.pods)-1]
		c.removePod(p)
	}
	return nil
}

func (c *Cluster) removePod(p *Pod) {
	for _, n := range c.nodes {
		if n.Name == p.Node {
			n.release(p)
			break
		}
	}
	p.Phase = PodTerminating
	delete(c.pods, p.Name)
}

// Tick advances pod lifecycles to virtual time now (Starting -> Ready).
func (c *Cluster) Tick(now time.Duration) {
	for _, p := range c.pods {
		if p.Phase == PodStarting && now >= p.ReadyAt {
			p.Phase = PodReady
		}
	}
}

// FailNode removes a node from the cluster at virtual time now: its pods
// are evicted and rescheduled onto the remaining capacity (or onto fresh
// nodes under auto-provisioning), restarting their cold-start timers —
// the node-loss behaviour a Kubernetes ReplicaSet recovers from. Pods that
// cannot be rescheduled are dropped from their deployments and reported.
func (c *Cluster) FailNode(name string, now time.Duration) (rescheduled, lost []string, err error) {
	idx := -1
	var node *Node
	for i, n := range c.nodes {
		if n.Name == name {
			idx, node = i, n
			break
		}
	}
	if node == nil {
		return nil, nil, fmt.Errorf("cluster: unknown node %q", name)
	}
	var evicted []*Pod
	for _, p := range node.pods {
		evicted = append(evicted, p)
	}
	sort.Slice(evicted, func(i, j int) bool { return evicted[i].Name < evicted[j].Name })
	for _, p := range evicted {
		node.release(p)
	}
	c.nodes = append(c.nodes[:idx], c.nodes[idx+1:]...)

	for _, p := range evicted {
		d := c.deployments[p.Deployment]
		p.Phase = PodStarting
		if d != nil {
			p.ReadyAt = now + d.ColdStart
		}
		if err := c.schedule(p); err != nil {
			// No capacity anywhere: the replica is lost until the next
			// scale-up re-creates it.
			lost = append(lost, p.Name)
			delete(c.pods, p.Name)
			if d != nil {
				for i, dp := range d.pods {
					if dp == p {
						d.pods = append(d.pods[:i], d.pods[i+1:]...)
						break
					}
				}
			}
			continue
		}
		rescheduled = append(rescheduled, p.Name)
	}
	return rescheduled, lost, nil
}

// Replicas returns desired (scheduled) and ready replica counts.
func (d *Deployment) Replicas() (desired, ready int) {
	desired = len(d.pods)
	for _, p := range d.pods {
		if p.Phase == PodReady {
			ready++
		}
	}
	return desired, ready
}

// Pods returns the deployment's pods (shared slice; do not mutate).
func (d *Deployment) Pods() []*Pod { return d.pods }
