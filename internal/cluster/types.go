// Package cluster is the Kubernetes substrate: nodes with finite CPU,
// memory and GPU capacity, pods with resource requests, a first-fit
// bin-packing scheduler, deployments with desired/ready replica counts and
// cold-start delays, and Horizontal Pod Autoscaler controllers with the
// two target styles the paper configures (per-replica QPS thresholds for
// sparse shards, latency thresholds at 65% of SLA for dense shards,
// Sec. IV-D).
package cluster

import (
	"fmt"
	"time"
)

// ResourceSpec is a pod resource request or node capacity.
type ResourceSpec struct {
	CPUMilli int64 // millicores
	MemBytes int64
	GPUs     int
}

// Add returns r + other.
func (r ResourceSpec) Add(other ResourceSpec) ResourceSpec {
	return ResourceSpec{
		CPUMilli: r.CPUMilli + other.CPUMilli,
		MemBytes: r.MemBytes + other.MemBytes,
		GPUs:     r.GPUs + other.GPUs,
	}
}

// Sub returns r - other.
func (r ResourceSpec) Sub(other ResourceSpec) ResourceSpec {
	return ResourceSpec{
		CPUMilli: r.CPUMilli - other.CPUMilli,
		MemBytes: r.MemBytes - other.MemBytes,
		GPUs:     r.GPUs - other.GPUs,
	}
}

// Fits reports whether a request r fits within the free capacity.
func (r ResourceSpec) Fits(free ResourceSpec) bool {
	return r.CPUMilli <= free.CPUMilli && r.MemBytes <= free.MemBytes && r.GPUs <= free.GPUs
}

// Validate rejects negative requests.
func (r ResourceSpec) Validate() error {
	if r.CPUMilli < 0 || r.MemBytes < 0 || r.GPUs < 0 {
		return fmt.Errorf("cluster: negative resource spec %+v", r)
	}
	return nil
}

// String renders the spec compactly.
func (r ResourceSpec) String() string {
	return fmt.Sprintf("cpu=%dm mem=%.2fGB gpu=%d", r.CPUMilli, float64(r.MemBytes)/(1<<30), r.GPUs)
}

// PodPhase is the lifecycle state of a pod.
type PodPhase string

// Pod lifecycle phases (a deliberately reduced subset of Kubernetes').
const (
	PodPending     PodPhase = "Pending"     // accepted, not yet placed
	PodStarting    PodPhase = "Starting"    // placed, loading parameters
	PodReady       PodPhase = "Ready"       // serving
	PodTerminating PodPhase = "Terminating" // draining before removal
)

// Pod is one container replica.
type Pod struct {
	Name       string
	Deployment string
	Resources  ResourceSpec
	Node       string // assigned node name, "" while pending
	Phase      PodPhase
	// ReadyAt is the virtual time the pod finishes cold start.
	ReadyAt time.Duration
}

// Node is one physical server.
type Node struct {
	Name     string
	Capacity ResourceSpec
	alloc    ResourceSpec
	pods     map[string]*Pod
}

// NewNode creates an empty node.
func NewNode(name string, capacity ResourceSpec) *Node {
	return &Node{Name: name, Capacity: capacity, pods: make(map[string]*Pod)}
}

// Free returns the unallocated capacity.
func (n *Node) Free() ResourceSpec { return n.Capacity.Sub(n.alloc) }

// Allocated returns the currently reserved resources.
func (n *Node) Allocated() ResourceSpec { return n.alloc }

// PodCount returns the number of pods placed on the node.
func (n *Node) PodCount() int { return len(n.pods) }

// place reserves resources for the pod; the caller checked Fits.
func (n *Node) place(p *Pod) {
	n.alloc = n.alloc.Add(p.Resources)
	n.pods[p.Name] = p
	p.Node = n.Name
}

// release frees the pod's resources.
func (n *Node) release(p *Pod) {
	if _, ok := n.pods[p.Name]; !ok {
		return
	}
	n.alloc = n.alloc.Sub(p.Resources)
	delete(n.pods, p.Name)
	p.Node = ""
}
