package cluster

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// MetricKind selects the HPA target style.
type MetricKind string

// The two HPA target styles ElasticRec configures (Sec. IV-D).
const (
	// MetricQPSPerReplica scales so each replica carries at most Target
	// queries/sec — the throughput-centric target used for sparse
	// embedding shards, with Target set to the shard's stress-tested
	// QPSmax.
	MetricQPSPerReplica MetricKind = "qps-per-replica"
	// MetricLatency scales to keep the observed tail latency below
	// Target seconds — the latency-centric target used for dense
	// shards, with Target = 65% of the SLA.
	MetricLatency MetricKind = "latency"
)

// HPAPolicy configures one autoscaler.
type HPAPolicy struct {
	Deployment string
	Kind       MetricKind
	// Target is queries/sec/replica (QPS kind) or seconds (latency kind).
	Target float64
	// MinReplicas/MaxReplicas bound the scaling range.
	MinReplicas, MaxReplicas int
	// Tolerance suppresses scaling when the metric ratio is within
	// 1 +/- Tolerance (Kubernetes defaults to 0.1).
	Tolerance float64
	// QPSGuard (latency kind only, optional) is the per-replica capacity
	// estimate: scale-down is vetoed when it would push per-replica load
	// above 85% of this guard. A latency target alone under-provisions —
	// queueing latency stays low until the knee and then explodes — so
	// production latency SLOs are paired with a utilization floor.
	QPSGuard float64
	// ScaleDownStabilization delays scale-downs until the lower demand
	// has persisted (Kubernetes defaults to 5 minutes; the paper's
	// 30-minute experiment uses a shorter window).
	ScaleDownStabilization time.Duration
}

// Validate checks policy invariants.
func (p HPAPolicy) Validate() error {
	if p.Deployment == "" {
		return fmt.Errorf("cluster: HPA policy needs a deployment")
	}
	if p.Kind != MetricQPSPerReplica && p.Kind != MetricLatency {
		return fmt.Errorf("cluster: unknown HPA metric kind %q", p.Kind)
	}
	if p.Target <= 0 {
		return fmt.Errorf("cluster: HPA target must be positive, got %v", p.Target)
	}
	if p.MinReplicas < 1 {
		return fmt.Errorf("cluster: MinReplicas must be >= 1, got %d", p.MinReplicas)
	}
	if p.MaxReplicas > 0 && p.MaxReplicas < p.MinReplicas {
		return fmt.Errorf("cluster: MaxReplicas %d < MinReplicas %d", p.MaxReplicas, p.MinReplicas)
	}
	if p.Tolerance < 0 {
		return fmt.Errorf("cluster: negative tolerance %v", p.Tolerance)
	}
	return nil
}

// RepartitionPolicy decides when a live deployment's partition plan has
// gone stale and should be re-planned from a fresh profiling window. It is
// the control-plane counterpart of the HPA policies above: HPAs adjust
// replica counts within a plan, a RepartitionPolicy decides when the plan
// itself must be swapped (Sec. IV-B's re-profiling loop). The signal is
// the per-shard memory-utility profile of Fig. 14: a hotness-aligned plan
// is strongly skewed — the small hot shard saturates its rows while the
// big cold shard stays barely touched — so when traffic hotness drifts
// away from the boundaries the plan was cut for, accesses spread out and
// the utility profile flattens. The trigger fires when the observed skew
// (max - min utility across a table's shards) falls below MinSkew.
//
// One policy can govern several models of a multi-model deployment:
// warm-up and re-trigger suppression are tracked per model name (see
// ShouldRepartitionModel), so model A firing never consumes model B's
// interval — each variant repartitions on its own cadence.
type RepartitionPolicy struct {
	// MinSkew is the smallest healthy utility spread (in (0, 1)); an
	// epoch whose skew has flattened below it is considered stale.
	MinSkew float64
	// MinRequests is the warm-up: the epoch must have served at least
	// this many requests before its utility profile is meaningful. The
	// unit is dense-shard dispatches — with dynamic batching enabled, a
	// fused batch of several client requests counts once, so size the
	// warm-up against the expected fusion factor.
	MinRequests int64
	// MinInterval suppresses re-triggering the same model while its fresh
	// plan warms up.
	MinInterval time.Duration
	// MinIntervalCached, when positive, replaces MinInterval for a model
	// whose previous swap was cheap — served entirely from the serving
	// layer's plan cache (memoized preprocessing, every shard service
	// reused). MinInterval exists partly to amortize the control-plane
	// cost of a cold rebuild; a cache-hit swap is nearly free, so the
	// trigger may fire again sooner.
	MinIntervalCached time.Duration

	mu sync.Mutex
	// lastFire[model] is when that model's trigger last fired; absence
	// means it never has.
	lastFire map[string]time.Time
	// lastCheap[model] is whether that model's last executed swap was
	// cheap (see NoteSwap).
	lastCheap map[string]bool
}

// Validate checks policy invariants.
func (p *RepartitionPolicy) Validate() error {
	if p.MinSkew <= 0 || p.MinSkew >= 1 {
		return fmt.Errorf("cluster: repartition skew floor must be in (0,1), got %v", p.MinSkew)
	}
	if p.MinRequests < 0 {
		return fmt.Errorf("cluster: negative repartition warm-up %d", p.MinRequests)
	}
	if p.MinInterval < 0 {
		return fmt.Errorf("cluster: negative repartition interval %v", p.MinInterval)
	}
	if p.MinIntervalCached < 0 {
		return fmt.Errorf("cluster: negative cached repartition interval %v", p.MinIntervalCached)
	}
	return nil
}

// Forget drops every piece of per-model state the policy holds for the
// named model — its last firing time and its cheap-swap flag. The serving
// control plane calls this when a model is undeployed: per-variant control
// loops start and stop as models come and go, and a name redeployed later
// must start from a clean slate instead of inheriting the retired model's
// firing history (which would wrongly throttle — or wrongly accelerate —
// the new model's first repartition).
func (p *RepartitionPolicy) Forget(model string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.lastFire, model)
	delete(p.lastCheap, model)
}

// NoteSwap records the outcome of a model's executed swap: cheap means the
// serving layer reported a full plan-cache hit (no preprocessing, no shard
// builds), making the model eligible for the shorter MinIntervalCached on
// its next trigger. Called by the repartition loop after every successful
// swap.
func (p *RepartitionPolicy) NoteSwap(model string, cheap bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastCheap == nil {
		p.lastCheap = make(map[string]bool)
	}
	p.lastCheap[model] = cheap
}

// ShouldRepartition reports whether the epoch's flattened utility skew
// justifies a plan swap at wall time now (after served requests in the
// epoch), and records the firing time when it does. Single-model
// convenience for ShouldRepartitionModel with an empty model name.
func (p *RepartitionPolicy) ShouldRepartition(skew float64, served int64, now time.Time) bool {
	return p.ShouldRepartitionModel("", skew, served, now)
}

// ShouldRepartitionModel is the per-model trigger: it evaluates the named
// model's skew and warm-up against the shared thresholds but keeps the
// firing/interval state per model, so concurrent variants sharing one
// policy are throttled independently.
func (p *RepartitionPolicy) ShouldRepartitionModel(model string, skew float64, served int64, now time.Time) bool {
	if served < p.MinRequests || skew >= p.MinSkew {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	interval := p.MinInterval
	if p.MinIntervalCached > 0 && p.lastCheap[model] {
		interval = p.MinIntervalCached
	}
	if last, fired := p.lastFire[model]; fired && now.Sub(last) < interval {
		return false
	}
	if p.lastFire == nil {
		p.lastFire = make(map[string]time.Time)
	}
	p.lastFire[model] = now
	return true
}

// MetricSample is one control-loop observation for a deployment.
type MetricSample struct {
	// OfferedQPS is the aggregate load directed at the deployment.
	OfferedQPS float64
	// LatencySeconds is the observed tail latency of the deployment.
	LatencySeconds float64
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// HPA is one autoscaler instance bound to a cluster deployment. Evaluate
// implements the Kubernetes HPA algorithm:
//
//	desired = ceil(currentReplicas * currentMetric / target)
//
// with tolerance dead-banding and scale-down stabilization.
type HPA struct {
	Policy HPAPolicy

	lowSince   time.Duration // when the metric first allowed scale-down
	lowPending bool
	lowestWant int // smallest desired count seen during the low window
}

// NewHPA validates the policy and creates the controller.
func NewHPA(policy HPAPolicy) (*HPA, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if policy.Tolerance == 0 {
		policy.Tolerance = 0.1
	}
	return &HPA{Policy: policy}, nil
}

// Evaluate runs one control-loop iteration at virtual time now and scales
// the deployment through the cluster. It returns the desired replica
// count after the iteration.
func (h *HPA) Evaluate(c *Cluster, sample MetricSample, now time.Duration) (int, error) {
	d, ok := c.Deployment(h.Policy.Deployment)
	if !ok {
		return 0, fmt.Errorf("cluster: HPA references unknown deployment %q", h.Policy.Deployment)
	}
	current, _ := d.Replicas()
	if current == 0 {
		current = 1
	}

	var ratio float64
	switch h.Policy.Kind {
	case MetricQPSPerReplica:
		perReplica := sample.OfferedQPS / float64(current)
		ratio = perReplica / h.Policy.Target
	case MetricLatency:
		ratio = sample.LatencySeconds / h.Policy.Target
	}

	desired := current
	if math.Abs(ratio-1) > h.Policy.Tolerance {
		desired = int(math.Ceil(float64(current) * ratio))
	}
	// Latency is not proportional to replica count (queueing is convex):
	// the multiplicative rule would scale down straight into saturation.
	// Latency-driven deployments therefore shed at most one replica per
	// control period, and never past the utilization guard.
	if h.Policy.Kind == MetricLatency && desired < current {
		if desired < current-1 {
			desired = current - 1
		}
		if h.Policy.QPSGuard > 0 && desired > 0 &&
			sample.OfferedQPS/float64(desired) > 0.85*h.Policy.QPSGuard {
			desired = current
		}
	}
	// Scale-up rate limit (Kubernetes' default scale-up policy: at most
	// double, or add 4 pods, per control period — whichever is greater).
	// Without it a saturated latency metric compounds into a runaway.
	if up := maxInt(current*2, current+4); desired > up {
		desired = up
	}
	if desired < h.Policy.MinReplicas {
		desired = h.Policy.MinReplicas
	}
	if h.Policy.MaxReplicas > 0 && desired > h.Policy.MaxReplicas {
		desired = h.Policy.MaxReplicas
	}

	switch {
	case desired > current:
		h.lowPending = false
		if err := c.Scale(d.Name, desired, now); err != nil {
			return current, err
		}
		return desired, nil
	case desired < current:
		// Stabilization: only scale down after the demand has stayed low
		// for the configured window, to the highest desired count seen.
		if !h.lowPending {
			h.lowPending = true
			h.lowSince = now
			h.lowestWant = desired
		}
		if desired > h.lowestWant {
			h.lowestWant = desired
		}
		if now-h.lowSince >= h.Policy.ScaleDownStabilization {
			h.lowPending = false
			if err := c.Scale(d.Name, h.lowestWant, now); err != nil {
				return current, err
			}
			return h.lowestWant, nil
		}
		return current, nil
	default:
		h.lowPending = false
		return current, nil
	}
}
