package mlp

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestNewLayerValidation(t *testing.T) {
	if _, err := NewLayer(0, 4, 1); err == nil {
		t.Fatal("want error for zero input")
	}
	if _, err := NewLayer(4, 0, 1); err == nil {
		t.Fatal("want error for zero output")
	}
}

func TestLayerForwardHandChecked(t *testing.T) {
	l, err := NewLayer(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	copy(l.W.Data, []float32{1, 2, 3, 4})
	copy(l.B, []float32{10, 20})
	dst := make(tensor.Vector, 2)
	if err := l.Forward(dst, tensor.Vector{1, 1}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 13 || dst[1] != 27 {
		t.Fatalf("Forward = %v, want [13 27]", dst)
	}
}

func TestLayerAccounting(t *testing.T) {
	l, _ := NewLayer(3, 5, 1)
	if got := l.FLOPs(); got != 2*3*5+5 {
		t.Fatalf("FLOPs = %d", got)
	}
	if got := l.SizeBytes(); got != (3*5+5)*4 {
		t.Fatalf("SizeBytes = %d", got)
	}
	if l.In() != 3 || l.Out() != 5 {
		t.Fatal("In/Out mismatch")
	}
}

func TestNewMLPValidation(t *testing.T) {
	if _, err := New([]int{4}, 1); err == nil {
		t.Fatal("want error for single width")
	}
	if _, err := New([]int{4, 0}, 1); err == nil {
		t.Fatal("want error for zero width")
	}
}

func TestMLPForwardAppliesReLUBetweenLayers(t *testing.T) {
	// Construct 1 -> 1 -> 1 with weights that force a negative hidden
	// value: ReLU clamps it, so the output must be the final bias.
	m, err := New([]int{1, 1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Layers[0].W.Data[0] = -5
	m.Layers[0].B[0] = 0
	m.Layers[1].W.Data[0] = 3
	m.Layers[1].B[0] = 7
	out := make(tensor.Vector, 1)
	if err := m.Forward(out, tensor.Vector{1}); err != nil {
		t.Fatal(err)
	}
	if out[0] != 7 {
		t.Fatalf("Forward = %v, want 7 (hidden clamped to 0)", out[0])
	}
	// No ReLU on the final layer: a negative output must pass through.
	m.Layers[0].W.Data[0] = 1
	m.Layers[1].W.Data[0] = -3
	m.Layers[1].B[0] = 0
	if err := m.Forward(out, tensor.Vector{1}); err != nil {
		t.Fatal(err)
	}
	if out[0] != -3 {
		t.Fatalf("Forward = %v, want -3 (linear final layer)", out[0])
	}
}

func TestMLPForwardShapeErrors(t *testing.T) {
	m, _ := New([]int{2, 3}, 1)
	if err := m.Forward(make(tensor.Vector, 3), make(tensor.Vector, 1)); err == nil {
		t.Fatal("want input shape error")
	}
	if err := m.Forward(make(tensor.Vector, 2), make(tensor.Vector, 2)); err == nil {
		t.Fatal("want output shape error")
	}
}

func TestMLPAccountingSumsLayers(t *testing.T) {
	m, _ := New([]int{13, 256, 128, 32}, 1)
	var flops, bytes int64
	for _, l := range m.Layers {
		flops += l.FLOPs()
		bytes += l.SizeBytes()
	}
	if m.FLOPs() != flops || m.SizeBytes() != bytes {
		t.Fatal("MLP accounting must sum layers")
	}
	if m.In() != 13 || m.Out() != 32 {
		t.Fatal("In/Out mismatch")
	}
}

func TestMLPDeterministicInit(t *testing.T) {
	a, _ := New([]int{4, 8, 2}, 42)
	b, _ := New([]int{4, 8, 2}, 42)
	in := tensor.Vector{1, -1, 0.5, 2}
	oa := make(tensor.Vector, 2)
	ob := make(tensor.Vector, 2)
	if a.Forward(oa, in) != nil || b.Forward(ob, in) != nil {
		t.Fatal("forward failed")
	}
	if oa[0] != ob[0] || oa[1] != ob[1] {
		t.Fatal("same seed must reproduce outputs")
	}
}

func TestMLPCloneIndependentAndEquivalent(t *testing.T) {
	m, _ := New([]int{4, 8, 2}, 7)
	c := m.Clone()
	in := tensor.Vector{0.1, 0.2, 0.3, 0.4}
	om := make(tensor.Vector, 2)
	oc := make(tensor.Vector, 2)
	if m.Forward(om, in) != nil || c.Forward(oc, in) != nil {
		t.Fatal("forward failed")
	}
	if !tensor.AlmostEqual(om, oc, 0) {
		t.Fatal("clone must compute identical outputs")
	}
	// Mutating the clone must not affect the original.
	c.Layers[0].W.Data[0] += 100
	oc2 := make(tensor.Vector, 2)
	_ = c.Forward(oc2, in)
	om2 := make(tensor.Vector, 2)
	_ = m.Forward(om2, in)
	if !tensor.AlmostEqual(om, om2, 0) {
		t.Fatal("original changed after clone mutation")
	}
	if tensor.AlmostEqual(oc, oc2, 1e-9) {
		t.Fatal("clone mutation had no effect")
	}
}

func TestMLPOutputIsFinite(t *testing.T) {
	m, _ := New([]int{13, 512, 256, 32}, 3)
	in := make(tensor.Vector, 13)
	tensor.InitUniform(in, 1, 9)
	out := make(tensor.Vector, 32)
	if err := m.Forward(out, in); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("output[%d] = %v", i, v)
		}
	}
}
