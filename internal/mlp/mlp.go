// Package mlp implements the dense multi-layer-perceptron stacks of DLRM:
// the bottom MLP that embeds the continuous features and the top MLP that
// scores the feature-interaction output. Layers are fully connected with
// ReLU activations between layers; the final layer is linear (the model
// applies a sigmoid after the top MLP).
package mlp

import (
	"fmt"

	"repro/internal/tensor"
)

// Layer is a single fully-connected layer: y = W*x + b.
type Layer struct {
	W *tensor.Matrix
	B tensor.Vector
}

// NewLayer creates an in->out layer with deterministic Xavier weights.
func NewLayer(in, out int, seed uint64) (*Layer, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("mlp: invalid layer shape %d->%d", in, out)
	}
	w := tensor.NewMatrix(out, in)
	tensor.InitXavier(w, seed)
	b := make(tensor.Vector, out)
	tensor.InitUniform(b, 0.01, seed^0xabcdef)
	return &Layer{W: w, B: b}, nil
}

// In returns the input width.
func (l *Layer) In() int { return l.W.Cols }

// Out returns the output width.
func (l *Layer) Out() int { return l.W.Rows }

// Forward computes dst = W*x + b. dst must have length Out().
func (l *Layer) Forward(dst, x tensor.Vector) error {
	return tensor.MatVecBias(dst, l.W, x, l.B)
}

// FLOPs returns the multiply-accumulate cost of one forward pass through
// the layer for a single input (2 FLOPs per weight, plus the bias adds).
func (l *Layer) FLOPs() int64 {
	return 2*int64(l.W.Rows)*int64(l.W.Cols) + int64(l.W.Rows)
}

// SizeBytes returns the parameter footprint (weights + biases).
func (l *Layer) SizeBytes() int64 {
	return l.W.SizeBytes() + int64(len(l.B))*4
}

// MLP is a stack of fully-connected layers with ReLU between layers and a
// linear final layer.
type MLP struct {
	Layers []*Layer
	// scratch buffers, ping-pong between layers; sized to max layer width.
	buf0, buf1 tensor.Vector
}

// Scratch holds the ping-pong buffers one forward pass needs. Acquiring a
// private Scratch per goroutine (see model's scratch pool) lets many
// goroutines run ForwardScratch over the same read-only parameters
// concurrently — the mechanism behind the serving layer's batched,
// lock-free dense hot path.
type Scratch struct {
	buf0, buf1 tensor.Vector
}

// NewScratch allocates a scratch sized for this MLP's widest layer.
func (m *MLP) NewScratch() *Scratch {
	maxW := 0
	for _, l := range m.Layers {
		if l.In() > maxW {
			maxW = l.In()
		}
		if l.Out() > maxW {
			maxW = l.Out()
		}
	}
	return &Scratch{
		buf0: make(tensor.Vector, maxW),
		buf1: make(tensor.Vector, maxW),
	}
}

// New builds an MLP from the width sequence dims, e.g. [13 256 128 32]
// creates 13->256->128->32. seed makes initialisation deterministic.
func New(dims []int, seed uint64) (*MLP, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("mlp: need at least input and output widths, got %v", dims)
	}
	m := &MLP{}
	maxW := 0
	for _, d := range dims {
		if d > maxW {
			maxW = d
		}
	}
	for i := 0; i+1 < len(dims); i++ {
		l, err := NewLayer(dims[i], dims[i+1], seed+uint64(i)*0x1234567)
		if err != nil {
			return nil, err
		}
		m.Layers = append(m.Layers, l)
	}
	m.buf0 = make(tensor.Vector, maxW)
	m.buf1 = make(tensor.Vector, maxW)
	return m, nil
}

// In returns the input width of the stack.
func (m *MLP) In() int { return m.Layers[0].In() }

// Out returns the output width of the stack.
func (m *MLP) Out() int { return m.Layers[len(m.Layers)-1].Out() }

// Forward runs the stack on x and writes the result into dst (length
// Out()). ReLU is applied after every layer except the last.
//
// Forward reuses internal scratch buffers, so an MLP value must not be
// shared across goroutines without cloning. For concurrent forward passes
// over shared parameters use ForwardScratch with a per-goroutine Scratch.
func (m *MLP) Forward(dst, x tensor.Vector) error {
	return m.forward(m.buf0, m.buf1, dst, x)
}

// ForwardScratch is Forward with caller-provided scratch: the parameters
// are only read, so any number of goroutines may call it concurrently as
// long as each brings its own Scratch (from NewScratch).
func (m *MLP) ForwardScratch(s *Scratch, dst, x tensor.Vector) error {
	return m.forward(s.buf0, s.buf1, dst, x)
}

func (m *MLP) forward(buf0, buf1, dst, x tensor.Vector) error {
	if len(x) != m.In() {
		return fmt.Errorf("mlp: input length %d != %d", len(x), m.In())
	}
	if len(dst) != m.Out() {
		return fmt.Errorf("mlp: output length %d != %d", len(dst), m.Out())
	}
	cur := buf0[:len(x)]
	copy(cur, x)
	next := buf1
	for i, l := range m.Layers {
		out := next[:l.Out()]
		if i == len(m.Layers)-1 {
			out = dst
		}
		if err := l.Forward(out, cur); err != nil {
			return err
		}
		if i != len(m.Layers)-1 {
			tensor.ReLU(out)
		}
		cur, next = out, cur[:cap(cur)]
	}
	return nil
}

// FLOPs returns the per-input forward cost of the whole stack.
func (m *MLP) FLOPs() int64 {
	var total int64
	for _, l := range m.Layers {
		total += l.FLOPs()
	}
	return total
}

// SizeBytes returns the total parameter footprint.
func (m *MLP) SizeBytes() int64 {
	var total int64
	for _, l := range m.Layers {
		total += l.SizeBytes()
	}
	return total
}

// Clone deep-copies the MLP (fresh scratch buffers, copied weights) so a
// replica can run forward passes concurrently with other replicas.
func (m *MLP) Clone() *MLP {
	out := &MLP{
		buf0: make(tensor.Vector, len(m.buf0)),
		buf1: make(tensor.Vector, len(m.buf1)),
	}
	for _, l := range m.Layers {
		out.Layers = append(out.Layers, &Layer{W: l.W.Clone(), B: l.B.Clone()})
	}
	return out
}
