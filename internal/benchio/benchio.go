// Package benchio defines the machine-readable benchmark-artifact schema
// shared by every BENCH_*.json file this repository emits, and the small
// load/compare helpers the guard commands build on. One row type serves
// both artifact families: cmd/benchjson flattens `go test -bench` output
// into rows (BENCH_serving.json), and internal/scenario emits rows for
// whole scenario runs (BENCH_scenario_<name>.json) — so cmd/benchguard and
// cmd/scenarioguard diff either kind run-over-run with the same schema.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Row is one benchmark or scenario measurement, flattened. Fields a
// producer doesn't measure stay zero and (mostly) omit from the JSON; a
// consumer reads the subset it guards.
type Row struct {
	// Name identifies the measurement: a benchmark name for benchjson
	// rows, or "Scenario_<name>" (optionally with a "/model=NAME" or
	// "/phase=NAME" suffix) for scenario rows.
	Name string `json:"name"`
	// Model is the DLRM variant the row measures ("" for aggregate or
	// single-model rows), so per-model trajectories can be filtered.
	Model string `json:"model,omitempty"`

	// Iterations/NsPerOp/BytesPerOp/AllocsPerOp carry `go test -bench`
	// measurements (zero on scenario rows).
	Iterations  int64   `json:"iterations,omitempty"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// QPS is achieved throughput: the serving benches' custom "qps"
	// metric, or a scenario's completed requests per measured second.
	QPS float64 `json:"qps,omitempty"`
	// OfferedQPS is the load the driver offered over the measured
	// window; QPS/OfferedQPS < 1 means requests were shed or failed.
	OfferedQPS float64 `json:"offered_qps,omitempty"`

	// P50Ms/P95Ms/P99Ms are client-observed latency quantiles in
	// milliseconds over the measurement window.
	P50Ms float64 `json:"p50_ms,omitempty"`
	P95Ms float64 `json:"p95_ms,omitempty"`
	P99Ms float64 `json:"p99_ms,omitempty"`
	// ErrorRate is failed requests / measured requests (0 when every
	// request succeeded — absent and zero mean the same thing).
	ErrorRate float64 `json:"error_rate,omitempty"`

	// Extra holds any remaining metrics by name (custom bench units,
	// scenario swap/replan/cache/shed counters).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// WriteRows writes rows to path as an indented JSON array (never null).
func WriteRows(path string, rows []Row) error {
	if rows == nil {
		rows = []Row{}
	}
	raw, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// LoadRows reads a BENCH_*.json artifact.
func LoadRows(path string) ([]Row, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []Row
	if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// ByName keys rows by Name (later duplicates win).
func ByName(rows []Row) map[string]Row {
	out := make(map[string]Row, len(rows))
	for _, r := range rows {
		out[r.Name] = r
	}
	return out
}

// MatchesAny reports whether name contains at least one of the
// comma-separated substrings in filter (an empty filter matches all) —
// the guard commands' shared name filter.
func MatchesAny(name, filter string) bool {
	if filter == "" {
		return true
	}
	for _, sub := range strings.Split(filter, ",") {
		if sub != "" && strings.Contains(name, sub) {
			return true
		}
	}
	return false
}
