package bucketize

import (
	"testing"
	"testing/quick"

	"repro/internal/embedding"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// TestFigure11Example reproduces the paper's worked bucketization example:
// a 10-row table split into shard A = rows [0, 6) and shard B = rows
// [6, 10); input 0 uses indices {1, 7} and input 1 uses {3, 4, 8}.
func TestFigure11Example(t *testing.T) {
	batch := &embedding.Batch{
		Indices: []int64{1, 7, 3, 4, 8},
		Offsets: []int32{0, 2},
	}
	parts, err := Split(batch, []int64{6, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	a, b := parts[0], parts[1]
	// Shard A: offsets [0, 1], indices [1, 3, 4] (Fig. 11b/c).
	wantIdx := []int64{1, 3, 4}
	if len(a.Indices) != 3 {
		t.Fatalf("shard A indices = %v", a.Indices)
	}
	for i := range wantIdx {
		if a.Indices[i] != wantIdx[i] {
			t.Fatalf("shard A indices = %v, want %v", a.Indices, wantIdx)
		}
	}
	if a.Offsets[0] != 0 || a.Offsets[1] != 1 {
		t.Fatalf("shard A offsets = %v, want [0 1]", a.Offsets)
	}
	// Shard B: offsets [0, 1], indices [7, 8] rebased by 6 -> [1, 2].
	if len(b.Indices) != 2 || b.Indices[0] != 1 || b.Indices[1] != 2 {
		t.Fatalf("shard B indices = %v, want [1 2]", b.Indices)
	}
	if b.Offsets[0] != 0 || b.Offsets[1] != 1 {
		t.Fatalf("shard B offsets = %v, want [0 1]", b.Offsets)
	}
	// Split outputs must themselves be valid batches.
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitValidation(t *testing.T) {
	b := &embedding.Batch{Indices: []int64{1}, Offsets: []int32{0}}
	if _, err := Split(b, nil); err == nil {
		t.Fatal("want error for no boundaries")
	}
	if _, err := Split(b, []int64{5, 5}); err == nil {
		t.Fatal("want error for non-increasing boundaries")
	}
	out := &embedding.Batch{Indices: []int64{10}, Offsets: []int32{0}}
	if _, err := Split(out, []int64{5, 10}); err == nil {
		t.Fatal("want error for out-of-range index")
	}
	neg := &embedding.Batch{Indices: []int64{-1}, Offsets: []int32{0}}
	if _, err := Split(neg, []int64{10}); err == nil {
		t.Fatal("want error for negative index")
	}
	malformed := &embedding.Batch{Indices: []int64{1}, Offsets: []int32{1}}
	if _, err := Split(malformed, []int64{10}); err == nil {
		t.Fatal("want error for malformed batch")
	}
}

func TestShardOf(t *testing.T) {
	boundaries := []int64{6, 10, 20}
	cases := []struct {
		idx  int64
		want int
	}{{0, 0}, {5, 0}, {6, 1}, {9, 1}, {10, 2}, {19, 2}}
	for _, c := range cases {
		if got := ShardOf(c.idx, boundaries); got != c.want {
			t.Errorf("ShardOf(%d) = %d, want %d", c.idx, got, c.want)
		}
	}
}

func TestLookupCounts(t *testing.T) {
	batch := &embedding.Batch{
		Indices: []int64{1, 7, 3, 4, 8},
		Offsets: []int32{0, 2},
	}
	counts, err := LookupCounts(batch, []int64{6, 10})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if _, err := LookupCounts(batch, nil); err == nil {
		t.Fatal("want error for no boundaries")
	}
	if _, err := LookupCounts(&embedding.Batch{Indices: []int64{99}, Offsets: []int32{0}}, []int64{10}); err == nil {
		t.Fatal("want range error")
	}
}

func TestMergePooledValidation(t *testing.T) {
	dst := tensor.NewMatrix(2, 2)
	if err := MergePooled(nil, nil); err == nil {
		t.Fatal("want error for nil dst")
	}
	if err := MergePooled(dst, []*tensor.Matrix{nil}); err == nil {
		t.Fatal("want error for nil part")
	}
	if err := MergePooled(dst, []*tensor.Matrix{tensor.NewMatrix(1, 2)}); err == nil {
		t.Fatal("want error for shape mismatch")
	}
}

func TestMergePooledSums(t *testing.T) {
	dst := tensor.NewMatrix(1, 2)
	a := tensor.NewMatrix(1, 2)
	b := tensor.NewMatrix(1, 2)
	copy(a.Data, []float32{1, 2})
	copy(b.Data, []float32{10, 20})
	if err := MergePooled(dst, []*tensor.Matrix{a, b}); err != nil {
		t.Fatal(err)
	}
	if dst.Data[0] != 11 || dst.Data[1] != 22 {
		t.Fatalf("merged = %v", dst.Data)
	}
	// dst is overwritten, not accumulated.
	if err := MergePooled(dst, []*tensor.Matrix{a}); err != nil {
		t.Fatal(err)
	}
	if dst.Data[0] != 1 {
		t.Fatal("MergePooled must reset dst")
	}
}

// The paper's central correctness requirement: bucketized gathers over the
// partitioned shards, merged back, must equal the monolithic gather-pool.
func TestSplitGatherMergeEquivalenceProperty(t *testing.T) {
	const rows, dim = 128, 8
	table, err := embedding.NewRandomTable("eq", rows, dim, 77)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, nb, poolRaw, splitRaw uint8) bool {
		rng := workload.NewRNG(seed)
		batchSize := int(nb%4) + 1
		pooling := int(poolRaw%16) + 1
		// Random boundaries: 1..4 shards.
		numShards := int(splitRaw%4) + 1
		bset := map[int64]bool{}
		for len(bset) < numShards-1 {
			b := rng.Intn(rows-1) + 1
			bset[b] = true
		}
		boundaries := make([]int64, 0, numShards)
		for b := range bset {
			boundaries = append(boundaries, b)
		}
		boundaries = append(boundaries, rows)
		sortInt64(boundaries)

		batch := &embedding.Batch{Offsets: make([]int32, batchSize)}
		for i := 0; i < batchSize; i++ {
			batch.Offsets[i] = int32(len(batch.Indices))
			for k := 0; k < pooling; k++ {
				batch.Indices = append(batch.Indices, rng.Intn(rows))
			}
		}

		// Monolithic reference.
		want := tensor.NewMatrix(batchSize, dim)
		if table.GatherPoolBatch(want, batch) != nil {
			return false
		}

		// Sharded: split, gather per shard slice, merge.
		parts, err := Split(batch, boundaries)
		if err != nil {
			return false
		}
		pooled := make([]*tensor.Matrix, len(parts))
		lo := int64(0)
		for s, part := range parts {
			hi := boundaries[s]
			shard, err := table.Slice(lo, hi)
			if err != nil {
				return false
			}
			out := tensor.NewMatrix(batchSize, dim)
			if shard.GatherPoolBatch(out, part) != nil {
				return false
			}
			pooled[s] = out
			lo = hi
		}
		got := tensor.NewMatrix(batchSize, dim)
		if MergePooled(got, pooled) != nil {
			return false
		}
		for i := range got.Data {
			diff := float64(got.Data[i] - want.Data[i])
			if diff > 1e-4 || diff < -1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sortInt64(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Property: Split conserves every lookup exactly once and rebased indices
// stay within their shard.
func TestSplitConservationProperty(t *testing.T) {
	f := func(seed uint64, nb uint8) bool {
		rng := workload.NewRNG(seed)
		const rows = 100
		boundaries := []int64{17, 40, 77, rows}
		batchSize := int(nb%5) + 1
		batch := &embedding.Batch{Offsets: make([]int32, batchSize)}
		for i := 0; i < batchSize; i++ {
			batch.Offsets[i] = int32(len(batch.Indices))
			n := int(rng.Intn(10))
			for k := 0; k < n; k++ {
				batch.Indices = append(batch.Indices, rng.Intn(rows))
			}
		}
		parts, err := Split(batch, boundaries)
		if err != nil {
			return false
		}
		total := 0
		lo := int64(0)
		for s, part := range parts {
			hi := boundaries[s]
			if part.BatchSize() != batchSize {
				return false
			}
			for _, idx := range part.Indices {
				if idx < 0 || idx >= hi-lo {
					return false
				}
			}
			total += len(part.Indices)
			lo = hi
		}
		return total == len(batch.Indices)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
