// Package bucketize implements Sec. IV-C: translating a query's
// index/offset arrays, expressed against the original (hotness-sorted)
// embedding table, into per-shard index/offset arrays whose IDs are
// rebased to each shard's local index space (Fig. 11). It also provides
// the inverse reduction — merging the per-shard pooled partial sums back
// into the full pooled embedding — which is exact because sum-pooling is
// associative and commutative.
package bucketize

import (
	"fmt"
	"sort"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// Split partitions batch across the shards described by boundaries (the
// partition.Plan boundary list: shard s spans rows
// [boundaries[s-1], boundaries[s]) of the sorted table). The returned
// slice has one batch per shard, each with the same logical batch size as
// the input; shard-local indices are rebased so every shard's IDs start at
// 0 (Fig. 11(c)). Indices outside [0, boundaries[last]) are an error.
func Split(batch *embedding.Batch, boundaries []int64) ([]*embedding.Batch, error) {
	if len(boundaries) == 0 {
		return nil, fmt.Errorf("bucketize: no shard boundaries")
	}
	if err := batch.Validate(); err != nil {
		return nil, fmt.Errorf("bucketize: %w", err)
	}
	prev := int64(0)
	for i, b := range boundaries {
		if b <= prev {
			return nil, fmt.Errorf("bucketize: boundary %d (%d) not increasing past %d", i, b, prev)
		}
		prev = b
	}
	rows := boundaries[len(boundaries)-1]
	numShards := len(boundaries)
	bs := batch.BatchSize()

	// Two passes with exact-size backing arrays: count each shard's
	// lookups first, then carve every shard's index/offset slices out of
	// one allocation each — no append growth, and a fixed six allocations
	// regardless of batch or shard count.
	counts := make([]int64, numShards)
	for _, idx := range batch.Indices {
		if idx < 0 || idx >= rows {
			return nil, fmt.Errorf("bucketize: index %d outside table of %d rows", idx, rows)
		}
		counts[ShardOf(idx, boundaries)]++
	}
	idxBack := make([]int64, len(batch.Indices))
	offBack := make([]int32, numShards*bs)
	batches := make([]embedding.Batch, numShards)
	out := make([]*embedding.Batch, numShards)
	starts := make([]int64, numShards)
	cursors := make([]int64, numShards)
	pos := int64(0)
	for s := 0; s < numShards; s++ {
		starts[s], cursors[s] = pos, pos
		pos += counts[s]
	}
	for i := 0; i < bs; i++ {
		for s := 0; s < numShards; s++ {
			offBack[s*bs+i] = int32(cursors[s] - starts[s])
		}
		for _, idx := range batch.InputIndices(i) {
			s := ShardOf(idx, boundaries)
			lo := int64(0)
			if s > 0 {
				lo = boundaries[s-1]
			}
			idxBack[cursors[s]] = idx - lo
			cursors[s]++
		}
	}
	for s := 0; s < numShards; s++ {
		batches[s] = embedding.Batch{
			Indices: idxBack[starts[s]:cursors[s]:cursors[s]],
			Offsets: offBack[s*bs : (s+1)*bs : (s+1)*bs],
		}
		out[s] = &batches[s]
	}
	return out, nil
}

// ShardOf returns the shard index owning sorted row idx under the given
// boundaries, via binary search.
func ShardOf(idx int64, boundaries []int64) int {
	return sort.Search(len(boundaries), func(s int) bool { return idx < boundaries[s] })
}

// MergePooled sums the per-shard pooled outputs into dst. Each part must
// have dst's shape (batchSize x dim); parts[s].Row(i) is shard s's partial
// sum for input i. Because the embedding layer pools with element-wise
// addition, summing partial pools reconstructs the monolithic result
// exactly.
func MergePooled(dst *tensor.Matrix, parts []*tensor.Matrix) error {
	if dst == nil {
		return fmt.Errorf("bucketize: nil destination")
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for s, part := range parts {
		if part == nil {
			return fmt.Errorf("bucketize: nil part %d", s)
		}
		if part.Rows != dst.Rows || part.Cols != dst.Cols {
			return fmt.Errorf("bucketize: part %d shape %dx%d != dst %dx%d",
				s, part.Rows, part.Cols, dst.Rows, dst.Cols)
		}
		for i, v := range part.Data {
			dst.Data[i] += v
		}
	}
	return nil
}

// LookupCounts returns how many gathers each shard receives for the batch,
// without materialising the split — used by the simulator to charge
// per-shard gather work.
func LookupCounts(batch *embedding.Batch, boundaries []int64) ([]int64, error) {
	if len(boundaries) == 0 {
		return nil, fmt.Errorf("bucketize: no shard boundaries")
	}
	rows := boundaries[len(boundaries)-1]
	counts := make([]int64, len(boundaries))
	for _, idx := range batch.Indices {
		if idx < 0 || idx >= rows {
			return nil, fmt.Errorf("bucketize: index %d outside table of %d rows", idx, rows)
		}
		counts[ShardOf(idx, boundaries)]++
	}
	return counts, nil
}
