package partition

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/perfmodel"
	"repro/internal/workload"
)

// fig10Cost is the toy cost function from the paper's Fig. 10 example:
// COST(i, j) = (j - i + 1)^2 / i over 1-based inclusive [i, j], which in
// this package's 0-based half-open [lo, hi) convention is
// (hi - lo)^2 / (lo + 1).
func fig10Cost(lo, hi int64) float64 {
	return float64((hi-lo)*(hi-lo)) / float64(lo+1)
}

func TestFigure10Example(t *testing.T) {
	pt := &Partitioner{MaxShards: 3, Granularity: 1}
	plan, err := pt.PartitionFixedShards(5, 3, fig10Cost)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: optimal plan [1, 3, 5] with Mem[3][5] = 4.
	want := []int64{1, 3, 5}
	if len(plan.Boundaries) != 3 {
		t.Fatalf("plan = %v", plan)
	}
	for i := range want {
		if plan.Boundaries[i] != want[i] {
			t.Fatalf("boundaries = %v, want %v", plan.Boundaries, want)
		}
	}
	if math.Abs(plan.Cost-4) > 1e-9 {
		t.Fatalf("cost = %v, want 4", plan.Cost)
	}
}

func TestFigure10Subproblems(t *testing.T) {
	// The memoized sub-problems quoted in Fig. 10: Mem[2][2]=1.5,
	// Mem[2][3]=3, Mem[2][4]=5.33.
	pt := &Partitioner{Granularity: 1}
	cases := []struct {
		rows int64
		want float64
	}{
		{2, 1.5},
		{3, 3},
		{4, 16.0 / 3},
	}
	for _, c := range cases {
		plan, err := pt.PartitionFixedShards(c.rows, 2, fig10Cost)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plan.Cost-c.want) > 1e-9 {
			t.Fatalf("Mem[2][%d] = %v, want %v", c.rows, plan.Cost, c.want)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	pt := &Partitioner{}
	if _, err := pt.Partition(0, fig10Cost); err == nil {
		t.Fatal("want error for zero rows")
	}
	if _, err := pt.Partition(10, nil); err == nil {
		t.Fatal("want error for nil cost")
	}
	if _, err := pt.PartitionFixedShards(10, 0, fig10Cost); err == nil {
		t.Fatal("want error for zero shards")
	}
}

func TestPlanAccessors(t *testing.T) {
	p := Plan{Boundaries: []int64{3, 7, 10}}
	if p.NumShards() != 3 || p.Rows() != 10 {
		t.Fatalf("plan accessors: %+v", p)
	}
	lo, hi := p.ShardRange(0)
	if lo != 0 || hi != 3 {
		t.Fatalf("shard0 = [%d,%d)", lo, hi)
	}
	lo, hi = p.ShardRange(2)
	if lo != 7 || hi != 10 {
		t.Fatalf("shard2 = [%d,%d)", lo, hi)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Plan{Boundaries: []int64{3, 3}}
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for non-increasing boundaries")
	}
	empty := Plan{}
	if err := empty.Validate(); err == nil {
		t.Fatal("want error for empty plan")
	}
	if (Plan{}).Rows() != 0 {
		t.Fatal("empty plan rows must be 0")
	}
}

// bruteForceBest exhaustively searches all partitions of rows into at most
// smax shards (exact per-row boundaries).
func bruteForceBest(rows int64, smax int, cost CostFunc) float64 {
	best := math.Inf(1)
	var rec func(lo int64, shardsLeft int, acc float64)
	rec = func(lo int64, shardsLeft int, acc float64) {
		if acc >= best {
			return
		}
		if lo == rows {
			if acc < best {
				best = acc
			}
			return
		}
		if shardsLeft == 0 {
			return
		}
		for hi := lo + 1; hi <= rows; hi++ {
			rec(hi, shardsLeft-1, acc+cost(lo, hi))
		}
	}
	rec(0, smax, 0)
	return best
}

// Property: the DP at granularity 1 matches exhaustive search on small
// random cost functions.
func TestDPOptimalityProperty(t *testing.T) {
	f := func(seed uint64, rowsRaw, smaxRaw uint8) bool {
		rows := int64(rowsRaw%8) + 2 // 2..9
		smax := int(smaxRaw%4) + 1   // 1..4
		rng := workload.NewRNG(seed)
		// Random positive cost per (lo, hi) pair, memoized for
		// determinism between DP and brute force.
		memo := map[[2]int64]float64{}
		cost := func(lo, hi int64) float64 {
			k := [2]int64{lo, hi}
			if v, ok := memo[k]; ok {
				return v
			}
			v := rng.Float64()*10 + 0.1
			memo[k] = v
			return v
		}
		pt := &Partitioner{MaxShards: smax, Granularity: 1}
		plan, err := pt.Partition(rows, cost)
		if err != nil {
			return false
		}
		want := bruteForceBest(rows, smax, cost)
		return math.Abs(plan.Cost-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanCostMatchesReportedCost(t *testing.T) {
	pt := &Partitioner{MaxShards: 4, Granularity: 1}
	plan, err := pt.Partition(8, fig10Cost)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := PlanCost(plan, fig10Cost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-plan.Cost) > 1e-9 {
		t.Fatalf("PlanCost = %v, DP cost = %v", sum, plan.Cost)
	}
}

func TestGranularityCoarsening(t *testing.T) {
	// With granularity 100 over 1000 rows, boundaries must be multiples
	// of 100 (or the final row count).
	pt := &Partitioner{MaxShards: 4, Granularity: 100}
	plan, err := pt.Partition(1000, func(lo, hi int64) float64 {
		return float64(hi-lo) + 50 // favors fewer-but-balanced shards
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range plan.Boundaries {
		if b%100 != 0 && b != 1000 {
			t.Fatalf("boundary %d not on granularity grid", b)
		}
	}
}

func TestFixedShardsMoreThanGroups(t *testing.T) {
	// Forcing more shards than default groups still works by refining
	// the granularity.
	pt := &Partitioner{Granularity: 4}
	plan, err := pt.PartitionFixedShards(8, 8, func(lo, hi int64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumShards() != 8 {
		t.Fatalf("shards = %d, want 8", plan.NumShards())
	}
}

func TestSingleShardPlan(t *testing.T) {
	p := SingleShard(100)
	if p.NumShards() != 1 || p.Rows() != 100 {
		t.Fatalf("SingleShard = %+v", p)
	}
}

func TestEqualSize(t *testing.T) {
	p, err := EqualSize(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 3 || p.Rows() != 10 {
		t.Fatalf("EqualSize = %+v", p)
	}
	if _, err := EqualSize(10, 0); err == nil {
		t.Fatal("want error for zero shards")
	}
	// More shards than rows clamps.
	p, err = EqualSize(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 2 {
		t.Fatalf("clamped shards = %d", p.NumShards())
	}
}

func TestGreedyCoverage(t *testing.T) {
	s, err := workload.NewPowerLawSampler(10_000, 0.9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cdf := s.Analytic()
	p, err := GreedyCoverage(cdf, []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Rows() != 10_000 {
		t.Fatalf("rows = %d", p.Rows())
	}
	// First boundary must cover ~50% of accesses.
	if got := cdf.At(p.Boundaries[0]); got < 0.5 || got > 0.52 {
		t.Fatalf("coverage at first cut = %v", got)
	}
	if _, err := GreedyCoverage(cdf, []float64{0.9, 0.5}); err == nil {
		t.Fatal("want error for non-increasing coverages")
	}
	if _, err := GreedyCoverage(cdf, []float64{1.5}); err == nil {
		t.Fatal("want error for coverage >= 1")
	}
}

// buildRM1CostModel assembles an Algorithm 1 cost model over a small table.
func buildRM1CostModel(t *testing.T, rows int64) *CostModel {
	t.Helper()
	prof := perfmodel.CPUOnlyProfile()
	qps, err := prof.BuildQPSModel(32, 32, 128)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.NewPowerLawSampler(rows, 0.9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cm := &CostModel{
		CDF:             s.Analytic(),
		PoolingPerInput: 128,
		BatchSize:       32,
		VectorBytes:     128,
		MinMemAlloc:     512 << 20,
		TargetTraffic:   1000,
		QPS:             qps,
	}
	if err := cm.Validate(); err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestCostModelAlgorithm1(t *testing.T) {
	cm := buildRM1CostModel(t, 100_000)
	// NS over the whole table equals the pooling factor.
	if ns := cm.NS(0, 100_000); math.Abs(ns-128) > 1e-9 {
		t.Fatalf("NS(full) = %v, want 128", ns)
	}
	// A hot prefix absorbs proportionally more gathers.
	hot := cm.NS(0, 10_000)
	cold := cm.NS(90_000, 100_000)
	if hot <= cold {
		t.Fatalf("hot ns %v <= cold ns %v", hot, cold)
	}
	// Replicas are at least 1 and grow with traffic share.
	if r := cm.Replicas(90_000, 100_000); r < 1 {
		t.Fatalf("cold replicas = %v, want >= 1", r)
	}
	if cm.Replicas(0, 10_000) <= cm.Replicas(90_000, 100_000) {
		t.Fatal("hot shard must need more replicas")
	}
	// Capacity is linear in rows.
	if cm.Capacity(0, 10) != 10*128 {
		t.Fatalf("Capacity = %d", cm.Capacity(0, 10))
	}
	if cm.Capacity(10, 10) != 0 {
		t.Fatal("empty range capacity must be 0")
	}
	// Cost = replicas * (capacity + minmem).
	lo, hi := int64(0), int64(10_000)
	want := cm.Replicas(lo, hi) * float64(cm.Capacity(lo, hi)+cm.MinMemAlloc)
	if got := cm.Cost(lo, hi); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
}

func TestCostModelValidate(t *testing.T) {
	cm := buildRM1CostModel(t, 1000)
	bad := *cm
	bad.CDF = nil
	if bad.Validate() == nil {
		t.Fatal("want CDF error")
	}
	bad = *cm
	bad.QPS = nil
	if bad.Validate() == nil {
		t.Fatal("want QPS error")
	}
	bad = *cm
	bad.PoolingPerInput = 0
	if bad.Validate() == nil {
		t.Fatal("want pooling error")
	}
	bad = *cm
	bad.TargetTraffic = 0
	if bad.Validate() == nil {
		t.Fatal("want traffic error")
	}
	bad = *cm
	bad.VectorBytes = 0
	if bad.Validate() == nil {
		t.Fatal("want vector bytes error")
	}
	bad = *cm
	bad.MinMemAlloc = -1
	if bad.Validate() == nil {
		t.Fatal("want minmem error")
	}
	bad = *cm
	bad.BatchSize = 0
	if bad.Validate() == nil {
		t.Fatal("want batch error")
	}
}

func TestEvaluateAndPlanMemory(t *testing.T) {
	cm := buildRM1CostModel(t, 100_000)
	pt := &Partitioner{MaxShards: 8}
	plan, err := pt.Partition(100_000, cm.CostFunc())
	if err != nil {
		t.Fatal(err)
	}
	ests, err := cm.Evaluate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != plan.NumShards() {
		t.Fatalf("estimates = %d, shards = %d", len(ests), plan.NumShards())
	}
	var total float64
	var nsSum float64
	for _, e := range ests {
		if e.QPS <= 0 || e.Replicas < 1 || e.CapacityBytes <= 0 {
			t.Fatalf("bad estimate: %+v", e)
		}
		total += e.MemoryBytes
		nsSum += e.NS
	}
	// Shard NS values partition the pooling factor.
	if math.Abs(nsSum-128) > 1e-6 {
		t.Fatalf("sum of shard NS = %v, want 128", nsSum)
	}
	mem, err := cm.PlanMemory(plan)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mem-total) > 1e-6 {
		t.Fatalf("PlanMemory = %v, sum = %v", mem, total)
	}
	// The DP's reported cost equals the evaluated memory.
	if math.Abs(mem-plan.Cost) > 1e-6 {
		t.Fatalf("plan cost %v != evaluated %v", plan.Cost, mem)
	}
	if _, err := cm.Evaluate(Plan{}); err == nil {
		t.Fatal("want error for invalid plan")
	}
}

// The headline property of the paper's DP: it never loses to the
// alternative policies under its own cost model.
func TestDPBeatsAlternatives(t *testing.T) {
	cm := buildRM1CostModel(t, 200_000)
	pt := &Partitioner{MaxShards: 16}
	dp, err := pt.Partition(200_000, cm.CostFunc())
	if err != nil {
		t.Fatal(err)
	}
	single := SingleShard(200_000)
	singleCost, _ := PlanCost(single, cm.CostFunc())
	if dp.Cost > singleCost+1e-6 {
		t.Fatalf("DP %v worse than single shard %v", dp.Cost, singleCost)
	}
	for _, n := range []int{2, 4, 8} {
		eq, err := EqualSize(200_000, n)
		if err != nil {
			t.Fatal(err)
		}
		c, _ := PlanCost(eq, cm.CostFunc())
		if dp.Cost > c+1e-6 {
			t.Fatalf("DP %v worse than equal-size-%d %v", dp.Cost, n, c)
		}
	}
	greedy, err := GreedyCoverage(cm.CDF, []float64{0.5, 0.9, 0.99})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := PlanCost(greedy, cm.CostFunc())
	if dp.Cost > c+1e-6 {
		t.Fatalf("DP %v worse than greedy %v", dp.Cost, c)
	}
}

// Figure 12(d)'s shape: forcing more shards reduces cost up to the DP's
// chosen count, after which per-container overhead causes diminishing or
// negative returns.
func TestForcedShardSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment: forced-shard DP sweep (~4s)")
	}
	cm := buildRM1CostModel(t, 200_000)
	pt := &Partitioner{MaxShards: 16}
	opt, err := pt.Partition(200_000, cm.CostFunc())
	if err != nil {
		t.Fatal(err)
	}
	cost1, err := pt.PartitionFixedShards(200_000, 1, cm.CostFunc())
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost > cost1.Cost+1e-6 {
		t.Fatal("optimal plan must not lose to a single shard")
	}
	// The optimum over all counts equals the best fixed-count plan.
	best := math.Inf(1)
	for s := 1; s <= 16; s++ {
		p, err := pt.PartitionFixedShards(200_000, s, cm.CostFunc())
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost < best {
			best = p.Cost
		}
	}
	if math.Abs(best-opt.Cost) > 1e-6 {
		t.Fatalf("optimal %v != best fixed %v", opt.Cost, best)
	}
}
