// Package partition implements the paper's core contribution: the
// utility-based embedding-table partitioning machinery. Algorithm 1 (the
// profiling-based deployment-cost estimator) lives in this file; Algorithm
// 2 (the dynamic-programming partitioner) in algorithm2.go; the baseline
// partitioning policies used for ablations in alternatives.go.
//
// All shard ranges in this package are expressed over the hotness-sorted
// table as 0-based half-open row intervals [lo, hi). The paper's 1-based
// inclusive [startID, endID] maps to lo = startID-1, hi = endID.
package partition

import (
	"fmt"
	"math"

	"repro/internal/perfmodel"
)

// CDF is the cumulative access-frequency distribution over a
// hotness-sorted table: At(j) is the fraction of all gathers landing in
// sorted rows [0, j). Both embedding.CDF (empirical) and
// workload.AnalyticCDF (closed-form) satisfy it.
type CDF interface {
	Rows() int64
	At(j int64) float64
	RangeProbability(k, j int64) float64
}

// CostModel evaluates Algorithm 1: the expected memory consumption of
// deploying one embedding shard, given the access CDF, the per-table
// pooling factor, a QPS regression and the target traffic constant.
type CostModel struct {
	// CDF is the access distribution over the sorted table.
	CDF CDF
	// PoolingPerInput is n_t: the average number of vectors gathered
	// from the whole table per input (line 8).
	PoolingPerInput float64
	// BatchSize is the number of inputs per query; the QPS regression
	// was profiled at this batch size.
	BatchSize int
	// VectorBytes is the size of one embedding vector (dim * 4).
	VectorBytes int64
	// MinMemAlloc is the per-container fixed memory (line 3).
	MinMemAlloc int64
	// TargetTraffic is the predefined traffic constant (line 9); the
	// paper uses 1000 queries/sec for the DP.
	TargetTraffic float64
	// QPS is the profiling-based regression QPS(x) (line 10).
	QPS perfmodel.QPSModel
}

// Validate checks the model is usable.
func (c *CostModel) Validate() error {
	if c.CDF == nil {
		return fmt.Errorf("partition: CostModel needs a CDF")
	}
	if c.QPS == nil {
		return fmt.Errorf("partition: CostModel needs a QPS regression")
	}
	if c.PoolingPerInput <= 0 {
		return fmt.Errorf("partition: PoolingPerInput must be positive, got %v", c.PoolingPerInput)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("partition: BatchSize must be positive, got %d", c.BatchSize)
	}
	if c.VectorBytes <= 0 {
		return fmt.Errorf("partition: VectorBytes must be positive, got %d", c.VectorBytes)
	}
	if c.MinMemAlloc < 0 {
		return fmt.Errorf("partition: MinMemAlloc must be non-negative, got %d", c.MinMemAlloc)
	}
	if c.TargetTraffic <= 0 {
		return fmt.Errorf("partition: TargetTraffic must be positive, got %v", c.TargetTraffic)
	}
	return nil
}

// NS returns n_s for a shard spanning sorted rows [lo, hi): the expected
// number of vectors gathered from the shard per input, estimated as
// (CDF(hi) - CDF(lo)) * n_t (Algorithm 1 lines 11-12).
func (c *CostModel) NS(lo, hi int64) float64 {
	return c.CDF.RangeProbability(lo, hi) * c.PoolingPerInput
}

// EstimatedQPS returns the regression-estimated QPS of a shard spanning
// [lo, hi) (line 13).
func (c *CostModel) EstimatedQPS(lo, hi int64) float64 {
	return c.QPS.QPS(c.NS(lo, hi))
}

// Replicas returns the (fractional) number of replicas required to sustain
// TargetTraffic with the shard [lo, hi) (line 14). It is floored at 1: any
// deployed shard needs at least one replica.
func (c *CostModel) Replicas(lo, hi int64) float64 {
	qps := c.EstimatedQPS(lo, hi)
	if qps <= 0 {
		return math.Inf(1)
	}
	r := c.TargetTraffic / qps
	if r < 1 {
		return 1
	}
	return r
}

// Capacity returns the parameter bytes of a shard spanning [lo, hi)
// (line 17-18: (j - k + 1) * vector size).
func (c *CostModel) Capacity(lo, hi int64) int64 {
	if hi <= lo {
		return 0
	}
	return (hi - lo) * c.VectorBytes
}

// Cost returns the expected memory consumption (bytes) of deploying the
// shard [lo, hi): replicas * (capacity + min_mem_alloc) (lines 2-4).
func (c *CostModel) Cost(lo, hi int64) float64 {
	return c.Replicas(lo, hi) * float64(c.Capacity(lo, hi)+c.MinMemAlloc)
}

// CostFunc adapts the model to the partitioner's cost-callback interface.
func (c *CostModel) CostFunc() CostFunc { return c.Cost }

// ShardEstimate is the per-shard output of evaluating a plan under the
// cost model — the quantities the deployment module turns into container
// specs and HPA policies.
type ShardEstimate struct {
	// Lo, Hi delimit the shard's sorted-row range [Lo, Hi).
	Lo, Hi int64
	// NS is the expected vectors gathered from the shard per input.
	NS float64
	// QPS is the regression-estimated per-replica throughput (the
	// QPSmax HPA threshold for this shard, Sec. IV-D).
	QPS float64
	// Replicas is the fractional replica demand at TargetTraffic.
	Replicas float64
	// CapacityBytes is the shard's parameter footprint.
	CapacityBytes int64
	// MemoryBytes is Replicas * (CapacityBytes + MinMemAlloc).
	MemoryBytes float64
}

// Evaluate expands a plan into per-shard estimates.
func (c *CostModel) Evaluate(p Plan) ([]ShardEstimate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := make([]ShardEstimate, 0, p.NumShards())
	for i := 0; i < p.NumShards(); i++ {
		lo, hi := p.ShardRange(i)
		e := ShardEstimate{
			Lo:            lo,
			Hi:            hi,
			NS:            c.NS(lo, hi),
			QPS:           c.EstimatedQPS(lo, hi),
			Replicas:      c.Replicas(lo, hi),
			CapacityBytes: c.Capacity(lo, hi),
		}
		e.MemoryBytes = e.Replicas * float64(e.CapacityBytes+c.MinMemAlloc)
		out = append(out, e)
	}
	return out, nil
}

// PlanMemory returns the total expected memory of a plan in bytes.
func (c *CostModel) PlanMemory(p Plan) (float64, error) {
	ests, err := c.Evaluate(p)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, e := range ests {
		total += e.MemoryBytes
	}
	return total, nil
}
