package partition

import (
	"fmt"
	"math"
)

// CostFunc returns the expected deployment cost of a shard holding sorted
// rows [lo, hi). Algorithm 2 treats it as a black box, which is also how
// the Fig. 10 worked example (with its toy (j-i+1)²/i cost) plugs in.
type CostFunc func(lo, hi int64) float64

// Plan is a table partitioning: Boundaries[i] is the exclusive end row of
// shard i over the hotness-sorted table, so shard i spans
// [Boundaries[i-1], Boundaries[i]) with Boundaries[-1] == 0. The last
// boundary equals the table's row count. Cost is the estimator's expected
// memory for the plan, in the CostFunc's unit (bytes for Algorithm 1).
type Plan struct {
	Boundaries []int64
	Cost       float64
}

// NumShards returns the shard count.
func (p Plan) NumShards() int { return len(p.Boundaries) }

// Rows returns the total rows covered.
func (p Plan) Rows() int64 {
	if len(p.Boundaries) == 0 {
		return 0
	}
	return p.Boundaries[len(p.Boundaries)-1]
}

// ShardRange returns shard i's [lo, hi) row range.
func (p Plan) ShardRange(i int) (lo, hi int64) {
	if i > 0 {
		lo = p.Boundaries[i-1]
	}
	return lo, p.Boundaries[i]
}

// Validate checks the boundaries are strictly increasing and positive.
func (p Plan) Validate() error {
	if len(p.Boundaries) == 0 {
		return fmt.Errorf("partition: empty plan")
	}
	prev := int64(0)
	for i, b := range p.Boundaries {
		if b <= prev {
			return fmt.Errorf("partition: boundary %d (%d) not increasing past %d", i, b, prev)
		}
		prev = b
	}
	return nil
}

// String renders the plan in the paper's partition-point notation.
func (p Plan) String() string {
	return fmt.Sprintf("plan%v cost=%.4g", p.Boundaries, p.Cost)
}

// Partitioner runs Algorithm 2: dynamic programming over candidate shard
// boundaries, memoizing Mem[numShards][endGroup].
//
// The DP operates on row groups of Granularity rows rather than single
// rows: with 20M-row tables an exact per-row DP would evaluate ~10^14
// sub-problems, while a few hundred groups capture the power-law structure
// (the paper reports 18 s for 20M rows, which similarly implies a bounded
// candidate set). Granularity 1 reproduces the exact per-row algorithm and
// is what the Fig. 10 unit test uses; the granularity/quality trade-off is
// quantified by the DP-granularity ablation bench.
type Partitioner struct {
	// MaxShards is S_max, the largest shard count explored (default 16).
	MaxShards int
	// Granularity is the row-group width; 0 selects
	// ceil(rows/DefaultGroups).
	Granularity int64
}

// DefaultGroups is the default number of DP candidate boundaries.
const DefaultGroups = 512

// DefaultMaxShards is the default S_max.
const DefaultMaxShards = 16

func (pt *Partitioner) maxShards() int {
	if pt.MaxShards <= 0 {
		return DefaultMaxShards
	}
	return pt.MaxShards
}

func (pt *Partitioner) granularity(rows int64) int64 {
	if pt.Granularity > 0 {
		return pt.Granularity
	}
	g := (rows + DefaultGroups - 1) / DefaultGroups
	if g < 1 {
		g = 1
	}
	return g
}

// Partition finds the plan minimising total cost over all shard counts
// 1..MaxShards (Algorithm 2 line 20: the smallest Mem value across the
// whole design space).
func (pt *Partitioner) Partition(rows int64, cost CostFunc) (Plan, error) {
	return pt.run(rows, cost, 0)
}

// PartitionFixedShards finds the optimal plan with exactly numShards
// shards — the knob behind the Fig. 12(d) manual shard-count sweep.
func (pt *Partitioner) PartitionFixedShards(rows int64, numShards int, cost CostFunc) (Plan, error) {
	if numShards <= 0 {
		return Plan{}, fmt.Errorf("partition: numShards must be positive, got %d", numShards)
	}
	return pt.run(rows, cost, numShards)
}

// run executes the DP. fixed == 0 searches all shard counts; otherwise the
// plan with exactly `fixed` shards is returned.
func (pt *Partitioner) run(rows int64, cost CostFunc, fixed int) (Plan, error) {
	if rows <= 0 {
		return Plan{}, fmt.Errorf("partition: rows must be positive, got %d", rows)
	}
	if cost == nil {
		return Plan{}, fmt.Errorf("partition: nil cost function")
	}
	gran := pt.granularity(rows)
	// Candidate boundaries: bnd[i] = min(i*gran, rows), i = 0..G.
	groups := int((rows + gran - 1) / gran)
	bnd := make([]int64, groups+1)
	for i := 0; i <= groups; i++ {
		b := int64(i) * gran
		if b > rows {
			b = rows
		}
		bnd[i] = b
	}
	smax := pt.maxShards()
	if fixed > 0 {
		smax = fixed
	}
	if smax > groups {
		smax = groups
	}
	if fixed > groups {
		// Cannot produce more non-empty shards than candidate groups;
		// fall back to one row-group per shard by refining granularity.
		return (&Partitioner{MaxShards: pt.MaxShards, Granularity: maxInt64(rows/int64(fixed), 1)}).
			run(rows, cost, fixed)
	}

	// mem[s][e]: minimal cost of splitting the first e groups into s
	// shards; choice[s][e]: the best split point m (shard s spans groups
	// (m, e]). Row s=0 is unused padding for clarity.
	mem := make([][]float64, smax+1)
	choice := make([][]int, smax+1)
	for s := 0; s <= smax; s++ {
		mem[s] = make([]float64, groups+1)
		choice[s] = make([]int, groups+1)
		for e := range mem[s] {
			mem[s][e] = math.Inf(1)
			choice[s][e] = -1
		}
	}
	for e := 1; e <= groups; e++ { // Algorithm 2 lines 2-4
		mem[1][e] = cost(0, bnd[e])
		choice[1][e] = 0
	}
	for s := 2; s <= smax; s++ { // lines 5-19
		for e := s; e <= groups; e++ {
			best := math.Inf(1)
			bestM := -1
			for m := s - 1; m < e; m++ { // line 8: last shard is groups (m, e]
				prev := mem[s-1][m]
				if math.IsInf(prev, 1) {
					continue
				}
				cur := prev + cost(bnd[m], bnd[e])
				if cur < best {
					best = cur
					bestM = m
				}
			}
			mem[s][e] = best
			choice[s][e] = bestM
		}
	}

	bestS := -1
	bestCost := math.Inf(1)
	if fixed > 0 {
		bestS = fixed
		bestCost = mem[fixed][groups]
	} else {
		for s := 1; s <= smax; s++ { // line 20
			if mem[s][groups] < bestCost {
				bestCost = mem[s][groups]
				bestS = s
			}
		}
	}
	if bestS < 0 || math.IsInf(bestCost, 1) {
		return Plan{}, fmt.Errorf("partition: no feasible plan (rows=%d, smax=%d)", rows, smax)
	}

	// Backtrack partition points.
	boundaries := make([]int64, bestS)
	e := groups
	for s := bestS; s >= 1; s-- {
		boundaries[s-1] = bnd[e]
		e = choice[s][e]
		if e < 0 && s > 1 {
			return Plan{}, fmt.Errorf("partition: backtracking failed at shard %d", s)
		}
	}
	return Plan{Boundaries: boundaries, Cost: bestCost}, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
