package partition

import (
	"fmt"
)

// The policies in this file are the comparison points for the partitioner
// ablation: the paper's DP should beat (or match) all of them on expected
// memory, which BenchmarkAblation_PartitionerPolicy quantifies.

// SingleShard returns the trivial no-partitioning plan (the model-wise
// layout of one full-table shard).
func SingleShard(rows int64) Plan {
	return Plan{Boundaries: []int64{rows}}
}

// EqualSize splits the sorted table into numShards equally sized shards,
// ignoring access skew entirely.
func EqualSize(rows int64, numShards int) (Plan, error) {
	if numShards <= 0 {
		return Plan{}, fmt.Errorf("partition: numShards must be positive, got %d", numShards)
	}
	if int64(numShards) > rows {
		numShards = int(rows)
	}
	b := make([]int64, numShards)
	for i := 1; i <= numShards; i++ {
		b[i-1] = rows * int64(i) / int64(numShards)
	}
	return Plan{Boundaries: dedupBoundaries(b)}, nil
}

// GreedyCoverage places shard boundaries where the access CDF crosses the
// given coverage targets (e.g. 0.5, 0.9, 0.99): a hotness-threshold
// heuristic that captures skew but, unlike the DP, never weighs shard
// capacity against replica count.
func GreedyCoverage(cdf CDF, coverages []float64) (Plan, error) {
	rows := cdf.Rows()
	if rows <= 0 {
		return Plan{}, fmt.Errorf("partition: CDF covers no rows")
	}
	var b []int64
	prevCut := int64(0)
	prevCov := 0.0
	for _, cov := range coverages {
		if cov <= prevCov || cov >= 1 {
			return Plan{}, fmt.Errorf("partition: coverages must be increasing in (0,1), got %v", coverages)
		}
		cut := searchCDF(cdf, cov)
		if cut > prevCut && cut < rows {
			b = append(b, cut)
			prevCut = cut
		}
		prevCov = cov
	}
	b = append(b, rows)
	return Plan{Boundaries: dedupBoundaries(b)}, nil
}

// searchCDF returns the smallest j with At(j) >= cov via binary search
// (CDFs are non-decreasing).
func searchCDF(cdf CDF, cov float64) int64 {
	lo, hi := int64(0), cdf.Rows()
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf.At(mid) >= cov {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func dedupBoundaries(b []int64) []int64 {
	out := b[:0]
	prev := int64(0)
	for _, x := range b {
		if x > prev {
			out = append(out, x)
			prev = x
		}
	}
	return out
}

// PlanCost evaluates any plan under a cost function (sum of shard costs).
func PlanCost(p Plan, cost CostFunc) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	var total float64
	for i := 0; i < p.NumShards(); i++ {
		lo, hi := p.ShardRange(i)
		total += cost(lo, hi)
	}
	return total, nil
}
