// Package serving is the epochpin fixture: a miniature Router whose
// Acquire/AcquireModel methods pin an epoch, plus the release() method
// the pass requires on every path. The pass matches the real routing
// layer by package name, so this stand-in exercises it end to end.
package serving

import "errors"

// RoutingTable is the pinned epoch handle.
type RoutingTable struct{ pinned bool }

// release unpins the epoch.
func (rt *RoutingTable) release() { rt.pinned = false }

// Router hands out pinned routing tables.
type Router struct{ rt RoutingTable }

// Acquire pins the current epoch.
func (r *Router) Acquire() *RoutingTable { return &r.rt }

// AcquireModel pins the epoch of one model's table.
func (r *Router) AcquireModel(model string) (*RoutingTable, error) {
	if model == "" {
		return nil, errors.New("no model")
	}
	return &r.rt, nil
}
