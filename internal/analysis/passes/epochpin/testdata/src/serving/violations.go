// violations.go exercises every acquisition shape the epochpin pass
// must classify: leaks it reports, and releases/handoffs it must not.
package serving

import "errors"

func discards(r *Router) {
	r.Acquire() // want `\[epochpin\] acquired epoch is discarded`
}

func blankBound(r *Router) {
	_ = r.Acquire() // want `acquired epoch is discarded`
}

func earlyReturnLeak(r *Router, ready bool) error {
	rt := r.Acquire()
	if !ready {
		return errors.New("not ready") // want `this return path drops the pin`
	}
	rt.release()
	return nil
}

func fallsOffEnd(r *Router) { // the leak is reported at the acquire below
	rt := r.Acquire() // want `function can fall off the end`
	_ = rt.pinned
}

func nestedLeak(r *Router, retry bool) {
	if retry {
		rt := r.Acquire() // want `no release or handoff follows the acquire`
		_ = rt.pinned
	}
}

func okDefer(r *Router, q []int) int {
	rt := r.Acquire()
	defer rt.release()
	return len(q)
}

func okErrBranch(r *Router, model string) error {
	rt, err := r.AcquireModel(model)
	if err != nil {
		return err // exempt: the acquire failed, the table is nil
	}
	defer rt.release()
	return nil
}

func okAllBranches(r *Router, fast bool) int {
	rt := r.Acquire()
	if fast {
		rt.release()
		return 1
	}
	rt.release()
	return 2
}

func okHandoff(r *Router) *RoutingTable {
	rt := r.Acquire()
	return rt // the caller inherits the release obligation
}

func okGoroutineHandoff(r *Router, done chan struct{}) {
	rt := r.Acquire()
	go func() {
		defer rt.release()
		<-done
	}()
}

func suppressedLeak(r *Router) {
	//lint:escape epochpin the drain-timeout path abandons the epoch on purpose
	rt := r.Acquire()
	_ = rt.pinned
}
