// Package epochpin is the invariant pass enforcing the routing layer's
// epoch-pinning discipline: every routing table obtained from
// Router.Acquire or Router.AcquireModel must reach release() on every
// return path of the acquiring function — via defer, via a release on
// each branch, or by an explicit handoff (returning the pinned table,
// storing it, or passing it on transfers the obligation to the new
// owner). A pin that can leak keeps the epoch's in-flight refcount
// above zero forever, so Drain never completes and plan swaps wedge.
// Intentional leaks (e.g. a drain-timeout path that deliberately
// abandons the epoch) opt out with //lint:escape epochpin <reason>.
package epochpin

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Pass returns the registered form of the epochpin pass.
func Pass() analysis.Pass {
	return analysis.Pass{
		Name: "epochpin",
		Doc:  "Router.Acquire/AcquireModel results must reach release() (or an explicit handoff) on every return path",
		Run:  run,
	}
}

func run(u *analysis.Unit, report func(token.Pos, string)) {
	for _, f := range u.Files {
		parents := analysis.Parents(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(u, fd, parents, report)
			}
		}
	}
}

// isAcquire reports whether the call is Router.Acquire/AcquireModel
// from a package named serving (the fixtures' fake package matches the
// real one by name).
func isAcquire(u *analysis.Unit, call *ast.CallExpr) bool {
	fn := u.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "serving" {
		return false
	}
	if fn.Name() != "Acquire" && fn.Name() != "AcquireModel" {
		return false
	}
	return analysis.ReceiverNamed(fn, "Router")
}

// checkFunc tracks every statement-level acquire binding in the
// function. Bindings at the top level of the function body get the
// path-sensitive treatment; bindings nested inside branches fall back
// to an existence check (some release or handoff after the acquire).
func checkFunc(u *analysis.Unit, fd *ast.FuncDecl, parents map[ast.Node]ast.Node, report func(token.Pos, string)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isAcquire(u, call) {
				report(call.Pos(), "acquired epoch is discarded: bind the routing table and release() it")
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isAcquire(u, call) {
				return true
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok || lhs.Name == "_" {
				report(call.Pos(), "acquired epoch is discarded: bind the routing table and release() it")
				return true
			}
			c := &pinCheck{u: u, obj: u.ObjectOf(lhs), fnName: u.CalleeFunc(call).Name(), report: report, pos: call.Pos()}
			if len(s.Lhs) == 2 {
				if errID, ok := s.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
					c.errObj = u.ObjectOf(errID)
				}
			}
			if c.obj == nil {
				return true
			}
			if block, ok := parents[s].(*ast.BlockStmt); ok && block == fd.Body {
				rest := restAfter(block.List, s)
				st, terminated := c.walk(rest, pinState{}, false)
				if !terminated && !st.rel {
					c.report(c.pos, c.leakMsg("function can fall off the end without releasing it"))
				}
			} else if !c.anyEffectAfter(fd.Body, s.End()) {
				c.report(c.pos, c.leakMsg("no release or handoff follows the acquire"))
			}
		}
		return true
	})
}

// restAfter returns the statements following s in list.
func restAfter(list []ast.Stmt, s ast.Stmt) []ast.Stmt {
	for i, st := range list {
		if st == s {
			return list[i+1:]
		}
	}
	return nil
}

// pinState is the abstract state of one pinned table along one path.
type pinState struct {
	// rel is true once release() is guaranteed (called, deferred, or the
	// pin escaped to a new owner).
	rel bool
}

// pinCheck carries one tracked acquire through the path walk.
type pinCheck struct {
	u      *analysis.Unit
	obj    types.Object // the pinned *RoutingTable variable
	errObj types.Object // error result of the acquire, exempting err-check branches
	fnName string
	report func(token.Pos, string)
	pos    token.Pos
}

func (c *pinCheck) leakMsg(how string) string {
	return "epoch pinned by " + c.fnName + " may leak: " + how +
		" (defer release(), release on every path, or //lint:escape epochpin)"
}

// walk interprets a statement list, returning the state after it and
// whether every path through it terminated (returned or panicked).
// errExempt marks paths where the acquire failed (table is nil).
func (c *pinCheck) walk(stmts []ast.Stmt, st pinState, errExempt bool) (pinState, bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			if !st.rel && !errExempt && !c.mentions(s) {
				c.report(s.Pos(), c.leakMsg("this return path drops the pin"))
			}
			return st, true
		case *ast.DeferStmt:
			if c.effect(s.Call) {
				st.rel = true
			}
		case *ast.BlockStmt:
			var term bool
			st, term = c.walk(s.List, st, errExempt)
			if term {
				return st, true
			}
		case *ast.LabeledStmt:
			var term bool
			st, term = c.walk([]ast.Stmt{s.Stmt}, st, errExempt)
			if term {
				return st, true
			}
		case *ast.IfStmt:
			if s.Init != nil {
				st, _ = c.walk([]ast.Stmt{s.Init}, st, errExempt)
			}
			bodyExempt := errExempt || c.isErrCheck(s.Cond)
			bSt, bTerm := c.walk(s.Body.List, st, bodyExempt)
			eSt, eTerm := st, false
			if s.Else != nil {
				eSt, eTerm = c.walk([]ast.Stmt{s.Else}, st, errExempt)
			}
			if bTerm && eTerm {
				return st, true
			}
			st.rel = (bTerm || bSt.rel) && (eTerm || eSt.rel)
		case *ast.ForStmt:
			// The body may run zero times, so nothing it does is
			// guaranteed; returns inside it are still checked.
			c.walk(s.Body.List, st, errExempt)
			if s.Cond == nil && !hasBreak(s.Body) {
				return st, true // for{} without break never falls through
			}
		case *ast.RangeStmt:
			c.walk(s.Body.List, st, errExempt)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var term bool
			st, term = c.walkBranches(stmt, st, errExempt)
			if term {
				return st, true
			}
		case *ast.GoStmt:
			if c.effect(s.Call) {
				st.rel = true // handed off to the goroutine
			}
		default:
			if c.terminates(stmt) {
				return st, true
			}
			if c.effect(stmt) {
				st.rel = true
			}
		}
	}
	return st, false
}

// walkBranches handles switch/type-switch/select: the state after is
// the meet over branches; a select (or a switch with a default) whose
// branches all release-or-terminate guarantees the release.
func (c *pinCheck) walkBranches(stmt ast.Stmt, st pinState, errExempt bool) (pinState, bool) {
	var bodies [][]ast.Stmt
	exhaustive := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			bodies = append(bodies, cc.Body)
			if cc.List == nil {
				exhaustive = true
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			bodies = append(bodies, cc.Body)
			if cc.List == nil {
				exhaustive = true
			}
		}
	case *ast.SelectStmt:
		exhaustive = true // select executes exactly one branch
		for _, cl := range s.Body.List {
			bodies = append(bodies, cl.(*ast.CommClause).Body)
		}
	}
	allDone, allTerm := true, len(bodies) > 0
	for _, body := range bodies {
		bSt, bTerm := c.walk(body, st, errExempt)
		if !bTerm {
			allTerm = false
			if !bSt.rel {
				allDone = false
			}
		}
	}
	if exhaustive && allTerm {
		return st, true
	}
	st.rel = st.rel || (exhaustive && allDone)
	return st, false
}

// hasBreak reports whether the loop body contains a break that exits it
// (nested loops shadow theirs; labels are treated conservatively).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BranchStmt:
			if n.(*ast.BranchStmt).Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		}
		return !found
	})
	return found
}

// isErrCheck reports whether cond is `err != nil` for the acquire's
// error result — the branch where the table is nil and needs no release.
func (c *pinCheck) isErrCheck(cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ || c.errObj == nil {
		return false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if id, ok := ast.Unparen(side).(*ast.Ident); ok && c.u.ObjectOf(id) == c.errObj {
			return true
		}
	}
	return false
}

// mentions reports whether the return statement carries the pinned
// table (a handoff: the caller inherits the release obligation).
func (c *pinCheck) mentions(ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		if c.refersTo(res) {
			return true
		}
	}
	return false
}

// refersTo reports whether the subtree uses the pinned variable.
func (c *pinCheck) refersTo(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.u.ObjectOf(id) == c.obj {
			found = true
		}
		return !found
	})
	return found
}

// terminates reports whether the statement unconditionally ends the
// function (panic, os.Exit, log.Fatal*, runtime.Goexit).
func (c *pinCheck) terminates(stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && c.u.ObjectOf(id) == nil {
		return true
	}
	fn := c.u.CalleeFunc(call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Exit", "Goexit", "Fatal", "Fatalf", "Fatalln":
		return true
	}
	return false
}

// effect reports whether the node releases the pin or lets it escape to
// a new owner (call argument, store into a field/index/alias, composite
// literal, address-of, channel send, or capture by a closure).
func (c *pinCheck) effect(n ast.Node) bool {
	if n == nil {
		return false
	}
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	found := false
	ast.Inspect(n, func(nd ast.Node) bool {
		if nd == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[nd] = stack[len(stack)-1]
		}
		descend := !found
		switch v := nd.(type) {
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && c.u.ObjectOf(id) == c.obj &&
					(sel.Sel.Name == "release" || sel.Sel.Name == "Release") {
					found = true // the release itself
					descend = false
				}
			}
		case *ast.FuncLit:
			if c.refersTo(v.Body) {
				found = true // captured by a closure: handoff
			}
			descend = false
		case *ast.Ident:
			if c.u.ObjectOf(v) == c.obj && c.escapesAt(v, parents) {
				found = true
				descend = false
			}
		}
		if descend {
			stack = append(stack, nd)
		}
		return descend
	})
	return found
}

// escapesAt classifies one use of the pinned variable by its parent:
// reads (selector base, index base, comparisons) keep the obligation
// here; value positions hand it off.
func (c *pinCheck) escapesAt(id *ast.Ident, parents map[ast.Node]ast.Node) bool {
	switch p := parents[id].(type) {
	case *ast.SelectorExpr:
		return false // rt.Field / rt.Method(): a read
	case *ast.IndexExpr:
		return p.Index == ast.Expr(id) // base position is a read
	case *ast.BinaryExpr:
		return false // comparison: a read
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == ast.Expr(id) {
				return true // passed to a callee: handoff
			}
		}
		return false
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.KeyValueExpr, *ast.CompositeLit, *ast.SendStmt:
		return true
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ast.Expr(id) {
				return true // reassigned: stop tracking the old pin
			}
		}
		return true // stored somewhere (field, index, alias): handoff
	case *ast.ValueSpec:
		return true
	}
	return false
}

// anyEffectAfter reports whether any release or handoff of the pin
// occurs after pos anywhere in the function (the conservative check for
// acquires nested inside branches).
func (c *pinCheck) anyEffectAfter(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if n.Pos() >= pos && c.effect(n) {
			found = true
		}
		return !found
	})
	return found
}
