package epochpin

import (
	"testing"

	"repro/internal/analysis/checktest"
)

func TestEpochPinFixtures(t *testing.T) {
	checktest.Run(t, Pass(), "testdata/src/serving")
}
