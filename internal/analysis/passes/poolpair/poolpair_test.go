package poolpair

import (
	"testing"

	"repro/internal/analysis/checktest"
)

func TestPoolPairFixtures(t *testing.T) {
	checktest.Run(t, Pass(), "testdata/src/wire", "testdata/src/consumer")
}
