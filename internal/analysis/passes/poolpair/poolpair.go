// Package poolpair is the invariant pass enforcing the wire buffer
// pools' pairing discipline: every slice drawn from wire.GetFloat32,
// wire.GetInt64, wire.GetInt32 or wire.GetBuf must, within the
// acquiring function, either be recycled (wire.Put*/wire.Free*), be
// stored into one of the tracked pooled fields that downstream code
// frees (Pooled, Indices, Offsets, Dense — the fields the wire.Free*
// helpers recycle), or be handed to a releasing sink on the allowlist
// (the reply-frame writers that PutBuf after the write). A pooled slice
// that is merely dropped shrinks the pool back to allocation on every
// request; one returned to an untracked caller leaks the recycling
// obligation across an API boundary; and a double Put corrupts the pool
// by letting two owners share one backing array. Intentional handoffs
// opt out with //lint:escape poolpair <reason>.
package poolpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// getFuncs are the pool sources, putFuncs their recyclers, and
// freeFuncs the struct-level recyclers — all in the package named wire.
var (
	getFuncs  = []string{"GetFloat32", "GetInt64", "GetInt32", "GetBuf"}
	putFuncs  = []string{"PutFloat32", "PutInt64", "PutInt32", "PutBuf"}
	freeFuncs = []string{"FreeGatherRequest", "FreeGatherReply", "FreePredictRequest"}
)

// trackedFields are struct fields the wire.Free* helpers recycle:
// storing a pooled slice there is the sanctioned way to pass ownership
// across the codec boundary.
var trackedFields = map[string]bool{"Pooled": true, "Indices": true, "Offsets": true, "Dense": true}

// sinkFuncs take a pooled buffer and guarantee its recycling themselves
// (the wire server's reply writers PutBuf once the frame is written).
var sinkFuncs = map[string]bool{"finishReply": true}

// Pass returns the registered form of the poolpair pass.
func Pass() analysis.Pass {
	return analysis.Pass{
		Name: "poolpair",
		Doc:  "wire.Get* pool slices must be Put, stored into a tracked pooled field, or handed to a releasing sink in the same function",
		Run:  run,
	}
}

func run(u *analysis.Unit, report func(token.Pos, string)) {
	for _, f := range u.Files {
		parents := analysis.Parents(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(u, fd, parents, report)
			}
		}
	}
}

func isGet(u *analysis.Unit, call *ast.CallExpr) bool {
	return u.CalleeIn(call, "wire", getFuncs...)
}

// tracked is one pooled slice bound in the function: the variable it
// lives in, plus an optional field path when it was built into a
// composite literal (out := Matrix{Data: wire.GetFloat32(n)}).
type tracked struct {
	obj   types.Object
	field string // "" when the variable is the slice itself
	pos   token.Pos
	get   string // source function name, for messages
}

func checkFunc(u *analysis.Unit, fd *ast.FuncDecl, parents map[ast.Node]ast.Node, report func(token.Pos, string)) {
	var tracks []*tracked
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isGet(u, call) {
			return true
		}
		name := u.CalleeFunc(call).Name()
		if tr := bindGet(u, call, name, parents, report); tr != nil {
			tracks = append(tracks, tr)
		}
		return true
	})
	for _, tr := range tracks {
		auditTracked(u, fd, tr, report)
	}
	auditDoublePut(u, fd, report)
}

// bindGet classifies where one wire.Get* result lands. It returns a
// tracked binding to audit, or nil when the slice is already settled
// (tracked-field store, sanctioned sink) or already reported.
func bindGet(u *analysis.Unit, call *ast.CallExpr, name string, parents map[ast.Node]ast.Node, report func(token.Pos, string)) *tracked {
	switch p := parents[call].(type) {
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs != ast.Expr(call) || i >= len(p.Lhs) {
				continue
			}
			switch lhs := p.Lhs[i].(type) {
			case *ast.Ident:
				if lhs.Name == "_" {
					report(call.Pos(), name+" result is discarded: the pooled slice is never recycled")
					return nil
				}
				return &tracked{obj: u.ObjectOf(lhs), pos: call.Pos(), get: name}
			case *ast.SelectorExpr:
				if trackedFields[lhs.Sel.Name] {
					return nil // ownership handed to the tracked field
				}
				report(call.Pos(), name+" result is stored into untracked field "+lhs.Sel.Name+
					": nothing downstream recycles it")
				return nil
			}
		}
	case *ast.KeyValueExpr:
		if key, ok := p.Key.(*ast.Ident); ok {
			if trackedFields[key.Name] {
				return nil
			}
			// Composite literal assigned to a variable: track var.field.
			if lit, ok := parents[p].(*ast.CompositeLit); ok {
				if as, ok := parents[lit].(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
					if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						return &tracked{obj: u.ObjectOf(id), field: key.Name, pos: call.Pos(), get: name}
					}
				}
			}
			report(call.Pos(), name+" result is built into a literal that is never recycled")
			return nil
		}
	case *ast.CallExpr:
		if fn := u.CalleeFunc(p); fn != nil && (sinkFuncs[fn.Name()] || inList(fn.Name(), putFuncs)) {
			return nil
		}
		report(call.Pos(), name+" result is passed straight to a non-sink call: recycle it in this function")
		return nil
	case *ast.ExprStmt:
		report(call.Pos(), name+" result is discarded: the pooled slice is never recycled")
		return nil
	case *ast.ReturnStmt:
		report(call.Pos(), name+" result is returned to an untracked caller: the recycling obligation leaks")
		return nil
	}
	return nil // other expression contexts: settled elsewhere
}

func inList(name string, list []string) bool {
	for _, n := range list {
		if n == name {
			return true
		}
	}
	return false
}

// auditTracked verifies a bound pooled slice reaches a Put, a tracked
// field, or a sink somewhere in the function, and flags returning it.
func auditTracked(u *analysis.Unit, fd *ast.FuncDecl, tr *tracked, report func(token.Pos, string)) {
	settled := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if settled {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			fn := u.CalleeFunc(s)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			isRelease := fn.Pkg().Name() == "wire" && (inList(fn.Name(), putFuncs) || inList(fn.Name(), freeFuncs))
			if !isRelease && !sinkFuncs[fn.Name()] {
				return true
			}
			for _, arg := range s.Args {
				if matchesTracked(u, arg, tr) {
					settled = true
				}
			}
		case *ast.AssignStmt:
			// y.Pooled = x (or = x[...]): ownership moves to the field.
			for i, lhs := range s.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || !trackedFields[sel.Sel.Name] || i >= len(s.Rhs) {
					continue
				}
				if refersToTracked(u, s.Rhs[i], tr) {
					settled = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if matchesTracked(u, res, tr) {
					report(s.Pos(), tr.get+" slice is returned to an untracked caller: the recycling obligation leaks")
					settled = true
				}
			}
		}
		return !settled
	})
	if !settled {
		report(tr.pos, tr.get+" slice is neither Put back, stored into a tracked pooled field, nor passed to a releasing sink in this function")
	}
}

// matchesTracked reports whether expr is exactly the tracked slice
// (x, x.field, or a reslice x[...] of either).
func matchesTracked(u *analysis.Unit, expr ast.Expr, tr *tracked) bool {
	expr = ast.Unparen(expr)
	if sl, ok := expr.(*ast.SliceExpr); ok {
		expr = ast.Unparen(sl.X)
	}
	if tr.field == "" {
		id, ok := expr.(*ast.Ident)
		return ok && u.ObjectOf(id) == tr.obj
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != tr.field {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && u.ObjectOf(id) == tr.obj
}

// refersToTracked reports whether the subtree mentions the tracked
// slice at all (used for stores whose RHS wraps it in an expression).
func refersToTracked(u *analysis.Unit, n ast.Node, tr *tracked) bool {
	found := false
	ast.Inspect(n, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok && u.ObjectOf(id) == tr.obj {
			found = true
		}
		return !found
	})
	return found
}

// auditDoublePut flags two Put calls on the same plain variable within
// one statement list with no reassignment between them — after the
// first Put the pool owns the array, so the second hands out a buffer
// two callers will write concurrently.
func auditDoublePut(u *analysis.Unit, fd *ast.FuncDecl, report func(token.Pos, string)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		lastPut := map[types.Object]bool{}
		for _, stmt := range block.List {
			if as, ok := stmt.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						delete(lastPut, u.ObjectOf(id))
					}
				}
				continue
			}
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || !u.CalleeIn(call, "wire", putFuncs...) || len(call.Args) != 1 {
				continue
			}
			id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := u.ObjectOf(id)
			if obj == nil {
				continue
			}
			if lastPut[obj] {
				report(call.Pos(), "double Put of pooled slice "+id.Name+": the pool already owns this backing array")
			}
			lastPut[obj] = true
		}
		return true
	})
}
