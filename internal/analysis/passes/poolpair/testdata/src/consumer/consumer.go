// Package consumer is the poolpair fixture's client side: functions
// that leak, recycle, store, return and double-Put pooled wire slices
// in every shape the pass must classify.
package consumer

import "repro/internal/analysis/passes/poolpair/testdata/src/wire"

type holder struct{ scratch []float32 }

type matrix struct {
	Rows    int
	Scratch []float32
}

func leaks(n int) {
	buf := wire.GetFloat32(n) // want `\[poolpair\] GetFloat32 slice is neither Put back`
	_ = buf
}

func discards(n int) {
	wire.GetFloat32(n) // want `result is discarded`
}

func blankBound(n int) {
	_ = wire.GetInt64(n) // want `result is discarded`
}

func returnsLeak(n int) []float32 {
	return wire.GetFloat32(n) // want `returned to an untracked caller`
}

func untrackedField(n int) *holder {
	h := &holder{}
	h.scratch = wire.GetFloat32(n) // want `untracked field scratch`
	return h
}

func compositeLeak(n int) {
	m := matrix{Scratch: wire.GetFloat32(n)} // want `neither Put back`
	_ = m
}

func passesToNonSink(n int) {
	process(wire.GetFloat32(n)) // want `non-sink call`
}

func doublePut(n int) {
	buf := wire.GetFloat32(n)
	wire.PutFloat32(buf)
	wire.PutFloat32(buf) // want `double Put of pooled slice buf`
}

func okPut(n int) float32 {
	buf := wire.GetFloat32(n)
	sum := buf[0]
	wire.PutFloat32(buf)
	return sum
}

func okReuseAfterReassign(n int) {
	buf := wire.GetFloat32(n)
	wire.PutFloat32(buf)
	buf = wire.GetFloat32(n)
	wire.PutFloat32(buf)
}

func okTrackedStore(n int, reply *wire.GatherReply) {
	out := wire.GetFloat32(n)
	reply.Pooled = out
}

func okDirectFieldStore(n int, reply *wire.GatherReply) {
	reply.Dense = wire.GetFloat32(n)
}

func okCompositeThenPut(n int) {
	m := matrix{Rows: 1, Scratch: wire.GetFloat32(n)}
	wire.PutFloat32(m.Scratch)
}

func okResliceStore(n int, reply *wire.GatherReply) {
	out := wire.GetFloat32(n)
	reply.Pooled = out[:n/2]
}

func okSinkHandoff(n int) {
	buf := wire.GetBuf(n)
	finishReply(buf)
}

func okDirectSink(n int) {
	finishReply(wire.GetBuf(n))
}

func okFreeHelper(n int) {
	reply := &wire.GatherReply{}
	reply.Dense = wire.GetFloat32(n)
	wire.FreeGatherReply(reply)
}

func suppressedHandoff(n int) []float32 {
	//lint:escape poolpair the caller in this fixture recycles the slice itself
	return wire.GetFloat32(n)
}

// finishReply writes the frame and recycles the buffer, so the pass
// treats it as a releasing sink.
func finishReply(b []byte) {
	wire.PutBuf(b)
}

func process(s []float32) {}
