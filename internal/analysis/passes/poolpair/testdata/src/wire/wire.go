// Package wire is the poolpair fixture's pool vocabulary: the
// Get*/Put* slice pools, the Free* struct recycler and the tracked
// reply fields the pass matches by name, standing in for the real wire
// package (matched by package name, not path).
package wire

// GetFloat32 draws a float32 slice from the pool.
func GetFloat32(n int) []float32 { return make([]float32, n) }

// PutFloat32 returns a slice to the pool.
func PutFloat32(s []float32) {}

// GetInt64 draws an int64 slice from the pool.
func GetInt64(n int) []int64 { return make([]int64, n) }

// PutInt64 returns a slice to the pool.
func PutInt64(s []int64) {}

// GetBuf draws a byte buffer from the pool.
func GetBuf(n int) []byte { return make([]byte, n) }

// PutBuf returns a buffer to the pool.
func PutBuf(b []byte) {}

// GatherReply carries pooled slices in its tracked fields.
type GatherReply struct {
	Pooled []float32
	Dense  []float32
}

// FreeGatherReply recycles the reply's tracked fields.
func FreeGatherReply(r *GatherReply) {
	PutFloat32(r.Pooled)
	PutFloat32(r.Dense)
	r.Pooled, r.Dense = nil, nil
}
