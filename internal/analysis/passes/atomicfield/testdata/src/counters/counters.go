// Package counters is the atomicfield fixture: fields reached through
// sync/atomic calls that are also accessed plainly, typed atomics used
// as plain values, and the sanctioned accesses the pass must not flag.
package counters

import "sync/atomic"

type stats struct {
	hits  int64
	total atomic.Int64
	name  string
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) read() int64 {
	return s.hits // want `\[atomicfield\] plain access to field hits`
}

func resetHits(s *stats) {
	s.hits = 0 // want `plain access to field hits`
}

func copyTyped(s *stats) atomic.Int64 {
	return s.total // want `atomic field total used as a plain value`
}

func okTypedMethods(s *stats) int64 {
	s.total.Store(1)
	return s.total.Load()
}

func okTypedPointer(s *stats) *atomic.Int64 {
	return &s.total
}

func okPlainField(s *stats) string {
	return s.name
}

func suppressedPlainRead(s *stats) int64 {
	//lint:escape atomicfield read before the struct is published to any other goroutine
	return s.hits
}
