// Package atomicfield is the invariant pass enforcing all-or-nothing
// atomicity on struct fields: a field accessed even once through a
// sync/atomic call (atomic.LoadInt64(&s.f), atomic.AddInt64(&s.f, 1),
// ...) must be accessed atomically everywhere in the package — a single
// plain read or write beside the atomic ones is a data race the
// compiler happily builds. Fields declared with the typed atomics
// (atomic.Int64, atomic.Bool, atomic.Pointer[T], atomic.Value, ...) are
// checked for the misuses the type system still allows: copying the
// value, assigning it, or passing it by value all duplicate the
// underlying word and silently fork the counter. This covers the mixed
// plain/atomic access go vet does not flag. Deliberate pre-publication
// plain access opts out with //lint:escape atomicfield <reason>;
// initialization inside a composite literal is always allowed.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Pass returns the registered form of the atomicfield pass.
func Pass() analysis.Pass {
	return analysis.Pass{
		Name: "atomicfield",
		Doc:  "fields touched by sync/atomic (calls or typed atomics) must be accessed atomically everywhere",
		Run:  run,
	}
}

// atomicCallFuncs matches the sync/atomic package-level accessors.
func isAtomicCallFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// isTypedAtomic reports whether t is one of sync/atomic's typed values.
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func run(u *analysis.Unit, report func(token.Pos, string)) {
	// Phase 1: collect every field reached through a sync/atomic call,
	// and remember those call sites so phase 2 can excuse them.
	atomicFields := map[types.Object]string{} // field -> a position string for messages
	atomicUses := map[*ast.SelectorExpr]bool{}
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCallFunc(u.CalleeFunc(call)) || len(call.Args) == 0 {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if field := fieldOf(u, sel); field != nil {
				if _, seen := atomicFields[field]; !seen {
					atomicFields[field] = u.Fset.Position(sel.Pos()).String()
				}
				atomicUses[sel] = true
			}
			return true
		})
	}

	// Phase 2: every other selector landing on one of those fields, and
	// every value-context use of a typed atomic field, is a finding.
	for _, f := range u.Files {
		parents := analysis.Parents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldOf(u, sel)
			if field == nil {
				return true
			}
			if first, mixed := atomicFields[field]; mixed && !atomicUses[sel] {
				report(sel.Pos(), "plain access to field "+field.Name()+
					" which is accessed atomically at "+first+": use sync/atomic everywhere")
				return true
			}
			if isTypedAtomic(field.Type()) && !typedUseOK(sel, parents) {
				report(sel.Pos(), "atomic field "+field.Name()+
					" used as a plain value: call its methods (Load/Store/...) instead of copying or assigning it")
			}
			return true
		})
	}
}

// fieldOf resolves a selector to the struct field it denotes (nil for
// methods, package selectors and locals).
func fieldOf(u *analysis.Unit, sel *ast.SelectorExpr) *types.Var {
	s, ok := u.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// typedUseOK reports whether a typed-atomic field selector appears in a
// sanctioned context: as the base of a method call (x.f.Load()) or
// under an address-of (&x.f, passing a pointer keeps one copy).
func typedUseOK(sel *ast.SelectorExpr, parents map[ast.Node]ast.Node) bool {
	switch p := parents[sel].(type) {
	case *ast.SelectorExpr:
		return p.X == ast.Expr(sel) // x.f.Load(): base of the method selector
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}
