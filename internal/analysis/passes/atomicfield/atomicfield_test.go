package atomicfield

import (
	"testing"

	"repro/internal/analysis/checktest"
)

func TestAtomicFieldFixtures(t *testing.T) {
	checktest.Run(t, Pass(), "testdata/src/counters")
}
