// Package flow is the ctxflow fixture: fresh context roots outside
// main, context parameters in the wrong position, nil contexts, and
// the correctly threaded calls the pass must leave alone.
package flow

import "context"

func query(ctx context.Context, q string) error {
	_ = ctx
	_ = q
	return nil
}

func startsRoot(q string) error {
	return query(context.Background(), q) // want `\[ctxflow\] context.Background\(\) outside main/tests`
}

func todoRoot(q string) error {
	return query(context.TODO(), q) // want `context.TODO\(\) marks unfinished context threading`
}

func misplaced(q string, ctx context.Context) error { // want `context.Context must be the first parameter of misplaced`
	return query(ctx, q)
}

func passesNil(q string) error {
	return query(nil, q) // want `nil passed as the context argument of query`
}

func okThreaded(ctx context.Context, q string) error {
	return query(ctx, q)
}

func deliberateRoot() context.Context {
	//lint:escape ctxflow the detached control loop in this fixture mints its own root by design
	return context.Background()
}
