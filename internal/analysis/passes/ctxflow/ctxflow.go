// Package ctxflow is the invariant pass enforcing context threading on
// the serving stack's blocking paths: cancellation only works if every
// RPC and queue wait inherits the caller's context, so (1) a new root
// context (context.Background or context.TODO) may be introduced only
// in package main, in tests, or at an annotated root (a server decoding
// a wire deadline, a detached control loop); (2) a function that takes
// a context.Context must take it as its first parameter, the position
// every caller and linter expects; (3) nil must never be passed where a
// callee expects a context — pass the caller's ctx or an annotated
// root. Legitimate roots opt out with //lint:escape ctxflow <reason>.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Pass returns the registered form of the ctxflow pass.
func Pass() analysis.Pass {
	return analysis.Pass{
		Name: "ctxflow",
		Doc:  "blocking call trees thread a first-param context.Context; new roots only in main/tests or annotated",
		Run:  run,
	}
}

func run(u *analysis.Unit, report func(token.Pos, string)) {
	if u.Pkg.Name() == "main" {
		return // process entry points are where roots belong
	}
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				checkSignature(u, v, report)
			case *ast.CallExpr:
				checkRootCall(u, v, report)
				checkNilContextArg(u, v, report)
			}
			return true
		})
	}
}

// checkSignature flags a context.Context parameter anywhere but first.
func checkSignature(u *analysis.Unit, fd *ast.FuncDecl, report func(token.Pos, string)) {
	if fd.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t := u.Info.Types[field.Type]; analysis.IsContextType(t.Type) && pos > 0 {
			report(field.Pos(), "context.Context must be the first parameter of "+fd.Name.Name)
		}
		pos += n
	}
}

// checkRootCall flags context.Background()/context.TODO() — each one
// starts a fresh cancellation tree, detaching everything below it from
// the caller's deadline.
func checkRootCall(u *analysis.Unit, call *ast.CallExpr, report func(token.Pos, string)) {
	fn := u.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	switch fn.Name() {
	case "Background":
		report(call.Pos(), "context.Background() outside main/tests starts a new root: thread the caller's context (or annotate a deliberate root)")
	case "TODO":
		report(call.Pos(), "context.TODO() marks unfinished context threading: thread the caller's context")
	}
}

// checkNilContextArg flags a nil literal passed where the callee's
// first parameter is a context.Context.
func checkNilContextArg(u *analysis.Unit, call *ast.CallExpr, report func(token.Pos, string)) {
	fn := u.CalleeFunc(call)
	if fn == nil || len(call.Args) == 0 {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if sig.Params().Len() == 0 || !analysis.IsContextType(sig.Params().At(0).Type()) {
		return
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
		if _, isNil := u.ObjectOf(id).(*types.Nil); isNil {
			report(call.Args[0].Pos(), "nil passed as the context argument of "+fn.Name()+": pass the caller's ctx")
		}
	}
}
