package ctxflow

import (
	"testing"

	"repro/internal/analysis/checktest"
)

func TestCtxFlowFixtures(t *testing.T) {
	checktest.Run(t, Pass(), "testdata/src/flow")
}
