package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the package loader: it resolves ./dir/... patterns to
// module packages, parses their non-test files and typechecks them with
// go/types. Imports inside the module are loaded recursively from
// source (memoized, cycle-checked); everything else goes through the
// toolchain's export-data importer, falling back to the source importer
// when export data is unavailable — both stdlib, so the module keeps
// zero external dependencies.

// Loader loads and typechecks packages of one module.
type Loader struct {
	// Fset resolves positions for every loaded file.
	Fset *token.FileSet
	// ModuleRoot is the directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module's declared import path ("repro").
	ModulePath string

	units   map[string]*Unit // by import path, module packages only
	loading map[string]bool  // cycle guard
	gc      types.Importer   // export-data importer (may fail per path)
	source  types.Importer   // source importer fallback
	stdMemo map[string]*types.Package
}

// NewLoader creates a loader rooted at the directory holding go.mod,
// searching upward from dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		units:      map[string]*Unit{},
		loading:    map[string]bool{},
		gc:         importer.Default(),
		source:     importer.ForCompiler(fset, "source", nil),
		stdMemo:    map[string]*types.Package{},
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns its
// directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}

// Load resolves patterns (a directory like ./internal/serving, or a
// recursive ./internal/... form, relative to the module root) and
// returns the matched packages typechecked, in deterministic order.
func (l *Loader) Load(patterns ...string) ([]*Unit, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	units := make([]*Unit, 0, len(dirs))
	for _, dir := range dirs {
		u, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// expand turns one pattern into package directories (relative to the
// module root). testdata directories are skipped in recursive patterns,
// matching the go tool's convention.
func (l *Loader) expand(pat string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
	}
	rel := strings.TrimPrefix(pat, "./")
	base := filepath.Join(l.ModuleRoot, rel)
	if !recursive {
		return []string{rel}, nil
	}
	var out []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return filepath.SkipDir
		}
		if files, err := goFilesIn(path); err == nil && len(files) > 0 {
			relDir, err := filepath.Rel(l.ModuleRoot, path)
			if err != nil {
				return err
			}
			out = append(out, filepath.ToSlash(relDir))
		}
		return nil
	})
	return out, err
}

// goFilesIn lists the directory's non-test .go files, sorted.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	return files, nil
}

// LoadDir loads and typechecks the package in the given directory
// (relative to the module root), memoized by import path.
func (l *Loader) LoadDir(rel string) (*Unit, error) {
	path := l.ModulePath
	if rel != "" && rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.loadModulePkg(path)
}

// loadModulePkg loads a package of this module by import path.
func (l *Loader) loadModulePkg(path string) (*Unit, error) {
	if u, ok := l.units[path]; ok {
		return u, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %q: %w", path, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) { return l.importPkg(p) }),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: typechecking %q: %v", path, typeErrs[0])
	}
	u := &Unit{Path: path, Dir: dir, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}
	l.units[path] = u
	return u, nil
}

// importPkg resolves one import: module packages recurse through the
// source loader; everything else tries export data first, then the
// source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		u, err := l.loadModulePkg(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	if p, ok := l.stdMemo[path]; ok {
		return p, nil
	}
	p, err := l.gc.Import(path)
	if err != nil {
		p, err = l.source.Import(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: importing %q: %w", path, err)
		}
	}
	l.stdMemo[path] = p
	return p, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
