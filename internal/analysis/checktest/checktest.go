// Package checktest is the fixture harness for the invariant passes:
// it loads testdata fixture packages through the same loader the
// invariantcheck driver uses, runs one pass over them through a fresh
// Analyzer (so //lint:escape suppression and hygiene behave exactly as
// in production), and asserts the findings line up with the fixtures'
// want comments in both directions — every want must be matched by a
// finding on its line, and every finding must be expected by a want.
//
// A want comment is the analysistest convention, hand-rolled:
//
//	wire.GetFloat32(n) // want `result is discarded`
//
// The backquoted (or double-quoted) strings are regular expressions
// matched against the finding rendered as "[pass] message", so a want
// can pin the pass name as well as the message. Several wants on one
// line expect several findings on that line.
package checktest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantMarker opens a want comment.
const wantMarker = "want "

// want is one expected finding parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture package directories (relative to the calling
// test's own directory), runs the pass over every one of them, and
// fails the test on any finding/want mismatch.
func Run(t *testing.T, pass analysis.Pass, fixtureDirs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("checktest: %v", err)
	}
	var units []*analysis.Unit
	for _, dir := range fixtureDirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			t.Fatalf("checktest: %v", err)
		}
		rel, err := filepath.Rel(loader.ModuleRoot, abs)
		if err != nil {
			t.Fatalf("checktest: fixture %s is outside the module: %v", dir, err)
		}
		u, err := loader.LoadDir(filepath.ToSlash(rel))
		if err != nil {
			t.Fatalf("checktest: loading fixture %s: %v", dir, err)
		}
		units = append(units, u)
	}

	a := analysis.NewAnalyzer()
	if err := a.Register(pass); err != nil {
		t.Fatalf("checktest: %v", err)
	}
	findings := a.Run(units)
	wants := collectWants(t, units)

	for _, f := range findings {
		text := fmt.Sprintf("[%s] %s", f.Pass, f.Message)
		if !claimWant(wants, f.Pos.Filename, f.Pos.Line, text) {
			t.Errorf("unexpected finding: %s", f.String())
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %s", w.file, w.line, w.raw)
		}
	}
}

// claimWant marks the first unmatched want on file:line whose regexp
// matches text, reporting whether one was found.
func claimWant(wants []*want, file string, line int, text string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(text) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every want comment in the loaded fixtures.
func collectWants(t *testing.T, units []*analysis.Unit) []*want {
	t.Helper()
	var wants []*want
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, wantMarker) {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(text, wantMarker))
					for rest != "" {
						quoted, err := strconv.QuotedPrefix(rest)
						if err != nil {
							t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
						}
						pattern, err := strconv.Unquote(quoted)
						if err != nil {
							t.Fatalf("%s:%d: unquoting want %s: %v", pos.Filename, pos.Line, quoted, err)
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s:%d: want pattern %s: %v", pos.Filename, pos.Line, quoted, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: quoted})
						rest = strings.TrimSpace(rest[len(quoted):])
					}
				}
			}
		}
	}
	return wants
}
