package analysis

import (
	"go/ast"
	"go/types"
)

// This file holds the small typed-AST helpers every pass leans on:
// callee resolution through go/types (so passes match functions by
// identity, not by text) and a parent map for context-sensitive checks
// like "is this selector the receiver of a method call".

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (nil for calls through function values, conversions and built-ins).
// Both qualified (pkg.F, recv.M) and unqualified (F) call forms resolve.
func (u *Unit) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := u.Info.Uses[id].(*types.Func)
	return fn
}

// CalleeIn reports whether the call invokes a function named one of
// names whose defining package is named pkgName. Matching by package
// name (not full path) lets the testdata fixtures stand in for the real
// serving/wire packages.
func (u *Unit) CalleeIn(call *ast.CallExpr, pkgName string, names ...string) bool {
	fn := u.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != pkgName {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// ObjectOf returns the object an identifier denotes (definition or use).
func (u *Unit) ObjectOf(id *ast.Ident) types.Object {
	if obj := u.Info.Defs[id]; obj != nil {
		return obj
	}
	return u.Info.Uses[id]
}

// ReceiverNamed reports whether fn is a method whose receiver's named
// type is typeName (pointer receivers included).
func ReceiverNamed(fn *types.Func, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName
}

// Parents maps every node in the file to its parent, for walks that
// need the syntactic context of a match.
func Parents(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
