package analysis_test

import (
	"go/ast"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func load(t *testing.T, rel string) (*analysis.Loader, *analysis.Unit) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	u, err := loader.LoadDir(rel)
	if err != nil {
		t.Fatal(err)
	}
	return loader, u
}

// TestLoaderResolvesModuleImports proves the loader typechecks a
// package whose import graph crosses module-internal packages: the app
// fixture imports the lib fixture by full module path, and both must
// come back fully typed.
func TestLoaderResolvesModuleImports(t *testing.T) {
	_, u := load(t, "internal/analysis/testdata/src/app")
	if u.Pkg.Name() != "app" {
		t.Fatalf("package name = %q, want app", u.Pkg.Name())
	}
	found := false
	for _, imp := range u.Pkg.Imports() {
		if strings.HasSuffix(imp.Path(), "testdata/src/lib") {
			found = true
			if imp.Scope().Lookup("Answer") == nil {
				t.Errorf("lib import resolved without its Answer symbol")
			}
		}
	}
	if !found {
		t.Errorf("app fixture's lib import was not resolved; imports: %v", u.Pkg.Imports())
	}
	if u.Pkg.Scope().Lookup("Double") == nil {
		t.Errorf("app fixture missing its own Double symbol")
	}
}

// TestLoadSkipsTestdata proves recursive patterns exclude testdata
// trees, matching the go tool's convention — otherwise the driver
// would report the fixtures' deliberate violations on every CI run.
func TestLoadSkipsTestdata(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.Load("./internal/analysis/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("no packages matched ./internal/analysis/...")
	}
	seen := map[string]bool{}
	for _, u := range units {
		if strings.Contains(u.Path, "testdata") {
			t.Errorf("recursive pattern matched testdata package %s", u.Path)
		}
		seen[u.Path] = true
	}
	for _, want := range []string{
		"repro/internal/analysis",
		"repro/internal/analysis/passes/epochpin",
		"repro/internal/analysis/passes/poolpair",
		"repro/internal/analysis/passes/atomicfield",
		"repro/internal/analysis/passes/ctxflow",
	} {
		if !seen[want] {
			t.Errorf("pattern missed package %s (got %v)", want, units)
		}
	}
}

// TestRegistrationOrder proves passes run in exactly the order they
// were registered, and that duplicate, reserved and anonymous passes
// are rejected — suppression comments must stay unambiguous.
func TestRegistrationOrder(t *testing.T) {
	a := analysis.NewAnalyzer()
	noop := func(u *analysis.Unit, report func(token.Pos, string)) {}
	for _, name := range []string{"ccc", "aaa", "bbb"} {
		if err := a.Register(analysis.Pass{Name: name, Run: noop}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for _, p := range a.Passes() {
		got = append(got, p.Name)
	}
	if strings.Join(got, ",") != "ccc,aaa,bbb" {
		t.Errorf("registration order not preserved: %v", got)
	}
	if err := a.Register(analysis.Pass{Name: "aaa", Run: noop}); err == nil {
		t.Error("duplicate pass name accepted")
	}
	if err := a.Register(analysis.Pass{Name: analysis.EscapePass, Run: noop}); err == nil {
		t.Error("reserved pass name accepted")
	}
	if err := a.Register(analysis.Pass{Run: noop}); err == nil {
		t.Error("anonymous pass accepted")
	}
}

// reportOnVars returns a pass that reports on the declaration line of
// each named package-level variable, in the order given.
func reportOnVars(name string, vars ...string) analysis.Pass {
	return analysis.Pass{
		Name: name,
		Doc:  "test pass",
		Run: func(u *analysis.Unit, report func(token.Pos, string)) {
			for _, want := range vars {
				for _, f := range u.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						if vs, ok := n.(*ast.ValueSpec); ok && len(vs.Names) > 0 && vs.Names[0].Name == want {
							report(vs.Pos(), "flagged "+want)
						}
						return true
					})
				}
			}
		},
	}
}

// TestFindingsSorted proves findings come back ordered by position
// regardless of the order passes emitted them, and that two findings
// on one line keep registration order (the sort is stable).
func TestFindingsSorted(t *testing.T) {
	_, esc := load(t, "internal/analysis/testdata/src/escapes")
	// zz reports the LATER variable (Unknown) before the earlier one.
	b := analysis.NewAnalyzer()
	if err := b.Register(reportOnVars("zz", "Unknown", "Covered")); err != nil {
		t.Fatal(err)
	}
	findings := b.Run([]*analysis.Unit{esc})
	var zz []analysis.Finding
	for _, f := range findings {
		if f.Pass == "zz" {
			zz = append(zz, f)
		}
	}
	if len(zz) != 2 {
		t.Fatalf("want 2 zz findings, got %v", findings)
	}
	if zz[0].Pos.Line >= zz[1].Pos.Line {
		t.Errorf("findings not sorted by line: %v", zz)
	}
	if !strings.Contains(zz[0].Message, "Covered") || !strings.Contains(zz[1].Message, "Unknown") {
		t.Errorf("sort did not reorder by position: %v", zz)
	}

	// Same line, two passes: registration order must survive the sort.
	c := analysis.NewAnalyzer()
	if err := c.Register(reportOnVars("zz", "Unknown")); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(reportOnVars("aa", "Unknown")); err != nil {
		t.Fatal(err)
	}
	got := c.Run([]*analysis.Unit{esc})
	var same []string
	for _, f := range got {
		if f.Message == "flagged Unknown" {
			same = append(same, f.Pass)
		}
	}
	if strings.Join(same, ",") != "zz,aa" {
		t.Errorf("same-line findings lost registration order: %v", same)
	}
}

// TestEscapeSuppression proves the //lint:escape lifecycle end to end
// on the escapes fixture: a covering suppression silences its finding,
// and unused, malformed, unknown-pass and reasonless suppressions each
// surface as hygiene findings of the reserved escape pass.
func TestEscapeSuppression(t *testing.T) {
	_, u := load(t, "internal/analysis/testdata/src/escapes")
	a := analysis.NewAnalyzer()
	if err := a.Register(reportOnVars("demo", "Covered", "NoReason")); err != nil {
		t.Fatal(err)
	}
	findings := a.Run([]*analysis.Unit{u})
	for _, f := range findings {
		if f.Pass == "demo" {
			t.Errorf("suppressed demo finding leaked through: %s", f.String())
		}
	}
	wantParts := []string{
		"unused //lint:escape suppression",
		"malformed //lint:escape comment",
		`unknown pass "nosuchpass"`,
		"needs a reason",
	}
	if len(findings) != len(wantParts) {
		t.Fatalf("want %d hygiene findings, got %d: %v", len(wantParts), len(findings), findings)
	}
	for i, part := range wantParts {
		if findings[i].Pass != analysis.EscapePass {
			t.Errorf("finding %d has pass %q, want escape", i, findings[i].Pass)
		}
		if !strings.Contains(findings[i].Message, part) {
			t.Errorf("finding %d = %q, want it to mention %q", i, findings[i].Message, part)
		}
	}
}

// TestFindingString pins the canonical rendering the driver prints and
// the fixtures' want comments match against.
func TestFindingString(t *testing.T) {
	f := analysis.Finding{
		Pos:     token.Position{Filename: "x.go", Line: 3, Column: 7},
		Pass:    "demo",
		Message: "m",
	}
	if got, want := f.String(), "x.go:3: [demo] m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
