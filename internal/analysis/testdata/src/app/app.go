// Package app is the loader fixture's root: it imports the lib fixture
// through its full module path, so typechecking it exercises the
// loader's recursive module-internal import resolution.
package app

import "repro/internal/analysis/testdata/src/lib"

// Double leans on lib so the import is not vestigial.
func Double() int { return 2 * lib.Answer() }
