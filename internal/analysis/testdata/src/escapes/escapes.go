// Package escapes is the framework fixture for //lint:escape hygiene:
// one suppression of each kind — covering, unused, malformed, naming an
// unknown pass, and missing its reason — driven by a fake pass in the
// framework test that reports on the Covered and NoReason lines.
package escapes

//lint:escape demo covered by the fake demo pass in the framework test
var Covered = 1

//lint:escape demo nothing on this line ever violates the demo invariant
var Unused = 2

//lint:escape
var Malformed = 3

//lint:escape nosuchpass a reason does not save an unknown pass name
var Unknown = 4

//lint:escape demo
var NoReason = 5
