// Package lib is the loader fixture's dependency: a module-internal
// package the app fixture imports, proving the loader resolves
// intra-module imports from source.
package lib

// Answer is exported so the app fixture has something typed to import.
func Answer() int { return 42 }
