// Package leakcheck is a goroutine-leak guard for TestMain: after a
// package's tests pass, it polls the full goroutine dump until every
// goroutine created by this module's code has exited (or a settle
// window elapses), and fails the test binary with the leaked stacks if
// any remain. The serving stack is built out of background loops —
// pool workers, autoscalers, batchers, wire servers — and a test that
// forgets to stop one passes today and poisons every later test's
// timing; the guard turns that silent leak into a hard failure at the
// point the leak was introduced. Known-benign long-lived goroutines
// are excused by substring with Ignore.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// settleWindow bounds how long Main waits for goroutines that are
// already shutting down (closed channels, canceled contexts) to exit.
const settleWindow = 2 * time.Second

// Option configures the guard.
type Option func(*config)

type config struct {
	ignores []string
}

// Ignore excuses goroutines whose stack contains the substring —
// for deliberately detached loops a package cannot join on.
func Ignore(substr string) Option {
	return func(c *config) { c.ignores = append(c.ignores, substr) }
}

// Main runs the package's tests and then fails the process if
// module-created goroutines are still running after the settle window.
// Use it as the whole body of TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
func Main(m *testing.M, opts ...Option) {
	cfg := &config{}
	for _, o := range opts {
		o(cfg)
	}
	code := m.Run()
	if code == 0 {
		if leaked := settle(cfg); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) created by module code leaked past the tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// settle polls for module goroutines until none remain or the window
// closes, returning whatever is still alive.
func settle(cfg *config) []string {
	deadline := time.Now().Add(settleWindow)
	for {
		leaked := moduleGoroutines(cfg)
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// moduleGoroutines returns the stacks of goroutines created by this
// module's code (their "created by" frame references a repro/ package),
// minus the ignored ones. Runtime, testing-harness and stdlib-spawned
// goroutines never match, so the guard cannot flake on them.
func moduleGoroutines(cfg *config) []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
	for _, stack := range strings.Split(string(buf), "\n\n") {
		if !strings.Contains(stack, "created by repro/") {
			continue
		}
		ignored := false
		for _, substr := range cfg.ignores {
			if strings.Contains(stack, substr) {
				ignored = true
				break
			}
		}
		if !ignored {
			leaked = append(leaked, stack)
		}
	}
	return leaked
}
