package leakcheck

import (
	"strings"
	"testing"
)

// TestMain dogfoods the guard on this package's own tests.
func TestMain(m *testing.M) { Main(m) }

// TestModuleGoroutineDetection proves the filter catches a goroutine
// created by module code, that Ignore excuses it by substring, and
// that settle sees it drain once unblocked.
func TestModuleGoroutineDetection(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	leaked := moduleGoroutines(&config{})
	if len(leaked) == 0 {
		t.Fatal("blocked module goroutine not detected")
	}
	found := false
	for _, s := range leaked {
		if strings.Contains(s, "TestModuleGoroutineDetection") {
			found = true
		}
	}
	if !found {
		t.Errorf("leak report does not name the creating test: %v", leaked)
	}

	if got := moduleGoroutines(&config{ignores: []string{"leakcheck"}}); len(got) != 0 {
		t.Errorf("Ignore(leakcheck) did not excuse the goroutine: %v", got)
	}

	close(block)
	if got := settle(&config{}); len(got) != 0 {
		t.Errorf("goroutine still reported after unblocking: %v", got)
	}
}
