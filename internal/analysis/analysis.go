// Package analysis is a dependency-free static-analysis framework for
// this module's invariant passes: it loads packages with go/parser,
// typechecks them with go/types, runs registered passes over the typed
// ASTs and reports findings as "file:line: [pass] message". It exists
// because the serving stack's correctness now rests on hand-enforced
// pairing invariants (epoch pins released, pooled buffers returned,
// atomics never mixed with plain access, contexts threaded) that only
// -race tests caught dynamically — a pass catches them at lint time on
// every path, including paths no test exercises. The module stays at
// zero external dependencies, like cmd/doccheck: no golang.org/x/tools.
//
// A pass is a named Run function over one typechecked package (a Unit).
// Passes register with an Analyzer in an explicit, deterministic order;
// findings come back stable-sorted by position. An intentional violation
// is silenced in place with
//
//	//lint:escape <pass> <reason why the invariant is intentionally broken>
//
// on the offending line or the line directly above it. A suppression
// that silences nothing is itself a finding (pass "escape"), so stale
// opt-outs cannot linger after the code they excused is gone.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one reported invariant violation.
type Finding struct {
	// Pos locates the violation (file resolved through the loader fset).
	Pos token.Position
	// Pass names the pass that produced the finding ("escape" for
	// suppression hygiene findings emitted by the framework itself).
	Pass string
	// Message states the violation.
	Message string
}

// String renders the finding in the canonical file:line: [pass] message
// form the driver prints and the fixtures' want-comments match against.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pass, f.Message)
}

// Unit is one typechecked package: the input every pass runs over.
type Unit struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset resolves every Pos in Files and Info.
	Fset *token.FileSet
	// Files holds the package's non-test files, sorted by filename.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// Info carries full type information (Types, Defs, Uses, Selections).
	Info *types.Info
}

// Pass is one registered invariant check.
type Pass struct {
	// Name identifies the pass in findings and //lint:escape comments.
	Name string
	// Doc is the one-line invariant the pass encodes (driver -list).
	Doc string
	// Run inspects one package and reports violations through report.
	Run func(u *Unit, report func(pos token.Pos, msg string))
}

// EscapePass is the reserved pass name for suppression-hygiene findings
// (malformed or unused //lint:escape comments).
const EscapePass = "escape"

// Analyzer runs passes in registration order and applies //lint:escape
// suppressions to their findings.
type Analyzer struct {
	passes []Pass
	byName map[string]bool
}

// NewAnalyzer returns an empty analyzer; register passes in the order
// they should run (the order is preserved exactly).
func NewAnalyzer() *Analyzer {
	return &Analyzer{byName: map[string]bool{EscapePass: true}}
}

// Register appends a pass. Duplicate or reserved names are an error so
// suppression comments stay unambiguous.
func (a *Analyzer) Register(p Pass) error {
	if p.Name == "" || p.Run == nil {
		return fmt.Errorf("analysis: pass needs a name and a Run function")
	}
	if a.byName[p.Name] {
		return fmt.Errorf("analysis: pass %q already registered", p.Name)
	}
	a.byName[p.Name] = true
	a.passes = append(a.passes, p)
	return nil
}

// Passes returns the registered pass names in registration order.
func (a *Analyzer) Passes() []Pass { return append([]Pass(nil), a.passes...) }

// Run executes every registered pass over every unit, drops findings
// covered by //lint:escape suppressions, reports unused or malformed
// suppressions, and returns the surviving findings stable-sorted by
// (file, line, column) — findings on the same line keep pass
// registration order.
func (a *Analyzer) Run(units []*Unit) []Finding {
	var out []Finding
	for _, u := range units {
		sup := suppressionsFor(u)
		for _, p := range a.passes {
			pass := p // capture
			p.Run(u, func(pos token.Pos, msg string) {
				position := u.Fset.Position(pos)
				if sup.covers(position.Filename, position.Line, pass.Name) {
					return
				}
				out = append(out, Finding{Pos: position, Pass: pass.Name, Message: msg})
			})
		}
		out = append(out, sup.hygiene(a.byName)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Column < out[j].Pos.Column
	})
	return out
}

// escapeMarker is the comment prefix that opens a suppression.
const escapeMarker = "lint:escape"

// suppression is one parsed //lint:escape comment.
type suppression struct {
	pos    token.Position
	pass   string // "" when malformed
	reason string
	used   bool
}

// suppressionIndex maps (file, line) to the suppressions that cover it.
// A comment covers its own line and the line directly below it, so both
// trailing and line-above placements work.
type suppressionIndex struct {
	byLine map[string]map[int][]*suppression
	all    []*suppression
}

// suppressionsFor scans a unit's comments for //lint:escape markers.
func suppressionsFor(u *Unit) *suppressionIndex {
	idx := &suppressionIndex{byLine: map[string]map[int][]*suppression{}}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, escapeMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, escapeMarker))
				s := &suppression{pos: u.Fset.Position(c.Pos())}
				if fields := strings.Fields(rest); len(fields) > 0 {
					s.pass = fields[0]
					s.reason = strings.TrimSpace(rest[len(fields[0]):])
				}
				idx.all = append(idx.all, s)
				file := idx.byLine[s.pos.Filename]
				if file == nil {
					file = map[int][]*suppression{}
					idx.byLine[s.pos.Filename] = file
				}
				file[s.pos.Line] = append(file[s.pos.Line], s)
				file[s.pos.Line+1] = append(file[s.pos.Line+1], s)
			}
		}
	}
	return idx
}

// covers reports whether a suppression for the pass covers file:line,
// marking it used.
func (idx *suppressionIndex) covers(file string, line int, pass string) bool {
	hit := false
	for _, s := range idx.byLine[file][line] {
		if s.pass == pass {
			s.used = true
			hit = true
		}
	}
	return hit
}

// hygiene returns findings for malformed, unknown-pass and unused
// suppressions — an opt-out that excuses nothing is itself a violation.
func (idx *suppressionIndex) hygiene(known map[string]bool) []Finding {
	var out []Finding
	for _, s := range idx.all {
		switch {
		case s.pass == "":
			out = append(out, Finding{Pos: s.pos, Pass: EscapePass,
				Message: "malformed //lint:escape comment: want //lint:escape <pass> <reason>"})
		case !known[s.pass]:
			out = append(out, Finding{Pos: s.pos, Pass: EscapePass,
				Message: fmt.Sprintf("//lint:escape names unknown pass %q", s.pass)})
		case !s.used:
			out = append(out, Finding{Pos: s.pos, Pass: EscapePass,
				Message: fmt.Sprintf("unused //lint:escape suppression for pass %q (nothing to silence here)", s.pass)})
		case s.reason == "":
			out = append(out, Finding{Pos: s.pos, Pass: EscapePass,
				Message: fmt.Sprintf("//lint:escape %s needs a reason explaining the intentional violation", s.pass)})
		}
	}
	return out
}
