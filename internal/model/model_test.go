package model

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// tiny returns a small, fast test model.
func tiny() Config {
	return Config{
		Name:          "tiny",
		DenseInputDim: 4,
		BottomMLP:     []int{8, 4},
		TopMLP:        []int{8, 1},
		NumTables:     3,
		RowsPerTable:  50,
		EmbeddingDim:  4,
		Pooling:       5,
		LocalityP:     0.9,
		BatchSize:     2,
	}
}

func TestConfigValidate(t *testing.T) {
	good := tiny()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tiny()
	bad.BottomMLP = []int{8, 5} // last width != embedding dim
	if err := bad.Validate(); err == nil {
		t.Fatal("want bottom-MLP/dim mismatch error")
	}
	bad = tiny()
	bad.TopMLP = []int{8, 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("want top-MLP width error")
	}
	bad = tiny()
	bad.LocalityP = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("want locality error")
	}
	bad = tiny()
	bad.NumTables = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("want table count error")
	}
	bad = tiny()
	bad.DenseInputDim = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("want dense input error")
	}
	bad = tiny()
	bad.BatchSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("want batch size error")
	}
}

func TestInteractionDim(t *testing.T) {
	cfg := tiny() // 3 tables + bottom = 4 vectors -> 6 pairs + dim 4
	if got := cfg.InteractionDim(); got != 10 {
		t.Fatalf("InteractionDim = %d, want 10", got)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range StateOfTheArt() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if RM2().NumTables != 32 || RM3().Pooling != 32 {
		t.Fatal("Table II presets corrupted")
	}
	for _, size := range []MLPSize{MLPLight, MLPMedium, MLPHeavy} {
		cfg, err := MicroMLP(size)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if _, err := MicroMLP("Huge"); err == nil {
		t.Fatal("want unknown-size error")
	}
	for _, lvl := range []LocalityLevel{LocalityLow, LocalityMedium, LocalityHigh} {
		cfg, err := MicroLocality(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if _, err := MicroLocality("None"); err == nil {
		t.Fatal("want unknown-level error")
	}
	for _, n := range MicroTableCounts() {
		if _, err := MicroTables(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := MicroTables(0); err == nil {
		t.Fatal("want table-count error")
	}
}

func TestMicroLocalityValues(t *testing.T) {
	lo, _ := MicroLocality(LocalityLow)
	hi, _ := MicroLocality(LocalityHigh)
	if lo.LocalityP != 0.10 || hi.LocalityP != 0.90 {
		t.Fatalf("locality presets: low=%v high=%v", lo.LocalityP, hi.LocalityP)
	}
}

func TestWithRowsAndName(t *testing.T) {
	cfg := RM1().WithRows(1000).WithName("rm1-small")
	if cfg.RowsPerTable != 1000 || cfg.Name != "rm1-small" {
		t.Fatalf("WithRows/WithName broken: %+v", cfg)
	}
	if RM1().RowsPerTable != 20_000_000 {
		t.Fatal("WithRows must not mutate the preset")
	}
}

func TestAccountingPaperGeometry(t *testing.T) {
	cfg := RM1()
	// 10 tables x 20M rows x 32 dims x 4B = 25.6 GB of embeddings.
	if got := cfg.SparseBytes(); got != 10*20_000_000*32*4 {
		t.Fatalf("SparseBytes = %d", got)
	}
	if got := cfg.TableBytes(); got != 20_000_000*32*4 {
		t.Fatalf("TableBytes = %d", got)
	}
	// Dense parameters are a few hundred KB — the Fig. 3 asymmetry.
	if cfg.DenseBytes() > 10<<20 {
		t.Fatalf("DenseBytes = %d, expected well under 10MB", cfg.DenseBytes())
	}
	occ := cfg.Occupancy()
	if occ.SparseMemShare < 0.99 {
		t.Fatalf("sparse memory share = %v, want > 0.99", occ.SparseMemShare)
	}
	if occ.DenseFLOPsShare < 0.5 {
		t.Fatalf("dense FLOPs share = %v, want majority", occ.DenseFLOPsShare)
	}
	if math.Abs(occ.DenseFLOPsShare+occ.SparseFLOPsShare-1) > 1e-9 {
		t.Fatal("FLOPs shares must sum to 1")
	}
	if got := cfg.LookupsPerQuery(); got != 32*10*128 {
		t.Fatalf("LookupsPerQuery = %d", got)
	}
	if got := cfg.SparseBytesReadPerQuery(); got != 32*10*128*32*4 {
		t.Fatalf("SparseBytesReadPerQuery = %d", got)
	}
}

func TestSparseFLOPsPerQuery(t *testing.T) {
	cfg := tiny()
	want := int64(cfg.NumTables*cfg.Pooling*cfg.EmbeddingDim) * int64(cfg.BatchSize)
	if got := cfg.SparseFLOPsPerQuery(); got != want {
		t.Fatalf("SparseFLOPsPerQuery = %d, want %d", got, want)
	}
	if cfg.DenseFLOPsPerQuery() != cfg.DenseFLOPsPerInput()*int64(cfg.BatchSize) {
		t.Fatal("query FLOPs must scale with batch")
	}
}

func TestNewModelAndForward(t *testing.T) {
	m, err := New(tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dense := tensor.Vector{0.1, 0.2, 0.3, 0.4}
	sparse := [][]int64{{0, 1}, {2, 3}, {4, 5}}
	p, err := m.Forward(dense, sparse)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p > 1 || math.IsNaN(float64(p)) {
		t.Fatalf("probability = %v", p)
	}
	// Deterministic across instances with the same seed.
	m2, _ := New(tiny(), 1)
	p2, _ := m2.Forward(dense, sparse)
	if p != p2 {
		t.Fatal("same seed must reproduce predictions")
	}
	// Wrong sparse arity errors.
	if _, err := m.Forward(dense, sparse[:2]); err == nil {
		t.Fatal("want arity error")
	}
}

func TestForwardPooledMatchesForward(t *testing.T) {
	m, err := New(tiny(), 2)
	if err != nil {
		t.Fatal(err)
	}
	dense := tensor.Vector{0.5, -0.5, 0.25, 1}
	sparse := [][]int64{{1, 2, 3}, {4, 4}, {10}}
	want, err := m.Forward(dense, sparse)
	if err != nil {
		t.Fatal(err)
	}
	pooled := make([]tensor.Vector, len(m.Tables))
	for t2, tab := range m.Tables {
		pooled[t2] = make(tensor.Vector, m.Config.EmbeddingDim)
		if err := tab.GatherPool(pooled[t2], sparse[t2]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.ForwardPooled(dense, pooled)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("ForwardPooled = %v, Forward = %v", got, want)
	}
}

func TestForwardBatch(t *testing.T) {
	cfg := tiny()
	m, err := New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	denseIn := tensor.NewMatrix(2, cfg.DenseInputDim)
	tensor.InitUniform(denseIn.Data, 1, 4)
	batches := make([]*embedding.Batch, cfg.NumTables)
	for i := range batches {
		batches[i] = &embedding.Batch{
			Indices: []int64{0, 1, 2, 3},
			Offsets: []int32{0, 2},
		}
	}
	probs, err := m.ForwardBatch(denseIn, batches)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 2 {
		t.Fatalf("probs = %v", probs)
	}
	// Each row must equal the per-input Forward.
	for i := 0; i < 2; i++ {
		idx := make([][]int64, cfg.NumTables)
		for t2 := range idx {
			idx[t2] = batches[t2].InputIndices(i)
		}
		want, err := m.Forward(denseIn.Row(i), idx)
		if err != nil {
			t.Fatal(err)
		}
		if probs[i] != want {
			t.Fatalf("batch[%d] = %v, want %v", i, probs[i], want)
		}
	}
	// Mismatched batch sizes error.
	bad := make([]*embedding.Batch, cfg.NumTables)
	for i := range bad {
		bad[i] = &embedding.Batch{Indices: []int64{0}, Offsets: []int32{0}}
	}
	if _, err := m.ForwardBatch(denseIn, bad); err == nil {
		t.Fatal("want batch-size mismatch error")
	}
}

func TestModelClone(t *testing.T) {
	m, _ := New(tiny(), 5)
	c := m.Clone()
	dense := tensor.Vector{1, 2, 3, 4}
	sparse := [][]int64{{0}, {1}, {2}}
	pm, _ := m.Forward(dense, sparse)
	pc, _ := c.Forward(dense, sparse)
	if pm != pc {
		t.Fatal("clone must predict identically")
	}
	// Clone's tables are private copies.
	_ = c.Tables[0].SetVector(0, make(tensor.Vector, 4))
	pc2, _ := c.Forward(dense, sparse)
	pm2, _ := m.Forward(dense, sparse)
	if pm2 != pm {
		t.Fatal("mutating clone affected original")
	}
	if pc2 == pc {
		t.Fatal("clone mutation had no effect")
	}
}

func TestNewDenseOnly(t *testing.T) {
	m, err := NewDenseOnly(tiny(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tables) != 0 {
		t.Fatal("dense-only model must have no tables")
	}
	pooled := make([]tensor.Vector, 3)
	for i := range pooled {
		pooled[i] = make(tensor.Vector, 4)
	}
	p, err := m.ForwardPooled(tensor.Vector{1, 2, 3, 4}, pooled)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(float64(p)) {
		t.Fatal("NaN prediction")
	}
}

func TestInteractValidation(t *testing.T) {
	m, _ := New(tiny(), 1)
	bottom := make(tensor.Vector, 4)
	pooled := make([]tensor.Vector, 3)
	for i := range pooled {
		pooled[i] = make(tensor.Vector, 4)
	}
	dst := make(tensor.Vector, 10)
	if err := m.Interact(dst, bottom, pooled); err != nil {
		t.Fatal(err)
	}
	if err := m.Interact(dst, bottom, pooled[:2]); err == nil {
		t.Fatal("want pooled arity error")
	}
	if err := m.Interact(make(tensor.Vector, 5), bottom, pooled); err == nil {
		t.Fatal("want dst size error")
	}
}

func TestInteractHandChecked(t *testing.T) {
	cfg := tiny()
	cfg.NumTables = 1
	cfg.EmbeddingDim = 2
	cfg.BottomMLP = []int{4, 2}
	m, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	bottom := tensor.Vector{1, 2}
	pooled := []tensor.Vector{{3, 4}}
	// InteractionDim = C(2,2)=1 pair + dim 2 = 3.
	dst := make(tensor.Vector, 3)
	if err := m.Interact(dst, bottom, pooled); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 11 { // 1*3 + 2*4
		t.Fatalf("pair dot = %v, want 11", dst[0])
	}
	if dst[1] != 1 || dst[2] != 2 {
		t.Fatalf("bottom copy = %v", dst[1:])
	}
}

// TestConcurrentForwardDeterminism: forward passes draw scratch from the
// model's pool, so concurrent callers over shared parameters must produce
// exactly the results a lone caller gets. Run with -race in CI.
func TestConcurrentForwardDeterminism(t *testing.T) {
	cfg := tiny()
	m, err := New(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	const inputs = 16
	dense := make([]tensor.Vector, inputs)
	sparse := make([][][]int64, inputs)
	want := make([]float32, inputs)
	for i := range dense {
		dense[i] = make(tensor.Vector, cfg.DenseInputDim)
		tensor.InitUniform(dense[i], 1, uint64(i+1))
		sparse[i] = make([][]int64, cfg.NumTables)
		for tb := range sparse[i] {
			sparse[i][tb] = []int64{int64(i) % cfg.RowsPerTable, int64(i+tb) % cfg.RowsPerTable}
		}
		p, err := m.Forward(dense[i], sparse[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := rep % inputs
				p, err := m.Forward(dense[i], sparse[i])
				if err != nil {
					errs <- err
					return
				}
				if p != want[i] {
					errs <- fmt.Errorf("input %d: concurrent %v != serial %v", i, p, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestScratchReuse: an explicitly acquired scratch survives reuse across a
// batch of forward passes (the dense shard's hot-loop pattern).
func TestScratchReuse(t *testing.T) {
	cfg := tiny()
	m, err := New(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := m.AcquireScratch()
	defer m.ReleaseScratch(s)
	dense := make(tensor.Vector, cfg.DenseInputDim)
	pooled := make([]tensor.Vector, cfg.NumTables)
	for i := range pooled {
		pooled[i] = make(tensor.Vector, cfg.EmbeddingDim)
	}
	first, err := m.ForwardPooledScratch(s, dense, pooled)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p, err := m.ForwardPooledScratch(s, dense, pooled)
		if err != nil {
			t.Fatal(err)
		}
		if p != first {
			t.Fatalf("iteration %d: %v != %v — scratch reuse corrupts state", i, p, first)
		}
	}
}
