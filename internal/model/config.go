// Package model implements the DLRM recommendation model the paper serves
// (Fig. 1): a bottom MLP over continuous features, multi-hot embedding
// lookups over categorical features, pairwise feature interaction, and a
// top MLP producing a click probability. It also carries the workload
// configurations of Table I (microbenchmarks) and Table II (RM1-RM3) and
// the architecture-independent FLOPs/memory accounting behind Fig. 3(a).
package model

import (
	"fmt"
)

// Config describes one DLRM architecture plus its serving workload
// parameters. Widths follow the paper's notation: BottomMLP "256-128-32"
// means hidden widths 256, 128 and an output width equal to the embedding
// dimension.
type Config struct {
	Name string

	// DenseInputDim is the number of continuous features (13, following
	// the Criteo/DLRM convention the paper's DLRM repository uses).
	DenseInputDim int
	// BottomMLP lists layer output widths; the last must equal
	// EmbeddingDim so the bottom output can join the feature interaction.
	BottomMLP []int
	// TopMLP lists layer output widths; the last must be 1 (the logit).
	TopMLP []int

	// NumTables is the number of embedding tables.
	NumTables int
	// RowsPerTable is the number of embedding vectors per table (the
	// paper's RMs use 20M).
	RowsPerTable int64
	// EmbeddingDim is the embedding vector dimension.
	EmbeddingDim int
	// Pooling is the number of embedding gathers per table per input
	// ("number of embedding gathers" in Table II).
	Pooling int

	// LocalityP is the access-locality metric (share of lookups hitting
	// the hottest 10% of rows).
	LocalityP float64
	// BatchSize is the number of items ranked per query (32, Sec. V-C).
	BatchSize int
}

// Validate checks structural invariants.
func (c Config) Validate() error {
	if c.DenseInputDim <= 0 {
		return fmt.Errorf("model %s: DenseInputDim must be positive", c.Name)
	}
	if len(c.BottomMLP) == 0 || len(c.TopMLP) == 0 {
		return fmt.Errorf("model %s: empty MLP spec", c.Name)
	}
	if c.BottomMLP[len(c.BottomMLP)-1] != c.EmbeddingDim {
		return fmt.Errorf("model %s: bottom MLP output %d must equal embedding dim %d",
			c.Name, c.BottomMLP[len(c.BottomMLP)-1], c.EmbeddingDim)
	}
	if c.TopMLP[len(c.TopMLP)-1] != 1 {
		return fmt.Errorf("model %s: top MLP must end in width 1", c.Name)
	}
	if c.NumTables <= 0 || c.RowsPerTable <= 0 || c.EmbeddingDim <= 0 || c.Pooling <= 0 {
		return fmt.Errorf("model %s: invalid sparse geometry", c.Name)
	}
	if c.LocalityP <= 0 || c.LocalityP > 1 {
		return fmt.Errorf("model %s: LocalityP %v out of (0,1]", c.Name, c.LocalityP)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("model %s: BatchSize must be positive", c.Name)
	}
	return nil
}

// WithRows returns a copy with RowsPerTable overridden — used to
// instantiate live (in-memory) models at a reduced scale while cost
// accounting stays on the paper geometry.
func (c Config) WithRows(rows int64) Config {
	c.RowsPerTable = rows
	return c
}

// WithName returns a copy with a new name.
func (c Config) WithName(name string) Config {
	c.Name = name
	return c
}

// InteractionDim returns the width of the feature-interaction output that
// feeds the top MLP: all pairwise dot products among the (NumTables+1)
// dim-EmbeddingDim vectors, concatenated with the bottom-MLP output.
func (c Config) InteractionDim() int {
	n := c.NumTables + 1
	return n*(n-1)/2 + c.EmbeddingDim
}

// bottomDims returns the full width sequence of the bottom MLP.
func (c Config) bottomDims() []int {
	return append([]int{c.DenseInputDim}, c.BottomMLP...)
}

// topDims returns the full width sequence of the top MLP.
func (c Config) topDims() []int {
	return append([]int{c.InteractionDim()}, c.TopMLP...)
}

// --- Table II: state-of-the-art RecSys workloads ---

// RM1 is DLRM RM1 (Table II).
func RM1() Config {
	return Config{
		Name:          "RM1",
		DenseInputDim: 13,
		BottomMLP:     []int{256, 128, 32},
		TopMLP:        []int{256, 64, 1},
		NumTables:     10,
		RowsPerTable:  20_000_000,
		EmbeddingDim:  32,
		Pooling:       128,
		LocalityP:     0.90,
		BatchSize:     32,
	}
}

// RM2 is DLRM RM2 (Table II): 32 tables, wider top MLP.
func RM2() Config {
	c := RM1()
	c.Name = "RM2"
	c.TopMLP = []int{512, 128, 1}
	c.NumTables = 32
	return c
}

// RM3 is DLRM RM3 (Table II): compute-heavy bottom MLP, light pooling.
func RM3() Config {
	c := RM1()
	c.Name = "RM3"
	c.BottomMLP = []int{2560, 512, 32}
	c.TopMLP = []int{512, 128, 1}
	c.Pooling = 32
	return c
}

// StateOfTheArt returns the three Table II workloads in paper order.
func StateOfTheArt() []Config { return []Config{RM1(), RM2(), RM3()} }

// --- Table I: microbenchmark dimensions (defaults from RM1) ---

// MLPSize selects the Table I dense-layer size axis.
type MLPSize string

// Table I MLP sizes.
const (
	MLPLight  MLPSize = "Light"
	MLPMedium MLPSize = "Medium"
	MLPHeavy  MLPSize = "Heavy"
)

// LocalityLevel selects the Table I locality axis.
type LocalityLevel string

// Table I locality levels (P = 10%/50%/90%).
const (
	LocalityLow    LocalityLevel = "Low"
	LocalityMedium LocalityLevel = "Medium"
	LocalityHigh   LocalityLevel = "High"
)

// MicroMLP returns the RM1-based microbenchmark with the Table I MLP size.
func MicroMLP(size MLPSize) (Config, error) {
	c := RM1()
	switch size {
	case MLPLight:
		c.BottomMLP = []int{64, 32, 32}
		c.TopMLP = []int{64, 32, 1}
	case MLPMedium:
		c.BottomMLP = []int{256, 128, 32}
		c.TopMLP = []int{256, 64, 1}
	case MLPHeavy:
		c.BottomMLP = []int{512, 256, 32}
		c.TopMLP = []int{512, 64, 1}
	default:
		return Config{}, fmt.Errorf("model: unknown MLP size %q", size)
	}
	c.Name = "micro-mlp-" + string(size)
	return c, nil
}

// MicroLocality returns the RM1-based microbenchmark with the Table I
// locality level.
func MicroLocality(level LocalityLevel) (Config, error) {
	c := RM1()
	switch level {
	case LocalityLow:
		c.LocalityP = 0.10
	case LocalityMedium:
		c.LocalityP = 0.50
	case LocalityHigh:
		c.LocalityP = 0.90
	default:
		return Config{}, fmt.Errorf("model: unknown locality level %q", level)
	}
	c.Name = "micro-loc-" + string(level)
	return c, nil
}

// MicroTables returns the RM1-based microbenchmark with n embedding tables
// (Table I allows 1, 4, 10 and 16; any positive n is accepted).
func MicroTables(n int) (Config, error) {
	if n <= 0 {
		return Config{}, fmt.Errorf("model: table count must be positive, got %d", n)
	}
	c := RM1()
	c.NumTables = n
	c.Name = fmt.Sprintf("micro-tables-%d", n)
	return c, nil
}

// MicroShardCounts lists the Table I "number of shards" sweep.
func MicroShardCounts() []int { return []int{1, 2, 4, 8, 16} }

// MicroTableCounts lists the Table I "number of tables" sweep.
func MicroTableCounts() []int { return []int{1, 4, 10, 16} }
