package model

import (
	"fmt"
	"sync"

	"repro/internal/embedding"
	"repro/internal/mlp"
	"repro/internal/tensor"
)

// Model is an instantiated DLRM: parameters in memory, ready to run forward
// passes. Parameters are read-only during serving and every forward pass
// draws its scratch buffers from an internal pool, so Forward, ForwardPooled
// and ForwardBatch are safe to call from many goroutines concurrently —
// this is what lets a dense shard service fused request batches without a
// global lock.
type Model struct {
	Config Config
	Bottom *mlp.MLP
	Top    *mlp.MLP
	Tables []*embedding.Table

	// scratch is a pool of *Scratch sized for this config; forward passes
	// acquire one per call so concurrent passes never share buffers.
	scratch sync.Pool
}

// Scratch holds every intermediate buffer one forward pass needs: the
// bottom-MLP output, the interaction vector, the logit, per-table pooled
// embeddings, and the MLP ping-pong buffers. A Scratch belongs to exactly
// one in-flight forward pass at a time.
type Scratch struct {
	bottomOut   tensor.Vector
	interaction tensor.Vector
	logit       tensor.Vector
	pooled      []tensor.Vector
	vecs        []tensor.Vector
	bottom      *mlp.Scratch
	top         *mlp.Scratch
}

// NewScratch allocates a scratch set sized for the model's geometry.
func (m *Model) NewScratch() *Scratch {
	cfg := m.Config
	s := &Scratch{
		bottomOut:   make(tensor.Vector, cfg.EmbeddingDim),
		interaction: make(tensor.Vector, cfg.InteractionDim()),
		logit:       make(tensor.Vector, 1),
		pooled:      make([]tensor.Vector, cfg.NumTables),
		vecs:        make([]tensor.Vector, 0, cfg.NumTables+1),
		bottom:      m.Bottom.NewScratch(),
		top:         m.Top.NewScratch(),
	}
	for i := range s.pooled {
		s.pooled[i] = make(tensor.Vector, cfg.EmbeddingDim)
	}
	return s
}

// AcquireScratch takes a scratch set from the model's pool (allocating one
// when the pool is empty). Callers running many forward passes back to back
// (the dense shard's batched hot path) acquire once, reuse it across the
// batch, and release when done.
func (m *Model) AcquireScratch() *Scratch {
	return m.scratch.Get().(*Scratch)
}

// ReleaseScratch returns a scratch set to the pool.
func (m *Model) ReleaseScratch(s *Scratch) {
	m.scratch.Put(s)
}

// New instantiates the model with deterministic parameters. For the paper's
// 20M-row geometry this allocates ~2.5 GB per table; tests and the live
// serving engine pass a Config with reduced RowsPerTable via WithRows.
func New(cfg Config, seed uint64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bottom, err := mlp.New(cfg.bottomDims(), seed)
	if err != nil {
		return nil, fmt.Errorf("model %s: bottom MLP: %w", cfg.Name, err)
	}
	top, err := mlp.New(cfg.topDims(), seed^0x5ca1ab1e)
	if err != nil {
		return nil, fmt.Errorf("model %s: top MLP: %w", cfg.Name, err)
	}
	m := &Model{Config: cfg, Bottom: bottom, Top: top}
	for t := 0; t < cfg.NumTables; t++ {
		tab, err := embedding.NewRandomTable(
			fmt.Sprintf("%s-table%d", cfg.Name, t), cfg.RowsPerTable, cfg.EmbeddingDim,
			seed+uint64(t)*0x9e3779b9)
		if err != nil {
			return nil, fmt.Errorf("model %s: table %d: %w", cfg.Name, t, err)
		}
		m.Tables = append(m.Tables, tab)
	}
	m.initScratch()
	return m, nil
}

// NewDenseOnly instantiates only the dense side of the model (bottom/top
// MLPs and interaction scratch, no embedding tables) — the parameter set a
// dense DNN shard container loads. ForwardPooled works; Forward and
// ForwardBatch require tables and will fail.
func NewDenseOnly(cfg Config, seed uint64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bottom, err := mlp.New(cfg.bottomDims(), seed)
	if err != nil {
		return nil, fmt.Errorf("model %s: bottom MLP: %w", cfg.Name, err)
	}
	top, err := mlp.New(cfg.topDims(), seed^0x5ca1ab1e)
	if err != nil {
		return nil, fmt.Errorf("model %s: top MLP: %w", cfg.Name, err)
	}
	m := &Model{Config: cfg, Bottom: bottom, Top: top}
	m.initScratch()
	return m, nil
}

func (m *Model) initScratch() {
	m.scratch.New = func() any { return m.NewScratch() }
}

// Clone deep-copies the model (a new replica's private parameter copy).
func (m *Model) Clone() *Model {
	out := &Model{Config: m.Config, Bottom: m.Bottom.Clone(), Top: m.Top.Clone()}
	for _, t := range m.Tables {
		out.Tables = append(out.Tables, t.Clone())
	}
	out.initScratch()
	return out
}

// Interact computes the DLRM pairwise feature interaction: the dot products
// of every unordered pair among {bottom, pooled[0], ..., pooled[n-1]},
// concatenated with bottom itself. dst must have length InteractionDim().
func (m *Model) Interact(dst, bottom tensor.Vector, pooled []tensor.Vector) error {
	return m.interact(dst, bottom, pooled, nil)
}

// interact is Interact with a reusable operand slice (scratch.vecs) so the
// hot path does not allocate per input.
func (m *Model) interact(dst, bottom tensor.Vector, pooled []tensor.Vector, scratchVecs []tensor.Vector) error {
	cfg := m.Config
	if len(pooled) != cfg.NumTables {
		return fmt.Errorf("model %s: %d pooled vectors, want %d", cfg.Name, len(pooled), cfg.NumTables)
	}
	if len(dst) != cfg.InteractionDim() {
		return fmt.Errorf("model %s: interaction dst %d, want %d", cfg.Name, len(dst), cfg.InteractionDim())
	}
	vecs := scratchVecs
	if cap(vecs) < cfg.NumTables+1 {
		vecs = make([]tensor.Vector, 0, cfg.NumTables+1)
	}
	vecs = vecs[:0]
	vecs = append(vecs, bottom)
	vecs = append(vecs, pooled...)
	k := 0
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			d, err := tensor.Dot(vecs[i], vecs[j])
			if err != nil {
				return err
			}
			dst[k] = d
			k++
		}
	}
	copy(dst[k:], bottom)
	return nil
}

// ForwardPooled runs the dense part of the model for a single input, given
// the already-pooled embedding vectors — exactly the work the dense DNN
// shard performs after the sparse shards reply (Sec. IV-A "life of an
// inference query"). It returns the click probability. Safe for concurrent
// use; callers in a hot loop should prefer ForwardPooledScratch with a
// scratch acquired once per batch.
func (m *Model) ForwardPooled(dense tensor.Vector, pooled []tensor.Vector) (float32, error) {
	s := m.AcquireScratch()
	defer m.ReleaseScratch(s)
	return m.ForwardPooledScratch(s, dense, pooled)
}

// ForwardPooledScratch is ForwardPooled with caller-provided scratch: the
// parameters are only read, so any number of goroutines may run it
// concurrently as long as each brings its own Scratch.
func (m *Model) ForwardPooledScratch(s *Scratch, dense tensor.Vector, pooled []tensor.Vector) (float32, error) {
	if err := m.Bottom.ForwardScratch(s.bottom, s.bottomOut, dense); err != nil {
		return 0, err
	}
	if err := m.interact(s.interaction, s.bottomOut, pooled, s.vecs); err != nil {
		return 0, err
	}
	if err := m.Top.ForwardScratch(s.top, s.logit, s.interaction); err != nil {
		return 0, err
	}
	tensor.Sigmoid(s.logit)
	return s.logit[0], nil
}

// Forward runs the full monolithic model for a single input: sparseIdx[t]
// holds the lookup indices into table t. This is the baseline model-wise
// execution path. Safe for concurrent use.
func (m *Model) Forward(dense tensor.Vector, sparseIdx [][]int64) (float32, error) {
	s := m.AcquireScratch()
	defer m.ReleaseScratch(s)
	return m.forwardScratch(s, dense, sparseIdx)
}

func (m *Model) forwardScratch(s *Scratch, dense tensor.Vector, sparseIdx [][]int64) (float32, error) {
	if len(sparseIdx) != m.Config.NumTables {
		return 0, fmt.Errorf("model %s: %d sparse inputs, want %d", m.Config.Name, len(sparseIdx), m.Config.NumTables)
	}
	for t, tab := range m.Tables {
		if err := tab.GatherPool(s.pooled[t], sparseIdx[t]); err != nil {
			return 0, err
		}
	}
	return m.ForwardPooledScratch(s, dense, s.pooled)
}

// ForwardBatch runs the monolithic model for a whole query: denseIn is
// (BatchSize x DenseInputDim) and batches[t] is the index/offset batch for
// table t. It returns one probability per input.
func (m *Model) ForwardBatch(denseIn *tensor.Matrix, batches []*embedding.Batch) ([]float32, error) {
	cfg := m.Config
	if len(batches) != cfg.NumTables {
		return nil, fmt.Errorf("model %s: %d batches, want %d", cfg.Name, len(batches), cfg.NumTables)
	}
	bs := denseIn.Rows
	for t, b := range batches {
		if b.BatchSize() != bs {
			return nil, fmt.Errorf("model %s: table %d batch size %d != dense batch %d", cfg.Name, t, b.BatchSize(), bs)
		}
	}
	out := make([]float32, bs)
	idx := make([][]int64, cfg.NumTables)
	s := m.AcquireScratch()
	defer m.ReleaseScratch(s)
	for i := 0; i < bs; i++ {
		for t, b := range batches {
			idx[t] = b.InputIndices(i)
		}
		p, err := m.forwardScratch(s, denseIn.Row(i), idx)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// --- Architecture-independent accounting (Fig. 3a) ---

// DenseFLOPsPerInput returns the dense-layer FLOPs for one input: bottom
// MLP + pairwise interaction + top MLP.
func (c Config) DenseFLOPsPerInput() int64 {
	var total int64
	dims := c.bottomDims()
	for i := 0; i+1 < len(dims); i++ {
		total += 2*int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])
	}
	// Interaction: C(n+1, 2) dot products of EmbeddingDim-wide vectors.
	n := int64(c.NumTables + 1)
	total += n * (n - 1) / 2 * 2 * int64(c.EmbeddingDim)
	dims = c.topDims()
	for i := 0; i+1 < len(dims); i++ {
		total += 2*int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])
	}
	return total
}

// SparseFLOPsPerInput returns the embedding-layer FLOPs for one input: the
// sum-pooling additions across all tables (gathers themselves are loads,
// not FLOPs).
func (c Config) SparseFLOPsPerInput() int64 {
	return int64(c.NumTables) * int64(c.Pooling) * int64(c.EmbeddingDim)
}

// DenseFLOPsPerQuery returns dense FLOPs for a full batch-size query.
func (c Config) DenseFLOPsPerQuery() int64 {
	return c.DenseFLOPsPerInput() * int64(c.BatchSize)
}

// SparseFLOPsPerQuery returns sparse FLOPs for a full batch-size query.
func (c Config) SparseFLOPsPerQuery() int64 {
	return c.SparseFLOPsPerInput() * int64(c.BatchSize)
}

// DenseBytes returns the dense-parameter footprint (both MLPs).
func (c Config) DenseBytes() int64 {
	var total int64
	dims := c.bottomDims()
	for i := 0; i+1 < len(dims); i++ {
		total += (int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])) * 4
	}
	dims = c.topDims()
	for i := 0; i+1 < len(dims); i++ {
		total += (int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])) * 4
	}
	return total
}

// SparseBytes returns the embedding-table footprint across all tables.
func (c Config) SparseBytes() int64 {
	return int64(c.NumTables) * c.RowsPerTable * int64(c.EmbeddingDim) * embedding.BytesPerElement
}

// TableBytes returns the footprint of a single table.
func (c Config) TableBytes() int64 {
	return c.RowsPerTable * int64(c.EmbeddingDim) * embedding.BytesPerElement
}

// SparseBytesReadPerQuery returns the bytes of embedding data one query
// reads from memory (gathered rows across all tables and the batch).
func (c Config) SparseBytesReadPerQuery() int64 {
	return int64(c.BatchSize) * int64(c.NumTables) * int64(c.Pooling) * int64(c.EmbeddingDim) * embedding.BytesPerElement
}

// LookupsPerQuery returns the total embedding gathers one query performs.
func (c Config) LookupsPerQuery() int64 {
	return int64(c.BatchSize) * int64(c.NumTables) * int64(c.Pooling)
}

// OccupancyBreakdown is the Fig. 3(a) decomposition.
type OccupancyBreakdown struct {
	DenseFLOPsShare  float64 // dense share of per-query FLOPs
	SparseFLOPsShare float64
	DenseMemShare    float64 // dense share of parameter bytes
	SparseMemShare   float64
}

// Occupancy computes the FLOPs and memory shares of Fig. 3(a).
func (c Config) Occupancy() OccupancyBreakdown {
	df := float64(c.DenseFLOPsPerQuery())
	sf := float64(c.SparseFLOPsPerQuery())
	dm := float64(c.DenseBytes())
	sm := float64(c.SparseBytes())
	return OccupancyBreakdown{
		DenseFLOPsShare:  df / (df + sf),
		SparseFLOPsShare: sf / (df + sf),
		DenseMemShare:    dm / (dm + sm),
		SparseMemShare:   sm / (dm + sm),
	}
}
