package model

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/mlp"
	"repro/internal/tensor"
)

// Model is an instantiated DLRM: parameters in memory, ready to run forward
// passes. A Model is not safe for concurrent use (it owns scratch buffers);
// each serving replica clones its own copy, mirroring how each pod loads a
// private copy of the parameters.
type Model struct {
	Config Config
	Bottom *mlp.MLP
	Top    *mlp.MLP
	Tables []*embedding.Table

	// scratch
	bottomOut   tensor.Vector
	interaction tensor.Vector
	logit       tensor.Vector
	pooledBuf   []tensor.Vector
}

// New instantiates the model with deterministic parameters. For the paper's
// 20M-row geometry this allocates ~2.5 GB per table; tests and the live
// serving engine pass a Config with reduced RowsPerTable via WithRows.
func New(cfg Config, seed uint64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bottom, err := mlp.New(cfg.bottomDims(), seed)
	if err != nil {
		return nil, fmt.Errorf("model %s: bottom MLP: %w", cfg.Name, err)
	}
	top, err := mlp.New(cfg.topDims(), seed^0x5ca1ab1e)
	if err != nil {
		return nil, fmt.Errorf("model %s: top MLP: %w", cfg.Name, err)
	}
	m := &Model{Config: cfg, Bottom: bottom, Top: top}
	for t := 0; t < cfg.NumTables; t++ {
		tab, err := embedding.NewRandomTable(
			fmt.Sprintf("%s-table%d", cfg.Name, t), cfg.RowsPerTable, cfg.EmbeddingDim,
			seed+uint64(t)*0x9e3779b9)
		if err != nil {
			return nil, fmt.Errorf("model %s: table %d: %w", cfg.Name, t, err)
		}
		m.Tables = append(m.Tables, tab)
	}
	m.initScratch()
	return m, nil
}

// NewDenseOnly instantiates only the dense side of the model (bottom/top
// MLPs and interaction scratch, no embedding tables) — the parameter set a
// dense DNN shard container loads. ForwardPooled works; Forward and
// ForwardBatch require tables and will fail.
func NewDenseOnly(cfg Config, seed uint64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bottom, err := mlp.New(cfg.bottomDims(), seed)
	if err != nil {
		return nil, fmt.Errorf("model %s: bottom MLP: %w", cfg.Name, err)
	}
	top, err := mlp.New(cfg.topDims(), seed^0x5ca1ab1e)
	if err != nil {
		return nil, fmt.Errorf("model %s: top MLP: %w", cfg.Name, err)
	}
	m := &Model{Config: cfg, Bottom: bottom, Top: top}
	m.initScratch()
	return m, nil
}

func (m *Model) initScratch() {
	cfg := m.Config
	m.bottomOut = make(tensor.Vector, cfg.EmbeddingDim)
	m.interaction = make(tensor.Vector, cfg.InteractionDim())
	m.logit = make(tensor.Vector, 1)
	m.pooledBuf = make([]tensor.Vector, cfg.NumTables)
	for i := range m.pooledBuf {
		m.pooledBuf[i] = make(tensor.Vector, cfg.EmbeddingDim)
	}
}

// Clone deep-copies the model (a new replica's private parameter copy).
func (m *Model) Clone() *Model {
	out := &Model{Config: m.Config, Bottom: m.Bottom.Clone(), Top: m.Top.Clone()}
	for _, t := range m.Tables {
		out.Tables = append(out.Tables, t.Clone())
	}
	out.initScratch()
	return out
}

// Interact computes the DLRM pairwise feature interaction: the dot products
// of every unordered pair among {bottom, pooled[0], ..., pooled[n-1]},
// concatenated with bottom itself. dst must have length InteractionDim().
func (m *Model) Interact(dst, bottom tensor.Vector, pooled []tensor.Vector) error {
	cfg := m.Config
	if len(pooled) != cfg.NumTables {
		return fmt.Errorf("model %s: %d pooled vectors, want %d", cfg.Name, len(pooled), cfg.NumTables)
	}
	if len(dst) != cfg.InteractionDim() {
		return fmt.Errorf("model %s: interaction dst %d, want %d", cfg.Name, len(dst), cfg.InteractionDim())
	}
	vecs := make([]tensor.Vector, 0, cfg.NumTables+1)
	vecs = append(vecs, bottom)
	vecs = append(vecs, pooled...)
	k := 0
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			d, err := tensor.Dot(vecs[i], vecs[j])
			if err != nil {
				return err
			}
			dst[k] = d
			k++
		}
	}
	copy(dst[k:], bottom)
	return nil
}

// ForwardPooled runs the dense part of the model for a single input, given
// the already-pooled embedding vectors — exactly the work the dense DNN
// shard performs after the sparse shards reply (Sec. IV-A "life of an
// inference query"). It returns the click probability.
func (m *Model) ForwardPooled(dense tensor.Vector, pooled []tensor.Vector) (float32, error) {
	if err := m.Bottom.Forward(m.bottomOut, dense); err != nil {
		return 0, err
	}
	if err := m.Interact(m.interaction, m.bottomOut, pooled); err != nil {
		return 0, err
	}
	if err := m.Top.Forward(m.logit, m.interaction); err != nil {
		return 0, err
	}
	p := m.logit.Clone()
	tensor.Sigmoid(p)
	return p[0], nil
}

// Forward runs the full monolithic model for a single input: sparseIdx[t]
// holds the lookup indices into table t. This is the baseline model-wise
// execution path.
func (m *Model) Forward(dense tensor.Vector, sparseIdx [][]int64) (float32, error) {
	if len(sparseIdx) != m.Config.NumTables {
		return 0, fmt.Errorf("model %s: %d sparse inputs, want %d", m.Config.Name, len(sparseIdx), m.Config.NumTables)
	}
	for t, tab := range m.Tables {
		if err := tab.GatherPool(m.pooledBuf[t], sparseIdx[t]); err != nil {
			return 0, err
		}
	}
	return m.ForwardPooled(dense, m.pooledBuf)
}

// ForwardBatch runs the monolithic model for a whole query: denseIn is
// (BatchSize x DenseInputDim) and batches[t] is the index/offset batch for
// table t. It returns one probability per input.
func (m *Model) ForwardBatch(denseIn *tensor.Matrix, batches []*embedding.Batch) ([]float32, error) {
	cfg := m.Config
	if len(batches) != cfg.NumTables {
		return nil, fmt.Errorf("model %s: %d batches, want %d", cfg.Name, len(batches), cfg.NumTables)
	}
	bs := denseIn.Rows
	for t, b := range batches {
		if b.BatchSize() != bs {
			return nil, fmt.Errorf("model %s: table %d batch size %d != dense batch %d", cfg.Name, t, b.BatchSize(), bs)
		}
	}
	out := make([]float32, bs)
	idx := make([][]int64, cfg.NumTables)
	for i := 0; i < bs; i++ {
		for t, b := range batches {
			idx[t] = b.InputIndices(i)
		}
		p, err := m.Forward(denseIn.Row(i), idx)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// --- Architecture-independent accounting (Fig. 3a) ---

// DenseFLOPsPerInput returns the dense-layer FLOPs for one input: bottom
// MLP + pairwise interaction + top MLP.
func (c Config) DenseFLOPsPerInput() int64 {
	var total int64
	dims := c.bottomDims()
	for i := 0; i+1 < len(dims); i++ {
		total += 2*int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])
	}
	// Interaction: C(n+1, 2) dot products of EmbeddingDim-wide vectors.
	n := int64(c.NumTables + 1)
	total += n * (n - 1) / 2 * 2 * int64(c.EmbeddingDim)
	dims = c.topDims()
	for i := 0; i+1 < len(dims); i++ {
		total += 2*int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])
	}
	return total
}

// SparseFLOPsPerInput returns the embedding-layer FLOPs for one input: the
// sum-pooling additions across all tables (gathers themselves are loads,
// not FLOPs).
func (c Config) SparseFLOPsPerInput() int64 {
	return int64(c.NumTables) * int64(c.Pooling) * int64(c.EmbeddingDim)
}

// DenseFLOPsPerQuery returns dense FLOPs for a full batch-size query.
func (c Config) DenseFLOPsPerQuery() int64 {
	return c.DenseFLOPsPerInput() * int64(c.BatchSize)
}

// SparseFLOPsPerQuery returns sparse FLOPs for a full batch-size query.
func (c Config) SparseFLOPsPerQuery() int64 {
	return c.SparseFLOPsPerInput() * int64(c.BatchSize)
}

// DenseBytes returns the dense-parameter footprint (both MLPs).
func (c Config) DenseBytes() int64 {
	var total int64
	dims := c.bottomDims()
	for i := 0; i+1 < len(dims); i++ {
		total += (int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])) * 4
	}
	dims = c.topDims()
	for i := 0; i+1 < len(dims); i++ {
		total += (int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])) * 4
	}
	return total
}

// SparseBytes returns the embedding-table footprint across all tables.
func (c Config) SparseBytes() int64 {
	return int64(c.NumTables) * c.RowsPerTable * int64(c.EmbeddingDim) * embedding.BytesPerElement
}

// TableBytes returns the footprint of a single table.
func (c Config) TableBytes() int64 {
	return c.RowsPerTable * int64(c.EmbeddingDim) * embedding.BytesPerElement
}

// SparseBytesReadPerQuery returns the bytes of embedding data one query
// reads from memory (gathered rows across all tables and the batch).
func (c Config) SparseBytesReadPerQuery() int64 {
	return int64(c.BatchSize) * int64(c.NumTables) * int64(c.Pooling) * int64(c.EmbeddingDim) * embedding.BytesPerElement
}

// LookupsPerQuery returns the total embedding gathers one query performs.
func (c Config) LookupsPerQuery() int64 {
	return int64(c.BatchSize) * int64(c.NumTables) * int64(c.Pooling)
}

// OccupancyBreakdown is the Fig. 3(a) decomposition.
type OccupancyBreakdown struct {
	DenseFLOPsShare  float64 // dense share of per-query FLOPs
	SparseFLOPsShare float64
	DenseMemShare    float64 // dense share of parameter bytes
	SparseMemShare   float64
}

// Occupancy computes the FLOPs and memory shares of Fig. 3(a).
func (c Config) Occupancy() OccupancyBreakdown {
	df := float64(c.DenseFLOPsPerQuery())
	sf := float64(c.SparseFLOPsPerQuery())
	dm := float64(c.DenseBytes())
	sm := float64(c.SparseBytes())
	return OccupancyBreakdown{
		DenseFLOPsShare:  df / (df + sf),
		SparseFLOPsShare: sf / (df + sf),
		DenseMemShare:    dm / (dm + sm),
		SparseMemShare:   sm / (dm + sm),
	}
}
