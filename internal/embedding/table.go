// Package embedding implements the sparse-feature substrate of DLRM: the
// embedding tables, multi-hot gather + sum-pooling lookups, per-row access
// statistics, the one-time hotness sort the paper performs before
// partitioning (Fig. 8), and the access-frequency CDF consumed by the
// deployment-cost estimator (Algorithm 1).
package embedding

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// BytesPerElement is the storage cost of one embedding element (float32).
const BytesPerElement = 4

var (
	// ErrIndexRange is returned when a lookup index falls outside a table.
	ErrIndexRange = errors.New("embedding: index out of range")
	// ErrBadBatch is returned for malformed index/offset batches.
	ErrBadBatch = errors.New("embedding: malformed batch")
)

// Table is a dense embedding table: Rows vectors of dimension Dim stored in
// one contiguous float32 backing array. The paper's tables hold up to 20M
// rows of dimension 32 (~2.5 GB each); tests and the live serving engine use
// smaller geometries while the cost model performs exact arithmetic on the
// full paper geometry.
type Table struct {
	Name string
	Rows int64
	Dim  int
	data []float32
}

// NewTable allocates a zeroed table.
func NewTable(name string, rows int64, dim int) (*Table, error) {
	if rows <= 0 || dim <= 0 {
		return nil, fmt.Errorf("embedding: invalid geometry rows=%d dim=%d", rows, dim)
	}
	return &Table{Name: name, Rows: rows, Dim: dim, data: make([]float32, rows*int64(dim))}, nil
}

// NewRandomTable allocates a table with deterministic pseudo-random values
// in [-0.05, 0.05), seeded so serving tests are reproducible.
func NewRandomTable(name string, rows int64, dim int, seed uint64) (*Table, error) {
	t, err := NewTable(name, rows, dim)
	if err != nil {
		return nil, err
	}
	tensor.InitUniform(t.data, 0.05, seed)
	return t, nil
}

// SizeBytes returns the parameter footprint in bytes.
func (t *Table) SizeBytes() int64 { return t.Rows * int64(t.Dim) * BytesPerElement }

// Vector returns a view of row i (no copy).
func (t *Table) Vector(i int64) (tensor.Vector, error) {
	if i < 0 || i >= t.Rows {
		return nil, fmt.Errorf("%w: row %d of %d in table %q", ErrIndexRange, i, t.Rows, t.Name)
	}
	off := i * int64(t.Dim)
	return tensor.Vector(t.data[off : off+int64(t.Dim)]), nil
}

// SetVector copies v into row i.
func (t *Table) SetVector(i int64, v tensor.Vector) error {
	if len(v) != t.Dim {
		return fmt.Errorf("embedding: vector dim %d != table dim %d", len(v), t.Dim)
	}
	dst, err := t.Vector(i)
	if err != nil {
		return err
	}
	copy(dst, v)
	return nil
}

// Slice returns a new Table containing rows [lo, hi) of t. The returned
// table shares the backing storage with t (a shard view, not a copy), which
// mirrors how a shard container holds a contiguous range of a sorted table.
func (t *Table) Slice(lo, hi int64) (*Table, error) {
	if lo < 0 || hi > t.Rows || lo >= hi {
		return nil, fmt.Errorf("embedding: bad slice [%d,%d) of %d rows", lo, hi, t.Rows)
	}
	return &Table{
		Name: fmt.Sprintf("%s[%d:%d)", t.Name, lo, hi),
		Rows: hi - lo,
		Dim:  t.Dim,
		data: t.data[lo*int64(t.Dim) : hi*int64(t.Dim)],
	}, nil
}

// Clone returns a deep copy of the table (a replica's private parameters).
func (t *Table) Clone() *Table {
	out := &Table{Name: t.Name, Rows: t.Rows, Dim: t.Dim, data: make([]float32, len(t.data))}
	copy(out.data, t.data)
	return out
}

// GatherPool gathers the rows named by indices and sum-pools them into dst,
// which must have length Dim. This is the embedding-layer operator: for a
// pooling factor of n, n rows are read and reduced with element-wise
// addition (Sec. II-A).
func (t *Table) GatherPool(dst tensor.Vector, indices []int64) error {
	if len(dst) != t.Dim {
		return fmt.Errorf("embedding: dst dim %d != table dim %d", len(dst), t.Dim)
	}
	tensor.Zero(dst)
	for _, idx := range indices {
		if idx < 0 || idx >= t.Rows {
			return fmt.Errorf("%w: row %d of %d in table %q", ErrIndexRange, idx, t.Rows, t.Name)
		}
		row := t.data[idx*int64(t.Dim) : (idx+1)*int64(t.Dim)]
		for i, x := range row {
			dst[i] += x
		}
	}
	return nil
}

// Permute returns a new table whose row i is t.Row(perm[i]); perm must be a
// permutation of [0, Rows). This implements the hotness sort of Fig. 8(b):
// after sorting, row 0 is the hottest embedding.
func (t *Table) Permute(perm []int64) (*Table, error) {
	if int64(len(perm)) != t.Rows {
		return nil, fmt.Errorf("embedding: perm length %d != rows %d", len(perm), t.Rows)
	}
	out, err := NewTable(t.Name+"-sorted", t.Rows, t.Dim)
	if err != nil {
		return nil, err
	}
	seen := make([]bool, t.Rows)
	for newIdx, oldIdx := range perm {
		if oldIdx < 0 || oldIdx >= t.Rows {
			return nil, fmt.Errorf("%w: perm[%d]=%d", ErrIndexRange, newIdx, oldIdx)
		}
		if seen[oldIdx] {
			return nil, fmt.Errorf("embedding: perm repeats row %d (not a permutation)", oldIdx)
		}
		seen[oldIdx] = true
		src := t.data[oldIdx*int64(t.Dim) : (oldIdx+1)*int64(t.Dim)]
		copy(out.data[int64(newIdx)*int64(t.Dim):], src)
	}
	return out, nil
}

// Batch is the index/offset ("KeyedJagged") representation of a batched
// multi-hot lookup against one table, matching Fig. 11: Indices holds the
// concatenated lookup IDs for every input in the batch, and Offsets[i] is
// the position in Indices where input i's IDs begin. len(Offsets) equals the
// batch size; input i uses Indices[Offsets[i]:end] where end is
// Offsets[i+1] (or len(Indices) for the last input).
type Batch struct {
	Indices []int64
	Offsets []int32
}

// Validate checks structural invariants: offsets non-decreasing, first
// offset zero, all offsets within the index array.
func (b *Batch) Validate() error {
	if len(b.Offsets) == 0 {
		if len(b.Indices) != 0 {
			return fmt.Errorf("%w: indices without offsets", ErrBadBatch)
		}
		return nil
	}
	if b.Offsets[0] != 0 {
		return fmt.Errorf("%w: first offset %d != 0", ErrBadBatch, b.Offsets[0])
	}
	prev := int32(0)
	for i, o := range b.Offsets {
		if o < prev {
			return fmt.Errorf("%w: offsets decrease at %d (%d < %d)", ErrBadBatch, i, o, prev)
		}
		if int(o) > len(b.Indices) {
			return fmt.Errorf("%w: offset %d beyond %d indices", ErrBadBatch, o, len(b.Indices))
		}
		prev = o
	}
	return nil
}

// BatchSize returns the number of inputs in the batch.
func (b *Batch) BatchSize() int { return len(b.Offsets) }

// InputIndices returns the lookup IDs for input i (a sub-slice, not a copy).
func (b *Batch) InputIndices(i int) []int64 {
	lo := int(b.Offsets[i])
	hi := len(b.Indices)
	if i+1 < len(b.Offsets) {
		hi = int(b.Offsets[i+1])
	}
	return b.Indices[lo:hi]
}

// TotalLookups returns the total number of gathers the batch performs.
func (b *Batch) TotalLookups() int { return len(b.Indices) }

// Clone deep-copies the batch.
func (b *Batch) Clone() *Batch {
	out := &Batch{
		Indices: make([]int64, len(b.Indices)),
		Offsets: make([]int32, len(b.Offsets)),
	}
	copy(out.Indices, b.Indices)
	copy(out.Offsets, b.Offsets)
	return out
}

// GatherPoolBatch runs GatherPool for every input in the batch and writes
// the pooled vector for input i into out.Row(i). out must be
// (BatchSize x Dim).
func (t *Table) GatherPoolBatch(out *tensor.Matrix, b *Batch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if out.Rows != b.BatchSize() || out.Cols != t.Dim {
		return fmt.Errorf("embedding: out shape %dx%d want %dx%d", out.Rows, out.Cols, b.BatchSize(), t.Dim)
	}
	for i := 0; i < b.BatchSize(); i++ {
		if err := t.GatherPool(out.Row(i), b.InputIndices(i)); err != nil {
			return err
		}
	}
	return nil
}
