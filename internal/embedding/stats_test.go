package embedding

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestAccessStatsRecord(t *testing.T) {
	s := NewAccessStats(4)
	for _, idx := range []int64{0, 1, 1, 3, 3, 3} {
		if err := s.Record(idx); err != nil {
			t.Fatal(err)
		}
	}
	if s.Total != 6 {
		t.Fatalf("Total = %d", s.Total)
	}
	if s.Counts[3] != 3 || s.Counts[2] != 0 {
		t.Fatalf("Counts = %v", s.Counts)
	}
	if err := s.Record(4); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("want ErrIndexRange, got %v", err)
	}
	if err := s.Record(-1); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("want ErrIndexRange, got %v", err)
	}
}

func TestRecordBatch(t *testing.T) {
	s := NewAccessStats(4)
	b := &Batch{Indices: []int64{0, 1, 2}, Offsets: []int32{0}}
	if err := s.RecordBatch(b); err != nil {
		t.Fatal(err)
	}
	if s.Total != 3 {
		t.Fatalf("Total = %d", s.Total)
	}
	bad := &Batch{Indices: []int64{9}, Offsets: []int32{0}}
	if err := s.RecordBatch(bad); err == nil {
		t.Fatal("want range error")
	}
}

func TestHotnessPermutation(t *testing.T) {
	s := NewAccessStats(4)
	s.Counts = []int64{5, 20, 0, 20}
	s.Total = 45
	perm := s.HotnessPermutation()
	// Ties broken by original index: 1 (20), 3 (20), 0 (5), 2 (0).
	want := []int64{1, 3, 0, 2}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

func TestSortedCountsDescending(t *testing.T) {
	s := NewAccessStats(5)
	s.Counts = []int64{3, 9, 1, 7, 7}
	sorted := s.SortedCounts()
	for i := 1; i < len(sorted); i++ {
		if sorted[i] > sorted[i-1] {
			t.Fatalf("not descending: %v", sorted)
		}
	}
	// Original untouched.
	if s.Counts[0] != 3 {
		t.Fatal("SortedCounts must not mutate")
	}
}

func TestLocalityP(t *testing.T) {
	s := NewAccessStats(10)
	// Top-1 row (10% of 10 rows) gets 90 of 100 accesses.
	s.Counts[7] = 90
	s.Counts[2] = 10
	s.Total = 100
	if got := s.LocalityP(); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("LocalityP = %v, want 0.9", got)
	}
	empty := NewAccessStats(10)
	if empty.LocalityP() != 0 {
		t.Fatal("empty stats must report 0")
	}
}

func TestCDFBasicInvariants(t *testing.T) {
	s := NewAccessStats(4)
	s.Counts = []int64{1, 4, 3, 2}
	s.Total = 10
	c := NewCDF(s)
	if c.Rows() != 4 {
		t.Fatalf("Rows = %d", c.Rows())
	}
	if c.At(0) != 0 {
		t.Fatalf("At(0) = %v", c.At(0))
	}
	if c.At(4) != 1 {
		t.Fatalf("At(4) = %v", c.At(4))
	}
	if c.At(100) != 1 || c.At(-5) != 0 {
		t.Fatal("At must clamp")
	}
	// Sorted counts: 4,3,2,1 -> At(1)=0.4, At(2)=0.7.
	if math.Abs(c.At(1)-0.4) > 1e-9 || math.Abs(c.At(2)-0.7) > 1e-9 {
		t.Fatalf("At(1)=%v At(2)=%v", c.At(1), c.At(2))
	}
	if p := c.RangeProbability(1, 3); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("RangeProbability(1,3) = %v, want 0.5", p)
	}
	if p := c.RangeProbability(3, 1); p != 0 {
		t.Fatalf("inverted range must be 0, got %v", p)
	}
}

func TestCDFUniformWhenEmpty(t *testing.T) {
	s := NewAccessStats(4)
	c := NewCDF(s)
	if math.Abs(c.At(2)-0.5) > 1e-9 {
		t.Fatalf("uniform CDF At(2) = %v, want 0.5", c.At(2))
	}
}

func TestCDFProportionalCuts(t *testing.T) {
	// 10 rows, counts 10,9,...,1 (already hotness-sorted): total 55.
	s := NewAccessStats(10)
	for i := int64(0); i < 10; i++ {
		for n := int64(0); n < 10-i; n++ {
			if err := s.Record(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := NewCDF(s)
	cuts := c.ProportionalCuts(0.5, 0.9)
	if len(cuts) != 3 || cuts[len(cuts)-1] != 10 {
		t.Fatalf("cuts = %v, want 2 fraction cuts + full row count", cuts)
	}
	for i, cut := range cuts[:len(cuts)-1] {
		frac := []float64{0.5, 0.9}[i]
		if c.At(cut) < frac {
			t.Fatalf("cut %d at row %d covers %v < %v", i, cut, c.At(cut), frac)
		}
		if cut > 1 && c.At(cut-1) >= frac {
			t.Fatalf("cut %d at row %d is not minimal", i, cut)
		}
	}
	if got := c.ProportionalCuts(); len(got) != 1 || got[0] != 10 {
		t.Fatalf("no-fraction cuts = %v, want just the row count", got)
	}
}

func TestNewCDFFromCounts(t *testing.T) {
	c := NewCDFFromCounts([]int64{4, 3, 2, 1})
	if math.Abs(c.At(1)-0.4) > 1e-9 {
		t.Fatalf("At(1) = %v", c.At(1))
	}
	zero := NewCDFFromCounts([]int64{0, 0})
	if math.Abs(zero.At(1)-0.5) > 1e-9 {
		t.Fatal("all-zero counts must yield uniform CDF")
	}
}

func TestNewCDFFromCountsPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on ascending counts")
		}
	}()
	NewCDFFromCounts([]int64{1, 2})
}

// Property: a CDF is monotonically non-decreasing and RangeProbability
// partitions: At(j) == sum of adjacent ranges.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		s := NewAccessStats(int64(len(raw)))
		for i, r := range raw {
			s.Counts[i] = int64(r)
			s.Total += int64(r)
		}
		c := NewCDF(s)
		prev := 0.0
		for j := int64(0); j <= c.Rows(); j++ {
			cur := c.At(j)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		mid := c.Rows() / 2
		lhs := c.At(c.Rows())
		rhs := c.RangeProbability(0, mid) + c.RangeProbability(mid, c.Rows())
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
