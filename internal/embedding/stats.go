package embedding

import (
	"fmt"
	"sort"
)

// AccessStats records per-row access counts for one embedding table over a
// profiling window. Production inference servers keep exactly this history
// (Sec. IV-B cites [37], [52]); here it also powers the Fig. 6 access
// distribution plots and the memory-utility measurements.
type AccessStats struct {
	Counts []int64 // Counts[i] = number of accesses to row i
	Total  int64
}

// NewAccessStats creates zeroed statistics for a table with rows rows.
func NewAccessStats(rows int64) *AccessStats {
	return &AccessStats{Counts: make([]int64, rows)}
}

// Record adds one access to row idx. Out-of-range indices are rejected.
func (s *AccessStats) Record(idx int64) error {
	if idx < 0 || idx >= int64(len(s.Counts)) {
		return fmt.Errorf("%w: stats row %d of %d", ErrIndexRange, idx, len(s.Counts))
	}
	s.Counts[idx]++
	s.Total++
	return nil
}

// RecordBatch adds one access per index in the batch.
func (s *AccessStats) RecordBatch(b *Batch) error {
	for _, idx := range b.Indices {
		if err := s.Record(idx); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns the number of rows tracked.
func (s *AccessStats) Rows() int64 { return int64(len(s.Counts)) }

// HotnessPermutation returns a permutation perm such that perm[newIdx] is
// the original row stored at position newIdx after sorting rows by
// descending access count (ties broken by original index for determinism).
// Applying Table.Permute with this permutation yields the Fig. 8(b) layout:
// the hottest row at index 0.
func (s *AccessStats) HotnessPermutation() []int64 {
	perm := make([]int64, len(s.Counts))
	for i := range perm {
		perm[i] = int64(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ca, cb := s.Counts[perm[a]], s.Counts[perm[b]]
		if ca != cb {
			return ca > cb
		}
		return perm[a] < perm[b]
	})
	return perm
}

// SortedCounts returns the access counts in descending order (the series
// plotted in Fig. 6).
func (s *AccessStats) SortedCounts() []int64 {
	out := make([]int64, len(s.Counts))
	copy(out, s.Counts)
	sort.Slice(out, func(a, b int) bool { return out[a] > out[b] })
	return out
}

// LocalityP returns the fraction of all accesses covered by the hottest 10%
// of rows — the paper's locality metric P (Sec. V-C). Returns 0 when no
// accesses have been recorded.
func (s *AccessStats) LocalityP() float64 {
	if s.Total == 0 {
		return 0
	}
	sorted := s.SortedCounts()
	top := len(sorted) / 10
	if top == 0 {
		top = 1
	}
	var covered int64
	for _, c := range sorted[:top] {
		covered += c
	}
	return float64(covered) / float64(s.Total)
}

// CDF is the cumulative access-frequency distribution over a hotness-sorted
// table. CDF.At(j) is the fraction of all accesses covered by rows [0, j),
// so a shard spanning sorted rows [k, j) absorbs At(j) - At(k) of traffic —
// exactly the "CDF(j) - CDF(k)" term on line 11 of Algorithm 1.
type CDF struct {
	cum []float64 // cum[i] = fraction covered by rows [0, i]; len == rows
}

// NewCDF builds the CDF from access statistics. The counts are first sorted
// descending (the estimator always works on the hotness-sorted table). A
// table with zero recorded accesses yields a uniform CDF, which matches the
// behaviour of an unprofiled table.
func NewCDF(s *AccessStats) *CDF {
	n := len(s.Counts)
	cum := make([]float64, n)
	if s.Total == 0 {
		for i := range cum {
			cum[i] = float64(i+1) / float64(n)
		}
		return &CDF{cum: cum}
	}
	sorted := s.SortedCounts()
	var run int64
	for i, c := range sorted {
		run += c
		cum[i] = float64(run) / float64(s.Total)
	}
	return &CDF{cum: cum}
}

// NewCDFFromCounts builds a CDF directly from already-sorted descending
// counts. It panics if counts increase, to catch callers that forgot the
// hotness sort.
func NewCDFFromCounts(sorted []int64) *CDF {
	var total int64
	prev := int64(-1)
	for i, c := range sorted {
		if prev >= 0 && c > prev {
			panic(fmt.Sprintf("embedding: NewCDFFromCounts input not sorted descending at %d", i))
		}
		prev = c
		total += c
	}
	cum := make([]float64, len(sorted))
	if total == 0 {
		for i := range cum {
			cum[i] = float64(i+1) / float64(len(sorted))
		}
		return &CDF{cum: cum}
	}
	var run int64
	for i, c := range sorted {
		run += c
		cum[i] = float64(run) / float64(total)
	}
	return &CDF{cum: cum}
}

// Rows returns the number of rows the CDF covers.
func (c *CDF) Rows() int64 { return int64(len(c.cum)) }

// At returns the fraction of accesses covered by sorted rows [0, j).
// At(0) == 0 and At(Rows()) == 1.
func (c *CDF) At(j int64) float64 {
	if j <= 0 {
		return 0
	}
	if j >= int64(len(c.cum)) {
		return 1
	}
	return c.cum[j-1]
}

// ProportionalCuts returns shard boundaries cutting the hotness-sorted
// table at the given ascending coverage fractions (one boundary per
// fraction, ending with the full row count) — the cheap stand-in for the
// DP planner the live examples and the admin CLI use: cutting at e.g.
// 70% and 95% coverage mirrors what the DP chooses for their geometries
// without re-fitting the cost model inline.
func (c *CDF) ProportionalCuts(fracs ...float64) []int64 {
	cuts := make([]int64, 0, len(fracs)+1)
	for _, p := range fracs {
		var j int64
		for j = 1; j < c.Rows() && c.At(j) < p; j++ {
		}
		cuts = append(cuts, j)
	}
	return append(cuts, c.Rows())
}

// RangeProbability returns the fraction of accesses falling in sorted rows
// [k, j), i.e. CDF(j) - CDF(k) from Algorithm 1 line 11.
func (c *CDF) RangeProbability(k, j int64) float64 {
	p := c.At(j) - c.At(k)
	if p < 0 {
		return 0
	}
	return p
}
