package embedding

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func mustTable(t *testing.T, rows int64, dim int) *Table {
	t.Helper()
	tab, err := NewTable("t", rows, dim)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("t", 0, 4); err == nil {
		t.Fatal("want error for zero rows")
	}
	if _, err := NewTable("t", 4, 0); err == nil {
		t.Fatal("want error for zero dim")
	}
}

func TestTableSizeBytes(t *testing.T) {
	tab := mustTable(t, 100, 32)
	if got := tab.SizeBytes(); got != 100*32*4 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

func TestVectorViewAndSet(t *testing.T) {
	tab := mustTable(t, 4, 2)
	if err := tab.SetVector(2, tensor.Vector{1, 2}); err != nil {
		t.Fatal(err)
	}
	v, err := tab.Vector(2)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 1 || v[1] != 2 {
		t.Fatalf("Vector(2) = %v", v)
	}
	if _, err := tab.Vector(4); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("want ErrIndexRange, got %v", err)
	}
	if _, err := tab.Vector(-1); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("want ErrIndexRange, got %v", err)
	}
	if err := tab.SetVector(0, tensor.Vector{1}); err == nil {
		t.Fatal("want dim error")
	}
}

func TestGatherPoolHandChecked(t *testing.T) {
	tab := mustTable(t, 3, 2)
	_ = tab.SetVector(0, tensor.Vector{1, 10})
	_ = tab.SetVector(1, tensor.Vector{2, 20})
	_ = tab.SetVector(2, tensor.Vector{3, 30})
	dst := make(tensor.Vector, 2)
	if err := tab.GatherPool(dst, []int64{0, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 7 || dst[1] != 70 {
		t.Fatalf("GatherPool = %v, want [7 70]", dst)
	}
}

func TestGatherPoolErrors(t *testing.T) {
	tab := mustTable(t, 3, 2)
	if err := tab.GatherPool(make(tensor.Vector, 3), []int64{0}); err == nil {
		t.Fatal("want dst dim error")
	}
	if err := tab.GatherPool(make(tensor.Vector, 2), []int64{3}); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("want ErrIndexRange, got %v", err)
	}
}

func TestSliceSharesStorage(t *testing.T) {
	tab := mustTable(t, 10, 2)
	_ = tab.SetVector(5, tensor.Vector{7, 8})
	shard, err := tab.Slice(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if shard.Rows != 4 {
		t.Fatalf("shard rows = %d", shard.Rows)
	}
	v, err := shard.Vector(1) // row 5 of parent
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 7 || v[1] != 8 {
		t.Fatalf("shard row = %v", v)
	}
	// Mutation through the parent is visible in the shard (shared storage).
	_ = tab.SetVector(5, tensor.Vector{9, 9})
	if v[0] != 9 {
		t.Fatal("Slice must share storage")
	}
}

func TestSliceValidation(t *testing.T) {
	tab := mustTable(t, 10, 2)
	for _, c := range [][2]int64{{-1, 5}, {5, 11}, {5, 5}, {6, 5}} {
		if _, err := tab.Slice(c[0], c[1]); err == nil {
			t.Fatalf("want error for slice [%d,%d)", c[0], c[1])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	tab := mustTable(t, 2, 2)
	_ = tab.SetVector(0, tensor.Vector{1, 1})
	c := tab.Clone()
	_ = c.SetVector(0, tensor.Vector{5, 5})
	v, _ := tab.Vector(0)
	if v[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestPermute(t *testing.T) {
	tab := mustTable(t, 3, 1)
	_ = tab.SetVector(0, tensor.Vector{10})
	_ = tab.SetVector(1, tensor.Vector{11})
	_ = tab.SetVector(2, tensor.Vector{12})
	sorted, err := tab.Permute([]int64{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{12, 10, 11}
	for i, w := range want {
		v, _ := sorted.Vector(int64(i))
		if v[0] != w {
			t.Fatalf("sorted[%d] = %v, want %v", i, v[0], w)
		}
	}
}

func TestPermuteValidation(t *testing.T) {
	tab := mustTable(t, 3, 1)
	if _, err := tab.Permute([]int64{0, 1}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := tab.Permute([]int64{0, 1, 3}); err == nil {
		t.Fatal("want range error")
	}
	if _, err := tab.Permute([]int64{0, 1, 1}); err == nil {
		t.Fatal("want duplicate error")
	}
}

func TestBatchValidate(t *testing.T) {
	good := &Batch{Indices: []int64{1, 7, 3, 4, 8}, Offsets: []int32{0, 2}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Batch{
		{Indices: []int64{1}, Offsets: nil},                 // indices without offsets
		{Indices: []int64{1, 2}, Offsets: []int32{1, 2}},    // first offset != 0
		{Indices: []int64{1, 2}, Offsets: []int32{0, 3}},    // offset beyond indices
		{Indices: []int64{1, 2}, Offsets: []int32{0, 2, 1}}, // decreasing
	}
	for i, b := range cases {
		if err := b.Validate(); !errors.Is(err, ErrBadBatch) {
			t.Errorf("case %d: want ErrBadBatch, got %v", i, err)
		}
	}
	empty := &Batch{}
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty batch should validate: %v", err)
	}
}

func TestBatchAccessors(t *testing.T) {
	b := &Batch{Indices: []int64{1, 7, 3, 4, 8}, Offsets: []int32{0, 2}}
	if b.BatchSize() != 2 || b.TotalLookups() != 5 {
		t.Fatalf("size=%d lookups=%d", b.BatchSize(), b.TotalLookups())
	}
	if got := b.InputIndices(0); len(got) != 2 || got[0] != 1 || got[1] != 7 {
		t.Fatalf("input0 = %v", got)
	}
	if got := b.InputIndices(1); len(got) != 3 || got[2] != 8 {
		t.Fatalf("input1 = %v", got)
	}
	c := b.Clone()
	c.Indices[0] = 99
	if b.Indices[0] == 99 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestGatherPoolBatch(t *testing.T) {
	tab := mustTable(t, 4, 2)
	for i := int64(0); i < 4; i++ {
		_ = tab.SetVector(i, tensor.Vector{float32(i), float32(10 * i)})
	}
	b := &Batch{Indices: []int64{0, 1, 2, 3}, Offsets: []int32{0, 2}}
	out := tensor.NewMatrix(2, 2)
	if err := tab.GatherPoolBatch(out, b); err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 1 || out.At(0, 1) != 10 {
		t.Fatalf("row0 = %v", out.Row(0))
	}
	if out.At(1, 0) != 5 || out.At(1, 1) != 50 {
		t.Fatalf("row1 = %v", out.Row(1))
	}
	bad := tensor.NewMatrix(1, 2)
	if err := tab.GatherPoolBatch(bad, b); err == nil {
		t.Fatal("want shape error")
	}
}

// Property: pooling equals the element-wise sum of the gathered vectors.
func TestGatherPoolIsSumProperty(t *testing.T) {
	tab, err := NewRandomTable("p", 64, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 32 {
			raw = raw[:32]
		}
		idx := make([]int64, len(raw))
		for i, r := range raw {
			idx[i] = int64(r) % 64
		}
		pooled := make(tensor.Vector, 8)
		if tab.GatherPool(pooled, idx) != nil {
			return false
		}
		want := make([]float64, 8)
		for _, id := range idx {
			v, _ := tab.Vector(id)
			for d := range want {
				want[d] += float64(v[d])
			}
		}
		for d := range want {
			if math.Abs(want[d]-float64(pooled[d])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: permuting a table then reading rank i equals reading perm[i]
// from the original.
func TestPermuteReadbackProperty(t *testing.T) {
	tab, err := NewRandomTable("p", 16, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	perm := []int64{3, 1, 0, 2, 7, 6, 5, 4, 12, 13, 14, 15, 8, 9, 10, 11}
	sorted, err := tab.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	for newIdx, oldIdx := range perm {
		a, _ := sorted.Vector(int64(newIdx))
		b, _ := tab.Vector(oldIdx)
		if !tensor.AlmostEqual(a, b, 0) {
			t.Fatalf("rank %d != original %d", newIdx, oldIdx)
		}
	}
}
