package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected geometry: %+v", m)
	}
}

func TestMatrixAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if got := m.At(1, 2); got != 5 {
		t.Fatalf("At(1,2)=%v, want 5", got)
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Fatalf("Row(1)=%v", row)
	}
	// Row is a view: mutating it mutates the matrix.
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row should alias matrix storage")
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestMatVecHandChecked(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	x := Vector{1, 0, -1}
	dst := make(Vector, 2)
	if err := MatVec(dst, m, x); err != nil {
		t.Fatal(err)
	}
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MatVec = %v, want [-2 -2]", dst)
	}
}

func TestMatVecShapeErrors(t *testing.T) {
	m := NewMatrix(2, 3)
	if err := MatVec(make(Vector, 2), m, make(Vector, 2)); err == nil {
		t.Fatal("want shape error for bad x")
	}
	if err := MatVec(make(Vector, 3), m, make(Vector, 3)); err == nil {
		t.Fatal("want shape error for bad dst")
	}
}

func TestMatVecBias(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float32{1, 0, 0, 1})
	dst := make(Vector, 2)
	if err := MatVecBias(dst, m, Vector{3, 4}, Vector{10, 20}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 13 || dst[1] != 24 {
		t.Fatalf("MatVecBias = %v", dst)
	}
	if err := MatVecBias(dst, m, Vector{3, 4}, Vector{10}); err == nil {
		t.Fatal("want bias shape error")
	}
}

func TestDot(t *testing.T) {
	got, err := Dot(Vector{1, 2, 3}, Vector{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if _, err := Dot(Vector{1}, Vector{1, 2}); err == nil {
		t.Fatal("want length error")
	}
}

func TestAddScaleZero(t *testing.T) {
	v := Vector{1, 2}
	if err := Add(v, Vector{3, 4}); err != nil {
		t.Fatal(err)
	}
	if v[0] != 4 || v[1] != 6 {
		t.Fatalf("Add = %v", v)
	}
	Scale(v, 0.5)
	if v[0] != 2 || v[1] != 3 {
		t.Fatalf("Scale = %v", v)
	}
	Zero(v)
	if v[0] != 0 || v[1] != 0 {
		t.Fatalf("Zero = %v", v)
	}
	if err := Add(v, Vector{1}); err == nil {
		t.Fatal("want length error")
	}
}

func TestReLU(t *testing.T) {
	v := Vector{-1, 0, 2}
	ReLU(v)
	if v[0] != 0 || v[1] != 0 || v[2] != 2 {
		t.Fatalf("ReLU = %v", v)
	}
}

func TestSigmoid(t *testing.T) {
	v := Vector{0}
	Sigmoid(v)
	if math.Abs(float64(v[0])-0.5) > 1e-6 {
		t.Fatalf("Sigmoid(0) = %v, want 0.5", v[0])
	}
	v = Vector{100, -100}
	Sigmoid(v)
	if v[0] < 0.999 || v[1] > 0.001 {
		t.Fatalf("Sigmoid saturation = %v", v)
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone must copy")
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2(Vector{3, 4}); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(Vector{1, 2}, Vector{1.0000001, 2}, 1e-3) {
		t.Fatal("want equal within eps")
	}
	if AlmostEqual(Vector{1}, Vector{1, 2}, 1) {
		t.Fatal("length mismatch must be unequal")
	}
	if AlmostEqual(Vector{1}, Vector{2}, 0.5) {
		t.Fatal("difference beyond eps must be unequal")
	}
}

func TestInitXavierDeterministicAndBounded(t *testing.T) {
	a := NewMatrix(8, 8)
	b := NewMatrix(8, 8)
	InitXavier(a, 42)
	InitXavier(b, 42)
	limit := math.Sqrt(6.0 / 16)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must reproduce weights")
		}
		if math.Abs(float64(a.Data[i])) > limit {
			t.Fatalf("weight %v exceeds Xavier limit %v", a.Data[i], limit)
		}
	}
	c := NewMatrix(8, 8)
	InitXavier(c, 43)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestInitUniformBounded(t *testing.T) {
	v := make(Vector, 100)
	InitUniform(v, 0.05, 7)
	for _, x := range v {
		if math.Abs(float64(x)) > 0.05 {
			t.Fatalf("value %v outside limit", x)
		}
	}
}

// Property: MatVec is linear — M(ax + by) == a*Mx + b*My.
func TestMatVecLinearityProperty(t *testing.T) {
	f := func(seed uint64, a8, b8 int8) bool {
		m := NewMatrix(4, 5)
		InitXavier(m, seed)
		x := make(Vector, 5)
		y := make(Vector, 5)
		InitUniform(x, 1, seed^1)
		InitUniform(y, 1, seed^2)
		a, b := float32(a8)/16, float32(b8)/16
		comb := make(Vector, 5)
		for i := range comb {
			comb[i] = a*x[i] + b*y[i]
		}
		var mx, my, mc Vector = make(Vector, 4), make(Vector, 4), make(Vector, 4)
		if MatVec(mx, m, x) != nil || MatVec(my, m, y) != nil || MatVec(mc, m, comb) != nil {
			return false
		}
		for i := range mc {
			want := a*mx[i] + b*my[i]
			if math.Abs(float64(mc[i]-want)) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric.
func TestDotSymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		x := make(Vector, 16)
		y := make(Vector, 16)
		InitUniform(x, 2, seed)
		InitUniform(y, 2, seed^0xff)
		xy, _ := Dot(x, y)
		yx, _ := Dot(y, x)
		return xy == yx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
