// Package tensor provides the minimal float32 linear-algebra substrate used
// by the DLRM model: dense vectors, row-major matrices, matrix-vector and
// matrix-matrix products, and the element-wise activations DLRM needs.
//
// The package is deliberately small and allocation-conscious: all hot-path
// routines accept destination slices so the serving engine can reuse
// buffers across queries.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("tensor: shape mismatch")

// Vector is a dense float32 vector.
type Vector []float32

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) Vector { return Vector(m.Data[r*m.Cols : (r+1)*m.Cols]) }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SizeBytes returns the parameter footprint of the matrix in bytes
// (4 bytes per float32 element).
func (m *Matrix) SizeBytes() int64 { return int64(len(m.Data)) * 4 }

// MatVec computes dst = m * x for an m of shape (Rows x Cols) and x of
// length Cols. dst must have length Rows. It returns ErrShape on mismatch.
func MatVec(dst Vector, m *Matrix, x Vector) error {
	if len(x) != m.Cols || len(dst) != m.Rows {
		return fmt.Errorf("%w: matvec (%dx%d)*(%d)->(%d)", ErrShape, m.Rows, m.Cols, len(x), len(dst))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		var acc float32
		for c, w := range row {
			acc += w * x[c]
		}
		dst[r] = acc
	}
	return nil
}

// MatVecBias computes dst = m*x + b. b must have length m.Rows.
func MatVecBias(dst Vector, m *Matrix, x, b Vector) error {
	if len(b) != m.Rows {
		return fmt.Errorf("%w: bias length %d for %d rows", ErrShape, len(b), m.Rows)
	}
	if err := MatVec(dst, m, x); err != nil {
		return err
	}
	for i := range dst {
		dst[i] += b[i]
	}
	return nil
}

// Dot returns the inner product of a and b, which must share a length.
func Dot(a, b Vector) (float32, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: dot %d vs %d", ErrShape, len(a), len(b))
	}
	var acc float32
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc, nil
}

// Add accumulates src into dst element-wise. Lengths must match.
func Add(dst, src Vector) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: add %d vs %d", ErrShape, len(dst), len(src))
	}
	for i := range src {
		dst[i] += src[i]
	}
	return nil
}

// Scale multiplies every element of v by s in place.
func Scale(v Vector, s float32) {
	for i := range v {
		v[i] *= s
	}
}

// ReLU applies max(0, x) element-wise in place.
func ReLU(v Vector) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

// Sigmoid applies the logistic function element-wise in place.
func Sigmoid(v Vector) {
	for i, x := range v {
		v[i] = float32(1.0 / (1.0 + math.Exp(-float64(x))))
	}
}

// Zero clears v in place.
func Zero(v Vector) {
	for i := range v {
		v[i] = 0
	}
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vector) float64 {
	var acc float64
	for _, x := range v {
		acc += float64(x) * float64(x)
	}
	return math.Sqrt(acc)
}

// AlmostEqual reports whether a and b are element-wise equal within eps.
func AlmostEqual(a, b Vector, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i])-float64(b[i])) > eps {
			return false
		}
	}
	return true
}

// rng is a tiny deterministic splitmix64 generator so model initialisation
// is reproducible without pulling in math/rand state management. It is
// unexported; consumers seed it through the Init* helpers.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 in [0,1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// InitXavier fills m with deterministic pseudo-random weights drawn from a
// uniform distribution scaled by sqrt(6/(fanIn+fanOut)) — the standard
// Glorot/Xavier initialisation — using seed for reproducibility.
func InitXavier(m *Matrix, seed uint64) {
	r := rng{state: seed}
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = float32((r.float64()*2 - 1) * limit)
	}
}

// InitUniform fills v with deterministic pseudo-random values in
// [-limit, limit) using seed.
func InitUniform(v Vector, limit float64, seed uint64) {
	r := rng{state: seed}
	for i := range v {
		v[i] = float32((r.float64()*2 - 1) * limit)
	}
}
