package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/embedding"
	"repro/internal/serving"
	"repro/internal/workload"
)

// StressTable runs the Sec. IV-D QPSmax measurement against real,
// in-process embedding shards: a scaled-down RM1 table is hotness-split
// into three shards and each is ramped until its tail-latency knee. The
// resulting per-shard QPSmax values are exactly what ElasticRec feeds the
// sparse shards' HPA thresholds.
func StressTable() (*Table, error) {
	const rows = 200_000
	const dim = 32
	tab, err := embedding.NewRandomTable("stress", rows, dim, 11)
	if err != nil {
		return nil, err
	}
	sampler, err := workload.NewPowerLawSampler(rows, 0.9, 0.9)
	if err != nil {
		return nil, err
	}
	boundaries := []int64{rows / 10, rows / 2, rows}
	t := &Table{
		Title:  "Sec. IV-D: stress-tested QPSmax per live embedding shard",
		Header: []string{"shard", "rows", "QPSmax", "knee concurrency", "baseline P95"},
	}
	lo := int64(0)
	for s, hi := range boundaries {
		shard, err := serving.NewEmbeddingShard(0, s, tab, lo, hi)
		if err != nil {
			return nil, err
		}
		rng := workload.NewRNG(uint64(s) + 1)
		shardRows := hi - lo
		newReq := func() *serving.GatherRequest {
			req := &serving.GatherRequest{Offsets: make([]int32, 4)}
			for i := 0; i < 4; i++ {
				req.Offsets[i] = int32(len(req.Indices))
				for k := 0; k < 16; k++ {
					rank := sampler.SampleRank(rng)
					// Fold the table-wide rank into this shard's range.
					req.Indices = append(req.Indices, rank%shardRows)
				}
			}
			return req
		}
		//lint:escape ctxflow the CLI stress driver is the top of its call tree; there is no caller context to inherit
		res, err := serving.StressTest(context.Background(), shard, newReq, serving.StressOptions{
			MaxConcurrency:   16,
			RequestsPerLevel: 128,
		})
		if err != nil {
			return nil, err
		}
		knee := "none"
		if res.KneeConcurrency > 0 {
			knee = fmt.Sprintf("%d", res.KneeConcurrency)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("S%d", s+1),
			fmt.Sprintf("%d", shardRows),
			fmt.Sprintf("%.0f", res.QPSMax),
			knee,
			res.Samples[0].P95.Round(time.Microsecond).String(),
		})
		lo = hi
	}
	t.Notes = append(t.Notes,
		"closed-loop ramp over live in-process shards on this machine; QPSmax feeds the sparse shards' HPA thresholds (Sec. IV-D)")
	return t, nil
}
