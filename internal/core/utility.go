package core

import (
	"fmt"

	"repro/internal/deploy"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/workload"
)

// UtilityQueries is the measurement window of Figs. 14/17: memory utility
// is the fraction of a shard's embeddings touched while servicing the
// first 1,000 queries.
const UtilityQueries = 1000

// bitset tracks distinct touched rows without per-row map overhead (the
// paper-scale tables have 20M rows).
type bitset struct {
	words []uint64
	count int64
}

func newBitset(n int64) *bitset { return &bitset{words: make([]uint64, (n+63)/64)} }

func (b *bitset) set(i int64) {
	w, m := i/64, uint64(1)<<(uint(i)%64)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.count++
	}
}

// ShardUtility is one row of the Fig. 14/17 output.
type ShardUtility struct {
	Policy   deploy.Policy
	Shard    string // S1, S2, ...
	Rows     int64
	Utility  float64
	Replicas int
}

// MeasureUtility simulates the first UtilityQueries queries against table
// 0 (the paper reports the first table of each workload) and returns the
// per-shard memory utility and replica counts for both policies.
func MeasureUtility(platform perfmodel.Platform, cfg model.Config, seed uint64) ([]ShardUtility, error) {
	sys, err := NewSystem(platform)
	if err != nil {
		return nil, err
	}
	cmp, err := sys.Compare(cfg, DefaultTarget(platform))
	if err != nil {
		return nil, err
	}

	// Draw the sorted-space ranks the first 1,000 queries touch.
	sampler, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, deploy.DefaultExponent)
	if err != nil {
		return nil, err
	}
	rng := workload.NewRNG(seed)
	touched := newBitset(cfg.RowsPerTable)
	perRow := make([]int64, 0, UtilityQueries*cfg.BatchSize*cfg.Pooling)
	for q := 0; q < UtilityQueries; q++ {
		for i := 0; i < cfg.BatchSize*cfg.Pooling; i++ {
			r := sampler.SampleRank(rng)
			touched.set(r)
			perRow = append(perRow, r)
		}
	}

	var out []ShardUtility
	// Model-wise: a single shard holding the entire table.
	out = append(out, ShardUtility{
		Policy:   deploy.PolicyModelWise,
		Shard:    "S1",
		Rows:     cfg.RowsPerTable,
		Utility:  float64(touched.count) / float64(cfg.RowsPerTable),
		Replicas: cmp.ModelWise.Shards[0].Replicas,
	})

	// ElasticRec: per-shard distinct counts over the same draw.
	plan := cmp.Elastic.TablePlan
	counts := make([]*bitset, plan.NumShards())
	for s := range counts {
		lo, hi := plan.ShardRange(s)
		counts[s] = newBitset(hi - lo)
	}
	for _, r := range perRow {
		s := shardOf(r, plan.Boundaries)
		lo, _ := plan.ShardRange(s)
		counts[s].set(r - lo)
	}
	// Replica counts from the plan's table-0 embedding shards.
	replicas := make(map[int]int)
	for _, spec := range cmp.Elastic.EmbeddingShards() {
		if spec.Table == 0 {
			replicas[spec.Shard] = spec.Replicas
		}
	}
	for s := 0; s < plan.NumShards(); s++ {
		lo, hi := plan.ShardRange(s)
		out = append(out, ShardUtility{
			Policy:   deploy.PolicyElastic,
			Shard:    fmt.Sprintf("S%d", s+1),
			Rows:     hi - lo,
			Utility:  float64(counts[s].count) / float64(hi-lo),
			Replicas: replicas[s],
		})
	}
	return out, nil
}

func shardOf(row int64, boundaries []int64) int {
	for s, b := range boundaries {
		if row < b {
			return s
		}
	}
	return len(boundaries) - 1
}

// utilityFigure is the shared body of Figs. 14 and 17.
func utilityFigure(platform perfmodel.Platform, title string) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"model", "policy", "shard", "rows", "memory utility", "replicas"},
	}
	for _, cfg := range model.StateOfTheArt() {
		rows, err := MeasureUtility(platform, cfg, 7)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{
				cfg.Name, string(r.Policy), r.Shard,
				fmt.Sprintf("%d", r.Rows), pct(r.Utility), fmt.Sprintf("%d", r.Replicas),
			})
		}
	}
	t.Notes = append(t.Notes,
		"utility = distinct embeddings touched in first 1,000 queries / shard rows (table 0); paper: model-wise averages ~6%, hotter shards show higher utility and more replicas")
	return t, nil
}

// Figure14 reproduces Fig. 14 (CPU-only memory utility and replicas).
func Figure14() (*Table, error) {
	return utilityFigure(perfmodel.CPUOnly, "Figure 14: memory utility and shard replicas (CPU-only @100 QPS)")
}

// Figure17 reproduces Fig. 17 (CPU-GPU memory utility and replicas).
func Figure17() (*Table, error) {
	return utilityFigure(perfmodel.CPUGPU, "Figure 17: memory utility and shard replicas (CPU-GPU @200 QPS)")
}
