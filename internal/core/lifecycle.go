package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving"
)

// LifecycleTable runs the model-lifecycle closed loop: a live multi-model
// frontend whose served set changes under traffic, driven entirely over
// the versioned admin RPC endpoints (Admin.Deploy / Admin.Undeploy /
// Admin.Status) that ride the same TCP listener as the predict traffic.
// The loop starts with two variants, deploys a third into the running
// frontend mid-run (build → warm → publish, no restart), drains the first
// variant out while the others keep serving, and finally redeploys under
// the freed name — registration is a first-class runtime operation, so the
// name is immediately reusable with fresh epoch/swap state. The table
// shows, per phase and per variant, the epoch, shard count, served/failed
// queries and the bytes of cached sorted tables each variant's plan cache
// pins (the per-model input to the cross-variant cache budget). short
// trims the per-phase query count for the CI smoke run.
func LifecycleTable(short bool) (*Table, error) {
	queries := 250
	if short {
		queries = 80
	}

	cfgA := model.RM1().WithRows(16_000).WithName("rm1a")
	cfgA.NumTables = 2
	cfgB := model.RM1().WithRows(10_000).WithName("rm1b")
	cfgB.NumTables = 2
	cfgB.BatchSize = 2
	cfgC := model.RM1().WithRows(12_000).WithName("rm1c")
	cfgC.NumTables = 2

	varA, err := newMultiModelVariant("rm1a", cfgA, 42)
	if err != nil {
		return nil, err
	}
	varB, err := newMultiModelVariant("rm1b", cfgB, 1042)
	if err != nil {
		return nil, err
	}
	varC, err := newMultiModelVariant("rm1c", cfgC, 2042)
	if err != nil {
		return nil, err
	}

	mA, err := model.New(cfgA, 7)
	if err != nil {
		return nil, err
	}
	mB, err := model.New(cfgB, 1007)
	if err != nil {
		return nil, err
	}
	windowA, err := varA.window(120)
	if err != nil {
		return nil, err
	}
	windowB, err := varB.window(120)
	if err != nil {
		return nil, err
	}
	boundsA, err := varA.plan(windowA)
	if err != nil {
		return nil, err
	}
	boundsB, err := varB.plan(windowB)
	if err != nil {
		return nil, err
	}

	md, err := serving.BuildMulti(
		serving.ModelSpec{Name: varA.name, Model: mA, Stats: windowA, Boundaries: boundsA},
		serving.ModelSpec{Name: varB.name, Model: mB, Stats: windowB, Boundaries: boundsB},
	)
	if err != nil {
		return nil, err
	}
	defer md.Close()

	// The control plane rides the predict frontend: one TCP endpoint, data
	// and admin, versioned wire format.
	addr, err := md.ExportPredict("Frontend")
	if err != nil {
		return nil, err
	}
	admin, err := serving.DialAdmin(addr, "Frontend")
	if err != nil {
		return nil, err
	}
	defer admin.Close()
	//lint:escape ctxflow the lifecycle experiment driver is a CLI entry point; it mints the root deadline for the whole run
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	tab := &Table{
		Title:  "Model lifecycle: deploy/undeploy variants in a live frontend over the admin API",
		Header: []string{"phase", "model", "epoch", "shards", "served", "failed", "cached tables"},
	}
	row := func(phase string, v *multiModelVariant, served, failed int) error {
		sts, err := admin.Status(ctx, v.name)
		if err != nil {
			return fmt.Errorf("admin status %q: %w", v.name, err)
		}
		st := sts[0]
		tab.Rows = append(tab.Rows, []string{
			phase, st.Model,
			fmt.Sprintf("%d", st.Epoch),
			fmt.Sprintf("%d", st.Shards),
			fmt.Sprintf("%d", served),
			fmt.Sprintf("%d", failed),
			metrics.FormatBytes(st.Counters.CachedSortedBytes),
		})
		return nil
	}

	// Phase 1: the built set serves.
	if err := row("baseline", varA, queries, varA.serve(md, queries)); err != nil {
		return nil, err
	}
	if err := row("baseline", varB, queries, varB.serve(md, queries)); err != nil {
		return nil, err
	}

	// Phase 2: deploy variant C into the running frontend over the wire —
	// the spec (config + seed + profiling counts + plan) rides the admin
	// RPC; the frontend builds, pre-warms and publishes with no restart.
	windowC, err := varC.window(120)
	if err != nil {
		return nil, err
	}
	boundsC, err := varC.plan(windowC)
	if err != nil {
		return nil, err
	}
	counts := make([][]int64, len(windowC))
	for t, st := range windowC {
		counts[t] = st.Counts
	}
	var depReply serving.AdminDeployReply
	if err := admin.Deploy(ctx, &serving.AdminDeployRequest{
		Name: varC.name, Config: cfgC, Seed: 2007,
		Counts: counts, Boundaries: boundsC,
	}, &depReply); err != nil {
		return nil, fmt.Errorf("admin deploy %q: %w", varC.name, err)
	}
	for _, v := range []*multiModelVariant{varA, varB, varC} {
		if err := row("C deployed", v, queries, v.serve(md, queries)); err != nil {
			return nil, err
		}
	}

	// Phase 3: drain variant A out while B and C keep serving. Requests
	// addressed to the retired name must all fail fast at the frontend.
	if _, err := admin.Undeploy(ctx, varA.name); err != nil {
		return nil, fmt.Errorf("admin undeploy %q: %w", varA.name, err)
	}
	rejected := varA.serve(md, 20)
	for _, v := range []*multiModelVariant{varB, varC} {
		if err := row("A undeployed", v, queries, v.serve(md, queries)); err != nil {
			return nil, err
		}
	}

	// Phase 4: the freed name is immediately reusable — redeploy a fresh
	// variant as "rm1a" with fresh epoch/swap state.
	countsA := make([][]int64, len(windowA))
	for t, st := range windowA {
		countsA[t] = st.Counts
	}
	if err := admin.Deploy(ctx, &serving.AdminDeployRequest{
		Name: varA.name, Config: cfgA, Seed: 8,
		Counts: countsA, Boundaries: boundsA,
	}, &depReply); err != nil {
		return nil, fmt.Errorf("admin redeploy %q: %w", varA.name, err)
	}
	for _, v := range []*multiModelVariant{varA, varB, varC} {
		if err := row("A redeployed", v, queries, v.serve(md, queries)); err != nil {
			return nil, err
		}
	}

	sts, err := admin.Status(ctx, "")
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(sts))
	for _, st := range sts {
		names = append(names, st.Model)
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("all lifecycle operations ran over the versioned admin RPC endpoints (v%d) on the predict frontend's own TCP listener", serving.AdminAPIVersion),
		fmt.Sprintf("%d requests addressed to the undeployed %q were rejected fast at the frontend (all %d failed); B and C served through the drain untouched", rejected, varA.name, rejected),
		fmt.Sprintf("final served set (registration order): %v — %q was drained, unregistered and its name reused with fresh epoch state", names, varA.name),
	)
	return tab, nil
}
