package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/model"
	"repro/internal/perfmodel"
)

func TestNewSystem(t *testing.T) {
	sys, err := NewSystem(perfmodel.CPUOnly)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Profile == nil || sys.Planner == nil {
		t.Fatal("system not wired")
	}
	if _, err := NewSystem("abacus"); err == nil {
		t.Fatal("want platform error")
	}
}

func TestCompareHeadlineMetrics(t *testing.T) {
	sys, _ := NewSystem(perfmodel.CPUOnly)
	cmp, err := sys.Compare(model.RM1(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if x := cmp.MemoryReductionX(); x < 2 {
		t.Fatalf("memory reduction %vx below the paper's band", x)
	}
	x, err := cmp.ServerReductionX(sys.Profile.Node)
	if err != nil {
		t.Fatal(err)
	}
	if x < 1 {
		t.Fatalf("server reduction %vx — ElasticRec must not need more servers", x)
	}
}

func TestPlanDispatch(t *testing.T) {
	sys, _ := NewSystem(perfmodel.CPUGPU)
	p, err := sys.Plan(deploy.PolicyModelWiseCache, model.RM1(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy != deploy.PolicyModelWiseCache {
		t.Fatalf("policy = %v", p.Policy)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"yy", "2"}},
		Notes:  []string{"a note"},
	}
	s := tab.String()
	for _, want := range []string{"demo", "long-header", "yy", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestAllStaticFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment: regenerates every static figure (~12s)")
	}
	figs := map[string]func() (*Table, error){
		"fig3":   Figure3,
		"fig5":   Figure5,
		"fig9":   Figure9,
		"fig12a": Figure12a,
		"fig12b": Figure12b,
		"fig12c": Figure12c,
		"fig12d": Figure12d,
		"fig13":  Figure13,
		"fig15":  Figure15,
		"fig16":  Figure16,
		"fig18":  Figure18,
		"fig20":  Figure20,
	}
	for name, fn := range figs {
		tab, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: no rows", name)
		}
		if len(tab.Header) == 0 || tab.Title == "" {
			t.Fatalf("%s: missing header/title", name)
		}
	}
}

func TestFigure6SeriesShape(t *testing.T) {
	tab, err := Figure6(200_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// All three datasets appear.
	seen := map[string]bool{}
	for _, r := range tab.Rows {
		seen[r[0]] = true
	}
	for _, ds := range []string{"amazon-books", "criteo", "movielens"} {
		if !seen[ds] {
			t.Fatalf("dataset %s missing", ds)
		}
	}
}

func TestTablesIandII(t *testing.T) {
	tab := TablesIandII()
	if len(tab.Rows) < 13 { // 3 RMs + 3 MLP + 3 locality + 4 table-count
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestMeasureUtilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment: live utility measurement (~1s)")
	}
	rows, err := MeasureUtility(perfmodel.CPUOnly, model.RM1(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Policy != deploy.PolicyModelWise {
		t.Fatal("first row must be model-wise")
	}
	mwUtil := rows[0].Utility
	// Paper: model-wise averages ~6% utility.
	if mwUtil < 0.01 || mwUtil > 0.25 {
		t.Fatalf("model-wise utility %v outside plausible band", mwUtil)
	}
	// ElasticRec's hottest shard must be far better utilized, and
	// utilities must decrease with shard index.
	er := rows[1:]
	if er[0].Utility < 4*mwUtil {
		t.Fatalf("hot shard utility %v not clearly above model-wise %v", er[0].Utility, mwUtil)
	}
	for i := 1; i < len(er); i++ {
		if er[i].Utility > er[i-1].Utility {
			t.Fatalf("utilities not decreasing with shard index: %+v", er)
		}
		if er[i].Replicas > er[i-1].Replicas {
			t.Fatalf("replicas not decreasing with shard index: %+v", er)
		}
	}
}

func TestRunDynamicTrafficBothPolicies(t *testing.T) {
	cfg := DynamicTrafficConfig{
		Platform: perfmodel.CPUOnly,
		Model:    model.RM1(),
		PeakQPS:  250,
	}
	mw, err := RunDynamicTraffic(cfg, deploy.PolicyModelWise)
	if err != nil {
		t.Fatal(err)
	}
	er, err := RunDynamicTraffic(cfg, deploy.PolicyElastic)
	if err != nil {
		t.Fatal(err)
	}
	if len(mw.Points) == 0 || len(er.Points) == 0 {
		t.Fatal("no samples")
	}
	// Paper: model-wise peaks at ~3.1x ElasticRec's memory.
	ratio := float64(mw.PeakMemBytes) / float64(er.PeakMemBytes)
	if ratio < 2 {
		t.Fatalf("peak memory ratio %v, want >= 2", ratio)
	}
	// Both must eventually serve the peak.
	peakServedMW, peakServedER := 0.0, 0.0
	for i := range mw.Points {
		if mw.Points[i].AchievedQPS > peakServedMW {
			peakServedMW = mw.Points[i].AchievedQPS
		}
		if er.Points[i].AchievedQPS > peakServedER {
			peakServedER = er.Points[i].AchievedQPS
		}
	}
	if peakServedMW < 240 || peakServedER < 240 {
		t.Fatalf("peaks not reached: MW %v, ER %v", peakServedMW, peakServedER)
	}
	// Memory timelines: ElasticRec must stay below model-wise at the end
	// of the run (steady state at 100 QPS).
	last := len(mw.Points) - 1
	if er.Points[last].MemBytes >= mw.Points[last].MemBytes {
		t.Fatal("ElasticRec steady-state memory must undercut model-wise")
	}
}

func TestFigure19Table(t *testing.T) {
	tab, err := Figure19()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 25 {
		t.Fatalf("rows = %d, want the 30-minute timeline", len(tab.Rows))
	}
}

func TestFigure14And17(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment: live utility experiments (~6s)")
	}
	for _, fn := range []func() (*Table, error){Figure14, Figure17} {
		tab, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		// 3 models x (1 MW row + >=2 ER rows).
		if len(tab.Rows) < 9 {
			t.Fatalf("rows = %d", len(tab.Rows))
		}
	}
}

func TestDefaultTarget(t *testing.T) {
	if DefaultTarget(perfmodel.CPUOnly) != 100 || DefaultTarget(perfmodel.CPUGPU) != 200 {
		t.Fatal("default targets wrong")
	}
}

func TestDynamicTrafficDefaults(t *testing.T) {
	c := DynamicTrafficConfig{}
	c.defaults()
	if c.PeakQPS != 250 || c.SLA != deploy.DefaultSLA ||
		c.HPAInterval != 15*time.Second || c.SampleEvery != 10*time.Second {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestRunDynamicTrafficCPUGPU(t *testing.T) {
	cfg := DynamicTrafficConfig{
		Platform: perfmodel.CPUGPU,
		Model:    model.RM1(),
		PeakQPS:  400,
	}
	er, err := RunDynamicTraffic(cfg, deploy.PolicyElastic)
	if err != nil {
		t.Fatal(err)
	}
	mw, err := RunDynamicTraffic(cfg, deploy.PolicyModelWise)
	if err != nil {
		t.Fatal(err)
	}
	if er.PeakMemBytes >= mw.PeakMemBytes {
		t.Fatalf("CPU-GPU: ER peak %d >= MW peak %d", er.PeakMemBytes, mw.PeakMemBytes)
	}
}

func TestSchemesTable(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment: partition-scheme sweep (~1s)")
	}
	tab, err := SchemesTable()
	if err != nil {
		t.Fatal(err)
	}
	// 3 models x 5 schemes (row, table, column k=2/4/8).
	if len(tab.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(tab.Rows))
	}
	// Row-wise must be the 1.00x reference and never beaten.
	for i := 0; i < len(tab.Rows); i += 5 {
		if tab.Rows[i][4] != "1.00x" {
			t.Fatalf("row-wise reference broken: %v", tab.Rows[i])
		}
	}
}

func TestStressTable(t *testing.T) {
	tab, err := StressTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestRepartitionTable(t *testing.T) {
	if testing.Short() {
		t.Skip("live repartition loop skipped in -short")
	}
	tab, err := RepartitionTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The loop's contract: zero failed requests in every phase, the
	// repartitioned phase serves from epoch 1, and the revert phase
	// (hotness shifted back, second live replan) from epoch 2.
	for _, row := range tab.Rows {
		if row[4] != "0" {
			t.Fatalf("phase %s dropped %s requests during the swap", row[0], row[4])
		}
	}
	if tab.Rows[2][1] != "1" {
		t.Fatalf("repartitioned phase epoch = %s, want 1", tab.Rows[2][1])
	}
	if tab.Rows[3][1] != "2" {
		t.Fatalf("reverted phase epoch = %s, want 2", tab.Rows[3][1])
	}
}

func TestLifecycleTable(t *testing.T) {
	tab, err := LifecycleTable(true)
	if err != nil {
		t.Fatal(err)
	}
	// baseline (2) + C deployed (3) + A undeployed (2) + A redeployed (3).
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[5] != "0" {
			t.Fatalf("phase %s model %s dropped %s requests during lifecycle ops", row[0], row[1], row[5])
		}
	}
	// The undeployed phase must not list rm1a; the redeploy phase must.
	for _, row := range tab.Rows {
		if row[0] == "A undeployed" && row[1] == "rm1a" {
			t.Fatal("undeployed variant still reported")
		}
	}
	last := tab.Rows[len(tab.Rows)-3]
	if last[0] != "A redeployed" || last[1] != "rm1a" || last[2] != "0" {
		t.Fatalf("redeployed row = %v, want rm1a back at epoch 0", last)
	}
}
