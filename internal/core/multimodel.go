package core

import (
	"context"
	"fmt"

	"repro/internal/deploy"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/serving"
	"repro/internal/workload"
)

// multiModelVariant bundles one DLRM variant's closed-loop state: its
// geometry, its drifting traffic source and its DP replanner.
type multiModelVariant struct {
	name  string
	cfg   model.Config
	drift *workload.DriftingSampler
	gen   *workload.QueryGenerator
	plan  func(window []*embedding.AccessStats) ([]int64, error)
}

// newMultiModelVariant wires one variant's traffic and planner.
func newMultiModelVariant(name string, cfg model.Config, seed uint64) (*multiModelVariant, error) {
	base, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		return nil, err
	}
	drift, err := workload.NewDriftingSampler(base)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewQueryGenerator(drift, workload.NewShuffledMapping(cfg.RowsPerTable, 3),
		cfg.BatchSize, cfg.Pooling, seed)
	if err != nil {
		return nil, err
	}
	profile := perfmodel.CPUOnlyProfile()
	profile.MinMemAlloc = 1 << 18
	return &multiModelVariant{
		name:  name,
		cfg:   cfg,
		drift: drift,
		gen:   gen,
		plan: func(window []*embedding.AccessStats) ([]int64, error) {
			planner := &deploy.Planner{Profile: profile, CDF: embedding.NewCDF(window[0])}
			plan, _, err := planner.PartitionTable(cfg)
			if err != nil {
				return nil, err
			}
			return plan.Boundaries, nil
		},
	}, nil
}

// window collects a pre-deployment profiling window from the variant's
// current traffic distribution.
func (v *multiModelVariant) window(queries int) ([]*embedding.AccessStats, error) {
	perTable := make([][]*embedding.Batch, v.cfg.NumTables)
	for t := range perTable {
		for q := 0; q < queries; q++ {
			perTable[t] = append(perTable[t], v.gen.Next())
		}
	}
	return serving.CollectStats(v.cfg, perTable)
}

// serve drives n closed-loop queries at the multi-model frontend under
// this variant's name and returns the failure count.
func (v *multiModelVariant) serve(md *serving.MultiDeployment, n int) int {
	failed := 0
	for i := 0; i < n; i++ {
		req := &serving.PredictRequest{
			Model:     v.name,
			BatchSize: v.cfg.BatchSize,
			DenseDim:  v.cfg.DenseInputDim,
			Dense:     make([]float32, v.cfg.BatchSize*v.cfg.DenseInputDim),
		}
		for t := 0; t < v.cfg.NumTables; t++ {
			b := v.gen.Next()
			req.Tables = append(req.Tables, serving.TableBatch{Indices: b.Indices, Offsets: b.Offsets})
		}
		var reply serving.PredictReply
		//lint:escape ctxflow the experiment's query loop is the top of its call tree; no caller context exists
		if err := md.Predict(context.Background(), req, &reply); err != nil {
			failed++
		}
	}
	return failed
}

// MultiModelTable runs the multi-model closed loop: two DLRM variants
// served behind ONE frontend and ONE epoch-versioned router, each with its
// own drifting hotness and its own profiling -> repartition cycle. Variant
// "rm1a" drifts first and is repartitioned while "rm1b" keeps serving its
// original epoch untouched; then "rm1b" drifts and swaps while "rm1a"
// keeps its fresh plan. The table shows, per phase and per variant, the
// epoch, shard count, served/failed queries and the Fig. 14 utility skew —
// epochs advance strictly per model, and failures stay zero throughout
// both swaps.
func MultiModelTable() (*Table, error) {
	cfgA := model.RM1().WithRows(20_000).WithName("rm1a")
	cfgA.NumTables = 2
	cfgB := model.RM1().WithRows(12_000).WithName("rm1b")
	cfgB.NumTables = 2
	cfgB.BatchSize = 2

	varA, err := newMultiModelVariant("rm1a", cfgA, 42)
	if err != nil {
		return nil, err
	}
	varB, err := newMultiModelVariant("rm1b", cfgB, 1042)
	if err != nil {
		return nil, err
	}

	mA, err := model.New(cfgA, 7)
	if err != nil {
		return nil, err
	}
	mB, err := model.New(cfgB, 1007)
	if err != nil {
		return nil, err
	}
	windowA, err := varA.window(150)
	if err != nil {
		return nil, err
	}
	windowB, err := varB.window(150)
	if err != nil {
		return nil, err
	}
	boundsA, err := varA.plan(windowA)
	if err != nil {
		return nil, err
	}
	boundsB, err := varB.plan(windowB)
	if err != nil {
		return nil, err
	}

	md, err := serving.BuildMulti(
		serving.ModelSpec{Name: varA.name, Model: mA, Stats: windowA, Boundaries: boundsA},
		serving.ModelSpec{Name: varB.name, Model: mB, Stats: windowB, Boundaries: boundsB},
	)
	if err != nil {
		return nil, err
	}
	defer md.Close()

	tab := &Table{
		Title:  "Multi-model serving: one router, two variants, independent repartition cadences",
		Header: []string{"phase", "model", "epoch", "shards", "served", "failed", "utility skew"},
	}
	row := func(phase string, v *multiModelVariant, served, failed int) {
		ld, _ := md.Deployment(v.name)
		rt := ld.Table()
		tab.Rows = append(tab.Rows, []string{
			phase, v.name,
			fmt.Sprintf("%d", rt.Epoch),
			fmt.Sprintf("%d", rt.NumShards(0)),
			fmt.Sprintf("%d", served),
			fmt.Sprintf("%d", failed),
			fmt.Sprintf("%.2f", rt.UtilitySkew()),
		})
	}
	const queries = 300

	// Phase 1: both variants aligned with their profiled plans.
	row("aligned", varA, queries, varA.serve(md, queries))
	row("aligned", varB, queries, varB.serve(md, queries))

	// Phase 2: A's hotness drifts; profile A live and swap only A. B keeps
	// serving mid-swap — its epoch and in-flight requests are untouched.
	varA.drift.SetShift(cfgA.RowsPerTable / 2)
	if err := md.StartProfile(varA.name); err != nil {
		return nil, err
	}
	failedA := varA.serve(md, queries)
	failedB := varB.serve(md, queries)
	winA, err := md.SnapshotProfile(varA.name)
	if err != nil {
		return nil, err
	}
	newBoundsA, err := varA.plan(winA)
	if err != nil {
		return nil, err
	}
	//lint:escape ctxflow experiment driver repartition; the CLI run itself is the root
	if err := md.Repartition(context.Background(), varA.name, winA, newBoundsA); err != nil {
		return nil, err
	}
	row("A drifted+swapped", varA, queries, failedA)
	row("A drifted+swapped", varB, queries, failedB)

	// Phase 3: B's hotness drifts on its own cadence; swap only B.
	varB.drift.SetShift(cfgB.RowsPerTable / 2)
	if err := md.StartProfile(varB.name); err != nil {
		return nil, err
	}
	failedB = varB.serve(md, queries)
	failedA = varA.serve(md, queries)
	winB, err := md.SnapshotProfile(varB.name)
	if err != nil {
		return nil, err
	}
	newBoundsB, err := varB.plan(winB)
	if err != nil {
		return nil, err
	}
	//lint:escape ctxflow experiment driver repartition; the CLI run itself is the root
	if err := md.Repartition(context.Background(), varB.name, winB, newBoundsB); err != nil {
		return nil, err
	}
	failedB += varB.serve(md, queries)
	failedA += varA.serve(md, queries)
	row("B drifted+swapped", varA, 2*queries, failedA)
	row("B drifted+swapped", varB, 2*queries, failedB)

	ldA, _ := md.Deployment(varA.name)
	ldB, _ := md.Deployment(varB.name)
	cA, cB := ldA.BuildCounters(), ldB.BuildCounters()
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("swaps: %s=%d, %s=%d (total %d) — epochs advance strictly per model",
			varA.name, md.Router.SwapsFor(varA.name), varB.name, md.Router.SwapsFor(varB.name),
			md.Router.Swaps.Value()),
		"one frontend + one router serve both variants; each repartition drained only its own model's retired epoch",
		fmt.Sprintf("per-model plan caches: %s built %d shards (%d reused), %s built %d (%d reused) — one variant's swaps never touch the other's cache",
			varA.name, cA.ShardsBuilt, cA.ShardsReused, varB.name, cB.ShardsBuilt, cB.ShardsReused),
	)
	return tab, nil
}
