package core

import (
	"context"
	"fmt"

	"repro/internal/deploy"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/serving"
	"repro/internal/workload"
)

// RepartitionTable runs the closed profiling -> repartition -> serve loop
// of Sec. IV-B against a live in-process deployment: serve under the
// profiled plan, drift the traffic hotness until the per-shard utility
// profile (Fig. 14) flattens, re-plan with the DP partitioner over the
// live profiling window, swap the plan epoch with zero downtime, and
// serve on. The table reports each phase's epoch, boundaries, served
// query count, failures (always 0 — the swap never drops a request) and
// utility skew.
func RepartitionTable() (*Table, error) {
	cfg := model.RM1().WithRows(20_000).WithName("rm1-repartition")
	cfg.NumTables = 2
	m, err := model.New(cfg, 42)
	if err != nil {
		return nil, err
	}
	base, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		return nil, err
	}
	drift, err := workload.NewDriftingSampler(base)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewQueryGenerator(drift, workload.NewShuffledMapping(cfg.RowsPerTable, 3),
		cfg.BatchSize, cfg.Pooling, 7)
	if err != nil {
		return nil, err
	}

	// Profiling window 1: the pre-deployment window BuildElastic consumes.
	perTable := make([][]*embedding.Batch, cfg.NumTables)
	for t := range perTable {
		for q := 0; q < 150; q++ {
			perTable[t] = append(perTable[t], gen.Next())
		}
	}
	stats, err := serving.CollectStats(cfg, perTable)
	if err != nil {
		return nil, err
	}

	// DP plan over the profiled CDF (per-container minimum scaled with
	// the ~1000x table downscale, as in the quickstart).
	profile := perfmodel.CPUOnlyProfile()
	profile.MinMemAlloc = 1 << 18
	replan := func(window []*embedding.AccessStats) ([]int64, error) {
		planner := &deploy.Planner{Profile: profile, CDF: embedding.NewCDF(window[0])}
		plan, _, err := planner.PartitionTable(cfg)
		if err != nil {
			return nil, err
		}
		return plan.Boundaries, nil
	}
	boundaries, err := replan(stats)
	if err != nil {
		return nil, err
	}
	ld, err := serving.BuildElastic(m, stats, boundaries, serving.BuildOptions{})
	if err != nil {
		return nil, err
	}
	defer ld.Close()

	serve := func(n int) (int, error) {
		failed := 0
		for i := 0; i < n; i++ {
			req := &serving.PredictRequest{
				BatchSize: cfg.BatchSize,
				DenseDim:  cfg.DenseInputDim,
				Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
			}
			for t := 0; t < cfg.NumTables; t++ {
				b := gen.Next()
				req.Tables = append(req.Tables, serving.TableBatch{Indices: b.Indices, Offsets: b.Offsets})
			}
			var reply serving.PredictReply
			if err := ld.Predict(context.Background(), req, &reply); err != nil {
				failed++
			}
		}
		return failed, nil
	}

	tab := &Table{
		Title:  "Sec. IV-B: closed profiling -> repartition -> serve loop (live deployment)",
		Header: []string{"phase", "epoch", "shards", "served", "failed", "utility skew"},
	}
	row := func(phase string, served, failed int) {
		rt := ld.Table()
		tab.Rows = append(tab.Rows, []string{
			phase,
			fmt.Sprintf("%d", rt.Epoch),
			fmt.Sprintf("%d", rt.NumShards(0)),
			fmt.Sprintf("%d", served),
			fmt.Sprintf("%d", failed),
			fmt.Sprintf("%.2f", rt.UtilitySkew()),
		})
	}

	const queries = 400
	// Phase 1: aligned hotness — the plan concentrates utility.
	failed, err := serve(queries)
	if err != nil {
		return nil, err
	}
	row("aligned", queries, failed)

	// Phase 2: hotness drifts; profile the new distribution live.
	drift.SetShift(int64(cfg.RowsPerTable / 2))
	ld.StartProfile()
	failed, err = serve(queries)
	if err != nil {
		return nil, err
	}
	row("drifted", queries, failed)

	// Phase 3: re-plan from the live window and swap with zero downtime.
	window := ld.SnapshotProfile()
	newBoundaries, err := replan(window)
	if err != nil {
		return nil, err
	}
	driftRep, err := ld.RepartitionReport(context.Background(), window, newBoundaries)
	if err != nil {
		return nil, err
	}
	failed, err = serve(queries)
	if err != nil {
		return nil, err
	}
	row("repartitioned", queries, failed)

	// Phase 4: hotness snaps back to the original distribution — the plan
	// cache makes the return swap nearly free (memoized hotness sort, all
	// shard services reused from epoch 0, nothing rebuilt or re-warmed).
	drift.SetShift(0)
	revertRep, err := ld.RepartitionReport(context.Background(), stats, boundaries)
	if err != nil {
		return nil, err
	}
	failed, err = serve(queries)
	if err != nil {
		return nil, err
	}
	row("reverted (cache hit)", queries, failed)

	counters := ld.BuildCounters()
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("plan swaps: %d; old epochs drained and closed while serving continued", ld.Router.Swaps.Value()),
		fmt.Sprintf("epoch reuse: drift swap built %d shards (%d reused, cache hit %v, %d rows pre-warmed); revert swap built %d (%d reused, cache hit %v)",
			driftRep.ShardsBuilt, driftRep.ShardsReused, driftRep.CacheHit, driftRep.WarmedRows,
			revertRep.ShardsBuilt, revertRep.ShardsReused, revertRep.CacheHit),
		fmt.Sprintf("lifetime build work: %d preprocesses (%d memoized), %d shards built, %d reused across %d epochs",
			counters.Preprocesses, counters.PreCacheHits, counters.ShardsBuilt, counters.ShardsReused, ld.Epoch()+1),
		"utility skew = max-min per-shard memory utility (Fig. 14); aligned plans concentrate it, drift flattens it")
	return tab, nil
}
