package core

import (
	"fmt"
	"time"

	"repro/internal/deploy"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/scenario"
)

// RepartitionTable runs the closed profiling -> repartition -> serve loop
// of Sec. IV-B against a live in-process deployment, expressed as a
// declarative scenario (internal/scenario) instead of a hand-rolled phase
// loop: serve under the profiled plan, drift the traffic hotness until the
// per-shard utility profile (Fig. 14) flattens, re-plan with the DP
// partitioner over the live profiling window, swap the plan epoch with
// zero downtime, then snap the hotness back and swap again. The table
// reports each phase's epoch, shard count, served query count, failures
// (always 0 — the swap never drops a request) and p99 latency.
func RepartitionTable() (*Table, error) {
	const name = "rm1-repartition"
	cfg := model.RM1().WithRows(20_000).WithName(name)
	cfg.NumTables = 2

	// DP plan over the profiled CDF (per-container minimum scaled with
	// the ~1000x table downscale, as in the quickstart); plugged into the
	// harness in place of its proportional-cuts default.
	profile := perfmodel.CPUOnlyProfile()
	profile.MinMemAlloc = 1 << 18
	replanner := func(window []*embedding.AccessStats) ([]int64, error) {
		planner := &deploy.Planner{Profile: profile, CDF: embedding.NewCDF(window[0])}
		plan, _, err := planner.PartitionTable(cfg)
		if err != nil {
			return nil, err
		}
		return plan.Boundaries, nil
	}

	sec := func(s float64) scenario.Duration {
		return scenario.Duration(time.Duration(s * float64(time.Second)))
	}
	// Four equal phases; at each boundary the drift fires before the
	// phase cut and the repartition after it, so each phase row's epoch
	// snapshot reflects the plan that served it.
	spec := &scenario.Spec{
		Name:     "repartition",
		Seed:     7,
		Duration: sec(3.2),
		Models: []scenario.ModelSpec{{
			Name: name, Rows: cfg.RowsPerTable, Tables: cfg.NumTables,
			Seed: 42, Transport: "local", WindowQueries: 150,
		}},
		Traffic: scenario.Traffic{Shape: "constant", BaseQPS: 250},
		Timeline: []scenario.Event{
			{At: 0, Action: scenario.ActionPhase, Label: "aligned"},
			{At: sec(0.8), Action: scenario.ActionDrift, Model: name, Fraction: 0.5},
			{At: sec(0.8), Action: scenario.ActionPhase, Label: "drifted"},
			{At: sec(1.6), Action: scenario.ActionPhase, Label: "repartitioned"},
			{At: sec(1.6), Action: scenario.ActionRepartition, Model: name},
			{At: sec(2.4), Action: scenario.ActionDrift, Model: name, Fraction: -0.5},
			{At: sec(2.4), Action: scenario.ActionPhase, Label: "reverted"},
			{At: sec(2.4), Action: scenario.ActionRepartition, Model: name},
		},
	}
	res, err := scenario.Run(spec, scenario.Options{Replanner: replanner})
	if err != nil {
		return nil, err
	}

	tab := &Table{
		Title:  "Sec. IV-B: closed profiling -> repartition -> serve loop (live deployment)",
		Header: []string{"phase", "epoch", "shards", "served", "failed", "p99"},
	}
	for _, ph := range res.Phases {
		info := ph.Epochs[name]
		tab.Rows = append(tab.Rows, []string{
			ph.Name,
			fmt.Sprintf("%d", info.Epoch),
			fmt.Sprintf("%d", info.Shards),
			fmt.Sprintf("%d", ph.Metrics.Requests),
			fmt.Sprintf("%d", ph.Metrics.Errors),
			ph.Metrics.P99.Round(10 * time.Microsecond).String(),
		})
	}
	for _, mr := range res.Models {
		if mr.Model != name || !mr.Deployed {
			continue
		}
		c := mr.Status.Counters
		tab.Notes = append(tab.Notes,
			fmt.Sprintf("plan swaps: %d; old epochs drained and closed while serving continued", mr.Status.Swaps),
			fmt.Sprintf("lifetime build work: %d preprocesses (%d memoized), %d shards built, %d reused across %d epochs",
				c.Preprocesses, c.PreCacheHits, c.ShardsBuilt, c.ShardsReused, mr.Status.Epoch+1),
			fmt.Sprintf("final utility skew %.2f (max-min per-shard memory utility, Fig. 14); aligned plans concentrate it, drift flattens it",
				mr.Status.UtilitySkew))
	}
	return tab, nil
}
