package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/perfmodel"
)

// SchemesTable compares the partitioning plans discussed in the paper's
// related work (row-wise — ElasticRec's DP over the sorted table — versus
// table-wise and column-wise splits) under the same Algorithm 1 cost model,
// for each Table II workload on the CPU-only platform.
func SchemesTable() (*Table, error) {
	sys, err := NewSystem(perfmodel.CPUOnly)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Partitioning schemes: expected per-table memory at DP target traffic",
		Header: []string{"model", "scheme", "shards", "memory (GB)", "vs row-wise"},
	}
	for _, cfg := range model.StateOfTheArt() {
		schemes, err := sys.Planner.CompareSchemes(cfg, []int{2, 4, 8})
		if err != nil {
			return nil, err
		}
		rowWise := schemes[0].MemoryBytes
		for _, s := range schemes {
			t.Rows = append(t.Rows, []string{
				cfg.Name, s.Scheme, fmt.Sprintf("%d", s.Shards),
				gb(s.MemoryBytes), f2(s.MemoryBytes/rowWise) + "x",
			})
		}
	}
	t.Notes = append(t.Notes,
		"row-wise over the hotness-sorted table is the only scheme that can exploit skew: column-wise shards serve every gather and table-wise cannot split at all (Sec. II-D / Mudigere et al. discussion)")
	return t, nil
}
