package core

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig19Point is one sample of the dynamic-traffic timeline.
type Fig19Point struct {
	Time        time.Duration
	TargetQPS   float64
	AchievedQPS float64
	MemBytes    int64
	TailLatency time.Duration
}

// Fig19Series is the timeline for one policy.
type Fig19Series struct {
	Policy deploy.Policy
	Points []Fig19Point
	// SLAViolations counts samples whose tail latency exceeded the SLA.
	SLAViolations int
	// PeakMemBytes is the maximum allocated memory over the run.
	PeakMemBytes int64
}

// DynamicTrafficConfig parameterises the Fig. 19 experiment.
type DynamicTrafficConfig struct {
	Platform perfmodel.Platform
	Model    model.Config
	// PeakQPS is the staircase peak (the paper drives RM1 to ~250).
	PeakQPS float64
	// SLA is the tail-latency agreement (default 400 ms).
	SLA time.Duration
	// HPAInterval is the autoscaler control period (default 15 s).
	HPAInterval time.Duration
	// SampleEvery sets the output sampling period (default 10 s).
	SampleEvery time.Duration
	// ScaleDownStabilization delays scale-in (default 2 min).
	ScaleDownStabilization time.Duration
}

func (c *DynamicTrafficConfig) defaults() {
	if c.PeakQPS <= 0 {
		c.PeakQPS = 250
	}
	if c.SLA <= 0 {
		c.SLA = deploy.DefaultSLA
	}
	if c.HPAInterval <= 0 {
		c.HPAInterval = 15 * time.Second
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 10 * time.Second
	}
	if c.ScaleDownStabilization <= 0 {
		c.ScaleDownStabilization = 2 * time.Minute
	}
}

// RunDynamicTraffic simulates the Fig. 19 experiment for one policy: the
// plan is materialized at the staircase's base load, then Kubernetes HPA
// controllers scale each deployment as the offered load steps up and down,
// with pod cold-start delays gating when capacity actually arrives.
func RunDynamicTraffic(cfg DynamicTrafficConfig, policy deploy.Policy) (*Fig19Series, error) {
	cfg.defaults()
	prof, err := perfmodel.ProfileFor(cfg.Platform)
	if err != nil {
		return nil, err
	}
	planner := &deploy.Planner{Profile: prof, SLA: cfg.SLA}
	pattern := workload.Figure19Pattern(cfg.PeakQPS)

	base := pattern.QPSAt(0)
	plan, err := planner.Plan(policy, cfg.Model, base)
	if err != nil {
		return nil, err
	}
	cl, err := plan.Materialize(prof.Node, 0)
	if err != nil {
		return nil, err
	}

	// One HPA controller per shard deployment, as configured by the plan.
	type scaler struct {
		hpa  *cluster.HPA
		spec *deploy.ShardSpec
	}
	var scalers []scaler
	for i := range plan.Shards {
		s := &plan.Shards[i]
		pol := s.HPA
		pol.ScaleDownStabilization = cfg.ScaleDownStabilization
		pol.MaxReplicas = 512
		h, err := cluster.NewHPA(pol)
		if err != nil {
			return nil, fmt.Errorf("core: HPA for %s: %w", s.Name, err)
		}
		scalers = append(scalers, scaler{hpa: h, spec: s})
	}

	// capacity returns the system's sustainable QPS: every query crosses
	// every shard deployment, so the slowest stage bounds throughput.
	capacity := func() float64 {
		minCap := -1.0
		for i := range plan.Shards {
			s := &plan.Shards[i]
			d, ok := cl.Deployment(s.Name)
			if !ok {
				continue
			}
			_, ready := d.Replicas()
			c := float64(ready) * s.QPSPerReplica
			if minCap < 0 || c < minCap {
				minCap = c
			}
		}
		if minCap < 0 {
			return 0
		}
		return minCap
	}

	// Queueing inflation: near saturation the tail grows hyperbolically;
	// over capacity it exceeds any SLA.
	const maxLat = 2 * time.Second
	inflateWith := func(base time.Duration, u, coeff float64) time.Duration {
		if u >= 0.99 {
			return maxLat
		}
		lat := time.Duration(float64(base) * (1 + coeff*u/(1-u)))
		if lat > maxLat {
			lat = maxLat
		}
		return lat
	}
	inflate := func(base time.Duration, u float64) time.Duration {
		return inflateWith(base, u, 0.25)
	}
	// tailLatency is the end-to-end tail: the plan's base latency
	// inflated by the most-utilized stage. Only that one stage queues,
	// so the end-to-end coefficient is softer than the per-stage one.
	tailLatency := func(offered float64) time.Duration {
		cap := capacity()
		if cap <= 0 {
			return maxLat
		}
		return inflateWith(plan.AvgLatency, offered/cap, 0.15)
	}
	// stageLatency is the per-deployment tail the latency HPAs observe:
	// the stage's own service time inflated by its own utilization —
	// a saturated sparse stage must not drive dense scaling.
	stageLatency := func(s *deploy.ShardSpec, offered float64) time.Duration {
		d, ok := cl.Deployment(s.Name)
		if !ok {
			return maxLat
		}
		_, ready := d.Replicas()
		cap := float64(ready) * s.QPSPerReplica
		if cap <= 0 {
			return maxLat
		}
		base := time.Duration(float64(time.Second) / s.QPSPerReplica)
		return inflate(base, offered/cap)
	}

	series := &Fig19Series{Policy: policy}
	engine := sim.New()
	horizon := pattern.Duration()

	// Pod lifecycle ticks.
	if err := engine.Every(0, time.Second, horizon, func(now time.Duration) bool {
		cl.Tick(now)
		return true
	}); err != nil {
		return nil, err
	}

	// HPA control loop.
	if err := engine.Every(cfg.HPAInterval, cfg.HPAInterval, horizon, func(now time.Duration) bool {
		offered := pattern.QPSAt(now)
		for _, sc := range scalers {
			sample := cluster.MetricSample{
				OfferedQPS:     offered,
				LatencySeconds: stageLatency(sc.spec, offered).Seconds(),
			}
			if _, err := sc.hpa.Evaluate(cl, sample, now); err != nil {
				// Scheduling failures surface as stalled scaling, which
				// the timeline itself exposes; keep simulating.
				continue
			}
		}
		return true
	}); err != nil {
		return nil, err
	}

	// Output sampling.
	if err := engine.Every(0, cfg.SampleEvery, horizon, func(now time.Duration) bool {
		offered := pattern.QPSAt(now)
		achieved := offered
		if cap := capacity(); achieved > cap {
			achieved = cap
		}
		lat := tailLatency(offered)
		mem := cl.AllocatedMemBytes()
		if mem > series.PeakMemBytes {
			series.PeakMemBytes = mem
		}
		if lat > cfg.SLA {
			series.SLAViolations++
		}
		series.Points = append(series.Points, Fig19Point{
			Time:        now,
			TargetQPS:   offered,
			AchievedQPS: achieved,
			MemBytes:    mem,
			TailLatency: lat,
		})
		return true
	}); err != nil {
		return nil, err
	}

	engine.Run(horizon)
	return series, nil
}

// Figure19 runs the dynamic-traffic experiment for both policies on RM1
// (CPU-only, as the paper plots) and renders the joint timeline.
func Figure19() (*Table, error) {
	cfg := DynamicTrafficConfig{Platform: perfmodel.CPUOnly, Model: model.RM1()}
	mw, err := RunDynamicTraffic(cfg, deploy.PolicyModelWise)
	if err != nil {
		return nil, err
	}
	er, err := RunDynamicTraffic(cfg, deploy.PolicyElastic)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 19: dynamic input traffic (RM1, CPU-only)",
		Header: []string{"minute", "target QPS",
			"MW QPS", "MW mem (GB)", "MW tail",
			"ER QPS", "ER mem (GB)", "ER tail"},
	}
	for i := range mw.Points {
		if i >= len(er.Points) {
			break
		}
		m, e := mw.Points[i], er.Points[i]
		if m.Time%(time.Minute) != 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", m.Time.Minutes()),
			fmt.Sprintf("%.0f", m.TargetQPS),
			fmt.Sprintf("%.0f", m.AchievedQPS),
			gb(float64(m.MemBytes)),
			m.TailLatency.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", e.AchievedQPS),
			gb(float64(e.MemBytes)),
			e.TailLatency.Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("peak memory: MW %.0f GB vs ER %.0f GB (%.1fx); SLA(400ms) violations: MW %d vs ER %d samples",
			float64(mw.PeakMemBytes)/(1<<30), float64(er.PeakMemBytes)/(1<<30),
			float64(mw.PeakMemBytes)/float64(er.PeakMemBytes), mw.SLAViolations, er.SLAViolations),
		"paper: model-wise peaks at 3.1x ElasticRec's memory, lags traffic steps, and spikes past the SLA")
	return t, nil
}
