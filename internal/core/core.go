// Package core is the ElasticRec facade: it ties the substrates together
// behind a small API (plan a deployment, compare policies, run any of the
// paper's experiments) and is what the CLI, the examples and the benchmark
// harness call into.
//
// The heavy lifting lives in the focused packages: partition (Algorithms 1
// and 2), deploy (policy planners), perfmodel (hardware model), cluster
// (Kubernetes substrate), serving (live microservices), workload (traffic)
// and model (DLRM). core re-exposes the common flows so a downstream user
// rarely needs more than:
//
//	sys, _ := core.NewSystem(perfmodel.CPUOnly)
//	cmp, _ := sys.Compare(model.RM1(), 100)
//	fmt.Println(cmp.MemoryReductionX())
package core

import (
	"fmt"
	"strings"

	"repro/internal/deploy"
	"repro/internal/model"
	"repro/internal/perfmodel"
)

// System bundles a hardware profile with a planner — the entry point for
// planning and experiments.
type System struct {
	Profile *perfmodel.Profile
	Planner *deploy.Planner
}

// NewSystem creates a system for the platform with default planner knobs.
func NewSystem(platform perfmodel.Platform) (*System, error) {
	prof, err := perfmodel.ProfileFor(platform)
	if err != nil {
		return nil, err
	}
	return &System{Profile: prof, Planner: &deploy.Planner{Profile: prof}}, nil
}

// Plan produces a deployment plan under the given policy.
func (s *System) Plan(policy deploy.Policy, cfg model.Config, targetQPS float64) (*deploy.Plan, error) {
	return s.Planner.Plan(policy, cfg, targetQPS)
}

// Comparison holds model-wise and ElasticRec plans for the same target.
type Comparison struct {
	ModelWise *deploy.Plan
	Elastic   *deploy.Plan
}

// Compare plans both policies at targetQPS.
func (s *System) Compare(cfg model.Config, targetQPS float64) (*Comparison, error) {
	mw, err := s.Planner.PlanModelWise(cfg, targetQPS)
	if err != nil {
		return nil, fmt.Errorf("core: model-wise plan: %w", err)
	}
	er, err := s.Planner.PlanElastic(cfg, targetQPS)
	if err != nil {
		return nil, fmt.Errorf("core: elastic plan: %w", err)
	}
	return &Comparison{ModelWise: mw, Elastic: er}, nil
}

// MemoryReductionX returns model-wise memory / ElasticRec memory — the
// headline metric of Figs. 13 and 16.
func (c *Comparison) MemoryReductionX() float64 {
	er := c.Elastic.TotalMemoryBytes()
	if er == 0 {
		return 0
	}
	return float64(c.ModelWise.TotalMemoryBytes()) / float64(er)
}

// ServerReductionX returns model-wise servers / ElasticRec servers (Figs.
// 15 and 18) for the system's node spec.
func (c *Comparison) ServerReductionX(node perfmodel.NodeSpec) (float64, error) {
	mw, err := c.ModelWise.ServersNeeded(node)
	if err != nil {
		return 0, err
	}
	er, err := c.Elastic.ServersNeeded(node)
	if err != nil {
		return 0, err
	}
	if er == 0 {
		return 0, fmt.Errorf("core: elastic plan needs zero servers")
	}
	return float64(mw) / float64(er), nil
}

// Table is a printable experiment result: the rows/series a paper figure
// or table reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries methodology remarks (substitutions, caveats).
	Notes []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
