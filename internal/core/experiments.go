package core

import (
	"fmt"
	"time"

	"repro/internal/deploy"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/workload"
)

// Default target throughputs used by the paper's end-to-end experiments.
const (
	// TargetQPSCPUOnly is the CPU-only fleet target (Figs. 13-15).
	TargetQPSCPUOnly = 100.0
	// TargetQPSCPUGPU is the CPU-GPU fleet target (Figs. 16-18, 20).
	TargetQPSCPUGPU = 200.0
)

// DefaultTarget returns the paper's target QPS for a platform.
func DefaultTarget(p perfmodel.Platform) float64 {
	if p == perfmodel.CPUGPU {
		return TargetQPSCPUGPU
	}
	return TargetQPSCPUOnly
}

func f1(v float64) string     { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string     { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string    { return fmt.Sprintf("%.1f%%", 100*v) }
func gb(bytes float64) string { return fmt.Sprintf("%.1f", bytes/(1<<30)) }

// Figure3 reproduces Fig. 3: the FLOPs/memory occupancy of dense vs sparse
// layers (architecture-independent) and their end-to-end latency shares on
// both platforms.
func Figure3() (*Table, error) {
	cpu := perfmodel.CPUOnlyProfile()
	gpu := perfmodel.CPUGPUProfile()
	t := &Table{
		Title: "Figure 3: dense vs sparse occupancy (FLOPs, memory, latency share)",
		Header: []string{"model", "dense FLOPs", "sparse FLOPs", "dense mem", "sparse mem",
			"dense lat (CPU-only)", "dense lat (CPU-GPU)"},
	}
	for _, cfg := range model.StateOfTheArt() {
		occ := cfg.Occupancy()
		cpuDense := float64(cpu.DenseLatency(cfg))
		cpuTotal := cpuDense + float64(cpu.MonoSparseLatency(cfg))
		gpuDense := float64(gpu.DenseLatency(cfg))
		gpuTotal := gpuDense + float64(gpu.MonoSparseLatency(cfg))
		t.Rows = append(t.Rows, []string{
			cfg.Name,
			pct(occ.DenseFLOPsShare), pct(occ.SparseFLOPsShare),
			pct(occ.DenseMemShare), pct(occ.SparseMemShare),
			pct(cpuDense / cpuTotal), pct(gpuDense / gpuTotal),
		})
	}
	t.Notes = append(t.Notes,
		"paper: dense dominates FLOPs (~98%+), sparse dominates memory (~99.6%+); dense is ~67% of CPU-only and ~19% of CPU-GPU latency for RM1")
	return t, nil
}

// Figure5 reproduces Fig. 5: dense and sparse layer QPS measured
// separately per platform.
func Figure5() (*Table, error) {
	t := &Table{
		Title:  "Figure 5: per-layer service throughput (QPS)",
		Header: []string{"platform", "model", "dense QPS", "sparse QPS"},
	}
	for _, plat := range []perfmodel.Platform{perfmodel.CPUOnly, perfmodel.CPUGPU} {
		prof, err := perfmodel.ProfileFor(plat)
		if err != nil {
			return nil, err
		}
		for _, cfg := range model.StateOfTheArt() {
			t.Rows = append(t.Rows, []string{
				string(plat), cfg.Name,
				f1(prof.DenseQPS(cfg)), f1(prof.MonoSparseQPS(cfg)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: significant dense/sparse QPS mismatch on both platforms; GPU accelerates dense by an order of magnitude")
	return t, nil
}

// Figure6 reproduces Fig. 6: sorted access-frequency series for the three
// dataset shapes. points rows are reported, sampled log-spaced.
func Figure6(draws int64, points int) (*Table, error) {
	if draws <= 0 {
		draws = 2_000_000
	}
	if points <= 0 {
		points = 12
	}
	t := &Table{
		Title:  "Figure 6: sorted embedding access frequency (% of accesses)",
		Header: []string{"dataset", "sorted vector rank", "access freq (%)"},
	}
	for _, ds := range workload.Datasets() {
		// Scale row count down for sampling speed; shape is preserved.
		sampleRows := ds.Rows
		if sampleRows > 200_000 {
			sampleRows = 200_000
		}
		freqs, err := ds.AccessFrequencies(draws, sampleRows, 42)
		if err != nil {
			return nil, err
		}
		idx := int64(1)
		for len(t.Rows) == 0 || idx <= int64(len(freqs)) {
			i := idx - 1
			if i >= int64(len(freqs)) {
				break
			}
			t.Rows = append(t.Rows, []string{
				ds.Name, fmt.Sprintf("%d", idx), fmt.Sprintf("%.6f", freqs[i]),
			})
			next := idx * 4
			if next == idx {
				next = idx + 1
			}
			idx = next
			if len(t.Rows) > points*3*10 { // safety bound
				break
			}
		}
	}
	t.Notes = append(t.Notes,
		"power-law: a small hot set covers most accesses (MovieLens-like P=94% of accesses in top 10% of rows)")
	return t, nil
}

// Figure9 reproduces Fig. 9: gather-operator QPS versus the number of
// vectors gathered, for embedding dimensions 32/128/512 over a 20M-row
// table.
func Figure9() (*Table, error) {
	prof := perfmodel.CPUOnlyProfile()
	t := &Table{
		Title:  "Figure 9: QPS vs number of vectors gathered (20M-row table)",
		Header: []string{"gathers/input", "dim=32", "dim=128", "dim=512"},
	}
	gathers := []int{1, 5, 10, 20, 40, 60, 80, 100}
	for _, x := range gathers {
		row := []string{fmt.Sprintf("%d", x)}
		for _, dim := range []int{32, 128, 512} {
			row = append(row, f1(prof.ShardQPS(32, float64(x), dim)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: QPS decays with gather count; larger dimensions fetch more bytes and sustain lower QPS")
	return t, nil
}

// Figure12a reproduces Fig. 12(a): memory consumption vs MLP size
// (microbenchmark, CPU-only, 100 QPS).
func Figure12a() (*Table, error) {
	sys, err := NewSystem(perfmodel.CPUOnly)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 12a: memory consumption vs MLP size (GB, CPU-only @100 QPS)",
		Header: []string{"MLP size", "model-wise", "elasticrec", "reduction"},
	}
	for _, size := range []model.MLPSize{model.MLPLight, model.MLPMedium, model.MLPHeavy} {
		cfg, err := model.MicroMLP(size)
		if err != nil {
			return nil, err
		}
		cmp, err := sys.Compare(cfg, TargetQPSCPUOnly)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			string(size),
			gb(float64(cmp.ModelWise.TotalMemoryBytes())),
			gb(float64(cmp.Elastic.TotalMemoryBytes())),
			f2(cmp.MemoryReductionX()) + "x",
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: model-wise memory grows quickly with MLP compute; ElasticRec adds dense replicas only")
	return t, nil
}

// Figure12b reproduces Fig. 12(b): memory consumption vs table locality.
func Figure12b() (*Table, error) {
	sys, err := NewSystem(perfmodel.CPUOnly)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 12b: memory consumption vs locality (GB, CPU-only @100 QPS)",
		Header: []string{"locality", "model-wise", "elasticrec", "reduction"},
	}
	for _, level := range []model.LocalityLevel{model.LocalityLow, model.LocalityMedium, model.LocalityHigh} {
		cfg, err := model.MicroLocality(level)
		if err != nil {
			return nil, err
		}
		cmp, err := sys.Compare(cfg, TargetQPSCPUOnly)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			string(level),
			gb(float64(cmp.ModelWise.TotalMemoryBytes())),
			gb(float64(cmp.Elastic.TotalMemoryBytes())),
			f2(cmp.MemoryReductionX()) + "x",
		})
	}
	t.Notes = append(t.Notes,
		"paper: ElasticRec saves ~2.2x at High locality; model-wise is locality-insensitive")
	return t, nil
}

// Figure12c reproduces Fig. 12(c): memory consumption vs number of tables.
func Figure12c() (*Table, error) {
	sys, err := NewSystem(perfmodel.CPUOnly)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 12c: memory consumption vs number of tables (GB, CPU-only @100 QPS)",
		Header: []string{"tables", "model-wise", "elasticrec", "reduction"},
	}
	for _, n := range model.MicroTableCounts() {
		cfg, err := model.MicroTables(n)
		if err != nil {
			return nil, err
		}
		cmp, err := sys.Compare(cfg, TargetQPSCPUOnly)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			gb(float64(cmp.ModelWise.TotalMemoryBytes())),
			gb(float64(cmp.Elastic.TotalMemoryBytes())),
			f2(cmp.MemoryReductionX()) + "x",
		})
	}
	return t, nil
}

// Figure12d reproduces Fig. 12(d): ElasticRec memory vs the (manually
// forced) number of shards per table, plus the DP's own choice.
func Figure12d() (*Table, error) {
	prof := perfmodel.CPUOnlyProfile()
	cfg := model.RM1()
	t := &Table{
		Title:  "Figure 12d: ElasticRec memory vs forced shard count (GB, CPU-only @100 QPS)",
		Header: []string{"shards/table", "elasticrec memory"},
	}
	for _, s := range model.MicroShardCounts() {
		pl := &deploy.Planner{Profile: prof, ForceShards: s}
		plan, err := pl.PlanElastic(cfg, TargetQPSCPUOnly)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s),
			gb(float64(plan.TotalMemoryBytes())),
		})
	}
	pl := &deploy.Planner{Profile: prof}
	opt, err := pl.PlanElastic(cfg, TargetQPSCPUOnly)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("DP choice (%d)", opt.TablePlan.NumShards()),
		gb(float64(opt.TotalMemoryBytes())),
	})
	t.Notes = append(t.Notes,
		"paper shape: memory drops with shard count, plateaus (min_mem_alloc per container), DP picks the knee")
	return t, nil
}

// memoryFigure is the shared body of Figs. 13 and 16.
func memoryFigure(platform perfmodel.Platform, title string) (*Table, error) {
	sys, err := NewSystem(platform)
	if err != nil {
		return nil, err
	}
	target := DefaultTarget(platform)
	t := &Table{
		Title:  title,
		Header: []string{"model", "model-wise (GB)", "elasticrec (GB)", "reduction", "shards/table"},
	}
	for _, cfg := range model.StateOfTheArt() {
		cmp, err := sys.Compare(cfg, target)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.Name,
			gb(float64(cmp.ModelWise.TotalMemoryBytes())),
			gb(float64(cmp.Elastic.TotalMemoryBytes())),
			f2(cmp.MemoryReductionX()) + "x",
			fmt.Sprintf("%d", cmp.Elastic.TablePlan.NumShards()),
		})
	}
	return t, nil
}

// Figure13 reproduces Fig. 13: CPU-only memory consumption at 100 QPS.
func Figure13() (*Table, error) {
	t, err := memoryFigure(perfmodel.CPUOnly, "Figure 13: memory consumption, CPU-only @100 QPS")
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: 2.2x / 2.6x / 8.1x reductions; partitioned into 4/3/3 shards per table")
	return t, nil
}

// Figure16 reproduces Fig. 16: CPU-GPU memory consumption at 200 QPS.
func Figure16() (*Table, error) {
	t, err := memoryFigure(perfmodel.CPUGPU, "Figure 16: memory consumption, CPU-GPU @200 QPS")
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: 2.7x / 3.6x / 2.6x reductions; 3 shards per table")
	return t, nil
}

// serversFigure is the shared body of Figs. 15 and 18.
func serversFigure(platform perfmodel.Platform, title string) (*Table, error) {
	sys, err := NewSystem(platform)
	if err != nil {
		return nil, err
	}
	target := DefaultTarget(platform)
	t := &Table{
		Title:  title,
		Header: []string{"model", "model-wise servers", "elasticrec servers", "reduction", "MW lat", "ER lat"},
	}
	for _, cfg := range model.StateOfTheArt() {
		cmp, err := sys.Compare(cfg, target)
		if err != nil {
			return nil, err
		}
		mw, err := cmp.ModelWise.ServersNeeded(sys.Profile.Node)
		if err != nil {
			return nil, err
		}
		er, err := cmp.Elastic.ServersNeeded(sys.Profile.Node)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.Name,
			fmt.Sprintf("%d", mw),
			fmt.Sprintf("%d", er),
			f2(float64(mw)/float64(er)) + "x",
			cmp.ModelWise.AvgLatency.Round(time.Millisecond).String(),
			cmp.Elastic.AvgLatency.Round(time.Millisecond).String(),
		})
	}
	return t, nil
}

// Figure15 reproduces Fig. 15: CPU-only server counts at 100 QPS.
func Figure15() (*Table, error) {
	t, err := serversFigure(perfmodel.CPUOnly, "Figure 15: CPU servers needed @100 QPS")
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: 1.67x / 1.67x / 2.0x fewer servers; ElasticRec adds ~31 ms avg latency (8% of SLA)")
	return t, nil
}

// Figure18 reproduces Fig. 18: CPU-GPU server counts at 200 QPS.
func Figure18() (*Table, error) {
	t, err := serversFigure(perfmodel.CPUGPU, "Figure 18: CPU-GPU servers needed @200 QPS")
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: 1.4x / 1.6x / 1.2x fewer servers; ElasticRec adds ~60 ms avg latency (15% of SLA)")
	return t, nil
}

// Figure20 reproduces Fig. 20: model-wise vs model-wise+GPU-cache vs
// ElasticRec memory on the CPU-GPU platform.
func Figure20() (*Table, error) {
	sys, err := NewSystem(perfmodel.CPUGPU)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 20: memory with GPU embedding cache baseline (GB, CPU-GPU @200 QPS)",
		Header: []string{"model", "model-wise", "model-wise (cache)", "elasticrec", "ER vs cache"},
	}
	for _, cfg := range model.StateOfTheArt() {
		mw, err := sys.Planner.PlanModelWise(cfg, TargetQPSCPUGPU)
		if err != nil {
			return nil, err
		}
		mwc, err := sys.Planner.PlanModelWiseCache(cfg, TargetQPSCPUGPU)
		if err != nil {
			return nil, err
		}
		er, err := sys.Planner.PlanElastic(cfg, TargetQPSCPUGPU)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.Name,
			gb(float64(mw.TotalMemoryBytes())),
			gb(float64(mwc.TotalMemoryBytes())),
			gb(float64(er.TotalMemoryBytes())),
			f2(float64(mwc.TotalMemoryBytes())/float64(er.TotalMemoryBytes())) + "x",
		})
	}
	t.Notes = append(t.Notes,
		"cache model per Sec. VI-E: 90% GPU hit rate cuts embedding latency 47%, reducing replicas but still duplicating full tables; paper: ElasticRec beats cache baseline 1.7x")
	return t, nil
}

// TablesIandII renders the workload configuration tables.
func TablesIandII() *Table {
	t := &Table{
		Title: "Tables I & II: workload configurations",
		Header: []string{"name", "bottom MLP", "top MLP", "tables", "rows/table", "dim",
			"pooling", "locality P", "batch", "sparse mem"},
	}
	add := func(cfg model.Config) {
		t.Rows = append(t.Rows, []string{
			cfg.Name,
			fmt.Sprint(cfg.BottomMLP), fmt.Sprint(cfg.TopMLP),
			fmt.Sprintf("%d", cfg.NumTables), fmt.Sprintf("%d", cfg.RowsPerTable),
			fmt.Sprintf("%d", cfg.EmbeddingDim), fmt.Sprintf("%d", cfg.Pooling),
			pct(cfg.LocalityP), fmt.Sprintf("%d", cfg.BatchSize),
			metrics.FormatBytes(cfg.SparseBytes()),
		})
	}
	for _, cfg := range model.StateOfTheArt() {
		add(cfg)
	}
	for _, size := range []model.MLPSize{model.MLPLight, model.MLPMedium, model.MLPHeavy} {
		cfg, _ := model.MicroMLP(size)
		add(cfg)
	}
	for _, lvl := range []model.LocalityLevel{model.LocalityLow, model.LocalityMedium, model.LocalityHigh} {
		cfg, _ := model.MicroLocality(lvl)
		add(cfg)
	}
	for _, n := range model.MicroTableCounts() {
		cfg, _ := model.MicroTables(n)
		add(cfg)
	}
	return t
}
