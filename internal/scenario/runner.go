package scenario

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

// ShortScale is the time-compression factor short mode applies to a spec
// (duration, warmup, traffic schedule, drift cadence, timeline alike), so
// CI runs every checked-in scenario at half length with the same shape.
const ShortScale = 0.5

// DefaultRequestTimeout bounds each request when the spec doesn't.
const DefaultRequestTimeout = 5 * time.Second

// Options configures one run.
type Options struct {
	// Short compresses every time in the spec by ShortScale.
	Short bool
	// Logf, when set, receives progress lines (applied events, summary).
	Logf func(format string, args ...any)
	// Replanner, when set, replaces the default proportional-CDF replanner
	// for initial plans, mid-run deploys and repartition events — how
	// experiments plug the DP partitioner into the harness.
	Replanner func(window []*embedding.AccessStats) ([]int64, error)
}

// Run executes the scenario end to end: build the initial model mix into a
// serving.MultiDeployment, export the frontend (predict + admin) over TCP,
// drive Poisson arrivals through the wire following the traffic shape,
// apply drift cadences and timeline events as their times come up, and
// collect the measurement-window metrics plus the control plane's final
// per-model status.
func Run(spec *Spec, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Short {
		spec = spec.Scale(ShortScale)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	r := &runner{spec: spec, logf: logf, byName: map[string]*variant{}, replan: opts.Replanner}
	if r.replan == nil {
		r.replan = defaultReplan
	}
	for i := range spec.Models {
		v, err := newVariant(&spec.Models[i], spec.Seed)
		if err != nil {
			return nil, err
		}
		v.replan = r.replan
		r.variants = append(r.variants, v)
		r.byName[v.spec.Name] = v
	}

	// Initial mix: every non-deferred model, built behind one frontend.
	var specs []serving.ModelSpec
	for _, v := range r.variants {
		if v.spec.Deferred {
			continue
		}
		ms, err := v.servingSpec()
		if err != nil {
			return nil, err
		}
		specs = append(specs, ms)
		v.active = true
	}
	md, err := serving.BuildMulti(specs...)
	if err != nil {
		return nil, err
	}
	defer md.Close()
	r.md = md
	for _, v := range r.variants {
		if v.active {
			if err := md.StartProfile(v.spec.Name); err != nil {
				return nil, err
			}
		}
	}

	// All traffic and lifecycle control rides the exported TCP endpoint,
	// like a fleet client's would.
	addr, err := md.ExportPredict("Frontend")
	if err != nil {
		return nil, err
	}
	frontend, err := serving.DialPredict(addr, "Frontend")
	if err != nil {
		return nil, err
	}
	defer frontend.Close()
	admin, err := serving.DialAdmin(addr, "Frontend")
	if err != nil {
		return nil, err
	}
	defer admin.Close()
	r.frontend, r.admin = frontend, admin

	// Variants with an autoscale block each get their own queue-depth
	// control loop over their live shard pools; the loops start when the
	// drive loop starts (so scale events are timestamped against run
	// start) and are rewired after any event that changes the epoch.
	for _, v := range r.variants {
		if a := v.spec.Autoscale; a != nil {
			v.scaler = &serving.LiveAutoscaler{Interval: a.Interval.D(), OnScale: r.onScale}
			if v.active {
				r.wireAutoscale(v)
			}
		}
	}

	if err := r.drive(); err != nil {
		return nil, err
	}
	return r.result()
}

// variant is one model's client-side state: geometry, drifting sampler,
// query generator and traffic share.
type variant struct {
	spec   *ModelSpec
	cfg    model.Config
	drift  *workload.DriftingSampler
	gen    *workload.QueryGenerator
	weight float64
	active bool
	replan func([]*embedding.AccessStats) ([]int64, error)
	// inflight tracks this variant's issued-but-unfinished requests so an
	// undeploy event can drain them before unregistering the name.
	inflight sync.WaitGroup
	// scaler is the variant's queue-depth autoscaler (nil without an
	// Autoscale block); replicasAdded/Removed tally its scale actions.
	scaler          *serving.LiveAutoscaler
	replicasAdded   atomic.Int64
	replicasRemoved atomic.Int64

	driftFired  bool          // one-shot Drift.At applied
	nextDriftAt time.Duration // next Drift.Every firing
}

// newVariant lowers a declarative model spec onto the workload layer.
func newVariant(ms *ModelSpec, runSeed uint64) (*variant, error) {
	rows := ms.Rows
	if rows == 0 {
		rows = 12_000
	}
	tables := ms.Tables
	if tables == 0 {
		tables = 2
	}
	cfg := model.RM1().WithRows(rows).WithName(ms.Name)
	cfg.NumTables = tables
	if ms.BatchSize > 0 {
		cfg.BatchSize = ms.BatchSize
	}
	if ms.Pooling > 0 {
		cfg.Pooling = ms.Pooling
	}
	if ms.Locality > 0 {
		cfg.LocalityP = ms.Locality
	}

	var (
		sampler workload.Sampler
		mapping workload.IDMapping
		err     error
	)
	if ms.Trace != "" {
		// Replayed traces are recorded in physical-row space, so they
		// compose with the identity mapping.
		sampler, err = newTraceSampler(ms.Trace, cfg.RowsPerTable)
		if err != nil {
			return nil, fmt.Errorf("scenario: model %q trace: %w", ms.Name, err)
		}
		mapping = workload.IdentityMapping(cfg.RowsPerTable)
	} else {
		sampler, err = workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
		if err != nil {
			return nil, err
		}
		mapping = workload.NewShuffledMapping(cfg.RowsPerTable, 3)
	}
	drift, err := workload.NewDriftingSampler(sampler)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewQueryGenerator(drift, mapping, cfg.BatchSize, cfg.Pooling, ms.Seed^(runSeed*0x9e3779b9))
	if err != nil {
		return nil, err
	}
	v := &variant{spec: ms, cfg: cfg, drift: drift, gen: gen, weight: ms.Weight}
	if v.weight == 0 {
		v.weight = 1
	}
	if d := ms.Drift; d != nil && d.Every > 0 {
		v.nextDriftAt = d.Every.D()
	}
	return v, nil
}

// window profiles the variant's current traffic shape offline, exactly as
// a production profiling window would be collected pre-deployment.
func (v *variant) window() ([]*embedding.AccessStats, error) {
	queries := v.spec.WindowQueries
	if queries == 0 {
		queries = 100
	}
	perTable := make([][]*embedding.Batch, v.cfg.NumTables)
	for t := range perTable {
		for q := 0; q < queries; q++ {
			perTable[t] = append(perTable[t], v.gen.Next())
		}
	}
	return serving.CollectStats(v.cfg, perTable)
}

// defaultReplan cuts a profiling window's CDF at 70%/95% coverage — the
// same stand-in for the DP partitioner the liveserving example and admin
// CLI use at scaled-down geometry. Options.Replanner overrides it.
func defaultReplan(window []*embedding.AccessStats) ([]int64, error) {
	return embedding.NewCDF(window[0]).ProportionalCuts(0.70, 0.95), nil
}

// buildOptions lowers the spec's transport/replicas/batching block.
func (v *variant) buildOptions() serving.BuildOptions {
	transport := serving.TransportTCP
	if v.spec.Transport == "local" {
		transport = serving.TransportLocal
	}
	bo := serving.BuildOptions{
		Transport:     transport,
		Replicas:      v.spec.Replicas,
		RowCacheBytes: v.spec.RowCacheBytes,
	}
	if b := v.spec.Batching; b != nil {
		bo.Batching = &serving.BatcherOptions{MaxBatch: b.MaxBatch, MaxDelay: b.MaxDelay.D()}
	}
	return bo
}

// servingSpec builds the variant's full serving.ModelSpec (model weights,
// profiling window, initial plan).
func (v *variant) servingSpec() (serving.ModelSpec, error) {
	m, err := model.New(v.cfg, v.spec.Seed)
	if err != nil {
		return serving.ModelSpec{}, err
	}
	window, err := v.window()
	if err != nil {
		return serving.ModelSpec{}, err
	}
	boundaries, err := v.replan(window)
	if err != nil {
		return serving.ModelSpec{}, err
	}
	return serving.ModelSpec{
		Name: v.spec.Name, Model: m, Stats: window,
		Boundaries: boundaries, Options: v.buildOptions(),
	}, nil
}

// request builds one predict request addressed to the variant. Must run on
// the arrival loop: generators are not concurrency-safe.
func (v *variant) request() *serving.PredictRequest {
	req := &serving.PredictRequest{
		Model:     v.spec.Name,
		BatchSize: v.cfg.BatchSize,
		DenseDim:  v.cfg.DenseInputDim,
		Dense:     make([]float32, v.cfg.BatchSize*v.cfg.DenseInputDim),
	}
	for t := 0; t < v.cfg.NumTables; t++ {
		b := v.gen.Next()
		req.Tables = append(req.Tables, serving.TableBatch{Indices: b.Indices, Offsets: b.Offsets})
	}
	return req
}

// runner holds one run's live state.
type runner struct {
	spec     *Spec
	logf     func(string, ...any)
	variants []*variant
	byName   map[string]*variant
	md       *serving.MultiDeployment
	frontend *serving.RPCPredictClient
	admin    *serving.AdminClient
	replan   func([]*embedding.AccessStats) ([]int64, error)

	collector *collector
	// start anchors event timestamps; written once before any autoscaler
	// loop starts. eventsMu guards events: the arrival loop and the
	// autoscaler OnScale callbacks both append.
	start    time.Time
	eventsMu sync.Mutex
	events   []EventRecord
}

// onScale is the autoscaler callback: tally the variant's scale action and
// put it on the event log like any timeline event (called from the
// control-loop goroutine).
func (r *runner) onScale(s *serving.AutoscaledShard, from, to int) {
	v := r.byName[s.Model]
	if v == nil {
		return
	}
	var detail string
	if to > from {
		v.replicasAdded.Add(1)
		detail = fmt.Sprintf("%s scaled out %d -> %d replicas on queue depth", s.Name, from, to)
	} else {
		v.replicasRemoved.Add(1)
		detail = fmt.Sprintf("%s scaled in %d -> %d replicas on queue depth", s.Name, from, to)
	}
	r.record(time.Since(r.start), ActionScale, s.Model, detail)
}

// wireAutoscale points the variant's control loop at its current epoch's
// shard pools: one AutoscaledShard per (table, shard), each with the
// spec's queue policy and a Spawn that serves the same sorted row range
// in-process. Called at start and again after any epoch-changing event
// (deploy, repartition), so scaling always targets the live pools.
func (r *runner) wireAutoscale(v *variant) {
	if v.scaler == nil {
		return
	}
	ld, ok := r.md.Deployment(v.spec.Name)
	if !ok {
		return
	}
	rt := ld.Table()
	if rt == nil || rt.Pre == nil {
		return
	}
	a := v.spec.Autoscale
	var shards []*serving.AutoscaledShard
	for t := 0; t < len(rt.Boundaries); t++ {
		for s := 0; s < rt.NumShards(t); s++ {
			t, s := t, s
			lo := int64(0)
			if s > 0 {
				lo = rt.Boundaries[t][s-1]
			}
			hi := rt.Boundaries[t][s]
			sorted := rt.Pre.Sorted[t]
			shards = append(shards, &serving.AutoscaledShard{
				Name:  fmt.Sprintf("%s-e%d-t%d-s%d", v.spec.Name, rt.Epoch, t, s),
				Model: v.spec.Name,
				Pool:  rt.Pools[t][s],
				Queue: &serving.QueuePolicy{
					HighDepth: a.HighDepth,
					LowDepth:  a.LowDepth,
					Cooldown:  a.Cooldown.D(),
				},
				MaxReplicas: a.MaxReplicas,
				Spawn: func() (serving.GatherClient, error) {
					return serving.NewEmbeddingShard(t, s, sorted, lo, hi)
				},
			})
		}
	}
	v.scaler.SetModelShards(v.spec.Name, shards...)
}

// stopScalers halts every variant's autoscaler loop (idempotent).
func (r *runner) stopScalers() {
	for _, v := range r.variants {
		if v.scaler != nil {
			v.scaler.Stop()
		}
	}
}

// drive runs the arrival loop: precompute the Poisson schedule, then for
// each arrival apply due drift and timeline events on the loop thread,
// build the request there too (generators are single-threaded), and issue
// it from its own goroutine like a real client.
func (r *runner) drive() error {
	spec := r.spec
	total := spec.Duration.D()
	pattern, err := spec.Traffic.pattern(total)
	if err != nil {
		return err
	}
	// The whole arrival schedule is precomputed from the seed, so a
	// fixed-seed run offers an identical request sequence every time.
	var schedule []time.Duration
	arrivals := workload.NewPoissonArrivals(pattern, spec.Seed)
	for {
		at, ok := arrivals.Next()
		if !ok {
			break
		}
		schedule = append(schedule, at)
	}
	pick := workload.NewRNG(spec.Seed + 0x5ca1ab1e)

	timeout := spec.RequestTimeout.D()
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	r.collector = newCollector(spec, total)
	timeline := spec.sortedTimeline()
	nextEvent := 0

	start := time.Now()
	r.start = start
	for _, v := range r.variants {
		if v.scaler != nil {
			v.scaler.Start()
		}
	}
	defer r.stopScalers()
	var wg sync.WaitGroup
	for _, at := range schedule {
		time.Sleep(time.Until(start.Add(at)))
		for nextEvent < len(timeline) && timeline[nextEvent].At.D() <= at {
			if err := r.apply(&timeline[nextEvent]); err != nil {
				wg.Wait()
				return err
			}
			nextEvent++
		}
		r.applyDrift(at)

		v := r.pickModel(pick)
		if v == nil {
			continue // nothing deployed right now
		}
		req := v.request()
		sample := r.collector.dispatch(v.spec.Name, at)
		wg.Add(1)
		v.inflight.Add(1)
		go func() {
			defer wg.Done()
			defer v.inflight.Done()
			//lint:escape ctxflow each open-loop query is an independent client with its own deadline root
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			var reply serving.PredictReply
			issued := time.Now()
			err := r.frontend.Predict(ctx, req, &reply)
			r.collector.complete(sample, time.Since(issued), err)
		}()
	}
	// Apply any events scheduled after the last arrival so deterministic
	// event logs don't depend on arrival tail behavior.
	for nextEvent < len(timeline) {
		at := timeline[nextEvent].At.D()
		time.Sleep(time.Until(start.Add(at)))
		if err := r.apply(&timeline[nextEvent]); err != nil {
			wg.Wait()
			return err
		}
		nextEvent++
	}
	wg.Wait()
	r.collector.finish(r.snapshotEpochs())
	return nil
}

// pickModel draws a deployed model with probability proportional to
// weight. The draw sequence is deterministic for a fixed seed.
func (r *runner) pickModel(rng *workload.RNG) *variant {
	var totalW float64
	for _, v := range r.variants {
		if v.active {
			totalW += v.weight
		}
	}
	if totalW == 0 {
		return nil
	}
	x := rng.Float64() * totalW
	for _, v := range r.variants {
		if !v.active {
			continue
		}
		if x < v.weight {
			return v
		}
		x -= v.weight
	}
	for i := len(r.variants) - 1; i >= 0; i-- {
		if r.variants[i].active {
			return r.variants[i]
		}
	}
	return nil
}

// applyDrift fires due drift cadences (Drift.At one-shots and Drift.Every
// repeats) for every variant.
func (r *runner) applyDrift(at time.Duration) {
	for _, v := range r.variants {
		d := v.spec.Drift
		if d == nil {
			continue
		}
		fraction := d.Fraction
		if fraction == 0 {
			fraction = 0.5
		}
		if d.At > 0 && !v.driftFired && at >= d.At.D() {
			v.driftFired = true
			shift := v.drift.Advance(int64(fraction * float64(v.cfg.RowsPerTable)))
			r.record(at, ActionDrift, v.spec.Name, fmt.Sprintf("hot set shifted to %+d rows", shift))
		}
		for d.Every > 0 && at >= v.nextDriftAt {
			shift := v.drift.Advance(int64(fraction * float64(v.cfg.RowsPerTable)))
			r.record(v.nextDriftAt, ActionDrift, v.spec.Name, fmt.Sprintf("hot set shifted to %+d rows", shift))
			v.nextDriftAt += d.Every.D()
		}
	}
}

// record appends one applied event to the run log. Safe for concurrent
// use: the arrival loop and the autoscaler callbacks both record.
func (r *runner) record(at time.Duration, action, mdl, detail string) {
	r.recordEpoch(at, action, mdl, detail, -1)
}

// recordEpoch is record with an epoch annotation (deploy/repartition).
func (r *runner) recordEpoch(at time.Duration, action, mdl, detail string, epoch int64) {
	r.eventsMu.Lock()
	r.events = append(r.events, EventRecord{At: at, Action: action, Model: mdl, Detail: detail, Epoch: epoch})
	r.eventsMu.Unlock()
	r.logf("%8v  %s %s: %s", at.Round(time.Millisecond), action, mdl, detail)
}

// pool resolves a timeline event's (model, table, shard) to the live
// replica pool serving it in the model's current epoch.
func (r *runner) pool(e *Event) (*serving.ReplicaPool, error) {
	ld, ok := r.md.Deployment(e.Model)
	if !ok {
		return nil, fmt.Errorf("scenario: %s: model %q is not deployed", e.Action, e.Model)
	}
	rt := ld.Table()
	if rt == nil {
		return nil, fmt.Errorf("scenario: %s: model %q has no live epoch", e.Action, e.Model)
	}
	if e.Table >= len(rt.Pools) {
		return nil, fmt.Errorf("scenario: %s: model %q has %d tables, no table %d", e.Action, e.Model, len(rt.Pools), e.Table)
	}
	if e.Shard >= len(rt.Pools[e.Table]) {
		return nil, fmt.Errorf("scenario: %s: model %q table %d has %d shards, no shard %d",
			e.Action, e.Model, e.Table, len(rt.Pools[e.Table]), e.Shard)
	}
	return rt.Pools[e.Table][e.Shard], nil
}

// apply executes one timeline event.
func (r *runner) apply(e *Event) error {
	at := e.At.D()
	switch e.Action {
	case ActionPhase:
		epochs := r.snapshotEpochs()
		r.collector.cutPhase(e.Label, at, epochs)
		r.record(at, ActionPhase, "", fmt.Sprintf("phase %q begins", e.Label))
		return nil

	case ActionKillReplica:
		pool, err := r.pool(e)
		if err != nil {
			return err
		}
		if !pool.KillReplica(e.Replica) {
			return fmt.Errorf("scenario: kill-replica: model %q t%d/s%d has no replica %d (size %d)",
				e.Model, e.Table, e.Shard, e.Replica, pool.Size())
		}
		r.record(at, e.Action, e.Model,
			fmt.Sprintf("t%d/s%d replica %d down, %d/%d live", e.Table, e.Shard, e.Replica, pool.Live(), pool.Size()))
		return nil

	case ActionReviveReplica:
		pool, err := r.pool(e)
		if err != nil {
			return err
		}
		if !pool.ReviveReplica(e.Replica) {
			return fmt.Errorf("scenario: revive-replica: model %q t%d/s%d has no replica %d (size %d)",
				e.Model, e.Table, e.Shard, e.Replica, pool.Size())
		}
		r.record(at, e.Action, e.Model,
			fmt.Sprintf("t%d/s%d replica %d back, %d/%d live", e.Table, e.Shard, e.Replica, pool.Live(), pool.Size()))
		return nil

	case ActionSlowShard:
		pool, err := r.pool(e)
		if err != nil {
			return err
		}
		pool.InjectDelay(e.Delay.D())
		r.record(at, e.Action, e.Model, fmt.Sprintf("t%d/s%d gathers now stall %v", e.Table, e.Shard, e.Delay.D()))
		return nil

	case ActionDeploy:
		v := r.byName[e.Model]
		ms, err := v.servingSpec()
		if err != nil {
			return err
		}
		counts := make([][]int64, len(ms.Stats))
		for t, st := range ms.Stats {
			counts[t] = st.Counts
		}
		var reply serving.AdminDeployReply
		//lint:escape ctxflow timeline events fire from the scenario clock, not from a request; each is its own root
		err = r.admin.Deploy(context.Background(), &serving.AdminDeployRequest{
			Name: v.spec.Name, Config: v.cfg, Seed: v.spec.Seed,
			Counts: counts, Boundaries: ms.Boundaries, Options: ms.Options,
		}, &reply)
		if err != nil {
			return fmt.Errorf("scenario: deploy %q: %w", e.Model, err)
		}
		if err := r.md.StartProfile(v.spec.Name); err != nil {
			return err
		}
		v.active = true
		r.wireAutoscale(v)
		r.recordEpoch(at, e.Action, e.Model, fmt.Sprintf("deployed live: epoch %d, %d shards", reply.Epoch, reply.Shards), reply.Epoch)
		return nil

	case ActionUndeploy:
		v := r.byName[e.Model]
		// Out of the rotation first, then drained: new arrivals stop
		// addressing the name, the variant's in-flight requests complete
		// (bounded by the request timeout), and only then does the
		// control plane unregister it. The autoscaler lets go of the
		// variant's pools before the drain so no scale action races the
		// teardown.
		v.active = false
		if v.scaler != nil {
			v.scaler.RemoveModelShards(e.Model)
		}
		v.inflight.Wait()
		//lint:escape ctxflow timeline events fire from the scenario clock, not from a request; each is its own root
		if _, err := r.admin.Undeploy(context.Background(), e.Model); err != nil {
			return fmt.Errorf("scenario: undeploy %q: %w", e.Model, err)
		}
		r.record(at, e.Action, e.Model, "drained and unregistered")
		return nil

	case ActionDrift:
		v := r.byName[e.Model]
		fraction := e.Fraction
		if fraction == 0 {
			fraction = 0.5
		}
		shift := v.drift.Advance(int64(fraction * float64(v.cfg.RowsPerTable)))
		r.record(at, e.Action, e.Model, fmt.Sprintf("hot set shifted to %+d rows", shift))
		return nil

	case ActionRepartition:
		window, err := r.md.SnapshotProfile(e.Model)
		if err != nil {
			return err
		}
		if window == nil {
			return fmt.Errorf("scenario: repartition %q: no live profiling window", e.Model)
		}
		boundaries, err := r.replan(window)
		if err != nil {
			return err
		}
		//lint:escape ctxflow timeline events fire from the scenario clock, not from a request; each is its own root
		if err := r.md.Repartition(context.Background(), e.Model, window, boundaries); err != nil {
			return fmt.Errorf("scenario: repartition %q: %w", e.Model, err)
		}
		if err := r.md.StartProfile(e.Model); err != nil {
			return err
		}
		if v := r.byName[e.Model]; v != nil {
			// The swap replaced the shard pools; point the control loop
			// at the new epoch's.
			r.wireAutoscale(v)
		}
		epoch := r.md.Epoch(e.Model)
		r.recordEpoch(at, e.Action, e.Model, fmt.Sprintf("zero-downtime swap to epoch %d, boundaries %v", epoch, boundaries), epoch)
		return nil
	}
	return fmt.Errorf("scenario: unknown action %q", e.Action)
}

// snapshotEpochs captures every deployed model's (epoch, shards) — phase
// rows carry these so experiments can assert plan-swap progress per phase.
func (r *runner) snapshotEpochs() map[string]EpochInfo {
	out := map[string]EpochInfo{}
	for _, name := range r.md.Models() {
		ld, ok := r.md.Deployment(name)
		if !ok {
			continue
		}
		info := EpochInfo{Epoch: -1}
		if rt := ld.Table(); rt != nil {
			info = EpochInfo{Epoch: rt.Epoch, Shards: rt.NumShards(0)}
		}
		out[name] = info
	}
	return out
}

// result assembles the measurement into a Result, folding in the control
// plane's final per-model status over the admin API.
func (r *runner) result() (*Result, error) {
	//lint:escape ctxflow the end-of-run status sweep outlives every scenario deadline by design
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	status, err := r.admin.Status(ctx, "")
	if err != nil {
		return nil, err
	}
	byModel := map[string]serving.ModelStatus{}
	for _, st := range status {
		byModel[st.Model] = st
	}

	res := &Result{
		Name:     r.spec.Name,
		Duration: r.spec.Duration.D(),
		Warmup:   r.spec.Warmup.D(),
		Events:   r.events,
	}
	res.Total = r.collector.total.summarize()
	res.Phases = r.collector.phaseResults()
	names := make([]string, 0, len(r.collector.perModel))
	for name := range r.collector.perModel {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mr := ModelResult{Model: name, Metrics: r.collector.perModel[name].summarize()}
		if st, ok := byModel[name]; ok {
			mr.Deployed = true
			mr.Status = st
		}
		if v := r.byName[name]; v != nil {
			mr.ReplicasAdded = v.replicasAdded.Load()
			mr.ReplicasRemoved = v.replicasRemoved.Load()
		}
		res.Models = append(res.Models, mr)
	}
	return res, nil
}
