package scenario

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/embedding"
	"repro/internal/workload"
)

// This file lowers the declarative traffic and access-distribution blocks
// onto internal/workload: shapes become piecewise-constant
// workload.TrafficPattern schedules (driven by Poisson arrivals), and a
// model's recorded access trace becomes an empirical Sampler so scenarios
// can replay production-shaped hotness instead of the synthetic power law.

// pattern lowers the traffic block to a workload schedule over the run.
func (t *Traffic) pattern(total time.Duration) (*workload.TrafficPattern, error) {
	var phases []workload.TrafficPhase
	switch t.Shape {
	case "constant":
		phases = []workload.TrafficPhase{{Start: 0, TargetQPS: t.BaseQPS}}
	case "diurnal":
		// A sinusoid between base and peak, sampled into Steps
		// piecewise-constant levels per period: load crests at half
		// period — a day compressed into however long the run is.
		steps := t.Steps
		if steps == 0 {
			steps = 16
		}
		period := t.Period.D()
		step := period / time.Duration(steps)
		if step <= 0 {
			return nil, fmt.Errorf("scenario: diurnal period %v too short for %d steps", period, steps)
		}
		for at := time.Duration(0); at < total; at += step {
			cycle := float64(at%period) / float64(period)
			level := t.BaseQPS + (t.PeakQPS-t.BaseQPS)*(0.5-0.5*math.Cos(2*math.Pi*cycle))
			phases = append(phases, workload.TrafficPhase{Start: at, TargetQPS: level})
		}
	case "flash-crowd":
		phases = []workload.TrafficPhase{{Start: 0, TargetQPS: t.BaseQPS}}
		if t.PeakStart > 0 {
			phases = append(phases, workload.TrafficPhase{Start: t.PeakStart.D(), TargetQPS: t.PeakQPS})
		} else {
			phases[0].TargetQPS = t.PeakQPS
		}
		if end := t.PeakStart.D() + t.PeakDuration.D(); end < total {
			phases = append(phases, workload.TrafficPhase{Start: end, TargetQPS: t.BaseQPS})
		}
	case "phases":
		for _, p := range t.Phases {
			phases = append(phases, workload.TrafficPhase{Start: p.Start.D(), TargetQPS: p.QPS})
		}
	default:
		return nil, fmt.Errorf("scenario: unknown traffic shape %q", t.Shape)
	}
	return workload.NewTrafficPattern(phases, total)
}

// traceSampler draws physical row IDs with probability proportional to a
// recorded trace's access counts — replaying an empirical distribution
// where PowerLawSampler synthesizes one. Ranks are physical rows, so it
// composes with the identity mapping (the trace already encodes the
// production layout).
type traceSampler struct {
	cum  []int64 // cum[i] = accesses in rows [0, i]
	rows int64
}

// newTraceSampler loads a workload CSV trace for a table of rows rows.
func newTraceSampler(path string, rows int64) (*traceSampler, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	stats, err := workload.ReadTrace(f, rows)
	if err != nil {
		return nil, err
	}
	return newTraceSamplerFromStats(stats)
}

// newTraceSamplerFromStats builds the sampler from access statistics.
func newTraceSamplerFromStats(stats *embedding.AccessStats) (*traceSampler, error) {
	if stats.Total <= 0 {
		return nil, fmt.Errorf("scenario: trace has no accesses to replay")
	}
	cum := make([]int64, len(stats.Counts))
	var run int64
	for i, c := range stats.Counts {
		run += c
		cum[i] = run
	}
	return &traceSampler{cum: cum, rows: int64(len(stats.Counts))}, nil
}

// Rows implements workload.Sampler.
func (s *traceSampler) Rows() int64 { return s.rows }

// SampleRank implements workload.Sampler via inverse-CDF binary search.
func (s *traceSampler) SampleRank(r *workload.RNG) int64 {
	x := r.Intn(s.cum[len(s.cum)-1]) // uniform in [0, total)
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return int64(lo)
}

var _ workload.Sampler = (*traceSampler)(nil)
