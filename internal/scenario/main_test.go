package scenario

import (
	"testing"

	"repro/internal/analysis/leakcheck"
)

// TestMain guards the package's goroutine hygiene: scenario runs spin
// up whole serving stacks (pools, autoscalers, wire servers) and every
// one must be torn down when the run ends, or the leaked stack fails
// the whole test binary.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
