package scenario

import (
	"testing"
	"time"
)

// tinySpec is a scaled-down end-to-end scenario: local shard transport,
// small geometry, sub-second run. TCP still fronts the deployment (the
// runner always drives through the exported endpoint).
func tinySpec() *Spec {
	return &Spec{
		Name:     "tiny",
		Seed:     11,
		Duration: Duration(500 * time.Millisecond),
		Warmup:   Duration(100 * time.Millisecond),
		Models: []ModelSpec{{
			Name: "rm1", Rows: 3000, Tables: 2, Seed: 3,
			Transport: "local", WindowQueries: 40,
		}},
		Traffic: Traffic{Shape: "constant", BaseQPS: 120},
	}
}

func TestRunDeterministicOfferedSequence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a live deployment")
	}
	spec := tinySpec()
	spec.Models[0].Drift = &Drift{At: Duration(200 * time.Millisecond), Fraction: 0.4}
	spec.Timeline = []Event{
		{At: Duration(150 * time.Millisecond), Action: ActionPhase, Label: "drifted"},
		{At: Duration(300 * time.Millisecond), Action: ActionRepartition, Model: "rm1"},
	}

	run := func() *Result {
		res, err := Run(spec, Options{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()

	// The offered sequence — counts, model assignment, phase structure and
	// the event log — is fully determined by the seed. (Latencies are not.)
	if a.Total.Requests == 0 {
		t.Fatal("no requests measured")
	}
	if a.Total.Requests != b.Total.Requests {
		t.Fatalf("measured requests differ: %d vs %d", a.Total.Requests, b.Total.Requests)
	}
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("phase counts differ: %d vs %d", len(a.Phases), len(b.Phases))
	}
	for i := range a.Phases {
		pa, pb := a.Phases[i], b.Phases[i]
		if pa.Name != pb.Name || pa.Metrics.Requests != pb.Metrics.Requests {
			t.Fatalf("phase %d differs: %q/%d vs %q/%d", i, pa.Name, pa.Metrics.Requests, pb.Name, pb.Metrics.Requests)
		}
	}
	if len(a.Models) != len(b.Models) {
		t.Fatalf("model counts differ: %d vs %d", len(a.Models), len(b.Models))
	}
	for i := range a.Models {
		if a.Models[i].Metrics.Requests != b.Models[i].Metrics.Requests {
			t.Fatalf("model %q requests differ: %d vs %d",
				a.Models[i].Model, a.Models[i].Metrics.Requests, b.Models[i].Metrics.Requests)
		}
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event logs differ in length: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Action != eb.Action || ea.Model != eb.Model || ea.Epoch != eb.Epoch {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea, eb)
		}
	}
	// The repartition swapped the initial epoch 0 plan out and the last
	// phase observed the new epoch.
	last := a.Phases[len(a.Phases)-1]
	if info, ok := last.Epochs["rm1"]; !ok || info.Epoch < 1 {
		t.Fatalf("expected rm1 epoch >= 1 after repartition, got %+v", last.Epochs)
	}
}

func TestRunFaultInjectionZeroFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a live deployment")
	}
	spec := tinySpec()
	spec.Name = "faults"
	spec.Models[0].Replicas = []int{2, 2}
	spec.Timeline = []Event{
		{At: Duration(150 * time.Millisecond), Action: ActionKillReplica, Model: "rm1", Table: 0, Shard: 0, Replica: 0},
		{At: Duration(250 * time.Millisecond), Action: ActionSlowShard, Model: "rm1", Table: 1, Shard: 0, Delay: Duration(2 * time.Millisecond)},
		{At: Duration(350 * time.Millisecond), Action: ActionReviveReplica, Model: "rm1", Table: 0, Shard: 0, Replica: 0},
	}
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Total.Requests == 0 {
		t.Fatal("no requests measured")
	}
	// Replica-level failover keeps a dead replica invisible to clients.
	if res.Total.Errors != 0 {
		t.Fatalf("fault injection leaked %d/%d failures to clients", res.Total.Errors, res.Total.Requests)
	}
	if len(res.Events) != 3 {
		t.Fatalf("expected 3 applied events, got %d: %+v", len(res.Events), res.Events)
	}
}

func TestRunDeployUndeployMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a live deployment")
	}
	spec := tinySpec()
	spec.Name = "lifecycle"
	spec.Models = append(spec.Models, ModelSpec{
		Name: "rm1b", Rows: 3000, Tables: 2, Seed: 9,
		Transport: "local", WindowQueries: 40, Deferred: true,
	})
	spec.Timeline = []Event{
		{At: Duration(150 * time.Millisecond), Action: ActionDeploy, Model: "rm1b"},
		{At: Duration(400 * time.Millisecond), Action: ActionUndeploy, Model: "rm1b"},
	}
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var b *ModelResult
	for i := range res.Models {
		if res.Models[i].Model == "rm1b" {
			b = &res.Models[i]
		}
	}
	if b == nil {
		t.Fatalf("rm1b never served traffic: %+v", res.Models)
	}
	if b.Metrics.Requests == 0 {
		t.Fatal("rm1b measured no requests while deployed")
	}
	if b.Deployed {
		t.Fatal("rm1b still reported deployed after undeploy")
	}
	if res.Total.Errors != 0 {
		t.Fatalf("lifecycle churn leaked %d failures", res.Total.Errors)
	}
}

// TestRunAutoscaleAddsReplicas drives an overloaded hot shard — a
// slow-shard fault cuts its lone replica's service rate below the offered
// rate — and checks the queue-depth autoscaler reacts within the run: at
// least one replica added, the scale event in the log, per-shard queue
// stats in the admin status, and no request ever failing or repartitioning
// along the way (scale-out happens inside the live epoch).
func TestRunAutoscaleAddsReplicas(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a live deployment")
	}
	spec := tinySpec()
	spec.Name = "autoscale"
	spec.Duration = Duration(1500 * time.Millisecond)
	spec.Models[0].Tables = 1
	spec.Models[0].Autoscale = &Autoscale{
		Interval:    Duration(25 * time.Millisecond),
		HighDepth:   0.5,
		LowDepth:    0, // never scale in: a drained queue after the burst must not flap
		Cooldown:    Duration(100 * time.Millisecond),
		MaxReplicas: 3,
	}
	// 40ms per gather caps one replica's 4 pull workers at ~100/s, below
	// the 120 QPS offered: the hot shard's queue must grow until the
	// autoscaler adds capacity.
	spec.Timeline = []Event{
		{At: 0, Action: ActionSlowShard, Model: "rm1", Table: 0, Shard: 0, Delay: Duration(40 * time.Millisecond)},
	}
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Total.Requests == 0 {
		t.Fatal("no requests measured")
	}
	if res.Total.Errors != 0 {
		t.Fatalf("autoscale run leaked %d/%d failures", res.Total.Errors, res.Total.Requests)
	}
	var mr *ModelResult
	for i := range res.Models {
		if res.Models[i].Model == "rm1" {
			mr = &res.Models[i]
		}
	}
	if mr == nil || !mr.Deployed {
		t.Fatalf("rm1 missing or undeployed: %+v", res.Models)
	}
	if mr.ReplicasAdded < 1 {
		t.Fatalf("autoscaler added %d replicas under overload, want >= 1", mr.ReplicasAdded)
	}
	if len(mr.Status.Queues) == 0 {
		t.Fatal("admin status reports no per-shard queue stats")
	}
	var grew bool
	for _, q := range mr.Status.Queues {
		if q.Capacity <= 0 || q.Workers <= 0 {
			t.Fatalf("degenerate queue stats: %+v", q)
		}
		if q.Replicas > 1 {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("no shard ended with >1 replicas: %+v", mr.Status.Queues)
	}
	var scales int
	for _, e := range res.Events {
		if e.Action == ActionScale {
			scales++
		}
	}
	if int64(scales) != mr.ReplicasAdded+mr.ReplicasRemoved {
		t.Fatalf("event log has %d scale events, counters say %d",
			scales, mr.ReplicasAdded+mr.ReplicasRemoved)
	}
	// Scale-out happened inside the live epoch: no plan swap.
	if mr.Status.Swaps != 0 {
		t.Fatalf("autoscale run repartitioned %d times, want 0", mr.Status.Swaps)
	}
}

func TestResultRowsSchema(t *testing.T) {
	res := &Result{
		Name: "rows",
		Total: Metrics{Requests: 10, Errors: 1, P50: 2 * time.Millisecond,
			P99: 9 * time.Millisecond, OfferedQPS: 100, AchievedQPS: 90},
		Models: []ModelResult{{Model: "m", Metrics: Metrics{Requests: 10}}},
		Phases: []PhaseResult{
			{Name: "a", Metrics: Metrics{Requests: 4}},
			{Name: "b", Metrics: Metrics{Requests: 6}},
		},
	}
	rows := res.Rows()
	if rows[0].Name != "Scenario_rows" || rows[0].P50Ms != 2 || rows[0].P99Ms != 9 {
		t.Fatalf("aggregate row: %+v", rows[0])
	}
	if rows[0].ErrorRate != 0.1 || rows[0].OfferedQPS != 100 || rows[0].QPS != 90 {
		t.Fatalf("aggregate rates: %+v", rows[0])
	}
	want := map[string]bool{
		"Scenario_rows": true, "Scenario_rows/model=m": true,
		"Scenario_rows/phase=a": true, "Scenario_rows/phase=b": true,
	}
	if len(rows) != len(want) {
		t.Fatalf("row count %d: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if !want[r.Name] {
			t.Fatalf("unexpected row %q", r.Name)
		}
	}
	if res.ArtifactName() != "BENCH_scenario_rows.json" {
		t.Fatalf("artifact name %q", res.ArtifactName())
	}
}
