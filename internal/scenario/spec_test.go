package scenario

import (
	"strings"
	"testing"
	"time"
)

// validSpec is a minimal well-formed document tests mutate from.
const validSpec = `{
	"name": "unit",
	"seed": 7,
	"duration": "400ms",
	"warmup": "100ms",
	"models": [{"name": "rm1", "rows": 4000, "tables": 2, "seed": 1}],
	"traffic": {"shape": "constant", "base_qps": 100}
}`

func TestParseValid(t *testing.T) {
	spec, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if spec.Name != "unit" || spec.Duration.D() != 400*time.Millisecond {
		t.Fatalf("unexpected spec: %+v", spec)
	}
	if len(spec.Models) != 1 || spec.Models[0].Rows != 4000 {
		t.Fatalf("unexpected models: %+v", spec.Models)
	}
}

func TestParseRejectsUnknownKeys(t *testing.T) {
	cases := map[string]string{
		"top level": strings.Replace(validSpec, `"seed": 7,`, `"seed": 7, "durration": "1s",`, 1),
		"model":     strings.Replace(validSpec, `"rows": 4000,`, `"rowz": 4000,`, 1),
		"traffic":   strings.Replace(validSpec, `"base_qps": 100`, `"base_qpz": 100`, 1),
	}
	for where, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: unknown key accepted", where)
		}
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	if _, err := Parse([]byte(validSpec + `{"name": "second"}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
}

func TestParseRejectsBadDuration(t *testing.T) {
	doc := strings.Replace(validSpec, `"400ms"`, `"fast"`, 1)
	if _, err := Parse([]byte(doc)); err == nil {
		t.Fatal("unparseable duration accepted")
	}
}

func TestValidateRejectsBadTimelines(t *testing.T) {
	base := func() *Spec {
		spec, err := Parse([]byte(validSpec))
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		return spec
	}
	cases := []struct {
		name string
		ev   Event
	}{
		{"unknown action", Event{At: Duration(10 * time.Millisecond), Action: "explode", Model: "rm1"}},
		{"beyond duration", Event{At: Duration(time.Second), Action: ActionDrift, Model: "rm1"}},
		{"negative at", Event{At: Duration(-time.Millisecond), Action: ActionDrift, Model: "rm1"}},
		{"undeclared model", Event{At: 0, Action: ActionRepartition, Model: "ghost"}},
		{"phase without label", Event{At: 0, Action: ActionPhase}},
		{"negative replica", Event{At: 0, Action: ActionKillReplica, Model: "rm1", Replica: -1}},
		{"negative delay", Event{At: 0, Action: ActionSlowShard, Model: "rm1", Delay: Duration(-time.Millisecond)}},
		{"deploy of live model", Event{At: 0, Action: ActionDeploy, Model: "rm1"}},
	}
	for _, tc := range cases {
		spec := base()
		spec.Timeline = []Event{tc.ev}
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no shape", func(s *Spec) { s.Traffic = Traffic{} }},
		{"unknown shape", func(s *Spec) { s.Traffic.Shape = "chaotic" }},
		{"constant zero qps", func(s *Spec) { s.Traffic.BaseQPS = 0 }},
		{"diurnal no period", func(s *Spec) {
			s.Traffic = Traffic{Shape: "diurnal", BaseQPS: 10, PeakQPS: 20}
		}},
		{"flash peak outside run", func(s *Spec) {
			s.Traffic = Traffic{Shape: "flash-crowd", BaseQPS: 10, PeakQPS: 20,
				PeakStart: Duration(300 * time.Millisecond), PeakDuration: Duration(time.Second)}
		}},
		{"phases none at zero", func(s *Spec) {
			s.Traffic = Traffic{Shape: "phases", Phases: []Phase{{Start: Duration(time.Millisecond), QPS: 10}}}
		}},
		{"all models deferred", func(s *Spec) { s.Models[0].Deferred = true }},
		{"duplicate model", func(s *Spec) { s.Models = append(s.Models, s.Models[0]) }},
		{"warmup past duration", func(s *Spec) { s.Warmup = s.Duration }},
		{"drift without cadence", func(s *Spec) { s.Models[0].Drift = &Drift{} }},
	}
	for _, tc := range cases {
		spec, err := Parse([]byte(validSpec))
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		tc.mut(spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestScaleCompressesTimesNotRates(t *testing.T) {
	spec, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	spec.Traffic = Traffic{Shape: "flash-crowd", BaseQPS: 50, PeakQPS: 200,
		PeakStart: Duration(100 * time.Millisecond), PeakDuration: Duration(100 * time.Millisecond)}
	spec.Models[0].Drift = &Drift{Every: Duration(80 * time.Millisecond)}
	spec.Timeline = []Event{{At: Duration(200 * time.Millisecond), Action: ActionRepartition, Model: "rm1"}}

	half := spec.Scale(0.5)
	if half.Duration.D() != 200*time.Millisecond || half.Warmup.D() != 50*time.Millisecond {
		t.Fatalf("duration/warmup not scaled: %v/%v", half.Duration.D(), half.Warmup.D())
	}
	if half.Traffic.PeakStart.D() != 50*time.Millisecond || half.Traffic.BaseQPS != 50 {
		t.Fatalf("traffic scaled wrong: %+v", half.Traffic)
	}
	if half.Models[0].Drift.Every.D() != 40*time.Millisecond {
		t.Fatalf("drift cadence not scaled: %v", half.Models[0].Drift.Every.D())
	}
	if half.Timeline[0].At.D() != 100*time.Millisecond {
		t.Fatalf("timeline not scaled: %v", half.Timeline[0].At.D())
	}
	// The original is untouched (Scale deep-copies).
	if spec.Duration.D() != 400*time.Millisecond || spec.Timeline[0].At.D() != 200*time.Millisecond {
		t.Fatalf("Scale mutated its receiver: %+v", spec)
	}
	if err := half.Validate(); err != nil {
		t.Fatalf("scaled spec no longer valid: %v", err)
	}
}

func TestSortedTimelineStable(t *testing.T) {
	spec, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	spec.Timeline = []Event{
		{At: Duration(30 * time.Millisecond), Action: ActionDrift, Model: "rm1", Label: "b"},
		{At: Duration(10 * time.Millisecond), Action: ActionPhase, Label: "a"},
		{At: Duration(30 * time.Millisecond), Action: ActionRepartition, Model: "rm1", Label: "c"},
	}
	got := spec.sortedTimeline()
	if got[0].Label != "a" || got[1].Label != "b" || got[2].Label != "c" {
		t.Fatalf("order: %q %q %q", got[0].Label, got[1].Label, got[2].Label)
	}
}
