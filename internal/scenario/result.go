package scenario

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/benchio"
	"repro/internal/serving"
)

// Metrics is one measurement bucket's summary: request/error counts,
// exact latency quantiles over every measured request, and the offered vs
// achieved rates over the bucket's time span.
type Metrics struct {
	Requests    int64
	Errors      int64
	P50         time.Duration
	P95         time.Duration
	P99         time.Duration
	OfferedQPS  float64
	AchievedQPS float64
}

// ErrorRate returns Errors/Requests (0 for an empty bucket).
func (m Metrics) ErrorRate() float64 {
	if m.Requests == 0 {
		return 0
	}
	return float64(m.Errors) / float64(m.Requests)
}

// EpochInfo is one model's plan position at a snapshot instant.
type EpochInfo struct {
	Epoch  int64
	Shards int
}

// EventRecord is one applied event in the run log. Epoch is the model's
// plan epoch right after the event for deploy/repartition, -1 otherwise.
type EventRecord struct {
	At     time.Duration
	Action string
	Model  string
	Detail string
	Epoch  int64
}

// PhaseResult is one measurement phase (segments cut by timeline "phase"
// events; a run without them has a single "measure" phase). Epochs holds
// every deployed model's plan position when the phase ended.
type PhaseResult struct {
	Name    string
	Start   time.Duration
	End     time.Duration
	Metrics Metrics
	Epochs  map[string]EpochInfo
}

// ModelResult is one model's aggregate over the measurement window, plus
// its control-plane status at run end (valid when Deployed — a model
// undeployed mid-run keeps its client-side metrics only).
type ModelResult struct {
	Model    string
	Metrics  Metrics
	Deployed bool
	Status   serving.ModelStatus
	// ReplicasAdded/Removed tally the model's queue-depth autoscaler
	// actions over the run (0 without an autoscale block).
	ReplicasAdded   int64
	ReplicasRemoved int64
}

// Result is one scenario run's full measurement.
type Result struct {
	Name     string
	Duration time.Duration
	Warmup   time.Duration
	Total    Metrics
	Models   []ModelResult
	Phases   []PhaseResult
	Events   []EventRecord
}

// ArtifactName returns the run's artifact filename.
func (r *Result) ArtifactName() string {
	return fmt.Sprintf("BENCH_scenario_%s.json", r.Name)
}

// Rows flattens the result into the shared benchio schema: one aggregate
// row, one per model (with the control plane's swap/replan/cache counters
// in Extra), one per phase.
func (r *Result) Rows() []benchio.Row {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	row := func(name string, m Metrics) benchio.Row {
		return benchio.Row{
			Name:       name,
			QPS:        m.AchievedQPS,
			OfferedQPS: m.OfferedQPS,
			P50Ms:      ms(m.P50),
			P95Ms:      ms(m.P95),
			P99Ms:      ms(m.P99),
			ErrorRate:  m.ErrorRate(),
			Extra: map[string]float64{
				"requests": float64(m.Requests),
				"errors":   float64(m.Errors),
				"shed":     float64(m.Errors),
			},
		}
	}
	base := "Scenario_" + r.Name
	agg := row(base, r.Total)
	var swaps int64
	for _, mr := range r.Models {
		if mr.Deployed {
			swaps += mr.Status.Swaps
		}
	}
	agg.Extra["swaps"] = float64(swaps)
	agg.Extra["events"] = float64(len(r.Events))
	rows := []benchio.Row{agg}
	for _, mr := range r.Models {
		mrow := row(base+"/model="+mr.Model, mr.Metrics)
		mrow.Model = mr.Model
		if mr.Deployed {
			st := mr.Status
			mrow.Extra["epoch"] = float64(st.Epoch)
			mrow.Extra["swaps"] = float64(st.Swaps)
			mrow.Extra["shards"] = float64(st.Shards)
			mrow.Extra["replans"] = float64(st.Counters.Replans)
			mrow.Extra["replan_memo_hits"] = float64(st.Counters.ReplanMemoHits)
			mrow.Extra["preprocesses"] = float64(st.Counters.Preprocesses)
			mrow.Extra["pre_cache_hits"] = float64(st.Counters.PreCacheHits)
			mrow.Extra["shards_built"] = float64(st.Counters.ShardsBuilt)
			mrow.Extra["shards_reused"] = float64(st.Counters.ShardsReused)
			// Queue-depth autoscaling: scale actions (always emitted for a
			// deployed model so scenarioguard can gate on the floor) plus
			// the pull queues' end-of-run pressure counters.
			mrow.Extra["replicas_added"] = float64(mr.ReplicasAdded)
			mrow.Extra["replicas_removed"] = float64(mr.ReplicasRemoved)
			var rejected int64
			var replicas int
			for _, q := range st.Queues {
				rejected += q.Rejected
				replicas += q.Replicas
			}
			mrow.Extra["queue_rejected"] = float64(rejected)
			mrow.Extra["queue_shards"] = float64(len(st.Queues))
			mrow.Extra["queue_replicas"] = float64(replicas)
			// Frontend hot-row cache (gather path v2). Emitted only when
			// the cache saw traffic, so baselines from cache-off runs don't
			// grow guardable keys.
			if lookups := st.Counters.RowCacheHits + st.Counters.RowCacheMisses; lookups > 0 {
				mrow.Extra["rowcache_hits"] = float64(st.Counters.RowCacheHits)
				mrow.Extra["rowcache_misses"] = float64(st.Counters.RowCacheMisses)
				mrow.Extra["rowcache_bytes"] = float64(st.Counters.RowCacheBytes)
				mrow.Extra["rowcache_hit_rate"] = float64(st.Counters.RowCacheHits) / float64(lookups)
			}
		}
		rows = append(rows, mrow)
	}
	if len(r.Phases) > 1 {
		for _, ph := range r.Phases {
			rows = append(rows, row(base+"/phase="+ph.Name, ph.Metrics))
		}
	}
	return rows
}

// WriteArtifact writes BENCH_scenario_<name>.json into dir.
func (r *Result) WriteArtifact(dir string) (string, error) {
	path := filepath.Join(dir, r.ArtifactName())
	return path, benchio.WriteRows(path, r.Rows())
}

// bucket accumulates one measurement group's samples. Dispatch-side
// fields (offered) are written by the arrival loop only; completion-side
// fields are written by client goroutines under the collector's lock.
type bucket struct {
	offered   int64
	span      time.Duration // measured time the bucket covers
	latencies []time.Duration
	errors    int64
}

// summarize computes the bucket's final metrics.
func (b *bucket) summarize() Metrics {
	m := Metrics{Requests: int64(len(b.latencies)) + b.errors, Errors: b.errors}
	sorted := append([]time.Duration(nil), b.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	quantile := func(q float64) time.Duration {
		if len(sorted) == 0 {
			return 0
		}
		idx := int(q*float64(len(sorted))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	m.P50, m.P95, m.P99 = quantile(0.50), quantile(0.95), quantile(0.99)
	if secs := b.span.Seconds(); secs > 0 {
		m.OfferedQPS = float64(b.offered) / secs
		m.AchievedQPS = float64(len(b.latencies)) / secs
	}
	return m
}

// sample tracks one in-flight measured request's attribution.
type sample struct {
	model    string
	phase    int
	measured bool
}

// collector routes every request's dispatch and completion into the
// total/per-model/per-phase buckets of the measurement window.
type collector struct {
	warmup time.Duration
	end    time.Duration

	mu       sync.Mutex
	total    *bucket
	perModel map[string]*bucket
	phases   []*phaseState
	current  int
}

// phaseState is one phase's bucket plus its boundaries.
type phaseState struct {
	name   string
	start  time.Duration
	end    time.Duration
	epochs map[string]EpochInfo
	b      *bucket
}

// newCollector opens the window [warmup, total) with one initial phase.
func newCollector(spec *Spec, total time.Duration) *collector {
	c := &collector{
		warmup:   spec.Warmup.D(),
		end:      total,
		total:    &bucket{span: total - spec.Warmup.D()},
		perModel: map[string]*bucket{},
	}
	c.phases = []*phaseState{{name: "measure", start: c.warmup, end: total, b: &bucket{}}}
	return c
}

// cutPhase closes the current phase at `at` (recording the epoch snapshot
// on it) and opens a new one. Called from the arrival loop. An at-0 cut
// renames the initial phase instead of closing a zero-length one.
func (c *collector) cutPhase(name string, at time.Duration, epochs map[string]EpochInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.phases[c.current]
	if at <= cur.start {
		cur.name = name
		return
	}
	cur.end = at
	cur.epochs = epochs
	c.phases = append(c.phases, &phaseState{name: name, start: at, end: c.end, b: &bucket{}})
	c.current = len(c.phases) - 1
}

// dispatch records one arrival at time `at` addressed to model and
// returns the sample token its completion must carry. Called from the
// arrival loop only.
func (c *collector) dispatch(mdl string, at time.Duration) *sample {
	s := &sample{model: mdl, measured: at >= c.warmup}
	if !s.measured {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s.phase = c.current
	c.total.offered++
	c.phases[s.phase].b.offered++
	mb := c.perModel[mdl]
	if mb == nil {
		mb = &bucket{}
		c.perModel[mdl] = mb
	}
	mb.offered++
	return s
}

// complete records a measured request's outcome.
func (c *collector) complete(s *sample, lat time.Duration, err error) {
	if !s.measured {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range []*bucket{c.total, c.phases[s.phase].b, c.perModel[s.model]} {
		if err != nil {
			b.errors++
		} else {
			b.latencies = append(b.latencies, lat)
		}
	}
}

// finish closes the last phase with the end-of-run epoch snapshot and
// fixes every bucket's time span.
func (c *collector) finish(epochs map[string]EpochInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	last := c.phases[c.current]
	last.end = c.end
	last.epochs = epochs
	for _, ph := range c.phases {
		ph.b.span = ph.end - ph.start
	}
	// Per-model buckets share the whole window: models deployed mid-run
	// simply offered nothing before their deploy event.
	for _, b := range c.perModel {
		b.span = c.end - c.warmup
	}
}

// phaseResults snapshots the per-phase summaries.
func (c *collector) phaseResults() []PhaseResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PhaseResult, 0, len(c.phases))
	for _, ph := range c.phases {
		out = append(out, PhaseResult{
			Name: ph.name, Start: ph.start, End: ph.end,
			Metrics: ph.b.summarize(), Epochs: ph.epochs,
		})
	}
	return out
}
