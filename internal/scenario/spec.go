// Package scenario is the declarative experiment harness: one JSON spec
// describes a whole serving experiment — the model mix, the traffic shape
// (constant / diurnal / flash-crowd / explicit phases, with optional
// access-trace replay per model), hotness-drift cadence, the measurement
// window and a timeline of injected events (kill or revive a shard
// replica, slow a shard, mid-run admin deploy/undeploy, forced
// repartition, phase markers). The runner stands up a real
// serving.MultiDeployment + Controller, drives Poisson traffic through the
// exported frontend, applies the timeline, and emits one machine-readable
// BENCH_scenario_<name>.json artifact per run (internal/benchio rows:
// p50/p95/p99 latency, achieved vs offered QPS, error rate, and the
// control plane's swap/replan/cache counters) that cmd/scenarioguard diffs
// against a checked-in baseline — so "does it survive a flash crowd with a
// dead replica?" is a config file, not new driver code.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Duration is a time.Duration that unmarshals from JSON strings like
// "750ms" or "4s" (and, for convenience, bare numbers as nanoseconds).
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(raw []byte) error {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(raw, &ns); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"500ms\"")
	}
	*d = Duration(ns)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// D returns the value as a time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// Spec is one declarative scenario. See docs/SCENARIOS.md for the schema
// reference and examples/scenarios/ for checked-in specs.
type Spec struct {
	// Name names the scenario; the artifact is BENCH_scenario_<name>.json.
	Name string `json:"name"`
	// Seed drives every random stream (arrivals, model pick, queries) so
	// a fixed-seed run offers a deterministic request sequence.
	Seed uint64 `json:"seed"`
	// Duration is the total run length; Warmup is the prefix excluded
	// from the measurement window (default: none).
	Duration Duration `json:"duration"`
	Warmup   Duration `json:"warmup"`
	// RequestTimeout bounds each in-flight request (default 5s).
	RequestTimeout Duration `json:"request_timeout"`
	// Models is the mix; entries with Deferred true are defined here but
	// only enter the frontend through a timeline "deploy" event.
	Models []ModelSpec `json:"models"`
	// Traffic is the offered-load shape shared by all models; each
	// arrival is assigned to a model by weight.
	Traffic Traffic `json:"traffic"`
	// Timeline is the injected-event schedule (may be empty).
	Timeline []Event `json:"timeline"`
}

// ModelSpec declares one DLRM variant of the mix. It is the declarative
// face of serving.ModelSpec: the runner instantiates the model from
// (geometry, seed), profiles a window, plans boundaries and builds it.
type ModelSpec struct {
	// Name is the variant name requests address.
	Name string `json:"name"`
	// Rows/Tables/BatchSize/Pooling override the scaled-down RM1
	// geometry (defaults: 12000 rows, 2 tables, RM1 batch/pooling).
	Rows      int64 `json:"rows"`
	Tables    int   `json:"tables"`
	BatchSize int   `json:"batch_size"`
	Pooling   int   `json:"pooling"`
	// Seed selects the variant's parameters and query stream.
	Seed uint64 `json:"seed"`
	// Weight is the variant's share of arrivals (default 1).
	Weight float64 `json:"weight"`
	// WindowQueries sizes the pre-deployment profiling window
	// (default 100 queries per table).
	WindowQueries int `json:"window_queries"`
	// Locality overrides the power-law locality P (default: RM1's).
	Locality float64 `json:"locality"`
	// Trace, when set, replays a recorded access trace (CSV, see
	// internal/workload WriteTrace/ReadTrace; resolved relative to the
	// spec file) as the variant's access distribution instead of the
	// synthetic power law.
	Trace string `json:"trace"`
	// Transport is "tcp" (default: real loopback microservices) or
	// "local" (in-process, used by unit tests).
	Transport string `json:"transport"`
	// Replicas[s] is shard s's initial replica count (nil = 1 each);
	// fault-injection scenarios need >=2 on the shard they kill.
	Replicas []int `json:"replicas"`
	// Batching, when set, fronts the variant with the dynamic batcher.
	Batching *Batching `json:"batching"`
	// Drift, when set, migrates the variant's hot set during the run.
	Drift *Drift `json:"drift"`
	// Autoscale, when set, runs the queue-depth autoscaler over the
	// variant's shard pools: replicas are added/removed from pull-queue
	// pressure alone, within the serving epoch, without a repartition.
	Autoscale *Autoscale `json:"autoscale"`
	// RowCacheBytes, when positive, enables the frontend hot-row cache
	// (gather path v2) with this byte budget; hit/miss/bytes counters
	// surface in the artifact's per-model rows.
	RowCacheBytes int64 `json:"row_cache_bytes"`
	// Deferred defines the variant without deploying it at start.
	Deferred bool `json:"deferred"`
}

// Autoscale configures a variant's queue-depth replica autoscaler (the
// declarative face of serving.QueuePolicy + LiveAutoscaler).
type Autoscale struct {
	// Interval is the control-loop tick (default 1s).
	Interval Duration `json:"interval"`
	// HighDepth scales a shard out when its per-replica queue-depth EWMA
	// exceeds it; LowDepth scales in below it (LowDepth < HighDepth is the
	// hysteresis band).
	HighDepth float64 `json:"high_depth"`
	LowDepth  float64 `json:"low_depth"`
	// Cooldown is the minimum time between scale actions on one shard.
	Cooldown Duration `json:"cooldown"`
	// MaxReplicas caps each shard's scale-out (0 = unlimited).
	MaxReplicas int `json:"max_replicas"`
}

// Batching configures a variant's dynamic batcher.
type Batching struct {
	MaxBatch int      `json:"max_batch"`
	MaxDelay Duration `json:"max_delay"`
}

// Drift schedules hotness migration through workload.DriftingSampler: a
// one-shot shift At, and/or a repeating cadence Every. Each firing
// advances the hot set by Fraction of the table (default 0.5).
type Drift struct {
	At       Duration `json:"at"`
	Every    Duration `json:"every"`
	Fraction float64  `json:"fraction"`
}

// Traffic is the offered-load shape. Shape selects which fields apply:
//
//	constant:    base_qps
//	diurnal:     base_qps .. peak_qps over a sinusoidal period (steps
//	             piecewise-constant levels per period, default 16)
//	flash-crowd: base_qps, spiking to peak_qps at peak_start for
//	             peak_duration
//	phases:      explicit piecewise-constant schedule
type Traffic struct {
	Shape        string   `json:"shape"`
	BaseQPS      float64  `json:"base_qps"`
	PeakQPS      float64  `json:"peak_qps"`
	Period       Duration `json:"period"`
	Steps        int      `json:"steps"`
	PeakStart    Duration `json:"peak_start"`
	PeakDuration Duration `json:"peak_duration"`
	Phases       []Phase  `json:"phases"`
}

// Phase is one step of an explicit traffic schedule.
type Phase struct {
	Start Duration `json:"start"`
	QPS   float64  `json:"qps"`
}

// Event actions.
const (
	// ActionKillReplica marks one replica of a shard pool dead: requests
	// round-robined onto it fail and the pool's request-level failover
	// retries the survivors (serving.ReplicaPool.KillReplica).
	ActionKillReplica = "kill-replica"
	// ActionReviveReplica brings a killed replica back.
	ActionReviveReplica = "revive-replica"
	// ActionSlowShard injects Delay into every gather through a shard's
	// pool (Delay 0 removes the injection).
	ActionSlowShard = "slow-shard"
	// ActionDeploy deploys a Deferred model over the admin API mid-run.
	ActionDeploy = "deploy"
	// ActionUndeploy drains a model out over the admin API mid-run.
	ActionUndeploy = "undeploy"
	// ActionRepartition forces a profile -> replan -> zero-downtime swap
	// for one model.
	ActionRepartition = "repartition"
	// ActionDrift advances a model's hot set by Fraction of its rows.
	ActionDrift = "drift"
	// ActionPhase marks a measurement-phase boundary: the collector
	// closes the current phase and opens one named Label. An at-0 phase
	// event names the first phase.
	ActionPhase = "phase"
	// ActionScale is recorded (never scheduled) when a model's queue-depth
	// autoscaler adds or removes a shard replica during the run; it is not
	// a valid timeline action.
	ActionScale = "scale"
)

// Event is one timeline entry. At is relative to run start; fields beyond
// (At, Action) apply per action.
type Event struct {
	At     Duration `json:"at"`
	Action string   `json:"action"`
	// Model targets a variant (every action except phase).
	Model string `json:"model"`
	// Table/Shard/Replica address a shard pool replica
	// (kill-replica / revive-replica / slow-shard; Replica unused by
	// slow-shard).
	Table   int `json:"table"`
	Shard   int `json:"shard"`
	Replica int `json:"replica"`
	// Delay is the injected gather latency (slow-shard).
	Delay Duration `json:"delay"`
	// Fraction is the hot-set advance as a fraction of rows (drift;
	// default 0.5, may be negative to shift back).
	Fraction float64 `json:"fraction"`
	// Label names the phase a phase event opens.
	Label string `json:"label"`
}

var nameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]*$`)

// knownActions gates Event.Action at parse time.
var knownActions = map[string]bool{
	ActionKillReplica:   true,
	ActionReviveReplica: true,
	ActionSlowShard:     true,
	ActionDeploy:        true,
	ActionUndeploy:      true,
	ActionRepartition:   true,
	ActionDrift:         true,
	ActionPhase:         true,
}

// Parse decodes and validates a spec from JSON. Unknown keys anywhere in
// the document are rejected — a typoed field must fail the run, not
// silently revert to a default.
func Parse(raw []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	spec := &Spec{}
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("scenario: trailing data after spec document")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ParseFile loads a spec from path; relative model trace paths resolve
// against the spec file's directory.
func ParseFile(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	dir := filepath.Dir(path)
	for i := range spec.Models {
		if t := spec.Models[i].Trace; t != "" && !filepath.IsAbs(t) {
			spec.Models[i].Trace = filepath.Join(dir, t)
		}
	}
	return spec, nil
}

// Validate checks the spec's internal consistency: names, geometry,
// traffic-shape parameters, and that every timeline event is inside the
// run, has a known action, and targets a declared model.
func (s *Spec) Validate() error {
	if !nameRe.MatchString(s.Name) {
		return fmt.Errorf("scenario: name %q must match %s", s.Name, nameRe)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario %s: duration must be positive", s.Name)
	}
	if s.Warmup < 0 || s.Warmup.D() >= s.Duration.D() {
		return fmt.Errorf("scenario %s: warmup %v must be in [0, duration)", s.Name, s.Warmup.D())
	}
	if s.RequestTimeout < 0 {
		return fmt.Errorf("scenario %s: request_timeout must not be negative", s.Name)
	}
	if len(s.Models) == 0 {
		return fmt.Errorf("scenario %s: needs at least one model", s.Name)
	}
	models := map[string]*ModelSpec{}
	active := 0
	for i := range s.Models {
		m := &s.Models[i]
		if !nameRe.MatchString(m.Name) {
			return fmt.Errorf("scenario %s: model name %q must match %s", s.Name, m.Name, nameRe)
		}
		if models[m.Name] != nil {
			return fmt.Errorf("scenario %s: duplicate model %q", s.Name, m.Name)
		}
		models[m.Name] = m
		if m.Rows < 0 || m.Tables < 0 || m.BatchSize < 0 || m.Pooling < 0 || m.WindowQueries < 0 {
			return fmt.Errorf("scenario %s: model %q: geometry fields must not be negative", s.Name, m.Name)
		}
		if m.Weight < 0 {
			return fmt.Errorf("scenario %s: model %q: weight must not be negative", s.Name, m.Name)
		}
		if m.Locality < 0 || m.Locality > 1 {
			return fmt.Errorf("scenario %s: model %q: locality must be in [0,1]", s.Name, m.Name)
		}
		switch m.Transport {
		case "", "local", "tcp":
		default:
			return fmt.Errorf("scenario %s: model %q: transport must be local or tcp", s.Name, m.Name)
		}
		for si, r := range m.Replicas {
			if r < 0 {
				return fmt.Errorf("scenario %s: model %q: replicas[%d] must not be negative", s.Name, m.Name, si)
			}
		}
		if m.Drift != nil {
			if m.Drift.At < 0 || m.Drift.Every < 0 {
				return fmt.Errorf("scenario %s: model %q: drift times must not be negative", s.Name, m.Name)
			}
			if m.Drift.At == 0 && m.Drift.Every == 0 {
				return fmt.Errorf("scenario %s: model %q: drift needs at or every", s.Name, m.Name)
			}
		}
		if a := m.Autoscale; a != nil {
			if a.HighDepth <= 0 {
				return fmt.Errorf("scenario %s: model %q: autoscale high_depth must be positive", s.Name, m.Name)
			}
			if a.LowDepth < 0 || a.LowDepth >= a.HighDepth {
				return fmt.Errorf("scenario %s: model %q: autoscale low_depth must be in [0, high_depth)", s.Name, m.Name)
			}
			if a.Interval < 0 || a.Cooldown < 0 {
				return fmt.Errorf("scenario %s: model %q: autoscale times must not be negative", s.Name, m.Name)
			}
			if a.MaxReplicas < 0 {
				return fmt.Errorf("scenario %s: model %q: autoscale max_replicas must not be negative", s.Name, m.Name)
			}
		}
		if m.RowCacheBytes < 0 {
			return fmt.Errorf("scenario %s: model %q: row_cache_bytes must not be negative", s.Name, m.Name)
		}
		if !m.Deferred {
			active++
		}
	}
	if active == 0 {
		return fmt.Errorf("scenario %s: every model is deferred; nothing to serve at start", s.Name)
	}
	if err := s.Traffic.validate(s); err != nil {
		return err
	}
	for i := range s.Timeline {
		e := &s.Timeline[i]
		if e.At < 0 || e.At.D() >= s.Duration.D() {
			return fmt.Errorf("scenario %s: timeline[%d]: at %v outside [0, %v)", s.Name, i, e.At.D(), s.Duration.D())
		}
		if !knownActions[e.Action] {
			return fmt.Errorf("scenario %s: timeline[%d]: unknown action %q", s.Name, i, e.Action)
		}
		if e.Action == ActionPhase {
			if e.Label == "" {
				return fmt.Errorf("scenario %s: timeline[%d]: phase needs a label", s.Name, i)
			}
			continue
		}
		m := models[e.Model]
		if m == nil {
			return fmt.Errorf("scenario %s: timeline[%d]: %s targets undeclared model %q", s.Name, i, e.Action, e.Model)
		}
		switch e.Action {
		case ActionKillReplica, ActionReviveReplica, ActionSlowShard:
			if e.Table < 0 || e.Shard < 0 || e.Replica < 0 {
				return fmt.Errorf("scenario %s: timeline[%d]: table/shard/replica must not be negative", s.Name, i)
			}
			if e.Delay < 0 {
				return fmt.Errorf("scenario %s: timeline[%d]: delay must not be negative", s.Name, i)
			}
		case ActionDeploy:
			if !m.Deferred {
				return fmt.Errorf("scenario %s: timeline[%d]: deploy targets %q, which is already deployed at start (mark it deferred)", s.Name, i, e.Model)
			}
		}
	}
	return nil
}

// sortedTimeline returns the timeline ordered by At, preserving spec
// order for same-instant events.
func (s *Spec) sortedTimeline() []Event {
	out := append([]Event(nil), s.Timeline...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Scale returns a copy with every time in the spec (duration, warmup,
// traffic schedule, drift cadence, timeline) multiplied by f — how short
// mode compresses a scenario without changing its shape. Rates (QPS) are
// untouched, so metrics stay comparable across scales.
func (s *Spec) Scale(f float64) *Spec {
	scale := func(d Duration) Duration { return Duration(float64(d) * f) }
	out := *s
	out.Duration = scale(s.Duration)
	out.Warmup = scale(s.Warmup)
	out.Traffic.Period = scale(s.Traffic.Period)
	out.Traffic.PeakStart = scale(s.Traffic.PeakStart)
	out.Traffic.PeakDuration = scale(s.Traffic.PeakDuration)
	out.Traffic.Phases = append([]Phase(nil), s.Traffic.Phases...)
	for i := range out.Traffic.Phases {
		out.Traffic.Phases[i].Start = scale(out.Traffic.Phases[i].Start)
	}
	out.Models = append([]ModelSpec(nil), s.Models...)
	for i := range out.Models {
		if d := out.Models[i].Drift; d != nil {
			scaled := *d
			scaled.At = scale(d.At)
			scaled.Every = scale(d.Every)
			out.Models[i].Drift = &scaled
		}
		if a := out.Models[i].Autoscale; a != nil {
			scaled := *a
			scaled.Interval = scale(a.Interval)
			scaled.Cooldown = scale(a.Cooldown)
			out.Models[i].Autoscale = &scaled
		}
	}
	out.Timeline = append([]Event(nil), s.Timeline...)
	for i := range out.Timeline {
		out.Timeline[i].At = scale(out.Timeline[i].At)
	}
	return &out
}

// validate checks the traffic block against the run duration.
func (t *Traffic) validate(s *Spec) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %s: traffic: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if t.BaseQPS < 0 || t.PeakQPS < 0 {
		return bad("QPS values must not be negative")
	}
	switch t.Shape {
	case "constant":
		if t.BaseQPS <= 0 {
			return bad("constant shape needs base_qps > 0")
		}
	case "diurnal":
		if t.BaseQPS <= 0 || t.PeakQPS < t.BaseQPS {
			return bad("diurnal shape needs base_qps > 0 and peak_qps >= base_qps")
		}
		if t.Period <= 0 {
			return bad("diurnal shape needs a positive period")
		}
		if t.Steps < 0 {
			return bad("steps must not be negative")
		}
	case "flash-crowd":
		if t.BaseQPS <= 0 || t.PeakQPS < t.BaseQPS {
			return bad("flash-crowd shape needs base_qps > 0 and peak_qps >= base_qps")
		}
		if t.PeakDuration <= 0 {
			return bad("flash-crowd shape needs a positive peak_duration")
		}
		if t.PeakStart < 0 || t.PeakStart.D()+t.PeakDuration.D() > s.Duration.D() {
			return bad("flash-crowd peak [%v, %v) must fit inside the run", t.PeakStart.D(), t.PeakStart.D()+t.PeakDuration.D())
		}
	case "phases":
		if len(t.Phases) == 0 {
			return bad("phases shape needs at least one phase")
		}
		first := t.Phases[0].Start
		for i, p := range t.Phases {
			if p.QPS < 0 {
				return bad("phase %d has negative qps", i)
			}
			if p.Start < 0 || p.Start.D() >= s.Duration.D() {
				return bad("phase %d start %v outside [0, %v)", i, p.Start.D(), s.Duration.D())
			}
			if p.Start < first {
				first = p.Start
			}
		}
		if first != 0 {
			return bad("one phase must start at 0")
		}
	case "":
		return bad("shape is required (constant | diurnal | flash-crowd | phases)")
	default:
		return bad("unknown shape %q", t.Shape)
	}
	return nil
}
