// Package sim is a minimal discrete-event simulation engine: a virtual
// clock and a priority queue of timed events. The cluster simulator uses
// it to drive query arrivals, autoscaler control loops and pod cold-start
// timers for the Fig. 19 dynamic-traffic experiment without consuming
// wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled at a virtual time.
type Event struct {
	At time.Duration
	Fn func(now time.Duration)

	seq   uint64 // FIFO tie-break for simultaneous events
	index int    // heap bookkeeping
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine owns the virtual clock and event queue. It is single-threaded:
// event callbacks run sequentially in timestamp order and may schedule
// further events.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	nextSeq uint64
	stopped bool
}

// New creates an engine with the clock at zero.
func New() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn at absolute virtual time t; scheduling in the past is an
// error (it would reorder causality).
func (e *Engine) At(t time.Duration, fn func(now time.Duration)) error {
	if t < e.now {
		return fmt.Errorf("sim: scheduling at %v before now %v", t, e.now)
	}
	if fn == nil {
		return fmt.Errorf("sim: nil event callback")
	}
	ev := &Event{At: t, Fn: fn, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return nil
}

// After schedules fn delay after the current virtual time.
func (e *Engine) After(delay time.Duration, fn func(now time.Duration)) error {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// Every schedules fn at period intervals starting at start, until the
// engine stops or the horizon passes (fn returning false also stops the
// series).
func (e *Engine) Every(start, period time.Duration, horizon time.Duration, fn func(now time.Duration) bool) error {
	if period <= 0 {
		return fmt.Errorf("sim: non-positive period %v", period)
	}
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		if !fn(now) {
			return
		}
		next := now + period
		if next > horizon {
			return
		}
		// Scheduling from inside a callback cannot fail: next >= now.
		_ = e.At(next, tick)
	}
	return e.At(start, tick)
}

// Stop halts the run loop after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or the horizon is reached,
// and returns the final virtual time.
func (e *Engine) Run(horizon time.Duration) time.Duration {
	e.stopped = false
	for e.queue.Len() > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.At > horizon {
			e.now = horizon
			return e.now
		}
		e.now = ev.At
		ev.Fn(e.now)
	}
	if e.now < horizon && e.queue.Len() == 0 {
		e.now = horizon
	}
	return e.now
}

// Pending returns the number of queued events (diagnostics/tests).
func (e *Engine) Pending() int { return e.queue.Len() }
