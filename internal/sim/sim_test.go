package sim

import (
	"testing"
	"time"
)

func TestEventsRunInTimestampOrder(t *testing.T) {
	e := New()
	var order []int
	_ = e.At(3*time.Second, func(time.Duration) { order = append(order, 3) })
	_ = e.At(1*time.Second, func(time.Duration) { order = append(order, 1) })
	_ = e.At(2*time.Second, func(time.Duration) { order = append(order, 2) })
	e.Run(time.Minute)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		_ = e.At(time.Second, func(time.Duration) { order = append(order, i) })
	}
	e.Run(time.Minute)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO broken: %v", order)
		}
	}
}

func TestSchedulingInPastFails(t *testing.T) {
	e := New()
	_ = e.At(5*time.Second, func(now time.Duration) {
		if err := e.At(time.Second, func(time.Duration) {}); err == nil {
			t.Error("scheduling in the past must fail")
		}
	})
	e.Run(time.Minute)
}

func TestNilCallbackFails(t *testing.T) {
	e := New()
	if err := e.At(time.Second, nil); err == nil {
		t.Fatal("want error for nil callback")
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	var at time.Duration
	_ = e.At(7*time.Second, func(now time.Duration) { at = now })
	end := e.Run(time.Minute)
	if at != 7*time.Second {
		t.Fatalf("callback saw now=%v", at)
	}
	if end != time.Minute {
		t.Fatalf("Run returned %v, want horizon", end)
	}
	if e.Now() != time.Minute {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestHorizonStopsEvents(t *testing.T) {
	e := New()
	ran := false
	_ = e.At(2*time.Minute, func(time.Duration) { ran = true })
	e.Run(time.Minute)
	if ran {
		t.Fatal("event past horizon must not run")
	}
	if e.Pending() != 0 {
		// The event was popped and dropped (or retained); either way it
		// must not have run. Pending may be 0 after popping.
		t.Logf("pending = %d", e.Pending())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New()
	var seen []time.Duration
	_ = e.At(10*time.Second, func(now time.Duration) {
		_ = e.After(5*time.Second, func(now2 time.Duration) { seen = append(seen, now2) })
	})
	e.Run(time.Minute)
	if len(seen) != 1 || seen[0] != 15*time.Second {
		t.Fatalf("seen = %v", seen)
	}
	// Negative delay clamps to now.
	e2 := New()
	_ = e2.After(-time.Second, func(now time.Duration) {
		if now != 0 {
			t.Errorf("clamped delay ran at %v", now)
		}
	})
	e2.Run(time.Second)
}

func TestEveryPeriodic(t *testing.T) {
	e := New()
	var ticks []time.Duration
	err := e.Every(0, 10*time.Second, time.Minute, func(now time.Duration) bool {
		ticks = append(ticks, now)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(time.Minute)
	if len(ticks) != 7 { // 0,10,...,60
		t.Fatalf("ticks = %v", ticks)
	}
}

func TestEveryStopsWhenCallbackReturnsFalse(t *testing.T) {
	e := New()
	n := 0
	_ = e.Every(0, time.Second, time.Minute, func(time.Duration) bool {
		n++
		return n < 3
	})
	e.Run(time.Minute)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestEveryValidation(t *testing.T) {
	e := New()
	if err := e.Every(0, 0, time.Minute, func(time.Duration) bool { return true }); err == nil {
		t.Fatal("want error for zero period")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := New()
	n := 0
	_ = e.Every(0, time.Second, time.Hour, func(time.Duration) bool {
		n++
		if n == 5 {
			e.Stop()
		}
		return true
	})
	e.Run(time.Hour)
	if n != 5 {
		t.Fatalf("ran %d ticks, want stop at 5", n)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New()
	depth := 0
	var rec func(now time.Duration)
	rec = func(now time.Duration) {
		depth++
		if depth < 10 {
			_ = e.After(time.Second, rec)
		}
	}
	_ = e.At(0, rec)
	e.Run(time.Minute)
	if depth != 10 {
		t.Fatalf("depth = %d", depth)
	}
}
