// Package workload generates the query traffic the paper serves: power-law
// embedding-table access patterns calibrated to the locality metric P
// (the fraction of accesses covered by the hottest 10% of rows, Sec. V-C),
// batched index/offset queries, dataset-shaped presets for Fig. 6, and the
// dynamic traffic staircase of Fig. 19.
package workload

import (
	"fmt"
	"math"

	"repro/internal/embedding"
)

// RNG is a deterministic splitmix64 pseudo-random generator. The workload
// package uses it everywhere so experiments are reproducible run-to-run.
type RNG struct{ state uint64 }

// NewRNG creates a generator from a seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) / float64(1<<53) }

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int64) int64 {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with mean 1, used
// for Poisson inter-arrival times.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Sampler produces table row *ranks*: rank 0 is the hottest row. Callers
// that model an unsorted production table (Fig. 8a) compose a Sampler with
// an IDMapping that scatters ranks across physical row IDs.
type Sampler interface {
	// SampleRank draws one rank in [0, Rows()).
	SampleRank(r *RNG) int64
	// Rows returns the table size the sampler targets.
	Rows() int64
}

// PowerLawSampler draws ranks from a two-segment truncated power law:
// with probability P the rank falls in the hot segment (the top 10% of
// rows) and otherwise in the cold segment; within each segment ranks decay
// as (rank+1)^-s. This directly realises the paper's locality metric while
// keeping the Fig. 6 power-law shape, and admits O(1)-memory closed-form
// inverse-transform sampling even for 20M-row tables.
type PowerLawSampler struct {
	rows     int64
	hotRows  int64
	p        float64 // probability of hitting the hot segment
	exponent float64
}

// HotFraction is the rank fraction the paper's locality metric is defined
// over: P is the share of accesses landing in the top 10% of rows.
const HotFraction = 0.10

// NewPowerLawSampler builds a sampler over rows rows with locality p
// (0 < p <= 1) and intra-segment Zipf exponent s (s >= 0; 0.9 gives
// realistic curves). It returns an error for degenerate geometries.
func NewPowerLawSampler(rows int64, p, s float64) (*PowerLawSampler, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("workload: sampler needs rows > 0, got %d", rows)
	}
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("workload: locality P must be in (0,1], got %v", p)
	}
	if s < 0 {
		return nil, fmt.Errorf("workload: exponent must be >= 0, got %v", s)
	}
	hot := int64(float64(rows) * HotFraction)
	if hot < 1 {
		hot = 1
	}
	if hot >= rows {
		hot = rows - 1
		if hot < 1 { // single-row table: everything is hot
			hot = rows
		}
	}
	return &PowerLawSampler{rows: rows, hotRows: hot, p: p, exponent: s}, nil
}

// Rows implements Sampler.
func (z *PowerLawSampler) Rows() int64 { return z.rows }

// LocalityP returns the configured locality target.
func (z *PowerLawSampler) LocalityP() float64 { return z.p }

// SampleRank implements Sampler.
func (z *PowerLawSampler) SampleRank(r *RNG) int64 {
	if z.rows == 1 {
		return 0
	}
	if r.Float64() < z.p {
		return sampleTruncZipf(r, 0, z.hotRows, z.exponent)
	}
	return sampleTruncZipf(r, z.hotRows, z.rows, z.exponent)
}

// sampleTruncZipf draws a rank in [lo, hi) with pmf proportional to
// (rank-lo+1)^-s via the continuous-approximation inverse transform. For
// s == 0 it degenerates to uniform.
func sampleTruncZipf(r *RNG, lo, hi int64, s float64) int64 {
	n := float64(hi - lo)
	if n <= 1 {
		return lo
	}
	u := r.Float64()
	var x float64
	switch {
	case s == 0:
		x = u * n
	case math.Abs(s-1) < 1e-9:
		// CDF(x) = ln(1+x)/ln(1+n)
		x = math.Expm1(u * math.Log1p(n))
	default:
		// CDF(x) = ((1+x)^(1-s) - 1) / ((1+n)^(1-s) - 1)
		a := 1 - s
		x = math.Pow(u*(math.Pow(1+n, a)-1)+1, 1/a) - 1
	}
	rank := lo + int64(x)
	if rank >= hi {
		rank = hi - 1
	}
	if rank < lo {
		rank = lo
	}
	return rank
}

// segmentCDF returns the fraction of intra-segment probability mass covered
// by the first x of n ranks under exponent s (continuous approximation).
func segmentCDF(x, n, s float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= n {
		return 1
	}
	switch {
	case s == 0:
		return x / n
	case math.Abs(s-1) < 1e-9:
		return math.Log1p(x) / math.Log1p(n)
	default:
		a := 1 - s
		return (math.Pow(1+x, a) - 1) / (math.Pow(1+n, a) - 1)
	}
}

// AnalyticCDF is the closed-form cumulative access distribution of a
// PowerLawSampler over the hotness-sorted table. It satisfies the same
// shape contract as embedding.CDF (At / RangeProbability / Rows) without
// materialising per-row arrays, which lets Algorithm 1 run at the paper's
// 20M-row scale in O(1) memory.
type AnalyticCDF struct {
	rows    int64
	hotRows int64
	p       float64
	s       float64
}

// Analytic returns the closed-form CDF matching the sampler's distribution.
func (z *PowerLawSampler) Analytic() *AnalyticCDF {
	return &AnalyticCDF{rows: z.rows, hotRows: z.hotRows, p: z.p, s: z.exponent}
}

// Rows returns the number of table rows covered.
func (c *AnalyticCDF) Rows() int64 { return c.rows }

// At returns the fraction of accesses covered by sorted rows [0, j).
func (c *AnalyticCDF) At(j int64) float64 {
	if j <= 0 {
		return 0
	}
	if j >= c.rows {
		return 1
	}
	if c.hotRows >= c.rows {
		return segmentCDF(float64(j), float64(c.rows), c.s)
	}
	if j <= c.hotRows {
		return c.p * segmentCDF(float64(j), float64(c.hotRows), c.s)
	}
	cold := segmentCDF(float64(j-c.hotRows), float64(c.rows-c.hotRows), c.s)
	return c.p + (1-c.p)*cold
}

// RangeProbability returns the fraction of accesses in sorted rows [k, j).
func (c *AnalyticCDF) RangeProbability(k, j int64) float64 {
	p := c.At(j) - c.At(k)
	if p < 0 {
		return 0
	}
	return p
}

// IDMapping maps hotness ranks to physical row IDs. The identity mapping
// models an already-sorted table (Fig. 8b); a shuffled mapping models the
// production layout where hot rows are scattered (Fig. 8a).
type IDMapping interface {
	// RowOf returns the physical row ID of the given hotness rank.
	RowOf(rank int64) int64
	// Rows returns the table size.
	Rows() int64
}

// IdentityMapping maps rank i to row i.
type IdentityMapping int64

// RowOf implements IDMapping.
func (m IdentityMapping) RowOf(rank int64) int64 { return rank }

// Rows implements IDMapping.
func (m IdentityMapping) Rows() int64 { return int64(m) }

// ShuffledMapping is a deterministic pseudo-random permutation of ranks to
// rows built with a Fisher-Yates shuffle.
type ShuffledMapping struct {
	rowOf []int64 // rowOf[rank] = physical row
}

// NewShuffledMapping builds a permutation of [0, rows) from the seed.
func NewShuffledMapping(rows int64, seed uint64) *ShuffledMapping {
	perm := make([]int64, rows)
	for i := range perm {
		perm[i] = int64(i)
	}
	r := NewRNG(seed)
	for i := rows - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return &ShuffledMapping{rowOf: perm}
}

// RowOf implements IDMapping.
func (m *ShuffledMapping) RowOf(rank int64) int64 { return m.rowOf[rank] }

// Rows implements IDMapping.
func (m *ShuffledMapping) Rows() int64 { return int64(len(m.rowOf)) }

// RankOf returns the inverse mapping (physical row -> hotness rank). It is
// O(rows) and intended for test assertions, not hot paths.
func (m *ShuffledMapping) RankOf(row int64) int64 {
	for rank, r := range m.rowOf {
		if r == row {
			return int64(rank)
		}
	}
	return -1
}

// QueryGenerator produces embedding.Batch lookups for one table: BatchSize
// inputs per query, each gathering Pooling rows drawn from the sampler and
// translated through the ID mapping.
type QueryGenerator struct {
	Sampler   Sampler
	Mapping   IDMapping
	BatchSize int
	Pooling   int
	rng       *RNG
}

// NewQueryGenerator wires a generator; mapping may be nil for the identity
// mapping (sorted-table layout).
func NewQueryGenerator(s Sampler, mapping IDMapping, batchSize, pooling int, seed uint64) (*QueryGenerator, error) {
	if batchSize <= 0 || pooling <= 0 {
		return nil, fmt.Errorf("workload: batchSize and pooling must be positive (got %d, %d)", batchSize, pooling)
	}
	if mapping == nil {
		mapping = IdentityMapping(s.Rows())
	}
	if mapping.Rows() != s.Rows() {
		return nil, fmt.Errorf("workload: mapping rows %d != sampler rows %d", mapping.Rows(), s.Rows())
	}
	return &QueryGenerator{Sampler: s, Mapping: mapping, BatchSize: batchSize, Pooling: pooling, rng: NewRNG(seed)}, nil
}

// Next generates the next batch.
func (g *QueryGenerator) Next() *embedding.Batch {
	total := g.BatchSize * g.Pooling
	b := &embedding.Batch{
		Indices: make([]int64, 0, total),
		Offsets: make([]int32, g.BatchSize),
	}
	for i := 0; i < g.BatchSize; i++ {
		b.Offsets[i] = int32(len(b.Indices))
		for k := 0; k < g.Pooling; k++ {
			rank := g.Sampler.SampleRank(g.rng)
			b.Indices = append(b.Indices, g.Mapping.RowOf(rank))
		}
	}
	return b
}

// NextRanks generates a batch expressed directly in hotness ranks,
// bypassing the ID mapping. Used when driving sorted (post-preprocessing)
// tables and the utility experiments.
func (g *QueryGenerator) NextRanks() *embedding.Batch {
	total := g.BatchSize * g.Pooling
	b := &embedding.Batch{
		Indices: make([]int64, 0, total),
		Offsets: make([]int32, g.BatchSize),
	}
	for i := 0; i < g.BatchSize; i++ {
		b.Offsets[i] = int32(len(b.Indices))
		for k := 0; k < g.Pooling; k++ {
			b.Indices = append(b.Indices, g.Sampler.SampleRank(g.rng))
		}
	}
	return b
}
