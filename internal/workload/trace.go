package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/embedding"
)

// This file provides CSV trace interchange: per-row access counts can be
// exported from a profiling window and re-imported later, standing in for
// the production access-history pipelines the paper cites ([37], [52]).
// The format is two columns: row ID, access count; rows with zero counts
// may be omitted.

// WriteTrace exports access statistics as CSV.
func WriteTrace(w io.Writer, stats *embedding.AccessStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"row", "count"}); err != nil {
		return fmt.Errorf("workload: writing trace header: %w", err)
	}
	for row, count := range stats.Counts {
		if count == 0 {
			continue
		}
		rec := []string{strconv.Itoa(row), strconv.FormatInt(count, 10)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing trace row %d: %w", row, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace imports a CSV trace into access statistics for a table with
// the given row count. Unknown rows and malformed records are errors; the
// header line is required.
func ReadTrace(r io.Reader, rows int64) (*embedding.AccessStats, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if header[0] != "row" || header[1] != "count" {
		return nil, fmt.Errorf("workload: unexpected trace header %v", header)
	}
	stats := embedding.NewAccessStats(rows)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("workload: reading trace line %d: %w", line, err)
		}
		row, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad row %q", line, rec[0])
		}
		count, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad count %q", line, rec[1])
		}
		if row < 0 || row >= rows {
			return nil, fmt.Errorf("workload: trace line %d: row %d outside table of %d rows", line, row, rows)
		}
		if count < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative count %d", line, count)
		}
		stats.Counts[row] += count
		stats.Total += count
	}
	return stats, nil
}

// SynthesizeTrace draws `draws` accesses from a sampler (through an
// optional ID mapping) and returns the resulting statistics — a synthetic
// stand-in for a production trace with a known locality.
func SynthesizeTrace(s Sampler, mapping IDMapping, draws int64, seed uint64) (*embedding.AccessStats, error) {
	if mapping == nil {
		mapping = IdentityMapping(s.Rows())
	}
	if mapping.Rows() != s.Rows() {
		return nil, fmt.Errorf("workload: mapping rows %d != sampler rows %d", mapping.Rows(), s.Rows())
	}
	stats := embedding.NewAccessStats(s.Rows())
	rng := NewRNG(seed)
	for i := int64(0); i < draws; i++ {
		row := mapping.RowOf(s.SampleRank(rng))
		if err := stats.Record(row); err != nil {
			return nil, err
		}
	}
	return stats, nil
}
