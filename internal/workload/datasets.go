package workload

import "fmt"

// DatasetShape describes the access-distribution geometry of one of the
// real-world datasets the paper plots in Fig. 6. Rows is the number of
// distinct embedding vectors (sorted-vector-ID axis), LocalityP the share
// of accesses covered by the hottest 10% of rows, and Exponent the
// intra-segment power-law decay.
type DatasetShape struct {
	Name      string
	Rows      int64
	LocalityP float64
	Exponent  float64
}

// The three Fig. 6 datasets. Row counts follow the paper's axes (~2M for
// Amazon Books and Criteo, ~50K for MovieLens); MovieLens' P=94% is quoted
// directly in Sec. V-C, the others are set to the paper's default P=90%.
var (
	AmazonBooks = DatasetShape{Name: "amazon-books", Rows: 2_000_000, LocalityP: 0.90, Exponent: 1.05}
	Criteo      = DatasetShape{Name: "criteo", Rows: 2_000_000, LocalityP: 0.90, Exponent: 0.95}
	MovieLens   = DatasetShape{Name: "movielens", Rows: 50_000, LocalityP: 0.94, Exponent: 1.10}
)

// Datasets lists the Fig. 6 presets in paper order.
func Datasets() []DatasetShape { return []DatasetShape{AmazonBooks, Criteo, MovieLens} }

// Sampler builds the power-law sampler realising the dataset's shape.
func (d DatasetShape) Sampler() (*PowerLawSampler, error) {
	s, err := NewPowerLawSampler(d.Rows, d.LocalityP, d.Exponent)
	if err != nil {
		return nil, fmt.Errorf("workload: dataset %s: %w", d.Name, err)
	}
	return s, nil
}

// AccessFrequencies simulates draws accesses from the dataset's sampler
// (scaled down to sampleRows rows when sampleRows > 0, preserving shape)
// and returns the sorted per-row access frequencies normalised to
// percentages — the exact series Fig. 6 plots on a log axis.
func (d DatasetShape) AccessFrequencies(draws int64, sampleRows int64, seed uint64) ([]float64, error) {
	rows := d.Rows
	if sampleRows > 0 && sampleRows < rows {
		rows = sampleRows
	}
	s, err := NewPowerLawSampler(rows, d.LocalityP, d.Exponent)
	if err != nil {
		return nil, err
	}
	counts := make([]int64, rows)
	r := NewRNG(seed)
	for i := int64(0); i < draws; i++ {
		counts[s.SampleRank(r)]++
	}
	// Ranks are already hotness-ordered in expectation, but finite sampling
	// jitters the order; sort descending for the plot.
	sortDescInt64(counts)
	out := make([]float64, rows)
	for i, c := range counts {
		out[i] = 100 * float64(c) / float64(draws)
	}
	return out, nil
}

func sortDescInt64(v []int64) {
	// Simple bottom-up merge sort to avoid importing sort for a hot loop;
	// clarity over micro-optimisation: delegate to sort.Slice equivalent.
	quickSortDesc(v, 0, len(v)-1)
}

func quickSortDesc(v []int64, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 { // insertion sort for small ranges
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && v[j] > v[j-1]; j-- {
					v[j], v[j-1] = v[j-1], v[j]
				}
			}
			return
		}
		mid := v[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for v[i] > mid {
				i++
			}
			for v[j] < mid {
				j--
			}
			if i <= j {
				v[i], v[j] = v[j], v[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j-lo < hi-i {
			quickSortDesc(v, lo, j)
			lo = i
		} else {
			quickSortDesc(v, i, hi)
			hi = j
		}
	}
}
