package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	s, err := NewPowerLawSampler(1000, 0.9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := SynthesizeTrace(s, NewShuffledMapping(1000, 3), 50_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, stats); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if back.Total != stats.Total {
		t.Fatalf("total %d != %d", back.Total, stats.Total)
	}
	for i := range stats.Counts {
		if back.Counts[i] != stats.Counts[i] {
			t.Fatalf("row %d: %d != %d", i, back.Counts[i], stats.Counts[i])
		}
	}
	// Locality survives the round trip.
	if back.LocalityP() != stats.LocalityP() {
		t.Fatal("locality changed through trace IO")
	}
}

func TestReadTraceValidation(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"bad header", "a,b\n1,2\n"},
		{"bad row", "row,count\nx,2\n"},
		{"bad count", "row,count\n1,y\n"},
		{"row out of range", "row,count\n100,2\n"},
		{"negative count", "row,count\n1,-2\n"},
		{"wrong fields", "row,count\n1\n"},
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c.csv), 10); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	if _, err := ReadTrace(strings.NewReader(""), 10); err == nil {
		t.Error("empty input: want header error")
	}
}

func TestReadTraceAccumulatesDuplicates(t *testing.T) {
	in := "row,count\n3,5\n3,7\n"
	stats, err := ReadTrace(strings.NewReader(in), 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counts[3] != 12 || stats.Total != 12 {
		t.Fatalf("counts=%v total=%d", stats.Counts, stats.Total)
	}
}

func TestWriteTraceSkipsZeroRows(t *testing.T) {
	s, _ := NewPowerLawSampler(100, 0.9, 0.9)
	stats, err := SynthesizeTrace(s, nil, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, stats); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	// Header + at most 10 non-zero rows.
	if lines > 11 {
		t.Fatalf("trace has %d lines for 10 draws", lines)
	}
}

func TestSynthesizeTraceValidation(t *testing.T) {
	s, _ := NewPowerLawSampler(100, 0.9, 0.9)
	if _, err := SynthesizeTrace(s, IdentityMapping(50), 10, 1); err == nil {
		t.Fatal("want mapping mismatch error")
	}
}

func TestSynthesizeTraceLocality(t *testing.T) {
	s, _ := NewPowerLawSampler(10_000, 0.9, 0.9)
	stats, err := SynthesizeTrace(s, nil, 200_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p := stats.LocalityP(); p < 0.87 || p > 0.95 {
		t.Fatalf("locality %v, want ~0.9", p)
	}
}
