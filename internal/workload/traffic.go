package workload

import (
	"fmt"
	"sort"
	"time"
)

// TrafficPhase is one step of a piecewise-constant traffic pattern: from
// Start onward the offered load is TargetQPS until the next phase begins.
type TrafficPhase struct {
	Start     time.Duration
	TargetQPS float64
}

// TrafficPattern is a piecewise-constant offered-load schedule, e.g. the
// Fig. 19 staircase. Phases must be sorted by Start; NewTrafficPattern
// enforces this.
type TrafficPattern struct {
	phases []TrafficPhase
	total  time.Duration
}

// NewTrafficPattern validates and constructs a pattern lasting total.
func NewTrafficPattern(phases []TrafficPhase, total time.Duration) (*TrafficPattern, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: traffic pattern needs at least one phase")
	}
	sorted := make([]TrafficPhase, len(phases))
	copy(sorted, phases)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	if sorted[0].Start != 0 {
		return nil, fmt.Errorf("workload: first phase must start at 0, got %v", sorted[0].Start)
	}
	for i, p := range sorted {
		if p.TargetQPS < 0 {
			return nil, fmt.Errorf("workload: phase %d has negative QPS %v", i, p.TargetQPS)
		}
		if i > 0 && p.Start == sorted[i-1].Start {
			return nil, fmt.Errorf("workload: duplicate phase start %v", p.Start)
		}
	}
	if total <= sorted[len(sorted)-1].Start {
		return nil, fmt.Errorf("workload: total %v must exceed last phase start %v", total, sorted[len(sorted)-1].Start)
	}
	return &TrafficPattern{phases: sorted, total: total}, nil
}

// QPSAt returns the offered load at elapsed time t (clamped to the pattern).
func (p *TrafficPattern) QPSAt(t time.Duration) float64 {
	if t < 0 {
		t = 0
	}
	qps := p.phases[0].TargetQPS
	for _, ph := range p.phases {
		if ph.Start <= t {
			qps = ph.TargetQPS
		} else {
			break
		}
	}
	return qps
}

// Duration returns the total pattern length.
func (p *TrafficPattern) Duration() time.Duration { return p.total }

// Phases returns a copy of the schedule.
func (p *TrafficPattern) Phases() []TrafficPhase {
	out := make([]TrafficPhase, len(p.phases))
	copy(out, p.phases)
	return out
}

// Figure19Pattern reproduces the paper's dynamic-traffic experiment: the
// offered load rises in five increments between minute 5 and minute 20,
// then falls at minute 24, over a 30-minute run. peak is the maximum
// offered QPS (the paper drives RM1 to ~250 QPS at peak).
func Figure19Pattern(peak float64) *TrafficPattern {
	base := peak / 5
	phases := []TrafficPhase{
		{Start: 0, TargetQPS: base},
		{Start: 5 * time.Minute, TargetQPS: base * 2},
		{Start: 9 * time.Minute, TargetQPS: base * 3},
		{Start: 13 * time.Minute, TargetQPS: base * 4},
		{Start: 17 * time.Minute, TargetQPS: base * 4.5},
		{Start: 20 * time.Minute, TargetQPS: peak},
		{Start: 24 * time.Minute, TargetQPS: base * 2},
	}
	p, err := NewTrafficPattern(phases, 30*time.Minute)
	if err != nil {
		panic("workload: Figure19Pattern construction failed: " + err.Error())
	}
	return p
}

// PoissonArrivals generates successive inter-arrival gaps for a Poisson
// process whose rate follows a traffic pattern.
type PoissonArrivals struct {
	pattern *TrafficPattern
	rng     *RNG
	now     time.Duration
}

// NewPoissonArrivals creates an arrival process starting at t=0.
func NewPoissonArrivals(p *TrafficPattern, seed uint64) *PoissonArrivals {
	return &PoissonArrivals{pattern: p, rng: NewRNG(seed)}
}

// Next returns the absolute time of the next arrival and true, or false
// when the pattern has ended. Zero-rate phases are skipped by stepping in
// one-second increments.
func (a *PoissonArrivals) Next() (time.Duration, bool) {
	for {
		if a.now >= a.pattern.Duration() {
			return 0, false
		}
		rate := a.pattern.QPSAt(a.now)
		if rate <= 0 {
			a.now += time.Second
			continue
		}
		gap := time.Duration(a.rng.ExpFloat64() / rate * float64(time.Second))
		a.now += gap
		if a.now >= a.pattern.Duration() {
			return 0, false
		}
		return a.now, true
	}
}
