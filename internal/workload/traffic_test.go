package workload

import (
	"math"
	"testing"
	"time"
)

func TestTrafficPatternValidation(t *testing.T) {
	if _, err := NewTrafficPattern(nil, time.Minute); err == nil {
		t.Fatal("want error for empty phases")
	}
	if _, err := NewTrafficPattern([]TrafficPhase{{Start: time.Second, TargetQPS: 1}}, time.Minute); err == nil {
		t.Fatal("want error when first phase not at 0")
	}
	if _, err := NewTrafficPattern([]TrafficPhase{{Start: 0, TargetQPS: -1}}, time.Minute); err == nil {
		t.Fatal("want error for negative QPS")
	}
	if _, err := NewTrafficPattern([]TrafficPhase{{Start: 0, TargetQPS: 1}, {Start: 0, TargetQPS: 2}}, time.Minute); err == nil {
		t.Fatal("want error for duplicate starts")
	}
	if _, err := NewTrafficPattern([]TrafficPhase{{Start: 0, TargetQPS: 1}}, 0); err == nil {
		t.Fatal("want error for zero duration")
	}
}

func TestTrafficPatternQPSAt(t *testing.T) {
	p, err := NewTrafficPattern([]TrafficPhase{
		{Start: 0, TargetQPS: 10},
		{Start: time.Minute, TargetQPS: 20},
		{Start: 2 * time.Minute, TargetQPS: 5},
	}, 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 10},
		{30 * time.Second, 10},
		{time.Minute, 20},
		{90 * time.Second, 20},
		{2 * time.Minute, 5},
		{-time.Second, 10},
		{time.Hour, 5}, // clamped to last phase
	}
	for _, c := range cases {
		if got := p.QPSAt(c.at); got != c.want {
			t.Errorf("QPSAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if p.Duration() != 3*time.Minute {
		t.Fatal("Duration mismatch")
	}
	if len(p.Phases()) != 3 {
		t.Fatal("Phases copy mismatch")
	}
}

func TestTrafficPatternSortsPhases(t *testing.T) {
	p, err := NewTrafficPattern([]TrafficPhase{
		{Start: time.Minute, TargetQPS: 20},
		{Start: 0, TargetQPS: 10},
	}, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if p.QPSAt(0) != 10 {
		t.Fatal("phases must sort by start")
	}
}

func TestFigure19Pattern(t *testing.T) {
	p := Figure19Pattern(250)
	if p.Duration() != 30*time.Minute {
		t.Fatalf("Duration = %v", p.Duration())
	}
	if got := p.QPSAt(0); got != 50 {
		t.Fatalf("base = %v, want 50", got)
	}
	if got := p.QPSAt(21 * time.Minute); got != 250 {
		t.Fatalf("peak = %v, want 250", got)
	}
	if got := p.QPSAt(25 * time.Minute); got != 100 {
		t.Fatalf("after decrease = %v, want 100", got)
	}
	// Five increments between minute 5 and 20 (paper description).
	prev := p.QPSAt(4 * time.Minute)
	increments := 0
	for m := 5; m <= 20; m++ {
		cur := p.QPSAt(time.Duration(m) * time.Minute)
		if cur > prev {
			increments++
		}
		prev = cur
	}
	if increments != 5 {
		t.Fatalf("increments = %d, want 5", increments)
	}
}

func TestPoissonArrivalsRate(t *testing.T) {
	p, err := NewTrafficPattern([]TrafficPhase{{Start: 0, TargetQPS: 100}}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	a := NewPoissonArrivals(p, 13)
	n := 0
	prev := time.Duration(0)
	for {
		at, ok := a.Next()
		if !ok {
			break
		}
		if at < prev {
			t.Fatal("arrivals must be monotone")
		}
		prev = at
		n++
	}
	// Expect ~6000 arrivals over 60s at 100 QPS.
	if math.Abs(float64(n)-6000) > 300 {
		t.Fatalf("arrivals = %d, want ~6000", n)
	}
}

func TestPoissonArrivalsZeroRate(t *testing.T) {
	p, err := NewTrafficPattern([]TrafficPhase{
		{Start: 0, TargetQPS: 0},
		{Start: 10 * time.Second, TargetQPS: 10},
	}, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	a := NewPoissonArrivals(p, 17)
	at, ok := a.Next()
	if !ok {
		t.Fatal("expected arrivals in second phase")
	}
	if at < 10*time.Second {
		t.Fatalf("first arrival %v during zero-rate phase", at)
	}
}

func TestDatasetShapes(t *testing.T) {
	for _, ds := range Datasets() {
		s, err := ds.Sampler()
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		if s.Rows() != ds.Rows {
			t.Fatalf("%s rows mismatch", ds.Name)
		}
	}
}

func TestAccessFrequenciesSortedAndNormalized(t *testing.T) {
	ds := MovieLens
	freqs, err := ds.AccessFrequencies(500_000, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != 5000 {
		t.Fatalf("len = %d", len(freqs))
	}
	var sum float64
	prev := math.Inf(1)
	for _, f := range freqs {
		if f > prev {
			t.Fatal("frequencies must be sorted descending")
		}
		prev = f
		sum += f
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Fatalf("sum = %v, want 100%%", sum)
	}
	// Power law: top 10% of rows should cover ~P of accesses.
	var top float64
	for _, f := range freqs[:500] {
		top += f
	}
	// The descending re-sort can only raise coverage above the design
	// target (sorting maximizes the head), so allow asymmetric slack.
	if cov := top / 100; cov < ds.LocalityP-0.01 || cov > ds.LocalityP+0.04 {
		t.Fatalf("top-10%% coverage = %v, want ~%v", cov, ds.LocalityP)
	}
}
