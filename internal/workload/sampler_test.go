package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must reproduce the stream")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-positive bound")
		}
	}()
	r.Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(3)
	var sum float64
	const n = 50_000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestNewPowerLawSamplerValidation(t *testing.T) {
	if _, err := NewPowerLawSampler(0, 0.9, 1); err == nil {
		t.Fatal("want error for zero rows")
	}
	if _, err := NewPowerLawSampler(10, 0, 1); err == nil {
		t.Fatal("want error for P=0")
	}
	if _, err := NewPowerLawSampler(10, 1.5, 1); err == nil {
		t.Fatal("want error for P>1")
	}
	if _, err := NewPowerLawSampler(10, 0.9, -1); err == nil {
		t.Fatal("want error for negative exponent")
	}
}

func TestPowerLawLocalityEmpirical(t *testing.T) {
	const rows = 10_000
	for _, p := range []float64{0.10, 0.50, 0.90} {
		s, err := NewPowerLawSampler(rows, p, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRNG(11)
		hot := int64(float64(rows) * HotFraction)
		inHot := 0
		const draws = 100_000
		for i := 0; i < draws; i++ {
			if s.SampleRank(r) < hot {
				inHot++
			}
		}
		got := float64(inHot) / draws
		if math.Abs(got-p) > 0.01 {
			t.Errorf("P=%v: measured hot fraction %v", p, got)
		}
	}
}

func TestPowerLawRanksInRange(t *testing.T) {
	s, _ := NewPowerLawSampler(100, 0.9, 1.0)
	r := NewRNG(5)
	for i := 0; i < 10_000; i++ {
		rank := s.SampleRank(r)
		if rank < 0 || rank >= 100 {
			t.Fatalf("rank %d out of range", rank)
		}
	}
}

func TestPowerLawSingleRow(t *testing.T) {
	s, err := NewPowerLawSampler(1, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SampleRank(NewRNG(1)); got != 0 {
		t.Fatalf("single-row rank = %d", got)
	}
}

func TestAnalyticCDFMatchesEmpirical(t *testing.T) {
	const rows = 5000
	s, _ := NewPowerLawSampler(rows, 0.9, 0.9)
	cdf := s.Analytic()
	counts := make([]int64, rows)
	r := NewRNG(21)
	const draws = 200_000
	for i := 0; i < draws; i++ {
		counts[s.SampleRank(r)]++
	}
	for _, j := range []int64{rows / 100, rows / 10, rows / 2, rows} {
		var emp int64
		for _, c := range counts[:j] {
			emp += c
		}
		got := float64(emp) / draws
		want := cdf.At(j)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("At(%d): empirical %v vs analytic %v", j, got, want)
		}
	}
}

func TestAnalyticCDFInvariants(t *testing.T) {
	s, _ := NewPowerLawSampler(1000, 0.9, 1.1)
	cdf := s.Analytic()
	if cdf.At(0) != 0 || cdf.At(1000) != 1 || cdf.At(2000) != 1 || cdf.At(-1) != 0 {
		t.Fatal("boundary clamps broken")
	}
	prev := 0.0
	for j := int64(0); j <= 1000; j += 10 {
		cur := cdf.At(j)
		if cur < prev {
			t.Fatalf("CDF decreases at %d", j)
		}
		prev = cur
	}
	if cdf.Rows() != 1000 {
		t.Fatalf("Rows = %d", cdf.Rows())
	}
	if p := cdf.RangeProbability(500, 100); p != 0 {
		t.Fatal("inverted range must clamp to 0")
	}
}

func TestShuffledMappingIsPermutation(t *testing.T) {
	m := NewShuffledMapping(100, 9)
	seen := make(map[int64]bool)
	for rank := int64(0); rank < 100; rank++ {
		row := m.RowOf(rank)
		if row < 0 || row >= 100 || seen[row] {
			t.Fatalf("not a permutation at rank %d -> %d", rank, row)
		}
		seen[row] = true
	}
	if m.Rows() != 100 {
		t.Fatalf("Rows = %d", m.Rows())
	}
	if got := m.RankOf(m.RowOf(42)); got != 42 {
		t.Fatalf("RankOf(RowOf(42)) = %d", got)
	}
	if m.RankOf(-1) != -1 {
		t.Fatal("RankOf of unknown row must be -1")
	}
}

func TestIdentityMapping(t *testing.T) {
	m := IdentityMapping(10)
	if m.RowOf(3) != 3 || m.Rows() != 10 {
		t.Fatal("identity mapping broken")
	}
}

func TestQueryGeneratorShapes(t *testing.T) {
	s, _ := NewPowerLawSampler(1000, 0.9, 0.9)
	g, err := NewQueryGenerator(s, nil, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Next()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.BatchSize() != 4 || b.TotalLookups() != 32 {
		t.Fatalf("batch %d lookups %d", b.BatchSize(), b.TotalLookups())
	}
	for _, idx := range b.Indices {
		if idx < 0 || idx >= 1000 {
			t.Fatalf("index %d out of range", idx)
		}
	}
	rb := g.NextRanks()
	if rb.BatchSize() != 4 || rb.TotalLookups() != 32 {
		t.Fatal("NextRanks shape broken")
	}
}

func TestQueryGeneratorValidation(t *testing.T) {
	s, _ := NewPowerLawSampler(1000, 0.9, 0.9)
	if _, err := NewQueryGenerator(s, nil, 0, 8, 1); err == nil {
		t.Fatal("want batch size error")
	}
	if _, err := NewQueryGenerator(s, nil, 4, 0, 1); err == nil {
		t.Fatal("want pooling error")
	}
	if _, err := NewQueryGenerator(s, IdentityMapping(5), 4, 8, 1); err == nil {
		t.Fatal("want mapping size mismatch error")
	}
}

// Property: the analytic CDF is a valid distribution for arbitrary valid
// parameters.
func TestAnalyticCDFProperty(t *testing.T) {
	f := func(rowsRaw uint16, pRaw, sRaw uint8) bool {
		rows := int64(rowsRaw)%5000 + 2
		p := float64(pRaw%90+10) / 100 // 0.10..0.99
		s := float64(sRaw%20) / 10     // 0..1.9
		sampler, err := NewPowerLawSampler(rows, p, s)
		if err != nil {
			return false
		}
		cdf := sampler.Analytic()
		prev := 0.0
		steps := rows / 7
		if steps == 0 {
			steps = 1
		}
		for j := int64(0); j <= rows; j += steps {
			cur := cdf.At(j)
			if cur < prev-1e-12 || cur < 0 || cur > 1+1e-12 {
				return false
			}
			prev = cur
		}
		return math.Abs(cdf.At(rows)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
