package workload

import (
	"testing"
)

// hottestRow returns the most-sampled row over n draws.
func hottestRow(t *testing.T, s Sampler, seed uint64, n int) int64 {
	t.Helper()
	rng := NewRNG(seed)
	counts := make(map[int64]int)
	for i := 0; i < n; i++ {
		counts[s.SampleRank(rng)]++
	}
	best, bestC := int64(-1), -1
	for r, c := range counts {
		if c > bestC {
			best, bestC = r, c
		}
	}
	return best
}

func TestDriftingSamplerRotatesHotSet(t *testing.T) {
	base, err := NewPowerLawSampler(1000, 0.95, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriftingSampler(base)
	if err != nil {
		t.Fatal(err)
	}
	// With shift 0 the sampler is the base sampler: rank 0 is hottest.
	if got := hottestRow(t, d, 7, 4000); got != 0 {
		t.Fatalf("hottest row before drift = %d, want 0", got)
	}
	// After drifting by 500 the hot set has migrated to mid-table.
	d.SetShift(500)
	if got := hottestRow(t, d, 7, 4000); got != 500 {
		t.Fatalf("hottest row after drift = %d, want 500", got)
	}
	// Advance composes and wraps around the table size.
	if got := d.Advance(700); got != 1200 {
		t.Fatalf("Advance returned %d, want 1200", got)
	}
	if got := hottestRow(t, d, 7, 4000); got != 200 {
		t.Fatalf("hottest row after wrap = %d, want 200 (1200 mod 1000)", got)
	}
	if d.Shift() != 1200 {
		t.Fatalf("Shift = %d", d.Shift())
	}
}

func TestDriftingSamplerPreservesDistributionShape(t *testing.T) {
	base, err := NewPowerLawSampler(2000, 0.9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDriftingSampler(base)
	if err != nil {
		t.Fatal(err)
	}
	d.SetShift(1234)
	// The rotated distribution still concentrates ~P of mass on 10% of
	// rows — just a different 10%.
	rng := NewRNG(3)
	const n = 20000
	counts := make([]int, 2000)
	for i := 0; i < n; i++ {
		counts[d.SampleRank(rng)]++
	}
	hot := 0
	for i := int64(0); i < 200; i++ { // the drifted hot segment
		hot += counts[(1234+i)%2000]
	}
	p := float64(hot) / n
	if p < 0.85 || p > 0.95 {
		t.Fatalf("drifted hot-segment mass = %.3f, want ~0.9", p)
	}
}

func TestDriftingSamplerValidation(t *testing.T) {
	if _, err := NewDriftingSampler(nil); err == nil {
		t.Fatal("want nil-base error")
	}
}

func TestDriftingSamplerNegativeShift(t *testing.T) {
	base, err := NewPowerLawSampler(100, 0.9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := NewDriftingSampler(base)
	d.SetShift(-30)
	rng := NewRNG(11)
	for i := 0; i < 1000; i++ {
		r := d.SampleRank(rng)
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of range under negative shift", r)
		}
	}
}
