package workload

import (
	"fmt"
	"sync/atomic"
)

// DriftingSampler models hotness drift: it wraps a base sampler and
// rotates every drawn rank by a runtime-adjustable offset, so the set of
// physically hot rows migrates across the table while the distribution's
// shape (locality P, power-law tail) is preserved. This is the scenario
// ElasticRec's re-profiling loop exists for — a partition plan cut for
// yesterday's hot set strands cold rows in small hot shards and hot rows
// in big cold shards, and the per-shard utility skew (Fig. 14) widens
// until a repartition restores it.
//
// SetShift is safe to call while a query generator is sampling from
// another goroutine; each sample reads the current offset atomically.
type DriftingSampler struct {
	base  Sampler
	shift atomic.Int64
}

// NewDriftingSampler wraps base with an initial shift of 0 (identical to
// base until the first SetShift/Advance).
func NewDriftingSampler(base Sampler) (*DriftingSampler, error) {
	if base == nil || base.Rows() <= 0 {
		return nil, fmt.Errorf("workload: drifting sampler needs a non-empty base sampler")
	}
	return &DriftingSampler{base: base}, nil
}

// Rows implements Sampler.
func (d *DriftingSampler) Rows() int64 { return d.base.Rows() }

// SampleRank implements Sampler: the base rank rotated by the current
// shift (mod table size).
func (d *DriftingSampler) SampleRank(r *RNG) int64 {
	rank := d.base.SampleRank(r)
	rows := d.base.Rows()
	return (rank + d.shift.Load()%rows + rows) % rows
}

// SetShift sets the absolute rotation offset (may be negative).
func (d *DriftingSampler) SetShift(shift int64) { d.shift.Store(shift) }

// Advance moves the hot set by delta rows and returns the new offset.
func (d *DriftingSampler) Advance(delta int64) int64 { return d.shift.Add(delta) }

// Shift returns the current rotation offset.
func (d *DriftingSampler) Shift() int64 { return d.shift.Load() }

var _ Sampler = (*DriftingSampler)(nil)
