package serving

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/workload"
)

// driftedStats collects a fresh profiling window whose hot set has been
// rotated by shift rows — the drifting-hotness scenario the repartition
// loop exists for.
func driftedStats(t *testing.T, cfg model.Config, shift int64, seed uint64) []*embedding.AccessStats {
	t.Helper()
	base, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	drift, err := workload.NewDriftingSampler(base)
	if err != nil {
		t.Fatal(err)
	}
	drift.SetShift(shift)
	gen, err := workload.NewQueryGenerator(drift, workload.NewShuffledMapping(cfg.RowsPerTable, 5),
		cfg.BatchSize, cfg.Pooling, seed)
	if err != nil {
		t.Fatal(err)
	}
	perTable := make([][]*embedding.Batch, cfg.NumTables)
	for tb := range perTable {
		for q := 0; q < 50; q++ {
			perTable[tb] = append(perTable[tb], gen.Next())
		}
	}
	stats, err := CollectStats(cfg, perTable)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestRepartitionUnderFire is the acceptance test for zero-downtime plan
// swaps: 8 closed-loop clients hammer Predict while Repartition swaps the
// plan 10 times with freshly drifted statistics. Every reply must match
// the monolithic baseline (a cross-epoch mix of boundaries, clients or
// remaps would corrupt the pooled sums), no request may fail, and every
// request's utility/served accounting must land in exactly one epoch.
// Run with -race in CI.
func TestRepartitionUnderFire(t *testing.T) {
	for _, tc := range []struct {
		name     string
		opts     BuildOptions
		numTab   int
		swaps    int
		perSwap  []int64 // alternating plans
		batching bool
	}{
		{name: "local", opts: BuildOptions{Transport: TransportLocal}, numTab: 4, swaps: 10},
		{name: "tcp", opts: BuildOptions{Transport: TransportTCP}, numTab: 2, swaps: 10},
		{name: "local-batched", opts: BuildOptions{Transport: TransportLocal,
			Batching: &BatcherOptions{MaxBatch: 12, MaxDelay: 200 * time.Microsecond}},
			numTab: 4, swaps: 10, batching: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := liveConfig()
			cfg.NumTables = tc.numTab
			m, stats, gen := buildFixture(t, cfg)
			mono := NewMonolith(m.Clone())
			ld, err := BuildElastic(m, stats, []int64{50, 200, cfg.RowsPerTable}, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer ld.Close()

			const clients = 8
			const perClient = 40
			reqs := make([]*PredictRequest, clients*perClient)
			want := make([][]float32, len(reqs))
			for i := range reqs {
				reqs[i] = makeRequest(cfg, gen, uint64(5000+i))
				var mr PredictReply
				if err := mono.Predict(bg, reqs[i], &mr); err != nil {
					t.Fatal(err)
				}
				want[i] = mr.Probs
			}

			epochs := []*RoutingTable{ld.Table()}
			var stop atomic.Bool
			var wg sync.WaitGroup
			errc := make(chan error, clients)
			var served atomic.Int64
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for q := 0; !stop.Load(); q = (q + 1) % perClient {
						i := c*perClient + q
						var reply PredictReply
						if err := ld.Predict(bg, reqs[i], &reply); err != nil {
							errc <- fmt.Errorf("client %d query %d: %w", c, q, err)
							return
						}
						for j := range want[i] {
							if math.Abs(float64(reply.Probs[j]-want[i][j])) > 1e-4 {
								errc <- fmt.Errorf("client %d query %d input %d: %v != monolith %v (cross-epoch mix?)",
									c, q, j, reply.Probs[j], want[i][j])
								return
							}
						}
						served.Add(1)
					}
				}(c)
			}

			// Swap plans under fire: alternate between two boundary sets,
			// re-profiling with a drifting hot set each time.
			plans := [][]int64{
				{80, 300, cfg.RowsPerTable},
				{50, 200, cfg.RowsPerTable},
				{120, 250, 400, cfg.RowsPerTable},
			}
			for swap := 0; swap < tc.swaps; swap++ {
				fresh := driftedStats(t, cfg, int64(swap*40), uint64(swap))
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				err := ld.Repartition(ctx, fresh, plans[swap%len(plans)])
				cancel()
				if err != nil {
					stop.Store(true)
					wg.Wait()
					t.Fatalf("swap %d: %v", swap, err)
				}
				epochs = append(epochs, ld.Table())
			}
			stop.Store(true)
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			if got := ld.Epoch(); got != int64(tc.swaps) {
				t.Fatalf("final epoch = %d, want %d", got, tc.swaps)
			}
			if got := ld.Router.Swaps.Value(); got != int64(tc.swaps) {
				t.Fatalf("swap counter = %d, want %d", got, tc.swaps)
			}
			// Served accounting: every dense-shard request landed in
			// exactly one epoch, so the per-epoch counters partition the
			// total (fused batches count once per dispatch when batching).
			var inEpochs int64
			for _, rt := range epochs {
				inEpochs += rt.Served.Value()
			}
			wantServed := served.Load()
			if tc.batching {
				wantServed = ld.Batcher.Batches.Value()
			}
			if inEpochs != wantServed {
				t.Fatalf("per-epoch served sum = %d, want %d (request counted in zero or two epochs)",
					inEpochs, wantServed)
			}
			// Retired epochs froze their final utilities into the gauges.
			if _, ok := ld.EpochUtility.Value("epoch0/t0/s0"); !ok {
				t.Fatalf("retired epoch 0 utility missing; labels = %v", ld.EpochUtility.Labels())
			}
		})
	}
}

// TestRepartitionRebalancesUtility drives drifted traffic against a stale
// plan — flattening the Fig. 14 utility profile — then repartitions from
// the drifted profile and checks the skew signal recovers: the hot shard
// saturates again while the cold shard goes quiet.
func TestRepartitionRebalancesUtility(t *testing.T) {
	cfg := liveConfig()
	m, stats, _ := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{50, 200, cfg.RowsPerTable}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()

	// Drifted traffic in original-ID space.
	const shift = 250
	base, _ := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	drift, _ := workload.NewDriftingSampler(base)
	drift.SetShift(shift)
	gen, err := workload.NewQueryGenerator(drift, workload.NewShuffledMapping(cfg.RowsPerTable, 5),
		cfg.BatchSize, cfg.Pooling, 321)
	if err != nil {
		t.Fatal(err)
	}
	fire := func(n int) {
		for i := 0; i < n; i++ {
			req := &PredictRequest{
				BatchSize: cfg.BatchSize,
				DenseDim:  cfg.DenseInputDim,
				Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
			}
			for tb := 0; tb < cfg.NumTables; tb++ {
				b := gen.Next()
				req.Tables = append(req.Tables, TableBatch{Indices: b.Indices, Offsets: b.Offsets})
			}
			var reply PredictReply
			if err := ld.Predict(bg, req, &reply); err != nil {
				t.Fatal(err)
			}
		}
	}

	ld.StartProfile()
	fire(150)
	staleSkew := ld.Table().UtilitySkew()

	profile := ld.SnapshotProfile()
	if profile == nil || profile[0].Total == 0 {
		t.Fatal("live profiling window captured nothing")
	}
	if err := ld.Repartition(context.Background(), profile, []int64{50, 200, cfg.RowsPerTable}); err != nil {
		t.Fatal(err)
	}
	fire(150)
	freshSkew := ld.Table().UtilitySkew()
	if freshSkew <= staleSkew {
		t.Fatalf("repartition did not re-concentrate utility: stale skew %.3f, fresh skew %.3f",
			staleSkew, freshSkew)
	}
}

// blockingGather blocks until its context is canceled; it counts how many
// calls "landed" (returned success), which must stay zero when a sibling
// failure cancels the fan-out.
type blockingGather struct {
	started chan struct{}
	landed  atomic.Int64
	dim     int
}

func (b *blockingGather) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	select {
	case b.started <- struct{}{}:
	default:
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(30 * time.Second):
		reply.BatchSize = len(req.Offsets)
		reply.Dim = b.dim
		reply.Pooled = make([]float32, reply.BatchSize*b.dim)
		b.landed.Add(1)
		return nil
	}
}

// TestPredictCancelsStragglerGathers is the regression test for the
// sibling-cancellation satellite: when one shard's gather fails, the
// in-flight gathers against the other shards must be canceled, and no
// straggler may land after Predict has returned its error.
func TestPredictCancelsStragglerGathers(t *testing.T) {
	cfg := liveConfig()
	cfg.NumTables = 1
	m, err := model.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	straggler := &blockingGather{started: make(chan struct{}, 1), dim: cfg.EmbeddingDim}
	failing := &flakyClient{failures: 1 << 30}
	rt, err := NewRoutingTable(0, cfg, nil, [][]int64{{250, cfg.RowsPerTable}},
		[][]GatherClient{{failing, straggler}})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewDenseShard(m, NewRouter(rt))
	if err != nil {
		t.Fatal(err)
	}
	// One input per shard so both clients receive a gather.
	req := &PredictRequest{
		BatchSize: 2,
		DenseDim:  cfg.DenseInputDim,
		Dense:     make([]float32, 2*cfg.DenseInputDim),
		Tables:    []TableBatch{{Indices: []int64{10, 400}, Offsets: []int32{0, 1}}},
	}
	start := time.Now()
	var reply PredictReply
	err = dense.Predict(bg, req, &reply)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want gather failure")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Predict blocked %v behind a straggler instead of canceling it", elapsed)
	}
	if got := straggler.landed.Load(); got != 0 {
		t.Fatalf("%d straggler gathers landed after the error return", got)
	}
	// The straggler really was in flight (not just never called).
	select {
	case <-straggler.started:
	default:
		t.Fatal("straggler gather never started; cancellation untested")
	}
}

// TestDeadlinePropagatesOverTCP checks the wire leg of deadline
// propagation: the client's context deadline rides in the request, is
// reconstructed server-side, and cancels a slow shard there, while the
// client unblocks as soon as its own deadline expires.
func TestDeadlinePropagatesOverTCP(t *testing.T) {
	slow := &blockingGather{started: make(chan struct{}, 1), dim: 1}
	srv, err := NewRPCServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.RegisterGather("Slow", slow); err != nil {
		t.Fatal(err)
	}
	client, err := DialGather(srv.Addr(), "Slow")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	var reply GatherReply
	err = client.Gather(ctx, &GatherRequest{Indices: []int64{0}, Offsets: []int32{0}}, &reply)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want deadline error")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("client blocked %v past its deadline", elapsed)
	}
	// The server-side service saw the deadline too: its reconstructed ctx
	// fires well before the 30s success path, so after a short grace the
	// call must have started but never landed.
	select {
	case <-slow.started:
	case <-time.After(2 * time.Second):
		t.Fatal("slow gather never reached the server")
	}
	time.Sleep(300 * time.Millisecond)
	if slow.landed.Load() != 0 {
		t.Fatal("server-side gather landed despite the propagated deadline")
	}
}

// TestRouterDrainWaitsForInflight pins the epoch-retirement contract:
// Drain must not complete while a request still holds the epoch, and must
// complete promptly once released.
func TestRouterDrainWaitsForInflight(t *testing.T) {
	cfg := liveConfig()
	rtA, err := NewRoutingTable(0, cfg, nil, emptyPlan(cfg), emptyClients(cfg))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(rtA)
	pinned := r.Acquire()
	if pinned != rtA {
		t.Fatal("acquire returned wrong epoch")
	}
	rtB, err := NewRoutingTable(1, cfg, nil, emptyPlan(cfg), emptyClients(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if prev := r.Publish(rtB); prev != rtA {
		t.Fatal("publish returned wrong predecessor")
	}
	// Drain must time out while the request is pinned...
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	err = rtA.Drain(ctx)
	cancel()
	if err == nil {
		t.Fatal("drain completed with a request in flight")
	}
	// ...and complete once released.
	pinned.release()
	if err := rtA.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// New acquisitions land on the published epoch.
	got := r.Acquire()
	defer got.release()
	if got != rtB {
		t.Fatal("acquire after publish returned the retired epoch")
	}
}

// emptyPlan/emptyClients build a minimal one-shard-per-table plan backed
// by no-op clients, for router-only tests.
func emptyPlan(cfg model.Config) [][]int64 {
	out := make([][]int64, cfg.NumTables)
	for t := range out {
		out[t] = []int64{cfg.RowsPerTable}
	}
	return out
}

type nopGather struct{}

func (nopGather) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	return nil
}

func emptyClients(cfg model.Config) [][]GatherClient {
	out := make([][]GatherClient, cfg.NumTables)
	for t := range out {
		out[t] = []GatherClient{nopGather{}}
	}
	return out
}

// TestLiveAutoscalerTriggersRepartition wires the skew trigger end to
// end: drifted traffic widens the utility skew, the autoscaler's
// repartition policy fires, the deployment re-plans from its live
// profiling window and the epoch advances — all deterministic via
// EvaluateRepartition.
func TestLiveAutoscalerTriggersRepartition(t *testing.T) {
	cfg := liveConfig()
	m, stats, _ := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{50, 200, cfg.RowsPerTable}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()

	base, _ := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	drift, _ := workload.NewDriftingSampler(base)
	drift.SetShift(250)
	gen, err := workload.NewQueryGenerator(drift, workload.NewShuffledMapping(cfg.RowsPerTable, 5),
		cfg.BatchSize, cfg.Pooling, 55)
	if err != nil {
		t.Fatal(err)
	}

	var retired []int64
	as := &LiveAutoscaler{
		Deployment: ld,
		RepartitionPolicy: &cluster.RepartitionPolicy{
			MinSkew:     0.5,
			MinRequests: 50,
			MinInterval: time.Hour,
		},
		Replan: func(stats []*embedding.AccessStats) ([]int64, error) {
			return []int64{50, 200, cfg.RowsPerTable}, nil
		},
		OnRepartition: func(epoch int64, err error) {
			retired = append(retired, epoch)
			if err != nil {
				t.Errorf("repartition: %v", err)
			}
		},
	}

	ld.StartProfile()
	for i := 0; i < 150; i++ {
		req := &PredictRequest{
			BatchSize: cfg.BatchSize,
			DenseDim:  cfg.DenseInputDim,
			Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
		}
		for tb := 0; tb < cfg.NumTables; tb++ {
			b := gen.Next()
			req.Tables = append(req.Tables, TableBatch{Indices: b.Indices, Offsets: b.Offsets})
		}
		var reply PredictReply
		if err := ld.Predict(bg, req, &reply); err != nil {
			t.Fatal(err)
		}
	}

	fired, err := as.EvaluateRepartition(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatalf("skew %.3f did not trip the trigger", ld.Table().UtilitySkew())
	}
	if ld.Epoch() != 1 {
		t.Fatalf("epoch = %d after triggered repartition, want 1", ld.Epoch())
	}
	if len(retired) != 1 || retired[0] != 0 {
		t.Fatalf("OnRepartition observed %v, want [0]", retired)
	}
	// MinInterval suppresses an immediate second swap.
	fired, err = as.EvaluateRepartition(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("repartition re-fired inside MinInterval")
	}
	// The autoscaler reopened the profiling window for the next cycle.
	if ld.SnapshotProfile() == nil {
		t.Fatal("triggered repartition did not reopen the profiling window")
	}
}

// TestEvaluateRepartitionSurvivesReplanFailure pins the recovery path: a
// transient replan failure consumes the window's snapshot but must not
// wedge the trigger loop — the window is reopened so the next firing can
// profile and succeed.
func TestEvaluateRepartitionSurvivesReplanFailure(t *testing.T) {
	cfg := liveConfig()
	m, stats, _ := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{50, 200, cfg.RowsPerTable}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()

	base, _ := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	drift, _ := workload.NewDriftingSampler(base)
	drift.SetShift(250)
	gen, err := workload.NewQueryGenerator(drift, workload.NewShuffledMapping(cfg.RowsPerTable, 5),
		cfg.BatchSize, cfg.Pooling, 99)
	if err != nil {
		t.Fatal(err)
	}
	fire := func(n int) {
		for i := 0; i < n; i++ {
			req := &PredictRequest{
				BatchSize: cfg.BatchSize,
				DenseDim:  cfg.DenseInputDim,
				Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
			}
			for tb := 0; tb < cfg.NumTables; tb++ {
				b := gen.Next()
				req.Tables = append(req.Tables, TableBatch{Indices: b.Indices, Offsets: b.Offsets})
			}
			var reply PredictReply
			if err := ld.Predict(bg, req, &reply); err != nil {
				t.Fatal(err)
			}
		}
	}

	replanErr := fmt.Errorf("injected replan failure")
	failing := true
	as := &LiveAutoscaler{
		Deployment: ld,
		RepartitionPolicy: &cluster.RepartitionPolicy{
			MinSkew:     0.5,
			MinRequests: 50,
			MinInterval: 0, // allow immediate retry after the failure
		},
		Replan: func(stats []*embedding.AccessStats) ([]int64, error) {
			if failing {
				return nil, replanErr
			}
			return []int64{50, 200, cfg.RowsPerTable}, nil
		},
	}

	ld.StartProfile()
	fire(150)
	fired, err := as.EvaluateRepartition(time.Now())
	if !fired || err == nil {
		t.Fatalf("fired=%v err=%v, want fired with the injected failure", fired, err)
	}
	if ld.Epoch() != 0 {
		t.Fatal("failed replan must not swap the epoch")
	}
	// The window was reopened; the next firing profiles fresh traffic and
	// the swap goes through.
	failing = false
	fire(150)
	fired, err = as.EvaluateRepartition(time.Now())
	if err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if !fired || ld.Epoch() != 1 {
		t.Fatalf("fired=%v epoch=%d, want recovery swap to epoch 1", fired, ld.Epoch())
	}
}
