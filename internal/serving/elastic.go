package serving

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/model"
)

// Transport selects how shards communicate in a live deployment.
type Transport string

// Supported transports.
const (
	// TransportLocal wires shards with direct method calls (fast,
	// deterministic; used by tests and the quickstart).
	TransportLocal Transport = "local"
	// TransportTCP runs every shard behind net/rpc on loopback TCP —
	// real microservices exchanging serialized messages.
	TransportTCP Transport = "tcp"
)

// WireCodec selects the serialization a TCP deployment's shard gathers
// ride on.
type WireCodec string

// Supported wire codecs.
const (
	// WireBinary is the length-prefixed binary codec
	// (internal/serving/wire): no reflection, pooled buffers, pipelined
	// sticky connections. The default.
	WireBinary WireCodec = "binary"
	// WireGob is the legacy net/rpc gob codec, kept for mixed-fleet
	// interop and as the benchmark baseline.
	WireGob WireCodec = "gob"
)

// BuildOptions configures BuildElastic.
type BuildOptions struct {
	Transport Transport
	// WireCodec selects the TCP gather codec (empty = WireBinary).
	// Ignored on the local transport.
	WireCodec WireCodec
	// WireQuant enables the int8-quantized gather-reply wire encoding on
	// the binary codec: each row rides as one float32 scale plus Dim
	// int8s and is dequantized to float32 before the dense-side
	// accumulate. Off by default so sharded serving stays bit-exact
	// against the monolith; turning it on trades ≤ 1/254 of each row's
	// max magnitude in error for ~4x smaller gather replies (dim 32).
	// Ignored on the local transport and the gob codec.
	WireQuant bool
	// WireFP16 enables the half-precision gather-reply wire encoding on
	// the binary codec: rows ride as IEEE 754 binary16 and widen to
	// float32 before the dense-side accumulate. Off by default so sharded
	// serving stays bit-exact against the monolith; mutually exclusive
	// with WireQuant. Ignored on the local transport and the gob codec.
	WireFP16 bool
	// GatherRows switches the dense fan-out to gather path v2: per-table
	// in-batch row dedup (sorted-unique ids, multiplicities re-expanded at
	// merge time) with rows-mode gathers returning raw rows instead of
	// pooled-per-input sums. On the binary codec rows-mode replies take
	// the zero-copy encode path straight from sorted-table storage.
	// Implied by RowCacheBytes > 0.
	GatherRows bool
	// RowCacheBytes, when positive, enables the frontend hot-row cache
	// (gather path v2) with this total byte budget: unique rows resolve
	// against the cache before the fan-out, so hot rows never leave the
	// frontend. Entries are epoch-scoped (a plan swap lazily invalidates
	// them) and the cache is re-seeded from the fresh plan's hot CDF
	// before each publish. Implies GatherRows.
	RowCacheBytes int64
	// Replicas[s] is the initial replica count of shard s in every
	// table's pool (nil = one replica each). Replicas share the sorted
	// table storage in-process; they model independent serving replicas.
	// A repartitioned epoch starts from the same initial counts; the
	// live autoscaler re-scales it under traffic.
	Replicas []int
	// Batching, when non-nil, fronts the dense shard with a dynamic
	// batcher: concurrent Predict calls are coalesced into fused forward
	// batches (see BatcherOptions). A zero-valued options struct enables
	// batching with defaults.
	Batching *BatcherOptions
	// PlanCacheEpochs controls the per-model plan cache that memoizes
	// Preprocess outputs and shard services across epochs: entries idle
	// for more than this many epochs are evicted. 0 selects the default
	// (DefaultPlanCacheEpochs); a negative value disables caching, so
	// every repartition is a cold build. The age bound is also the memory
	// bound: under continuously drifting windows (every repartition a new
	// fingerprint, zero hits) the cache retains at most
	// PlanCacheEpochs+1 generations of sorted-table copies before
	// eviction reclaims them — size it against table memory, or disable
	// caching for workloads that never revisit a distribution.
	PlanCacheEpochs int
	// WarmCDF selects how much of the fresh profiling window's access
	// CDF is pre-touched on freshly built shards before an epoch is
	// published, so the first post-swap queries don't pay cold latency.
	// 0 selects the default (DefaultWarmCDF); a negative value disables
	// pre-warming.
	WarmCDF float64
}

// Epoch-reuse defaults (see BuildOptions.PlanCacheEpochs / WarmCDF).
const (
	// DefaultPlanCacheEpochs keeps a plan warm for this many epochs past
	// its last use before the cache evicts it.
	DefaultPlanCacheEpochs = 4
	// DefaultWarmCDF pre-touches the rows covering this fraction of the
	// fresh window's accesses on every freshly built shard.
	DefaultWarmCDF = 0.9
)

// LiveDeployment is a fully wired ElasticRec serving instance for one DLRM
// variant. The partition plan lives in an epoch-versioned Router:
// Repartition builds the next epoch side-by-side from fresh access
// statistics, publishes it atomically and retires the old one — the
// zero-downtime plan swap of the paper's re-profiling loop (Sec. IV-B).
// The Router may be private (BuildElastic) or shared with other variants
// (BuildMulti): either way this deployment only ever touches its own
// model's epochs, so its repartitions never drain another variant's
// in-flight requests.
type LiveDeployment struct {
	Router *Router
	Dense  *DenseShard
	// Batcher is the dynamic-batching frontend over Dense (nil unless
	// BuildOptions.Batching was set). Predict routes through it when
	// present.
	Batcher *Batcher
	// EpochUtility records every retired epoch's final per-shard memory
	// utility under labels like "epoch0/t1/s2" — the Fig. 14 series over
	// the deployment's whole life, not just the current plan.
	EpochUtility *metrics.GaugeVec

	source *model.Model // the full model, kept for re-preprocessing
	opts   BuildOptions
	cfg    model.Config
	model  string // canonical model name this deployment serves

	// rowCache is the frontend hot-row cache (nil unless
	// BuildOptions.RowCacheBytes is set); it is advanced and re-seeded at
	// the end of every buildTable, just before the epoch publishes.
	rowCache *rowCache

	// cache is the per-model plan cache (epoch-reuse layer); the build
	// counters tally construction work for the reuse tests and reports.
	cache          *planCache
	preBuilds      metrics.Counter
	preCacheHits   metrics.Counter
	shardsBuilt    metrics.Counter
	shardsReused   metrics.Counter
	replans        metrics.Counter
	replanMemoHits metrics.Counter

	servers []*RPCServer // frontend (ExportPredict) servers

	// profile is the live profiling window (nil = off). The atomic
	// pointer keeps the no-window fast path lock-free so profiling never
	// taxes the de-serialized predict hot path when it is off.
	profile atomic.Pointer[profileWindow]

	repartitionMu sync.Mutex // serializes plan swaps
}

// profileWindow is one live profiling window's state.
type profileWindow struct {
	mu     sync.Mutex
	closed bool
	stats  []*embedding.AccessStats
}

// BuildElastic assembles a live ElasticRec deployment from a fully
// instantiated model: it preprocesses (hotness-sorts) the tables from the
// recorded access statistics, slices every table at the plan boundaries,
// spins each slice up as an embedding-shard service (optionally behind
// loopback-TCP RPC), and wires a dense shard over an epoch-versioned
// routing table.
func BuildElastic(m *model.Model, stats []*embedding.AccessStats, boundaries []int64, opts BuildOptions) (*LiveDeployment, error) {
	return buildModelDeployment(NewMultiRouter(), DefaultModel, m, stats, boundaries, opts)
}

// buildModelDeployment assembles one variant's deployment into a (possibly
// shared) router, registering its epoch-0 plan under name. BuildElastic
// uses it with a private router; BuildMulti calls it once per variant with
// the shared one.
func buildModelDeployment(router *Router, name string, m *model.Model, stats []*embedding.AccessStats, boundaries []int64, opts BuildOptions) (*LiveDeployment, error) {
	if opts.Transport == "" {
		opts.Transport = TransportLocal
	}
	if opts.WireQuant && opts.WireFP16 {
		return nil, fmt.Errorf("serving: WireQuant and WireFP16 are mutually exclusive")
	}
	if opts.RowCacheBytes > 0 {
		opts.GatherRows = true
	}
	cacheAge := int64(opts.PlanCacheEpochs)
	if cacheAge == 0 {
		cacheAge = DefaultPlanCacheEpochs
	}
	ld := &LiveDeployment{
		Router:       router,
		EpochUtility: metrics.NewGaugeVec(),
		source:       m,
		opts:         opts,
		cfg:          m.Config,
		model:        canonicalModel(name),
		cache:        newPlanCache(cacheAge),
		rowCache:     newRowCache(opts.RowCacheBytes),
	}
	rt, _, _, err := ld.buildTable(0, stats, boundaries)
	if err != nil {
		// buildTable released the epoch references; drop the cache's so
		// any units it did build tear their transports down.
		ld.cache.clear()
		return nil, err
	}
	// On any later constructor failure the deployment is discarded, so
	// both the epoch's and the cache's unit references must be dropped —
	// leaving either would leak the shard transports.
	fail := func(err error) (*LiveDeployment, error) {
		rt.Close()
		ld.cache.clear()
		return nil, err
	}
	if err := router.Register(ld.model, rt); err != nil {
		return fail(err)
	}

	denseModel, err := model.NewDenseOnly(ld.cfg, 0)
	if err != nil {
		return fail(err)
	}
	// The dense shard must score with the same MLP parameters as the
	// source model, so copy them over.
	denseModel.Bottom = m.Bottom.Clone()
	denseModel.Top = m.Top.Clone()
	dense, err := NewModelDenseShard(ld.model, denseModel, ld.Router)
	if err != nil {
		return fail(err)
	}
	dense.gatherRows = opts.GatherRows
	dense.rowCache = ld.rowCache
	ld.Dense = dense
	if opts.Batching != nil {
		ld.Batcher = NewModelBatcher(ld.model, dense, dense.Config(), *opts.Batching)
	}
	return ld, nil
}

// buildTable constructs one routing-table epoch: resolve the profiling
// window against the plan cache (reusing the memoized hotness sort on a
// fingerprint hit), reuse every shard whose sorted-row range is unchanged
// (the unit keeps its live service, replica pool and transports across the
// epoch boundary), build and pre-warm only the shards that actually moved,
// and age the cache. The returned report says how much was reused; the
// returned fresh list names the units built this epoch (the caller resets
// the Fig. 14 utility trackers of every *reused* unit after publishing, so
// the new epoch's profile counts only its own traffic).
func (ld *LiveDeployment) buildTable(epoch int64, stats []*embedding.AccessStats, boundaries []int64) (*RoutingTable, SwapReport, []*shardUnit, error) {
	rep := SwapReport{Epoch: epoch}
	if len(boundaries) == 0 {
		return nil, rep, nil, fmt.Errorf("serving: empty partition boundaries")
	}
	if boundaries[len(boundaries)-1] != ld.cfg.RowsPerTable {
		return nil, rep, nil, fmt.Errorf("serving: boundaries end at %d, table has %d rows",
			boundaries[len(boundaries)-1], ld.cfg.RowsPerTable)
	}
	fp := fingerprintStats(stats)
	pre := ld.cache.lookupPre(fp, epoch)
	if pre != nil {
		rep.CacheHit = true
		ld.preCacheHits.Inc(1)
	} else {
		var err error
		pre, err = Preprocess(ld.source, stats)
		if err != nil {
			return nil, rep, nil, err
		}
		ld.preBuilds.Inc(1)
		ld.cache.putPre(fp, pre, epoch)
	}

	cfg := ld.cfg
	numShards := len(boundaries)

	allBoundaries := make([][]int64, cfg.NumTables)
	allClients := make([][]GatherClient, cfg.NumTables)
	allUnits := make([][]*shardUnit, cfg.NumTables)
	allShards := make([][]*EmbeddingShard, cfg.NumTables)
	allPools := make([][]*ReplicaPool, cfg.NumTables)
	var fresh []*shardUnit // built this epoch; pre-warmed before publish
	fail := func(err error) (*RoutingTable, SwapReport, []*shardUnit, error) {
		// Drop the epoch references taken so far; units also held by the
		// cache stay warm there until eviction or deployment Close.
		for _, row := range allUnits {
			for _, u := range row {
				u.release()
			}
		}
		return nil, rep, nil, err
	}
	for t := 0; t < cfg.NumTables; t++ {
		allBoundaries[t] = boundaries
		lo := int64(0)
		for s := 0; s < numShards; s++ {
			hi := boundaries[s]
			key := unitKey{fp: fp, table: t, shard: s, lo: lo, hi: hi}
			u := ld.cache.lookupUnit(key, epoch)
			if u != nil {
				rep.ShardsReused++
				ld.shardsReused.Inc(1)
			} else {
				var err error
				u, err = ld.buildShardUnit(epoch, t, s, pre, lo, hi)
				if err != nil {
					return fail(err)
				}
				ld.cache.putUnit(key, u, epoch)
				fresh = append(fresh, u)
				rep.ShardsBuilt++
				ld.shardsBuilt.Inc(1)
			}
			u.retain() // this epoch's reference
			allUnits[t] = append(allUnits[t], u)
			allShards[t] = append(allShards[t], u.svc)
			allPools[t] = append(allPools[t], u.pool)
			allClients[t] = append(allClients[t], u.pool)
			lo = hi
		}
	}

	built, err := NewRoutingTable(epoch, cfg, pre, allBoundaries, allClients)
	if err != nil {
		return fail(err)
	}
	built.Plan = append([]int64(nil), boundaries...)
	built.Shards = allShards
	built.Pools = allPools
	built.units = allUnits
	rep.WarmedRows = ld.warmFresh(pre, fresh)
	ld.seedRowCache(epoch, pre)
	ld.cache.evict(epoch)
	return built, rep, fresh, nil
}

// seedRowCache flips the hot-row cache's live epoch to the one being
// built — from here on, fills for the retiring epoch are rejected and its
// entries evict lazily — and pre-fills the new epoch from the plan's
// known hot CDF prefixes (the same warm set warmFresh pre-touches), so a
// swap publishes with a warm cache instead of a cold-start miss storm.
// Because the sorted id space is hotness-ordered, the warm set is the
// prefix [0, hot[t]) of each table — it builds as the cache's seeded
// plane (flat per-table arenas, swapped in atomically), with rows taken
// round-robin across tables so the budget splits evenly when it cannot
// hold every prefix. Runs before publish: in-flight requests still fill
// the old epoch, harmlessly rejected.
func (ld *LiveDeployment) seedRowCache(epoch int64, pre *Preprocessed) {
	c := ld.rowCache
	if c == nil {
		return
	}
	c.advance(epoch)
	frac := ld.opts.WarmCDF
	if frac < 0 {
		return
	}
	if frac == 0 {
		frac = DefaultWarmCDF
	}
	hot := make([]int64, len(pre.CDFs))
	for t, cdf := range pre.CDFs {
		rows := cdf.Rows()
		hot[t] = int64(sort.Search(int(rows), func(j int) bool {
			return cdf.At(int64(j)+1) >= frac
		})) + 1
	}
	b := c.newPrefixBuilder(epoch, len(pre.Sorted), ld.cfg.EmbeddingDim)
	for r := int64(0); ; r++ {
		any, full := false, false
		for t := range pre.Sorted {
			if t >= len(hot) || r >= hot[t] {
				continue
			}
			vec, err := pre.Sorted[t].Vector(r)
			if err != nil {
				continue
			}
			if !b.add(t, vec) {
				full = true
				break
			}
			any = true
		}
		if full || !any {
			break
		}
	}
	b.install()
}

// buildShardUnit spins up one shard's service bundle: the embedding-shard
// service over the sorted rows [lo, hi) of table t, a pull-based replica
// pool at the configured initial replica count, and one transport per
// replica. Each replica added to the pool starts its own pull workers, so
// the unit's teardown must Close the pool (stopping workers the autoscaler
// may have added mid-epoch) before releasing the transports they call.
func (ld *LiveDeployment) buildShardUnit(epoch int64, t, s int, pre *Preprocessed, lo, hi int64) (*shardUnit, error) {
	svc, err := NewEmbeddingShard(t, s, pre.Sorted[t], lo, hi)
	if err != nil {
		return nil, err
	}
	u := &shardUnit{table: t, lo: lo, hi: hi, svc: svc, pool: NewReplicaPool()}
	replicas := 1
	if s < len(ld.opts.Replicas) && ld.opts.Replicas[s] > 0 {
		replicas = ld.opts.Replicas[s]
	}
	for r := 0; r < replicas; r++ {
		client, err := exportGather(u, svc, fmt.Sprintf("E%dT%dS%dR%d", epoch, t, s, r), ld.opts)
		if err != nil {
			u.teardown()
			return nil, err
		}
		u.pool.Add(client)
	}
	return u, nil
}

// warmFresh pre-touches the hottest rows of the freshly built shards — the
// rows covering BuildOptions.WarmCDF of the profiling window's accesses —
// so the first queries after publish hit warm memory. Shards reused from a
// previous epoch are already warm and are skipped; returns rows touched.
func (ld *LiveDeployment) warmFresh(pre *Preprocessed, fresh []*shardUnit) int64 {
	frac := ld.opts.WarmCDF
	if frac < 0 || len(fresh) == 0 {
		return 0
	}
	if frac == 0 {
		frac = DefaultWarmCDF
	}
	// hot[t] is the first sorted row past the warm set of table t: the
	// table is hotness-sorted, so the warm set is the prefix [0, hot[t]).
	hot := make([]int64, len(pre.CDFs))
	for t, cdf := range pre.CDFs {
		rows := cdf.Rows()
		hot[t] = int64(sort.Search(int(rows), func(j int) bool {
			return cdf.At(int64(j)+1) >= frac
		})) + 1
	}
	var warmed int64
	for _, u := range fresh {
		k := hot[u.table]
		if u.lo >= k {
			continue
		}
		n := k - u.lo
		if max := u.hi - u.lo; n > max {
			n = max
		}
		warmed += u.svc.Prewarm(n)
	}
	return warmed
}

// exportGather wraps a shard service in the chosen transport and wire
// codec, recording any servers/connections on the owning shard unit.
func exportGather(u *shardUnit, svc GatherClient, name string, opts BuildOptions) (GatherClient, error) {
	switch opts.Transport {
	case TransportLocal:
		return svc, nil
	case TransportTCP:
		codec := opts.WireCodec
		if codec == "" {
			codec = WireBinary
		}
		if codec != WireBinary && codec != WireGob {
			return nil, fmt.Errorf("serving: unknown wire codec %q", codec)
		}
		srv, err := NewRPCServer("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		wopts := GatherWireOptions{Quant: opts.WireQuant, FP16: opts.WireFP16}
		if err := srv.RegisterGatherWire(name, svc, wopts); err != nil {
			srv.Close()
			return nil, err
		}
		u.servers = append(u.servers, srv)
		var client GatherClient
		var closer io.Closer
		if codec == WireGob {
			c, err := DialGatherGob(srv.Addr(), name)
			if err != nil {
				return nil, err
			}
			client, closer = c, c
		} else {
			c, err := DialGather(srv.Addr(), name)
			if err != nil {
				return nil, err
			}
			client, closer = c, c
		}
		u.closers = append(u.closers, closer)
		return client, nil
	default:
		return nil, fmt.Errorf("serving: unknown transport %q", opts.Transport)
	}
}

// Repartition performs a zero-downtime plan swap for this deployment's
// model: it re-preprocesses the tables from the fresh access statistics,
// builds the next epoch's shard services side-by-side (the old epoch keeps
// serving throughout), atomically publishes the new routing table, then
// drains the old epoch's in-flight requests and closes its servers and
// connections. Concurrent Predicts never fail and never mix shards across
// plans — each pins one epoch for its whole fan-out — and on a shared
// router every other model's epochs and in-flight requests are untouched.
func (ld *LiveDeployment) Repartition(ctx context.Context, stats []*embedding.AccessStats, newBoundaries []int64) error {
	_, err := ld.RepartitionReport(ctx, stats, newBoundaries)
	return err
}

// RepartitionReport is Repartition returning the epoch-reuse accounting:
// whether the plan cache supplied the preprocessing, how many shard
// services were reused versus rebuilt, and how many rows were pre-warmed.
// The repartition trigger loop feeds the report to the staleness policy so
// cheap (fully reused) swaps can run on a shorter re-trigger interval.
func (ld *LiveDeployment) RepartitionReport(ctx context.Context, stats []*embedding.AccessStats, newBoundaries []int64) (SwapReport, error) {
	ld.repartitionMu.Lock()
	defer ld.repartitionMu.Unlock()

	old := ld.Router.LoadModel(ld.model)
	if old == nil {
		return SwapReport{}, fmt.Errorf("serving: repartition of model %q: not registered (undeployed?)", ld.model)
	}
	next, rep, fresh, err := ld.buildTable(old.Epoch+1, stats, newBoundaries)
	if err != nil {
		return rep, fmt.Errorf("serving: repartition: %w", err)
	}
	retired, err := ld.Router.PublishModel(ld.model, next)
	if err != nil {
		next.Close()
		return rep, fmt.Errorf("serving: repartition: %w", err)
	}
	// Freeze the retiring epoch's final utilities first, then zero the
	// reused services' trackers: a shared shard's tracker would otherwise
	// carry the old epoch's (flattened) profile into the new one and
	// immediately re-trip the staleness policy. Gathers still in flight
	// on the retiring epoch may land after the reset; their touches smear
	// into the new epoch's profile, which the policy's served-count
	// warm-up absorbs.
	ld.recordEpochUtility(retired)
	ld.resetReusedUtility(next, fresh)
	if err := retired.Drain(ctx); err != nil {
		// The new epoch is live; the old one could not be drained in
		// time and is intentionally leaked rather than closed under an
		// in-flight request.
		return rep, err
	}
	retired.Close()
	return rep, nil
}

// resetReusedUtility clears the Fig. 14 utility trackers of every unit of
// the new epoch that was carried over from an earlier epoch (fresh units
// already start empty), so per-epoch utility semantics survive reuse.
func (ld *LiveDeployment) resetReusedUtility(next *RoutingTable, fresh []*shardUnit) {
	isFresh := make(map[*shardUnit]bool, len(fresh))
	for _, u := range fresh {
		isFresh[u] = true
	}
	for _, row := range next.units {
		for _, u := range row {
			if !isFresh[u] {
				u.svc.Utility.Reset()
			}
		}
	}
}

// ReplanMemo resolves a profiling window to shard boundaries through the
// plan cache's fingerprint-keyed replan memo: a window already replanned
// recently returns its memoized DP boundaries without invoking replan at
// all; a miss runs replan and memoizes the outcome under the same
// epoch-age eviction as the Preprocess memo. The repartition trigger loop
// routes through this, so repeated triggers on a recurring distribution
// skip the DP replan as well as the rebuild.
func (ld *LiveDeployment) ReplanMemo(stats []*embedding.AccessStats, replan func([]*embedding.AccessStats) ([]int64, error)) ([]int64, error) {
	fp := fingerprintStats(stats)
	epoch := int64(0)
	if rt := ld.Table(); rt != nil {
		epoch = rt.Epoch
	}
	if b := ld.cache.lookupPlan(fp, epoch); b != nil {
		ld.replanMemoHits.Inc(1)
		return b, nil
	}
	boundaries, err := replan(stats)
	if err != nil {
		return nil, err
	}
	ld.replans.Inc(1)
	ld.cache.putPlan(fp, boundaries, epoch)
	return boundaries, nil
}

// BuildCounters returns the deployment-lifetime plan-construction tally
// (the epoch-reuse spy: cache-hit repartitions must not move Preprocesses
// or ShardsBuilt) plus the plan cache's current occupancy, including the
// bytes of cached sorted tables the Preprocess memos pin.
func (ld *LiveDeployment) BuildCounters() BuildCounters {
	pres, units, plans, bytes := ld.cache.occupancy()
	rc := ld.rowCache.stats()
	return BuildCounters{
		Preprocesses:      ld.preBuilds.Value(),
		PreCacheHits:      ld.preCacheHits.Value(),
		ShardsBuilt:       ld.shardsBuilt.Value(),
		ShardsReused:      ld.shardsReused.Value(),
		Replans:           ld.replans.Value(),
		ReplanMemoHits:    ld.replanMemoHits.Value(),
		CachedPres:        pres,
		CachedUnits:       units,
		CachedPlans:       plans,
		CachedSortedBytes: bytes,
		RowCacheHits:      rc.Hits,
		RowCacheMisses:    rc.Misses,
		RowCacheEvicted:   rc.Evicted,
		RowCacheSeeded:    rc.Seeded,
		RowCacheBytes:     rc.Bytes,
	}
}

// recordEpochUtility freezes a retiring epoch's final per-shard utilities
// into the deployment's gauge vector.
func (ld *LiveDeployment) recordEpochUtility(rt *RoutingTable) {
	for t := range rt.Shards {
		for s := range rt.Shards[t] {
			ld.EpochUtility.Set(fmt.Sprintf("epoch%d/t%d/s%d", rt.Epoch, t, s), rt.Utility(t, s))
		}
	}
}

// Predict services a query whose sparse indices are in the *original*
// table-ID space, going through the dynamic batcher when one is
// configured. A request addressed to a different model is rejected here —
// a multi-model frontend dispatches on PredictRequest.Model before it
// reaches a variant's deployment. The preprocessing remap happens inside
// the routed epoch snapshot (see DenseShard.Predict), so fused batches and
// plan swaps can never mix ID spaces. When a live profiling window is
// open, the request is also recorded into it.
func (ld *LiveDeployment) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	if got := canonicalModel(req.Model); got != ld.model {
		return fmt.Errorf("serving: request for model %q reached deployment serving %q", got, ld.model)
	}
	ld.recordProfile(req)
	if ld.Batcher != nil {
		return ld.Batcher.Predict(ctx, req, reply)
	}
	return ld.Dense.Predict(ctx, req, reply)
}

// StartProfile opens a fresh live profiling window: every subsequent
// Predict records its original-ID accesses, exactly the Sec. IV-B window
// production servers run ahead of a repartition.
func (ld *LiveDeployment) StartProfile() {
	w := &profileWindow{stats: make([]*embedding.AccessStats, ld.cfg.NumTables)}
	for t := range w.stats {
		w.stats[t] = embedding.NewAccessStats(ld.cfg.RowsPerTable)
	}
	ld.profile.Store(w)
}

// StartProfileIfIdle opens a live profiling window only when none is
// open — re-wiring a control-plane binding over a serving variant must
// not discard the profile it has already accumulated.
func (ld *LiveDeployment) StartProfileIfIdle() {
	if ld.profile.Load() == nil {
		ld.StartProfile()
	}
}

// SnapshotProfile closes the current profiling window and returns its
// statistics (nil when no window was open). The window must be restarted
// explicitly for the next cycle.
func (ld *LiveDeployment) SnapshotProfile() []*embedding.AccessStats {
	w := ld.profile.Swap(nil)
	if w == nil {
		return nil
	}
	// Taking the window lock (and marking it closed) fences out in-flight
	// recorders: once we return, nothing mutates the stats anymore.
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	return w.stats
}

// recordProfile adds one request's accesses to the open window, if any.
// With no window open this is one atomic load on the hot path.
func (ld *LiveDeployment) recordProfile(req *PredictRequest) {
	w := ld.profile.Load()
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || len(req.Tables) != len(w.stats) {
		return
	}
	for t, tb := range req.Tables {
		b := &embedding.Batch{Indices: tb.Indices, Offsets: tb.Offsets}
		_ = w.stats[t].RecordBatch(b)
	}
}

// Model returns the canonical model name this deployment serves.
func (ld *LiveDeployment) Model() string { return ld.model }

// Table returns the current routing-table epoch of this deployment's
// model (observability snapshot; the request path pins epochs through the
// router instead).
func (ld *LiveDeployment) Table() *RoutingTable { return ld.Router.LoadModel(ld.model) }

// Epoch returns the current plan epoch number (-1 once the deployment has
// been shut down and its model unregistered).
func (ld *LiveDeployment) Epoch() int64 {
	if rt := ld.Table(); rt != nil {
		return rt.Epoch
	}
	return -1
}

// Boundaries returns the current epoch's per-table boundary plan.
func (ld *LiveDeployment) Boundaries() []int64 { return ld.Table().Plan }

// Pre returns the current epoch's preprocessing output.
func (ld *LiveDeployment) Pre() *Preprocessed { return ld.Table().Pre }

// Pool returns the replica pool of shard s of table t in the current
// epoch.
func (ld *LiveDeployment) Pool(t, s int) *ReplicaPool { return ld.Table().Pools[t][s] }

// Shard returns the primary shard service of shard s of table t in the
// current epoch.
func (ld *LiveDeployment) Shard(t, s int) *EmbeddingShard { return ld.Table().Shards[t][s] }

// ShardUtility returns the Fig. 14-style memory utility of shard s of
// table t over the traffic the current epoch has served.
func (ld *LiveDeployment) ShardUtility(t, s int) float64 {
	return ld.Table().Utility(t, s)
}

// ExportPredict exposes the deployment's predict frontend (batcher-routed
// when batching is on) as a net/rpc service under name on loopback TCP,
// returning the address to dial with DialPredict. The server is torn down
// by Close.
func (ld *LiveDeployment) ExportPredict(name string) (string, error) {
	srv, err := NewRPCServer("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	if err := srv.RegisterPredict(name, predictFunc(ld.Predict)); err != nil {
		srv.Close()
		return "", err
	}
	ld.servers = append(ld.servers, srv)
	return srv.Addr(), nil
}

// predictFunc adapts a function to PredictClient.
type predictFunc func(context.Context, *PredictRequest, *PredictReply) error

func (f predictFunc) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	return f(ctx, req, reply)
}

var _ PredictClient = (*LiveDeployment)(nil)

// Shutdown gracefully retires the deployment from a live router: the
// drain-half of the model lifecycle (Controller.Undeploy drives it after
// unpublishing the model from the frontend). The sequence is
// flush → unregister → drain → freeze → close → clear:
//
//  1. the batcher (if any) is closed first, flushing every queued request
//     through the still-registered model;
//  2. the model is unregistered from the router — the name is immediately
//     reusable, and new acquisitions fail with "serves no model";
//  3. the final epoch drains: every request that pinned it before the
//     unregistration completes normally (bounded by ctx);
//  4. the final per-shard utilities are frozen into the EpochUtility
//     gauges, then the epoch closes, releasing its shard-unit references;
//  5. the plan cache clears, dropping its warm references — with both the
//     epoch's and the cache's references gone, every shard unit tears its
//     transports down and the variant's shard services are fully released.
//
// If the drain outlives ctx the final epoch is intentionally leaked rather
// than closed under an in-flight request (the cache still clears — cached
// references are independent of in-flight ones) and the error is returned;
// the model is unregistered either way.
func (ld *LiveDeployment) Shutdown(ctx context.Context) error {
	ld.repartitionMu.Lock()
	defer ld.repartitionMu.Unlock()
	if ld.Batcher != nil {
		_ = ld.Batcher.Close()
	}
	for _, s := range ld.servers {
		_ = s.Close()
	}
	ld.servers = nil
	rt, err := ld.Router.Unregister(ld.model)
	if err != nil {
		return fmt.Errorf("serving: shutdown: %w", err)
	}
	drainErr := rt.Drain(ctx)
	if drainErr == nil {
		ld.recordEpochUtility(rt)
		rt.Close()
	}
	ld.cache.clear()
	ld.rowCache.clear()
	return drainErr
}

// Close flushes the batcher (if any) and tears down the frontend servers
// and the current epoch's transport resources.
func (ld *LiveDeployment) Close() {
	if ld.Batcher != nil {
		// Close is idempotent; keep the field set so a straggling
		// Predict gets "batcher is closed" instead of racing on nil.
		_ = ld.Batcher.Close()
	}
	for _, s := range ld.servers {
		_ = s.Close()
	}
	ld.servers = nil
	if rt := ld.Router.LoadModel(ld.model); rt != nil {
		ld.recordEpochUtility(rt)
		rt.Close()
	}
	// Drop the plan cache's references last: a unit kept warm only by the
	// cache tears its transports down here.
	ld.cache.clear()
	ld.rowCache.clear()
}

// CollectStats replays the batches in original-ID space into fresh access
// statistics — the profiling window production servers run before
// preprocessing (Sec. IV-B).
func CollectStats(cfg model.Config, perTable [][]*embedding.Batch) ([]*embedding.AccessStats, error) {
	if len(perTable) != cfg.NumTables {
		return nil, fmt.Errorf("serving: stats for %d tables, want %d", len(perTable), cfg.NumTables)
	}
	out := make([]*embedding.AccessStats, cfg.NumTables)
	for t := range perTable {
		st := embedding.NewAccessStats(cfg.RowsPerTable)
		for _, b := range perTable[t] {
			if err := st.RecordBatch(b); err != nil {
				return nil, fmt.Errorf("serving: table %d: %w", t, err)
			}
		}
		out[t] = st
	}
	return out, nil
}
