package serving

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/model"
)

// Transport selects how shards communicate in a live deployment.
type Transport string

// Supported transports.
const (
	// TransportLocal wires shards with direct method calls (fast,
	// deterministic; used by tests and the quickstart).
	TransportLocal Transport = "local"
	// TransportTCP runs every shard behind net/rpc on loopback TCP —
	// real microservices exchanging serialized messages.
	TransportTCP Transport = "tcp"
)

// BuildOptions configures BuildElastic.
type BuildOptions struct {
	Transport Transport
	// Replicas[s] is the initial replica count of shard s in every
	// table's pool (nil = one replica each). Replicas share the sorted
	// table storage in-process; they model independent serving replicas.
	// A repartitioned epoch starts from the same initial counts; the
	// live autoscaler re-scales it under traffic.
	Replicas []int
	// Batching, when non-nil, fronts the dense shard with a dynamic
	// batcher: concurrent Predict calls are coalesced into fused forward
	// batches (see BatcherOptions). A zero-valued options struct enables
	// batching with defaults.
	Batching *BatcherOptions
}

// LiveDeployment is a fully wired ElasticRec serving instance for one DLRM
// variant. The partition plan lives in an epoch-versioned Router:
// Repartition builds the next epoch side-by-side from fresh access
// statistics, publishes it atomically and retires the old one — the
// zero-downtime plan swap of the paper's re-profiling loop (Sec. IV-B).
// The Router may be private (BuildElastic) or shared with other variants
// (BuildMulti): either way this deployment only ever touches its own
// model's epochs, so its repartitions never drain another variant's
// in-flight requests.
type LiveDeployment struct {
	Router *Router
	Dense  *DenseShard
	// Batcher is the dynamic-batching frontend over Dense (nil unless
	// BuildOptions.Batching was set). Predict routes through it when
	// present.
	Batcher *Batcher
	// EpochUtility records every retired epoch's final per-shard memory
	// utility under labels like "epoch0/t1/s2" — the Fig. 14 series over
	// the deployment's whole life, not just the current plan.
	EpochUtility *metrics.GaugeVec

	source *model.Model // the full model, kept for re-preprocessing
	opts   BuildOptions
	cfg    model.Config
	model  string // canonical model name this deployment serves

	servers []*RPCServer // frontend (ExportPredict) servers

	// profile is the live profiling window (nil = off). The atomic
	// pointer keeps the no-window fast path lock-free so profiling never
	// taxes the de-serialized predict hot path when it is off.
	profile atomic.Pointer[profileWindow]

	repartitionMu sync.Mutex // serializes plan swaps
}

// profileWindow is one live profiling window's state.
type profileWindow struct {
	mu     sync.Mutex
	closed bool
	stats  []*embedding.AccessStats
}

// BuildElastic assembles a live ElasticRec deployment from a fully
// instantiated model: it preprocesses (hotness-sorts) the tables from the
// recorded access statistics, slices every table at the plan boundaries,
// spins each slice up as an embedding-shard service (optionally behind
// loopback-TCP RPC), and wires a dense shard over an epoch-versioned
// routing table.
func BuildElastic(m *model.Model, stats []*embedding.AccessStats, boundaries []int64, opts BuildOptions) (*LiveDeployment, error) {
	return buildModelDeployment(NewMultiRouter(), DefaultModel, m, stats, boundaries, opts)
}

// buildModelDeployment assembles one variant's deployment into a (possibly
// shared) router, registering its epoch-0 plan under name. BuildElastic
// uses it with a private router; BuildMulti calls it once per variant with
// the shared one.
func buildModelDeployment(router *Router, name string, m *model.Model, stats []*embedding.AccessStats, boundaries []int64, opts BuildOptions) (*LiveDeployment, error) {
	if opts.Transport == "" {
		opts.Transport = TransportLocal
	}
	ld := &LiveDeployment{
		Router:       router,
		EpochUtility: metrics.NewGaugeVec(),
		source:       m,
		opts:         opts,
		cfg:          m.Config,
		model:        canonicalModel(name),
	}
	rt, err := ld.buildTable(0, stats, boundaries)
	if err != nil {
		return nil, err
	}
	if err := router.Register(ld.model, rt); err != nil {
		rt.Close()
		return nil, err
	}

	denseModel, err := model.NewDenseOnly(ld.cfg, 0)
	if err != nil {
		rt.Close()
		return nil, err
	}
	// The dense shard must score with the same MLP parameters as the
	// source model, so copy them over.
	denseModel.Bottom = m.Bottom.Clone()
	denseModel.Top = m.Top.Clone()
	dense, err := NewModelDenseShard(ld.model, denseModel, ld.Router)
	if err != nil {
		rt.Close()
		return nil, err
	}
	ld.Dense = dense
	if opts.Batching != nil {
		ld.Batcher = NewModelBatcher(ld.model, dense, dense.Config(), *opts.Batching)
	}
	return ld, nil
}

// buildTable constructs one routing-table epoch: preprocess from the given
// stats, slice every table at the boundaries, and spin up shard services,
// replica pools and transports. The epoch owns everything it builds.
func (ld *LiveDeployment) buildTable(epoch int64, stats []*embedding.AccessStats, boundaries []int64) (*RoutingTable, error) {
	if len(boundaries) == 0 {
		return nil, fmt.Errorf("serving: empty partition boundaries")
	}
	if boundaries[len(boundaries)-1] != ld.cfg.RowsPerTable {
		return nil, fmt.Errorf("serving: boundaries end at %d, table has %d rows",
			boundaries[len(boundaries)-1], ld.cfg.RowsPerTable)
	}
	pre, err := Preprocess(ld.source, stats)
	if err != nil {
		return nil, err
	}

	cfg := ld.cfg
	numShards := len(boundaries)
	replicaCount := func(s int) int {
		if s < len(ld.opts.Replicas) && ld.opts.Replicas[s] > 0 {
			return ld.opts.Replicas[s]
		}
		return 1
	}

	allBoundaries := make([][]int64, cfg.NumTables)
	allClients := make([][]GatherClient, cfg.NumTables)
	var allShards [][]*EmbeddingShard
	var allPools [][]*ReplicaPool
	var rt *RoutingTable // carries servers/closers for cleanup on error
	fail := func(err error) (*RoutingTable, error) {
		if rt != nil {
			rt.Close()
		}
		return nil, err
	}
	rt = &RoutingTable{}
	for t := 0; t < cfg.NumTables; t++ {
		allBoundaries[t] = boundaries
		var shardRow []*EmbeddingShard
		var poolRow []*ReplicaPool
		var clientRow []GatherClient
		lo := int64(0)
		for s := 0; s < numShards; s++ {
			hi := boundaries[s]
			svc, err := NewEmbeddingShard(t, s, pre.Sorted[t], lo, hi)
			if err != nil {
				return fail(err)
			}
			shardRow = append(shardRow, svc)
			pool := NewReplicaPool()
			for r := 0; r < replicaCount(s); r++ {
				client, err := exportGather(rt, svc, fmt.Sprintf("E%dT%dS%dR%d", epoch, t, s, r), ld.opts.Transport)
				if err != nil {
					return fail(err)
				}
				pool.Add(client)
			}
			poolRow = append(poolRow, pool)
			clientRow = append(clientRow, pool)
			lo = hi
		}
		allShards = append(allShards, shardRow)
		allPools = append(allPools, poolRow)
		allClients[t] = clientRow
	}

	built, err := NewRoutingTable(epoch, cfg, pre, allBoundaries, allClients)
	if err != nil {
		return fail(err)
	}
	built.Plan = append([]int64(nil), boundaries...)
	built.Shards = allShards
	built.Pools = allPools
	built.servers = rt.servers
	built.closers = rt.closers
	return built, nil
}

// exportGather wraps a shard service in the chosen transport, recording
// any servers/connections on the owning routing table.
func exportGather(rt *RoutingTable, svc GatherClient, name string, tr Transport) (GatherClient, error) {
	switch tr {
	case TransportLocal:
		return svc, nil
	case TransportTCP:
		srv, err := NewRPCServer("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		if err := srv.RegisterGather(name, svc); err != nil {
			srv.Close()
			return nil, err
		}
		rt.servers = append(rt.servers, srv)
		client, err := DialGather(srv.Addr(), name)
		if err != nil {
			return nil, err
		}
		rt.closers = append(rt.closers, client)
		return client, nil
	default:
		return nil, fmt.Errorf("serving: unknown transport %q", tr)
	}
}

// Repartition performs a zero-downtime plan swap for this deployment's
// model: it re-preprocesses the tables from the fresh access statistics,
// builds the next epoch's shard services side-by-side (the old epoch keeps
// serving throughout), atomically publishes the new routing table, then
// drains the old epoch's in-flight requests and closes its servers and
// connections. Concurrent Predicts never fail and never mix shards across
// plans — each pins one epoch for its whole fan-out — and on a shared
// router every other model's epochs and in-flight requests are untouched.
func (ld *LiveDeployment) Repartition(ctx context.Context, stats []*embedding.AccessStats, newBoundaries []int64) error {
	ld.repartitionMu.Lock()
	defer ld.repartitionMu.Unlock()

	old := ld.Router.LoadModel(ld.model)
	next, err := ld.buildTable(old.Epoch+1, stats, newBoundaries)
	if err != nil {
		return fmt.Errorf("serving: repartition: %w", err)
	}
	retired, err := ld.Router.PublishModel(ld.model, next)
	if err != nil {
		next.Close()
		return fmt.Errorf("serving: repartition: %w", err)
	}
	if err := retired.Drain(ctx); err != nil {
		// The new epoch is live; the old one could not be drained in
		// time and is intentionally leaked rather than closed under an
		// in-flight request.
		return err
	}
	ld.recordEpochUtility(retired)
	retired.Close()
	return nil
}

// recordEpochUtility freezes a retiring epoch's final per-shard utilities
// into the deployment's gauge vector.
func (ld *LiveDeployment) recordEpochUtility(rt *RoutingTable) {
	for t := range rt.Shards {
		for s := range rt.Shards[t] {
			ld.EpochUtility.Set(fmt.Sprintf("epoch%d/t%d/s%d", rt.Epoch, t, s), rt.Utility(t, s))
		}
	}
}

// Predict services a query whose sparse indices are in the *original*
// table-ID space, going through the dynamic batcher when one is
// configured. A request addressed to a different model is rejected here —
// a multi-model frontend dispatches on PredictRequest.Model before it
// reaches a variant's deployment. The preprocessing remap happens inside
// the routed epoch snapshot (see DenseShard.Predict), so fused batches and
// plan swaps can never mix ID spaces. When a live profiling window is
// open, the request is also recorded into it.
func (ld *LiveDeployment) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	if got := canonicalModel(req.Model); got != ld.model {
		return fmt.Errorf("serving: request for model %q reached deployment serving %q", got, ld.model)
	}
	ld.recordProfile(req)
	if ld.Batcher != nil {
		return ld.Batcher.Predict(ctx, req, reply)
	}
	return ld.Dense.Predict(ctx, req, reply)
}

// StartProfile opens a fresh live profiling window: every subsequent
// Predict records its original-ID accesses, exactly the Sec. IV-B window
// production servers run ahead of a repartition.
func (ld *LiveDeployment) StartProfile() {
	w := &profileWindow{stats: make([]*embedding.AccessStats, ld.cfg.NumTables)}
	for t := range w.stats {
		w.stats[t] = embedding.NewAccessStats(ld.cfg.RowsPerTable)
	}
	ld.profile.Store(w)
}

// SnapshotProfile closes the current profiling window and returns its
// statistics (nil when no window was open). The window must be restarted
// explicitly for the next cycle.
func (ld *LiveDeployment) SnapshotProfile() []*embedding.AccessStats {
	w := ld.profile.Swap(nil)
	if w == nil {
		return nil
	}
	// Taking the window lock (and marking it closed) fences out in-flight
	// recorders: once we return, nothing mutates the stats anymore.
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	return w.stats
}

// recordProfile adds one request's accesses to the open window, if any.
// With no window open this is one atomic load on the hot path.
func (ld *LiveDeployment) recordProfile(req *PredictRequest) {
	w := ld.profile.Load()
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || len(req.Tables) != len(w.stats) {
		return
	}
	for t, tb := range req.Tables {
		b := &embedding.Batch{Indices: tb.Indices, Offsets: tb.Offsets}
		_ = w.stats[t].RecordBatch(b)
	}
}

// Model returns the canonical model name this deployment serves.
func (ld *LiveDeployment) Model() string { return ld.model }

// Table returns the current routing-table epoch of this deployment's
// model (observability snapshot; the request path pins epochs through the
// router instead).
func (ld *LiveDeployment) Table() *RoutingTable { return ld.Router.LoadModel(ld.model) }

// Epoch returns the current plan epoch number.
func (ld *LiveDeployment) Epoch() int64 { return ld.Table().Epoch }

// Boundaries returns the current epoch's per-table boundary plan.
func (ld *LiveDeployment) Boundaries() []int64 { return ld.Table().Plan }

// Pre returns the current epoch's preprocessing output.
func (ld *LiveDeployment) Pre() *Preprocessed { return ld.Table().Pre }

// Pool returns the replica pool of shard s of table t in the current
// epoch.
func (ld *LiveDeployment) Pool(t, s int) *ReplicaPool { return ld.Table().Pools[t][s] }

// Shard returns the primary shard service of shard s of table t in the
// current epoch.
func (ld *LiveDeployment) Shard(t, s int) *EmbeddingShard { return ld.Table().Shards[t][s] }

// ShardUtility returns the Fig. 14-style memory utility of shard s of
// table t over the traffic the current epoch has served.
func (ld *LiveDeployment) ShardUtility(t, s int) float64 {
	return ld.Table().Utility(t, s)
}

// ExportPredict exposes the deployment's predict frontend (batcher-routed
// when batching is on) as a net/rpc service under name on loopback TCP,
// returning the address to dial with DialPredict. The server is torn down
// by Close.
func (ld *LiveDeployment) ExportPredict(name string) (string, error) {
	srv, err := NewRPCServer("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	if err := srv.RegisterPredict(name, predictFunc(ld.Predict)); err != nil {
		srv.Close()
		return "", err
	}
	ld.servers = append(ld.servers, srv)
	return srv.Addr(), nil
}

// predictFunc adapts a function to PredictClient.
type predictFunc func(context.Context, *PredictRequest, *PredictReply) error

func (f predictFunc) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	return f(ctx, req, reply)
}

var _ PredictClient = (*LiveDeployment)(nil)

// Close flushes the batcher (if any) and tears down the frontend servers
// and the current epoch's transport resources.
func (ld *LiveDeployment) Close() {
	if ld.Batcher != nil {
		// Close is idempotent; keep the field set so a straggling
		// Predict gets "batcher is closed" instead of racing on nil.
		_ = ld.Batcher.Close()
	}
	for _, s := range ld.servers {
		_ = s.Close()
	}
	ld.servers = nil
	if rt := ld.Router.LoadModel(ld.model); rt != nil {
		ld.recordEpochUtility(rt)
		rt.Close()
	}
}

// CollectStats replays the batches in original-ID space into fresh access
// statistics — the profiling window production servers run before
// preprocessing (Sec. IV-B).
func CollectStats(cfg model.Config, perTable [][]*embedding.Batch) ([]*embedding.AccessStats, error) {
	if len(perTable) != cfg.NumTables {
		return nil, fmt.Errorf("serving: stats for %d tables, want %d", len(perTable), cfg.NumTables)
	}
	out := make([]*embedding.AccessStats, cfg.NumTables)
	for t := range perTable {
		st := embedding.NewAccessStats(cfg.RowsPerTable)
		for _, b := range perTable[t] {
			if err := st.RecordBatch(b); err != nil {
				return nil, fmt.Errorf("serving: table %d: %w", t, err)
			}
		}
		out[t] = st
	}
	return out, nil
}
