package serving

import (
	"fmt"
	"io"

	"repro/internal/embedding"
	"repro/internal/model"
)

// Transport selects how shards communicate in a live deployment.
type Transport string

// Supported transports.
const (
	// TransportLocal wires shards with direct method calls (fast,
	// deterministic; used by tests and the quickstart).
	TransportLocal Transport = "local"
	// TransportTCP runs every shard behind net/rpc on loopback TCP —
	// real microservices exchanging serialized messages.
	TransportTCP Transport = "tcp"
)

// BuildOptions configures BuildElastic.
type BuildOptions struct {
	Transport Transport
	// Replicas[s] is the initial replica count of shard s in every
	// table's pool (nil = one replica each). Replicas share the sorted
	// table storage in-process; they model independent serving replicas.
	Replicas []int
	// Batching, when non-nil, fronts the dense shard with a dynamic
	// batcher: concurrent Predict calls are coalesced into fused forward
	// batches (see BatcherOptions). A zero-valued options struct enables
	// batching with defaults.
	Batching *BatcherOptions
}

// LiveDeployment is a fully wired ElasticRec serving instance.
type LiveDeployment struct {
	Pre        *Preprocessed
	Dense      *DenseShard
	Boundaries []int64
	// Batcher is the dynamic-batching frontend over Dense (nil unless
	// BuildOptions.Batching was set). Predict routes through it when
	// present.
	Batcher *Batcher
	// Shards[t][s] is the primary service instance of shard s of table
	// t (replicas added to the pools share its storage and metrics).
	Shards [][]*EmbeddingShard
	// Pools[t][s] load-balances shard s of table t.
	Pools [][]*ReplicaPool

	servers []*RPCServer
	closers []io.Closer
}

// BuildElastic assembles a live ElasticRec deployment from a fully
// instantiated model: it preprocesses (hotness-sorts) the tables from the
// recorded access statistics, slices every table at the plan boundaries,
// spins each slice up as an embedding-shard service (optionally behind
// loopback-TCP RPC), and wires a dense shard over the replica pools.
func BuildElastic(m *model.Model, stats []*embedding.AccessStats, boundaries []int64, opts BuildOptions) (*LiveDeployment, error) {
	if len(boundaries) == 0 {
		return nil, fmt.Errorf("serving: empty partition boundaries")
	}
	if boundaries[len(boundaries)-1] != m.Config.RowsPerTable {
		return nil, fmt.Errorf("serving: boundaries end at %d, table has %d rows",
			boundaries[len(boundaries)-1], m.Config.RowsPerTable)
	}
	if opts.Transport == "" {
		opts.Transport = TransportLocal
	}
	pre, err := Preprocess(m, stats)
	if err != nil {
		return nil, err
	}
	ld := &LiveDeployment{Pre: pre, Boundaries: boundaries}

	cfg := m.Config
	numShards := len(boundaries)
	replicaCount := func(s int) int {
		if s < len(opts.Replicas) && opts.Replicas[s] > 0 {
			return opts.Replicas[s]
		}
		return 1
	}

	allBoundaries := make([][]int64, cfg.NumTables)
	allClients := make([][]GatherClient, cfg.NumTables)
	for t := 0; t < cfg.NumTables; t++ {
		allBoundaries[t] = boundaries
		var shardRow []*EmbeddingShard
		var poolRow []*ReplicaPool
		var clientRow []GatherClient
		lo := int64(0)
		for s := 0; s < numShards; s++ {
			hi := boundaries[s]
			svc, err := NewEmbeddingShard(t, s, pre.Sorted[t], lo, hi)
			if err != nil {
				ld.Close()
				return nil, err
			}
			shardRow = append(shardRow, svc)
			pool := NewReplicaPool()
			for r := 0; r < replicaCount(s); r++ {
				client, err := ld.exportGather(svc, fmt.Sprintf("T%dS%dR%d", t, s, r), opts.Transport)
				if err != nil {
					ld.Close()
					return nil, err
				}
				pool.Add(client)
			}
			poolRow = append(poolRow, pool)
			clientRow = append(clientRow, pool)
			lo = hi
		}
		ld.Shards = append(ld.Shards, shardRow)
		ld.Pools = append(ld.Pools, poolRow)
		allClients[t] = clientRow
	}

	denseModel, err := model.NewDenseOnly(cfg, 0)
	if err != nil {
		ld.Close()
		return nil, err
	}
	// The dense shard must score with the same MLP parameters as the
	// source model, so copy them over.
	denseModel.Bottom = m.Bottom.Clone()
	denseModel.Top = m.Top.Clone()
	dense, err := NewDenseShard(denseModel, allBoundaries, allClients)
	if err != nil {
		ld.Close()
		return nil, err
	}
	ld.Dense = dense
	if opts.Batching != nil {
		ld.Batcher = NewBatcher(dense, dense.Config(), *opts.Batching)
	}
	return ld, nil
}

// exportGather wraps a shard service in the chosen transport.
func (ld *LiveDeployment) exportGather(svc GatherClient, name string, tr Transport) (GatherClient, error) {
	switch tr {
	case TransportLocal:
		return svc, nil
	case TransportTCP:
		srv, err := NewRPCServer("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		if err := srv.RegisterGather(name, svc); err != nil {
			srv.Close()
			return nil, err
		}
		ld.servers = append(ld.servers, srv)
		client, err := DialGather(srv.Addr(), name)
		if err != nil {
			return nil, err
		}
		ld.closers = append(ld.closers, client)
		return client, nil
	default:
		return nil, fmt.Errorf("serving: unknown transport %q", tr)
	}
}

// Predict services a query whose sparse indices are in the *original*
// table-ID space: the frontend applies the preprocessing remap and then
// calls the dense shard (the microservice entry point), going through the
// dynamic batcher when one is configured. The remap happens before
// enqueue, so a request with out-of-range indices is rejected without ever
// joining a fused batch.
func (ld *LiveDeployment) Predict(req *PredictRequest, reply *PredictReply) error {
	remapped, err := ld.Pre.RemapRequest(req)
	if err != nil {
		return err
	}
	if ld.Batcher != nil {
		return ld.Batcher.Predict(remapped, reply)
	}
	return ld.Dense.Predict(remapped, reply)
}

// ExportPredict exposes the deployment's predict frontend (batcher-routed
// when batching is on) as a net/rpc service under name on loopback TCP,
// returning the address to dial with DialPredict. The server is torn down
// by Close.
func (ld *LiveDeployment) ExportPredict(name string) (string, error) {
	srv, err := NewRPCServer("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	if err := srv.RegisterPredict(name, predictFunc(ld.Predict)); err != nil {
		srv.Close()
		return "", err
	}
	ld.servers = append(ld.servers, srv)
	return srv.Addr(), nil
}

// predictFunc adapts a function to PredictClient.
type predictFunc func(*PredictRequest, *PredictReply) error

func (f predictFunc) Predict(req *PredictRequest, reply *PredictReply) error { return f(req, reply) }

var _ PredictClient = (*LiveDeployment)(nil)

// ShardUtility returns the Fig. 14-style memory utility of shard s of
// table t over the traffic served so far.
func (ld *LiveDeployment) ShardUtility(t, s int) float64 {
	return ld.Shards[t][s].Utility.Utility()
}

// Close flushes the batcher (if any) and tears down any RPC servers and
// client connections.
func (ld *LiveDeployment) Close() {
	if ld.Batcher != nil {
		// Close is idempotent; keep the field set so a straggling
		// Predict gets "batcher is closed" instead of racing on nil.
		_ = ld.Batcher.Close()
	}
	for _, c := range ld.closers {
		_ = c.Close()
	}
	ld.closers = nil
	for _, s := range ld.servers {
		_ = s.Close()
	}
	ld.servers = nil
}

// CollectStats replays the batches in original-ID space into fresh access
// statistics — the profiling window production servers run before
// preprocessing (Sec. IV-B).
func CollectStats(cfg model.Config, perTable [][]*embedding.Batch) ([]*embedding.AccessStats, error) {
	if len(perTable) != cfg.NumTables {
		return nil, fmt.Errorf("serving: stats for %d tables, want %d", len(perTable), cfg.NumTables)
	}
	out := make([]*embedding.AccessStats, cfg.NumTables)
	for t := range perTable {
		st := embedding.NewAccessStats(cfg.RowsPerTable)
		for _, b := range perTable[t] {
			if err := st.RecordBatch(b); err != nil {
				return nil, fmt.Errorf("serving: table %d: %w", t, err)
			}
		}
		out[t] = st
	}
	return out, nil
}
