package serving

import (
	"context"
	"fmt"
	"net/rpc"

	"repro/internal/embedding"
	"repro/internal/model"
)

// This file is the wire form of the control plane: the Controller's
// lifecycle API (Deploy / Undeploy / Status) exposed as a versioned net/rpc
// admin service on the same frontend endpoint that serves Predict traffic.
// Every request carries AdminAPIVersion; a frontend refuses a request from
// a different control-plane generation instead of misinterpreting it, so
// admin tooling and servers can roll independently. A Deploy request does
// not ship model weights — it ships the variant's spec (architecture
// config + parameter seed + profiling-window counts), and the frontend
// instantiates the model locally, exactly how every other layer of this
// repository materializes variants.

// AdminAPIVersion is the control-plane wire version. Bump it when a
// request/reply shape changes incompatibly; servers reject mismatches.
const AdminAPIVersion = 1

// AdminServiceName returns the admin service name exported alongside a
// predict frontend registered under frontend (net/rpc service names cannot
// be dotted, so the suffix is appended directly).
func AdminServiceName(frontend string) string { return frontend + "Admin" }

// AdminDeployRequest asks a frontend to build and publish a new variant.
type AdminDeployRequest struct {
	// APIVersion must equal AdminAPIVersion.
	APIVersion int
	// Name is the variant name the frontend will serve it under.
	Name string
	// Config is the variant's DLRM architecture and workload geometry.
	Config model.Config
	// Seed selects the variant's parameters (model.New(Config, Seed)).
	Seed uint64
	// Counts[t] is table t's profiling-window access counts in
	// original-ID space — the window the deploy preprocesses and
	// pre-warms from.
	Counts [][]int64
	// Boundaries is the initial shard plan.
	Boundaries []int64
	// Options configures transport/replicas/batching/plan-cache.
	Options BuildOptions
	// Deadline bounds the deploy server-side (unix nanos, 0 = none), like
	// every other wire deadline in this repository. It is checked at the
	// build boundary: a deploy whose deadline passed mid-build is torn
	// down instead of published, so a timed-out client can safely retry.
	Deadline int64
}

// AdminDeployReply reports the published variant.
type AdminDeployReply struct {
	Model  string
	Epoch  int64
	Shards int
}

// AdminUndeployRequest asks a frontend to drain a variant out.
type AdminUndeployRequest struct {
	APIVersion int
	Model      string
	// Deadline bounds the drain server-side (unix nanos, 0 = none).
	Deadline int64
}

// AdminUndeployReply reports the retired variant.
type AdminUndeployReply struct {
	Model string
}

// AdminStatusRequest asks for per-model snapshots (Model empty = all).
type AdminStatusRequest struct {
	APIVersion int
	Model      string
	Deadline   int64
}

// AdminStatusReply carries the snapshots in registration order.
type AdminStatusReply struct {
	Models []ModelStatus
}

// checkAdminVersion rejects requests from a different control-plane
// generation.
func checkAdminVersion(got int) error {
	if got != AdminAPIVersion {
		return fmt.Errorf("serving: admin API version %d not supported (server speaks v%d)", got, AdminAPIVersion)
	}
	return nil
}

// adminRPC adapts a Controller to net/rpc's method signature (deadlines
// ride the requests, same contract as the predict/gather services).
type adminRPC struct{ ctrl *Controller }

// Deploy is the exported RPC method: it reconstructs the variant from its
// spec (model weights from Config+Seed, profiling window from Counts) and
// publishes it into the running frontend.
func (a *adminRPC) Deploy(req *AdminDeployRequest, reply *AdminDeployReply) error {
	if err := checkAdminVersion(req.APIVersion); err != nil {
		return err
	}
	ctx, cancel := deadlineContext(req.Deadline)
	defer cancel()
	m, err := model.New(req.Config, req.Seed)
	if err != nil {
		return fmt.Errorf("serving: admin deploy %q: %w", req.Name, err)
	}
	if len(req.Counts) != req.Config.NumTables {
		return fmt.Errorf("serving: admin deploy %q: %d count tables, want %d",
			req.Name, len(req.Counts), req.Config.NumTables)
	}
	stats := make([]*embedding.AccessStats, len(req.Counts))
	for t, counts := range req.Counts {
		if int64(len(counts)) != req.Config.RowsPerTable {
			return fmt.Errorf("serving: admin deploy %q: table %d counts cover %d rows, want %d",
				req.Name, t, len(counts), req.Config.RowsPerTable)
		}
		st := &embedding.AccessStats{Counts: append([]int64(nil), counts...)}
		for _, c := range counts {
			st.Total += c
		}
		stats[t] = st
	}
	if err := a.ctrl.Deploy(ctx, ModelSpec{
		Name: req.Name, Model: m, Stats: stats,
		Boundaries: req.Boundaries, Options: req.Options,
	}); err != nil {
		return err
	}
	st, ok := a.ctrl.ModelStatus(req.Name)
	if !ok {
		return fmt.Errorf("serving: admin deploy %q: published model missing from status", req.Name)
	}
	reply.Model = st.Model
	reply.Epoch = st.Epoch
	reply.Shards = st.Shards
	return nil
}

// Undeploy is the exported RPC method: it drains the variant out of the
// frontend within the request deadline.
func (a *adminRPC) Undeploy(req *AdminUndeployRequest, reply *AdminUndeployReply) error {
	if err := checkAdminVersion(req.APIVersion); err != nil {
		return err
	}
	ctx, cancel := deadlineContext(req.Deadline)
	defer cancel()
	if err := a.ctrl.Undeploy(ctx, req.Model); err != nil {
		return err
	}
	reply.Model = canonicalModel(req.Model)
	return nil
}

// Status is the exported RPC method.
func (a *adminRPC) Status(req *AdminStatusRequest, reply *AdminStatusReply) error {
	if err := checkAdminVersion(req.APIVersion); err != nil {
		return err
	}
	if req.Model != "" {
		st, ok := a.ctrl.ModelStatus(req.Model)
		if !ok {
			return fmt.Errorf("serving: admin status: no model %q", canonicalModel(req.Model))
		}
		reply.Models = []ModelStatus{st}
		return nil
	}
	reply.Models = a.ctrl.Status()
	return nil
}

// AdminClient drives a remote frontend's control plane. Every call stamps
// AdminAPIVersion and the context deadline onto the wire and follows the
// rpcGo cancel contract.
type AdminClient struct {
	client *rpc.Client
	name   string
}

// DialAdmin connects to the admin service exported alongside the predict
// frontend registered under frontend at addr (see AdminServiceName).
// Admin traffic rides the gob codec — the sniffing listener serves it
// beside binary predict connections — and the dial is bounded by
// DialTimeout like every other transport dial.
func DialAdmin(addr, frontend string) (*AdminClient, error) {
	c, err := dialGob(addr)
	if err != nil {
		return nil, err
	}
	return &AdminClient{client: c, name: AdminServiceName(frontend)}, nil
}

// Deploy builds and publishes a variant on the remote frontend.
func (c *AdminClient) Deploy(ctx context.Context, req *AdminDeployRequest, reply *AdminDeployReply) error {
	stamped := *req
	stamped.APIVersion = AdminAPIVersion
	stamped.Deadline = ctxDeadlineNanos(ctx)
	return rpcGo(ctx, c.client, c.name+".Deploy", &stamped, reply)
}

// Undeploy drains a variant out of the remote frontend.
func (c *AdminClient) Undeploy(ctx context.Context, mdl string) (AdminUndeployReply, error) {
	req := &AdminUndeployRequest{APIVersion: AdminAPIVersion, Model: mdl, Deadline: ctxDeadlineNanos(ctx)}
	var reply AdminUndeployReply
	err := rpcGo(ctx, c.client, c.name+".Undeploy", req, &reply)
	return reply, err
}

// Status snapshots the remote frontend's variants (mdl empty = all).
func (c *AdminClient) Status(ctx context.Context, mdl string) ([]ModelStatus, error) {
	req := &AdminStatusRequest{APIVersion: AdminAPIVersion, Model: mdl, Deadline: ctxDeadlineNanos(ctx)}
	var reply AdminStatusReply
	if err := rpcGo(ctx, c.client, c.name+".Status", req, &reply); err != nil {
		return nil, err
	}
	return reply.Models, nil
}

// Close tears down the connection.
func (c *AdminClient) Close() error { return c.client.Close() }
