package serving

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

// batcherConfig is a minimal geometry for batcher plumbing tests: one
// table, one dense feature.
func batcherConfig() model.Config {
	return model.Config{
		Name:          "batcher",
		DenseInputDim: 1,
		BottomMLP:     []int{4},
		TopMLP:        []int{4, 1},
		NumTables:     1,
		RowsPerTable:  100,
		EmbeddingDim:  4,
		Pooling:       2,
		LocalityP:     0.9,
		BatchSize:     1,
	}
}

// recordingBackend is a fake PredictClient that records every fused
// request it sees and scores input i with its first dense feature.
type recordingBackend struct {
	mu    sync.Mutex
	calls []*PredictRequest
	fail  error
	delay time.Duration
}

func (r *recordingBackend) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	r.mu.Lock()
	r.calls = append(r.calls, req)
	fail := r.fail
	delay := r.delay
	r.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail != nil {
		return fail
	}
	reply.Probs = make([]float32, req.BatchSize)
	for i := 0; i < req.BatchSize; i++ {
		reply.Probs[i] = req.Dense[i*req.DenseDim]
	}
	return nil
}

func (r *recordingBackend) batchSizes() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, len(r.calls))
	for i, c := range r.calls {
		out[i] = c.BatchSize
	}
	return out
}

// singleInputRequest builds a valid one-input request whose dense feature
// (and therefore expected probability) is v.
func singleInputRequest(v float32) *PredictRequest {
	return &PredictRequest{
		BatchSize: 1,
		DenseDim:  1,
		Dense:     []float32{v},
		Tables:    []TableBatch{{Indices: []int64{0, 1}, Offsets: []int32{0}}},
	}
}

// TestBatcherMaxBatchCoalescing: with an effectively infinite deadline,
// batches must flush exactly at MaxBatch inputs, and every caller must get
// its own input's score back.
func TestBatcherMaxBatchCoalescing(t *testing.T) {
	backend := &recordingBackend{}
	b := NewBatcher(backend, batcherConfig(), BatcherOptions{
		MaxBatch: 4,
		MaxDelay: time.Hour,
	})
	defer b.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	got := make([]float32, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reply PredictReply
			errs[i] = b.Predict(bg, singleInputRequest(float32(i)), &reply)
			if errs[i] == nil {
				got[i] = reply.Probs[0]
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if got[i] != float32(i) {
			t.Fatalf("request %d demuxed %v, want %v", i, got[i], float32(i))
		}
	}
	if b.Batches.Value() != 2 {
		t.Fatalf("fused batches = %d, want 2", b.Batches.Value())
	}
	for _, bs := range backend.batchSizes() {
		if bs != 4 {
			t.Fatalf("fused batch sizes = %v, want all 4", backend.batchSizes())
		}
	}
	if b.Requests.Value() != n {
		t.Fatalf("requests = %d, want %d", b.Requests.Value(), n)
	}
	if b.BatchSizes.Mean() != 4 {
		t.Fatalf("batch-size histogram mean = %v, want 4", b.BatchSizes.Mean())
	}
}

// TestBatcherDeadlineFlush: a lone sub-max request arriving to an empty
// queue dispatches after the short solo grace instead of sleeping out the
// full MaxDelay — the low-concurrency fix. Setting SoloGrace >= MaxDelay
// restores the old always-wait behaviour.
func TestBatcherDeadlineFlush(t *testing.T) {
	const delay = 40 * time.Millisecond
	t.Run("solo-grace-dispatches-early", func(t *testing.T) {
		backend := &recordingBackend{}
		b := NewBatcher(backend, batcherConfig(), BatcherOptions{
			MaxBatch: 1 << 20,
			MaxDelay: delay, // default SoloGrace = delay/8
		})
		defer b.Close()

		start := time.Now()
		var reply PredictReply
		if err := b.Predict(bg, singleInputRequest(7), &reply); err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed >= delay {
			t.Fatalf("lone request flushed after %v, expected well before MaxDelay %v (solo grace)", elapsed, delay)
		}
		if reply.Probs[0] != 7 {
			t.Fatalf("probs = %v", reply.Probs)
		}
		if got := backend.batchSizes(); len(got) != 1 || got[0] != 1 {
			t.Fatalf("backend batches = %v, want [1]", got)
		}
	})
	t.Run("grace-disabled-waits-maxdelay", func(t *testing.T) {
		backend := &recordingBackend{}
		b := NewBatcher(backend, batcherConfig(), BatcherOptions{
			MaxBatch:  1 << 20,
			MaxDelay:  delay,
			SoloGrace: delay, // >= MaxDelay: old always-wait behaviour
		})
		defer b.Close()

		start := time.Now()
		var reply PredictReply
		if err := b.Predict(bg, singleInputRequest(7), &reply); err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed < delay/2 {
			t.Fatalf("flushed after %v, expected to wait ~%v for batchmates", elapsed, delay)
		}
		if got := backend.batchSizes(); len(got) != 1 || got[0] != 1 {
			t.Fatalf("backend batches = %v, want [1]", got)
		}
	})
}

// TestBatcherFuseRebasesOffsets pins the fusion wire format: dense rows
// stacked, per-table indices concatenated, offsets rebased.
func TestBatcherFuseRebasesOffsets(t *testing.T) {
	backend := &recordingBackend{}
	b := NewBatcher(backend, batcherConfig(), BatcherOptions{
		MaxBatch: 3,
		MaxDelay: time.Hour,
	})
	defer b.Close()

	reqA := &PredictRequest{
		BatchSize: 2,
		DenseDim:  1,
		Dense:     []float32{10, 11},
		Tables:    []TableBatch{{Indices: []int64{5, 6, 7}, Offsets: []int32{0, 2}}},
	}
	reqB := &PredictRequest{
		BatchSize: 1,
		DenseDim:  1,
		Dense:     []float32{12},
		Tables:    []TableBatch{{Indices: []int64{9}, Offsets: []int32{0}}},
	}
	var wg sync.WaitGroup
	var replyA, replyB PredictReply
	var errA, errB error
	wg.Add(1)
	go func() { defer wg.Done(); errA = b.Predict(bg, reqA, &replyA) }()
	time.Sleep(10 * time.Millisecond) // make reqA the batch head deterministically
	wg.Add(1)
	go func() { defer wg.Done(); errB = b.Predict(bg, reqB, &replyB) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v / %v", errA, errB)
	}

	backend.mu.Lock()
	defer backend.mu.Unlock()
	if len(backend.calls) != 1 {
		t.Fatalf("backend calls = %d, want 1 fused call", len(backend.calls))
	}
	fused := backend.calls[0]
	if fused.BatchSize != 3 {
		t.Fatalf("fused batch size = %d", fused.BatchSize)
	}
	wantDense := []float32{10, 11, 12}
	for i, v := range wantDense {
		if fused.Dense[i] != v {
			t.Fatalf("fused dense = %v, want %v", fused.Dense, wantDense)
		}
	}
	wantIdx := []int64{5, 6, 7, 9}
	for i, v := range wantIdx {
		if fused.Tables[0].Indices[i] != v {
			t.Fatalf("fused indices = %v, want %v", fused.Tables[0].Indices, wantIdx)
		}
	}
	wantOff := []int32{0, 2, 3}
	for i, v := range wantOff {
		if fused.Tables[0].Offsets[i] != v {
			t.Fatalf("fused offsets = %v, want %v (rebase broken)", fused.Tables[0].Offsets, wantOff)
		}
	}
	if replyA.Probs[0] != 10 || replyA.Probs[1] != 11 || replyB.Probs[0] != 12 {
		t.Fatalf("demux: A=%v B=%v", replyA.Probs, replyB.Probs)
	}
}

// TestBatcherErrorDemux: a malformed request is bounced at enqueue and
// must not fail its would-be batchmates.
func TestBatcherErrorDemux(t *testing.T) {
	backend := &recordingBackend{}
	b := NewBatcher(backend, batcherConfig(), BatcherOptions{
		MaxBatch: 2,
		MaxDelay: 20 * time.Millisecond,
	})
	defer b.Close()

	bad := &PredictRequest{BatchSize: 2, DenseDim: 1, Dense: []float32{1}} // payload mismatch
	var badReply PredictReply
	if err := b.Predict(bg, bad, &badReply); err == nil {
		t.Fatal("malformed request must be rejected")
	}
	if len(backend.batchSizes()) != 0 {
		t.Fatal("malformed request reached the backend")
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reply PredictReply
			errs[i] = b.Predict(bg, singleInputRequest(float32(i)), &reply)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("good request %d failed after bad request: %v", i, err)
		}
	}
}

// TestBatcherBackendErrorFansOut: when the fused call itself fails, every
// caller in that batch sees the error; the batcher stays usable.
func TestBatcherBackendErrorFansOut(t *testing.T) {
	backend := &recordingBackend{fail: fmt.Errorf("backend down")}
	b := NewBatcher(backend, batcherConfig(), BatcherOptions{
		MaxBatch: 2,
		MaxDelay: time.Hour,
	})
	defer b.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reply PredictReply
			errs[i] = b.Predict(bg, singleInputRequest(float32(i)), &reply)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("request %d: want fused backend error", i)
		}
	}

	backend.mu.Lock()
	backend.fail = nil
	backend.mu.Unlock()
	var reply PredictReply
	var err error
	done := make(chan struct{})
	go func() {
		err = b.Predict(bg, singleInputRequest(3), &reply)
		close(done)
	}()
	go func() {
		var r PredictReply
		_ = b.Predict(bg, singleInputRequest(4), &r)
	}()
	<-done
	if err != nil {
		t.Fatalf("batcher unusable after backend error: %v", err)
	}
}

// TestBatcherClose: Close flushes and further Predicts are rejected.
func TestBatcherClose(t *testing.T) {
	backend := &recordingBackend{}
	b := NewBatcher(backend, batcherConfig(), BatcherOptions{MaxDelay: time.Millisecond})
	var reply PredictReply
	if err := b.Predict(bg, singleInputRequest(1), &reply); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := b.Predict(bg, singleInputRequest(2), &reply); err == nil {
		t.Fatal("predict after Close must fail")
	}
}

// TestBatcherEquivalenceUnderConcurrency is the batching correctness and
// race stress test: many clients hammer a batched live deployment and
// every reply must match the monolithic baseline bit-for-bit (within
// float tolerance), proving fuse/demux never mixes up inputs. Run with
// -race in CI.
func TestBatcherEquivalenceUnderConcurrency(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	mono := NewMonolith(m.Clone())
	ld, err := BuildElastic(m, stats, []int64{50, 200, cfg.RowsPerTable}, BuildOptions{
		Batching: &BatcherOptions{MaxBatch: 12, MaxDelay: 500 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	if ld.Batcher == nil {
		t.Fatal("BuildOptions.Batching did not wire a batcher")
	}

	const clients = 8
	const perClient = 20
	reqs := make([]*PredictRequest, clients*perClient)
	want := make([][]float32, len(reqs))
	for i := range reqs {
		reqs[i] = makeRequest(cfg, gen, uint64(1000+i))
		var mr PredictReply
		if err := mono.Predict(bg, reqs[i], &mr); err != nil {
			t.Fatal(err)
		}
		want[i] = mr.Probs
	}

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				i := c*perClient + q
				var reply PredictReply
				if err := ld.Predict(bg, reqs[i], &reply); err != nil {
					errc <- fmt.Errorf("client %d query %d: %w", c, q, err)
					return
				}
				for j := range want[i] {
					if math.Abs(float64(reply.Probs[j]-want[i][j])) > 1e-5 {
						errc <- fmt.Errorf("client %d query %d input %d: batched %v != monolith %v",
							c, q, j, reply.Probs[j], want[i][j])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if got := b2i(ld.Batcher.Requests.Value()); got != clients*perClient {
		t.Fatalf("batcher saw %d requests, want %d", got, clients*perClient)
	}
	if ld.Batcher.Batches.Value() > ld.Batcher.Requests.Value() {
		t.Fatal("more fused batches than requests")
	}
	if ld.Batcher.QueueDepth.Count() != ld.Batcher.Batches.Value() {
		t.Fatal("queue-depth histogram must observe once per dispatch")
	}
}

func b2i(v int64) int { return int(v) }

// TestConcurrentPredictThroughputScaling asserts the headline win of the
// de-serialized hot path: on the same deployment, 8 closed-loop clients
// must sustain at least 2x the single-client throughput. The old
// mutex-serialized dense pass pinned this ratio to ~1x regardless of core
// count. Parallel speedup needs parallel hardware, so the test skips on
// machines with fewer than 4 CPUs (the benchmark
// BenchmarkServing_ConcurrentPredict reports the ratio everywhere).
func TestConcurrentPredictThroughputScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement skipped in -short")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: need >=4 CPUs to demonstrate parallel scaling", runtime.GOMAXPROCS(0))
	}
	cfg := liveConfig()
	cfg.BottomMLP = []int{64, 32}
	cfg.TopMLP = []int{64, 1}
	cfg.EmbeddingDim = 32
	cfg.BatchSize = 8
	m, stats, gen := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{100, cfg.RowsPerTable}, BuildOptions{
		Batching: &BatcherOptions{MaxBatch: 4 * cfg.BatchSize, MaxDelay: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	reqs := make([]*PredictRequest, 16)
	for i := range reqs {
		reqs[i] = makeRequest(cfg, gen, uint64(i))
	}
	run := func(clients, total int) time.Duration {
		var next atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(total) {
						return
					}
					var reply PredictReply
					if err := ld.Predict(bg, reqs[(int(i)+c)%len(reqs)], &reply); err != nil {
						t.Error(err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		return time.Since(start)
	}
	const total = 400
	run(8, total) // warm-up: page in tables, fill the scratch pool
	t1 := run(1, total)
	t8 := run(8, total)
	ratio := float64(t1) / float64(t8)
	t.Logf("1 client: %v, 8 clients: %v — %.2fx scaling", t1, t8, ratio)
	if ratio < 2 {
		t.Fatalf("8-client throughput only %.2fx the single-client baseline, want >= 2x", ratio)
	}
}

// TestStressPredictThroughBatcher drives the Sec. IV-D stress ramp through
// the dynamic batcher so the QPSmax methodology covers the fused pipeline.
func TestStressPredictThroughBatcher(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{100, cfg.RowsPerTable}, BuildOptions{
		Batching: &BatcherOptions{MaxBatch: 16, MaxDelay: 200 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	seed := uint64(0)
	var mu sync.Mutex
	newReq := func() *PredictRequest {
		mu.Lock()
		defer mu.Unlock() // the query generator is not concurrency-safe
		seed++
		return makeRequest(cfg, gen, seed)
	}
	res, err := StressPredict(context.Background(), ld, newReq, StressOptions{
		MaxConcurrency:   4,
		RequestsPerLevel: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QPSMax <= 0 || len(res.Samples) == 0 {
		t.Fatalf("stress result: %+v", res)
	}
	if ld.Batcher.Batches.Value() == 0 {
		t.Fatal("stress traffic never reached the batcher")
	}
}

// TestBatchContextUsesEarliestDeadline pins the fused-call deadline rule:
// the fused context is bounded by the EARLIEST batchmate deadline, so no
// request in the batch can execute past its own budget (the old rule took
// the latest, silently stretching a tight request's budget to its most
// permissive batchmate's).
func TestBatchContextUsesEarliestDeadline(t *testing.T) {
	now := time.Now()
	tight := now.Add(50 * time.Millisecond).UnixNano()
	loose := now.Add(time.Hour).UnixNano()

	ctx, cancel := batchContext([]*pendingPredict{{deadline: loose}, {deadline: tight}, {deadline: loose}})
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("fused context has no deadline")
	}
	if got := dl.UnixNano(); got != tight {
		t.Fatalf("fused deadline = %v, want the earliest batchmate deadline %v",
			dl, time.Unix(0, tight))
	}

	// A no-deadline batchmate does not unbound the fused call: the tight
	// caller's budget still governs.
	ctx2, cancel2 := batchContext([]*pendingPredict{{deadline: 0}, {deadline: tight}})
	defer cancel2()
	dl2, ok := ctx2.Deadline()
	if !ok || dl2.UnixNano() != tight {
		t.Fatalf("fused deadline with undeadlined batchmate = (%v, %v), want %v",
			dl2, ok, time.Unix(0, tight))
	}

	// No deadlines anywhere -> unbounded.
	ctx3, cancel3 := batchContext([]*pendingPredict{{deadline: 0}, {deadline: 0}})
	defer cancel3()
	if _, ok := ctx3.Deadline(); ok {
		t.Fatal("deadline-free batch got a bounded context")
	}
}

// deadlineAwareSlowBackend succeeds only after 30 s but honors its
// context, like the real dense shard's cancelable gather fan-out.
type deadlineAwareSlowBackend struct{}

func (deadlineAwareSlowBackend) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(30 * time.Second):
		reply.Probs = make([]float32, req.BatchSize)
		return nil
	}
}

// TestBatcherHonorsTightestCallerDeadline drives the earliest-deadline
// rule end to end: a tight-deadline request joins a batch with a
// permissive batchmate, and the fused dispatch must fail fast (bounded by
// the tight deadline) instead of running the slow backend on the
// permissive caller's hour-long budget, as the old latest-deadline rule
// did.
func TestBatcherHonorsTightestCallerDeadline(t *testing.T) {
	b := NewBatcher(deadlineAwareSlowBackend{}, batcherConfig(),
		BatcherOptions{MaxBatch: 2, MaxDelay: 200 * time.Millisecond})
	defer b.Close()

	var wg sync.WaitGroup
	var tightErr, looseErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		var reply PredictReply
		tightErr = b.Predict(ctx, singleInputRequest(0.5), &reply)
	}()
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		defer cancel()
		var reply PredictReply
		looseErr = b.Predict(ctx, singleInputRequest(0.25), &reply)
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("fused batch ran on the permissive caller's budget instead of the tight one")
	}
	if tightErr == nil {
		t.Fatal("tight-deadline caller succeeded against a 30s backend")
	}
	if looseErr == nil {
		t.Fatal("permissive batchmate succeeded; expected the earliest-deadline bound to fail the fused call")
	}
}
