package serving

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bucketize"
	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tensor"
)

// DenseShard is one DLRM variant's dense DNN microservice: it owns that
// variant's bottom/top MLP parameters and consults the epoch-versioned
// Router for the variant's current partition plan. On Predict it pins
// exactly one routing-table epoch of its own model, applies that epoch's
// preprocessing remap, bucketizes the sparse inputs against that epoch's
// boundaries, fans the gathers out concurrently to that epoch's shard
// clients, merges the pooled partial sums and finishes the forward pass
// (Sec. IV-A). Because the whole fan-out happens inside one snapshot, a
// concurrent plan swap can never mix shards of two plans — and because the
// shard serves exactly one model and rejects mismatched requests, it can
// never mix two variants either.
type DenseShard struct {
	cfg    model.Config
	router *Router
	model  string // canonical model name this shard serves

	dense *model.Model // parameters read-only; scratch comes from its pool

	Latency *metrics.LatencyRecorder
	QPS     *metrics.QPSMeter
}

// NewDenseShard wires a dense service over a routing layer, serving the
// default model — the single-variant constructor. denseModel needs only
// its MLPs (model.NewDenseOnly suffices); router serves the partition plan
// epochs (see NewRoutingTable for the plan layout).
func NewDenseShard(denseModel *model.Model, router *Router) (*DenseShard, error) {
	return NewModelDenseShard(DefaultModel, denseModel, router)
}

// NewModelDenseShard wires a dense service for one named DLRM variant over
// a shared multi-model routing layer. The variant must already be
// registered with the router.
func NewModelDenseShard(name string, denseModel *model.Model, router *Router) (*DenseShard, error) {
	name = canonicalModel(name)
	if router == nil || router.LoadModel(name) == nil {
		return nil, fmt.Errorf("serving: dense shard needs a router with a published routing table for model %q", name)
	}
	return &DenseShard{
		cfg:     denseModel.Config,
		router:  router,
		model:   name,
		dense:   denseModel,
		Latency: metrics.NewLatencyRecorder(0),
		QPS:     metrics.NewQPSMeter(10 * time.Second),
	}, nil
}

// Config returns the model geometry the shard serves (used by the batcher
// frontend to validate requests before they join a fused batch).
func (d *DenseShard) Config() model.Config { return d.cfg }

// Model returns the canonical model name the shard serves.
func (d *DenseShard) Model() string { return d.model }

// Router returns the routing layer the shard consults.
func (d *DenseShard) Router() *Router { return d.router }

// gatherCall is one (table, shard) RPC of the fan-out.
type gatherCall struct {
	table, shard int
	req          GatherRequest
	reply        GatherReply
}

// Predict services one query. When the pinned epoch carries a
// preprocessing remap the request is in original-ID space; otherwise it is
// already hotness-sorted.
func (d *DenseShard) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	start := time.Now()
	if err := req.Validate(d.cfg.NumTables); err != nil {
		return err
	}
	if req.DenseDim != d.cfg.DenseInputDim {
		return fmt.Errorf("serving: dense dim %d != model %d", req.DenseDim, d.cfg.DenseInputDim)
	}
	if got := canonicalModel(req.Model); got != d.model {
		return fmt.Errorf("serving: request for model %q reached dense shard serving %q", got, d.model)
	}
	bs := req.BatchSize

	// Pin one routing epoch of this shard's model for the whole request;
	// the epoch cannot be retired until this request releases it.
	rt, err := d.router.AcquireModel(d.model)
	if err != nil {
		return err
	}
	defer rt.release()

	if rt.Pre != nil {
		remapped, err := rt.Pre.RemapRequest(req)
		if err != nil {
			return err
		}
		req = remapped
	}

	// Bucketize every table's batch across the epoch's shards (Sec. IV-C).
	var calls []*gatherCall
	for t := 0; t < d.cfg.NumTables; t++ {
		b := &embedding.Batch{Indices: req.Tables[t].Indices, Offsets: req.Tables[t].Offsets}
		parts, err := bucketize.Split(b, rt.Boundaries[t])
		if err != nil {
			return fmt.Errorf("serving: table %d: %w", t, err)
		}
		for s, part := range parts {
			calls = append(calls, &gatherCall{
				table: t,
				shard: s,
				req: GatherRequest{
					Table:   t,
					Shard:   s,
					Indices: part.Indices,
					Offsets: part.Offsets,
				},
			})
		}
	}

	// Fan the gathers out concurrently — one RPC per (table, shard) — in
	// errgroup style: the first failure cancels the sibling gathers, and
	// the wait ensures no straggler lands after Predict returns.
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for _, c := range calls {
		wg.Add(1)
		go func(c *gatherCall) {
			defer wg.Done()
			if err := rt.Clients[c.table][c.shard].Gather(gctx, &c.req, &c.reply); err != nil {
				fail(fmt.Errorf("serving: gather t%d s%d: %w", c.table, c.shard, err))
				return
			}
			if c.reply.BatchSize != bs || c.reply.Dim != d.cfg.EmbeddingDim {
				fail(fmt.Errorf("serving: gather t%d s%d returned %dx%d, want %dx%d",
					c.table, c.shard, c.reply.BatchSize, c.reply.Dim, bs, d.cfg.EmbeddingDim))
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	// Merge per-table partial sums (pooling is additive).
	pooled := make([]*tensor.Matrix, d.cfg.NumTables)
	for t := range pooled {
		pooled[t] = tensor.NewMatrix(bs, d.cfg.EmbeddingDim)
	}
	for _, c := range calls {
		dst := pooled[c.table].Data
		for i, v := range c.reply.Pooled {
			dst[i] += v
		}
	}

	// Dense forward passes. Scratch is acquired from the model's pool once
	// per request, so overlapping Predict calls run concurrently — the
	// mutex that used to serialize the dense hot path is gone.
	scratch := d.dense.AcquireScratch()
	defer d.dense.ReleaseScratch(scratch)
	probs := make([]float32, bs)
	rowPooled := make([]tensor.Vector, d.cfg.NumTables)
	for i := 0; i < bs; i++ {
		denseRow := tensor.Vector(req.Dense[i*req.DenseDim : (i+1)*req.DenseDim])
		for t := range rowPooled {
			rowPooled[t] = pooled[t].Row(i)
		}
		p, err := d.dense.ForwardPooledScratch(scratch, denseRow, rowPooled)
		if err != nil {
			return fmt.Errorf("serving: forward input %d: %w", i, err)
		}
		probs[i] = p
	}
	reply.Probs = probs
	rt.Served.Inc(1)
	d.Latency.Observe(time.Since(start))
	d.QPS.Mark()
	return nil
}

var _ PredictClient = (*DenseShard)(nil)

// Monolith is the model-wise baseline service: the full model in one
// process, queried with original-ID batches. Forward passes draw scratch
// from the model's pool, so concurrent Predict calls are safe.
type Monolith struct {
	model *model.Model

	Latency *metrics.LatencyRecorder
	QPS     *metrics.QPSMeter
}

// NewMonolith wraps a fully instantiated model (tables included).
func NewMonolith(m *model.Model) *Monolith {
	return &Monolith{
		model:   m,
		Latency: metrics.NewLatencyRecorder(0),
		QPS:     metrics.NewQPSMeter(10 * time.Second),
	}
}

// Predict services one query with indices in original table-ID space.
func (m *Monolith) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return err
	}
	cfg := m.model.Config
	if err := req.Validate(cfg.NumTables); err != nil {
		return err
	}
	if req.DenseDim != cfg.DenseInputDim {
		return fmt.Errorf("serving: dense dim %d != model %d", req.DenseDim, cfg.DenseInputDim)
	}
	dense := tensor.NewMatrix(req.BatchSize, req.DenseDim)
	copy(dense.Data, req.Dense)
	batches := make([]*embedding.Batch, cfg.NumTables)
	for t := range batches {
		batches[t] = &embedding.Batch{Indices: req.Tables[t].Indices, Offsets: req.Tables[t].Offsets}
	}
	probs, err := m.model.ForwardBatch(dense, batches)
	if err != nil {
		return err
	}
	reply.Probs = probs
	m.Latency.Observe(time.Since(start))
	m.QPS.Mark()
	return nil
}

var _ PredictClient = (*Monolith)(nil)
