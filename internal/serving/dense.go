package serving

import (
	"fmt"
	"time"

	"repro/internal/bucketize"
	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tensor"
)

// DenseShard is the dense DNN microservice: it owns the bottom/top MLP
// parameters and, per table, the shard boundaries plus a gather client for
// every embedding shard. On Predict it bucketizes the sparse inputs, fans
// the gathers out concurrently, merges the pooled partial sums and
// finishes the forward pass (Sec. IV-A).
type DenseShard struct {
	cfg        model.Config
	boundaries [][]int64        // per table: plan boundaries in sorted space
	clients    [][]GatherClient // per table, per shard

	dense *model.Model // parameters read-only; scratch comes from its pool

	Latency *metrics.LatencyRecorder
	QPS     *metrics.QPSMeter
}

// NewDenseShard wires a dense service. denseModel needs only its MLPs
// (model.NewDenseOnly suffices); boundaries[t] is table t's partition plan
// and clients[t][s] the client for shard s of table t (typically a
// ReplicaPool).
func NewDenseShard(denseModel *model.Model, boundaries [][]int64, clients [][]GatherClient) (*DenseShard, error) {
	cfg := denseModel.Config
	if len(boundaries) != cfg.NumTables || len(clients) != cfg.NumTables {
		return nil, fmt.Errorf("serving: dense shard needs %d tables of boundaries/clients, got %d/%d",
			cfg.NumTables, len(boundaries), len(clients))
	}
	for t := range boundaries {
		if len(boundaries[t]) == 0 {
			return nil, fmt.Errorf("serving: table %d has no shard boundaries", t)
		}
		if len(clients[t]) != len(boundaries[t]) {
			return nil, fmt.Errorf("serving: table %d has %d clients for %d shards",
				t, len(clients[t]), len(boundaries[t]))
		}
		if last := boundaries[t][len(boundaries[t])-1]; last != cfg.RowsPerTable {
			return nil, fmt.Errorf("serving: table %d boundaries end at %d, want %d",
				t, last, cfg.RowsPerTable)
		}
	}
	return &DenseShard{
		cfg:        cfg,
		boundaries: boundaries,
		clients:    clients,
		dense:      denseModel,
		Latency:    metrics.NewLatencyRecorder(0),
		QPS:        metrics.NewQPSMeter(10 * time.Second),
	}, nil
}

// Config returns the model geometry the shard serves (used by the batcher
// frontend to validate requests before they join a fused batch).
func (d *DenseShard) Config() model.Config { return d.cfg }

// gatherResult carries one shard's reply through the fan-out.
type gatherResult struct {
	table, shard int
	reply        GatherReply
	err          error
}

// Predict services one query whose sparse indices are in sorted-ID space.
func (d *DenseShard) Predict(req *PredictRequest, reply *PredictReply) error {
	start := time.Now()
	if err := req.Validate(d.cfg.NumTables); err != nil {
		return err
	}
	if req.DenseDim != d.cfg.DenseInputDim {
		return fmt.Errorf("serving: dense dim %d != model %d", req.DenseDim, d.cfg.DenseInputDim)
	}
	bs := req.BatchSize

	// Bucketize every table's batch across its shards (Sec. IV-C).
	type call struct {
		table, shard int
		req          GatherRequest
	}
	var calls []call
	for t := 0; t < d.cfg.NumTables; t++ {
		b := &embedding.Batch{Indices: req.Tables[t].Indices, Offsets: req.Tables[t].Offsets}
		parts, err := bucketize.Split(b, d.boundaries[t])
		if err != nil {
			return fmt.Errorf("serving: table %d: %w", t, err)
		}
		for s, part := range parts {
			calls = append(calls, call{
				table: t,
				shard: s,
				req: GatherRequest{
					Table:   t,
					Shard:   s,
					Indices: part.Indices,
					Offsets: part.Offsets,
				},
			})
		}
	}

	// Fan out the gathers concurrently — one RPC per (table, shard).
	results := make(chan gatherResult, len(calls))
	for i := range calls {
		c := calls[i]
		go func() {
			r := gatherResult{table: c.table, shard: c.shard}
			r.err = d.clients[c.table][c.shard].Gather(&c.req, &r.reply)
			results <- r
		}()
	}

	// Merge per-table partial sums (pooling is additive).
	pooled := make([]*tensor.Matrix, d.cfg.NumTables)
	for t := range pooled {
		pooled[t] = tensor.NewMatrix(bs, d.cfg.EmbeddingDim)
	}
	for range calls {
		r := <-results
		if r.err != nil {
			return fmt.Errorf("serving: gather t%d s%d: %w", r.table, r.shard, r.err)
		}
		if r.reply.BatchSize != bs || r.reply.Dim != d.cfg.EmbeddingDim {
			return fmt.Errorf("serving: gather t%d s%d returned %dx%d, want %dx%d",
				r.table, r.shard, r.reply.BatchSize, r.reply.Dim, bs, d.cfg.EmbeddingDim)
		}
		for i, v := range r.reply.Pooled {
			pooled[r.table].Data[i] += v
		}
	}

	// Dense forward passes. Scratch is acquired from the model's pool once
	// per request, so overlapping Predict calls run concurrently — the
	// mutex that used to serialize the dense hot path is gone.
	scratch := d.dense.AcquireScratch()
	defer d.dense.ReleaseScratch(scratch)
	probs := make([]float32, bs)
	rowPooled := make([]tensor.Vector, d.cfg.NumTables)
	for i := 0; i < bs; i++ {
		denseRow := tensor.Vector(req.Dense[i*req.DenseDim : (i+1)*req.DenseDim])
		for t := range rowPooled {
			rowPooled[t] = pooled[t].Row(i)
		}
		p, err := d.dense.ForwardPooledScratch(scratch, denseRow, rowPooled)
		if err != nil {
			return fmt.Errorf("serving: forward input %d: %w", i, err)
		}
		probs[i] = p
	}
	reply.Probs = probs
	d.Latency.Observe(time.Since(start))
	d.QPS.Mark()
	return nil
}

var _ PredictClient = (*DenseShard)(nil)

// Monolith is the model-wise baseline service: the full model in one
// process, queried with original-ID batches. Forward passes draw scratch
// from the model's pool, so concurrent Predict calls are safe.
type Monolith struct {
	model *model.Model

	Latency *metrics.LatencyRecorder
	QPS     *metrics.QPSMeter
}

// NewMonolith wraps a fully instantiated model (tables included).
func NewMonolith(m *model.Model) *Monolith {
	return &Monolith{
		model:   m,
		Latency: metrics.NewLatencyRecorder(0),
		QPS:     metrics.NewQPSMeter(10 * time.Second),
	}
}

// Predict services one query with indices in original table-ID space.
func (m *Monolith) Predict(req *PredictRequest, reply *PredictReply) error {
	start := time.Now()
	cfg := m.model.Config
	if err := req.Validate(cfg.NumTables); err != nil {
		return err
	}
	if req.DenseDim != cfg.DenseInputDim {
		return fmt.Errorf("serving: dense dim %d != model %d", req.DenseDim, cfg.DenseInputDim)
	}
	dense := tensor.NewMatrix(req.BatchSize, req.DenseDim)
	copy(dense.Data, req.Dense)
	batches := make([]*embedding.Batch, cfg.NumTables)
	for t := range batches {
		batches[t] = &embedding.Batch{Indices: req.Tables[t].Indices, Offsets: req.Tables[t].Offsets}
	}
	probs, err := m.model.ForwardBatch(dense, batches)
	if err != nil {
		return err
	}
	reply.Probs = probs
	m.Latency.Observe(time.Since(start))
	m.QPS.Mark()
	return nil
}

var _ PredictClient = (*Monolith)(nil)
