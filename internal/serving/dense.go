package serving

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bucketize"
	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving/wire"
	"repro/internal/tensor"
)

// DenseShard is one DLRM variant's dense DNN microservice: it owns that
// variant's bottom/top MLP parameters and consults the epoch-versioned
// Router for the variant's current partition plan. On Predict it pins
// exactly one routing-table epoch of its own model, applies that epoch's
// preprocessing remap, bucketizes the sparse inputs against that epoch's
// boundaries, fans the gathers out concurrently to that epoch's shard
// clients, merges the pooled partial sums and finishes the forward pass
// (Sec. IV-A). Because the whole fan-out happens inside one snapshot, a
// concurrent plan swap can never mix shards of two plans — and because the
// shard serves exactly one model and rejects mismatched requests, it can
// never mix two variants either.
type DenseShard struct {
	cfg    model.Config
	router *Router
	model  string // canonical model name this shard serves

	dense *model.Model // parameters read-only; scratch comes from its pool

	// scratch recycles the per-request fan-out buffers (gather calls,
	// bucketized indices/offsets, merged pooled sums) across Predicts, so
	// the steady-state hot path allocates almost nothing besides the
	// reply itself.
	scratch sync.Pool

	Latency *metrics.LatencyRecorder
	QPS     *metrics.QPSMeter
}

// predictScratch is one Predict call's reusable working set. Every slice
// is grown on demand and retained; the gather goroutines only ever touch
// it between the fan-out start and wg.Wait, so recycling after Predict
// returns can never race an in-flight gather.
type predictScratch struct {
	calls   []gatherCall
	counts  []int   // per-shard lookup counts of the table being split
	starts  []int   // per-shard segment starts within idxBuf
	cursors []int   // per-shard fill cursors within idxBuf
	idxBuf  []int64 // backing for every shard's rebased indices
	offBuf  []int32 // backing for every shard's local offsets
	pooled  []float32
	rows    []tensor.Vector
}

// growInts resizes an int scratch slice to length n.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// NewDenseShard wires a dense service over a routing layer, serving the
// default model — the single-variant constructor. denseModel needs only
// its MLPs (model.NewDenseOnly suffices); router serves the partition plan
// epochs (see NewRoutingTable for the plan layout).
func NewDenseShard(denseModel *model.Model, router *Router) (*DenseShard, error) {
	return NewModelDenseShard(DefaultModel, denseModel, router)
}

// NewModelDenseShard wires a dense service for one named DLRM variant over
// a shared multi-model routing layer. The variant must already be
// registered with the router.
func NewModelDenseShard(name string, denseModel *model.Model, router *Router) (*DenseShard, error) {
	name = canonicalModel(name)
	if router == nil || router.LoadModel(name) == nil {
		return nil, fmt.Errorf("serving: dense shard needs a router with a published routing table for model %q", name)
	}
	return &DenseShard{
		cfg:     denseModel.Config,
		router:  router,
		model:   name,
		dense:   denseModel,
		Latency: metrics.NewLatencyRecorder(0),
		QPS:     metrics.NewQPSMeter(10 * time.Second),
	}, nil
}

// Config returns the model geometry the shard serves (used by the batcher
// frontend to validate requests before they join a fused batch).
func (d *DenseShard) Config() model.Config { return d.cfg }

// Model returns the canonical model name the shard serves.
func (d *DenseShard) Model() string { return d.model }

// Router returns the routing layer the shard consults.
func (d *DenseShard) Router() *Router { return d.router }

// gatherCall is one (table, shard) RPC of the fan-out.
type gatherCall struct {
	table, shard int
	req          GatherRequest
	reply        GatherReply
}

// Predict services one query. When the pinned epoch carries a
// preprocessing remap the request is in original-ID space; otherwise it is
// already hotness-sorted.
func (d *DenseShard) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	start := time.Now()
	if err := req.Validate(d.cfg.NumTables); err != nil {
		return err
	}
	if req.DenseDim != d.cfg.DenseInputDim {
		return fmt.Errorf("serving: dense dim %d != model %d", req.DenseDim, d.cfg.DenseInputDim)
	}
	if got := canonicalModel(req.Model); got != d.model {
		return fmt.Errorf("serving: request for model %q reached dense shard serving %q", got, d.model)
	}
	bs := req.BatchSize

	// Pin one routing epoch of this shard's model for the whole request;
	// the epoch cannot be retired until this request releases it.
	rt, err := d.router.AcquireModel(d.model)
	if err != nil {
		return err
	}
	defer rt.release()

	sc, _ := d.scratch.Get().(*predictScratch)
	if sc == nil {
		sc = &predictScratch{}
	}
	defer d.scratch.Put(sc)

	// Remap + bucketize every table's batch across the epoch's shards in
	// one fused pass (Sec. IV-C): each original index is translated to
	// sorted space through the epoch's remap and rebased into its owning
	// shard's local ID space, with exact-size segments carved out of the
	// reusable scratch backing (no intermediate remapped request, no
	// append growth). bucketize.Split is the allocating reference
	// implementation of the same count-then-carve partition; the
	// monolith-equivalence tests pin this fused path against it
	// end-to-end, so a carve fix must land in both.
	nt := d.cfg.NumTables
	totalCalls, idxNeed := 0, 0
	for t := 0; t < nt; t++ {
		totalCalls += len(rt.Boundaries[t])
		idxNeed += len(req.Tables[t].Indices)
	}
	if cap(sc.calls) < totalCalls {
		sc.calls = make([]gatherCall, totalCalls)
	}
	calls := sc.calls[:totalCalls]
	if cap(sc.idxBuf) < idxNeed {
		sc.idxBuf = make([]int64, idxNeed)
	}
	if cap(sc.offBuf) < totalCalls*bs {
		sc.offBuf = make([]int32, totalCalls*bs)
	}
	ci, idxPos, offPos := 0, 0, 0
	for t := 0; t < nt; t++ {
		tb := &req.Tables[t]
		bnd := rt.Boundaries[t]
		ns := len(bnd)
		var rank []int64
		if rt.Pre != nil {
			rank = rt.Pre.RankOf[t]
		}
		sc.counts = growInts(sc.counts, ns)
		counts := sc.counts
		for s := range counts {
			counts[s] = 0
		}
		// Pass 1: remap, validate and count each shard's lookups.
		for _, idx := range tb.Indices {
			r := idx
			if rank != nil {
				if idx < 0 || idx >= int64(len(rank)) {
					return fmt.Errorf("serving: index %d outside table %d (%d rows)", idx, t, len(rank))
				}
				r = rank[idx]
			} else if idx < 0 || idx >= bnd[ns-1] {
				return fmt.Errorf("serving: index %d outside table %d (%d rows)", idx, t, bnd[ns-1])
			}
			counts[bucketize.ShardOf(r, bnd)]++
		}
		sc.starts = growInts(sc.starts, ns)
		sc.cursors = growInts(sc.cursors, ns)
		pos := idxPos
		for s := 0; s < ns; s++ {
			sc.starts[s], sc.cursors[s] = pos, pos
			pos += counts[s]
		}
		// Pass 2: per input, record every shard's local offset, then
		// scatter the input's remapped indices into the shard segments.
		for i := 0; i < bs; i++ {
			for s := 0; s < ns; s++ {
				sc.offBuf[offPos+s*bs+i] = int32(sc.cursors[s] - sc.starts[s])
			}
			lo := int(tb.Offsets[i])
			hi := len(tb.Indices)
			if i+1 < bs {
				hi = int(tb.Offsets[i+1])
			}
			for _, idx := range tb.Indices[lo:hi] {
				r := idx
				if rank != nil {
					r = rank[idx]
				}
				s := bucketize.ShardOf(r, bnd)
				base := int64(0)
				if s > 0 {
					base = bnd[s-1]
				}
				sc.idxBuf[sc.cursors[s]] = r - base
				sc.cursors[s]++
			}
		}
		for s := 0; s < ns; s++ {
			off := offPos + s*bs
			calls[ci] = gatherCall{
				table: t,
				shard: s,
				req: GatherRequest{
					Table:   t,
					Shard:   s,
					Indices: sc.idxBuf[sc.starts[s]:sc.cursors[s]:sc.cursors[s]],
					Offsets: sc.offBuf[off : off+bs : off+bs],
				},
			}
			ci++
		}
		offPos += ns * bs
		idxPos = pos
	}

	// Fan the gathers out concurrently — one RPC per (table, shard) — in
	// errgroup style: the first failure cancels the sibling gathers, and
	// the wait ensures no straggler lands after Predict returns (which is
	// also what makes recycling the scratch safe).
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for i := range calls {
		wg.Add(1)
		go func(c *gatherCall) {
			defer wg.Done()
			if err := rt.Clients[c.table][c.shard].Gather(gctx, &c.req, &c.reply); err != nil {
				fail(fmt.Errorf("serving: gather t%d s%d: %w", c.table, c.shard, err))
				return
			}
			if c.reply.BatchSize != bs || c.reply.Dim != d.cfg.EmbeddingDim {
				fail(fmt.Errorf("serving: gather t%d s%d returned %dx%d, want %dx%d",
					c.table, c.shard, c.reply.BatchSize, c.reply.Dim, bs, d.cfg.EmbeddingDim))
			}
		}(&calls[i])
	}
	wg.Wait()
	if firstErr != nil {
		// Recycle whatever reply buffers did land before the failure.
		for i := range calls {
			wire.PutFloat32(calls[i].reply.Pooled)
			calls[i].reply.Pooled = nil
		}
		return firstErr
	}

	// Merge per-table partial sums (pooling is additive) into one scratch
	// backing, returning every reply buffer to the shared wire pool. On
	// the binary transport the reply rows were decoded into that pool —
	// float32 either way, even when the wire encoding was int8-quantized —
	// so local and remote gathers recycle identically.
	dim := d.cfg.EmbeddingDim
	if cap(sc.pooled) < nt*bs*dim {
		sc.pooled = make([]float32, nt*bs*dim)
	}
	pooled := sc.pooled[:nt*bs*dim]
	for i := range pooled {
		pooled[i] = 0
	}
	for i := range calls {
		c := &calls[i]
		dst := pooled[c.table*bs*dim : (c.table+1)*bs*dim]
		for j, v := range c.reply.Pooled {
			dst[j] += v
		}
		wire.PutFloat32(c.reply.Pooled)
		c.reply.Pooled = nil
	}

	// Dense forward passes. Scratch is acquired from the model's pool once
	// per request, so overlapping Predict calls run concurrently — the
	// mutex that used to serialize the dense hot path is gone.
	scratch := d.dense.AcquireScratch()
	defer d.dense.ReleaseScratch(scratch)
	probs := make([]float32, bs)
	if cap(sc.rows) < nt {
		sc.rows = make([]tensor.Vector, nt)
	}
	rowPooled := sc.rows[:nt]
	for i := 0; i < bs; i++ {
		denseRow := tensor.Vector(req.Dense[i*req.DenseDim : (i+1)*req.DenseDim])
		for t := range rowPooled {
			rowPooled[t] = pooled[(t*bs+i)*dim : (t*bs+i+1)*dim]
		}
		p, err := d.dense.ForwardPooledScratch(scratch, denseRow, rowPooled)
		if err != nil {
			return fmt.Errorf("serving: forward input %d: %w", i, err)
		}
		probs[i] = p
	}
	reply.Probs = probs
	rt.Served.Inc(1)
	d.Latency.Observe(time.Since(start))
	d.QPS.Mark()
	return nil
}

var _ PredictClient = (*DenseShard)(nil)

// Monolith is the model-wise baseline service: the full model in one
// process, queried with original-ID batches. Forward passes draw scratch
// from the model's pool, so concurrent Predict calls are safe.
type Monolith struct {
	model *model.Model

	Latency *metrics.LatencyRecorder
	QPS     *metrics.QPSMeter
}

// NewMonolith wraps a fully instantiated model (tables included).
func NewMonolith(m *model.Model) *Monolith {
	return &Monolith{
		model:   m,
		Latency: metrics.NewLatencyRecorder(0),
		QPS:     metrics.NewQPSMeter(10 * time.Second),
	}
}

// Predict services one query with indices in original table-ID space.
func (m *Monolith) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return err
	}
	cfg := m.model.Config
	if err := req.Validate(cfg.NumTables); err != nil {
		return err
	}
	if req.DenseDim != cfg.DenseInputDim {
		return fmt.Errorf("serving: dense dim %d != model %d", req.DenseDim, cfg.DenseInputDim)
	}
	dense := tensor.NewMatrix(req.BatchSize, req.DenseDim)
	copy(dense.Data, req.Dense)
	batches := make([]*embedding.Batch, cfg.NumTables)
	for t := range batches {
		batches[t] = &embedding.Batch{Indices: req.Tables[t].Indices, Offsets: req.Tables[t].Offsets}
	}
	probs, err := m.model.ForwardBatch(dense, batches)
	if err != nil {
		return err
	}
	reply.Probs = probs
	m.Latency.Observe(time.Since(start))
	m.QPS.Mark()
	return nil
}

var _ PredictClient = (*Monolith)(nil)
