package serving

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/bucketize"
	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving/wire"
	"repro/internal/tensor"
)

// DenseShard is one DLRM variant's dense DNN microservice: it owns that
// variant's bottom/top MLP parameters and consults the epoch-versioned
// Router for the variant's current partition plan. On Predict it pins
// exactly one routing-table epoch of its own model, applies that epoch's
// preprocessing remap, bucketizes the sparse inputs against that epoch's
// boundaries, fans the gathers out concurrently to that epoch's shard
// clients, merges the pooled partial sums and finishes the forward pass
// (Sec. IV-A). Because the whole fan-out happens inside one snapshot, a
// concurrent plan swap can never mix shards of two plans — and because the
// shard serves exactly one model and rejects mismatched requests, it can
// never mix two variants either.
type DenseShard struct {
	cfg    model.Config
	router *Router
	model  string // canonical model name this shard serves

	dense *model.Model // parameters read-only; scratch comes from its pool

	// scratch recycles the per-request fan-out buffers (gather calls,
	// bucketized indices/offsets, merged pooled sums) across Predicts, so
	// the steady-state hot path allocates almost nothing besides the
	// reply itself.
	scratch sync.Pool

	// gatherRows switches Predict to the v2 rows-mode fan-out (dedup +
	// raw-row gathers, see predictRows); rowCache is its optional
	// frontend hot-row cache (nil = disabled). Both are set once at build
	// time, before the shard serves traffic.
	gatherRows bool
	rowCache   *rowCache

	Latency *metrics.LatencyRecorder
	QPS     *metrics.QPSMeter
}

// predictScratch is one Predict call's reusable working set. Every slice
// is grown on demand and retained; the gather goroutines only ever touch
// it between the fan-out start and wg.Wait, so recycling after Predict
// returns can never race an in-flight gather.
type predictScratch struct {
	calls   []gatherCall
	counts  []int   // per-shard lookup counts of the table being split
	starts  []int   // per-shard segment starts within idxBuf
	cursors []int   // per-shard fill cursors within idxBuf
	idxBuf  []int64 // backing for every shard's rebased indices
	offBuf  []int32 // backing for every shard's local offsets
	pooled  []float32
	rows    []tensor.Vector

	// Rows-mode (predictRows) working set.
	uniqBuf []int64     // per-table sorted-unique remapped ids, concatenated
	needBuf []int64     // cache misses, rebased per shard segment
	missPos []int32     // absolute uniq position of each miss
	tabU    []int       // per-table uniq segment bounds within uniqBuf
	slotBuf []int32     // per input index, its absolute uniq slot
	rowView [][]float32 // per unique id, a view of its row (cache or reply)

	// Hot-window dedup scoreboard (see predictRows pass 1): genBuf marks
	// ids seen this table (stamped with genCtr, so no clearing between
	// tables), slotHot records each marked id's uniq slot, and spillBuf
	// collects the rare ids past the window as packed (row, position) keys.
	genBuf   []int64
	slotHot  []int32
	spillBuf []int64
	genCtr   int64
}

// growInts resizes an int scratch slice to length n.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// NewDenseShard wires a dense service over a routing layer, serving the
// default model — the single-variant constructor. denseModel needs only
// its MLPs (model.NewDenseOnly suffices); router serves the partition plan
// epochs (see NewRoutingTable for the plan layout).
func NewDenseShard(denseModel *model.Model, router *Router) (*DenseShard, error) {
	return NewModelDenseShard(DefaultModel, denseModel, router)
}

// NewModelDenseShard wires a dense service for one named DLRM variant over
// a shared multi-model routing layer. The variant must already be
// registered with the router.
func NewModelDenseShard(name string, denseModel *model.Model, router *Router) (*DenseShard, error) {
	name = canonicalModel(name)
	if router == nil || router.LoadModel(name) == nil {
		return nil, fmt.Errorf("serving: dense shard needs a router with a published routing table for model %q", name)
	}
	return &DenseShard{
		cfg:     denseModel.Config,
		router:  router,
		model:   name,
		dense:   denseModel,
		Latency: metrics.NewLatencyRecorder(0),
		QPS:     metrics.NewQPSMeter(10 * time.Second),
	}, nil
}

// Config returns the model geometry the shard serves (used by the batcher
// frontend to validate requests before they join a fused batch).
func (d *DenseShard) Config() model.Config { return d.cfg }

// Model returns the canonical model name the shard serves.
func (d *DenseShard) Model() string { return d.model }

// Router returns the routing layer the shard consults.
func (d *DenseShard) Router() *Router { return d.router }

// gatherCall is one (table, shard) RPC of the fan-out. In rows mode miss
// records, per requested row, its absolute position in the uniq buffer so
// the reply rows scatter straight back into the row-view table.
type gatherCall struct {
	table, shard int
	req          GatherRequest
	reply        GatherReply
	miss         []int32
}

// Rows-mode dedup constants. Ids below rowsModeHotWindow dedup through a
// generation-stamped scoreboard — the id space is hotness-sorted, so at
// CDF skew nearly every index lands there and no sorting happens at all.
// Ids past the window spill to packed (row, position) int64 keys whose
// high bits hold the remapped row id and low 24 bits the index's position
// within its table batch; sorting that small spill yields both its
// sorted-unique rows and each position's uniq slot. The packing bounds a
// table batch to 2^24 indices and a table to 2^38 rows (keys stay
// positive); rowsModeFits falls back to the pooled v1 path for anything
// bigger.
const (
	rowsModeHotWindow = int64(8192)
	rowsModePosBits   = 24
	rowsModePosMask   = 1<<rowsModePosBits - 1
	rowsModeMaxRows   = int64(1) << (62 - rowsModePosBits)
)

// rowsModeFits reports whether the request fits the packed-key encoding.
func (d *DenseShard) rowsModeFits(req *PredictRequest) bool {
	if d.cfg.RowsPerTable >= rowsModeMaxRows {
		return false
	}
	for t := range req.Tables {
		if len(req.Tables[t].Indices) > rowsModePosMask {
			return false
		}
	}
	return true
}

// Predict services one query. When the pinned epoch carries a
// preprocessing remap the request is in original-ID space; otherwise it is
// already hotness-sorted.
func (d *DenseShard) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	start := time.Now()
	if err := req.Validate(d.cfg.NumTables); err != nil {
		return err
	}
	if req.DenseDim != d.cfg.DenseInputDim {
		return fmt.Errorf("serving: dense dim %d != model %d", req.DenseDim, d.cfg.DenseInputDim)
	}
	if got := canonicalModel(req.Model); got != d.model {
		return fmt.Errorf("serving: request for model %q reached dense shard serving %q", got, d.model)
	}
	if d.gatherRows && d.rowsModeFits(req) {
		return d.predictRows(ctx, req, reply, start)
	}
	bs := req.BatchSize

	// Pin one routing epoch of this shard's model for the whole request;
	// the epoch cannot be retired until this request releases it.
	rt, err := d.router.AcquireModel(d.model)
	if err != nil {
		return err
	}
	defer rt.release()

	sc, _ := d.scratch.Get().(*predictScratch)
	if sc == nil {
		sc = &predictScratch{}
	}
	defer d.scratch.Put(sc)

	// Remap + bucketize every table's batch across the epoch's shards in
	// one fused pass (Sec. IV-C): each original index is translated to
	// sorted space through the epoch's remap and rebased into its owning
	// shard's local ID space, with exact-size segments carved out of the
	// reusable scratch backing (no intermediate remapped request, no
	// append growth). bucketize.Split is the allocating reference
	// implementation of the same count-then-carve partition; the
	// monolith-equivalence tests pin this fused path against it
	// end-to-end, so a carve fix must land in both.
	nt := d.cfg.NumTables
	totalCalls, idxNeed := 0, 0
	for t := 0; t < nt; t++ {
		totalCalls += len(rt.Boundaries[t])
		idxNeed += len(req.Tables[t].Indices)
	}
	if cap(sc.calls) < totalCalls {
		sc.calls = make([]gatherCall, totalCalls)
	}
	calls := sc.calls[:totalCalls]
	if cap(sc.idxBuf) < idxNeed {
		sc.idxBuf = make([]int64, idxNeed)
	}
	if cap(sc.offBuf) < totalCalls*bs {
		sc.offBuf = make([]int32, totalCalls*bs)
	}
	ci, idxPos, offPos := 0, 0, 0
	for t := 0; t < nt; t++ {
		tb := &req.Tables[t]
		bnd := rt.Boundaries[t]
		ns := len(bnd)
		var rank []int64
		if rt.Pre != nil {
			rank = rt.Pre.RankOf[t]
		}
		sc.counts = growInts(sc.counts, ns)
		counts := sc.counts
		for s := range counts {
			counts[s] = 0
		}
		// Pass 1: remap, validate and count each shard's lookups.
		for _, idx := range tb.Indices {
			r := idx
			if rank != nil {
				if idx < 0 || idx >= int64(len(rank)) {
					return fmt.Errorf("serving: index %d outside table %d (%d rows)", idx, t, len(rank))
				}
				r = rank[idx]
			} else if idx < 0 || idx >= bnd[ns-1] {
				return fmt.Errorf("serving: index %d outside table %d (%d rows)", idx, t, bnd[ns-1])
			}
			counts[bucketize.ShardOf(r, bnd)]++
		}
		sc.starts = growInts(sc.starts, ns)
		sc.cursors = growInts(sc.cursors, ns)
		pos := idxPos
		for s := 0; s < ns; s++ {
			sc.starts[s], sc.cursors[s] = pos, pos
			pos += counts[s]
		}
		// Pass 2: per input, record every shard's local offset, then
		// scatter the input's remapped indices into the shard segments.
		for i := 0; i < bs; i++ {
			for s := 0; s < ns; s++ {
				sc.offBuf[offPos+s*bs+i] = int32(sc.cursors[s] - sc.starts[s])
			}
			lo := int(tb.Offsets[i])
			hi := len(tb.Indices)
			if i+1 < bs {
				hi = int(tb.Offsets[i+1])
			}
			for _, idx := range tb.Indices[lo:hi] {
				r := idx
				if rank != nil {
					r = rank[idx]
				}
				s := bucketize.ShardOf(r, bnd)
				base := int64(0)
				if s > 0 {
					base = bnd[s-1]
				}
				sc.idxBuf[sc.cursors[s]] = r - base
				sc.cursors[s]++
			}
		}
		for s := 0; s < ns; s++ {
			off := offPos + s*bs
			calls[ci] = gatherCall{
				table: t,
				shard: s,
				req: GatherRequest{
					Table:   t,
					Shard:   s,
					Indices: sc.idxBuf[sc.starts[s]:sc.cursors[s]:sc.cursors[s]],
					Offsets: sc.offBuf[off : off+bs : off+bs],
				},
			}
			ci++
		}
		offPos += ns * bs
		idxPos = pos
	}

	// Fan the gathers out concurrently — one RPC per (table, shard) — in
	// errgroup style: the first failure cancels the sibling gathers, and
	// the wait ensures no straggler lands after Predict returns (which is
	// also what makes recycling the scratch safe).
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for i := range calls {
		wg.Add(1)
		go func(c *gatherCall) {
			defer wg.Done()
			if err := rt.Clients[c.table][c.shard].Gather(gctx, &c.req, &c.reply); err != nil {
				fail(fmt.Errorf("serving: gather t%d s%d: %w", c.table, c.shard, err))
				return
			}
			if c.reply.BatchSize != bs || c.reply.Dim != d.cfg.EmbeddingDim {
				fail(fmt.Errorf("serving: gather t%d s%d returned %dx%d, want %dx%d",
					c.table, c.shard, c.reply.BatchSize, c.reply.Dim, bs, d.cfg.EmbeddingDim))
			}
		}(&calls[i])
	}
	wg.Wait()
	if firstErr != nil {
		// Recycle whatever reply buffers did land before the failure.
		for i := range calls {
			wire.PutFloat32(calls[i].reply.Pooled)
			calls[i].reply.Pooled = nil
		}
		return firstErr
	}

	// Merge per-table partial sums (pooling is additive) into one scratch
	// backing, returning every reply buffer to the shared wire pool. On
	// the binary transport the reply rows were decoded into that pool —
	// float32 either way, even when the wire encoding was int8-quantized —
	// so local and remote gathers recycle identically.
	dim := d.cfg.EmbeddingDim
	if cap(sc.pooled) < nt*bs*dim {
		sc.pooled = make([]float32, nt*bs*dim)
	}
	pooled := sc.pooled[:nt*bs*dim]
	for i := range pooled {
		pooled[i] = 0
	}
	for i := range calls {
		c := &calls[i]
		dst := pooled[c.table*bs*dim : (c.table+1)*bs*dim]
		for j, v := range c.reply.Pooled {
			dst[j] += v
		}
		wire.PutFloat32(c.reply.Pooled)
		c.reply.Pooled = nil
	}

	if err := d.forwardDense(sc, req, pooled, reply); err != nil {
		return err
	}
	rt.Served.Inc(1)
	d.Latency.Observe(time.Since(start))
	d.QPS.Mark()
	return nil
}

// forwardDense runs the dense forward passes over the merged per-table
// pooled sums and fills reply.Probs. Scratch is acquired from the model's
// pool once per request, so overlapping Predict calls run concurrently —
// the mutex that used to serialize the dense hot path is gone.
func (d *DenseShard) forwardDense(sc *predictScratch, req *PredictRequest, pooled []float32, reply *PredictReply) error {
	bs, nt, dim := req.BatchSize, d.cfg.NumTables, d.cfg.EmbeddingDim
	scratch := d.dense.AcquireScratch()
	defer d.dense.ReleaseScratch(scratch)
	probs := make([]float32, bs)
	if cap(sc.rows) < nt {
		sc.rows = make([]tensor.Vector, nt)
	}
	rowPooled := sc.rows[:nt]
	for i := 0; i < bs; i++ {
		denseRow := tensor.Vector(req.Dense[i*req.DenseDim : (i+1)*req.DenseDim])
		for t := range rowPooled {
			rowPooled[t] = pooled[(t*bs+i)*dim : (t*bs+i+1)*dim]
		}
		p, err := d.dense.ForwardPooledScratch(scratch, denseRow, rowPooled)
		if err != nil {
			return fmt.Errorf("serving: forward input %d: %w", i, err)
		}
		probs[i] = p
	}
	reply.Probs = probs
	return nil
}

// predictRows is gather path v2: instead of bucketizing pooled-per-input
// gathers, it dedups each table's remapped row ids (in-batch dedup — a
// flash-crowd batch hitting the same hot rows 50× fetches them once),
// serves unique rows from the frontend hot-row cache where it can, fans
// out rows-mode gathers only for the misses — skipping shards with no
// missing rows entirely — and re-expands multiplicities at merge time
// through the slot map pass 1 built. The merge accumulates rows per
// input in original index order, exactly the monolith's GatherPool
// order, so equivalence is as tight as v1's.
func (d *DenseShard) predictRows(ctx context.Context, req *PredictRequest, reply *PredictReply, start time.Time) error {
	bs := req.BatchSize

	rt, err := d.router.AcquireModel(d.model)
	if err != nil {
		return err
	}
	defer rt.release()
	epoch := rt.Epoch

	sc, _ := d.scratch.Get().(*predictScratch)
	if sc == nil {
		sc = &predictScratch{}
	}
	defer d.scratch.Put(sc)

	nt := d.cfg.NumTables
	dim := d.cfg.EmbeddingDim
	totalCalls, idxNeed := 0, 0
	for t := 0; t < nt; t++ {
		totalCalls += len(rt.Boundaries[t])
		idxNeed += len(req.Tables[t].Indices)
	}

	// Pass 1 per table: remap + validate each index, then dedup through
	// the hot-window scoreboard. Hot ids (below rowsModeHotWindow — which
	// is almost all of them, the id space is hotness-sorted) are marked in
	// a generation-stamped direct map, so deduping them costs one array
	// write per index and no sort. The cold tail spills to packed
	// (row, position) keys and sorts small. Unique ids emit in ascending
	// order (window scan first, sorted spill after — spill ids are all
	// larger), which keeps each shard's miss slice contiguous in pass 2;
	// slotBuf records every index position's absolute uniq slot for the
	// merge. Segments concatenate in uniqBuf with bounds in tabU.
	if cap(sc.uniqBuf) < idxNeed {
		sc.uniqBuf = make([]int64, idxNeed)
	}
	if cap(sc.slotBuf) < idxNeed {
		sc.slotBuf = make([]int32, idxNeed)
	}
	if len(sc.genBuf) < int(rowsModeHotWindow) {
		sc.genBuf = make([]int64, rowsModeHotWindow)
		sc.slotHot = make([]int32, rowsModeHotWindow)
	}
	slotBuf := sc.slotBuf[:idxNeed]
	sc.tabU = growInts(sc.tabU, nt+1)
	tabU := sc.tabU
	pos, ibase := 0, 0
	for t := 0; t < nt; t++ {
		tabU[t] = pos
		tb := &req.Tables[t]
		bnd := rt.Boundaries[t]
		ns := len(bnd)
		var rank []int64
		if rt.Pre != nil {
			rank = rt.Pre.RankOf[t]
		}
		sc.genCtr++
		g := sc.genCtr
		spill := sc.spillBuf[:0]
		for p, idx := range tb.Indices {
			r := idx
			if rank != nil {
				if idx < 0 || idx >= int64(len(rank)) {
					return fmt.Errorf("serving: index %d outside table %d (%d rows)", idx, t, len(rank))
				}
				r = rank[idx]
			} else if idx < 0 || idx >= bnd[ns-1] {
				return fmt.Errorf("serving: index %d outside table %d (%d rows)", idx, t, bnd[ns-1])
			}
			if r < rowsModeHotWindow {
				sc.genBuf[r] = g
			} else {
				spill = append(spill, r<<rowsModePosBits|int64(p))
			}
		}
		sc.spillBuf = spill // keep any growth for the next table
		// Emit hot uniques by scanning the window in id order.
		seg := sc.uniqBuf[pos:pos]
		w := rowsModeHotWindow
		if bnd[ns-1] < w {
			w = bnd[ns-1]
		}
		for r := int64(0); r < w; r++ {
			if sc.genBuf[r] == g {
				sc.slotHot[r] = int32(pos + len(seg))
				seg = append(seg, r)
			}
		}
		// Spilled uniques follow; their packed low bits resolve slots now.
		slices.Sort(spill)
		prev := int64(-1)
		for _, key := range spill {
			r := key >> rowsModePosBits
			if r != prev {
				seg = append(seg, r)
				prev = r
			}
			slotBuf[ibase+int(key&rowsModePosMask)] = int32(pos + len(seg) - 1)
		}
		// Hot positions resolve through the scoreboard (indices were
		// validated above, so the bare remap is safe).
		for p, idx := range tb.Indices {
			r := idx
			if rank != nil {
				r = rank[idx]
			}
			if r < rowsModeHotWindow {
				slotBuf[ibase+p] = sc.slotHot[r]
			}
		}
		pos += len(seg)
		ibase += len(tb.Indices)
	}
	tabU[nt] = pos
	totalUniq := pos

	// Pass 2 per table: serve unique rows from the hot-row cache — each
	// hit is a zero-copy view of the cached vector (immutable once
	// inserted, see rowCache.get) — and collect the misses (still sorted,
	// so each shard's slice is contiguous) into rebased per-shard gather
	// calls, skipping shards with nothing missing — at a skewed steady
	// state most shards drop out of the fan-out here.
	if cap(sc.rowView) < totalUniq {
		sc.rowView = make([][]float32, totalUniq)
	}
	rowView := sc.rowView[:totalUniq]
	if cap(sc.needBuf) < totalUniq {
		sc.needBuf = make([]int64, totalUniq)
	}
	if cap(sc.missPos) < totalUniq {
		sc.missPos = make([]int32, totalUniq)
	}
	if cap(sc.calls) < totalCalls {
		sc.calls = make([]gatherCall, totalCalls)
	}
	calls := sc.calls[:0]
	needAll := sc.needBuf[:0]
	missAll := sc.missPos[:0]
	var hits, misses int64
	pref := d.rowCache.prefixView(epoch)
	for t := 0; t < nt; t++ {
		bnd := rt.Boundaries[t]
		segStart := len(needAll)
		// Hoist the seeded plane's per-table arena: nearly every unique id
		// is a prefix hit, and this turns each into two compares and a
		// subslice with no call.
		var parena []float32
		var pcount, pdim int64
		if pref != nil && t < len(pref.tabs) {
			parena, pcount, pdim = pref.tabs[t], pref.counts[t], pref.dim
		}
		for u := tabU[t]; u < tabU[t+1]; u++ {
			r := sc.uniqBuf[u]
			if r < pcount {
				rowView[u] = parena[r*pdim : (r+1)*pdim]
				hits++
				continue
			}
			if vec := d.rowCache.get(epoch, t, r); vec != nil {
				rowView[u] = vec
				hits++
				continue
			}
			rowView[u] = nil // scatter fills it; a nil view cannot leak a stale row
			misses++
			needAll = append(needAll, r)
			missAll = append(missAll, int32(u))
		}
		for a := segStart; a < len(needAll); {
			s := bucketize.ShardOf(needAll[a], bnd)
			base := int64(0)
			if s > 0 {
				base = bnd[s-1]
			}
			b := a
			for b < len(needAll) && needAll[b] < bnd[s] {
				b++
			}
			for k := a; k < b; k++ {
				needAll[k] -= base
			}
			calls = append(calls, gatherCall{
				table: t,
				shard: s,
				req:   GatherRequest{Table: t, Shard: s, Indices: needAll[a:b:b]},
				miss:  missAll[a:b:b],
			})
			a = b
		}
	}
	d.rowCache.note(hits, misses)

	// Fan out the rows-mode gathers exactly like v1 (first failure cancels
	// siblings; the wait makes scratch recycling safe).
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for i := range calls {
		wg.Add(1)
		go func(c *gatherCall) {
			defer wg.Done()
			if err := rt.Clients[c.table][c.shard].Gather(gctx, &c.req, &c.reply); err != nil {
				fail(fmt.Errorf("serving: gather t%d s%d: %w", c.table, c.shard, err))
				return
			}
			if c.reply.BatchSize != len(c.req.Indices) || c.reply.Dim != dim {
				fail(fmt.Errorf("serving: gather t%d s%d returned %dx%d, want %dx%d",
					c.table, c.shard, c.reply.BatchSize, c.reply.Dim, len(c.req.Indices), dim))
			}
		}(&calls[i])
	}
	wg.Wait()
	if firstErr != nil {
		for i := range calls {
			wire.PutFloat32(calls[i].reply.Pooled)
			calls[i].reply.Pooled = nil
		}
		return firstErr
	}

	// Scatter: point each missed uniq slot's view at its reply row and
	// fill the cache (fills for a retiring epoch are dropped inside fill).
	// Reply buffers stay alive until after the merge reads them.
	for i := range calls {
		c := &calls[i]
		for k, u := range c.miss {
			row := c.reply.Pooled[k*dim : (k+1)*dim]
			rowView[u] = row
			d.rowCache.fill(epoch, c.table, sc.uniqBuf[u], row)
		}
	}

	// Merge: re-expand multiplicities. For each input, every index
	// resolves to its uniq slot through the argsort's slot map and its row
	// accumulates into the input's pooled sum — float32 adds in original
	// index order, matching the monolith bit for bit.
	if cap(sc.pooled) < nt*bs*dim {
		sc.pooled = make([]float32, nt*bs*dim)
	}
	pooled := sc.pooled[:nt*bs*dim]
	ibase = 0
	for t := 0; t < nt; t++ {
		tb := &req.Tables[t]
		for i := 0; i < bs; i++ {
			lo := int(tb.Offsets[i])
			hi := len(tb.Indices)
			if i+1 < bs {
				hi = int(tb.Offsets[i+1])
			}
			dst := pooled[(t*bs+i)*dim : (t*bs+i+1)*dim]
			if lo == hi {
				// Scratch is recycled, so empty bags must zero explicitly.
				for k := range dst {
					dst[k] = 0
				}
				continue
			}
			// The bag's first row copies instead of zero-then-add (0+x == x
			// in float32 up to the sign of zero, which no later op can
			// distinguish), killing the 32KB memclr a recycled scratch
			// would otherwise need per request.
			copy(dst, rowView[slotBuf[ibase+lo]])
			for p := lo + 1; p < hi; p++ {
				src := rowView[slotBuf[ibase+p]]
				// 4-wide unroll: the adds are independent across k, so
				// shrinking loop overhead is nearly free throughput on this
				// all-CPU path (a float32 add per element is all the work
				// there is). dst reslices to len(src) so every index below
				// proves in-bounds once.
				d4 := dst[:len(src)]
				k := 0
				for ; k+4 <= len(src); k += 4 {
					d4[k] += src[k]
					d4[k+1] += src[k+1]
					d4[k+2] += src[k+2]
					d4[k+3] += src[k+3]
				}
				for ; k < len(src); k++ {
					d4[k] += src[k]
				}
			}
		}
		ibase += len(tb.Indices)
	}

	// Replies are merged; recycle their buffers and drop the views into
	// them (and into cache entries) so the pooled scratch retains nothing.
	for i := range calls {
		wire.PutFloat32(calls[i].reply.Pooled)
		calls[i].reply.Pooled = nil
	}
	for u := range rowView {
		rowView[u] = nil
	}

	if err := d.forwardDense(sc, req, pooled, reply); err != nil {
		return err
	}
	rt.Served.Inc(1)
	d.Latency.Observe(time.Since(start))
	d.QPS.Mark()
	return nil
}

var _ PredictClient = (*DenseShard)(nil)

// Monolith is the model-wise baseline service: the full model in one
// process, queried with original-ID batches. Forward passes draw scratch
// from the model's pool, so concurrent Predict calls are safe.
type Monolith struct {
	model *model.Model

	Latency *metrics.LatencyRecorder
	QPS     *metrics.QPSMeter
}

// NewMonolith wraps a fully instantiated model (tables included).
func NewMonolith(m *model.Model) *Monolith {
	return &Monolith{
		model:   m,
		Latency: metrics.NewLatencyRecorder(0),
		QPS:     metrics.NewQPSMeter(10 * time.Second),
	}
}

// Predict services one query with indices in original table-ID space.
func (m *Monolith) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return err
	}
	cfg := m.model.Config
	if err := req.Validate(cfg.NumTables); err != nil {
		return err
	}
	if req.DenseDim != cfg.DenseInputDim {
		return fmt.Errorf("serving: dense dim %d != model %d", req.DenseDim, cfg.DenseInputDim)
	}
	dense := tensor.NewMatrix(req.BatchSize, req.DenseDim)
	copy(dense.Data, req.Dense)
	batches := make([]*embedding.Batch, cfg.NumTables)
	for t := range batches {
		batches[t] = &embedding.Batch{Indices: req.Tables[t].Indices, Offsets: req.Tables[t].Offsets}
	}
	probs, err := m.model.ForwardBatch(dense, batches)
	if err != nil {
		return err
	}
	reply.Probs = probs
	m.Latency.Observe(time.Since(start))
	m.QPS.Mark()
	return nil
}

var _ PredictClient = (*Monolith)(nil)
