package serving

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/embedding"
	"repro/internal/model"
)

// This file implements multi-model serving: one frontend, one Router, N
// independently-repartitionable DLRM variants. Each variant keeps its own
// dense shard (its own MLP parameters), its own dynamic batcher (fused
// batches never mix variants), its own live profiling window and its own
// epoch sequence inside the shared Router's (model -> plan) map.
// Repartitioning one variant drains only that variant's retired epoch;
// every other variant's in-flight requests and epoch pointers are
// untouched.

// ModelSpec describes one DLRM variant of a multi-model deployment.
type ModelSpec struct {
	// Name identifies the variant; requests address it through
	// PredictRequest.Model. Must be unique within the deployment
	// (empty canonicalizes to DefaultModel).
	Name string
	// Model is the fully instantiated variant (tables included).
	Model *model.Model
	// Stats is the variant's pre-deployment profiling window.
	Stats []*embedding.AccessStats
	// Boundaries is the variant's initial shard plan.
	Boundaries []int64
	// Options configures the variant's transport/replicas/batching;
	// variants may differ (e.g. only the hot variant batched).
	Options BuildOptions
}

// MultiDeployment serves several DLRM variants behind one frontend and one
// epoch-versioned Router. It is the multi-model generalization of
// LiveDeployment: each variant is a full LiveDeployment (dense shard,
// batcher, profiling window, repartition loop) sharing the Router, and the
// MultiDeployment dispatches every request on its Model field.
type MultiDeployment struct {
	// Router is the shared (model -> plan) routing layer.
	Router *Router

	deployments map[string]*LiveDeployment
	names       []string // registration order, canonical
	servers     []*RPCServer
}

// BuildMulti assembles a multi-model deployment: every spec is built as a
// LiveDeployment registered under its name in one shared Router. On error,
// everything already built is torn down.
func BuildMulti(specs ...ModelSpec) (*MultiDeployment, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("serving: multi-model deployment needs at least one model spec")
	}
	md := &MultiDeployment{
		Router:      NewMultiRouter(),
		deployments: make(map[string]*LiveDeployment, len(specs)),
	}
	for _, spec := range specs {
		name := canonicalModel(spec.Name)
		if _, dup := md.deployments[name]; dup {
			md.Close()
			return nil, fmt.Errorf("serving: duplicate model %q in multi-model deployment", name)
		}
		ld, err := buildModelDeployment(md.Router, name, spec.Model, spec.Stats, spec.Boundaries, spec.Options)
		if err != nil {
			md.Close()
			return nil, fmt.Errorf("serving: building model %q: %w", name, err)
		}
		md.deployments[name] = ld
		md.names = append(md.names, name)
	}
	return md, nil
}

// Models returns the served model names, sorted.
func (md *MultiDeployment) Models() []string {
	out := append([]string(nil), md.names...)
	sort.Strings(out)
	return out
}

// Deployment returns the named variant's deployment (the per-model handle
// for profiling, repartitioning and metrics).
func (md *MultiDeployment) Deployment(mdl string) (*LiveDeployment, bool) {
	ld, ok := md.deployments[canonicalModel(mdl)]
	return ld, ok
}

// deployment resolves a model name or reports the addressable set.
func (md *MultiDeployment) deployment(mdl string) (*LiveDeployment, error) {
	ld, ok := md.deployments[canonicalModel(mdl)]
	if !ok {
		return nil, fmt.Errorf("serving: frontend serves no model %q (have %v)", canonicalModel(mdl), md.Models())
	}
	return ld, nil
}

// Predict dispatches the request to the variant named by its Model field
// (empty = DefaultModel) — the one multi-model frontend entry point. Each
// variant's own batcher/dense path takes over from there, so two variants'
// requests are never fused together and never score against each other's
// parameters.
func (md *MultiDeployment) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	ld, err := md.deployment(req.Model)
	if err != nil {
		return err
	}
	return ld.Predict(ctx, req, reply)
}

var _ PredictClient = (*MultiDeployment)(nil)

// Repartition performs a zero-downtime plan swap for one variant; all
// other variants keep serving their current epochs without ever being
// drained or republished (see LiveDeployment.Repartition).
func (md *MultiDeployment) Repartition(ctx context.Context, mdl string, stats []*embedding.AccessStats, newBoundaries []int64) error {
	ld, err := md.deployment(mdl)
	if err != nil {
		return err
	}
	return ld.Repartition(ctx, stats, newBoundaries)
}

// StartProfile opens the named variant's live profiling window (each
// variant profiles and repartitions on its own cadence).
func (md *MultiDeployment) StartProfile(mdl string) error {
	ld, err := md.deployment(mdl)
	if err != nil {
		return err
	}
	ld.StartProfile()
	return nil
}

// SnapshotProfile closes the named variant's profiling window and returns
// its statistics (nil when no window was open).
func (md *MultiDeployment) SnapshotProfile(mdl string) ([]*embedding.AccessStats, error) {
	ld, err := md.deployment(mdl)
	if err != nil {
		return nil, err
	}
	return ld.SnapshotProfile(), nil
}

// Epoch returns the named variant's current plan epoch (-1 when the model
// is unknown).
func (md *MultiDeployment) Epoch(mdl string) int64 {
	ld, err := md.deployment(mdl)
	if err != nil {
		return -1
	}
	return ld.Epoch()
}

// ExportPredict exposes the multi-model dispatching frontend as one
// net/rpc service under name on loopback TCP: a single wire endpoint
// serves every variant, routed by PredictRequest.Model. The server is torn
// down by Close.
func (md *MultiDeployment) ExportPredict(name string) (string, error) {
	srv, err := NewRPCServer("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	if err := srv.RegisterPredict(name, predictFunc(md.Predict)); err != nil {
		srv.Close()
		return "", err
	}
	md.servers = append(md.servers, srv)
	return srv.Addr(), nil
}

// Close tears down the frontend servers and every variant's deployment.
func (md *MultiDeployment) Close() {
	for _, s := range md.servers {
		_ = s.Close()
	}
	md.servers = nil
	for _, name := range md.names {
		md.deployments[name].Close()
	}
}
