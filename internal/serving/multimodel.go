package serving

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/model"
)

// This file implements the multi-model data plane: one frontend, one
// Router, N independently-repartitionable DLRM variants. Each variant
// keeps its own dense shard (its own MLP parameters), its own dynamic
// batcher (fused batches never mix variants), its own live profiling
// window and its own epoch sequence inside the shared Router's
// (model -> plan) map. Repartitioning one variant drains only that
// variant's retired epoch; every other variant's in-flight requests are
// untouched.
//
// The set of served models is no longer frozen at build time: the model
// map is copy-on-write, and the deployment's Controller (controller.go)
// deploys new variants into — and drains retired variants out of — a
// running frontend. The data plane here stays strictly read-only on the
// request path: Predict is one atomic snapshot load plus the variant's own
// serving path.

// ModelSpec describes one DLRM variant of a multi-model deployment.
type ModelSpec struct {
	// Name identifies the variant; requests address it through
	// PredictRequest.Model. Must be unique within the deployment
	// (empty canonicalizes to DefaultModel).
	Name string
	// Model is the fully instantiated variant (tables included).
	Model *model.Model
	// Stats is the variant's pre-deployment profiling window.
	Stats []*embedding.AccessStats
	// Boundaries is the variant's initial shard plan.
	Boundaries []int64
	// Options configures the variant's transport/replicas/batching;
	// variants may differ (e.g. only the hot variant batched).
	Options BuildOptions
}

// modelSet is one immutable snapshot of the served variants: the
// deployments, their registration order, and the per-model offered-QPS
// meters. The MultiDeployment swaps whole snapshots (copy-on-write) so the
// request path reads a consistent set with one atomic load, and a variant
// being deployed or undeployed never blocks — or is partially visible to —
// a concurrent Predict.
type modelSet struct {
	deployments map[string]*LiveDeployment
	meters      map[string]*metrics.QPSMeter
	names       []string // registration order, canonical
}

// clone deep-copies the snapshot's maps (the values are shared).
func (s *modelSet) clone() *modelSet {
	next := &modelSet{
		deployments: make(map[string]*LiveDeployment, len(s.deployments)),
		meters:      make(map[string]*metrics.QPSMeter, len(s.meters)),
		names:       append([]string(nil), s.names...),
	}
	for k, v := range s.deployments {
		next.deployments[k] = v
	}
	for k, v := range s.meters {
		next.meters[k] = v
	}
	return next
}

// MultiDeployment serves several DLRM variants behind one frontend and one
// epoch-versioned Router — the multi-model *data plane*. Each variant is a
// full LiveDeployment (dense shard, batcher, profiling window) sharing the
// Router, and the MultiDeployment dispatches every request on its Model
// field. Lifecycle (deploying a new variant into the running frontend,
// draining one out) belongs to the Controller; the data plane only ever
// reads the current model snapshot.
type MultiDeployment struct {
	// Router is the shared (model -> plan) routing layer.
	Router *Router

	// models is the copy-on-write variant snapshot; mutateMu serializes
	// the writers (Controller lifecycle operations and Close), never the
	// request path.
	models   atomic.Pointer[modelSet]
	mutateMu sync.Mutex

	ctrl    *Controller
	servers []*RPCServer
}

// BuildMulti assembles a multi-model deployment: every spec is built as a
// LiveDeployment registered under its name in one shared Router. On error,
// everything already built is torn down. Further variants can be deployed
// into (and drained out of) the running deployment through Controller.
func BuildMulti(specs ...ModelSpec) (*MultiDeployment, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("serving: multi-model deployment needs at least one model spec")
	}
	md := &MultiDeployment{Router: NewMultiRouter()}
	md.models.Store(&modelSet{
		deployments: map[string]*LiveDeployment{},
		meters:      map[string]*metrics.QPSMeter{},
	})
	md.ctrl = &Controller{md: md}
	for _, spec := range specs {
		//lint:escape ctxflow constructor-time deploys have no caller context; NewMultiModel predates any request
		if err := md.ctrl.Deploy(context.Background(), spec); err != nil {
			md.Close()
			return nil, err
		}
	}
	return md, nil
}

// Controller returns the deployment's lifecycle control plane.
func (md *MultiDeployment) Controller() *Controller { return md.ctrl }

// snapshot returns the current immutable model set.
func (md *MultiDeployment) snapshot() *modelSet { return md.models.Load() }

// Models returns the served model names in registration order.
func (md *MultiDeployment) Models() []string {
	return append([]string(nil), md.snapshot().names...)
}

// Deployment returns the named variant's deployment (the per-model handle
// for profiling, repartitioning and metrics).
func (md *MultiDeployment) Deployment(mdl string) (*LiveDeployment, bool) {
	ld, ok := md.snapshot().deployments[canonicalModel(mdl)]
	return ld, ok
}

// deployment resolves a model name or reports the addressable set.
func (md *MultiDeployment) deployment(mdl string) (*LiveDeployment, error) {
	s := md.snapshot()
	ld, ok := s.deployments[canonicalModel(mdl)]
	if !ok {
		return nil, fmt.Errorf("serving: frontend serves no model %q (have %v)", canonicalModel(mdl), s.names)
	}
	return ld, nil
}

// OfferedQPS returns the named variant's offered load at the frontend
// (queries/sec over a sliding window; 0 for an unknown or retired model).
// This is the per-model attribution meter the live autoscaler scales on —
// it is created at Deploy and removed at Undeploy, so a retired model's
// meter never lingers.
func (md *MultiDeployment) OfferedQPS(mdl string) float64 {
	m, ok := md.snapshot().meters[canonicalModel(mdl)]
	if !ok {
		return 0
	}
	return m.Rate()
}

// Predict dispatches the request to the variant named by its Model field
// (empty = DefaultModel) — the one multi-model frontend entry point. Each
// variant's own batcher/dense path takes over from there, so two variants'
// requests are never fused together and never score against each other's
// parameters. The dispatch reads one immutable model snapshot, so a
// concurrent deploy/undeploy can never expose a half-registered variant.
func (md *MultiDeployment) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	s := md.snapshot()
	name := canonicalModel(req.Model)
	ld, ok := s.deployments[name]
	if !ok {
		return fmt.Errorf("serving: frontend serves no model %q (have %v)", name, s.names)
	}
	if m := s.meters[name]; m != nil {
		m.Mark()
	}
	return ld.Predict(ctx, req, reply)
}

var _ PredictClient = (*MultiDeployment)(nil)

// Repartition performs a zero-downtime plan swap for one variant; all
// other variants keep serving their current epochs without ever being
// drained or republished (see LiveDeployment.Repartition).
func (md *MultiDeployment) Repartition(ctx context.Context, mdl string, stats []*embedding.AccessStats, newBoundaries []int64) error {
	ld, err := md.deployment(mdl)
	if err != nil {
		return err
	}
	return ld.Repartition(ctx, stats, newBoundaries)
}

// StartProfile opens the named variant's live profiling window (each
// variant profiles and repartitions on its own cadence).
func (md *MultiDeployment) StartProfile(mdl string) error {
	ld, err := md.deployment(mdl)
	if err != nil {
		return err
	}
	ld.StartProfile()
	return nil
}

// SnapshotProfile closes the named variant's profiling window and returns
// its statistics (nil when no window was open).
func (md *MultiDeployment) SnapshotProfile(mdl string) ([]*embedding.AccessStats, error) {
	ld, err := md.deployment(mdl)
	if err != nil {
		return nil, err
	}
	return ld.SnapshotProfile(), nil
}

// Epoch returns the named variant's current plan epoch (-1 when the model
// is unknown or retired).
func (md *MultiDeployment) Epoch(mdl string) int64 {
	ld, err := md.deployment(mdl)
	if err != nil {
		return -1
	}
	return ld.Epoch()
}

// publishModel installs a freshly built variant into the data plane: the
// instant the snapshot swaps, the frontend dispatches to it. Caller holds
// mutateMu.
func (md *MultiDeployment) publishModel(name string, ld *LiveDeployment) error {
	s := md.snapshot()
	if _, dup := s.deployments[name]; dup {
		return fmt.Errorf("serving: model %q already deployed", name)
	}
	next := s.clone()
	next.deployments[name] = ld
	next.meters[name] = metrics.NewQPSMeter(2 * time.Second)
	next.names = append(next.names, name)
	md.models.Store(next)
	return nil
}

// unpublishModel removes a variant from the data plane and returns its
// deployment: new requests for the name fail immediately with the usual
// "serves no model" error, and the variant's offered-QPS meter is dropped
// with it (metrics must not outlive a retired model). Caller holds
// mutateMu and still has to drain/tear down the returned deployment.
func (md *MultiDeployment) unpublishModel(name string) (*LiveDeployment, error) {
	s := md.snapshot()
	ld, ok := s.deployments[name]
	if !ok {
		return nil, fmt.Errorf("serving: frontend serves no model %q (have %v)", name, s.names)
	}
	next := s.clone()
	delete(next.deployments, name)
	delete(next.meters, name)
	next.names = next.names[:0]
	for _, n := range s.names {
		if n != name {
			next.names = append(next.names, n)
		}
	}
	md.models.Store(next)
	return ld, nil
}

// ExportPredict exposes the multi-model dispatching frontend as one
// network service under name on loopback TCP: a single wire endpoint
// serves every variant, routed by PredictRequest.Model, reachable over
// both the binary framed codec (DialPredict) and legacy gob
// (DialPredictGob). The same listener also carries the lifecycle control
// plane as the versioned admin service AdminServiceName(name)
// (Admin.Deploy / Admin.Undeploy / Admin.Status via DialAdmin): admin
// connections open with gob, so the codec-sniffing accept loop passes
// them through to net/rpc while predict traffic rides binary frames. The
// server is torn down by Close.
func (md *MultiDeployment) ExportPredict(name string) (string, error) {
	srv, err := NewRPCServer("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	if err := srv.RegisterPredict(name, predictFunc(md.Predict)); err != nil {
		srv.Close()
		return "", err
	}
	if err := srv.RegisterAdmin(AdminServiceName(name), md.ctrl); err != nil {
		srv.Close()
		return "", err
	}
	md.mutateMu.Lock()
	md.servers = append(md.servers, srv)
	md.mutateMu.Unlock()
	return srv.Addr(), nil
}

// Close tears down the frontend servers and every variant's deployment.
func (md *MultiDeployment) Close() {
	md.mutateMu.Lock()
	defer md.mutateMu.Unlock()
	for _, s := range md.servers {
		_ = s.Close()
	}
	md.servers = nil
	s := md.snapshot()
	md.models.Store(&modelSet{
		deployments: map[string]*LiveDeployment{},
		meters:      map[string]*metrics.QPSMeter{},
	})
	for _, name := range s.names {
		s.deployments[name].Close()
	}
}
