package serving

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/embedding"
)

// poolFixture builds a pool of n healthy shard replicas over one table.
func poolFixture(t *testing.T, n int) *ReplicaPool {
	t.Helper()
	tab, err := embedding.NewRandomTable("t", 100, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var replicas []GatherClient
	for i := 0; i < n; i++ {
		shard, err := NewEmbeddingShard(0, 0, tab, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, shard)
	}
	pool := NewReplicaPool(replicas...)
	t.Cleanup(pool.Close)
	return pool
}

// TestKillReplicaFailsOverWithoutClientErrors is the fault-injection
// contract the scenario harness relies on: a killed replica stays in the
// round robin (so it takes hits) but every hit fails over to a survivor,
// invisible to clients — including under concurrency.
func TestKillReplicaFailsOverWithoutClientErrors(t *testing.T) {
	pool := poolFixture(t, 2)
	if !pool.KillReplica(0) {
		t.Fatal("KillReplica(0) refused")
	}
	if live, size := pool.Live(), pool.Size(); live != 1 || size != 2 {
		t.Fatalf("want 1/2 live, got %d/%d", live, size)
	}
	req := &GatherRequest{Indices: []int64{1, 2}, Offsets: []int32{0}}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				var reply GatherReply
				if err := pool.Gather(bg, req, &reply); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("gather failed with a live survivor: %v", err)
	}
}

func TestKillAllRepliesThenRevive(t *testing.T) {
	pool := poolFixture(t, 2)
	pool.KillReplica(0)
	pool.KillReplica(1)
	if pool.Live() != 0 {
		t.Fatalf("want 0 live, got %d", pool.Live())
	}
	req := &GatherRequest{Indices: []int64{1}, Offsets: []int32{0}}
	var reply GatherReply
	if err := pool.Gather(bg, req, &reply); err == nil {
		t.Fatal("want error with every replica down")
	}
	if !pool.ReviveReplica(1) {
		t.Fatal("ReviveReplica(1) refused")
	}
	if pool.Live() != 1 {
		t.Fatalf("want 1 live after revive, got %d", pool.Live())
	}
	if err := pool.Gather(bg, req, &reply); err != nil {
		t.Fatalf("gather after revive: %v", err)
	}
	// Out-of-range indices are rejected, not silently ignored.
	if pool.KillReplica(5) || pool.ReviveReplica(-1) {
		t.Fatal("out-of-range replica index accepted")
	}
}

func TestInjectDelayStallsGather(t *testing.T) {
	pool := poolFixture(t, 1)
	req := &GatherRequest{Indices: []int64{1}, Offsets: []int32{0}}
	var reply GatherReply

	pool.InjectDelay(30 * time.Millisecond)
	if pool.InjectedDelay() != 30*time.Millisecond {
		t.Fatalf("InjectedDelay = %v", pool.InjectedDelay())
	}
	start := time.Now()
	if err := pool.Gather(bg, req, &reply); err != nil {
		t.Fatalf("gather with delay: %v", err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Fatalf("delay not applied: gather took %v", took)
	}

	// Clearing the injection restores normal latency.
	pool.InjectDelay(0)
	start = time.Now()
	if err := pool.Gather(bg, req, &reply); err != nil {
		t.Fatalf("gather after clearing delay: %v", err)
	}
	if took := time.Since(start); took > 20*time.Millisecond {
		t.Fatalf("delay persisted after clear: gather took %v", took)
	}
}

func TestInjectDelayHonorsContext(t *testing.T) {
	pool := poolFixture(t, 1)
	pool.InjectDelay(5 * time.Second)
	ctx, cancel := context.WithTimeout(bg, 20*time.Millisecond)
	defer cancel()
	var reply GatherReply
	start := time.Now()
	err := pool.Gather(ctx, &GatherRequest{Indices: []int64{1}, Offsets: []int32{0}}, &reply)
	if err == nil {
		t.Fatal("want ctx error from a stalled gather")
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("gather ignored ctx cancellation for %v", took)
	}
}
