package serving

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/embedding"
)

// These tests pin the epoch-reuse layer: the plan cache must make a
// repartition back to a recent plan free of Preprocess/shard-build work,
// an incremental boundary move must rebuild only the moved shards while
// unchanged shards keep their live service pointers across epochs, and the
// shard refcounts must reach zero only when no epoch (and no cache entry)
// references a unit anymore. Run with -race in CI (the names match the
// race-repartition target's pattern).

// reuseTestbed is one epoch-reuse test's working set: a live deployment,
// the profiling window it was built from (re-fed to Repartition so the
// fingerprint hits), two boundary plans differing in exactly one cut, and
// a canned predict.
type reuseTestbed struct {
	ld           *LiveDeployment
	stats        []*embedding.AccessStats
	planA, planB []int64
	predict      func() error
}

// reuseFixture builds a small live deployment plus a second boundary plan
// differing from the first in exactly one cut.
func reuseFixture(t *testing.T, opts BuildOptions) *reuseTestbed {
	t.Helper()
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	planA := []int64{50, 200, cfg.RowsPerTable}
	planB := []int64{50, 300, cfg.RowsPerTable} // middle boundary moved
	ld, err := BuildElastic(m, stats, planA, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ld.Close)
	req := makeRequest(cfg, gen, 4242)
	return &reuseTestbed{
		ld:    ld,
		stats: stats,
		planA: planA,
		planB: planB,
		predict: func() error {
			var reply PredictReply
			return ld.Predict(bg, req, &reply)
		},
	}
}

// TestRepartitionReusesUnchangedShards: an incremental single-boundary
// move rebuilds only the shards the boundary move touches; every unchanged
// shard's service pointer (and replica pool) is identical across epochs.
func TestRepartitionReusesUnchangedShards(t *testing.T) {
	for _, transport := range []Transport{TransportLocal, TransportTCP} {
		t.Run(string(transport), func(t *testing.T) {
			tb := reuseFixture(t, BuildOptions{Transport: transport})
			ld := tb.ld
			cfg := ld.cfg
			before := ld.Table()

			rep, err := ld.RepartitionReport(context.Background(), tb.stats, tb.planB)
			if err != nil {
				t.Fatal(err)
			}
			after := ld.Table()
			if after.Epoch != 1 {
				t.Fatalf("epoch = %d, want 1", after.Epoch)
			}
			// Moving the middle cut changes shards 1 and 2 of every
			// table; shard 0 ([0,50)) is untouched.
			if want := cfg.NumTables * 2; rep.ShardsBuilt != want {
				t.Fatalf("ShardsBuilt = %d, want %d (only the moved shards)", rep.ShardsBuilt, want)
			}
			if want := cfg.NumTables; rep.ShardsReused != want {
				t.Fatalf("ShardsReused = %d, want %d", rep.ShardsReused, want)
			}
			if !rep.CacheHit {
				t.Fatal("same stats must hit the preprocessing cache")
			}
			for tb := 0; tb < cfg.NumTables; tb++ {
				if before.Shards[tb][0] != after.Shards[tb][0] {
					t.Fatalf("table %d shard 0 service rebuilt across epochs despite unchanged range", tb)
				}
				if before.Pools[tb][0] != after.Pools[tb][0] {
					t.Fatalf("table %d shard 0 pool rebuilt across epochs", tb)
				}
				if before.Shards[tb][1] == after.Shards[tb][1] {
					t.Fatalf("table %d shard 1 service reused despite moved boundary", tb)
				}
			}
			// The deployment still serves correctly through the mixed
			// reused/fresh epoch.
			if err := tb.predict(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRepartitionCacheHitSkipsBuilds: returning to a recent plan is a full
// cache hit — no Preprocess run, no shard built (spied via BuildCounters),
// and the original epoch's exact service units come back.
func TestRepartitionCacheHitSkipsBuilds(t *testing.T) {
	tb := reuseFixture(t, BuildOptions{})
	ld := tb.ld
	epoch0 := ld.Table()
	shard00 := epoch0.Shards[0][0]
	shard01 := epoch0.Shards[0][1]

	if err := ld.Repartition(context.Background(), tb.stats, tb.planB); err != nil {
		t.Fatal(err)
	}
	mid := ld.BuildCounters()

	// Swap back to plan A: every unit (including the moved ones) is still
	// cached, so nothing may be preprocessed or built.
	rep, err := ld.RepartitionReport(context.Background(), tb.stats, tb.planA)
	if err != nil {
		t.Fatal(err)
	}
	now := ld.BuildCounters()
	if now.Preprocesses != mid.Preprocesses {
		t.Fatalf("cache-hit repartition ran Preprocess (%d -> %d)", mid.Preprocesses, now.Preprocesses)
	}
	if now.ShardsBuilt != mid.ShardsBuilt {
		t.Fatalf("cache-hit repartition built shards (%d -> %d)", mid.ShardsBuilt, now.ShardsBuilt)
	}
	if !rep.Cheap() {
		t.Fatalf("report = %+v, want Cheap() (cache hit, zero builds)", rep)
	}
	if rep.WarmedRows != 0 {
		t.Fatalf("cache-hit warmed %d rows; reused shards are already warm", rep.WarmedRows)
	}
	back := ld.Table()
	if back.Shards[0][0] != shard00 || back.Shards[0][1] != shard01 {
		t.Fatal("cache-hit repartition did not restore the original service units")
	}
	if err := tb.predict(); err != nil {
		t.Fatal(err)
	}
}

// TestRepartitionColdWithoutCache: with the plan cache disabled every
// repartition rebuilds everything, even with identical stats+boundaries.
func TestRepartitionColdWithoutCache(t *testing.T) {
	tb := reuseFixture(t, BuildOptions{PlanCacheEpochs: -1})
	ld := tb.ld
	before := ld.Table().Shards[0][0]
	rep, err := ld.RepartitionReport(context.Background(), tb.stats, tb.planA)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHit || rep.ShardsReused != 0 {
		t.Fatalf("disabled cache produced reuse: %+v", rep)
	}
	if want := ld.cfg.NumTables * len(tb.planA); rep.ShardsBuilt != want {
		t.Fatalf("ShardsBuilt = %d, want %d", rep.ShardsBuilt, want)
	}
	if ld.Table().Shards[0][0] == before {
		t.Fatal("disabled cache reused a shard service")
	}
	if rep.WarmedRows == 0 {
		t.Fatal("cold build should pre-warm its fresh shards")
	}
}

// TestShardRefcountLifecycle: a unit's refcount is one per epoch routing
// to it plus one while cached; it drops to zero (closing transports) only
// when no epoch references it anymore and the cache has let go.
func TestShardRefcountLifecycle(t *testing.T) {
	// maxAge 1: an entry not reused for one epoch is evicted on the next
	// build, so refcounts are observable without deployment teardown.
	tb := reuseFixture(t, BuildOptions{Transport: TransportTCP, PlanCacheEpochs: 1})
	ld := tb.ld
	epoch0 := ld.Table()
	// Live epoch + cache reference.
	if got := epoch0.ShardRefs(0, 0); got != 2 {
		t.Fatalf("epoch-0 shard refs = %d, want 2 (epoch + cache)", got)
	}

	// Acquire the epoch like an in-flight request, then repartition: the
	// unchanged shard must be shared (epoch0 + epoch1 + cache), the moved
	// shard stays owned by epoch0 + cache until eviction.
	pinned, err := ld.Router.AcquireModel(ld.model)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	err = ld.Repartition(ctx, tb.stats, tb.planB)
	cancel()
	if err == nil {
		t.Fatal("drain should have timed out with a pinned epoch")
	}
	epoch1 := ld.Table()
	if got := epoch1.ShardRefs(0, 0); got != 3 {
		t.Fatalf("shared shard refs = %d, want 3 (two epochs + cache)", got)
	}
	if got := epoch1.ShardRefs(0, 1); got != 2 {
		t.Fatalf("fresh shard refs = %d, want 2 (epoch + cache)", got)
	}

	// Release the pinned epoch and close it (the drain timed out, so the
	// retiring table was intentionally leaked to us).
	pinned.release()
	epoch0.Close()
	if got := epoch1.ShardRefs(0, 0); got != 2 {
		t.Fatalf("after retiring epoch 0, shared shard refs = %d, want 2", got)
	}
	// The moved shard of epoch 0 is now held only by the cache; its
	// service must still answer (kept warm for a return swap).
	var reply GatherReply
	err = epoch0.Shards[0][1].Gather(bg, &GatherRequest{Indices: []int64{0}, Offsets: []int32{0}}, &reply)
	if err != nil {
		t.Fatalf("cached shard service gather: %v", err)
	}
}

// TestRepartitionUnderFireWithReuse is the reuse twin of the
// repartition-under-fire acceptance: 8 clients hammer Predict while the
// plan alternates between two overlapping boundary sets built from the
// SAME stats — so every swap shares most shard units with the epoch it
// retires. Replies must stay monolith-equivalent throughout (a refcount
// bug would tear a shared unit's transports down under in-flight gathers).
func TestRepartitionUnderFireWithReuse(t *testing.T) {
	for _, transport := range []Transport{TransportLocal, TransportTCP} {
		t.Run(string(transport), func(t *testing.T) {
			cfg := liveConfig()
			if transport == TransportTCP {
				cfg.NumTables = 2 // keep the socket count friendly
			}
			m, stats, gen := buildFixture(t, cfg)
			mono := NewMonolith(m.Clone())
			plans := [][]int64{
				{50, 200, cfg.RowsPerTable},
				{50, 300, cfg.RowsPerTable},
			}
			ld, err := BuildElastic(m, stats, plans[0], BuildOptions{Transport: transport})
			if err != nil {
				t.Fatal(err)
			}
			defer ld.Close()

			const clients = 8
			const perClient = 20
			reqs := make([]*PredictRequest, clients*perClient)
			want := make([][]float32, len(reqs))
			for i := range reqs {
				reqs[i] = makeRequest(cfg, gen, uint64(9000+i))
				var mr PredictReply
				if err := mono.Predict(bg, reqs[i], &mr); err != nil {
					t.Fatal(err)
				}
				want[i] = mr.Probs
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			errc := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for q := 0; !stop.Load(); q = (q + 1) % perClient {
						i := c*perClient + q
						var reply PredictReply
						if err := ld.Predict(bg, reqs[i], &reply); err != nil {
							errc <- fmt.Errorf("client %d: %w", c, err)
							return
						}
						for j := range want[i] {
							if math.Abs(float64(reply.Probs[j]-want[i][j])) > 1e-4 {
								errc <- fmt.Errorf("client %d query %d: %v != monolith %v", c, q, reply.Probs[j], want[i][j])
								return
							}
						}
					}
				}(c)
			}
			const swaps = 10
			var reused int
			for swap := 0; swap < swaps; swap++ {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				rep, err := ld.RepartitionReport(ctx, stats, plans[(swap+1)%len(plans)])
				cancel()
				if err != nil {
					stop.Store(true)
					wg.Wait()
					t.Fatalf("swap %d: %v", swap, err)
				}
				reused += rep.ShardsReused
			}
			stop.Store(true)
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			if reused == 0 {
				t.Fatal("no shard was ever reused across ten same-stats swaps")
			}
			if got := ld.Epoch(); got != swaps {
				t.Fatalf("final epoch = %d, want %d", got, swaps)
			}
		})
	}
}

// TestCachedIntervalPolicy: a model whose last swap was cheap re-triggers
// on MinIntervalCached instead of MinInterval.
func TestCachedIntervalPolicy(t *testing.T) {
	p := &cluster.RepartitionPolicy{
		MinSkew:           0.5,
		MinInterval:       time.Hour,
		MinIntervalCached: time.Millisecond,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if !p.ShouldRepartitionModel("m", 0.1, 100, now) {
		t.Fatal("first trigger must fire")
	}
	// Expensive swap: the hour-long interval gates the next trigger.
	p.NoteSwap("m", false)
	if p.ShouldRepartitionModel("m", 0.1, 100, now.Add(time.Minute)) {
		t.Fatal("expensive swap must be throttled by MinInterval")
	}
	// Pretend the last swap was cheap: the cached interval applies.
	p.NoteSwap("m", true)
	if !p.ShouldRepartitionModel("m", 0.1, 100, now.Add(time.Minute)) {
		t.Fatal("cheap swap must re-trigger on MinIntervalCached")
	}
}

// TestPrewarmBounds: Prewarm touches at most the shard's rows and never
// perturbs the utility tracker.
func TestPrewarmBounds(t *testing.T) {
	cfg := liveConfig()
	m, stats, _ := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{50, cfg.RowsPerTable}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	sh := ld.Shard(0, 0)
	if got := sh.Prewarm(1 << 20); got != sh.Rows() {
		t.Fatalf("Prewarm touched %d rows, want clamped to %d", got, sh.Rows())
	}
	if u := sh.Utility.Utility(); u != 0 {
		t.Fatalf("Prewarm moved the utility tracker to %v; warming must not distort Fig. 14", u)
	}
}

func TestFingerprintStability(t *testing.T) {
	cfg := liveConfig()
	_, statsA, _ := buildFixture(t, cfg)
	_, statsB, _ := buildFixture(t, cfg)
	if fingerprintStats(statsA) != fingerprintStats(statsB) {
		t.Fatal("identical windows must fingerprint identically")
	}
	statsB[0].Counts[0]++
	statsB[0].Total++
	if fingerprintStats(statsA) == fingerprintStats(statsB) {
		t.Fatal("different windows must fingerprint differently")
	}
}
