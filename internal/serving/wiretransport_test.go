package serving

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// TestMixedTransportClients serves one multi-model frontend and drives it
// with a binary framed client and a legacy gob client at the same time,
// over the same listener. Both must score identically to the variants'
// monoliths, and the gob-speaking admin client must keep working beside
// them — the codec-sniffing accept loop's interop contract.
func TestMixedTransportClients(t *testing.T) {
	md, monos, reqs := multiFixture(t, BuildOptions{}, BuildOptions{})
	addr, err := md.ExportPredict("Frontend")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := DialPredict(addr, "Frontend")
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	gob, err := DialPredictGob(addr, "Frontend")
	if err != nil {
		t.Fatal(err)
	}
	defer gob.Close()
	admin, err := DialAdmin(addr, "Frontend")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	clients := map[string]PredictClient{"binary": bin, "gob": gob}
	var wg sync.WaitGroup
	errCh := make(chan error, len(clients))
	for cname, client := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, name := range []string{"a", "b"} {
				for _, req := range reqs[name] {
					var got, want PredictReply
					if err := client.Predict(bg, req, &got); err != nil {
						errCh <- err
						return
					}
					if err := monos[name].Predict(bg, req, &want); err != nil {
						errCh <- err
						return
					}
					for j := range want.Probs {
						if math.Abs(float64(got.Probs[j]-want.Probs[j])) > 1e-4 {
							errCh <- errors.New(cname + " client diverged from monolith on " + name)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st, err := admin.Status(bg, "")
	if err != nil {
		t.Fatalf("admin over shared listener: %v", err)
	}
	if len(st) != 2 {
		t.Fatalf("admin status models = %d, want 2", len(st))
	}
}

// TestWireGobCodecOption builds a TCP deployment whose shard gathers ride
// the legacy gob codec (BuildOptions.WireCodec) and checks monolith
// equivalence — the opt-out path must stay bit-exact.
func TestWireGobCodecOption(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	mono := NewMonolith(m.Clone())
	ld, err := BuildElastic(m, stats, []int64{50, 200, cfg.RowsPerTable},
		BuildOptions{Transport: TransportTCP, WireCodec: WireGob})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	for i := 0; i < 16; i++ {
		req := makeRequest(cfg, gen, uint64(1000+i))
		var got, want PredictReply
		if err := ld.Predict(bg, req, &got); err != nil {
			t.Fatal(err)
		}
		if err := mono.Predict(bg, req, &want); err != nil {
			t.Fatal(err)
		}
		for j := range want.Probs {
			if math.Abs(float64(got.Probs[j]-want.Probs[j])) > 1e-5 {
				t.Fatalf("req %d input %d: gob-wire %v != monolith %v", i, j, got.Probs[j], want.Probs[j])
			}
		}
	}

	if _, err := BuildElastic(m.Clone(), stats, []int64{50, 200, cfg.RowsPerTable},
		BuildOptions{Transport: TransportTCP, WireCodec: WireCodec("xdr")}); err == nil {
		t.Fatal("unknown wire codec accepted")
	}
}

// TestWireQuantPredictAccuracy builds twin TCP deployments — one with the
// int8-quantized gather encoding, one float32 — and checks every
// prediction agrees within 1e-2 (the acceptance bound: per-row
// quantization error is <= maxabs/254 per element before the MLPs).
func TestWireQuantPredictAccuracy(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	exact, err := BuildElastic(m, stats, []int64{50, 200, cfg.RowsPerTable},
		BuildOptions{Transport: TransportTCP})
	if err != nil {
		t.Fatal(err)
	}
	defer exact.Close()
	quant, err := BuildElastic(m.Clone(), stats, []int64{50, 200, cfg.RowsPerTable},
		BuildOptions{Transport: TransportTCP, WireQuant: true})
	if err != nil {
		t.Fatal(err)
	}
	defer quant.Close()
	for i := 0; i < 24; i++ {
		req := makeRequest(cfg, gen, uint64(2000+i))
		var got, want PredictReply
		if err := quant.Predict(bg, req, &got); err != nil {
			t.Fatal(err)
		}
		if err := exact.Predict(bg, req, &want); err != nil {
			t.Fatal(err)
		}
		for j := range want.Probs {
			if math.Abs(float64(got.Probs[j]-want.Probs[j])) > 1e-2 {
				t.Fatalf("req %d input %d: quantized %v drifted from float32 %v", i, j, got.Probs[j], want.Probs[j])
			}
		}
	}
}

// TestWireFP16PredictAccuracy builds twin TCP deployments — one with the
// half-precision gather-reply encoding, one float32 — and checks every
// prediction agrees within 1e-2: binary16 keeps ~3 decimal digits per
// element, and the pooled sums average the per-row rounding out before
// the MLPs. The fp16 variant also runs gather path v2 with the hot-row
// cache on, so fp16 frames, rows-mode requests and the zero-copy reply
// encoder are all exercised on one wire.
func TestWireFP16PredictAccuracy(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	exact, err := BuildElastic(m, stats, []int64{50, 200, cfg.RowsPerTable},
		BuildOptions{Transport: TransportTCP})
	if err != nil {
		t.Fatal(err)
	}
	defer exact.Close()
	half, err := BuildElastic(m.Clone(), stats, []int64{50, 200, cfg.RowsPerTable},
		BuildOptions{Transport: TransportTCP, WireFP16: true, RowCacheBytes: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	defer half.Close()
	for i := 0; i < 24; i++ {
		req := makeRequest(cfg, gen, uint64(3000+i))
		var got, want PredictReply
		if err := half.Predict(bg, req, &got); err != nil {
			t.Fatal(err)
		}
		if err := exact.Predict(bg, req, &want); err != nil {
			t.Fatal(err)
		}
		for j := range want.Probs {
			if math.Abs(float64(got.Probs[j]-want.Probs[j])) > 1e-2 {
				t.Fatalf("req %d input %d: fp16 %v drifted from float32 %v", i, j, got.Probs[j], want.Probs[j])
			}
		}
	}
	if _, err := BuildElastic(m.Clone(), stats, []int64{50, 200, cfg.RowsPerTable},
		BuildOptions{Transport: TransportTCP, WireQuant: true, WireFP16: true}); err == nil {
		t.Fatal("WireQuant+WireFP16 accepted; the encodings are mutually exclusive")
	}
}

// TestGatherRowsOverTCP runs gather path v2 (rows-mode requests, shard-
// side zero-copy reply encoding) over the binary TCP transport at full
// float32 precision: raw rows ride the wire exactly, and the frontend
// re-expansion accumulates in the monolith's order, so the 1e-5
// equivalence bound of the v1 path must hold unchanged.
func TestGatherRowsOverTCP(t *testing.T) {
	cfg := liveConfig()
	cfg.NumTables = 2 // fewer sockets
	m, stats, gen := buildFixture(t, cfg)
	mono := NewMonolith(m.Clone())
	ld, err := BuildElastic(m, stats, []int64{50, cfg.RowsPerTable},
		BuildOptions{Transport: TransportTCP, GatherRows: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	for i := 0; i < 8; i++ {
		req := makeRequest(cfg, gen, uint64(4000+i))
		var got, want PredictReply
		if err := ld.Predict(bg, req, &got); err != nil {
			t.Fatal(err)
		}
		if err := mono.Predict(bg, req, &want); err != nil {
			t.Fatal(err)
		}
		for j := range want.Probs {
			if math.Abs(float64(got.Probs[j]-want.Probs[j])) > 1e-5 {
				t.Fatalf("req %d input %d: rows-mode TCP %v != monolith %v", i, j, got.Probs[j], want.Probs[j])
			}
		}
	}
}

// slowPredict delays each reply by the duration in its model name's
// request Dense[0] (milliseconds) and echoes that value back, so a test
// can force out-of-order completion on one pipelined connection.
type slowPredict struct{}

func (slowPredict) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	delay := time.Duration(req.Dense[0]) * time.Millisecond
	select {
	case <-time.After(delay):
	case <-ctx.Done():
		return ctx.Err()
	}
	reply.Probs = []float32{req.Dense[0]}
	return nil
}

// TestWirePipelinedOutOfOrder issues concurrent calls through one binary
// connection with inverted delays: the last request finishes first, so
// replies come back out of submission order and each must still land on
// its own call.
func TestWirePipelinedOutOfOrder(t *testing.T) {
	srv, err := NewRPCServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.RegisterPredict("Slow", slowPredict{}); err != nil {
		t.Fatal(err)
	}
	client, err := DialPredict(srv.Addr(), "Slow")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	replies := make([]PredictReply, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &PredictRequest{BatchSize: 1, DenseDim: 1, Dense: []float32{float32((n - i) * 10)}}
			errs[i] = client.Predict(bg, req, &replies[i])
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("call %d: %v", i, errs[i])
		}
		if want := float32((n - i) * 10); len(replies[i].Probs) != 1 || replies[i].Probs[0] != want {
			t.Fatalf("call %d got %v, want [%v] — replies crossed", i, replies[i].Probs, want)
		}
	}
}

// TestWireCancelAbandonsCall cancels a call mid-flight and checks the
// rpcGo contract carries over: the caller gets ctx.Err() promptly, the
// late reply is discarded without racing anyone, and the connection stays
// usable for subsequent calls.
func TestWireCancelAbandonsCall(t *testing.T) {
	srv, err := NewRPCServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.RegisterPredict("Slow", slowPredict{}); err != nil {
		t.Fatal(err)
	}
	client, err := DialPredict(srv.Addr(), "Slow")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(bg, 30*time.Millisecond)
	defer cancel()
	var abandoned PredictReply
	req := &PredictRequest{BatchSize: 1, DenseDim: 1, Dense: []float32{2000}}
	start := time.Now()
	err = client.Predict(ctx, req, &abandoned)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled call returned %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled call did not return promptly")
	}

	var ok PredictReply
	if err := client.Predict(bg, &PredictRequest{BatchSize: 1, DenseDim: 1, Dense: []float32{1}}, &ok); err != nil {
		t.Fatalf("connection unusable after abandoned call: %v", err)
	}
	if len(ok.Probs) != 1 || ok.Probs[0] != 1 {
		t.Fatalf("post-cancel reply = %v", ok.Probs)
	}
}
