package serving

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/model"
)

// Preprocessed is the output of ElasticRec's one-time table preprocessing
// (Sec. IV-B, Fig. 8): every embedding table sorted by access hotness,
// plus the original-ID -> sorted-ID remap the frontend applies before
// bucketization, and the per-table access CDFs the cost estimator uses.
type Preprocessed struct {
	Config model.Config
	// Sorted[t] is table t reordered so row 0 is its hottest embedding.
	Sorted []*embedding.Table
	// RankOf[t][orig] is the sorted-space row of original row orig.
	RankOf [][]int64
	// CDFs[t] is table t's access-frequency CDF over sorted rows.
	CDFs []*embedding.CDF
}

// Preprocess sorts every table of m by the recorded access statistics.
// stats must have one entry per table with matching row counts. The
// operation is off the serving critical path (the paper measures ~3 s for
// its largest table).
func Preprocess(m *model.Model, stats []*embedding.AccessStats) (*Preprocessed, error) {
	if len(stats) != len(m.Tables) {
		return nil, fmt.Errorf("serving: %d stats for %d tables", len(stats), len(m.Tables))
	}
	out := &Preprocessed{Config: m.Config}
	for t, tab := range m.Tables {
		st := stats[t]
		if st.Rows() != tab.Rows {
			return nil, fmt.Errorf("serving: table %d stats cover %d rows, table has %d", t, st.Rows(), tab.Rows)
		}
		perm := st.HotnessPermutation()
		sorted, err := tab.Permute(perm)
		if err != nil {
			return nil, fmt.Errorf("serving: sorting table %d: %w", t, err)
		}
		rankOf := make([]int64, tab.Rows)
		for rank, orig := range perm {
			rankOf[orig] = int64(rank)
		}
		out.Sorted = append(out.Sorted, sorted)
		out.RankOf = append(out.RankOf, rankOf)
		out.CDFs = append(out.CDFs, embedding.NewCDF(st))
	}
	return out, nil
}

// RemapBatch translates a batch expressed in table t's original IDs into
// sorted-space IDs. The offsets are shared (structure is unchanged).
func (p *Preprocessed) RemapBatch(t int, b *embedding.Batch) (*embedding.Batch, error) {
	if t < 0 || t >= len(p.RankOf) {
		return nil, fmt.Errorf("serving: table %d of %d", t, len(p.RankOf))
	}
	rank := p.RankOf[t]
	out := &embedding.Batch{
		Indices: make([]int64, len(b.Indices)),
		Offsets: b.Offsets,
	}
	for i, idx := range b.Indices {
		if idx < 0 || idx >= int64(len(rank)) {
			return nil, fmt.Errorf("serving: index %d outside table %d (%d rows)", idx, t, len(rank))
		}
		out.Indices[i] = rank[idx]
	}
	return out, nil
}

// RemapRequest translates a whole predict request from original to sorted
// ID space.
func (p *Preprocessed) RemapRequest(req *PredictRequest) (*PredictRequest, error) {
	out := &PredictRequest{
		Model:     req.Model,
		BatchSize: req.BatchSize,
		DenseDim:  req.DenseDim,
		Dense:     req.Dense,
		Tables:    make([]TableBatch, len(req.Tables)),
		Deadline:  req.Deadline,
	}
	for t, tb := range req.Tables {
		rb, err := p.RemapBatch(t, &embedding.Batch{Indices: tb.Indices, Offsets: tb.Offsets})
		if err != nil {
			return nil, err
		}
		out.Tables[t] = TableBatch{Indices: rb.Indices, Offsets: rb.Offsets}
	}
	return out, nil
}
