package serving

import (
	"testing"

	"repro/internal/analysis/leakcheck"
)

// TestMain guards the package's goroutine hygiene: every replica pool
// worker, autoscaler loop, batcher and wire server a test starts must
// be stopped by that test, or the leaked stack fails the whole run.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
