package serving

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/embedding"
)

// capacityLimitedClient simulates a shard replica with a fixed service
// time and bounded internal parallelism: throughput saturates at
// parallelism/serviceTime and latency inflates beyond it — the knee the
// stress test is designed to find.
type capacityLimitedClient struct {
	sem         chan struct{}
	serviceTime time.Duration
}

func newCapacityLimitedClient(parallelism int, serviceTime time.Duration) *capacityLimitedClient {
	return &capacityLimitedClient{
		sem:         make(chan struct{}, parallelism),
		serviceTime: serviceTime,
	}
}

func (c *capacityLimitedClient) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	c.sem <- struct{}{}
	time.Sleep(c.serviceTime)
	<-c.sem
	reply.BatchSize = len(req.Offsets)
	reply.Dim = 1
	reply.Pooled = make([]float32, reply.BatchSize)
	return nil
}

func TestStressTestFindsCapacity(t *testing.T) {
	// 4-way parallel, 2 ms service time => ~2000 QPS capacity.
	client := newCapacityLimitedClient(4, 2*time.Millisecond)
	newReq := func() *GatherRequest {
		return &GatherRequest{Indices: []int64{0}, Offsets: []int32{0}}
	}
	res, err := StressTest(context.Background(), client, newReq, StressOptions{
		MaxConcurrency:   32,
		RequestsPerLevel: 64,
		KneeFactor:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 2 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	// QPSMax should land in the right ballpark (0.5x..1.5x capacity —
	// scheduling noise allowed).
	if res.QPSMax < 1000 || res.QPSMax > 3000 {
		t.Fatalf("QPSMax = %v, want ~2000", res.QPSMax)
	}
	// The ramp must detect the knee once concurrency far exceeds the
	// client's parallelism.
	if res.KneeConcurrency == 0 {
		t.Fatal("knee not detected")
	}
	if res.KneeConcurrency <= 4 {
		t.Fatalf("knee at concurrency %d, expected past the parallelism", res.KneeConcurrency)
	}
}

func TestStressTestOnRealShard(t *testing.T) {
	tab, err := embedding.NewRandomTable("t", 10_000, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := NewEmbeddingShard(0, 0, tab, 0, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64 // newReq is called from concurrent ramp workers
	newReq := func() *GatherRequest {
		v := n.Add(1)
		return &GatherRequest{Indices: []int64{v % 10_000, (v * 7) % 10_000}, Offsets: []int32{0}}
	}
	res, err := StressTest(context.Background(), shard, newReq, StressOptions{
		MaxConcurrency:   8,
		RequestsPerLevel: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QPSMax <= 0 {
		t.Fatalf("QPSMax = %v", res.QPSMax)
	}
	// Samples must ramp in powers of two from 1.
	if res.Samples[0].Concurrency != 1 {
		t.Fatal("ramp must start at concurrency 1")
	}
}

func TestStressTestValidation(t *testing.T) {
	if _, err := StressTest(context.Background(), nil, nil, StressOptions{}); err == nil {
		t.Fatal("want validation error")
	}
}

type failingClient struct{}

func (failingClient) Gather(context.Context, *GatherRequest, *GatherReply) error {
	return fmt.Errorf("injected failure")
}

func TestStressTestPropagatesErrors(t *testing.T) {
	newReq := func() *GatherRequest {
		return &GatherRequest{Indices: []int64{0}, Offsets: []int32{0}}
	}
	if _, err := StressTest(context.Background(), failingClient{}, newReq, StressOptions{}); err == nil {
		t.Fatal("want injected failure")
	}
}

// TestReplicaScalingIncreasesThroughput validates elasticity physically:
// stress-testing a pool with more replicas of a capacity-limited shard
// must sustain proportionally more QPS — the mechanism Figs. 4 and 7 rely
// on. The synthetic client makes capacity deterministic regardless of the
// host machine.
func TestReplicaScalingIncreasesThroughput(t *testing.T) {
	newReq := func() *GatherRequest {
		return &GatherRequest{Indices: []int64{0}, Offsets: []int32{0}}
	}
	measure := func(replicas int) float64 {
		pool := NewReplicaPool()
		defer pool.Close()
		for i := 0; i < replicas; i++ {
			pool.Add(newCapacityLimitedClient(1, 2*time.Millisecond))
		}
		res, err := StressTest(context.Background(), pool, newReq, StressOptions{
			MaxConcurrency:   16,
			RequestsPerLevel: 96,
			KneeFactor:       10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.QPSMax
	}
	one := measure(1)
	four := measure(4)
	if four < 2.2*one {
		t.Fatalf("4 replicas sustain %.0f QPS vs 1 replica's %.0f — scaling broken", four, one)
	}
}
