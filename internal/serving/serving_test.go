package serving

import (
	"context"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// bg is the no-deadline context the plumbing tests thread through the
// ctx-aware client interfaces.
var bg = context.Background()

// liveConfig returns a small but structurally complete DLRM for live
// serving tests.
func liveConfig() model.Config {
	return model.Config{
		Name:          "live",
		DenseInputDim: 8,
		BottomMLP:     []int{16, 8},
		TopMLP:        []int{16, 1},
		NumTables:     4,
		RowsPerTable:  500,
		EmbeddingDim:  8,
		Pooling:       6,
		LocalityP:     0.9,
		BatchSize:     3,
	}
}

// buildFixture instantiates the model, collects access statistics from
// random traffic, and returns (model, stats, a query generator).
func buildFixture(t *testing.T, cfg model.Config) (*model.Model, []*embedding.AccessStats, *workload.QueryGenerator) {
	t.Helper()
	m, err := model.New(cfg, 123)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.NewPowerLawSampler(cfg.RowsPerTable, cfg.LocalityP, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	mapping := workload.NewShuffledMapping(cfg.RowsPerTable, 5)
	gen, err := workload.NewQueryGenerator(s, mapping, cfg.BatchSize, cfg.Pooling, 99)
	if err != nil {
		t.Fatal(err)
	}
	var perTable [][]*embedding.Batch
	for tb := 0; tb < cfg.NumTables; tb++ {
		var batches []*embedding.Batch
		for q := 0; q < 50; q++ {
			batches = append(batches, gen.Next())
		}
		perTable = append(perTable, batches)
	}
	stats, err := CollectStats(cfg, perTable)
	if err != nil {
		t.Fatal(err)
	}
	return m, stats, gen
}

// makeRequest builds a random predict request in original-ID space.
func makeRequest(cfg model.Config, gen *workload.QueryGenerator, seed uint64) *PredictRequest {
	rng := workload.NewRNG(seed)
	req := &PredictRequest{
		BatchSize: cfg.BatchSize,
		DenseDim:  cfg.DenseInputDim,
		Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
	}
	for i := range req.Dense {
		req.Dense[i] = float32(rng.Float64()*2 - 1)
	}
	for tb := 0; tb < cfg.NumTables; tb++ {
		b := gen.Next()
		req.Tables = append(req.Tables, TableBatch{Indices: b.Indices, Offsets: b.Offsets})
	}
	return req
}

func TestPreprocessSortsByHotness(t *testing.T) {
	cfg := liveConfig()
	m, stats, _ := buildFixture(t, cfg)
	pre, err := Preprocess(m, stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre.Sorted) != cfg.NumTables {
		t.Fatalf("sorted tables = %d", len(pre.Sorted))
	}
	// Rank 0 must be the most-accessed original row of table 0.
	best := int64(0)
	for i, c := range stats[0].Counts {
		if c > stats[0].Counts[best] {
			best = int64(i)
		}
	}
	if got := pre.RankOf[0][best]; got != 0 {
		t.Fatalf("hottest row rank = %d, want 0", got)
	}
	// Sorted row 0 must hold the hottest original vector.
	want, _ := m.Tables[0].Vector(best)
	got, _ := pre.Sorted[0].Vector(0)
	if !tensor.AlmostEqual(want, got, 0) {
		t.Fatal("sorted table row 0 != hottest original row")
	}
}

func TestPreprocessValidation(t *testing.T) {
	cfg := liveConfig()
	m, stats, _ := buildFixture(t, cfg)
	if _, err := Preprocess(m, stats[:1]); err == nil {
		t.Fatal("want stats arity error")
	}
	badStats := make([]*embedding.AccessStats, cfg.NumTables)
	for i := range badStats {
		badStats[i] = embedding.NewAccessStats(10) // wrong row count
	}
	if _, err := Preprocess(m, badStats); err == nil {
		t.Fatal("want row-count mismatch error")
	}
}

func TestRemapBatchRoundTrip(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	pre, err := Preprocess(m, stats)
	if err != nil {
		t.Fatal(err)
	}
	b := gen.Next()
	rb, err := pre.RemapBatch(0, b)
	if err != nil {
		t.Fatal(err)
	}
	// The remapped gather over the sorted table equals the original
	// gather over the original table.
	want := make(tensor.Vector, cfg.EmbeddingDim)
	got := make(tensor.Vector, cfg.EmbeddingDim)
	if err := m.Tables[0].GatherPool(want, b.InputIndices(0)); err != nil {
		t.Fatal(err)
	}
	if err := pre.Sorted[0].GatherPool(got, rb.InputIndices(0)); err != nil {
		t.Fatal(err)
	}
	if !tensor.AlmostEqual(want, got, 1e-5) {
		t.Fatal("remapped gather differs from original")
	}
	if _, err := pre.RemapBatch(99, b); err == nil {
		t.Fatal("want table range error")
	}
	bad := &embedding.Batch{Indices: []int64{cfg.RowsPerTable + 5}, Offsets: []int32{0}}
	if _, err := pre.RemapBatch(0, bad); err == nil {
		t.Fatal("want index range error")
	}
}

// TestShardedEquivalence is the paper's core serving-correctness check:
// the microservice deployment must reproduce monolithic predictions.
func TestShardedEquivalence(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	mono := NewMonolith(m.Clone())
	boundaries := []int64{50, 200, cfg.RowsPerTable}
	ld, err := BuildElastic(m, stats, boundaries, BuildOptions{Transport: TransportLocal})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	for i := 0; i < 20; i++ {
		req := makeRequest(cfg, gen, uint64(i))
		var monoReply, shardReply PredictReply
		if err := mono.Predict(bg, req, &monoReply); err != nil {
			t.Fatal(err)
		}
		if err := ld.Predict(bg, req, &shardReply); err != nil {
			t.Fatal(err)
		}
		if len(monoReply.Probs) != cfg.BatchSize || len(shardReply.Probs) != cfg.BatchSize {
			t.Fatal("bad reply sizes")
		}
		for j := range monoReply.Probs {
			diff := math.Abs(float64(monoReply.Probs[j] - shardReply.Probs[j]))
			if diff > 1e-5 {
				t.Fatalf("query %d input %d: monolith %v vs sharded %v",
					i, j, monoReply.Probs[j], shardReply.Probs[j])
			}
		}
	}
}

func TestShardedEquivalenceOverTCP(t *testing.T) {
	cfg := liveConfig()
	cfg.NumTables = 2 // fewer sockets
	m, stats, gen := buildFixture(t, cfg)
	mono := NewMonolith(m.Clone())
	boundaries := []int64{50, cfg.RowsPerTable}
	ld, err := BuildElastic(m, stats, boundaries, BuildOptions{Transport: TransportTCP})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	for i := 0; i < 5; i++ {
		req := makeRequest(cfg, gen, uint64(i))
		var monoReply, shardReply PredictReply
		if err := mono.Predict(bg, req, &monoReply); err != nil {
			t.Fatal(err)
		}
		if err := ld.Predict(bg, req, &shardReply); err != nil {
			t.Fatal(err)
		}
		for j := range monoReply.Probs {
			if math.Abs(float64(monoReply.Probs[j]-shardReply.Probs[j])) > 1e-5 {
				t.Fatalf("TCP transport diverged at query %d input %d", i, j)
			}
		}
	}
}

func TestPredictPoolOverTCP(t *testing.T) {
	cfg := liveConfig()
	cfg.NumTables = 2
	m, _, gen := buildFixture(t, cfg)
	mono := NewMonolith(m.Clone())
	srv, err := NewRPCServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.RegisterPredict("Mono", mono); err != nil {
		t.Fatal(err)
	}
	client, err := DialPredict(srv.Addr(), "Mono")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	pool := NewPredictPool(client, mono) // mixed transports round-robin
	defer pool.Close()
	for i := 0; i < 4; i++ {
		req := makeRequest(cfg, gen, uint64(100+i))
		var reply PredictReply
		if err := pool.Predict(bg, req, &reply); err != nil {
			t.Fatal(err)
		}
		if len(reply.Probs) != cfg.BatchSize {
			t.Fatalf("probs = %v", reply.Probs)
		}
	}
	if pool.Size() != 2 {
		t.Fatal("pool size mismatch")
	}
}

func TestBuildElasticValidation(t *testing.T) {
	cfg := liveConfig()
	m, stats, _ := buildFixture(t, cfg)
	if _, err := BuildElastic(m, stats, nil, BuildOptions{}); err == nil {
		t.Fatal("want empty-boundaries error")
	}
	if _, err := BuildElastic(m, stats, []int64{100}, BuildOptions{}); err == nil {
		t.Fatal("want boundary-end error")
	}
	if _, err := BuildElastic(m, stats, []int64{cfg.RowsPerTable}, BuildOptions{Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("want transport error")
	}
}

func TestEmbeddingShardGather(t *testing.T) {
	tab, err := embedding.NewRandomTable("t", 100, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := NewEmbeddingShard(0, 1, tab, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if shard.Rows() != 50 || shard.ParamBytes() != 50*4*4 {
		t.Fatalf("shard geometry: rows=%d bytes=%d", shard.Rows(), shard.ParamBytes())
	}
	req := &GatherRequest{Indices: []int64{0, 5, 5}, Offsets: []int32{0, 1}}
	var reply GatherReply
	if err := shard.Gather(bg, req, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.BatchSize != 2 || reply.Dim != 4 {
		t.Fatalf("reply geometry: %+v", reply)
	}
	// Input 0 pooled row must equal table row 10 (shard-local 0).
	want, _ := tab.Vector(10)
	if !tensor.AlmostEqual(want, reply.Pooled[:4], 1e-6) {
		t.Fatal("pooled row mismatch")
	}
	// Utility counts distinct local rows: {0, 5}.
	if got := shard.Utility.TouchedRows(); got != 2 {
		t.Fatalf("touched = %d", got)
	}
	if shard.Latency.Count() != 1 {
		t.Fatal("latency sample missing")
	}
	// Out-of-shard index errors.
	bad := &GatherRequest{Indices: []int64{55}, Offsets: []int32{0}}
	if err := shard.Gather(bg, bad, &reply); err == nil {
		t.Fatal("want range error (local index beyond shard)")
	}
	malformed := &GatherRequest{Indices: []int64{1}, Offsets: []int32{1}}
	if err := shard.Gather(bg, malformed, &reply); err == nil {
		t.Fatal("want batch validation error")
	}
}

func TestReplicaPoolSharesLoadAndScaling(t *testing.T) {
	tab, _ := embedding.NewRandomTable("t", 10, 2, 1)
	s1, _ := NewEmbeddingShard(0, 0, tab, 0, 10)
	s2, _ := NewEmbeddingShard(0, 0, tab, 0, 10)
	pool := NewReplicaPool(s1, s2)
	defer pool.Close()
	req := &GatherRequest{Indices: []int64{1}, Offsets: []int32{0}}
	// Pull model: any idle worker may claim a gather, so distribution is
	// load-sharing rather than strict round robin — under enough
	// concurrent traffic both replicas must see work, and every call must
	// succeed.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var reply GatherReply
			if err := pool.Gather(bg, req, &reply); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s1.Latency.Count() == 0 || s2.Latency.Count() == 0 {
		t.Fatalf("distribution: %d/%d — a replica never pulled work", s1.Latency.Count(), s2.Latency.Count())
	}
	if got := s1.Latency.Count() + s2.Latency.Count(); got != 64 {
		t.Fatalf("served %d gathers, want 64", got)
	}
	// Remove keeps at least one replica.
	if pool.Remove() == nil {
		t.Fatal("remove should succeed with 2 replicas")
	}
	if pool.Remove() != nil {
		t.Fatal("remove must keep the last replica")
	}
	if pool.Size() != 1 {
		t.Fatalf("size = %d", pool.Size())
	}
	empty := NewReplicaPool()
	var reply GatherReply
	if err := empty.Gather(bg, req, &reply); err == nil {
		t.Fatal("want empty-pool error")
	}
	emptyPredict := NewPredictPool()
	if err := emptyPredict.Predict(bg, &PredictRequest{}, &PredictReply{}); err == nil {
		t.Fatal("want empty predict pool error")
	}
}

func TestLiveAutoscalerEvaluate(t *testing.T) {
	tab, _ := embedding.NewRandomTable("t", 10, 2, 1)
	base, _ := NewEmbeddingShard(0, 0, tab, 0, 10)
	pool := NewReplicaPool(base)
	defer pool.Close()
	spawned := 0
	sh := &AutoscaledShard{
		Name:   "s",
		Pool:   pool,
		QPSMax: 10,
		Spawn: func() (GatherClient, error) {
			spawned++
			s, err := NewEmbeddingShard(0, 0, tab, 0, 10)
			return s, err
		},
		MaxReplicas: 3,
	}
	offered := 25.0
	as := &LiveAutoscaler{
		Shards:     []*AutoscaledShard{sh},
		OfferedQPS: func(string) float64 { return offered },
	}
	// 25 QPS over 1 replica exceeds QPSMax: scale out.
	if got := as.Evaluate(sh); got != 2 {
		t.Fatalf("replicas = %d, want 2", got)
	}
	if got := as.Evaluate(sh); got != 3 {
		t.Fatalf("replicas = %d, want 3", got)
	}
	// MaxReplicas caps.
	if got := as.Evaluate(sh); got != 3 {
		t.Fatalf("replicas = %d, want capped 3", got)
	}
	if spawned != 2 {
		t.Fatalf("spawned = %d", spawned)
	}
	// Low traffic scales in (down to 1).
	offered = 1
	if got := as.Evaluate(sh); got != 2 {
		t.Fatalf("replicas = %d, want 2 after scale-in", got)
	}
	if got := as.Evaluate(sh); got != 1 {
		t.Fatalf("replicas = %d, want 1", got)
	}
	if got := as.Evaluate(sh); got != 1 {
		t.Fatalf("replicas = %d, must keep last replica", got)
	}
}

func TestLiveAutoscalerStartStop(t *testing.T) {
	as := &LiveAutoscaler{OfferedQPS: func(string) float64 { return 0 }}
	as.Start()
	as.Stop()
	as.Stop() // idempotent
}

func TestConcurrentPredict(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{100, cfg.RowsPerTable},
		BuildOptions{Transport: TransportLocal, Replicas: []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	reqs := make([]*PredictRequest, 8)
	for i := range reqs {
		reqs[i] = makeRequest(cfg, gen, uint64(i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(reqs)*4)
	for round := 0; round < 4; round++ {
		for _, req := range reqs {
			wg.Add(1)
			go func(r *PredictRequest) {
				defer wg.Done()
				var reply PredictReply
				if err := ld.Predict(bg, r, &reply); err != nil {
					errs <- err
				}
			}(req)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ld.Dense.QPS == nil || ld.Dense.Latency.Count() != 32 {
		t.Fatalf("dense latency samples = %d, want 32", ld.Dense.Latency.Count())
	}
}

func TestPredictRequestValidate(t *testing.T) {
	cfg := liveConfig()
	req := &PredictRequest{BatchSize: 0}
	if err := req.Validate(cfg.NumTables); err == nil {
		t.Fatal("want batch error")
	}
	req = &PredictRequest{BatchSize: 1, DenseDim: 2, Dense: []float32{1}}
	if err := req.Validate(cfg.NumTables); err == nil {
		t.Fatal("want dense payload error")
	}
	req = &PredictRequest{BatchSize: 1, DenseDim: 1, Dense: []float32{1}}
	if err := req.Validate(2); err == nil {
		t.Fatal("want table arity error")
	}
	req = &PredictRequest{
		BatchSize: 1, DenseDim: 1, Dense: []float32{1},
		Tables: []TableBatch{{Indices: []int64{1}, Offsets: []int32{0, 0}}},
	}
	if err := req.Validate(1); err == nil {
		t.Fatal("want table batch-size error")
	}
}

func TestShardUtilityTracking(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{50, cfg.RowsPerTable}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	for i := 0; i < 100; i++ {
		var reply PredictReply
		if err := ld.Predict(bg, makeRequest(cfg, gen, uint64(i)), &reply); err != nil {
			t.Fatal(err)
		}
	}
	hot := ld.ShardUtility(0, 0)
	cold := ld.ShardUtility(0, 1)
	if hot <= cold {
		t.Fatalf("hot shard utility %v <= cold %v — hotness sort broken", hot, cold)
	}
	if hot < 0.5 {
		t.Fatalf("hot shard utility %v unexpectedly low", hot)
	}
}

// Property: sharded and monolithic serving agree for random boundaries.
func TestShardedEquivalenceProperty(t *testing.T) {
	cfg := liveConfig()
	cfg.NumTables = 2
	cfg.RowsPerTable = 120
	m, stats, gen := buildFixture(t, cfg)
	mono := NewMonolith(m.Clone())
	f := func(seed uint64, cut1Raw, cut2Raw uint8) bool {
		c1 := int64(cut1Raw%118) + 1
		c2 := int64(cut2Raw%118) + 1
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		boundaries := []int64{c1, cfg.RowsPerTable}
		if c2 > c1 && c2 < cfg.RowsPerTable {
			boundaries = []int64{c1, c2, cfg.RowsPerTable}
		}
		ld, err := BuildElastic(m, stats, boundaries, BuildOptions{})
		if err != nil {
			return false
		}
		defer ld.Close()
		req := makeRequest(cfg, gen, seed)
		var a, b PredictReply
		if mono.Predict(bg, req, &a) != nil || ld.Predict(bg, req, &b) != nil {
			return false
		}
		for j := range a.Probs {
			if math.Abs(float64(a.Probs[j]-b.Probs[j])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the preprocessing remap preserves pooled gather results for
// arbitrary batches — sorting the table and remapping IDs is semantically
// invisible to the model.
func TestRemapPreservesGatherProperty(t *testing.T) {
	cfg := liveConfig()
	m, stats, _ := buildFixture(t, cfg)
	pre, err := Preprocess(m, stats)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, tRaw, nRaw uint8) bool {
		tbl := int(tRaw) % cfg.NumTables
		rng := workload.NewRNG(seed)
		n := int(nRaw%12) + 1
		b := &embedding.Batch{Offsets: []int32{0}}
		for i := 0; i < n; i++ {
			b.Indices = append(b.Indices, rng.Intn(cfg.RowsPerTable))
		}
		rb, err := pre.RemapBatch(tbl, b)
		if err != nil {
			return false
		}
		want := make(tensor.Vector, cfg.EmbeddingDim)
		got := make(tensor.Vector, cfg.EmbeddingDim)
		if m.Tables[tbl].GatherPool(want, b.InputIndices(0)) != nil {
			return false
		}
		if pre.Sorted[tbl].GatherPool(got, rb.InputIndices(0)) != nil {
			return false
		}
		return tensor.AlmostEqual(want, got, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
