// Package serving is the live microservice engine: real goroutine-backed
// model-shard services communicating over Go's net/rpc (loopback TCP) or a
// zero-copy in-process transport. It implements the paper's life-of-a-query
// path (Sec. IV-A): a dense DNN shard receives the query, bucketizes the
// sparse inputs, fans gather RPCs out to the embedding shards, merges the
// pooled partial sums, and finishes the forward pass. A monolithic server
// provides the model-wise baseline, and the equivalence tests assert that
// sharded serving reproduces monolithic predictions.
package serving

import (
	"context"
	"fmt"
	"time"

	"repro/internal/embedding"
)

// GatherRequest asks an embedding shard to gather-and-pool one batch. The
// indices are shard-local (already bucketized and rebased, Fig. 11c).
type GatherRequest struct {
	Table   int
	Shard   int
	Indices []int64
	Offsets []int32
	// Deadline carries the caller's context deadline across process
	// boundaries as unix nanoseconds (0 = none). The TCP transport stamps
	// it on the way out and reconstructs the context server-side, so a
	// frontend deadline bounds every downstream gather.
	Deadline int64
}

// GatherReply carries the pooled partial sums: BatchSize rows of Dim
// float32s, row-major.
type GatherReply struct {
	BatchSize int
	Dim       int
	Pooled    []float32
}

// TableBatch is one table's index/offset arrays within a predict request.
type TableBatch struct {
	Indices []int64
	Offsets []int32
}

// PredictRequest is a full inference query: the dense features for every
// input plus, per table, the sparse lookup batch. Index space depends on
// the receiving service: the monolith expects original table IDs; the
// ElasticRec dense shard expects original IDs too when its routing table
// carries a preprocessing remap (the remap is applied inside the epoch
// snapshot, so batching and plan swaps can never mix ID spaces), and
// hotness-sorted IDs when it does not.
type PredictRequest struct {
	// Model names the DLRM variant the request addresses. Empty routes to
	// the deployment's default model, so single-variant clients never set
	// it. The field rides the net/rpc wire format: a multi-model frontend
	// dispatches on it, and every model-aware service (dense shard,
	// batcher) rejects a mismatched request rather than serve it with the
	// wrong variant's parameters. Gathers carry no model field — a gather
	// fan-out happens strictly inside one pinned epoch of one model, so
	// the model is implied by the shard client the epoch hands out.
	Model     string
	BatchSize int
	DenseDim  int
	Dense     []float32 // BatchSize x DenseDim, row-major
	Tables    []TableBatch
	// Deadline mirrors GatherRequest.Deadline for the predict wire format.
	Deadline int64
}

// PredictReply carries one click probability per input.
type PredictReply struct {
	Probs []float32
}

// Validate checks the request's structural invariants against the model
// geometry.
func (r *PredictRequest) Validate(numTables int) error {
	if r.BatchSize <= 0 {
		return fmt.Errorf("serving: batch size must be positive, got %d", r.BatchSize)
	}
	if len(r.Dense) != r.BatchSize*r.DenseDim {
		return fmt.Errorf("serving: dense payload %d != %d x %d", len(r.Dense), r.BatchSize, r.DenseDim)
	}
	if len(r.Tables) != numTables {
		return fmt.Errorf("serving: %d table batches, want %d", len(r.Tables), numTables)
	}
	for t, tb := range r.Tables {
		b := embedding.Batch{Indices: tb.Indices, Offsets: tb.Offsets}
		if err := b.Validate(); err != nil {
			return fmt.Errorf("serving: table %d: %w", t, err)
		}
		if len(tb.Offsets) != r.BatchSize {
			return fmt.Errorf("serving: table %d batch size %d != %d", t, len(tb.Offsets), r.BatchSize)
		}
	}
	return nil
}

// GatherClient is anything that can service a gather call: a local shard,
// an RPC connection, or a load-balanced replica pool. Implementations
// honour ctx cancellation and deadlines: a canceled context aborts the
// call (locally, or unblocks the caller on the TCP transport).
type GatherClient interface {
	Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error
}

// PredictClient is anything that can service a predict call; ctx follows
// the GatherClient contract.
type PredictClient interface {
	Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error
}

// ctxDeadlineNanos converts a context deadline to the wire encoding
// (unix nanoseconds, 0 = none).
func ctxDeadlineNanos(ctx context.Context) int64 {
	if dl, ok := ctx.Deadline(); ok {
		return dl.UnixNano()
	}
	return 0
}

// deadlineContext reconstructs a context from the wire encoding. The
// returned cancel func must always be called.
func deadlineContext(nanos int64) (context.Context, context.CancelFunc) {
	if nanos > 0 {
		return context.WithDeadline(context.Background(), time.Unix(0, nanos))
	}
	return context.WithCancel(context.Background())
}
