// Package serving is the live microservice engine: real goroutine-backed
// model-shard services communicating over loopback TCP (a length-prefixed
// binary codec by default, net/rpc gob for legacy/admin traffic — see
// internal/serving/wire) or a zero-copy in-process transport. It
// implements the paper's life-of-a-query path (Sec. IV-A): a dense DNN
// shard receives the query, bucketizes the sparse inputs, fans gather
// RPCs out to the embedding shards, merges the pooled partial sums, and
// finishes the forward pass. A monolithic server provides the model-wise
// baseline, and the equivalence tests assert that sharded serving
// reproduces monolithic predictions.
package serving

import (
	"context"

	"repro/internal/serving/wire"
)

// The serving messages are defined in internal/serving/wire (the codec
// cannot depend on this package) and aliased here, so every call site —
// and the gob transport, which encodes concrete struct shapes, not
// package paths — is untouched by the move.
type (
	// GatherRequest asks an embedding shard to gather-and-pool one batch
	// (see wire.GatherRequest).
	GatherRequest = wire.GatherRequest
	// GatherReply carries the pooled partial sums (see wire.GatherReply).
	GatherReply = wire.GatherReply
	// TableBatch is one table's index/offset arrays within a predict
	// request (see wire.TableBatch).
	TableBatch = wire.TableBatch
	// PredictRequest is a full inference query (see wire.PredictRequest).
	PredictRequest = wire.PredictRequest
	// PredictReply carries one click probability per input (see
	// wire.PredictReply).
	PredictReply = wire.PredictReply
)

// GatherClient is anything that can service a gather call: a local shard,
// an RPC connection, or a load-balanced replica pool. Implementations
// honour ctx cancellation and deadlines: a canceled context aborts the
// call (locally, or unblocks the caller on the TCP transport).
type GatherClient interface {
	Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error
}

// PredictClient is anything that can service a predict call; ctx follows
// the GatherClient contract.
type PredictClient interface {
	Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error
}

// ctxDeadlineNanos converts a context deadline to the wire encoding
// (unix nanoseconds, 0 = none).
func ctxDeadlineNanos(ctx context.Context) int64 { return wire.CtxDeadlineNanos(ctx) }

// deadlineContext reconstructs a context from the wire encoding. The
// returned cancel func must always be called.
func deadlineContext(nanos int64) (context.Context, context.CancelFunc) {
	return wire.DeadlineContext(nanos)
}
