package wire

import (
	"math"
	"testing"
)

// TestF16RoundTripExhaustive proves the property the fuzz oracle relies
// on: widening any binary16 pattern to float32 and narrowing it back is
// the identity over all 65536 patterns — NaN payloads, subnormals, inf
// and signed zeros included.
func TestF16RoundTripExhaustive(t *testing.T) {
	for i := 0; i <= 0xffff; i++ {
		h := uint16(i)
		if got := f32ToF16(f16ToF32(h)); got != h {
			t.Fatalf("round trip %#04x -> %v -> %#04x", h, f16ToF32(h), got)
		}
	}
}

// TestF32ToF16Narrowing spot-checks the narrowing conversion's rounding
// and edge behavior.
func TestF32ToF16Narrowing(t *testing.T) {
	cases := []struct {
		in   float32
		want uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-2, 0xc000},
		{65504, 0x7bff},                 // largest finite f16
		{65520, 0x7c00},                 // rounds up past the max -> +inf
		{100000, 0x7c00},                // overflow -> +inf
		{-100000, 0xfc00},               // overflow -> -inf
		{float32(math.Inf(1)), 0x7c00},  // +inf
		{float32(math.Inf(-1)), 0xfc00}, // -inf
		{6.103515625e-05, 0x0400},       // smallest normal
		{5.960464477539063e-08, 0x0001}, // smallest subnormal
		{1e-10, 0x0000},                 // underflow past subnormals
		{1.0009765625, 0x3c01},          // 1 + 1ulp
		{1.00048828125, 0x3c00},         // halfway 1 + 0.5ulp -> even (down)
		{1.001464843750, 0x3c02},        // halfway 1 + 1.5ulp -> even (up)
	}
	for _, c := range cases {
		if got := f32ToF16(c.in); got != c.want {
			t.Errorf("f32ToF16(%v) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
	if got := f32ToF16(float32(math.NaN())); got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
		t.Errorf("f32ToF16(NaN) = %#04x, not a NaN pattern", got)
	}
}
