package wire

import "sync"

// This file is the shared buffer-recycling layer for the serving plane.
// Encoders, decoders and the shard services all draw their scratch from
// these pools, so on the in-process transport one float32 backing array
// cycles shard → dense merge → pool → shard, and on the binary transport
// the decoded reply buffers recycle the same way client-side while the
// server recycles decoded request slices after the reply is written.
// Contents of a freshly acquired slice are unspecified — every writer
// must overwrite its slice before reading it.

// slicePool recycles slices of one element type. Get returns a slice of
// exactly n elements, reusing pooled backing storage when it is large
// enough (too-small pooled slices are dropped, so buffers grow toward the
// workload's working-set size instead of being reallocated every call).
type slicePool[T any] struct{ p sync.Pool }

func (sp *slicePool[T]) get(n int) []T {
	if v := sp.p.Get(); v != nil {
		if s := *(v.(*[]T)); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]T, n)
}

func (sp *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	sp.p.Put(&s)
}

var (
	float32Pool slicePool[float32]
	int64Pool   slicePool[int64]
	int32Pool   slicePool[int32]
	bytePool    slicePool[byte]
	tablePool   slicePool[TableBatch]
)

// GetFloat32 returns a float32 slice of length n from the shared pool.
func GetFloat32(n int) []float32 { return float32Pool.get(n) }

// PutFloat32 recycles a slice obtained from GetFloat32 (or any float32
// buffer the caller is done with). Safe to call with nil.
func PutFloat32(s []float32) { float32Pool.put(s) }

// GetInt64 returns an int64 slice of length n from the shared pool.
func GetInt64(n int) []int64 { return int64Pool.get(n) }

// PutInt64 recycles a slice obtained from GetInt64. Safe to call with nil.
func PutInt64(s []int64) { int64Pool.put(s) }

// GetInt32 returns an int32 slice of length n from the shared pool.
func GetInt32(n int) []int32 { return int32Pool.get(n) }

// PutInt32 recycles a slice obtained from GetInt32. Safe to call with nil.
func PutInt32(s []int32) { int32Pool.put(s) }

// GetBuf returns an empty byte buffer with capacity at least n, for
// append-style frame encoding.
func GetBuf(n int) []byte { return bytePool.get(n)[:0] }

// PutBuf recycles a buffer obtained from GetBuf. Safe to call with nil.
func PutBuf(b []byte) { bytePool.put(b) }

// FreeGatherRequest recycles a *decoded* gather request's pooled slices
// (server-side, after the reply has been encoded). Never call it on a
// caller-owned request.
func FreeGatherRequest(req *GatherRequest) {
	PutInt64(req.Indices)
	PutInt32(req.Offsets)
	req.Indices, req.Offsets = nil, nil
}

// FreeGatherReply recycles a gather reply's pooled row buffer.
func FreeGatherReply(rep *GatherReply) {
	PutFloat32(rep.Pooled)
	rep.Pooled = nil
}

// FreePredictRequest recycles a *decoded* predict request's pooled slices
// (server-side, after the synchronous Predict call returned — the dense
// shard and the batcher both copy what they keep, so nothing downstream
// retains these arrays).
func FreePredictRequest(req *PredictRequest) {
	PutFloat32(req.Dense)
	req.Dense = nil
	for i := range req.Tables {
		PutInt64(req.Tables[i].Indices)
		PutInt32(req.Tables[i].Offsets)
		req.Tables[i] = TableBatch{}
	}
	tablePool.put(req.Tables)
	req.Tables = nil
}
