package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// This file is the server half of the framed transport. The serving
// package's RPCServer sniffs each accepted connection's first four bytes:
// the Magic prefix routes here, anything else replays into net/rpc's gob
// codec — which is how binary, gob and admin clients coexist on one
// listener. ServeConn finishes the preamble (version, kind, service
// name), resolves the endpoint, acks, and then serves frames: requests
// are decoded serially on the connection's reader (into pooled slices),
// handled on one goroutine each (so a slow gather never blocks the
// pipeline behind it), and replies are written under a per-connection
// write lock with frame buffers recycled after every write.

// Endpoint is one resolvable service: exactly one of Gather/Predict is
// set, matching the preamble kind. Quant selects the int8-quantized
// gather-reply encoding for this service; FP16 the half-precision one
// (at most one of the two). Rows, when non-nil, is the zero-copy fast
// path for rows-mode gathers: the service encodes rows straight into the
// reply frame, skipping the intermediate GatherReply materialization.
type Endpoint struct {
	Gather  GatherService
	Predict PredictService
	Rows    RowSource
	Quant   bool
	FP16    bool
}

// encoding returns the gather-row wire encoding this endpoint serves.
func (ep *Endpoint) encoding() byte {
	switch {
	case ep.Quant:
		return EncInt8
	case ep.FP16:
		return EncFloat16
	default:
		return EncFloat32
	}
}

// Resolver maps a preamble's (kind, service name) to an endpoint; an
// error refuses the connection in the ack.
type Resolver func(kind byte, name string) (Endpoint, error)

// ServeConn serves one sniffed binary connection whose Magic prefix has
// already been consumed. It blocks until the client hangs up or a
// transport error occurs, and does not close conn — the caller owns it.
func ServeConn(conn net.Conn, resolve Resolver) {
	ep, err := handshake(conn, resolve)
	if err != nil {
		return
	}
	serveFrames(conn, ep)
}

// handshake finishes the preamble and writes the ack.
func handshake(conn net.Conn, resolve Resolver) (Endpoint, error) {
	var hdr [4]byte // version, kind, u16 nameLen
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return Endpoint{}, err
	}
	nameLen := int(le.Uint16(hdr[2:]))
	if nameLen > MaxName {
		err := fmt.Errorf("wire: service name length %d exceeds %d", nameLen, MaxName)
		_ = writeAck(conn, err)
		return Endpoint{}, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(conn, name); err != nil {
		return Endpoint{}, err
	}
	if hdr[0] != Version {
		err := fmt.Errorf("wire: protocol version %d not supported (server speaks v%d)", hdr[0], Version)
		_ = writeAck(conn, err)
		return Endpoint{}, err
	}
	ep, err := resolve(hdr[1], string(name))
	if err := writeAck(conn, err); err != nil {
		return Endpoint{}, err
	}
	return ep, err
}

// writeAck sends the handshake verdict (status 0 accepts; otherwise the
// error text rides along) and returns any transport error.
func writeAck(conn net.Conn, verdict error) error {
	var msg string
	status := byte(0)
	if verdict != nil {
		status = 1
		msg = verdict.Error()
	}
	ack := make([]byte, 0, 3+len(msg))
	ack = append(ack, status)
	ack = le.AppendUint16(ack, uint16(len(msg)))
	ack = append(ack, msg...)
	if _, err := conn.Write(ack); err != nil {
		return err
	}
	return verdict
}

// serveFrames is the per-connection request loop.
func serveFrames(conn net.Conn, ep Endpoint) {
	var wmu sync.Mutex // serializes reply writes from handler goroutines
	var wg sync.WaitGroup
	defer wg.Wait()
	r := bufio.NewReader(conn)
	var hdr [4]byte
	var body []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		if n < 8 || n > MaxFrame {
			return
		}
		if cap(body) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			return
		}
		id := binary.LittleEndian.Uint64(body)
		payload := body[8:]
		// Decode on the reader (the frame buffer is reused by the next
		// iteration; decoded messages own pooled copies), handle on a
		// fresh goroutine so completions pipeline out of order.
		switch {
		case ep.Gather != nil:
			var req GatherRequest
			if err := DecodeGatherRequest(payload, &req); err != nil {
				writeErrorReply(conn, &wmu, id, err)
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				handleGather(conn, &wmu, ep, id, &req)
			}()
		case ep.Predict != nil:
			var req PredictRequest
			if err := DecodePredictRequest(payload, &req); err != nil {
				writeErrorReply(conn, &wmu, id, err)
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				handlePredict(conn, &wmu, ep, id, &req)
			}()
		default:
			return // unreachable: the resolver vets the endpoint
		}
	}
}

// handleGather services one gather frame end to end, recycling the
// decoded request and the reply's pooled rows once the reply is on the
// wire (the shard's Gather is synchronous, so nothing retains them).
func handleGather(conn net.Conn, wmu *sync.Mutex, ep Endpoint, id uint64, req *GatherRequest) {
	ctx, cancel := DeadlineContext(req.Deadline)
	if ep.Rows != nil && len(req.Offsets) == 0 {
		// Zero-copy rows mode: the service encodes rows straight from its
		// storage into the reply frame — no intermediate float32 copy.
		b := GetBuf(64 + len(req.Indices)*256) // capacity hint: dim-64 f32 rows
		b = beginReply(b, id)
		b, err := ep.Rows.AppendGatherRows(ctx, req, b, ep.encoding())
		cancel()
		FreeGatherRequest(req)
		if err != nil {
			PutBuf(b)
			writeErrorReply(conn, wmu, id, err)
			return
		}
		finishReply(conn, wmu, b)
		return
	}
	var reply GatherReply
	err := ep.Gather.Gather(ctx, req, &reply)
	cancel()
	FreeGatherRequest(req)
	if err != nil {
		writeErrorReply(conn, wmu, id, err)
		return
	}
	b := GetBuf(64 + 4*len(reply.Pooled))
	b = beginReply(b, id)
	b = AppendGatherReplyEnc(b, &reply, ep.encoding())
	FreeGatherReply(&reply)
	finishReply(conn, wmu, b)
}

// handlePredict services one predict frame end to end (see handleGather).
func handlePredict(conn net.Conn, wmu *sync.Mutex, ep Endpoint, id uint64, req *PredictRequest) {
	ctx, cancel := DeadlineContext(req.Deadline)
	var reply PredictReply
	err := ep.Predict.Predict(ctx, req, &reply)
	cancel()
	FreePredictRequest(req)
	if err != nil {
		writeErrorReply(conn, wmu, id, err)
		return
	}
	b := GetBuf(64 + 4*len(reply.Probs))
	b = beginReply(b, id)
	b = AppendPredictReply(b, &reply)
	finishReply(conn, wmu, b)
}

// beginReply opens an OK reply frame (length patched by finishReply).
func beginReply(b []byte, id uint64) []byte {
	b = append(b, 0, 0, 0, 0)
	b = appendU64(b, id)
	return append(b, 0) // status OK
}

// finishReply patches the frame length, writes under the connection's
// write lock and recycles the frame buffer. Write errors are dropped: the
// reader side of a dead connection tears the loop down.
func finishReply(conn net.Conn, wmu *sync.Mutex, b []byte) {
	le.PutUint32(b, uint32(len(b)-4))
	wmu.Lock()
	_, _ = conn.Write(b)
	wmu.Unlock()
	PutBuf(b)
}

// writeErrorReply sends a status-1 frame carrying err's text.
func writeErrorReply(conn net.Conn, wmu *sync.Mutex, id uint64, err error) {
	if err == nil {
		err = errors.New("wire: unknown error")
	}
	msg := err.Error()
	b := GetBuf(16 + len(msg))
	b = append(b, 0, 0, 0, 0)
	b = appendU64(b, id)
	b = append(b, 1) // status: service error
	b = append(b, msg...)
	finishReply(conn, wmu, b)
}
