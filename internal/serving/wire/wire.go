// Package wire is the serving plane's binary wire protocol: a
// length-prefixed, little-endian codec for the four predict/gather
// messages (raw []float32/[]int64/[]int32 payloads, no reflection) plus
// the framed-TCP transport that carries it — a magic/version preamble
// negotiated at dial time, pipelined request IDs with out-of-order
// completion on sticky connections, per-connection pooled buffers, and an
// optional int8-quantized encoding of gather rows. It replaces net/rpc's
// gob encoding on the hot path; package serving keeps gob alongside it on
// the same listener (connections are sniffed by the magic bytes), so
// admin traffic and legacy clients interoperate with binary ones.
package wire

import (
	"context"
	"fmt"
	"time"

	"repro/internal/embedding"
)

// Magic opens every binary-protocol connection. The first byte can never
// begin a net/rpc gob stream (gob's length prefixes are either < 0x80 or
// a byte-count marker ≥ 0xf8), so a server can sniff the first four bytes
// of an accepted connection and route it to the right codec.
var Magic = [4]byte{0xf5, 'E', 'R', 'W'}

// Version is the protocol generation carried in the preamble; servers
// reject a mismatch instead of misinterpreting frames.
const Version = 1

// Connection kinds named in the preamble.
const (
	// KindGather connects to a gather service.
	KindGather byte = 1
	// KindPredict connects to a predict service.
	KindPredict byte = 2
)

// GatherReply payload encodings (the reply is self-describing, so clients
// need no negotiation state).
const (
	// EncFloat32 is the exact encoding: BatchSize*Dim raw float32s.
	EncFloat32 byte = 0
	// EncInt8 is the quantized encoding: per row, one float32 scale
	// followed by Dim int8s (value = scale * int8). Lossy; enabled per
	// service via BuildOptions.WireQuant.
	EncInt8 byte = 1
	// EncFloat16 is the half-precision encoding: BatchSize*Dim IEEE 754
	// binary16 values (round-to-nearest-even on encode, exact widening on
	// decode; decoders always materialize float32). Lossy; enabled per
	// service via BuildOptions.WireFP16.
	EncFloat16 byte = 2
)

// MaxFrame bounds a frame body. A decoder rejects anything larger before
// allocating, so a malformed or hostile length prefix cannot force an
// oversized allocation.
const MaxFrame = 64 << 20

// MaxName bounds the service name in the preamble.
const MaxName = 256

// GatherRequest asks an embedding shard to gather-and-pool one batch. The
// indices are shard-local (already bucketized and rebased, Fig. 11c).
//
// An empty Offsets slice selects rows mode (gather path v2): the shard
// returns one raw row per index instead of pooled-per-input sums, and the
// reply's BatchSize equals len(Indices). The encoding is unchanged — a
// zero offset count is already canonical — so rows mode needs no version
// bump and rides every transport.
type GatherRequest struct {
	Table   int
	Shard   int
	Indices []int64
	Offsets []int32
	// Deadline carries the caller's context deadline across process
	// boundaries as unix nanoseconds (0 = none). The TCP transport stamps
	// it on the way out and reconstructs the context server-side, so a
	// frontend deadline bounds every downstream gather.
	Deadline int64
}

// GatherReply carries the pooled partial sums: BatchSize rows of Dim
// float32s, row-major. On the binary transport the row payload may ride
// int8-quantized (EncInt8); the decoder always materializes float32s, so
// consumers never see the wire encoding.
type GatherReply struct {
	BatchSize int
	Dim       int
	Pooled    []float32
}

// TableBatch is one table's index/offset arrays within a predict request.
type TableBatch struct {
	Indices []int64
	Offsets []int32
}

// PredictRequest is a full inference query: the dense features for every
// input plus, per table, the sparse lookup batch. Index space depends on
// the receiving service: the monolith expects original table IDs; the
// ElasticRec dense shard expects original IDs too when its routing table
// carries a preprocessing remap (the remap is applied inside the epoch
// snapshot, so batching and plan swaps can never mix ID spaces), and
// hotness-sorted IDs when it does not.
type PredictRequest struct {
	// Model names the DLRM variant the request addresses. Empty routes to
	// the deployment's default model, so single-variant clients never set
	// it. The field rides the wire: a multi-model frontend dispatches on
	// it, and every model-aware service (dense shard, batcher) rejects a
	// mismatched request rather than serve it with the wrong variant's
	// parameters. Gathers carry no model field — a gather fan-out happens
	// strictly inside one pinned epoch of one model, so the model is
	// implied by the shard client the epoch hands out.
	Model     string
	BatchSize int
	DenseDim  int
	Dense     []float32 // BatchSize x DenseDim, row-major
	Tables    []TableBatch
	// Deadline mirrors GatherRequest.Deadline for the predict wire format.
	Deadline int64
}

// PredictReply carries one click probability per input.
type PredictReply struct {
	Probs []float32
}

// Validate checks the request's structural invariants against the model
// geometry.
func (r *PredictRequest) Validate(numTables int) error {
	if r.BatchSize <= 0 {
		return fmt.Errorf("serving: batch size must be positive, got %d", r.BatchSize)
	}
	if len(r.Dense) != r.BatchSize*r.DenseDim {
		return fmt.Errorf("serving: dense payload %d != %d x %d", len(r.Dense), r.BatchSize, r.DenseDim)
	}
	if len(r.Tables) != numTables {
		return fmt.Errorf("serving: %d table batches, want %d", len(r.Tables), numTables)
	}
	for t, tb := range r.Tables {
		b := embedding.Batch{Indices: tb.Indices, Offsets: tb.Offsets}
		if err := b.Validate(); err != nil {
			return fmt.Errorf("serving: table %d: %w", t, err)
		}
		if len(tb.Offsets) != r.BatchSize {
			return fmt.Errorf("serving: table %d batch size %d != %d", t, len(tb.Offsets), r.BatchSize)
		}
	}
	return nil
}

// GatherService is the server-side gather endpoint the transport invokes.
type GatherService interface {
	Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error
}

// PredictService is the server-side predict endpoint the transport
// invokes.
type PredictService interface {
	Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error
}

// RowSource is the optional zero-copy fast path for rows-mode gathers
// (len(req.Offsets) == 0): the service encodes one row per index straight
// from its storage onto frame — an open reply frame positioned at the
// payload — using enc (EncFloat32, EncInt8 or EncFloat16), and returns
// the extended buffer. The transport skips the intermediate GatherReply
// materialization (and its float32 copy) entirely. Implementations must
// validate indices and honor ctx exactly as their Gather method does;
// on error the returned buffer is discarded and an error reply is sent.
type RowSource interface {
	AppendGatherRows(ctx context.Context, req *GatherRequest, frame []byte, enc byte) ([]byte, error)
}

// CtxDeadlineNanos converts a context deadline to the wire encoding
// (unix nanoseconds, 0 = none).
func CtxDeadlineNanos(ctx context.Context) int64 {
	if dl, ok := ctx.Deadline(); ok {
		return dl.UnixNano()
	}
	return 0
}

// DeadlineContext reconstructs a context from the wire encoding. The
// returned cancel func must always be called.
func DeadlineContext(nanos int64) (context.Context, context.CancelFunc) {
	if nanos > 0 {
		//lint:escape ctxflow the server-side root IS the wire deadline; the caller's context lives in another process
		return context.WithDeadline(context.Background(), time.Unix(0, nanos))
	}
	//lint:escape ctxflow no deadline on the wire means an unbounded server-side root, canceled when the conn drops
	return context.WithCancel(context.Background())
}
