package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file is the codec proper: append-style encoders and pooled
// decoders for the four serving messages. Everything is little-endian
// with fixed headers followed by raw element arrays — no reflection, no
// per-field tags — so encode/decode cost is a handful of bounds checks
// plus bulk 4/8-byte loads and stores. Decoders validate every count
// against the bytes actually present before allocating, so a malformed
// frame errors without over-allocating; decoded slices are drawn from the
// shared pools (pool.go) and handed to the caller, who recycles them via
// the Free helpers once merged.
//
// Payload layouts (after the transport's frame header):
//
//	GatherRequest  = u32 table | u32 shard | u64 deadline |
//	                 u32 nIdx | u32 nOff | nIdx × u64 | nOff × u32
//	GatherReply    = u32 batchSize | u32 dim | u8 enc | rows
//	                 enc 0: batchSize*dim × f32 (row-major)
//	                 enc 1: per row, f32 scale | dim × i8
//	                 enc 2: batchSize*dim × f16 (row-major)
//	PredictRequest = u16 modelLen | model | u32 batchSize | u32 denseDim |
//	                 u64 deadline | u32 nDense | u32 nTables |
//	                 nDense × f32 | per table (u32 nIdx | u32 nOff |
//	                 nIdx × u64 | nOff × u32)
//	PredictReply   = u32 n | n × f32

// errShort reports a frame that ended before its declared contents.
var errShort = errors.New("wire: truncated frame")

var le = binary.LittleEndian

// reader is a bounds-checked cursor over one frame body.
type reader struct {
	data []byte
	off  int
}

func (r *reader) rem() int { return len(r.data) - r.off }

func (r *reader) u8() (byte, error) {
	if r.rem() < 1 {
		return 0, errShort
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (int, error) {
	if r.rem() < 2 {
		return 0, errShort
	}
	v := le.Uint16(r.data[r.off:])
	r.off += 2
	return int(v), nil
}

func (r *reader) u32() (int, error) {
	if r.rem() < 4 {
		return 0, errShort
	}
	v := le.Uint32(r.data[r.off:])
	r.off += 4
	return int(v), nil
}

func (r *reader) u64() (uint64, error) {
	if r.rem() < 8 {
		return 0, errShort
	}
	v := le.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

// count reads a u32 element count and verifies the frame still holds at
// least n*size bytes before the caller allocates for it. size ≥ 1, so n
// is bounded by the frame length and n*size cannot overflow.
func (r *reader) count(size int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if n > r.rem() || n*size > r.rem() {
		return 0, errShort
	}
	return n, nil
}

// bytes consumes n raw bytes (caller has already validated n).
func (r *reader) bytes(n int) []byte {
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func appendU32(b []byte, v int) []byte     { return le.AppendUint32(b, uint32(v)) }
func appendU64(b []byte, v uint64) []byte  { return le.AppendUint64(b, v) }
func appendF32(b []byte, v float32) []byte { return le.AppendUint32(b, math.Float32bits(v)) }

func appendFloat32s(b []byte, src []float32) []byte {
	for _, v := range src {
		b = le.AppendUint32(b, math.Float32bits(v))
	}
	return b
}

func appendInt64s(b []byte, src []int64) []byte {
	for _, v := range src {
		b = le.AppendUint64(b, uint64(v))
	}
	return b
}

func appendInt32s(b []byte, src []int32) []byte {
	for _, v := range src {
		b = le.AppendUint32(b, uint32(v))
	}
	return b
}

func decodeFloat32s(data []byte, dst []float32) {
	for i := range dst {
		dst[i] = math.Float32frombits(le.Uint32(data[4*i:]))
	}
}

func decodeInt64s(data []byte, dst []int64) {
	for i := range dst {
		dst[i] = int64(le.Uint64(data[8*i:]))
	}
}

func decodeInt32s(data []byte, dst []int32) {
	for i := range dst {
		dst[i] = int32(le.Uint32(data[4*i:]))
	}
}

// AppendGatherRequest encodes req onto b and returns the extended buffer.
func AppendGatherRequest(b []byte, req *GatherRequest) []byte {
	b = appendU32(b, req.Table)
	b = appendU32(b, req.Shard)
	b = appendU64(b, uint64(req.Deadline))
	b = appendU32(b, len(req.Indices))
	b = appendU32(b, len(req.Offsets))
	b = appendInt64s(b, req.Indices)
	b = appendInt32s(b, req.Offsets)
	return b
}

// DecodeGatherRequest decodes a gather request, drawing the index and
// offset slices from the shared pools (recycle with FreeGatherRequest).
func DecodeGatherRequest(data []byte, req *GatherRequest) error {
	r := reader{data: data}
	var err error
	if req.Table, err = r.u32(); err != nil {
		return err
	}
	if req.Shard, err = r.u32(); err != nil {
		return err
	}
	dl, err := r.u64()
	if err != nil {
		return err
	}
	req.Deadline = int64(dl)
	nIdx, err := r.count(8)
	if err != nil {
		return err
	}
	// The offset count is declared before the index payload, so validate
	// it against the bytes remaining after the indices.
	nOff, err := r.u32()
	if err != nil {
		return err
	}
	if nIdx*8+nOff*4 != r.rem() || nOff > r.rem() {
		return errShort
	}
	req.Indices = GetInt64(nIdx)
	decodeInt64s(r.bytes(nIdx*8), req.Indices)
	req.Offsets = GetInt32(nOff)
	decodeInt32s(r.bytes(nOff*4), req.Offsets)
	return nil
}

// AppendGatherReply encodes rep onto b. With quant set the rows ride
// int8-quantized (one float32 scale per row, value = scale * int8): 4x
// smaller for dim 32, at ≤ 1/254 of each row's max-magnitude error. The
// reply is self-describing (the encoding byte), so decoders need no
// negotiation state.
func AppendGatherReply(b []byte, rep *GatherReply, quant bool) []byte {
	enc := EncFloat32
	if quant {
		enc = EncInt8
	}
	return AppendGatherReplyEnc(b, rep, enc)
}

// AppendGatherReplyEnc encodes rep onto b with an explicit row encoding
// (EncFloat32, EncInt8 or EncFloat16).
func AppendGatherReplyEnc(b []byte, rep *GatherReply, enc byte) []byte {
	b = AppendGatherReplyHeader(b, rep.BatchSize, rep.Dim, enc)
	if enc == EncFloat32 {
		return appendFloat32s(b, rep.Pooled)
	}
	dim := rep.Dim
	for row := 0; row+dim <= len(rep.Pooled); row += dim {
		b = AppendGatherRow(b, rep.Pooled[row:row+dim], enc)
	}
	return b
}

// AppendGatherReplyHeader opens a gather-reply payload: the fixed header
// before any rows. Zero-copy servers (RowSource) call this once, then
// AppendGatherRow per row, encoding straight from storage into the frame.
func AppendGatherReplyHeader(b []byte, batchSize, dim int, enc byte) []byte {
	b = appendU32(b, batchSize)
	b = appendU32(b, dim)
	return append(b, enc)
}

// AppendGatherRow encodes one row after an AppendGatherReplyHeader.
func AppendGatherRow(b []byte, row []float32, enc byte) []byte {
	switch enc {
	case EncFloat32:
		return appendFloat32s(b, row)
	case EncFloat16:
		for _, v := range row {
			b = binary.LittleEndian.AppendUint16(b, f32ToF16(v))
		}
		return b
	default: // EncInt8
		var maxAbs float32
		for _, v := range row {
			if a := float32(math.Abs(float64(v))); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		b = appendF32(b, scale)
		if scale == 0 {
			for range row {
				b = append(b, 0)
			}
			return b
		}
		inv := 1 / scale
		for _, v := range row {
			q := int32(math.Round(float64(v) * float64(inv)))
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			b = append(b, byte(int8(q)))
		}
		return b
	}
}

// DecodeGatherReply decodes a gather reply, materializing float32 rows
// from either encoding into a pooled buffer (recycle with
// FreeGatherReply or PutFloat32 after merging).
func DecodeGatherReply(data []byte, rep *GatherReply) error {
	r := reader{data: data}
	var err error
	if rep.BatchSize, err = r.u32(); err != nil {
		return err
	}
	if rep.Dim, err = r.u32(); err != nil {
		return err
	}
	enc, err := r.u8()
	if err != nil {
		return err
	}
	bs, dim := rep.BatchSize, rep.Dim
	if bs > r.rem() || dim > r.rem() {
		return errShort
	}
	switch enc {
	case EncFloat32:
		if bs*dim*4 != r.rem() {
			return errShort
		}
		rep.Pooled = GetFloat32(bs * dim)
		decodeFloat32s(r.bytes(bs*dim*4), rep.Pooled)
	case EncInt8:
		if bs*(dim+4) != r.rem() {
			return errShort
		}
		rep.Pooled = GetFloat32(bs * dim)
		for row := 0; row < bs; row++ {
			scale := math.Float32frombits(le.Uint32(r.bytes(4)))
			q := r.bytes(dim)
			dst := rep.Pooled[row*dim : (row+1)*dim]
			for i := range dst {
				dst[i] = scale * float32(int8(q[i]))
			}
		}
	case EncFloat16:
		if bs*dim*2 != r.rem() {
			return errShort
		}
		rep.Pooled = GetFloat32(bs * dim)
		raw := r.bytes(bs * dim * 2)
		for i := range rep.Pooled {
			rep.Pooled[i] = f16ToF32(le.Uint16(raw[2*i:]))
		}
	default:
		return fmt.Errorf("wire: unknown gather-reply encoding %d", enc)
	}
	return nil
}

// AppendPredictRequest encodes req onto b.
func AppendPredictRequest(b []byte, req *PredictRequest) []byte {
	b = le.AppendUint16(b, uint16(len(req.Model)))
	b = append(b, req.Model...)
	b = appendU32(b, req.BatchSize)
	b = appendU32(b, req.DenseDim)
	b = appendU64(b, uint64(req.Deadline))
	b = appendU32(b, len(req.Dense))
	b = appendU32(b, len(req.Tables))
	b = appendFloat32s(b, req.Dense)
	for i := range req.Tables {
		tb := &req.Tables[i]
		b = appendU32(b, len(tb.Indices))
		b = appendU32(b, len(tb.Offsets))
		b = appendInt64s(b, tb.Indices)
		b = appendInt32s(b, tb.Offsets)
	}
	return b
}

// DecodePredictRequest decodes a predict request, drawing every array
// from the shared pools (recycle with FreePredictRequest).
func DecodePredictRequest(data []byte, req *PredictRequest) error {
	r := reader{data: data}
	nameLen, err := r.u16()
	if err != nil {
		return err
	}
	if nameLen > r.rem() {
		return errShort
	}
	req.Model = string(r.bytes(nameLen))
	if req.BatchSize, err = r.u32(); err != nil {
		return err
	}
	if req.DenseDim, err = r.u32(); err != nil {
		return err
	}
	dl, err := r.u64()
	if err != nil {
		return err
	}
	req.Deadline = int64(dl)
	nDense, err := r.count(4)
	if err != nil {
		return err
	}
	nTables, err := r.u32()
	if err != nil {
		return err
	}
	// Each table carries at least its two u32 counts.
	if nTables > r.rem() || nDense*4+nTables*8 > r.rem() {
		return errShort
	}
	req.Dense = GetFloat32(nDense)
	decodeFloat32s(r.bytes(nDense*4), req.Dense)
	req.Tables = tablePool.get(nTables)
	for t := 0; t < nTables; t++ {
		nIdx, err := r.count(8)
		if err != nil {
			req.Tables = req.Tables[:t]
			FreePredictRequest(req)
			return err
		}
		nOff, err := r.u32()
		if err != nil || nOff > r.rem() || nIdx*8+nOff*4 > r.rem() {
			req.Tables = req.Tables[:t]
			FreePredictRequest(req)
			if err == nil {
				err = errShort
			}
			return err
		}
		tb := &req.Tables[t]
		tb.Indices = GetInt64(nIdx)
		decodeInt64s(r.bytes(nIdx*8), tb.Indices)
		tb.Offsets = GetInt32(nOff)
		decodeInt32s(r.bytes(nOff*4), tb.Offsets)
	}
	if r.rem() != 0 {
		FreePredictRequest(req)
		return errShort
	}
	return nil
}

// AppendPredictReply encodes rep onto b.
func AppendPredictReply(b []byte, rep *PredictReply) []byte {
	b = appendU32(b, len(rep.Probs))
	return appendFloat32s(b, rep.Probs)
}

// DecodePredictReply decodes a predict reply into a freshly allocated
// Probs slice (replies escape to callers, so they are not pooled).
func DecodePredictReply(data []byte, rep *PredictReply) error {
	r := reader{data: data}
	n, err := r.count(4)
	if err != nil {
		return err
	}
	if n*4 != r.rem() {
		return errShort
	}
	rep.Probs = make([]float32, n)
	decodeFloat32s(r.bytes(n*4), rep.Probs)
	return nil
}
