package wire

import (
	"math"
	"math/rand"
	"testing"
)

// randGatherRequest builds a request with rng-driven geometry.
func randGatherRequest(rng *rand.Rand, nIdx, nOff int) *GatherRequest {
	req := &GatherRequest{
		Table:    rng.Intn(64),
		Shard:    rng.Intn(64),
		Deadline: rng.Int63(),
	}
	for i := 0; i < nIdx; i++ {
		req.Indices = append(req.Indices, rng.Int63())
	}
	for i := 0; i < nOff; i++ {
		req.Offsets = append(req.Offsets, rng.Int31())
	}
	return req
}

func eqI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqF32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func TestGatherRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ nIdx, nOff int }{
		{0, 0}, // empty batch
		{1, 1}, // minimal
		{257, 32},
		{4096, 512}, // max-batch-ish
	}
	for _, tc := range cases {
		req := randGatherRequest(rng, tc.nIdx, tc.nOff)
		if tc.nIdx == 0 {
			req.Deadline = 0 // zero-deadline case rides the empty batch
		}
		b := AppendGatherRequest(nil, req)
		var got GatherRequest
		if err := DecodeGatherRequest(b, &got); err != nil {
			t.Fatalf("decode (%d idx, %d off): %v", tc.nIdx, tc.nOff, err)
		}
		if got.Table != req.Table || got.Shard != req.Shard || got.Deadline != req.Deadline ||
			!eqI64(got.Indices, req.Indices) || !eqI32(got.Offsets, req.Offsets) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, req)
		}
		// Any truncation must error, never panic.
		for cut := 0; cut < len(b); cut++ {
			var tr GatherRequest
			if err := DecodeGatherRequest(b[:cut], &tr); err == nil {
				t.Fatalf("truncated frame (%d of %d bytes) decoded without error", cut, len(b))
			}
		}
	}
}

func TestGatherReplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ bs, dim int }{{0, 0}, {1, 1}, {32, 32}, {256, 64}} {
		rep := &GatherReply{BatchSize: tc.bs, Dim: tc.dim, Pooled: make([]float32, tc.bs*tc.dim)}
		for i := range rep.Pooled {
			rep.Pooled[i] = float32(rng.NormFloat64())
		}
		b := AppendGatherReply(nil, rep, false)
		var got GatherReply
		if err := DecodeGatherReply(b, &got); err != nil {
			t.Fatalf("decode %dx%d: %v", tc.bs, tc.dim, err)
		}
		if got.BatchSize != tc.bs || got.Dim != tc.dim || !eqF32(got.Pooled, rep.Pooled) {
			t.Fatalf("round trip mismatch at %dx%d", tc.bs, tc.dim)
		}
		for cut := 0; cut < len(b); cut++ {
			var tr GatherReply
			if err := DecodeGatherReply(b[:cut], &tr); err == nil {
				t.Fatalf("truncated reply (%d of %d bytes) decoded without error", cut, len(b))
			}
		}
	}
}

// TestGatherReplyQuantRoundTrip checks the int8 encoding's error bound:
// each value must come back within scale/2 = maxabs/254 of the original,
// and all-zero rows must stay exactly zero.
func TestGatherReplyQuantRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bs, dim := 16, 32
	rep := &GatherReply{BatchSize: bs, Dim: dim, Pooled: make([]float32, bs*dim)}
	for i := range rep.Pooled {
		rep.Pooled[i] = float32(rng.NormFloat64())
	}
	for i := 0; i < dim; i++ {
		rep.Pooled[5*dim+i] = 0 // one all-zero row (scale 0 path)
	}
	b := AppendGatherReply(nil, rep, true)
	if want := 4 + 4 + 1 + bs*(4+dim); len(b) != want {
		t.Fatalf("quantized encoding is %d bytes, want %d", len(b), want)
	}
	var got GatherReply
	if err := DecodeGatherReply(b, &got); err != nil {
		t.Fatal(err)
	}
	for row := 0; row < bs; row++ {
		var maxAbs float64
		for _, v := range rep.Pooled[row*dim : (row+1)*dim] {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		bound := maxAbs / 254 * 1.0001 // half a quantization step
		for i := row * dim; i < (row+1)*dim; i++ {
			if diff := math.Abs(float64(got.Pooled[i] - rep.Pooled[i])); diff > bound {
				t.Fatalf("row %d elem %d: |%v - %v| = %v > %v",
					row, i%dim, got.Pooled[i], rep.Pooled[i], diff, bound)
			}
		}
	}
}

func randPredictRequest(rng *rand.Rand, model string, bs, denseDim, nTables, nIdx int) *PredictRequest {
	req := &PredictRequest{
		Model:     model,
		BatchSize: bs,
		DenseDim:  denseDim,
		Deadline:  rng.Int63(),
		Dense:     make([]float32, bs*denseDim),
	}
	for i := range req.Dense {
		req.Dense[i] = float32(rng.NormFloat64())
	}
	for t := 0; t < nTables; t++ {
		tb := TableBatch{Offsets: make([]int32, bs)}
		for i := 0; i < nIdx; i++ {
			tb.Indices = append(tb.Indices, rng.Int63n(1_000_000))
		}
		req.Tables = append(req.Tables, tb)
	}
	return req
}

func TestPredictRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []*PredictRequest{
		randPredictRequest(rng, "", 1, 0, 0, 0),        // empty tables, no dense features
		randPredictRequest(rng, "rm1", 32, 13, 4, 80),  // RM1-shaped
		randPredictRequest(rng, "x", 512, 13, 26, 400), // max-batch-ish
	}
	cases[0].Deadline = 0
	for ci, req := range cases {
		b := AppendPredictRequest(nil, req)
		var got PredictRequest
		if err := DecodePredictRequest(b, &got); err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if got.Model != req.Model || got.BatchSize != req.BatchSize ||
			got.DenseDim != req.DenseDim || got.Deadline != req.Deadline ||
			!eqF32(got.Dense, req.Dense) || len(got.Tables) != len(req.Tables) {
			t.Fatalf("case %d: header/dense mismatch", ci)
		}
		for ti := range req.Tables {
			if !eqI64(got.Tables[ti].Indices, req.Tables[ti].Indices) ||
				!eqI32(got.Tables[ti].Offsets, req.Tables[ti].Offsets) {
				t.Fatalf("case %d table %d mismatch", ci, ti)
			}
		}
		for cut := 0; cut < len(b); cut++ {
			var tr PredictRequest
			if err := DecodePredictRequest(b[:cut], &tr); err == nil {
				t.Fatalf("case %d: truncated frame (%d of %d bytes) decoded without error", ci, cut, len(b))
			}
		}
	}

	rep := &PredictReply{Probs: []float32{0.1, 0.9, 0.5}}
	b := AppendPredictReply(nil, rep)
	var got PredictReply
	if err := DecodePredictReply(b, &got); err != nil {
		t.Fatal(err)
	}
	if !eqF32(got.Probs, rep.Probs) {
		t.Fatal("predict reply mismatch")
	}
	for cut := 0; cut < len(b); cut++ {
		var tr PredictReply
		if err := DecodePredictReply(b[:cut], &tr); err == nil {
			t.Fatalf("truncated reply (%d of %d bytes) decoded without error", cut, len(b))
		}
	}
}

// TestDecodeRejectsOversizedCounts feeds headers whose declared element
// counts exceed the bytes present: the decoders must error before
// allocating for them.
func TestDecodeRejectsOversizedCounts(t *testing.T) {
	// GatherRequest claiming 2^31 indices in a 30-byte frame.
	b := AppendGatherRequest(nil, &GatherRequest{})
	le.PutUint32(b[16:], 1<<31-1)
	var greq GatherRequest
	if err := DecodeGatherRequest(b, &greq); err == nil {
		t.Fatal("oversized index count decoded without error")
	}
	// GatherReply claiming a huge batch.
	rb := AppendGatherReply(nil, &GatherReply{BatchSize: 1, Dim: 1, Pooled: []float32{1}}, false)
	le.PutUint32(rb[0:], 1<<31-1)
	var grep GatherReply
	if err := DecodeGatherReply(rb, &grep); err == nil {
		t.Fatal("oversized batch decoded without error")
	}
	// Unknown gather-reply encoding byte.
	rb2 := AppendGatherReply(nil, &GatherReply{BatchSize: 1, Dim: 1, Pooled: []float32{1}}, false)
	rb2[8] = 0x7f
	if err := DecodeGatherReply(rb2, &grep); err == nil {
		t.Fatal("unknown encoding decoded without error")
	}
}
