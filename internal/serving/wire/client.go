package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// This file is the client half of the framed transport. A Conn is sticky
// and pipelined: one TCP connection per (address, service), any number of
// in-flight calls identified by u64 request IDs, replies completed out of
// order by a single reader goroutine. Cancellation follows the serving
// package's rpcGo contract — an abandoned call unblocks its caller
// immediately, and its eventual reply decodes into a private per-call
// struct that is discarded, so it can never race state the caller has
// moved on from.
//
// Frame layout (both directions, little-endian):
//
//	request  = u32 bodyLen | u64 id | payload
//	reply    = u32 bodyLen | u64 id | u8 status | payload
//
// status 0 carries a message payload; any other status carries a UTF-8
// error string (a service-level error, reported to that call only — the
// connection stays usable).

// ErrClosed reports a call issued on (or interrupted by) a closed
// connection.
var ErrClosed = errors.New("wire: connection closed")

// ServerError is a service-level failure relayed over the wire, mirroring
// net/rpc.ServerError so callers can distinguish remote errors from
// transport ones.
type ServerError string

// Error implements the error interface.
func (e ServerError) Error() string { return string(e) }

// pendingCall is one in-flight request's completion state.
type pendingCall struct {
	// decode materializes the reply payload into the call's private reply
	// struct; it runs on the reader goroutine strictly before done is
	// signalled, so the caller observes a fully decoded reply or nothing.
	decode func([]byte) error
	done   chan error // buffered: the reader never blocks on a deserter
}

// Conn is a sticky, pipelined client connection to one service endpoint.
// It is safe for concurrent use by any number of goroutines.
type Conn struct {
	conn net.Conn

	wmu  sync.Mutex
	wbuf []byte // write frame scratch, grown-not-reallocated

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	nextID  uint64
	err     error // terminal transport error; nil while healthy
}

// Dial connects to the service registered under name at addr, negotiates
// the binary codec (magic/version preamble, bounded by timeout along with
// the TCP dial itself) and starts the reader. kind is KindGather or
// KindPredict; the server refuses a name not registered for that kind at
// dial time rather than at first call.
func Dial(addr, name string, kind byte, timeout time.Duration) (*Conn, error) {
	if len(name) > MaxName {
		return nil, fmt.Errorf("wire: service name %q too long", name)
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	if err := nc.SetDeadline(time.Now().Add(timeout)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	pre := make([]byte, 0, len(Magic)+4+len(name))
	pre = append(pre, Magic[:]...)
	pre = append(pre, Version, kind)
	pre = le.AppendUint16(pre, uint16(len(name)))
	pre = append(pre, name...)
	if _, err := nc.Write(pre); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: dial %s: preamble: %w", addr, err)
	}
	// Ack: u8 status | u16 msgLen | msg. Status 0 accepts; anything else
	// carries the refusal reason.
	var hdr [3]byte
	if _, err := io.ReadFull(nc, hdr[:]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: dial %s: ack: %w", addr, err)
	}
	if n := le.Uint16(hdr[1:]); n > 0 {
		msg := make([]byte, n)
		if _, err := io.ReadFull(nc, msg); err != nil {
			nc.Close()
			return nil, fmt.Errorf("wire: dial %s: ack: %w", addr, err)
		}
		if hdr[0] != 0 {
			nc.Close()
			return nil, fmt.Errorf("wire: dial %s: %s", addr, msg)
		}
	} else if hdr[0] != 0 {
		nc.Close()
		return nil, fmt.Errorf("wire: dial %s: server refused connection (status %d)", addr, hdr[0])
	}
	if err := nc.SetDeadline(time.Time{}); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Conn{conn: nc, pending: make(map[uint64]*pendingCall)}
	go c.readLoop()
	return c, nil
}

// Call issues one pipelined request: encode appends the payload onto the
// frame buffer, decode materializes the reply payload (into storage only
// this call observes). Call blocks until the reply arrives, ctx is done,
// or the connection fails; on ctx cancellation the call is abandoned and
// its late reply, if any, is discarded by the reader.
func (c *Conn) Call(ctx context.Context, encode func([]byte) []byte, decode func([]byte) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	call := &pendingCall{decode: decode, done: make(chan error, 1)}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = call
	c.mu.Unlock()

	c.wmu.Lock()
	b := append(c.wbuf[:0], 0, 0, 0, 0)
	b = appendU64(b, id)
	b = encode(b)
	le.PutUint32(b, uint32(len(b)-4))
	c.wbuf = b
	_, err := c.conn.Write(b)
	c.wmu.Unlock()
	if err != nil {
		// A dead socket fails every pending call, including this one.
		c.fail(fmt.Errorf("wire: write: %w", err))
	}

	select {
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return ctx.Err()
	case err := <-call.done:
		return err
	}
}

// readLoop drains reply frames, completing pending calls out of order.
// The frame buffer is reused across replies: decode copies everything it
// keeps into per-call storage before the loop moves on.
func (c *Conn) readLoop() {
	r := bufio.NewReader(c.conn)
	var hdr [4]byte
	var body []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			c.fail(fmt.Errorf("wire: read: %w", err))
			return
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		if n < 9 || n > MaxFrame {
			c.fail(fmt.Errorf("wire: reply frame length %d out of range", n))
			return
		}
		if cap(body) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			c.fail(fmt.Errorf("wire: read: %w", err))
			return
		}
		id := binary.LittleEndian.Uint64(body)
		status := body[8]
		payload := body[9:]
		c.mu.Lock()
		call := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if call == nil {
			continue // abandoned by a canceled caller; drop the reply
		}
		if status != 0 {
			call.done <- ServerError(payload)
			continue
		}
		call.done <- call.decode(payload)
	}
}

// fail records the terminal error once and completes every pending call
// with it.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	err = c.err
	pend := c.pending
	c.pending = make(map[uint64]*pendingCall)
	c.mu.Unlock()
	_ = c.conn.Close()
	for _, call := range pend {
		call.done <- err
	}
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Conn) Close() error {
	c.fail(ErrClosed)
	return nil
}
