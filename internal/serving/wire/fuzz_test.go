package wire

import (
	"bytes"
	"testing"
)

// FuzzWireCodec drives every decoder with arbitrary bytes. Invariants:
//
//   - no decoder may panic, whatever the input;
//   - a successful decode means the frame was canonical (the strict
//     trailing-byte checks), so re-encoding must reproduce the input
//     byte-for-byte (float32 and float16 encs — binary16 widens exactly
//     and re-narrows to the same bits, NaN payloads included; int8
//     requantization is lossy when the stored scale doesn't match the
//     row maximum);
//   - decoders must not allocate for element counts the frame cannot
//     hold, which the re-encode check enforces indirectly: a decoded
//     message's payload re-encodes to exactly len(input) bytes.
func FuzzWireCodec(f *testing.F) {
	f.Add(AppendGatherRequest(nil, &GatherRequest{
		Table: 2, Shard: 1, Deadline: 99,
		Indices: []int64{5, 9, 1 << 40}, Offsets: []int32{0, 2},
	}))
	f.Add(AppendGatherReply(nil, &GatherReply{
		BatchSize: 2, Dim: 3, Pooled: []float32{1, -2, 3, 0.5, 0, -0.25},
	}, false))
	f.Add(AppendGatherReply(nil, &GatherReply{
		BatchSize: 2, Dim: 2, Pooled: []float32{1, -2, 3, 4},
	}, true))
	// Rows-mode request (empty offsets — gather path v2) and a
	// half-precision reply, plus a zero-copy-encoded rows frame: the
	// row-at-a-time append path must produce the same canonical bytes as
	// the whole-reply encoder.
	f.Add(AppendGatherRequest(nil, &GatherRequest{
		Table: 1, Shard: 3, Deadline: 42, Indices: []int64{0, 7, 7, 1 << 20},
	}))
	f.Add(AppendGatherReplyEnc(nil, &GatherReply{
		BatchSize: 2, Dim: 3, Pooled: []float32{1, -2, 0.5, 65504, -6.1e-5, 0},
	}, EncFloat16))
	zc := AppendGatherReplyHeader(nil, 2, 2, EncFloat16)
	zc = AppendGatherRow(zc, []float32{0.25, -1}, EncFloat16)
	zc = AppendGatherRow(zc, []float32{3, 4}, EncFloat16)
	f.Add(zc)
	f.Add(AppendPredictRequest(nil, &PredictRequest{
		Model: "rm1", BatchSize: 2, DenseDim: 2, Deadline: 7,
		Dense: []float32{1, 2, 3, 4},
		Tables: []TableBatch{
			{Indices: []int64{1, 2, 3}, Offsets: []int32{0, 2}},
			{Indices: []int64{9}, Offsets: []int32{0, 1}},
		},
	}))
	f.Add(AppendPredictReply(nil, &PredictReply{Probs: []float32{0.25, 0.75}}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		var greq GatherRequest
		if err := DecodeGatherRequest(data, &greq); err == nil {
			if out := AppendGatherRequest(nil, &greq); !bytes.Equal(out, data) {
				t.Fatalf("GatherRequest not canonical: %x -> %x", data, out)
			}
			FreeGatherRequest(&greq)
		}

		var grep GatherReply
		if err := DecodeGatherReply(data, &grep); err == nil {
			if len(data) >= 9 && (data[8] == EncFloat32 || data[8] == EncFloat16) {
				if out := AppendGatherReplyEnc(nil, &grep, data[8]); !bytes.Equal(out, data) {
					t.Fatalf("GatherReply not canonical: %x -> %x", data, out)
				}
			}
			FreeGatherReply(&grep)
		}

		var preq PredictRequest
		if err := DecodePredictRequest(data, &preq); err == nil {
			if out := AppendPredictRequest(nil, &preq); !bytes.Equal(out, data) {
				t.Fatalf("PredictRequest not canonical: %x -> %x", data, out)
			}
			FreePredictRequest(&preq)
		}

		var prep PredictReply
		if err := DecodePredictReply(data, &prep); err == nil {
			if out := AppendPredictReply(nil, &prep); !bytes.Equal(out, data) {
				t.Fatalf("PredictReply not canonical: %x -> %x", data, out)
			}
		}
	})
}
