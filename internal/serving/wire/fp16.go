package wire

import "math"

// IEEE 754 binary16 conversion for the EncFloat16 gather-row encoding.
// Encode rounds to nearest-even; decode widens exactly. The pair is
// chosen so that f16→f32→f16 is bit-identical for every 16-bit pattern
// (including NaN payloads and subnormals), which is what lets the fuzz
// canonicality oracle re-encode decoded fp16 frames and demand byte
// equality.

// f32ToF16 converts a float32 to its nearest binary16 bit pattern
// (round-to-nearest-even; overflow saturates to ±Inf).
func f32ToF16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	man := bits & 0x7fffff
	if exp >= 0x1f {
		// Inf/NaN, or a finite value whose exponent overflows binary16.
		if bits&0x7fffffff > 0x7f800000 {
			// NaN: keep the top mantissa bits; never collapse to Inf.
			m := uint16(man >> 13)
			if m == 0 {
				m = 1
			}
			return sign | 0x7c00 | m
		}
		return sign | 0x7c00
	}
	if exp <= 0 {
		if exp < -10 {
			return sign // underflows past subnormals: signed zero
		}
		// Subnormal: shift the implicit-1 mantissa into place and round.
		man |= 0x800000
		shift := uint32(14 - exp)
		v := man >> shift
		rem := man & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && v&1 == 1) {
			v++
		}
		return sign | uint16(v)
	}
	v := man >> 13
	rem := man & 0x1fff
	if rem > 0x1000 || (rem == 0x1000 && v&1 == 1) {
		v++
	}
	// A mantissa carry bumps the exponent; overflow rolls into Inf with
	// the correct bit pattern either way.
	v += uint32(exp) << 10
	return sign | uint16(v)
}

// f16ToF32 widens a binary16 bit pattern to float32 exactly.
func f16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize into a float32 exponent.
		e := uint32(113)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | e<<23 | man<<13)
	case exp == 0x1f:
		return math.Float32frombits(sign | 0x7f800000 | man<<13)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	}
}
