package serving

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/embedding"
	"repro/internal/model"
)

// multiFixture builds a two-variant multi-model deployment: variant "a"
// (4 tables) and variant "b" (2 tables, different rows and seed), each
// with its own monolithic baseline for equivalence checks.
func multiFixture(t *testing.T, optsA, optsB BuildOptions) (*MultiDeployment, map[string]*Monolith, map[string][]*PredictRequest) {
	t.Helper()
	cfgA := liveConfig()
	cfgB := liveConfig()
	cfgB.NumTables = 2
	cfgB.RowsPerTable = 700
	cfgB.BatchSize = 2

	mA, statsA, genA := buildFixture(t, cfgA)
	mB, statsB, genB := buildFixture(t, cfgB)
	md, err := BuildMulti(
		ModelSpec{Name: "a", Model: mA, Stats: statsA, Boundaries: []int64{50, 200, cfgA.RowsPerTable}, Options: optsA},
		ModelSpec{Name: "b", Model: mB, Stats: statsB, Boundaries: []int64{100, cfgB.RowsPerTable}, Options: optsB},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(md.Close)

	monos := map[string]*Monolith{"a": NewMonolith(mA.Clone()), "b": NewMonolith(mB.Clone())}
	reqs := map[string][]*PredictRequest{}
	for name, pair := range map[string]struct {
		cfg model.Config
		gen requestGen
	}{
		"a": {cfgA, genA.Next},
		"b": {cfgB, genB.Next},
	} {
		for i := 0; i < 48; i++ {
			req := &PredictRequest{
				Model:     name,
				BatchSize: pair.cfg.BatchSize,
				DenseDim:  pair.cfg.DenseInputDim,
				Dense:     make([]float32, pair.cfg.BatchSize*pair.cfg.DenseInputDim),
			}
			for tb := 0; tb < pair.cfg.NumTables; tb++ {
				b := pair.gen()
				req.Tables = append(req.Tables, TableBatch{Indices: b.Indices, Offsets: b.Offsets})
			}
			reqs[name] = append(reqs[name], req)
		}
	}
	return md, monos, reqs
}

// requestGen adapts a query generator's Next for the fixture map.
type requestGen func() *embedding.Batch

// TestMultiModelDispatchEquivalence checks the frontend dispatch: each
// variant's requests score exactly as that variant's monolith, and an
// unknown model name is rejected at the frontend rather than served by
// the wrong variant.
func TestMultiModelDispatchEquivalence(t *testing.T) {
	md, monos, reqs := multiFixture(t, BuildOptions{}, BuildOptions{})
	for _, name := range []string{"a", "b"} {
		for i, req := range reqs[name] {
			var got, want PredictReply
			if err := md.Predict(bg, req, &got); err != nil {
				t.Fatalf("model %s req %d: %v", name, i, err)
			}
			if err := monos[name].Predict(bg, req, &want); err != nil {
				t.Fatal(err)
			}
			for j := range want.Probs {
				if math.Abs(float64(got.Probs[j]-want.Probs[j])) > 1e-4 {
					t.Fatalf("model %s req %d input %d: %v != monolith %v", name, i, j, got.Probs[j], want.Probs[j])
				}
			}
		}
	}
	var reply PredictReply
	err := md.Predict(bg, &PredictRequest{Model: "nope", BatchSize: 1, DenseDim: 1, Dense: []float32{0}}, &reply)
	if err == nil || !strings.Contains(err.Error(), `no model "nope"`) {
		t.Fatalf("unknown model error = %v", err)
	}
}

// TestMultiModelRepartitionIsolation is the model-isolation acceptance
// test (run under -race via make race-repartition): model A swaps epochs
// 10 times under freshly drifted statistics while 8 concurrent clients
// hammer model B. B's replies must keep matching its monolith (no request
// may ever mix models or plans), B's epoch must never move, and B's
// per-epoch served accounting must show that none of its requests were
// drained or re-routed by A's swaps.
func TestMultiModelRepartitionIsolation(t *testing.T) {
	for _, tc := range []struct {
		name     string
		optsA    BuildOptions
		optsB    BuildOptions
		batching bool
	}{
		{name: "local", optsA: BuildOptions{}, optsB: BuildOptions{}},
		{name: "local-batched", optsA: BuildOptions{},
			optsB:    BuildOptions{Batching: &BatcherOptions{MaxBatch: 8, MaxDelay: 200 * time.Microsecond}},
			batching: true},
		{name: "tcp", optsA: BuildOptions{Transport: TransportTCP}, optsB: BuildOptions{Transport: TransportTCP}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			md, monos, reqs := multiFixture(t, tc.optsA, tc.optsB)
			ldB, _ := md.Deployment("b")
			epochB := ldB.Table()

			want := make([][]float32, len(reqs["b"]))
			for i, req := range reqs["b"] {
				var mr PredictReply
				if err := monos["b"].Predict(bg, req, &mr); err != nil {
					t.Fatal(err)
				}
				want[i] = mr.Probs
			}

			const clients = 8
			var stop atomic.Bool
			var wg sync.WaitGroup
			errc := make(chan error, clients)
			var served atomic.Int64
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for q := c; !stop.Load(); q = (q + 1) % len(want) {
						var reply PredictReply
						if err := md.Predict(bg, reqs["b"][q], &reply); err != nil {
							errc <- fmt.Errorf("client %d query %d: %w", c, q, err)
							return
						}
						for j := range want[q] {
							if math.Abs(float64(reply.Probs[j]-want[q][j])) > 1e-4 {
								errc <- fmt.Errorf("client %d query %d input %d: %v != monolith %v (cross-model mix?)",
									c, q, j, reply.Probs[j], want[q][j])
								return
							}
						}
						served.Add(1)
					}
				}(c)
			}

			// Swap model A's plan 10 times under B's fire.
			cfgA := liveConfig()
			plans := [][]int64{
				{80, 300, cfgA.RowsPerTable},
				{50, 200, cfgA.RowsPerTable},
				{120, 250, 400, cfgA.RowsPerTable},
			}
			const swaps = 10
			for swap := 0; swap < swaps; swap++ {
				fresh := driftedStats(t, cfgA, int64(swap*40), uint64(swap))
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				err := md.Repartition(ctx, "a", fresh, plans[swap%len(plans)])
				cancel()
				if err != nil {
					stop.Store(true)
					wg.Wait()
					t.Fatalf("swap %d: %v", swap, err)
				}
				if got := ldB.Table(); got != epochB {
					stop.Store(true)
					wg.Wait()
					t.Fatalf("swap %d of model a moved model b's epoch table", swap)
				}
			}
			// The swaps can outrun the clients at this scale; keep B under
			// fire until it has demonstrably served through them (client
			// errors break the wait via the errc drain below).
			waitUntil := time.Now().Add(10 * time.Second)
			for served.Load() < 32 && time.Now().Before(waitUntil) && len(errc) == 0 {
				time.Sleep(time.Millisecond)
			}
			stop.Store(true)
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			// A advanced 10 epochs; B never moved.
			if got := md.Epoch("a"); got != swaps {
				t.Fatalf("model a epoch = %d, want %d", got, swaps)
			}
			if got := md.Epoch("b"); got != 0 {
				t.Fatalf("model b epoch = %d, want 0 (A's swaps leaked into B)", got)
			}
			if got := md.Router.SwapsFor("a"); got != swaps {
				t.Fatalf("model a swap counter = %d, want %d", got, swaps)
			}
			if got := md.Router.SwapsFor("b"); got != 0 {
				t.Fatalf("model b swap counter = %d, want 0", got)
			}
			// Every one of B's dispatches landed in B's single epoch: none
			// were drained, dropped, or accounted into A's epochs.
			wantServed := served.Load()
			if tc.batching {
				wantServed = ldB.Batcher.Batches.Value()
			}
			if got := epochB.Served.Value(); got != wantServed {
				t.Fatalf("model b epoch-0 served = %d, want %d", got, wantServed)
			}
			if served.Load() == 0 {
				t.Fatal("model b served nothing; isolation untested")
			}
		})
	}
}

// TestRouterMultiModelPublish pins the router map semantics: per-model
// registration, independent publish/acquire, duplicate registration
// rejected, unknown models rejected.
func TestRouterMultiModelPublish(t *testing.T) {
	cfg := liveConfig()
	r := NewMultiRouter()
	rtA0, err := NewRoutingTable(0, cfg, nil, emptyPlan(cfg), emptyClients(cfg))
	if err != nil {
		t.Fatal(err)
	}
	rtB0, err := NewRoutingTable(0, cfg, nil, emptyPlan(cfg), emptyClients(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Register("a", rtA0); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("b", rtB0); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("a", rtA0); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if got := r.Models(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("models = %v", got)
	}
	if rtA0.Model != "a" || rtB0.Model != "b" {
		t.Fatalf("table models = %q/%q", rtA0.Model, rtB0.Model)
	}

	// Pin B, publish A: A's drain isn't blocked by B's in-flight request.
	pinnedB, err := r.AcquireModel("b")
	if err != nil {
		t.Fatal(err)
	}
	rtA1, err := NewRoutingTable(1, cfg, nil, emptyPlan(cfg), emptyClients(cfg))
	if err != nil {
		t.Fatal(err)
	}
	prev, err := r.PublishModel("a", rtA1)
	if err != nil {
		t.Fatal(err)
	}
	if prev != rtA0 {
		t.Fatal("publish returned wrong predecessor")
	}
	if err := rtA0.Drain(context.Background()); err != nil {
		t.Fatalf("draining a's retired epoch while b is pinned: %v", err)
	}
	if r.LoadModel("a") != rtA1 || r.LoadModel("b") != rtB0 {
		t.Fatal("publish of a disturbed the model map")
	}
	if r.SwapsFor("a") != 1 || r.SwapsFor("b") != 0 || r.Swaps.Value() != 1 {
		t.Fatalf("swap counters = a:%d b:%d total:%d", r.SwapsFor("a"), r.SwapsFor("b"), r.Swaps.Value())
	}
	pinnedB.release()

	if _, err := r.AcquireModel("ghost"); err == nil {
		t.Fatal("acquire of unregistered model succeeded")
	}
	if _, err := r.PublishModel("ghost", rtA1); err == nil {
		t.Fatal("publish to unregistered model succeeded")
	}
	if r.LoadModel("ghost") != nil {
		t.Fatal("load of unregistered model returned a table")
	}
}

// TestModelMismatchRejectedEverywhere drives a wrong-model request into
// each model-aware layer directly (deployment, batcher, dense shard) and
// checks every one refuses rather than serving it with the wrong
// variant's parameters.
func TestModelMismatchRejectedEverywhere(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{50, 200, cfg.RowsPerTable},
		BuildOptions{Batching: &BatcherOptions{MaxBatch: 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()

	req := makeRequest(cfg, gen, 1)
	req.Model = "other"
	var reply PredictReply
	for layer, client := range map[string]PredictClient{
		"deployment": ld,
		"batcher":    ld.Batcher,
		"dense":      ld.Dense,
	} {
		if err := client.Predict(bg, req, &reply); err == nil || !strings.Contains(err.Error(), `"other"`) {
			t.Fatalf("%s accepted a wrong-model request (err = %v)", layer, err)
		}
	}
	// The same request addressed correctly (empty = default) still works.
	req.Model = ""
	if err := ld.Predict(bg, req, &reply); err != nil {
		t.Fatal(err)
	}
}

// TestMultiModelOverTCPFrontend exports the dispatching frontend over
// net/rpc and checks the Model field survives the wire: both variants are
// served through one TCP endpoint.
func TestMultiModelOverTCPFrontend(t *testing.T) {
	md, monos, reqs := multiFixture(t, BuildOptions{}, BuildOptions{})
	addr, err := md.ExportPredict("Frontend")
	if err != nil {
		t.Fatal(err)
	}
	client, err := DialPredict(addr, "Frontend")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for _, name := range []string{"a", "b"} {
		req := reqs[name][0]
		var got, want PredictReply
		if err := client.Predict(bg, req, &got); err != nil {
			t.Fatalf("model %s over TCP: %v", name, err)
		}
		if err := monos[name].Predict(bg, req, &want); err != nil {
			t.Fatal(err)
		}
		for j := range want.Probs {
			if math.Abs(float64(got.Probs[j]-want.Probs[j])) > 1e-4 {
				t.Fatalf("model %s over TCP input %d: %v != %v", name, j, got.Probs[j], want.Probs[j])
			}
		}
	}
}

// TestModelRepartitionLoopsIndependentCadence runs two per-model
// repartition loops off one shared policy and checks model A's firing
// does not consume model B's interval (and vice versa) — the
// independent-cadence contract of ShouldRepartitionModel.
func TestModelRepartitionLoopsIndependentCadence(t *testing.T) {
	p := &cluster.RepartitionPolicy{MinSkew: 0.5, MinRequests: 0, MinInterval: time.Hour}
	now := time.Now()
	if !p.ShouldRepartitionModel("a", 0.1, 10, now) {
		t.Fatal("model a should fire")
	}
	if p.ShouldRepartitionModel("a", 0.1, 10, now.Add(time.Minute)) {
		t.Fatal("model a re-fired inside its interval")
	}
	// A's firing must not have consumed B's interval.
	if !p.ShouldRepartitionModel("b", 0.1, 10, now.Add(time.Minute)) {
		t.Fatal("model b was throttled by model a's firing")
	}
	// After A's interval elapses, A may fire again.
	if !p.ShouldRepartitionModel("a", 0.1, 10, now.Add(2*time.Hour)) {
		t.Fatal("model a did not recover after its interval")
	}
	// The single-model entry point keys its own state.
	if !p.ShouldRepartition(0.1, 10, now) {
		t.Fatal("single-model trigger should fire independently")
	}
}
