package serving

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
)

// This file implements dynamic request batching for the dense hot path.
// Concurrent Predict calls are coalesced into one fused forward batch
// (bounded by a max batch size and a max queue delay), dispatched to the
// backend dense shard, and demultiplexed back to the callers. Together
// with the model scratch pool this replaces the old
// one-mutex-per-dense-shard serialization: fused batches amortize the
// per-request gather fan-out, and independent batches run concurrently.

// BatcherOptions tunes the dynamic batcher.
type BatcherOptions struct {
	// MaxBatch is the fused-batch input budget: a batch is dispatched as
	// soon as the coalesced inputs reach it (default 64). A single request
	// larger than MaxBatch is dispatched alone.
	MaxBatch int
	// MaxDelay bounds how long the oldest queued request waits for
	// batchmates before the batch is flushed anyway (default 200µs).
	MaxDelay time.Duration
	// SoloGrace bounds how long a *lone* request — one that arrives to an
	// empty queue — waits for its first batchmate before being dispatched
	// immediately (default MaxDelay/8). A low-concurrency client never has
	// batchmates, so sleeping out the full MaxDelay for every request just
	// taxes it; once a first batchmate does arrive within the grace, the
	// batch keeps filling under the normal MaxDelay budget. Set SoloGrace
	// >= MaxDelay to restore the old always-wait behaviour.
	SoloGrace time.Duration
	// MaxInFlight bounds how many fused batches may execute concurrently
	// (default GOMAXPROCS); the collector applies backpressure beyond it.
	MaxInFlight int
	// QueueCap is the pending-request queue capacity (default 256);
	// enqueueing blocks when the queue is full.
	QueueCap int
}

func (o *BatcherOptions) defaults() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 200 * time.Microsecond
	}
	if o.SoloGrace <= 0 {
		o.SoloGrace = o.MaxDelay / 8
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
}

// pendingPredict is one caller's request waiting in the batch queue.
type pendingPredict struct {
	req      *PredictRequest
	deadline int64 // caller's ctx deadline in unix nanos (0 = none)
	probs    []float32
	done     chan error
}

// Batcher coalesces concurrent Predict calls into fused forward batches.
// Requests are validated on arrival, so a malformed request is rejected
// before it joins a batch and can never fail its batchmates; only a
// backend failure on the fused call itself is fanned out to every caller
// in that batch.
type Batcher struct {
	backend PredictClient
	cfg     model.Config
	model   string // canonical model name; a fused batch never mixes models
	opts    BatcherOptions

	mu     sync.RWMutex // guards closed vs. enqueue
	closed bool
	reqs   chan *pendingPredict
	slots  chan struct{}
	wg     sync.WaitGroup

	// QueueDepth observes, at every dispatch, how many requests were
	// still waiting behind the fused batch; BatchSizes observes the fused
	// input count per dispatch. Both feed the autoscaler/stress tooling.
	QueueDepth *metrics.Histogram
	BatchSizes *metrics.Histogram
	// Requests counts enqueued requests; Batches counts fused dispatches.
	Requests *metrics.Counter
	Batches  *metrics.Counter
}

// NewBatcher starts a batching frontend over a predict backend serving the
// given model geometry (use DenseShard.Config()) under the default model
// name. Close it to flush and stop the collector.
func NewBatcher(backend PredictClient, cfg model.Config, opts BatcherOptions) *Batcher {
	return NewModelBatcher(DefaultModel, backend, cfg, opts)
}

// NewModelBatcher starts a batching frontend for one named DLRM variant.
// Requests for any other model are rejected on arrival, so a fused batch
// can never mix two variants' inputs into one forward pass.
func NewModelBatcher(name string, backend PredictClient, cfg model.Config, opts BatcherOptions) *Batcher {
	opts.defaults()
	b := &Batcher{
		backend:    backend,
		cfg:        cfg,
		model:      canonicalModel(name),
		opts:       opts,
		reqs:       make(chan *pendingPredict, opts.QueueCap),
		slots:      make(chan struct{}, opts.MaxInFlight),
		QueueDepth: metrics.NewHistogram([]float64{0, 1, 2, 4, 8, 16, 32, 64, 128}),
		BatchSizes: metrics.NewHistogram([]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
		Requests:   &metrics.Counter{},
		Batches:    &metrics.Counter{},
	}
	b.wg.Add(1)
	go b.collect()
	return b
}

// Options returns the effective (defaulted) options.
func (b *Batcher) Options() BatcherOptions { return b.opts }

// Model returns the canonical model name the batcher serves.
func (b *Batcher) Model() string { return b.model }

// Predict enqueues the request and blocks until its inputs have been
// scored inside some fused batch, or until ctx is done. Safe for
// concurrent use; the request is read-only until Predict returns. A
// caller abandoning on ctx does not cancel the fused batch — its
// batchmates still complete (the done channel is buffered, so the
// dispatcher never blocks on an abandoned caller).
func (b *Batcher) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	// Per-request validation happens before enqueue: a bad request is
	// bounced here and never contaminates a fused batch.
	if err := req.Validate(b.cfg.NumTables); err != nil {
		return err
	}
	if req.DenseDim != b.cfg.DenseInputDim {
		return fmt.Errorf("serving: dense dim %d != model %d", req.DenseDim, b.cfg.DenseInputDim)
	}
	if got := canonicalModel(req.Model); got != b.model {
		return fmt.Errorf("serving: request for model %q reached batcher serving %q", got, b.model)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	p := &pendingPredict{req: req, deadline: ctxDeadlineNanos(ctx), done: make(chan error, 1)}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return fmt.Errorf("serving: batcher is closed")
	}
	b.reqs <- p
	b.mu.RUnlock()
	b.Requests.Inc(1)
	select {
	case err := <-p.done:
		if err != nil {
			return err
		}
		reply.Probs = p.probs
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

var _ PredictClient = (*Batcher)(nil)

// collect is the single collector loop: it forms fused batches and hands
// each one to a dispatch goroutine, so the next batch can fill while the
// previous one is still in the dense forward pass.
func (b *Batcher) collect() {
	defer b.wg.Done()
	for {
		first, ok := <-b.reqs
		if !ok {
			return
		}
		batch := []*pendingPredict{first}
		total := first.req.BatchSize
		closing := false
		solo := false
		timer := time.NewTimer(b.opts.MaxDelay)
		if total < b.opts.MaxBatch && len(b.reqs) == 0 && b.opts.SoloGrace < b.opts.MaxDelay {
			// The request arrived to an empty queue: give a first
			// batchmate only the short grace, then dispatch immediately
			// instead of sleeping out MaxDelay — the low-concurrency fix
			// (a single closed-loop client never has batchmates). Short
			// graces poll cooperatively: timers overshoot tens-of-µs
			// sleeps by up to a millisecond under coarse kernel timer
			// slack, which would hand the whole regression right back.
			if b.opts.SoloGrace <= time.Millisecond {
				deadline := time.Now().Add(b.opts.SoloGrace)
				for len(b.reqs) == 0 && time.Now().Before(deadline) {
					runtime.Gosched()
				}
				solo = len(b.reqs) == 0
				// A batchmate made it in: the fill loop below receives
				// it without blocking and keeps filling under MaxDelay.
			} else {
				grace := time.NewTimer(b.opts.SoloGrace)
				select {
				case p, ok := <-b.reqs:
					if !ok {
						closing = true
					} else {
						batch = append(batch, p)
						total += p.req.BatchSize
					}
				case <-grace.C:
					solo = true
				}
				grace.Stop()
			}
		}
		if !closing && !solo {
		fill:
			for total < b.opts.MaxBatch {
				select {
				case p, ok := <-b.reqs:
					if !ok {
						closing = true
						break fill
					}
					batch = append(batch, p)
					total += p.req.BatchSize
				case <-timer.C:
					break fill
				}
			}
		}
		timer.Stop()
		b.QueueDepth.Observe(float64(len(b.reqs)))
		b.BatchSizes.Observe(float64(total))
		b.Batches.Inc(1)
		b.slots <- struct{}{} // backpressure beyond MaxInFlight
		b.wg.Add(1)
		go func(batch []*pendingPredict, total int) {
			defer b.wg.Done()
			b.dispatch(batch, total)
			<-b.slots
		}(batch, total)
		if closing {
			return
		}
	}
}

// batchContext derives the fused call's context: the earliest deadline
// among the batchmates that have one, so no request ever executes past its
// own budget inside a fused batch (the old latest-deadline rule let a
// permissive batchmate stretch a tight request far beyond its deadline).
// The flip side — a permissive request can now fail because a tight
// batchmate bounded the fused call — is accepted until slack-aware queue
// admission lands (see ROADMAP "Deadline-aware batching"). Unbounded only
// when no caller has a deadline.
func batchContext(batch []*pendingPredict) (context.Context, context.CancelFunc) {
	earliest := int64(0)
	for _, p := range batch {
		if p.deadline != 0 && (earliest == 0 || p.deadline < earliest) {
			earliest = p.deadline
		}
	}
	return deadlineContext(earliest)
}

// dispatch runs one fused batch against the backend and demuxes results.
func (b *Batcher) dispatch(batch []*pendingPredict, total int) {
	ctx, cancel := batchContext(batch)
	defer cancel()
	if len(batch) == 1 {
		// Fast path: nothing to fuse or demux.
		var reply PredictReply
		err := b.backend.Predict(ctx, batch[0].req, &reply)
		if err == nil {
			batch[0].probs = reply.Probs
		}
		batch[0].done <- err
		return
	}
	fused := b.fuse(batch, total)
	var reply PredictReply
	if err := b.backend.Predict(ctx, fused, &reply); err != nil {
		for _, p := range batch {
			p.done <- err
		}
		return
	}
	if len(reply.Probs) != total {
		err := fmt.Errorf("serving: fused batch returned %d probs, want %d", len(reply.Probs), total)
		for _, p := range batch {
			p.done <- err
		}
		return
	}
	base := 0
	for _, p := range batch {
		p.probs = reply.Probs[base : base+p.req.BatchSize]
		base += p.req.BatchSize
		p.done <- nil
	}
}

// fuse concatenates the batch's requests into one PredictRequest: dense
// rows are stacked and every table's offsets are rebased onto the fused
// index array.
func (b *Batcher) fuse(batch []*pendingPredict, total int) *PredictRequest {
	dd := b.cfg.DenseInputDim
	nt := b.cfg.NumTables
	fused := &PredictRequest{
		Model:     b.model,
		BatchSize: total,
		DenseDim:  dd,
		Dense:     make([]float32, 0, total*dd),
		Tables:    make([]TableBatch, nt),
	}
	for t := 0; t < nt; t++ {
		var nIdx, nOff int
		for _, p := range batch {
			nIdx += len(p.req.Tables[t].Indices)
			nOff += len(p.req.Tables[t].Offsets)
		}
		fused.Tables[t].Indices = make([]int64, 0, nIdx)
		fused.Tables[t].Offsets = make([]int32, 0, nOff)
	}
	for _, p := range batch {
		fused.Dense = append(fused.Dense, p.req.Dense...)
		for t := 0; t < nt; t++ {
			tb := p.req.Tables[t]
			rebase := int32(len(fused.Tables[t].Indices))
			fused.Tables[t].Indices = append(fused.Tables[t].Indices, tb.Indices...)
			for _, off := range tb.Offsets {
				fused.Tables[t].Offsets = append(fused.Tables[t].Offsets, off+rebase)
			}
		}
	}
	return fused
}

// Close stops accepting requests, flushes everything already queued
// through the backend, and waits for in-flight batches to finish.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	close(b.reqs)
	b.mu.Unlock()
	b.wg.Wait()
	return nil
}
