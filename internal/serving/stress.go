package serving

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// This file implements the QPSmax stress test of Sec. IV-D: "ElasticRec
// measures the maximum QPS each sparse shard can sustain, stress-testing
// each one of them by gradually increasing input query traffic intensity
// and monitoring at which point the tail latency increases rapidly." The
// measured QPSmax becomes the shard's HPA threshold.

// StressOptions tunes the ramp.
type StressOptions struct {
	// MaxConcurrency bounds the closed-loop ramp (default 64).
	MaxConcurrency int
	// RequestsPerLevel is the number of requests issued at each
	// concurrency level (default 128).
	RequestsPerLevel int
	// KneeFactor declares the knee when P95 exceeds KneeFactor times the
	// single-client baseline P95 (default 3).
	KneeFactor float64
}

func (o *StressOptions) defaults() {
	if o.MaxConcurrency <= 0 {
		o.MaxConcurrency = 64
	}
	if o.RequestsPerLevel <= 0 {
		o.RequestsPerLevel = 128
	}
	if o.KneeFactor <= 0 {
		o.KneeFactor = 3
	}
}

// StressSample is one ramp level's measurement.
type StressSample struct {
	Concurrency int
	QPS         float64
	P95         time.Duration
}

// StressResult is the outcome of a stress test.
type StressResult struct {
	Samples []StressSample
	// QPSMax is the highest sustained throughput observed before the
	// tail-latency knee.
	QPSMax float64
	// KneeConcurrency is the level at which the knee was detected
	// (0 when the ramp completed without a knee).
	KneeConcurrency int
}

// StressTest ramps closed-loop concurrency against the client, measuring
// sustained throughput and P95 at each level, and stops at the tail-latency
// knee. newReq must return a fresh request for every call (requests may be
// issued concurrently). Canceling ctx aborts the ramp between levels and
// fails in-flight gathers through the usual RPC cancellation path.
func StressTest(ctx context.Context, client GatherClient, newReq func() *GatherRequest, opts StressOptions) (*StressResult, error) {
	if client == nil || newReq == nil {
		return nil, fmt.Errorf("serving: stress test needs a client and a request generator")
	}
	return stressRamp(ctx, func() error {
		var reply GatherReply
		return client.Gather(ctx, newReq(), &reply)
	}, opts)
}

// StressPredict runs the same QPSmax ramp against a predict frontend —
// the dense shard or its dynamic batcher — so the knee of the end-to-end
// predict pipeline (gather fan-out + fused dense forward) can be measured
// the same way sparse shards are.
func StressPredict(ctx context.Context, client PredictClient, newReq func() *PredictRequest, opts StressOptions) (*StressResult, error) {
	if client == nil || newReq == nil {
		return nil, fmt.Errorf("serving: stress test needs a client and a request generator")
	}
	return stressRamp(ctx, func() error {
		var reply PredictReply
		return client.Predict(ctx, newReq(), &reply)
	}, opts)
}

// stressRamp is the shared closed-loop ramp: call issues one request.
// The ramp checks ctx between concurrency levels so a canceled stress
// run stops instead of climbing to MaxConcurrency.
func stressRamp(ctx context.Context, call func() error, opts StressOptions) (*StressResult, error) {
	opts.defaults()
	result := &StressResult{}
	var baselineP95 time.Duration

	for conc := 1; conc <= opts.MaxConcurrency; conc *= 2 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("serving: stress test canceled before concurrency %d: %w", conc, err)
		}
		rec := metrics.NewLatencyRecorder(opts.RequestsPerLevel)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		perWorker := opts.RequestsPerLevel / conc
		if perWorker < 1 {
			perWorker = 1
		}
		start := time.Now()
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < perWorker; r++ {
					t0 := time.Now()
					if err := call(); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					rec.Observe(time.Since(t0))
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, fmt.Errorf("serving: stress test at concurrency %d: %w", conc, firstErr)
		}
		elapsed := time.Since(start)
		issued := perWorker * conc
		sample := StressSample{
			Concurrency: conc,
			QPS:         float64(issued) / elapsed.Seconds(),
			P95:         rec.Quantile(0.95),
		}
		result.Samples = append(result.Samples, sample)
		if conc == 1 {
			baselineP95 = sample.P95
			if baselineP95 <= 0 {
				baselineP95 = time.Nanosecond
			}
		}
		if conc > 1 && float64(sample.P95) > opts.KneeFactor*float64(baselineP95) {
			result.KneeConcurrency = conc
			break
		}
		if sample.QPS > result.QPSMax {
			result.QPSMax = sample.QPS
		}
	}
	if result.QPSMax == 0 && len(result.Samples) > 0 {
		result.QPSMax = result.Samples[0].QPS
	}
	return result, nil
}
