package serving

import (
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/embedding"
)

// This file is the epoch-reuse layer that makes a repartition cheap
// instead of a teardown. Three pieces cooperate:
//
//   - shardUnit: one shard's service bundle (service, replica pool,
//     transports) refcounted across epochs. A RoutingTable holds one
//     reference per shard it routes to; the plan cache holds one more
//     while the unit is cached. Transports are torn down only when the
//     last reference drops — so an unchanged shard's live service (and
//     its autoscaled replica pool) survives a plan swap untouched.
//   - planCache: a per-model memo of Preprocess outputs keyed by the
//     profiling window's fingerprint, and of shard units keyed by
//     (fingerprint, table, row range). Returning to a recent plan reuses
//     its sorted/permuted tables and its shard services instead of
//     re-permuting and respawning; entries idle for more than maxAge
//     epochs are evicted.
//   - fingerprintStats: the cache key — a content hash of the profiling
//     window, so "same stats" is detected without retaining the window.

// shardUnit bundles one shard's service, replica pool and transport
// resources, shared across routing-table epochs by refcount. retain/release
// calls are serialized by the owning deployment's repartition mutex (and by
// single-threaded construction before serving starts), so the zero-check in
// release never races a concurrent retain.
type shardUnit struct {
	table  int
	lo, hi int64 // sorted-space row range [lo, hi)

	svc  *EmbeddingShard
	pool *ReplicaPool

	servers []*RPCServer
	closers []io.Closer
	refs    atomic.Int64
}

// retain adds one reference (a routing-table epoch or the plan cache).
func (u *shardUnit) retain() { u.refs.Add(1) }

// release drops one reference, tearing the transports down when the last
// holder (epoch or cache) lets go.
func (u *shardUnit) release() {
	if u.refs.Add(-1) > 0 {
		return
	}
	u.teardown()
}

// teardown drains the unit's pull pool, then closes its transports (RPC
// clients, then servers). The pool closes first so every replica worker —
// including workers spawned by within-epoch autoscaling, which can outlive
// the epoch that created the unit — exits before the connections it
// dispatches on drop. Also called directly on a build that failed before
// the unit was ever retained.
func (u *shardUnit) teardown() {
	if u.pool != nil {
		u.pool.Close()
	}
	for _, c := range u.closers {
		_ = c.Close()
	}
	u.closers = nil
	for _, s := range u.servers {
		_ = s.Close()
	}
	u.servers = nil
}

// unitKey identifies a reusable shard: same profiling-window fingerprint
// (hence identical sorted table contents), same table, same row range AND
// same shard ordinal. The ordinal matters for identity, not correctness:
// a row range that reappears at a different shard position (a replan that
// drops or inserts a cut before it) is rebuilt rather than reused, so a
// service's ShardIndex, its metrics and its transport name never claim a
// position the live plan doesn't have.
type unitKey struct {
	fp     uint64
	table  int
	shard  int
	lo, hi int64
}

// cachedPre is one memoized Preprocess output with its last-use epoch.
type cachedPre struct {
	pre       *Preprocessed
	lastEpoch int64
}

// cachedUnit is one memoized shard unit with its last-use epoch. The cache
// holds its own reference on the unit (dropped on eviction), so a cached
// shard stays warm even after every epoch that used it has closed.
type cachedUnit struct {
	unit      *shardUnit
	lastEpoch int64
}

// cachedPlan is one memoized replan outcome: the DP boundaries computed
// from a profiling window with this fingerprint. Keyed alongside the
// Preprocess memo so a re-trigger on an already-seen window skips the DP
// replan entirely, not just the hotness sort it feeds.
type cachedPlan struct {
	boundaries []int64
	lastEpoch  int64
}

// planCache memoizes one model's plan-construction outputs across epochs.
// maxAge < 0 disables caching entirely (every build is cold); maxAge == n
// keeps an entry alive for n epochs past its last use.
type planCache struct {
	mu     sync.Mutex
	maxAge int64
	pres   map[uint64]*cachedPre
	units  map[unitKey]*cachedUnit
	plans  map[uint64]*cachedPlan
}

// newPlanCache creates a cache retaining entries for maxAge epochs past
// their last use (maxAge < 0 disables caching).
func newPlanCache(maxAge int64) *planCache {
	return &planCache{
		maxAge: maxAge,
		pres:   make(map[uint64]*cachedPre),
		units:  make(map[unitKey]*cachedUnit),
		plans:  make(map[uint64]*cachedPlan),
	}
}

// disabled reports whether the cache never stores anything.
func (c *planCache) disabled() bool { return c.maxAge < 0 }

// lookupPre returns the memoized Preprocess output for a window
// fingerprint, refreshing its age (nil on miss or when disabled).
func (c *planCache) lookupPre(fp uint64, epoch int64) *Preprocessed {
	if c.disabled() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.pres[fp]
	if !ok {
		return nil
	}
	e.lastEpoch = epoch
	return e.pre
}

// putPre memoizes a freshly computed Preprocess output.
func (c *planCache) putPre(fp uint64, pre *Preprocessed, epoch int64) {
	if c.disabled() {
		return
	}
	c.mu.Lock()
	c.pres[fp] = &cachedPre{pre: pre, lastEpoch: epoch}
	c.mu.Unlock()
}

// lookupPlan returns the memoized replan boundaries for a window
// fingerprint, refreshing their age (nil on miss or when disabled). The
// returned slice is a copy — callers may keep or mutate it freely.
func (c *planCache) lookupPlan(fp uint64, epoch int64) []int64 {
	if c.disabled() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.plans[fp]
	if !ok {
		return nil
	}
	e.lastEpoch = epoch
	return append([]int64(nil), e.boundaries...)
}

// putPlan memoizes a freshly computed replan outcome (the slice is copied).
func (c *planCache) putPlan(fp uint64, boundaries []int64, epoch int64) {
	if c.disabled() {
		return
	}
	c.mu.Lock()
	c.plans[fp] = &cachedPlan{boundaries: append([]int64(nil), boundaries...), lastEpoch: epoch}
	c.mu.Unlock()
}

// lookupUnit returns the cached shard unit for key, refreshing its age
// (nil on miss or when disabled). The caller must retain the unit before
// routing to it.
func (c *planCache) lookupUnit(key unitKey, epoch int64) *shardUnit {
	if c.disabled() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.units[key]
	if !ok {
		return nil
	}
	e.lastEpoch = epoch
	return e.unit
}

// putUnit caches a freshly built shard unit, taking the cache's own
// reference on it.
func (c *planCache) putUnit(key unitKey, u *shardUnit, epoch int64) {
	if c.disabled() {
		return
	}
	u.retain()
	c.mu.Lock()
	c.units[key] = &cachedUnit{unit: u, lastEpoch: epoch}
	c.mu.Unlock()
}

// evict drops every entry idle for more than maxAge epochs as of the epoch
// just built, releasing the cache's reference on evicted shard units.
func (c *planCache) evict(epoch int64) {
	if c.disabled() {
		return
	}
	c.mu.Lock()
	var drop []*shardUnit
	for fp, e := range c.pres {
		if e.lastEpoch < epoch-c.maxAge {
			delete(c.pres, fp)
		}
	}
	for fp, e := range c.plans {
		if e.lastEpoch < epoch-c.maxAge {
			delete(c.plans, fp)
		}
	}
	for key, e := range c.units {
		if e.lastEpoch < epoch-c.maxAge {
			delete(c.units, key)
			drop = append(drop, e.unit)
		}
	}
	c.mu.Unlock()
	// Release outside the lock: teardown closes sockets.
	for _, u := range drop {
		u.release()
	}
}

// clear drops everything (deployment shutdown), releasing the cache's
// references.
func (c *planCache) clear() {
	c.mu.Lock()
	units := c.units
	c.pres = make(map[uint64]*cachedPre)
	c.units = make(map[unitKey]*cachedUnit)
	c.plans = make(map[uint64]*cachedPlan)
	c.mu.Unlock()
	for _, e := range units {
		e.unit.release()
	}
}

// occupancy snapshots the cache's current footprint: entry counts per memo
// kind and the bytes of cached sorted tables (the dominant cost — each
// memoized Preprocess output holds a full sorted copy of every embedding
// table). This is the per-model number the cross-variant cache budget
// (ROADMAP) will aggregate into a global LRU.
func (c *planCache) occupancy() (pres, units, plans int, sortedBytes int64) {
	if c.disabled() {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.pres {
		for _, tab := range e.pre.Sorted {
			sortedBytes += tab.SizeBytes()
		}
	}
	return len(c.pres), len(c.units), len(c.plans), sortedBytes
}

// fingerprintStats content-hashes a profiling window (per-table access
// counts), so two windows with identical counts memoize to the same plan.
// Word-wise FNV-1a (one multiply per counter rather than per byte): not a
// cryptographic hash, just a memo key — O(rows) at a few ns per row,
// orders of magnitude cheaper than the Preprocess permutation it saves.
func fingerprintStats(stats []*embedding.AccessStats) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	word := func(v int64) {
		h = (h ^ uint64(v)) * prime64
	}
	for t, st := range stats {
		word(int64(t))
		word(st.Rows())
		word(st.Total)
		for _, c := range st.Counts {
			word(c)
		}
	}
	return h
}

// BuildCounters is the deployment-lifetime tally of plan-construction work
// — the observable the epoch-reuse tests spy on: a cache-hit repartition
// must not move Preprocesses or ShardsBuilt, and an incremental
// single-boundary move must raise ShardsBuilt by exactly the moved shards.
type BuildCounters struct {
	// Preprocesses counts full hotness-sort+permute runs (cache misses on
	// the profiling-window fingerprint).
	Preprocesses int64
	// PreCacheHits counts builds that reused a memoized Preprocess output.
	PreCacheHits int64
	// ShardsBuilt counts shard services newly constructed (with their
	// pools and transports).
	ShardsBuilt int64
	// ShardsReused counts shard services carried across epochs by
	// refcount instead of being rebuilt.
	ShardsReused int64
	// Replans counts DP replan invocations (fingerprint-memo misses);
	// ReplanMemoHits counts triggers whose boundaries came straight from
	// the memo, skipping the DP entirely.
	Replans        int64
	ReplanMemoHits int64
	// CachedPres / CachedUnits / CachedPlans are the plan cache's current
	// entry counts; CachedSortedBytes is the bytes of cached sorted tables
	// those Preprocess memos pin — the per-model input to the cross-variant
	// cache budget.
	CachedPres        int
	CachedUnits       int
	CachedPlans       int
	CachedSortedBytes int64
	// RowCache* mirror the frontend hot-row cache (gather path v2): hit /
	// miss counts on the dense fan-out, entries evicted (budget pressure
	// or epoch staleness), entries installed by publish-time seeding, and
	// the cache's current byte footprint. All zero when the cache is off.
	// Like every field here, they ride the versioned gob admin RPC without
	// a version bump (absent on old peers).
	RowCacheHits    int64
	RowCacheMisses  int64
	RowCacheEvicted int64
	RowCacheSeeded  int64
	RowCacheBytes   int64
}

// SwapReport describes what one Repartition (or initial build) actually
// did: how much of the new epoch was reused versus rebuilt, and how many
// rows were pre-warmed before publish.
type SwapReport struct {
	// Epoch is the epoch number that was built.
	Epoch int64
	// CacheHit is true when the preprocessing output (sorted tables,
	// remap, CDFs) came from the plan cache instead of a fresh sort.
	CacheHit bool
	// ShardsBuilt / ShardsReused count this build's fresh versus
	// carried-over shard services across all tables.
	ShardsBuilt  int
	ShardsReused int
	// WarmedRows is how many hot rows were pre-touched across the fresh
	// shards before the epoch was published (0 when warming is disabled
	// or every shard was reused and therefore already warm).
	WarmedRows int64
}

// Cheap reports whether the swap avoided the expensive work entirely: the
// preprocessing was memoized and no shard service had to be built. The
// repartition policy may throttle cheap swaps on a shorter interval.
func (r SwapReport) Cheap() bool { return r.CacheHit && r.ShardsBuilt == 0 }
