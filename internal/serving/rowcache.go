package serving

import (
	"sync"
	"sync/atomic"
)

// rowCache is the frontend hot-row cache of gather path v2: a per-model,
// fixed-byte-budget map from (table, global sorted row id) to the row's
// embedding vector, consulted in the dense shard's fan-out before
// bucketizing — a hit means the row never leaves the frontend, and at
// CDF-skewed workloads most rows are hits.
//
// Epoch discipline: every entry carries the epoch it was filled under. A
// lookup hits only when the entry's epoch equals the *request's* pinned
// epoch — serving an epoch-N row to an epoch-N request is always correct,
// because epoch N's sorted tables outlive their last pinned request (the
// router drains before close). Entries from any other epoch found during
// a lookup are evicted lazily; fills are accepted only for the live epoch
// (advance flips it at publish time), so in-flight requests of a retiring
// epoch can never poison the cache for the next one. Repartitions remap
// row ids between epochs, which is exactly why cross-epoch hits must
// never happen — the same (table, id) key can name a different row.
//
// The cache has two planes splitting the byte budget in half. The seeded
// plane is a per-epoch hot prefix: the id space is hotness-sorted, so the
// publish-time warm set is literally rows [0, n) of each table, stored as
// one contiguous arena and swapped in atomically — a prefix hit is a
// bounds check and a subslice, no lock, no map, no per-entry header. The
// dynamic plane is a 16-way sharded map filled by misses at serve time,
// each shard evicting FIFO under its slice of the budget. All methods are
// nil-receiver safe, so call sites need no cache-enabled branches.
type rowCache struct {
	live   atomic.Int64 // epoch fills are accepted for
	prefix atomic.Pointer[rowPrefix]
	shards [rowCacheShards]rowCacheShard

	prefixBudget int64

	hits    atomic.Int64
	misses  atomic.Int64
	evicted atomic.Int64
	seeded  atomic.Int64
}

// rowPrefix is the seeded plane: per table, the hottest rows [0, n) of
// one epoch's hotness-sorted id space in a flat arena (row r lives at
// [r*dim, (r+1)*dim)). The whole structure is built privately before
// publish and immutable afterwards, so readers need no synchronization
// beyond the atomic pointer load; it is dropped wholesale when the next
// epoch's prefix swaps in.
type rowPrefix struct {
	epoch  int64
	dim    int64
	tabs   [][]float32
	counts []int64 // rows seeded per table
	bytes  int64
	rows   int64
}

const rowCacheShards = 16

// rowEntryOverhead approximates per-entry bookkeeping bytes (map slot,
// entry header, fifo slot) charged against the budget on top of the
// vector payload.
const rowEntryOverhead = 64

type rowEntry struct {
	epoch int64
	vec   []float32
}

type rowCacheShard struct {
	mu      sync.RWMutex
	entries map[uint64]*rowEntry
	fifo    []uint64 // insertion order; stale keys are skipped on evict
	bytes   int64
	budget  int64
}

// newRowCache creates a cache with the given total byte budget; a
// non-positive budget returns nil (the disabled cache).
func newRowCache(budgetBytes int64) *rowCache {
	if budgetBytes <= 0 {
		return nil
	}
	// The byte budget splits evenly between the planes: seeded-prefix
	// hits are cheaper (lock-free bounds checks), but the warm CDF cut
	// bounds how much prefix the workload can use, and the dynamic plane
	// needs room to catch the tail the cut left out.
	c := &rowCache{prefixBudget: budgetBytes / 2}
	per := (budgetBytes - c.prefixBudget) / rowCacheShards
	if per < rowEntryOverhead {
		per = rowEntryOverhead
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[uint64]*rowEntry)
		c.shards[i].budget = per
	}
	return c
}

// rowKey packs (table, global row id) into one map key. Row ids fit in 48
// bits by construction (MaxFrame alone bounds them far below that).
func rowKey(table int, row int64) uint64 {
	return uint64(table)<<48 ^ uint64(row)&(1<<48-1)
}

// shardOf picks the cache shard for a key (Fibonacci hashing spreads the
// dense low bits of row ids across shards).
func (c *rowCache) shardOf(key uint64) *rowCacheShard {
	return &c.shards[(key*0x9e3779b97f4a7c15)>>60&(rowCacheShards-1)]
}

// get returns the vector cached for (table, row) under epoch, or nil on
// a miss. The returned slice is shared and immutable — an entry's vector
// is allocated once at insert and never written again (eviction only
// drops the map reference), so holding it past the next cache mutation
// is safe, but callers must never write through it. get does not touch
// the hit/miss counters; the predict hot path batches those through note
// once per request instead of contending two atomics per row.
func (c *rowCache) get(epoch int64, table int, row int64) []float32 {
	if c == nil {
		return nil
	}
	// Seeded plane first: at CDF skew almost every hit lands here, and it
	// costs two loads and a bounds check. An epoch mismatch (old requests
	// after a swap, or vice versa) just falls through to the map plane.
	if p := c.prefix.Load(); p != nil && p.epoch == epoch && table < len(p.tabs) && row < p.counts[table] {
		return p.tabs[table][row*p.dim : (row+1)*p.dim]
	}
	key := rowKey(table, row)
	sh := c.shardOf(key)
	sh.mu.RLock()
	e := sh.entries[key]
	sh.mu.RUnlock()
	if e != nil && e.epoch == epoch {
		return e.vec
	}
	if e != nil && e.epoch != c.live.Load() {
		// Lazy eviction: the entry belongs to an epoch that is neither the
		// request's nor the live one — it can never hit again.
		sh.mu.Lock()
		if e2 := sh.entries[key]; e2 != nil && e2.epoch != c.live.Load() && e2.epoch != epoch {
			sh.bytes -= e2.cost()
			delete(sh.entries, key)
			c.evicted.Add(1)
		}
		sh.mu.Unlock()
	}
	return nil
}

// prefixView returns the seeded plane when it matches epoch, else nil.
// The predict hot path hoists this one atomic load (and the epoch check)
// out of its per-row loop; the returned prefix is immutable, so holding
// it for the rest of the request is safe across concurrent swaps.
func (c *rowCache) prefixView(epoch int64) *rowPrefix {
	if c == nil {
		return nil
	}
	if p := c.prefix.Load(); p != nil && p.epoch == epoch {
		return p
	}
	return nil
}

// note adds a predict call's batched hit/miss counts.
func (c *rowCache) note(hits, misses int64) {
	if c == nil {
		return
	}
	if hits != 0 {
		c.hits.Add(hits)
	}
	if misses != 0 {
		c.misses.Add(misses)
	}
}

func (e *rowEntry) cost() int64 {
	return int64(len(e.vec))*4 + rowEntryOverhead
}

// fill inserts (table, row) → vec into the dynamic plane under epoch,
// copying vec and evicting FIFO to stay under budget. Fills for any epoch
// other than the live one are dropped (a retiring epoch's in-flight
// misses must not poison the next epoch's cache). Reports whether the
// entry was inserted (false: stale epoch, or already present).
func (c *rowCache) fill(epoch int64, table int, row int64, vec []float32) bool {
	if c == nil || epoch != c.live.Load() {
		return false
	}
	key := rowKey(table, row)
	sh := c.shardOf(key)
	cost := int64(len(vec))*4 + rowEntryOverhead
	if cost > sh.budget {
		return false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.entries[key]; e != nil {
		if e.epoch == epoch {
			return false // already cached for this epoch
		}
		sh.bytes -= e.cost()
		delete(sh.entries, key)
		c.evicted.Add(1)
	}
	if sh.bytes+cost > sh.budget {
		for sh.bytes+cost > sh.budget && len(sh.fifo) > 0 {
			victim := sh.fifo[0]
			sh.fifo = sh.fifo[1:]
			if e := sh.entries[victim]; e != nil {
				sh.bytes -= e.cost()
				delete(sh.entries, victim)
				c.evicted.Add(1)
			}
		}
	}
	v := make([]float32, len(vec))
	copy(v, vec)
	sh.entries[key] = &rowEntry{epoch: epoch, vec: v}
	sh.fifo = append(sh.fifo, key)
	sh.bytes += cost
	return true
}

// advance flips the live epoch: fills for older epochs are rejected from
// here on, and their entries evict lazily as lookups touch them. Called
// at the end of a plan build, just before the seeding pass, so the new
// epoch publishes with a warm cache.
func (c *rowCache) advance(epoch int64) {
	if c == nil {
		return
	}
	c.live.Store(epoch)
}

// prefixBuilder accumulates one epoch's seed set privately; nothing is
// visible to readers until install swaps the finished prefix in. add
// appends rows to a table's arena — the round-robin seeding order makes
// each table's seeded set exactly the contiguous prefix [0, n) the plane
// requires — and refuses rows past the plane's byte budget.
type prefixBuilder struct {
	c *rowCache
	p *rowPrefix
}

func (c *rowCache) newPrefixBuilder(epoch int64, tables, dim int) *prefixBuilder {
	if c == nil {
		return nil
	}
	return &prefixBuilder{c: c, p: &rowPrefix{
		epoch:  epoch,
		dim:    int64(dim),
		tabs:   make([][]float32, tables),
		counts: make([]int64, tables),
	}}
}

// add seeds the next row of table's prefix; false means the plane's
// budget is exhausted and the caller should stop seeding.
func (b *prefixBuilder) add(table int, vec []float32) bool {
	if b == nil {
		return false
	}
	cost := int64(len(vec)) * 4
	if b.p.bytes+cost > b.c.prefixBudget {
		return false
	}
	b.p.tabs[table] = append(b.p.tabs[table], vec...)
	b.p.counts[table]++
	b.p.bytes += cost
	b.p.rows++
	return true
}

// install publishes the built prefix, retiring the previous epoch's plane
// wholesale (its rows count as evictions).
func (b *prefixBuilder) install() {
	if b == nil {
		return
	}
	if old := b.c.prefix.Swap(b.p); old != nil {
		b.c.evicted.Add(old.rows)
	}
	b.c.seeded.Add(b.p.rows)
}

// clear drops every entry (model shutdown).
func (c *rowCache) clear() {
	if c == nil {
		return
	}
	if old := c.prefix.Swap(nil); old != nil {
		c.evicted.Add(old.rows)
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[uint64]*rowEntry)
		sh.fifo = nil
		sh.bytes = 0
		sh.mu.Unlock()
	}
}

// rowCacheStats is the counter snapshot surfaced through BuildCounters.
type rowCacheStats struct {
	Hits, Misses, Evicted, Seeded, Bytes int64
}

// stats snapshots the cache counters and current byte footprint.
func (c *rowCache) stats() rowCacheStats {
	if c == nil {
		return rowCacheStats{}
	}
	st := rowCacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Evicted: c.evicted.Load(),
		Seeded:  c.seeded.Load(),
	}
	if p := c.prefix.Load(); p != nil {
		st.Bytes += p.bytes
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		st.Bytes += sh.bytes
		sh.mu.RUnlock()
	}
	return st
}
