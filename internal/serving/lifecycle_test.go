package serving

import (
	"context"
	"fmt"
	"math"
	"net/rpc"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/embedding"
	"repro/internal/model"
)

// This file is the model-lifecycle acceptance suite (run under -race via
// make race-repartition): variants are deployed into and drained out of a
// live multi-model frontend while other variants serve under fire, and
// the control plane must never disturb them — epochs, accounting and
// monolith equivalence stay intact, an undeployed variant's shard units
// are fully released (refcounts drained, plan cache cleared), and its
// name is immediately reusable with fresh state.

// lifecycleCfgC is model C's geometry (distinct from the multiFixture
// variants so cross-model mixing would be loud).
func lifecycleCfgC() model.Config {
	cfg := liveConfig()
	cfg.NumTables = 3
	cfg.RowsPerTable = 600
	cfg.BatchSize = 2
	return cfg
}

// TestLifecycleDeployUndeployUnderFire is the ISSUE acceptance test:
// model C is repeatedly deployed, served, and undeployed while 8
// concurrent clients hammer models A and B. A and B must stay untouched
// (epoch pointers identical, replies monolith-equivalent, per-epoch served
// accounting exact), every undeploy must fully release C's shard units
// (epoch AND plan-cache references drained to zero), and C's name must be
// reusable by the next cycle's deploy.
func TestLifecycleDeployUndeployUnderFire(t *testing.T) {
	for _, tc := range []struct {
		name     string
		optsA    BuildOptions
		optsB    BuildOptions
		optsC    BuildOptions
		batching bool
	}{
		{name: "local"},
		{name: "local-batched",
			optsB:    BuildOptions{Batching: &BatcherOptions{MaxBatch: 8, MaxDelay: 200 * time.Microsecond}},
			optsC:    BuildOptions{Batching: &BatcherOptions{MaxBatch: 8, MaxDelay: 200 * time.Microsecond}},
			batching: true},
		{name: "tcp",
			optsA: BuildOptions{Transport: TransportTCP},
			optsB: BuildOptions{Transport: TransportTCP},
			optsC: BuildOptions{Transport: TransportTCP}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			md, monos, reqs := multiFixture(t, tc.optsA, tc.optsB)
			ctrl := md.Controller()
			ldA, _ := md.Deployment("a")
			ldB, _ := md.Deployment("b")
			epochA, epochB := ldA.Table(), ldB.Table()

			cfgC := lifecycleCfgC()
			mC, statsC, genC := buildFixture(t, cfgC)
			monoC := NewMonolith(mC.Clone())
			var reqsC []*PredictRequest
			for i := 0; i < 16; i++ {
				req := makeRequest(cfgC, genC, uint64(i))
				req.Model = "c"
				reqsC = append(reqsC, req)
			}
			wantC := make([][]float32, len(reqsC))
			for i, req := range reqsC {
				var mr PredictReply
				if err := monoC.Predict(bg, req, &mr); err != nil {
					t.Fatal(err)
				}
				wantC[i] = mr.Probs
			}

			want := make([][]float32, len(reqs["b"]))
			for i, req := range reqs["b"] {
				var mr PredictReply
				if err := monos["b"].Predict(bg, req, &mr); err != nil {
					t.Fatal(err)
				}
				want[i] = mr.Probs
			}
			wantA := make([][]float32, len(reqs["a"]))
			for i, req := range reqs["a"] {
				var mr PredictReply
				if err := monos["a"].Predict(bg, req, &mr); err != nil {
					t.Fatal(err)
				}
				wantA[i] = mr.Probs
			}

			// 8 clients hammer A and B (4 each) for the whole lifecycle
			// storm.
			const clients = 8
			var stop atomic.Bool
			var wg sync.WaitGroup
			errc := make(chan error, clients)
			var servedA, servedB atomic.Int64
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					name, expect, served := "a", wantA, &servedA
					if c%2 == 1 {
						name, expect, served = "b", want, &servedB
					}
					for q := c; !stop.Load(); q = (q + 1) % len(expect) {
						var reply PredictReply
						if err := md.Predict(bg, reqs[name][q], &reply); err != nil {
							errc <- fmt.Errorf("client %d model %s query %d: %w", c, name, q, err)
							return
						}
						for j := range expect[q] {
							if math.Abs(float64(reply.Probs[j]-expect[q][j])) > 1e-4 {
								errc <- fmt.Errorf("client %d model %s query %d input %d: %v != monolith %v (cross-model mix?)",
									c, name, q, j, reply.Probs[j], expect[q][j])
								return
							}
						}
						served.Add(1)
					}
				}(c)
			}

			fail := func(format string, args ...any) {
				stop.Store(true)
				wg.Wait()
				t.Fatalf(format, args...)
			}

			// Deploy/undeploy C under fire, several full cycles: the name
			// must be reusable every time.
			const cycles = 3
			for cycle := 0; cycle < cycles; cycle++ {
				err := ctrl.Deploy(bg, ModelSpec{
					Name: "c", Model: mC, Stats: statsC,
					Boundaries: []int64{100, 400, cfgC.RowsPerTable},
					Options:    tc.optsC,
				})
				if err != nil {
					fail("cycle %d: deploy c: %v", cycle, err)
				}
				ldC, ok := md.Deployment("c")
				if !ok {
					fail("cycle %d: c missing after deploy", cycle)
				}
				if got := md.Epoch("c"); got != 0 {
					fail("cycle %d: redeployed c starts at epoch %d, want 0 (stale router slot?)", cycle, got)
				}
				if got := md.Router.SwapsFor("c"); got != 0 {
					fail("cycle %d: redeployed c has %d swaps, want 0", cycle, got)
				}
				rtC := ldC.Table()
				for i, req := range reqsC {
					var reply PredictReply
					if err := md.Predict(bg, req, &reply); err != nil {
						fail("cycle %d: c query %d: %v", cycle, i, err)
					}
					for j := range wantC[i] {
						if math.Abs(float64(reply.Probs[j]-wantC[i][j])) > 1e-4 {
							fail("cycle %d: c query %d input %d: %v != monolith %v", cycle, i, j, reply.Probs[j], wantC[i][j])
						}
					}
				}
				ctxUndeploy, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				err = ctrl.Undeploy(ctxUndeploy, "c")
				cancel()
				if err != nil {
					fail("cycle %d: undeploy c: %v", cycle, err)
				}
				// Fully released: no epoch reference, no plan-cache
				// reference — every shard unit of the retired variant is
				// torn down.
				for tb := 0; tb < cfgC.NumTables; tb++ {
					for s := 0; s < rtC.NumShards(tb); s++ {
						if refs := rtC.ShardRefs(tb, s); refs != 0 {
							fail("cycle %d: t%d s%d still holds %d refs after undeploy (plan cache not cleared?)", cycle, tb, s, refs)
						}
					}
				}
				if rt := md.Router.LoadModel("c"); rt != nil {
					fail("cycle %d: router still serves c after undeploy", cycle)
				}
				if got := md.Epoch("c"); got != -1 {
					fail("cycle %d: undeployed c reports epoch %d", cycle, got)
				}
				var reply PredictReply
				if err := md.Predict(bg, reqsC[0], &reply); err == nil || !strings.Contains(err.Error(), `no model "c"`) {
					fail("cycle %d: undeployed c request error = %v", cycle, err)
				}
			}

			// Keep A and B under fire until both demonstrably served
			// through the storm.
			waitUntil := time.Now().Add(10 * time.Second)
			for (servedA.Load() < 32 || servedB.Load() < 32) && time.Now().Before(waitUntil) && len(errc) == 0 {
				time.Sleep(time.Millisecond)
			}
			stop.Store(true)
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			// A and B never moved: same epoch tables, zero swaps, and
			// every dispatch landed in their single epoch.
			if ldA.Table() != epochA || ldB.Table() != epochB {
				t.Fatal("lifecycle of model c moved a surviving model's epoch table")
			}
			if md.Router.SwapsFor("a") != 0 || md.Router.SwapsFor("b") != 0 {
				t.Fatalf("surviving models swapped: a=%d b=%d", md.Router.SwapsFor("a"), md.Router.SwapsFor("b"))
			}
			wantServedB := servedB.Load()
			if tc.batching {
				wantServedB = ldB.Batcher.Batches.Value()
			}
			if got := epochB.Served.Value(); got != wantServedB {
				t.Fatalf("model b epoch-0 served = %d, want %d", got, wantServedB)
			}
			if got := epochA.Served.Value(); got != servedA.Load() {
				t.Fatalf("model a epoch-0 served = %d, want %d", got, servedA.Load())
			}
			if servedA.Load() == 0 || servedB.Load() == 0 {
				t.Fatal("a or b served nothing; isolation untested")
			}
		})
	}
}

// TestLifecycleRouterUnregister pins the router's runtime-unregistration
// semantics: tombstone-free removal, drain of the final epoch, immediate
// name reuse with a fresh slot, and errors on unknown names.
func TestLifecycleRouterUnregister(t *testing.T) {
	cfg := liveConfig()
	r := NewMultiRouter()
	rtA, err := NewRoutingTable(0, cfg, nil, emptyPlan(cfg), emptyClients(cfg))
	if err != nil {
		t.Fatal(err)
	}
	rtB, err := NewRoutingTable(0, cfg, nil, emptyPlan(cfg), emptyClients(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Register("a", rtA); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("b", rtB); err != nil {
		t.Fatal(err)
	}

	// Pin A, unregister it: the final table must still drain the pinned
	// request out before teardown.
	pinned, err := r.AcquireModel("a")
	if err != nil {
		t.Fatal(err)
	}
	final, err := r.Unregister("a")
	if err != nil {
		t.Fatal(err)
	}
	if final != rtA {
		t.Fatal("unregister returned wrong final table")
	}
	if _, err := r.AcquireModel("a"); err == nil {
		t.Fatal("acquire of unregistered model succeeded")
	}
	if r.LoadModel("a") != nil {
		t.Fatal("unregistered model still loadable")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if err := final.Drain(ctx); err == nil {
		t.Fatal("drain finished with a request still pinned")
	}
	cancel()
	pinned.release()
	if err := final.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// B was never disturbed; A's name is immediately reusable and its
	// slot state is fresh.
	if r.LoadModel("b") != rtB {
		t.Fatal("unregister of a disturbed b")
	}
	rtA2, err := NewRoutingTable(0, cfg, nil, emptyPlan(cfg), emptyClients(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Register("a", rtA2); err != nil {
		t.Fatalf("name reuse after unregister: %v", err)
	}
	if r.SwapsFor("a") != 0 {
		t.Fatalf("reused name inherited %d swaps", r.SwapsFor("a"))
	}
	if _, err := r.Unregister("ghost"); err == nil {
		t.Fatal("unregister of unknown model succeeded")
	}
}

// TestLifecycleAdminRPC drives the whole lifecycle over the wire: the
// versioned admin service rides the predict frontend's listener, rejects
// foreign API versions, deploys a spec-shipped variant, snapshots status,
// drains the variant back out, and allows immediate name reuse.
func TestLifecycleAdminRPC(t *testing.T) {
	md, monos, reqs := multiFixture(t, BuildOptions{}, BuildOptions{})
	addr, err := md.ExportPredict("Frontend")
	if err != nil {
		t.Fatal(err)
	}
	admin, err := DialAdmin(addr, "Frontend")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	predict, err := DialPredict(addr, "Frontend")
	if err != nil {
		t.Fatal(err)
	}
	defer predict.Close()

	// A request from a different control-plane generation is refused.
	raw, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var verReply AdminStatusReply
	err = raw.Call(AdminServiceName("Frontend")+".Status", &AdminStatusRequest{APIVersion: 99}, &verReply)
	if err == nil || !strings.Contains(err.Error(), "version 99 not supported") {
		t.Fatalf("foreign API version error = %v", err)
	}

	sts, err := admin.Status(bg, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 || sts[0].Model != "a" || sts[1].Model != "b" {
		t.Fatalf("initial status = %+v", sts)
	}
	if sts[0].Counters.CachedSortedBytes <= 0 {
		t.Fatalf("status reports %d cached sorted-table bytes, want > 0", sts[0].Counters.CachedSortedBytes)
	}

	// Deploy model C from its wire spec (config + seed + window counts)
	// and check it serves exactly as a locally built equivalent.
	cfgC := lifecycleCfgC()
	const seedC = 123 // buildFixture's model seed
	mC, statsC, genC := buildFixture(t, cfgC)
	monoC := NewMonolith(mC.Clone())
	counts := make([][]int64, len(statsC))
	for tb, st := range statsC {
		counts[tb] = st.Counts
	}
	var depReply AdminDeployReply
	err = admin.Deploy(bg, &AdminDeployRequest{
		Name: "c", Config: cfgC, Seed: seedC,
		Counts: counts, Boundaries: []int64{100, 400, cfgC.RowsPerTable},
	}, &depReply)
	if err != nil {
		t.Fatal(err)
	}
	if depReply.Model != "c" || depReply.Epoch != 0 || depReply.Shards != 3 {
		t.Fatalf("deploy reply = %+v", depReply)
	}
	// Duplicate deploys are refused.
	if err := admin.Deploy(bg, &AdminDeployRequest{
		Name: "c", Config: cfgC, Seed: seedC,
		Counts: counts, Boundaries: []int64{100, 400, cfgC.RowsPerTable},
	}, &depReply); err == nil || !strings.Contains(err.Error(), "already deployed") {
		t.Fatalf("duplicate deploy error = %v", err)
	}

	req := makeRequest(cfgC, genC, 7)
	req.Model = "c"
	var got, want PredictReply
	if err := predict.Predict(bg, req, &got); err != nil {
		t.Fatalf("predict on wire-deployed model: %v", err)
	}
	if err := monoC.Predict(bg, req, &want); err != nil {
		t.Fatal(err)
	}
	for j := range want.Probs {
		if math.Abs(float64(got.Probs[j]-want.Probs[j])) > 1e-4 {
			t.Fatalf("wire-deployed model input %d: %v != monolith %v", j, got.Probs[j], want.Probs[j])
		}
	}
	// The existing variants still serve, monolith-equivalent.
	for _, name := range []string{"a", "b"} {
		var gotN, wantN PredictReply
		if err := predict.Predict(bg, reqs[name][0], &gotN); err != nil {
			t.Fatalf("model %s after deploy of c: %v", name, err)
		}
		if err := monos[name].Predict(bg, reqs[name][0], &wantN); err != nil {
			t.Fatal(err)
		}
		for j := range wantN.Probs {
			if math.Abs(float64(gotN.Probs[j]-wantN.Probs[j])) > 1e-4 {
				t.Fatalf("model %s disturbed by deploy of c", name)
			}
		}
	}

	// Undeploy over the wire; the name disappears from status and the
	// frontend, and is immediately reusable.
	undep, err := admin.Undeploy(bg, "c")
	if err != nil {
		t.Fatal(err)
	}
	if undep.Model != "c" {
		t.Fatalf("undeploy reply = %+v", undep)
	}
	if _, err := admin.Status(bg, "c"); err == nil || !strings.Contains(err.Error(), `no model "c"`) {
		t.Fatalf("status of undeployed model = %v", err)
	}
	if err := predict.Predict(bg, req, &got); err == nil || !strings.Contains(err.Error(), `no model "c"`) {
		t.Fatalf("predict on undeployed model = %v", err)
	}
	if err := admin.Deploy(bg, &AdminDeployRequest{
		Name: "c", Config: cfgC, Seed: seedC,
		Counts: counts, Boundaries: []int64{100, 400, cfgC.RowsPerTable},
	}, &depReply); err != nil {
		t.Fatalf("name reuse over the wire: %v", err)
	}
	sts, err = admin.Status(bg, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 || sts[2].Model != "c" || sts[2].Swaps != 0 {
		t.Fatalf("final status = %+v", sts)
	}
}

// TestLifecycleUndeployDrainTimeout pins the drain-bound contract: an
// undeploy whose final epoch cannot drain within ctx returns the drain
// error, the model is still unpublished and unregistered (requests fail,
// the name is reusable), and the pinned epoch is leaked rather than closed
// under the in-flight request.
func TestLifecycleUndeployDrainTimeout(t *testing.T) {
	md, _, reqs := multiFixture(t, BuildOptions{}, BuildOptions{})
	ctrl := md.Controller()
	pinned, err := md.Router.AcquireModel("b")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := ctrl.Undeploy(ctx, "b"); err == nil || !strings.Contains(err.Error(), "draining epoch") {
		pinned.release()
		t.Fatalf("undeploy with pinned epoch = %v, want drain error", err)
	}
	var reply PredictReply
	if err := md.Predict(bg, reqs["b"][0], &reply); err == nil || !strings.Contains(err.Error(), `no model "b"`) {
		t.Fatalf("request after failed-drain undeploy = %v", err)
	}
	// The in-flight request still completes against its pinned epoch
	// (the table was leaked, not closed under it).
	if pinned.Served == nil {
		t.Fatal("pinned table lost state")
	}
	pinned.release()
	if rt := md.Router.LoadModel("b"); rt != nil {
		t.Fatal("model b still registered after undeploy")
	}
	// Undeploy deliberately leaked the undrainable epoch; now that the
	// pin is gone it drains instantly, so reclaim its shard workers.
	if err := pinned.Drain(bg); err != nil {
		t.Fatal(err)
	}
	pinned.Close()
}

// TestLifecycleAutoscalerBinding checks the controller keeps the
// autoscaler's per-variant loops in step with the served set: Deploy
// starts a repartition loop (and opens the profiling window), Undeploy
// stops it and forgets the variant's policy state so a reused name starts
// clean.
func TestLifecycleAutoscalerBinding(t *testing.T) {
	md, _, _ := multiFixture(t, BuildOptions{}, BuildOptions{})
	ctrl := md.Controller()
	policy := &cluster.RepartitionPolicy{MinSkew: 0.5, MinRequests: 0, MinInterval: time.Hour}
	as := &LiveAutoscaler{}
	ctrl.Bind(&AutoscalerBinding{
		Autoscaler: as,
		Policy:     policy,
		Replan: func(model string, stats []*embedding.AccessStats) ([]int64, error) {
			return nil, fmt.Errorf("not triggered in this test")
		},
	})
	if got := len(as.Repartitions); got != 2 {
		t.Fatalf("binding wired %d loops, want 2 (a, b)", got)
	}

	cfgC := lifecycleCfgC()
	mC, statsC, _ := buildFixture(t, cfgC)
	if err := ctrl.Deploy(bg, ModelSpec{
		Name: "c", Model: mC, Stats: statsC,
		Boundaries: []int64{100, 400, cfgC.RowsPerTable},
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(as.Repartitions); got != 3 {
		t.Fatalf("deploy wired %d loops, want 3", got)
	}
	ldC, _ := md.Deployment("c")
	if ldC.SnapshotProfile() == nil {
		t.Fatal("deploy did not open the variant's profiling window")
	}

	// Consume C's policy interval, then undeploy: the loop stops and the
	// policy state is forgotten, so a redeployed "c" can fire immediately.
	now := time.Now()
	if !policy.ShouldRepartitionModel("c", 0.1, 10, now) {
		t.Fatal("policy should fire for c")
	}
	if policy.ShouldRepartitionModel("c", 0.1, 10, now.Add(time.Minute)) {
		t.Fatal("policy re-fired inside c's interval")
	}
	if err := ctrl.Undeploy(bg, "c"); err != nil {
		t.Fatal(err)
	}
	if got := len(as.Repartitions); got != 2 {
		t.Fatalf("undeploy left %d loops, want 2", got)
	}
	if !policy.ShouldRepartitionModel("c", 0.1, 10, now.Add(2*time.Minute)) {
		t.Fatal("undeploy did not forget c's policy state; a reused name inherits the retired model's throttle")
	}
}

// TestLifecycleDeployDeadlineNotPublished pins the deploy-deadline
// contract: a deploy whose ctx expired during the build is torn down
// rather than published — the name stays free, so the timed-out client's
// retry succeeds instead of hitting "already deployed".
func TestLifecycleDeployDeadlineNotPublished(t *testing.T) {
	md, _, _ := multiFixture(t, BuildOptions{}, BuildOptions{})
	ctrl := md.Controller()
	cfgC := lifecycleCfgC()
	mC, statsC, _ := buildFixture(t, cfgC)
	spec := ModelSpec{Name: "c", Model: mC, Stats: statsC,
		Boundaries: []int64{100, 400, cfgC.RowsPerTable}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expires "mid-build" from the controller's point of view
	if err := ctrl.Deploy(ctx, spec); err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("expired deploy = %v, want context error", err)
	}
	if _, ok := md.Deployment("c"); ok {
		t.Fatal("expired deploy was published")
	}
	if md.Router.LoadModel("c") != nil {
		t.Fatal("expired deploy left a router slot behind")
	}
	// The retry succeeds: the failed deploy freed everything.
	if err := ctrl.Deploy(bg, spec); err != nil {
		t.Fatalf("retry after expired deploy: %v", err)
	}
	if err := ctrl.Undeploy(bg, "c"); err != nil {
		t.Fatal(err)
	}
}

// TestLifecycleRebindPreservesLiveState pins the rebind contract: swapping
// a controller binding over live models must not discard their
// accumulated profiling windows and must not forget their policy throttle
// state (only Undeploy retires state).
func TestLifecycleRebindPreservesLiveState(t *testing.T) {
	md, _, reqs := multiFixture(t, BuildOptions{}, BuildOptions{})
	ctrl := md.Controller()
	policy := &cluster.RepartitionPolicy{MinSkew: 0.5, MinRequests: 0, MinInterval: time.Hour}
	replan := func(string, []*embedding.AccessStats) ([]int64, error) {
		return nil, fmt.Errorf("not triggered in this test")
	}
	ctrl.Bind(&AutoscalerBinding{Autoscaler: &LiveAutoscaler{}, Policy: policy, Replan: replan})

	// Accumulate profile into a's window and consume a's policy interval.
	ldA, _ := md.Deployment("a")
	for i := 0; i < 4; i++ {
		var reply PredictReply
		if err := md.Predict(bg, reqs["a"][i], &reply); err != nil {
			t.Fatal(err)
		}
	}
	now := time.Now()
	if !policy.ShouldRepartitionModel("a", 0.1, 10, now) {
		t.Fatal("policy should fire for a")
	}

	// Rebind (same policy, fresh autoscaler): the window keeps its
	// accumulated counts and the throttle survives.
	ctrl.Bind(&AutoscalerBinding{Autoscaler: &LiveAutoscaler{}, Policy: policy, Replan: replan})
	if policy.ShouldRepartitionModel("a", 0.1, 10, now.Add(time.Minute)) {
		t.Fatal("rebind forgot a live model's firing time; it re-fired inside MinInterval")
	}
	stats := ldA.SnapshotProfile()
	if stats == nil {
		t.Fatal("rebind closed the profiling window")
	}
	var total int64
	for _, st := range stats {
		total += st.Total
	}
	if total == 0 {
		t.Fatal("rebind discarded the accumulated profile")
	}
	// Undeploy DOES retire the state (the reused-name contract).
	if err := ctrl.Undeploy(bg, "a"); err != nil {
		t.Fatal(err)
	}
	if !policy.ShouldRepartitionModel("a", 0.1, 10, now.Add(2*time.Minute)) {
		t.Fatal("undeploy did not forget the retired model's policy state")
	}
}

// TestLifecycleOfferedQPSMeterRemoved checks the per-model frontend meter
// is created at deploy and dropped at undeploy — a retired model's metrics
// must not leak.
func TestLifecycleOfferedQPSMeterRemoved(t *testing.T) {
	md, _, reqs := multiFixture(t, BuildOptions{}, BuildOptions{})
	var reply PredictReply
	if err := md.Predict(bg, reqs["b"][0], &reply); err != nil {
		t.Fatal(err)
	}
	if md.OfferedQPS("b") <= 0 {
		t.Fatal("offered-QPS meter did not record the dispatch")
	}
	if err := md.Controller().Undeploy(bg, "b"); err != nil {
		t.Fatal(err)
	}
	if got := md.OfferedQPS("b"); got != 0 {
		t.Fatalf("retired model still meters %.1f qps", got)
	}
	if _, ok := md.snapshot().meters["b"]; ok {
		t.Fatal("retired model's meter still registered")
	}
}

// TestReplanMemoSkipsRepartitionDP checks the fingerprint-keyed replan
// memo: a profiling window already replanned recently returns its DP
// boundaries without invoking the planner, a changed window replans, and
// the memo ages out with the plan cache's epoch eviction.
func TestReplanMemoSkipsRepartitionDP(t *testing.T) {
	cfg := liveConfig()
	m, stats, _ := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{50, 200, cfg.RowsPerTable}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()

	var calls int
	replan := func([]*embedding.AccessStats) ([]int64, error) {
		calls++
		return []int64{80, 300, cfg.RowsPerTable}, nil
	}
	b1, err := ld.ReplanMemo(stats, replan)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ld.ReplanMemo(stats, replan)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("replan ran %d times for one fingerprint, want 1", calls)
	}
	if len(b1) != 3 || len(b2) != 3 || b2[0] != 80 {
		t.Fatalf("memoized boundaries = %v / %v", b1, b2)
	}
	// The memo hands out copies: mutating a result must not poison it.
	b2[0] = 999
	b3, err := ld.ReplanMemo(stats, replan)
	if err != nil {
		t.Fatal(err)
	}
	if b3[0] != 80 {
		t.Fatalf("memo poisoned by caller mutation: %v", b3)
	}
	c := ld.BuildCounters()
	if c.Replans != 1 || c.ReplanMemoHits != 2 {
		t.Fatalf("counters = %d replans / %d hits, want 1 / 2", c.Replans, c.ReplanMemoHits)
	}
	if c.CachedPlans != 1 {
		t.Fatalf("cached plans = %d, want 1", c.CachedPlans)
	}

	// A different window replans.
	fresh := driftedStats(t, cfg, 111, 5)
	if _, err := ld.ReplanMemo(fresh, replan); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("replan ran %d times across two fingerprints, want 2", calls)
	}

	// The memo ages with the plan cache: after PlanCacheEpochs epochs of
	// swaps under other windows, the original fingerprint must re-replan.
	for i := 0; i < DefaultPlanCacheEpochs+1; i++ {
		drift := driftedStats(t, cfg, int64(200+i*37), uint64(10+i))
		if err := ld.Repartition(bg, drift, []int64{60, 250, cfg.RowsPerTable}); err != nil {
			t.Fatal(err)
		}
	}
	calls = 0
	if _, err := ld.ReplanMemo(stats, replan); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("evicted fingerprint did not replan (calls = %d)", calls)
	}
}

// TestLifecycleStatusSnapshot sanity-checks the control-plane snapshot
// fields against the live deployment.
func TestLifecycleStatusSnapshot(t *testing.T) {
	md, _, reqs := multiFixture(t, BuildOptions{}, BuildOptions{})
	for i := 0; i < 5; i++ {
		var reply PredictReply
		if err := md.Predict(bg, reqs["a"][i], &reply); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := md.Controller().ModelStatus("a")
	if !ok {
		t.Fatal("status missing model a")
	}
	if st.Model != "a" || st.Epoch != 0 || st.Swaps != 0 {
		t.Fatalf("status = %+v", st)
	}
	if st.Served != 5 {
		t.Fatalf("status served = %d, want 5", st.Served)
	}
	if st.Shards != 3 {
		t.Fatalf("status shards = %d, want 3", st.Shards)
	}
	if st.OfferedQPS <= 0 {
		t.Fatal("status offered qps not attributed")
	}
	if st.Counters.CachedSortedBytes <= 0 {
		t.Fatal("status does not account cached sorted-table bytes")
	}
	if _, ok := md.Controller().ModelStatus("ghost"); ok {
		t.Fatal("status invented a model")
	}
}
