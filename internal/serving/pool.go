package serving

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/embedding"
)

// ReplicaPool load-balances gather calls across replica clients in round
// robin — the role Linkerd plays in the paper's deployment. Replicas can
// be added and removed at runtime, which is how the live autoscaler scales
// a shard's microservice in and out.
//
// The pool also carries the serving layer's fault-injection hooks, used by
// the scenario harness (internal/scenario) to rehearse failures against a
// live deployment: KillReplica marks one replica dead — calls round-robined
// onto it fail like a crashed pod and the request-level failover retries
// the survivors — and InjectDelay slows every gather through the pool by a
// fixed latency, modeling a degraded node.
type ReplicaPool struct {
	mu       sync.RWMutex
	replicas []GatherClient
	dead     []bool // dead[i]: replica i is fault-injected down
	next     atomic.Uint64
	delay    atomic.Int64 // injected per-gather latency, nanoseconds
}

// NewReplicaPool creates a pool over the given replicas.
func NewReplicaPool(replicas ...GatherClient) *ReplicaPool {
	p := &ReplicaPool{}
	p.replicas = append(p.replicas, replicas...)
	return p
}

// Gather dispatches to the next replica (round robin). On failure it
// retries the remaining replicas once each — the request-level failover a
// service mesh performs when a pod dies mid-flight — and returns the last
// error only if every replica fails. A canceled context stops the
// failover loop immediately.
func (p *ReplicaPool) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	p.mu.RLock()
	n := len(p.replicas)
	if n == 0 {
		p.mu.RUnlock()
		return fmt.Errorf("serving: replica pool is empty")
	}
	replicas := make([]GatherClient, n)
	copy(replicas, p.replicas)
	dead := make([]bool, n)
	copy(dead, p.dead)
	p.mu.RUnlock()

	if delay := time.Duration(p.delay.Load()); delay > 0 {
		// Injected shard slowness (scenario fault hook): one fixed stall
		// per gather, bounded by the caller's deadline.
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}

	start := p.next.Add(1)
	var lastErr error
	for attempt := 0; attempt < n; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		// A failed attempt may have left partial fields behind; reset so
		// the next replica's reply is never contaminated by the last one.
		if attempt > 0 {
			*reply = GatherReply{}
		}
		i := (start + uint64(attempt)) % uint64(n)
		if dead[i] {
			// A killed replica behaves like a crashed pod: the dispatch
			// fails immediately and the loop fails over to the survivors.
			lastErr = fmt.Errorf("serving: replica %d is down (fault injection)", i)
			continue
		}
		if err := replicas[i].Gather(ctx, req, reply); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("serving: all %d replicas failed: %w", n, lastErr)
}

// Add appends a replica to the rotation.
func (p *ReplicaPool) Add(c GatherClient) {
	p.mu.Lock()
	p.replicas = append(p.replicas, c)
	if len(p.dead) > 0 {
		p.dead = append(p.dead, false)
	}
	p.mu.Unlock()
}

// Remove drops the most recently added replica and returns it (nil when
// the pool would become empty — a shard always keeps one replica).
func (p *ReplicaPool) Remove() GatherClient {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.replicas) <= 1 {
		return nil
	}
	c := p.replicas[len(p.replicas)-1]
	p.replicas = p.replicas[:len(p.replicas)-1]
	if len(p.dead) > len(p.replicas) {
		p.dead = p.dead[:len(p.replicas)]
	}
	return c
}

// Size returns the replica count.
func (p *ReplicaPool) Size() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.replicas)
}

// Live returns the count of replicas not marked dead by fault injection.
func (p *ReplicaPool) Live() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	live := len(p.replicas)
	for _, d := range p.dead {
		if d {
			live--
		}
	}
	return live
}

// KillReplica is the scenario fault hook for a crashed pod: replica i
// stays in the rotation but every call routed to it fails immediately, so
// the pool's request-level failover carries its share of traffic to the
// survivors. It reports whether i addressed a replica.
func (p *ReplicaPool) KillReplica(i int) bool {
	return p.setDead(i, true)
}

// ReviveReplica clears a KillReplica injection.
func (p *ReplicaPool) ReviveReplica(i int) bool {
	return p.setDead(i, false)
}

func (p *ReplicaPool) setDead(i int, dead bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.replicas) {
		return false
	}
	if len(p.dead) < len(p.replicas) {
		p.dead = append(p.dead, make([]bool, len(p.replicas)-len(p.dead))...)
	}
	p.dead[i] = dead
	return true
}

// InjectDelay is the scenario fault hook for a degraded node: every
// subsequent gather through the pool stalls d before dispatch (0 removes
// the injection). The stall honors the caller's context deadline.
func (p *ReplicaPool) InjectDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.delay.Store(int64(d))
}

// InjectedDelay returns the current injected per-gather latency.
func (p *ReplicaPool) InjectedDelay() time.Duration {
	return time.Duration(p.delay.Load())
}

var _ GatherClient = (*ReplicaPool)(nil)

// PredictPool round-robins predict calls across dense-shard replicas with
// the same one-retry failover ReplicaPool performs for gathers.
type PredictPool struct {
	mu       sync.RWMutex
	replicas []PredictClient
	next     atomic.Uint64
}

// NewPredictPool creates a pool over the given replicas.
func NewPredictPool(replicas ...PredictClient) *PredictPool {
	p := &PredictPool{}
	p.replicas = append(p.replicas, replicas...)
	return p
}

// Predict dispatches to the next replica (round robin), failing over to
// the remaining replicas once each before reporting the last error.
func (p *PredictPool) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	p.mu.RLock()
	n := len(p.replicas)
	if n == 0 {
		p.mu.RUnlock()
		return fmt.Errorf("serving: predict pool is empty")
	}
	replicas := make([]PredictClient, n)
	copy(replicas, p.replicas)
	p.mu.RUnlock()

	start := p.next.Add(1)
	var lastErr error
	for attempt := 0; attempt < n; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		if attempt > 0 {
			*reply = PredictReply{}
		}
		c := replicas[(start+uint64(attempt))%uint64(n)]
		if err := c.Predict(ctx, req, reply); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("serving: all %d predict replicas failed: %w", n, lastErr)
}

// Add appends a replica.
func (p *PredictPool) Add(c PredictClient) {
	p.mu.Lock()
	p.replicas = append(p.replicas, c)
	p.mu.Unlock()
}

// Size returns the replica count.
func (p *PredictPool) Size() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.replicas)
}

var _ PredictClient = (*PredictPool)(nil)

// AutoscaledShard couples a shard replica pool with its HPA-style target:
// scale out when offered per-replica QPS exceeds QPSMax, scale in when it
// falls well below (Sec. IV-D's throughput-centric sparse-shard policy).
type AutoscaledShard struct {
	Name string
	// Model names the DLRM variant the shard belongs to in a multi-model
	// deployment (informational; empty for single-model deployments). The
	// OfferedQPS callback receives Name, so per-model load attribution
	// goes through the shard's name/model pair.
	Model  string
	Pool   *ReplicaPool
	QPSMax float64
	// Spawn creates one more replica service for the shard.
	Spawn func() (GatherClient, error)
	// MaxReplicas caps scale-out (0 = unlimited).
	MaxReplicas int
}

// ModelRepartition is one variant's entry in a multi-model autoscaler: the
// variant's deployment, its staleness policy and its replanner. Each entry
// is evaluated independently every control period, so variants repartition
// on independent cadences — a swap of one never gates, drains or delays
// another's.
type ModelRepartition struct {
	// Model names the variant (for policy state and callbacks; defaults
	// to the deployment's own model name).
	Model string
	// Deployment is the variant's live deployment (from
	// MultiDeployment.Deployment or BuildElastic).
	Deployment *LiveDeployment
	// Policy decides when this variant's utility skew justifies a swap.
	// Policies may be shared across variants: firing state is kept per
	// model inside the policy.
	Policy *cluster.RepartitionPolicy
	// Replan maps the variant's freshly profiled window to new shard
	// boundaries.
	Replan func(stats []*embedding.AccessStats) ([]int64, error)
	// OnRepartition, when set, observes every triggered swap of this
	// variant (retired epoch, error if the swap failed).
	OnRepartition func(model string, retired int64, err error)
}

// LiveAutoscaler runs a background control loop over shard pools — an
// in-process stand-in for the Kubernetes HPA controller, used by the live
// serving example. Besides replica scaling it can own the live
// repartition trigger: when the deployment's per-shard utility skew
// (Fig. 14) exceeds the policy threshold, it re-plans and swaps the
// partition epoch while traffic keeps flowing.
//
// Shards and Repartitions may be set directly before Start; once the loop
// is running, mutate them through the Add/Set/Remove methods — that is how
// the serving control plane starts and stops per-variant loops as models
// are deployed into and drained out of a live frontend (Controller.Bind).
type LiveAutoscaler struct {
	Shards   []*AutoscaledShard
	Interval time.Duration
	// OfferedQPS reports the current aggregate load directed at a shard
	// name; typically wired to the frontend's QPS meter.
	OfferedQPS func(name string) float64
	// OfferedModelQPS, when set, attributes load per DLRM variant: a
	// shard whose Model field is set scales on its own variant's offered
	// QPS (typically a per-model frontend meter split on
	// PredictRequest.Model) instead of the aggregate OfferedQPS — so one
	// variant's traffic spike never scales another variant's pools.
	OfferedModelQPS func(model string) float64

	// Deployment, when set together with RepartitionPolicy and Replan,
	// enables the skew-triggered live repartition loop for a single-model
	// deployment. Multi-model deployments use Repartitions instead.
	Deployment *LiveDeployment
	// RepartitionPolicy decides when a utility skew justifies a swap.
	RepartitionPolicy *cluster.RepartitionPolicy
	// Replan maps a freshly profiled window to new shard boundaries
	// (typically the DP partitioner over the new CDF).
	Replan func(stats []*embedding.AccessStats) ([]int64, error)
	// OnRepartition, when set, observes every triggered swap (epoch that
	// was retired, error if the swap failed).
	OnRepartition func(retired int64, err error)

	// Repartitions holds one independent repartition loop per served
	// model: every control period each variant's skew is evaluated against
	// its own policy, so variants swap plans on independent cadences.
	Repartitions []*ModelRepartition

	// mu guards Shards and Repartitions once the loop runs; the step loop
	// snapshots both under it and evaluates lock-free, so a lifecycle
	// operation adding or removing a variant's loops never deadlocks
	// against an in-flight evaluation.
	mu   sync.Mutex
	stop chan struct{}
	wg   sync.WaitGroup
}

// AddRepartition starts a per-variant repartition loop at runtime (the
// deploy half of the model lifecycle).
func (a *LiveAutoscaler) AddRepartition(mr *ModelRepartition) {
	if mr == nil {
		return
	}
	a.mu.Lock()
	a.Repartitions = append(a.Repartitions, mr)
	a.mu.Unlock()
}

// RemoveRepartition stops the named variant's repartition loop (the
// undeploy half). An evaluation already in flight finishes — harmlessly,
// since a retired model's swap fails fast — but no further ticks evaluate
// the variant.
func (a *LiveAutoscaler) RemoveRepartition(model string) {
	a.mu.Lock()
	keep := a.Repartitions[:0]
	for _, mr := range a.Repartitions {
		name := mr.Model
		if name == "" && mr.Deployment != nil {
			name = mr.Deployment.Model()
		}
		if name != model {
			keep = append(keep, mr)
		}
	}
	a.Repartitions = keep
	a.mu.Unlock()
}

// SetModelShards replaces the named variant's replica-scaling entries —
// called at deploy and after every epoch swap so the scaling loop always
// targets the pools that are actually serving.
func (a *LiveAutoscaler) SetModelShards(model string, shards ...*AutoscaledShard) {
	a.mu.Lock()
	keep := a.Shards[:0]
	for _, s := range a.Shards {
		if s.Model != model {
			keep = append(keep, s)
		}
	}
	a.Shards = append(keep, shards...)
	a.mu.Unlock()
}

// RemoveModelShards drops the named variant's replica-scaling entries.
func (a *LiveAutoscaler) RemoveModelShards(model string) {
	a.SetModelShards(model)
}

// Start launches the control loop.
func (a *LiveAutoscaler) Start() {
	if a.Interval <= 0 {
		a.Interval = time.Second
	}
	a.stop = make(chan struct{})
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		ticker := time.NewTicker(a.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-ticker.C:
				a.step()
			}
		}
	}()
}

// step evaluates every shard once (exported for deterministic tests via
// Evaluate), then the single-model repartition trigger, then every
// per-model repartition loop. Shards and loops are snapshotted under the
// mutex and evaluated lock-free, so lifecycle add/remove calls are never
// blocked behind a slow swap.
func (a *LiveAutoscaler) step() {
	a.mu.Lock()
	shards := append([]*AutoscaledShard(nil), a.Shards...)
	loops := append([]*ModelRepartition(nil), a.Repartitions...)
	a.mu.Unlock()
	for _, s := range shards {
		_ = a.Evaluate(s)
	}
	_, _ = a.EvaluateRepartition(time.Now())
	for _, mr := range loops {
		_, _ = a.EvaluateModelRepartition(mr, time.Now())
	}
}

// Evaluate runs one scaling decision for a shard and returns the replica
// count after the decision. A shard with a Model set prefers the per-model
// offered-QPS meter, falling back to the aggregate one.
func (a *LiveAutoscaler) Evaluate(s *AutoscaledShard) int {
	if s.Pool == nil {
		return 0
	}
	var offered float64
	switch {
	case s.QPSMax <= 0:
		return s.Pool.Size()
	case a.OfferedModelQPS != nil && s.Model != "":
		offered = a.OfferedModelQPS(s.Model)
	case a.OfferedQPS != nil:
		offered = a.OfferedQPS(s.Name)
	default:
		return s.Pool.Size()
	}
	replicas := s.Pool.Size()
	perReplica := offered / float64(replicas)
	switch {
	case perReplica > s.QPSMax && (s.MaxReplicas == 0 || replicas < s.MaxReplicas):
		if s.Spawn != nil {
			if c, err := s.Spawn(); err == nil {
				s.Pool.Add(c)
			}
		}
	case replicas > 1 && offered/float64(replicas-1) < s.QPSMax*0.5:
		s.Pool.Remove()
	}
	return s.Pool.Size()
}

// EvaluateRepartition runs one repartition decision at the given wall
// time for the single-model Deployment/RepartitionPolicy/Replan trio: when
// the current epoch's utility skew trips the policy, it snapshots the live
// profiling window, re-plans boundaries and swaps the epoch. Returns
// whether a swap was attempted.
func (a *LiveAutoscaler) EvaluateRepartition(now time.Time) (bool, error) {
	if a.Deployment == nil || a.RepartitionPolicy == nil || a.Replan == nil {
		return false, nil
	}
	mr := &ModelRepartition{
		Model:      a.Deployment.Model(),
		Deployment: a.Deployment,
		Policy:     a.RepartitionPolicy,
		Replan:     a.Replan,
	}
	if a.OnRepartition != nil {
		mr.OnRepartition = func(_ string, retired int64, err error) { a.OnRepartition(retired, err) }
	}
	return a.EvaluateModelRepartition(mr, now)
}

// EvaluateModelRepartition runs one variant's repartition decision at the
// given wall time. Each variant's skew is judged against its own policy
// state (keyed by model name), its own profiling window is snapshotted and
// reopened, and only its own epoch is swapped — other variants sharing the
// router keep serving undisturbed.
func (a *LiveAutoscaler) EvaluateModelRepartition(mr *ModelRepartition, now time.Time) (bool, error) {
	if mr == nil || mr.Deployment == nil || mr.Policy == nil || mr.Replan == nil {
		return false, nil
	}
	name := mr.Model
	if name == "" {
		name = mr.Deployment.Model()
	}
	rt := mr.Deployment.Table()
	if rt == nil {
		// The model was undeployed between the loop snapshot and this
		// evaluation; nothing to judge.
		return false, nil
	}
	if !mr.Policy.ShouldRepartitionModel(name, rt.UtilitySkew(), rt.Served.Value(), now) {
		return false, nil
	}
	stats := mr.Deployment.SnapshotProfile()
	if stats == nil {
		return false, fmt.Errorf("serving: repartition of model %q triggered without a live profiling window", name)
	}
	// The replan routes through the deployment's fingerprint-keyed memo: a
	// window already replanned recently reuses its DP boundaries outright.
	boundaries, err := mr.Deployment.ReplanMemo(stats, mr.Replan)
	if err == nil {
		// The profile snapshot rides into the build so the new epoch's
		// fresh shards are pre-warmed from the fresh CDF before publish;
		// the reuse report feeds the policy so a cheap (fully cached)
		// swap can re-trigger on the shorter cached interval.
		var rep SwapReport
		rep, err = mr.Deployment.RepartitionReport(context.Background(), stats, boundaries)
		if err == nil {
			mr.Policy.NoteSwap(name, rep.Cheap())
		}
	}
	// Reopen the window for the next cycle regardless of outcome — a
	// transient replan failure must not consume the only window and wedge
	// the trigger loop for the rest of the process lifetime.
	mr.Deployment.StartProfile()
	if mr.OnRepartition != nil {
		mr.OnRepartition(name, rt.Epoch, err)
	}
	return true, err
}

// Stop halts the loop and waits for it to exit.
func (a *LiveAutoscaler) Stop() {
	if a.stop == nil {
		return
	}
	close(a.stop)
	a.wg.Wait()
	a.stop = nil
}
