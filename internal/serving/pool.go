package serving

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/embedding"
)

// This file is the pull-based shard worker pool. Where the original
// ReplicaPool pushed each gather at a round-robined replica, the pool now
// inverts the flow: callers enqueue work onto a bounded per-shard queue
// and replica workers pull from it — Gather/Predict is enqueue + wait, the
// workers own the actual RPC call, and replica membership (autoscaling,
// fault injection) is a property of who is pulling, not of who was pushed
// at. The inversion is what lets the autoscaler size a shard's replica set
// from queue pressure (depth + service-time EWMAs, see QueueStats and
// QueuePolicy) inside a swap epoch, instead of waiting for a repartition.
//
// Memory-safety contract: the dense shard recycles a gather's request and
// reply scratch immediately after the call returns, so a worker must NEVER
// touch a task's req/reply once the caller's enqueue-and-wait has
// returned. The task state machine enforces it: a caller whose context
// expires abandons the task with a pending→abandoned CAS and only then
// returns; a worker claims a task with a pending→running CAS and drops
// abandoned tasks without reading them; once a task is running, the caller
// waits for the worker's completion no matter what.

// Typed queue errors. Callers (and the failover path) detect them with
// errors.Is; everything the pool returns wraps one of these or a replica's
// own error.
var (
	// ErrQueueFull is the backpressure signal: the shard's bounded work
	// queue is at capacity and the enqueue was rejected immediately,
	// before the caller's deadline could blow. Admission layers shed on
	// it; the scenario collector counts it as a failed request.
	ErrQueueFull = errors.New("serving: shard queue full")
	// ErrPoolClosed marks work rejected because the pool's epoch closed
	// (shard unit teardown drains workers to zero before transports drop).
	ErrPoolClosed = errors.New("serving: pool is closed")
)

// Pull-pool sizing defaults (see PoolOptions).
const (
	// DefaultQueueCapacity bounds each shard's work queue. Deep enough to
	// absorb a flash-crowd burst while the autoscaler reacts; shallow
	// enough that a wedged shard rejects new work in O(queue/service)
	// time instead of queueing until every deadline blows.
	DefaultQueueCapacity = 256
	// DefaultWorkersPerReplica is how many pull workers service one
	// replica concurrently — >1 so a pipelined TCP replica keeps multiple
	// gathers in flight, matching the push model's caller concurrency.
	DefaultWorkersPerReplica = 4

	// ewmaAlpha smooths the depth/service-time signals the queue
	// autoscaler policy reads.
	ewmaAlpha = 0.2
	// handoffBackoff is the pause a worker takes after re-enqueueing a
	// task its own replica already failed, so it doesn't spin while the
	// surviving replicas' workers are busy.
	handoffBackoff = 100 * time.Microsecond
)

// PoolOptions sizes a pull pool.
type PoolOptions struct {
	// QueueCapacity bounds the per-shard work queue (0 selects
	// DefaultQueueCapacity). Enqueues beyond it fail with ErrQueueFull.
	QueueCapacity int
	// WorkersPerReplica is the number of pull workers per replica (0
	// selects DefaultWorkersPerReplica).
	WorkersPerReplica int
}

// QueueStats is a pull pool's pressure snapshot — the autoscaler's raw
// signal, also surfaced per shard through Admin.Status.
type QueueStats struct {
	// Depth is the instantaneous queue length; Capacity its bound.
	Depth    int
	Capacity int
	// DepthEWMA smooths Depth over recent enqueues; ServiceEWMA smooths
	// successful dispatch latency. DepthEWMA/Replicas vs QueuePolicy's
	// thresholds is the scale decision.
	DepthEWMA   float64
	ServiceEWMA time.Duration
	// Replicas / LiveReplicas / Workers describe who is pulling.
	Replicas     int
	LiveReplicas int
	Workers      int
	// Enqueued / Rejected count lifetime admissions and ErrQueueFull
	// rejections.
	Enqueued int64
	Rejected int64
}

// Task states: a caller abandons only while pending; a worker serves only
// after winning the pending→running claim.
const (
	taskPending int32 = iota
	taskRunning
	taskAbandoned
)

// pullTask is one enqueued call. Tasks are recycled through a sync.Pool:
// exactly one party recycles each task — the caller after receiving its
// done signal, or a worker that dequeues an abandoned one.
type pullTask[Req, Reply any] struct {
	ctx   context.Context
	req   *Req
	reply *Reply
	state atomic.Int32
	done  chan error // buffered 1; empty whenever the task is recycled

	attemptedBy []int // replica ids that already failed this task
	attempts    int
	lastErr     error
}

// tried reports whether replica id already failed this task.
func (t *pullTask[Req, Reply]) tried(id int) bool {
	for _, v := range t.attemptedBy {
		if v == id {
			return true
		}
	}
	return false
}

// poolReplica is one pulling replica: a client plus the fault-injection
// dead flag and the stop signal its workers watch. added and busy feed
// the scale-in utilization ranking (see remove).
type poolReplica[C any] struct {
	id     int
	client C
	dead   atomic.Bool
	stop   chan struct{}
	once   sync.Once

	added time.Time
	busy  atomic.Int64 // cumulative successful service time, nanoseconds
}

// utilization is the fraction of the replica's pool lifetime spent
// serving successful calls (capped at 1; a replica's workers can overlap
// calls, but the cap keeps the ranking monotone).
func (r *poolReplica[C]) utilization(now time.Time) float64 {
	alive := now.Sub(r.added)
	if alive <= 0 {
		return 0
	}
	u := float64(r.busy.Load()) / float64(alive)
	if u > 1 {
		u = 1
	}
	return u
}

// halt stops the replica's workers (idempotent).
func (r *poolReplica[C]) halt() { r.once.Do(func() { close(r.stop) }) }

// pullPool is the shared pull implementation behind ReplicaPool and
// PredictPool: one bounded queue, per-replica worker sets, request-level
// failover across replicas, fault hooks in the worker loop.
type pullPool[C, Req, Reply any] struct {
	call     func(C, context.Context, *Req, *Reply) error
	scope    string // error prefix, e.g. "serving: replica pool"
	emptyErr string // exact empty-pool error text (API compatibility)
	failFmt  string // exact all-replicas-failed format (count, wrapped err)

	queue             chan *pullTask[Req, Reply]
	workersPerReplica int

	mu       sync.RWMutex // guards replicas, closed, nextID; enqueue holds RLock
	replicas []*poolReplica[C]
	closed   bool
	nextID   int

	wg      sync.WaitGroup
	workers atomic.Int64

	delay atomic.Int64 // injected per-call latency, nanoseconds

	depth    atomic.Int64
	enqueued atomic.Int64
	rejected atomic.Int64

	statsMu     sync.Mutex
	depthEWMA   float64
	serviceEWMA float64 // nanoseconds

	tasks sync.Pool
}

// newPullPool builds an empty pool; replicas arrive through add.
func newPullPool[C, Req, Reply any](scope, emptyErr, failFmt string,
	call func(C, context.Context, *Req, *Reply) error, opts PoolOptions) *pullPool[C, Req, Reply] {
	capacity := opts.QueueCapacity
	if capacity <= 0 {
		capacity = DefaultQueueCapacity
	}
	workers := opts.WorkersPerReplica
	if workers <= 0 {
		workers = DefaultWorkersPerReplica
	}
	p := &pullPool[C, Req, Reply]{
		call:              call,
		scope:             scope,
		emptyErr:          emptyErr,
		failFmt:           failFmt,
		queue:             make(chan *pullTask[Req, Reply], capacity),
		workersPerReplica: workers,
	}
	p.tasks.New = func() any {
		return &pullTask[Req, Reply]{done: make(chan error, 1)}
	}
	return p
}

// getTask readies a recycled (or fresh) task for one call.
func (p *pullPool[C, Req, Reply]) getTask(ctx context.Context, req *Req, reply *Reply) *pullTask[Req, Reply] {
	t := p.tasks.Get().(*pullTask[Req, Reply])
	t.ctx, t.req, t.reply = ctx, req, reply
	t.state.Store(taskPending)
	t.attemptedBy = t.attemptedBy[:0]
	t.attempts = 0
	t.lastErr = nil
	return t
}

// putTask recycles a task. The caller must hold exclusive ownership and
// the done channel must be empty.
func (p *pullPool[C, Req, Reply]) putTask(t *pullTask[Req, Reply]) {
	t.ctx, t.req, t.reply, t.lastErr = nil, nil, nil, nil
	p.tasks.Put(t)
}

// do is the caller side: enqueue with reject-when-full backpressure, then
// wait for a worker's completion or abandon on context expiry.
func (p *pullPool[C, Req, Reply]) do(ctx context.Context, req *Req, reply *Reply) error {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return fmt.Errorf("%s: %w", p.scope, ErrPoolClosed)
	}
	if len(p.replicas) == 0 {
		p.mu.RUnlock()
		return errors.New(p.emptyErr)
	}
	t := p.getTask(ctx, req, reply)
	select {
	case p.queue <- t:
		d := p.depth.Add(1)
		p.enqueued.Add(1)
		p.mu.RUnlock()
		// Sample the backlog ahead of this task (not counting itself), so
		// an idle pool's depth EWMA reads 0 and QueuePolicy.HighDepth means
		// "gathers waiting per replica".
		p.noteDepth(float64(d - 1))
	default:
		p.mu.RUnlock()
		p.rejected.Add(1)
		p.putTask(t)
		return fmt.Errorf("%s: %d calls queued: %w", p.scope, cap(p.queue), ErrQueueFull)
	}

	select {
	case err := <-t.done:
		p.putTask(t)
		return err
	case <-ctx.Done():
		if t.state.CompareAndSwap(taskPending, taskAbandoned) {
			// Still queued: no worker will ever touch req/reply; the
			// dequeuing worker recycles the task.
			return ctx.Err()
		}
		// A worker owns it — wait for the completion so req/reply are
		// never touched after we return.
		err := <-t.done
		p.putTask(t)
		return err
	}
}

// add registers a replica and starts its workers (no-op on a closed pool).
func (p *pullPool[C, Req, Reply]) add(c C) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	rep := &poolReplica[C]{id: p.nextID, client: c, stop: make(chan struct{}), added: time.Now()}
	p.nextID++
	p.replicas = append(p.replicas, rep)
	p.wg.Add(p.workersPerReplica)
	p.workers.Add(int64(p.workersPerReplica))
	for i := 0; i < p.workersPerReplica; i++ {
		go p.runWorker(rep)
	}
}

// remove drops the *coldest* replica — the one with the lowest fraction
// of its pool lifetime spent serving — and stops its workers. A worker
// mid-call finishes (and delivers) its current task first, so scale-down
// never loses a gather. Ties (e.g. a pool that has served no traffic)
// break toward the newest replica, preserving the previous LIFO
// behavior. Refuses to empty the pool, and never takes the only replica
// not marked dead by fault injection: scale-in racing a kill would
// otherwise leave a pool of dead replicas and fail callers until the
// revive, even though a live replica existed the whole time.
func (p *pullPool[C, Req, Reply]) remove() (C, bool) {
	var zero C
	p.mu.Lock()
	if len(p.replicas) <= 1 {
		p.mu.Unlock()
		return zero, false
	}
	liveCount := 0
	for _, rep := range p.replicas {
		if !rep.dead.Load() {
			liveCount++
		}
	}
	now := time.Now()
	coldest, coldRate := -1, 0.0
	for i, rep := range p.replicas {
		if liveCount == 1 && !rep.dead.Load() {
			continue // the last live replica is not a scale-in candidate
		}
		if u := rep.utilization(now); coldest < 0 || u <= coldRate {
			coldest, coldRate = i, u
		}
	}
	if coldest < 0 { // unreachable: len>1 and at most one live excluded
		p.mu.Unlock()
		return zero, false
	}
	rep := p.replicas[coldest]
	p.replicas = append(p.replicas[:coldest], p.replicas[coldest+1:]...)
	p.mu.Unlock()
	rep.halt()
	return rep.client, true
}

// size returns the replica count.
func (p *pullPool[C, Req, Reply]) size() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.replicas)
}

// live returns the count of replicas not marked dead by fault injection.
func (p *pullPool[C, Req, Reply]) live() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, rep := range p.replicas {
		if !rep.dead.Load() {
			n++
		}
	}
	return n
}

// setDead flips replica i's (current slice position) fault-injection flag.
func (p *pullPool[C, Req, Reply]) setDead(i int, dead bool) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if i < 0 || i >= len(p.replicas) {
		return false
	}
	p.replicas[i].dead.Store(dead)
	return true
}

// close rejects further enqueues, stops every worker, waits for them to
// drain to zero, and fails any still-queued tasks with ErrPoolClosed.
func (p *pullPool[C, Req, Reply]) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	reps := append([]*poolReplica[C](nil), p.replicas...)
	p.mu.Unlock()
	for _, rep := range reps {
		rep.halt()
	}
	p.wg.Wait()
	for {
		select {
		case t := <-p.queue:
			p.depth.Add(-1)
			if t.state.CompareAndSwap(taskPending, taskRunning) {
				t.done <- fmt.Errorf("%s: %w", p.scope, ErrPoolClosed)
			} else {
				p.putTask(t) // abandoned; caller already returned
			}
		default:
			return
		}
	}
}

// runWorker is one replica worker: pull, claim, serve, repeat.
func (p *pullPool[C, Req, Reply]) runWorker(rep *poolReplica[C]) {
	defer p.wg.Done()
	defer p.workers.Add(-1)
	for {
		select {
		case <-rep.stop:
			return
		default:
		}
		select {
		case <-rep.stop:
			return
		case t := <-p.queue:
			p.depth.Add(-1)
			if !t.state.CompareAndSwap(taskPending, taskRunning) {
				p.putTask(t) // abandoned while queued
				continue
			}
			p.serve(rep, t)
		}
	}
}

// serve runs one claimed task on rep: fault hooks first (injected stall,
// dead replica), then the dispatch, then failover bookkeeping.
func (p *pullPool[C, Req, Reply]) serve(rep *poolReplica[C], t *pullTask[Req, Reply]) {
	if t.tried(rep.id) {
		// This replica already failed the task; hand it back for a
		// survivor and back off so the hand-off doesn't spin.
		p.requeue(t)
		time.Sleep(handoffBackoff)
		return
	}
	if t.attempts == 0 {
		// Injected shard slowness (scenario fault hook): one fixed stall
		// per call, bounded by the caller's deadline.
		if delay := time.Duration(p.delay.Load()); delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-t.ctx.Done():
				timer.Stop()
				t.done <- t.ctx.Err()
				return
			}
		}
	}
	if err := t.ctx.Err(); err != nil {
		t.done <- err
		return
	}
	if rep.dead.Load() {
		// A killed replica behaves like a crashed pod: the attempt fails
		// immediately and the task fails over to the survivors.
		p.fail(t, rep, fmt.Errorf("serving: replica %d is down (fault injection)", rep.id))
		return
	}
	if t.attempts > 0 {
		// A failed attempt may have left partial fields behind; reset so
		// this replica's reply is never contaminated by the last one.
		var zero Reply
		*t.reply = zero
	}
	start := time.Now()
	if err := p.call(rep.client, t.ctx, t.req, t.reply); err != nil {
		p.fail(t, rep, err)
		return
	}
	elapsed := time.Since(start)
	rep.busy.Add(int64(elapsed))
	p.noteService(elapsed)
	t.done <- nil
}

// fail records a failed attempt and either fails the task over to an
// untried replica or delivers the aggregated error.
func (p *pullPool[C, Req, Reply]) fail(t *pullTask[Req, Reply], rep *poolReplica[C], err error) {
	t.lastErr = err
	t.attemptedBy = append(t.attemptedBy, rep.id)
	t.attempts++
	if t.ctx.Err() != nil || !p.hasUntried(t) {
		t.done <- fmt.Errorf(p.failFmt, len(t.attemptedBy), t.lastErr)
		return
	}
	p.requeue(t)
}

// hasUntried reports whether any current replica has not yet failed t.
func (p *pullPool[C, Req, Reply]) hasUntried(t *pullTask[Req, Reply]) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, rep := range p.replicas {
		if !t.tried(rep.id) {
			return true
		}
	}
	return false
}

// requeue puts a running task back on the queue (failover hand-off). If
// the queue is full the task fails now — backpressure beats unbounded
// retry buffering.
func (p *pullPool[C, Req, Reply]) requeue(t *pullTask[Req, Reply]) {
	t.state.Store(taskPending)
	select {
	case p.queue <- t:
		p.depth.Add(1)
	default:
		if t.state.CompareAndSwap(taskPending, taskRunning) {
			err := t.lastErr
			if err == nil {
				err = fmt.Errorf("%s: %d calls queued: %w", p.scope, cap(p.queue), ErrQueueFull)
			}
			n := len(t.attemptedBy)
			if n == 0 {
				n = 1
			}
			t.done <- fmt.Errorf(p.failFmt, n, err)
		} else {
			p.putTask(t) // abandoned in the hand-off window
		}
	}
}

// noteDepth folds one enqueue-time queue length into the depth EWMA.
func (p *pullPool[C, Req, Reply]) noteDepth(d float64) {
	if d < 0 {
		d = 0
	}
	p.statsMu.Lock()
	p.depthEWMA += ewmaAlpha * (d - p.depthEWMA)
	p.statsMu.Unlock()
}

// noteService folds one successful dispatch latency into the service EWMA.
func (p *pullPool[C, Req, Reply]) noteService(d time.Duration) {
	p.statsMu.Lock()
	p.serviceEWMA += ewmaAlpha * (float64(d) - p.serviceEWMA)
	p.statsMu.Unlock()
}

// queueStats snapshots the pool's pressure signals.
func (p *pullPool[C, Req, Reply]) queueStats() QueueStats {
	p.mu.RLock()
	replicas := len(p.replicas)
	liveReplicas := 0
	for _, rep := range p.replicas {
		if !rep.dead.Load() {
			liveReplicas++
		}
	}
	p.mu.RUnlock()
	p.statsMu.Lock()
	depthEWMA, serviceEWMA := p.depthEWMA, p.serviceEWMA
	p.statsMu.Unlock()
	depth := p.depth.Load()
	if depth < 0 {
		depth = 0
	}
	return QueueStats{
		Depth:        int(depth),
		Capacity:     cap(p.queue),
		DepthEWMA:    depthEWMA,
		ServiceEWMA:  time.Duration(serviceEWMA),
		Replicas:     replicas,
		LiveReplicas: liveReplicas,
		Workers:      int(p.workers.Load()),
		Enqueued:     p.enqueued.Load(),
		Rejected:     p.rejected.Load(),
	}
}

// ReplicaPool serves one shard's gathers through the pull pool: Gather
// enqueues onto the shard's bounded queue and waits; the shard's replica
// workers pull, dispatch and fail over. Replicas can be added and removed
// at runtime, which is how the live autoscaler scales a shard's
// microservice in and out — now from queue pressure, within a swap epoch.
//
// The pool also carries the serving layer's fault-injection hooks, used by
// the scenario harness (internal/scenario) to rehearse failures against a
// live deployment: KillReplica marks one replica dead — its workers fail
// every task they pull, like a crashed pod, and the request-level failover
// hands the task to the survivors — and InjectDelay stalls every call
// through the pool by a fixed latency, modeling a degraded node.
type ReplicaPool struct {
	p *pullPool[GatherClient, GatherRequest, GatherReply]
}

// NewReplicaPool creates a pool over the given replicas with default
// queue sizing.
func NewReplicaPool(replicas ...GatherClient) *ReplicaPool {
	return NewReplicaPoolOptions(PoolOptions{}, replicas...)
}

// NewReplicaPoolOptions creates a pool with explicit queue sizing.
func NewReplicaPoolOptions(opts PoolOptions, replicas ...GatherClient) *ReplicaPool {
	p := &ReplicaPool{p: newPullPool[GatherClient, GatherRequest, GatherReply](
		"serving: replica pool",
		"serving: replica pool is empty",
		"serving: all %d replicas failed: %w",
		func(c GatherClient, ctx context.Context, req *GatherRequest, reply *GatherReply) error {
			return c.Gather(ctx, req, reply)
		}, opts)}
	for _, c := range replicas {
		p.p.add(c)
	}
	return p
}

// Gather enqueues the request onto the shard queue and waits for a replica
// worker to complete it. On a full queue it fails immediately with an
// error wrapping ErrQueueFull; on a replica failure the task fails over to
// the remaining replicas once each, and only when every replica has failed
// does the aggregated error come back. A canceled context abandons a
// still-queued task immediately.
func (p *ReplicaPool) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	return p.p.do(ctx, req, reply)
}

// Add appends a replica and starts its pull workers.
func (p *ReplicaPool) Add(c GatherClient) { p.p.add(c) }

// Remove drops the coldest replica — lowest per-replica utilization
// (busy time over pool lifetime), ties toward the newest — and returns
// it (nil when the pool would become empty — a shard always keeps one
// replica). The sole replica not marked dead by fault injection is never
// chosen, so scale-in cannot strand callers on an all-dead pool. Its
// workers finish any claimed task before exiting, so no gather is lost.
func (p *ReplicaPool) Remove() GatherClient {
	c, ok := p.p.remove()
	if !ok {
		return nil
	}
	return c
}

// Size returns the replica count.
func (p *ReplicaPool) Size() int { return p.p.size() }

// Live returns the count of replicas not marked dead by fault injection.
func (p *ReplicaPool) Live() int { return p.p.live() }

// KillReplica is the scenario fault hook for a crashed pod: replica i
// keeps pulling, but every task it claims fails immediately and hands off
// to the survivors. It reports whether i addressed a replica.
func (p *ReplicaPool) KillReplica(i int) bool { return p.p.setDead(i, true) }

// ReviveReplica clears a KillReplica injection.
func (p *ReplicaPool) ReviveReplica(i int) bool { return p.p.setDead(i, false) }

// InjectDelay is the scenario fault hook for a degraded node: every
// subsequent call through the pool stalls d before dispatch (0 removes
// the injection). The stall honors the caller's context deadline.
func (p *ReplicaPool) InjectDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.p.delay.Store(int64(d))
}

// InjectedDelay returns the current injected per-call latency.
func (p *ReplicaPool) InjectedDelay() time.Duration {
	return time.Duration(p.p.delay.Load())
}

// QueueStats snapshots the shard queue's pressure signals.
func (p *ReplicaPool) QueueStats() QueueStats { return p.p.queueStats() }

// Workers returns the current pull-worker count (0 after Close).
func (p *ReplicaPool) Workers() int { return int(p.p.workers.Load()) }

// Close drains the pool for epoch teardown: enqueues start failing with
// ErrPoolClosed, every worker exits (finishing its claimed task first),
// and queued tasks fail rather than hang. Idempotent.
func (p *ReplicaPool) Close() { p.p.close() }

var _ GatherClient = (*ReplicaPool)(nil)

// PredictPool serves dense-replica predicts through the same pull
// implementation as ReplicaPool — one queue, per-replica workers, the same
// failover semantics and the same between-attempt reply reset, so a failed
// replica's partial reply can never bleed into the next attempt's.
type PredictPool struct {
	p *pullPool[PredictClient, PredictRequest, PredictReply]
}

// NewPredictPool creates a pool over the given replicas.
func NewPredictPool(replicas ...PredictClient) *PredictPool {
	p := &PredictPool{p: newPullPool[PredictClient, PredictRequest, PredictReply](
		"serving: predict pool",
		"serving: predict pool is empty",
		"serving: all %d predict replicas failed: %w",
		func(c PredictClient, ctx context.Context, req *PredictRequest, reply *PredictReply) error {
			return c.Predict(ctx, req, reply)
		}, PoolOptions{})}
	for _, c := range replicas {
		p.p.add(c)
	}
	return p
}

// Predict enqueues the request and waits for a replica worker, with the
// same failover and backpressure contract as ReplicaPool.Gather.
func (p *PredictPool) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	return p.p.do(ctx, req, reply)
}

// Add appends a replica and starts its pull workers.
func (p *PredictPool) Add(c PredictClient) { p.p.add(c) }

// Size returns the replica count.
func (p *PredictPool) Size() int { return p.p.size() }

// QueueStats snapshots the pool's pressure signals.
func (p *PredictPool) QueueStats() QueueStats { return p.p.queueStats() }

// Close drains the pool: workers exit, queued tasks fail. Idempotent.
func (p *PredictPool) Close() { p.p.close() }

var _ PredictClient = (*PredictPool)(nil)

// QueuePolicy is the queue-depth autoscaling policy: scale a shard's
// replica set from its pull-queue pressure instead of offered QPS. The
// decision is a pure function of a QueueStats snapshot (see Decide), so
// the policy is property-testable without a live deployment.
type QueuePolicy struct {
	// HighDepth scales out when the per-replica depth EWMA exceeds it.
	HighDepth float64
	// LowDepth scales in when the per-replica depth EWMA falls below it
	// (and more than one replica remains). LowDepth < HighDepth is the
	// hysteresis band that prevents add/remove flapping.
	LowDepth float64
	// Cooldown is the minimum time between scale decisions for one shard.
	Cooldown time.Duration
}

// Validate rejects a policy whose thresholds cannot behave (no hysteresis
// band, negative times).
func (p *QueuePolicy) Validate() error {
	if p.HighDepth <= 0 {
		return fmt.Errorf("serving: queue policy: high depth must be positive")
	}
	if p.LowDepth < 0 || p.LowDepth >= p.HighDepth {
		return fmt.Errorf("serving: queue policy: low depth %.2f must be in [0, high depth %.2f)", p.LowDepth, p.HighDepth)
	}
	if p.Cooldown < 0 {
		return fmt.Errorf("serving: queue policy: cooldown must not be negative")
	}
	return nil
}

// Decide returns the replica delta (-1, 0 or +1) for one control tick:
// +1 when the per-replica depth EWMA is above HighDepth, -1 when it is
// below LowDepth with replicas to spare, 0 inside the hysteresis band or
// within Cooldown of the last scale action. Monotone in the depth signal.
func (p *QueuePolicy) Decide(st QueueStats, lastScale, now time.Time) int {
	if p == nil || p.HighDepth <= 0 {
		return 0
	}
	if p.Cooldown > 0 && now.Sub(lastScale) < p.Cooldown {
		return 0
	}
	replicas := st.Replicas
	if replicas < 1 {
		replicas = 1
	}
	perReplica := st.DepthEWMA / float64(replicas)
	switch {
	case perReplica > p.HighDepth:
		return 1
	case st.Replicas > 1 && perReplica < p.LowDepth:
		return -1
	}
	return 0
}

// AutoscaledShard couples a shard replica pool with its scaling target.
// Two policies exist: the HPA-style offered-QPS target (QPSMax — scale out
// when offered per-replica QPS exceeds it, Sec. IV-D's throughput-centric
// sparse-shard policy), and the pull-queue policy (Queue — scale on the
// pool's own depth/service EWMAs). When Queue is set it takes precedence:
// queue pressure sees a hot shard directly, without trusting the frontend
// meter's attribution.
type AutoscaledShard struct {
	Name string
	// Model names the DLRM variant the shard belongs to in a multi-model
	// deployment (informational; empty for single-model deployments). The
	// OfferedQPS callback receives Name, so per-model load attribution
	// goes through the shard's name/model pair.
	Model  string
	Pool   *ReplicaPool
	QPSMax float64
	// Queue, when set, scales the shard from its pull-queue pressure
	// (Pool.QueueStats) instead of offered QPS.
	Queue *QueuePolicy
	// Spawn creates one more replica service for the shard.
	Spawn func() (GatherClient, error)
	// MaxReplicas caps scale-out (0 = unlimited).
	MaxReplicas int

	// lastScale anchors Queue.Cooldown; owned by the evaluating
	// autoscaler loop.
	lastScale time.Time
}

// ModelRepartition is one variant's entry in a multi-model autoscaler: the
// variant's deployment, its staleness policy and its replanner. Each entry
// is evaluated independently every control period, so variants repartition
// on independent cadences — a swap of one never gates, drains or delays
// another's.
type ModelRepartition struct {
	// Model names the variant (for policy state and callbacks; defaults
	// to the deployment's own model name).
	Model string
	// Deployment is the variant's live deployment (from
	// MultiDeployment.Deployment or BuildElastic).
	Deployment *LiveDeployment
	// Policy decides when this variant's utility skew justifies a swap.
	// Policies may be shared across variants: firing state is kept per
	// model inside the policy.
	Policy *cluster.RepartitionPolicy
	// Replan maps the variant's freshly profiled window to new shard
	// boundaries.
	Replan func(stats []*embedding.AccessStats) ([]int64, error)
	// OnRepartition, when set, observes every triggered swap of this
	// variant (retired epoch, error if the swap failed).
	OnRepartition func(model string, retired int64, err error)
}

// LiveAutoscaler runs a background control loop over shard pools — an
// in-process stand-in for the Kubernetes HPA controller, used by the live
// serving example. Besides replica scaling it can own the live
// repartition trigger: when the deployment's per-shard utility skew
// (Fig. 14) exceeds the policy threshold, it re-plans and swaps the
// partition epoch while traffic keeps flowing. Replica scaling and
// repartitioning are deliberately decoupled signals: queue pressure adds
// copies of a shard within the current epoch; utility skew moves the rows
// themselves via a plan swap.
//
// Shards and Repartitions may be set directly before Start; once the loop
// is running, mutate them through the Add/Set/Remove methods — that is how
// the serving control plane starts and stops per-variant loops as models
// are deployed into and drained out of a live frontend (Controller.Bind).
type LiveAutoscaler struct {
	Shards   []*AutoscaledShard
	Interval time.Duration
	// OfferedQPS reports the current aggregate load directed at a shard
	// name; typically wired to the frontend's QPS meter.
	OfferedQPS func(name string) float64
	// OfferedModelQPS, when set, attributes load per DLRM variant: a
	// shard whose Model field is set scales on its own variant's offered
	// QPS (typically a per-model frontend meter split on
	// PredictRequest.Model) instead of the aggregate OfferedQPS — so one
	// variant's traffic spike never scales another variant's pools.
	OfferedModelQPS func(model string) float64
	// OnScale, when set, observes every replica add/remove the loop
	// performs (called from the control goroutine; keep it fast and
	// thread-safe).
	OnScale func(s *AutoscaledShard, from, to int)

	// Deployment, when set together with RepartitionPolicy and Replan,
	// enables the skew-triggered live repartition loop for a single-model
	// deployment. Multi-model deployments use Repartitions instead.
	Deployment *LiveDeployment
	// RepartitionPolicy decides when a utility skew justifies a swap.
	RepartitionPolicy *cluster.RepartitionPolicy
	// Replan maps a freshly profiled window to new shard boundaries
	// (typically the DP partitioner over the new CDF).
	Replan func(stats []*embedding.AccessStats) ([]int64, error)
	// OnRepartition, when set, observes every triggered swap (epoch that
	// was retired, error if the swap failed).
	OnRepartition func(retired int64, err error)

	// Repartitions holds one independent repartition loop per served
	// model: every control period each variant's skew is evaluated against
	// its own policy, so variants swap plans on independent cadences.
	Repartitions []*ModelRepartition

	// mu guards Shards and Repartitions once the loop runs; the step loop
	// snapshots both under it and evaluates lock-free, so a lifecycle
	// operation adding or removing a variant's loops never deadlocks
	// against an in-flight evaluation.
	mu   sync.Mutex
	stop chan struct{}
	wg   sync.WaitGroup
}

// AddRepartition starts a per-variant repartition loop at runtime (the
// deploy half of the model lifecycle).
func (a *LiveAutoscaler) AddRepartition(mr *ModelRepartition) {
	if mr == nil {
		return
	}
	a.mu.Lock()
	a.Repartitions = append(a.Repartitions, mr)
	a.mu.Unlock()
}

// RemoveRepartition stops the named variant's repartition loop (the
// undeploy half). An evaluation already in flight finishes — harmlessly,
// since a retired model's swap fails fast — but no further ticks evaluate
// the variant.
func (a *LiveAutoscaler) RemoveRepartition(model string) {
	a.mu.Lock()
	keep := a.Repartitions[:0]
	for _, mr := range a.Repartitions {
		name := mr.Model
		if name == "" && mr.Deployment != nil {
			name = mr.Deployment.Model()
		}
		if name != model {
			keep = append(keep, mr)
		}
	}
	a.Repartitions = keep
	a.mu.Unlock()
}

// SetModelShards replaces the named variant's replica-scaling entries —
// called at deploy and after every epoch swap so the scaling loop always
// targets the pools that are actually serving.
func (a *LiveAutoscaler) SetModelShards(model string, shards ...*AutoscaledShard) {
	a.mu.Lock()
	keep := a.Shards[:0]
	for _, s := range a.Shards {
		if s.Model != model {
			keep = append(keep, s)
		}
	}
	a.Shards = append(keep, shards...)
	a.mu.Unlock()
}

// RemoveModelShards drops the named variant's replica-scaling entries.
func (a *LiveAutoscaler) RemoveModelShards(model string) {
	a.SetModelShards(model)
}

// Start launches the control loop.
func (a *LiveAutoscaler) Start() {
	if a.Interval <= 0 {
		a.Interval = time.Second
	}
	a.stop = make(chan struct{})
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		ticker := time.NewTicker(a.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-ticker.C:
				a.step()
			}
		}
	}()
}

// step evaluates every shard once (exported for deterministic tests via
// Evaluate), then the single-model repartition trigger, then every
// per-model repartition loop. Shards and loops are snapshotted under the
// mutex and evaluated lock-free, so lifecycle add/remove calls are never
// blocked behind a slow swap.
func (a *LiveAutoscaler) step() {
	a.mu.Lock()
	shards := append([]*AutoscaledShard(nil), a.Shards...)
	loops := append([]*ModelRepartition(nil), a.Repartitions...)
	a.mu.Unlock()
	for _, s := range shards {
		_ = a.Evaluate(s)
	}
	_, _ = a.EvaluateRepartition(time.Now())
	for _, mr := range loops {
		_, _ = a.EvaluateModelRepartition(mr, time.Now())
	}
}

// Evaluate runs one scaling decision for a shard and returns the replica
// count after the decision. A shard with a Queue policy scales on the
// pool's queue pressure; otherwise a shard with a Model set prefers the
// per-model offered-QPS meter, falling back to the aggregate one.
func (a *LiveAutoscaler) Evaluate(s *AutoscaledShard) int {
	if s.Pool == nil {
		return 0
	}
	if s.Queue != nil {
		return a.evaluateQueue(s, time.Now())
	}
	var offered float64
	switch {
	case s.QPSMax <= 0:
		return s.Pool.Size()
	case a.OfferedModelQPS != nil && s.Model != "":
		offered = a.OfferedModelQPS(s.Model)
	case a.OfferedQPS != nil:
		offered = a.OfferedQPS(s.Name)
	default:
		return s.Pool.Size()
	}
	replicas := s.Pool.Size()
	perReplica := offered / float64(replicas)
	switch {
	case perReplica > s.QPSMax && (s.MaxReplicas == 0 || replicas < s.MaxReplicas):
		if s.Spawn != nil {
			if c, err := s.Spawn(); err == nil {
				s.Pool.Add(c)
				if a.OnScale != nil {
					a.OnScale(s, replicas, replicas+1)
				}
			}
		}
	case replicas > 1 && offered/float64(replicas-1) < s.QPSMax*0.5:
		if s.Pool.Remove() != nil && a.OnScale != nil {
			a.OnScale(s, replicas, replicas-1)
		}
	}
	return s.Pool.Size()
}

// evaluateQueue runs one queue-policy decision at the given wall time.
func (a *LiveAutoscaler) evaluateQueue(s *AutoscaledShard, now time.Time) int {
	st := s.Pool.QueueStats()
	switch s.Queue.Decide(st, s.lastScale, now) {
	case 1:
		if (s.MaxReplicas != 0 && st.Replicas >= s.MaxReplicas) || s.Spawn == nil {
			break
		}
		if c, err := s.Spawn(); err == nil {
			s.Pool.Add(c)
			s.lastScale = now
			if a.OnScale != nil {
				a.OnScale(s, st.Replicas, st.Replicas+1)
			}
		}
	case -1:
		if s.Pool.Remove() != nil {
			s.lastScale = now
			if a.OnScale != nil {
				a.OnScale(s, st.Replicas, st.Replicas-1)
			}
		}
	}
	return s.Pool.Size()
}

// EvaluateRepartition runs one repartition decision at the given wall
// time for the single-model Deployment/RepartitionPolicy/Replan trio: when
// the current epoch's utility skew trips the policy, it snapshots the live
// profiling window, re-plans boundaries and swaps the epoch. Returns
// whether a swap was attempted.
func (a *LiveAutoscaler) EvaluateRepartition(now time.Time) (bool, error) {
	if a.Deployment == nil || a.RepartitionPolicy == nil || a.Replan == nil {
		return false, nil
	}
	mr := &ModelRepartition{
		Model:      a.Deployment.Model(),
		Deployment: a.Deployment,
		Policy:     a.RepartitionPolicy,
		Replan:     a.Replan,
	}
	if a.OnRepartition != nil {
		mr.OnRepartition = func(_ string, retired int64, err error) { a.OnRepartition(retired, err) }
	}
	return a.EvaluateModelRepartition(mr, now)
}

// EvaluateModelRepartition runs one variant's repartition decision at the
// given wall time. Each variant's skew is judged against its own policy
// state (keyed by model name), its own profiling window is snapshotted and
// reopened, and only its own epoch is swapped — other variants sharing the
// router keep serving undisturbed.
func (a *LiveAutoscaler) EvaluateModelRepartition(mr *ModelRepartition, now time.Time) (bool, error) {
	if mr == nil || mr.Deployment == nil || mr.Policy == nil || mr.Replan == nil {
		return false, nil
	}
	name := mr.Model
	if name == "" {
		name = mr.Deployment.Model()
	}
	rt := mr.Deployment.Table()
	if rt == nil {
		// The model was undeployed between the loop snapshot and this
		// evaluation; nothing to judge.
		return false, nil
	}
	if !mr.Policy.ShouldRepartitionModel(name, rt.UtilitySkew(), rt.Served.Value(), now) {
		return false, nil
	}
	stats := mr.Deployment.SnapshotProfile()
	if stats == nil {
		return false, fmt.Errorf("serving: repartition of model %q triggered without a live profiling window", name)
	}
	// The replan routes through the deployment's fingerprint-keyed memo: a
	// window already replanned recently reuses its DP boundaries outright.
	boundaries, err := mr.Deployment.ReplanMemo(stats, mr.Replan)
	if err == nil {
		// The profile snapshot rides into the build so the new epoch's
		// fresh shards are pre-warmed from the fresh CDF before publish;
		// the reuse report feeds the policy so a cheap (fully cached)
		// swap can re-trigger on the shorter cached interval.
		var rep SwapReport
		//lint:escape ctxflow the autoscaler's swap runs on its own detached control loop, not under any request
		rep, err = mr.Deployment.RepartitionReport(context.Background(), stats, boundaries)
		if err == nil {
			mr.Policy.NoteSwap(name, rep.Cheap())
		}
	}
	// Reopen the window for the next cycle regardless of outcome — a
	// transient replan failure must not consume the only window and wedge
	// the trigger loop for the rest of the process lifetime.
	mr.Deployment.StartProfile()
	if mr.OnRepartition != nil {
		mr.OnRepartition(name, rt.Epoch, err)
	}
	return true, err
}

// Stop halts the loop and waits for it to exit.
func (a *LiveAutoscaler) Stop() {
	if a.stop == nil {
		return
	}
	close(a.stop)
	a.wg.Wait()
	a.stop = nil
}
