package serving

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/embedding"
)

// This file is the serving control plane: the Controller owns runtime
// model lifecycle for a MultiDeployment. The data plane (multimodel.go)
// only ever reads immutable model snapshots; every mutation of the served
// set — deploying a new variant into the running frontend, draining a
// retired one out — goes through the Controller, which serializes
// lifecycle operations and keeps the autoscaler's per-variant loops in
// step with the models that actually exist. The Controller is exposed over
// the RPC frontend as the versioned admin service (admin.go), so a fleet
// operator can deploy, drain and inspect variants over the wire with no
// restart.

// AutoscalerBinding wires a Controller to a LiveAutoscaler so variant
// lifecycle and control loops stay in lock step: Deploy starts the new
// variant's repartition loop (and its replica-scaling entries), Undeploy
// stops them and forgets the variant's policy state, so a reused name
// starts from a clean slate.
type AutoscalerBinding struct {
	// Autoscaler receives one ModelRepartition per deployed variant.
	Autoscaler *LiveAutoscaler
	// Policy is the shared staleness policy (state is per model inside).
	Policy *cluster.RepartitionPolicy
	// Replan maps a variant's fresh profiling window to new boundaries.
	Replan func(model string, stats []*embedding.AccessStats) ([]int64, error)
	// Shards, when set, builds the replica-scaling entries for a variant's
	// current epoch; invoked at deploy and again after every swap so the
	// scaling loop always points at the epochs actually serving.
	Shards func(model string, ld *LiveDeployment) []*AutoscaledShard
	// OnRepartition, when set, observes every triggered swap.
	OnRepartition func(model string, retired int64, err error)
}

// Controller is the lifecycle control plane of one MultiDeployment:
// Deploy lazily builds and publishes a new variant into the running
// frontend (build → warm → publish, no restart), Undeploy drains a variant
// out of it (unpublish → flush → unregister → drain → release), and
// Status snapshots every served variant. Lifecycle operations are
// serialized with each other but never block the request path — data-plane
// reads are atomic snapshot loads throughout.
type Controller struct {
	md      *MultiDeployment
	binding *AutoscalerBinding // guarded by md.mutateMu
}

// ModelStatus is one variant's control-plane snapshot.
type ModelStatus struct {
	// Model is the canonical variant name.
	Model string
	// Epoch is the variant's current plan epoch; Swaps counts its
	// published plan swaps.
	Epoch int64
	Swaps int64
	// Shards is the shard count of the current epoch's plan.
	Shards int
	// Served counts dense dispatches routed through the current epoch.
	Served int64
	// OfferedQPS is the variant's offered load at the frontend (sliding
	// window; see MultiDeployment.OfferedQPS).
	OfferedQPS float64
	// UtilitySkew is the current epoch's Fig. 14 utility spread — the
	// staleness signal the repartition policy watches.
	UtilitySkew float64
	// Counters is the variant's lifetime plan-construction tally,
	// including the plan cache's occupancy (CachedSortedBytes is the
	// bytes of cached sorted tables this variant pins).
	Counters BuildCounters
	// Queues is the per-shard pull-queue pressure of the current epoch
	// (one entry per replica pool) — the signal the queue-depth
	// autoscaler scales on, surfaced so operators can see a hot shard
	// building backlog before it sheds. Added fields ride the versioned
	// gob admin RPC without a version bump (absent on old peers).
	Queues []ShardQueueStatus
}

// ShardQueueStatus is one shard's pull-queue snapshot inside ModelStatus.
type ShardQueueStatus struct {
	// Table and Shard locate the pool in the current epoch's plan.
	Table, Shard int
	// Replicas/Live/Workers describe who is pulling; Depth/Capacity the
	// bounded queue; DepthEWMA/ServiceEWMA the smoothed autoscaling
	// signals; Enqueued/Rejected the lifetime admission counters.
	Replicas, Live, Workers int
	Depth, Capacity         int
	DepthEWMA               float64
	ServiceEWMA             time.Duration
	Enqueued, Rejected      int64
}

// Bind attaches an autoscaler binding and wires every currently served
// variant into it: each gets a repartition loop (its profiling window is
// opened if needed) and, when the binding builds them, replica-scaling
// entries. Subsequent Deploys wire new variants automatically; Undeploy
// unwires them. Pass nil to detach (existing loops are removed).
func (c *Controller) Bind(b *AutoscalerBinding) {
	c.md.mutateMu.Lock()
	defer c.md.mutateMu.Unlock()
	if old := c.binding; old != nil && old.Autoscaler != nil {
		// Detach, don't retire: the models stay live, so their policy
		// state (firing times, cheap-swap flags) must survive the rebind.
		for _, name := range c.md.snapshot().names {
			c.unwireLocked(old, name, false)
		}
	}
	c.binding = b
	if b == nil || b.Autoscaler == nil {
		return
	}
	s := c.md.snapshot()
	for _, name := range s.names {
		c.wireLocked(name, s.deployments[name])
	}
}

// wireLocked starts the variant's control loops (caller holds mutateMu).
func (c *Controller) wireLocked(name string, ld *LiveDeployment) {
	b := c.binding
	if b == nil || b.Autoscaler == nil || b.Policy == nil || b.Replan == nil {
		return
	}
	mr := &ModelRepartition{
		Model:      name,
		Deployment: ld,
		Policy:     b.Policy,
		Replan: func(stats []*embedding.AccessStats) ([]int64, error) {
			return b.Replan(name, stats)
		},
		OnRepartition: func(model string, retired int64, err error) {
			if err == nil && b.Shards != nil {
				b.Autoscaler.SetModelShards(model, b.Shards(model, ld)...)
			}
			if b.OnRepartition != nil {
				b.OnRepartition(model, retired, err)
			}
		},
	}
	b.Autoscaler.AddRepartition(mr)
	if b.Shards != nil {
		b.Autoscaler.SetModelShards(name, b.Shards(name, ld)...)
	}
	ld.StartProfileIfIdle()
}

// unwireLocked stops the variant's control loops; with retire set it also
// forgets the variant's policy state so a reused name never inherits a
// retired model's firing history. Rebinding a live model passes retire
// false — its throttle state must survive the binding swap. Caller holds
// mutateMu.
func (c *Controller) unwireLocked(b *AutoscalerBinding, name string, retire bool) {
	if b == nil || b.Autoscaler == nil {
		return
	}
	b.Autoscaler.RemoveRepartition(name)
	b.Autoscaler.RemoveModelShards(name)
	if retire && b.Policy != nil {
		b.Policy.Forget(name)
	}
}

// Deploy builds a new variant and publishes it into the running frontend:
// the spec's tables are preprocessed and sharded, the fresh shards are
// pre-warmed from the spec's profiling window (build → warm, exactly the
// epoch lifecycle's first two states), the variant's epoch-0 plan is
// registered with the shared Router, and finally the data-plane snapshot
// swaps — from that instant the frontend dispatches to the new name. No
// other variant is touched and no request is ever blocked. A name
// currently serving is rejected; a name freed by Undeploy is reusable.
func (c *Controller) Deploy(ctx context.Context, spec ModelSpec) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("serving: deploy %q: %w", spec.Name, err)
	}
	name := canonicalModel(spec.Name)
	c.md.mutateMu.Lock()
	defer c.md.mutateMu.Unlock()
	if _, dup := c.md.snapshot().deployments[name]; dup {
		return fmt.Errorf("serving: model %q already deployed", name)
	}
	ld, err := buildModelDeployment(c.md.Router, name, spec.Model, spec.Stats, spec.Boundaries, spec.Options)
	if err != nil {
		return fmt.Errorf("serving: deploying model %q: %w", name, err)
	}
	// The deadline is honored at the build boundary: a deploy whose ctx
	// expired while building is torn down, never published, and its name
	// stays free — so a client that timed out can safely retry.
	if err := ctx.Err(); err != nil {
		//lint:escape ctxflow teardown of the half-built deployment must not inherit the already-expired deploy ctx
		_ = ld.Shutdown(context.Background())
		return fmt.Errorf("serving: deploying model %q: %w", name, err)
	}
	if err := c.md.publishModel(name, ld); err != nil {
		ld.Close()
		return err
	}
	c.wireLocked(name, ld)
	return nil
}

// Undeploy drains a variant out of the running frontend: the data-plane
// snapshot swaps first (new requests for the name fail immediately and its
// offered-QPS meter is dropped), the variant's repartition loop stops and
// its policy state is forgotten, then the deployment shuts down —
// batcher flushed, model unregistered from the router (the name becomes
// reusable), final epoch drained within ctx, final utilities frozen, and
// the plan cache cleared so no cached shard unit outlives the model. Every
// other variant keeps serving uninterrupted throughout.
func (c *Controller) Undeploy(ctx context.Context, mdl string) error {
	name := canonicalModel(mdl)
	c.md.mutateMu.Lock()
	defer c.md.mutateMu.Unlock()
	ld, err := c.md.unpublishModel(name)
	if err != nil {
		return err
	}
	c.unwireLocked(c.binding, name, true)
	if err := ld.Shutdown(ctx); err != nil {
		return fmt.Errorf("serving: undeploy %q: %w", name, err)
	}
	return nil
}

// Status snapshots every served variant in registration order.
func (c *Controller) Status() []ModelStatus {
	s := c.md.snapshot()
	out := make([]ModelStatus, 0, len(s.names))
	for _, name := range s.names {
		if st, ok := c.modelStatus(s, name); ok {
			out = append(out, st)
		}
	}
	return out
}

// ModelStatus snapshots one variant (ok is false for an unknown or
// retired model).
func (c *Controller) ModelStatus(mdl string) (ModelStatus, bool) {
	return c.modelStatus(c.md.snapshot(), canonicalModel(mdl))
}

func (c *Controller) modelStatus(s *modelSet, name string) (ModelStatus, bool) {
	ld, ok := s.deployments[name]
	if !ok {
		return ModelStatus{}, false
	}
	st := ModelStatus{Model: name, Epoch: -1, Counters: ld.BuildCounters(),
		Swaps: c.md.Router.SwapsFor(name)}
	if m := s.meters[name]; m != nil {
		st.OfferedQPS = m.Rate()
	}
	if rt := ld.Table(); rt != nil {
		st.Epoch = rt.Epoch
		st.Shards = rt.NumShards(0)
		st.Served = rt.Served.Value()
		st.UtilitySkew = rt.UtilitySkew()
		for t, pools := range rt.Pools {
			for sh, pool := range pools {
				if pool == nil {
					continue
				}
				q := pool.QueueStats()
				st.Queues = append(st.Queues, ShardQueueStatus{
					Table: t, Shard: sh,
					Replicas: q.Replicas, Live: q.LiveReplicas, Workers: q.Workers,
					Depth: q.Depth, Capacity: q.Capacity,
					DepthEWMA: q.DepthEWMA, ServiceEWMA: q.ServiceEWMA,
					Enqueued: q.Enqueued, Rejected: q.Rejected,
				})
			}
		}
	}
	return st, true
}
