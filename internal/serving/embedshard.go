package serving

import (
	"context"
	"fmt"
	"time"

	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// EmbeddingShard is one sparse-shard microservice instance: it owns a
// contiguous hotness-sorted row range of one table and services bucketized
// gather-and-pool requests for it. Safe for concurrent use — gathers are
// read-only over the shard's rows.
type EmbeddingShard struct {
	TableIndex int
	ShardIndex int
	RowLo      int64 // sorted-space range [RowLo, RowHi)
	RowHi      int64

	table *embedding.Table // view of sorted rows [RowLo, RowHi)

	// Utility tracks distinct rows touched (Figs. 14/17); Latency and
	// QPS feed the HPA-style live autoscaler.
	Utility *metrics.UtilityTracker
	Latency *metrics.LatencyRecorder
	QPS     *metrics.QPSMeter
}

// NewEmbeddingShard creates a shard service over sorted rows [lo, hi) of
// sortedTable (table index t, shard index s within the plan).
func NewEmbeddingShard(t, s int, sortedTable *embedding.Table, lo, hi int64) (*EmbeddingShard, error) {
	view, err := sortedTable.Slice(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("serving: shard t%d s%d: %w", t, s, err)
	}
	return &EmbeddingShard{
		TableIndex: t,
		ShardIndex: s,
		RowLo:      lo,
		RowHi:      hi,
		table:      view,
		Utility:    metrics.NewUtilityTracker(hi - lo),
		Latency:    metrics.NewLatencyRecorder(0),
		QPS:        metrics.NewQPSMeter(10 * time.Second),
	}, nil
}

// Rows returns the shard's row count.
func (s *EmbeddingShard) Rows() int64 { return s.RowHi - s.RowLo }

// ParamBytes returns the shard's parameter footprint.
func (s *EmbeddingShard) ParamBytes() int64 { return s.table.SizeBytes() }

// Gather services one bucketized gather-and-pool request. It satisfies
// GatherClient, so a shard can be called directly (in-process transport)
// or registered with net/rpc. A context canceled before the gather starts
// aborts the call without touching the utility counters, which is what
// lets the dense shard cancel straggler gathers after a sibling failure.
func (s *EmbeddingShard) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("serving: shard t%d s%d: %w", s.TableIndex, s.ShardIndex, err)
	}
	b := embedding.Batch{Indices: req.Indices, Offsets: req.Offsets}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("serving: shard t%d s%d: %w", s.TableIndex, s.ShardIndex, err)
	}
	bs := b.BatchSize()
	out := tensor.NewMatrix(bs, s.table.Dim)
	if err := s.table.GatherPoolBatch(out, &b); err != nil {
		return fmt.Errorf("serving: shard t%d s%d: %w", s.TableIndex, s.ShardIndex, err)
	}
	s.Utility.TouchAll(req.Indices)
	reply.BatchSize = bs
	reply.Dim = s.table.Dim
	reply.Pooled = out.Data
	s.Latency.Observe(time.Since(start))
	s.QPS.Mark()
	return nil
}

var _ GatherClient = (*EmbeddingShard)(nil)
