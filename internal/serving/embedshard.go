package serving

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/embedding"
	"repro/internal/metrics"
	"repro/internal/serving/wire"
	"repro/internal/tensor"
)

// EmbeddingShard is one sparse-shard microservice instance: it owns a
// contiguous hotness-sorted row range of one table and services bucketized
// gather-and-pool requests for it. Safe for concurrent use — gathers are
// read-only over the shard's rows, which is what lets a ReplicaPool drive
// one shard from several pull workers at once (and lets the queue-depth
// autoscaler spawn an extra in-process replica over the same sorted rows).
type EmbeddingShard struct {
	TableIndex int
	ShardIndex int
	RowLo      int64 // sorted-space range [RowLo, RowHi)
	RowHi      int64

	table *embedding.Table // view of sorted rows [RowLo, RowHi)

	// Utility tracks distinct rows touched (Figs. 14/17); Latency and
	// QPS feed the HPA-style live autoscaler.
	Utility *metrics.UtilityTracker
	Latency *metrics.LatencyRecorder
	QPS     *metrics.QPSMeter
}

// NewEmbeddingShard creates a shard service over sorted rows [lo, hi) of
// sortedTable (table index t, shard index s within the plan).
func NewEmbeddingShard(t, s int, sortedTable *embedding.Table, lo, hi int64) (*EmbeddingShard, error) {
	view, err := sortedTable.Slice(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("serving: shard t%d s%d: %w", t, s, err)
	}
	return &EmbeddingShard{
		TableIndex: t,
		ShardIndex: s,
		RowLo:      lo,
		RowHi:      hi,
		table:      view,
		Utility:    metrics.NewUtilityTracker(hi - lo),
		Latency:    metrics.NewLatencyRecorder(0),
		QPS:        metrics.NewQPSMeter(10 * time.Second),
	}, nil
}

// Rows returns the shard's row count.
func (s *EmbeddingShard) Rows() int64 { return s.RowHi - s.RowLo }

// prewarmSink absorbs Prewarm's reads so the touch loop can never be
// optimized away.
var prewarmSink atomic.Uint32

// Prewarm touches the shard's first rows (local sorted space, so row 0 is
// the shard's hottest embedding) by streaming them through the cache —
// the pre-publish warm-up step of the epoch lifecycle. It deliberately
// bypasses the gather path: warming must not distort the shard's utility,
// latency or QPS metrics. Returns the number of rows touched.
func (s *EmbeddingShard) Prewarm(rows int64) int64 {
	if rows > s.Rows() {
		rows = s.Rows()
	}
	if rows <= 0 {
		return 0
	}
	var sum float32
	for r := int64(0); r < rows; r++ {
		row, err := s.table.Vector(r)
		if err != nil {
			return r
		}
		for _, v := range row {
			sum += v
		}
	}
	prewarmSink.Store(math.Float32bits(sum))
	return rows
}

// ParamBytes returns the shard's parameter footprint.
func (s *EmbeddingShard) ParamBytes() int64 { return s.table.SizeBytes() }

// Gather services one bucketized gather-and-pool request. It satisfies
// GatherClient, so a shard can be called directly (in-process transport)
// or registered with net/rpc. A context canceled before the gather starts
// aborts the call without touching the utility counters, which is what
// lets the dense shard cancel straggler gathers after a sibling failure.
func (s *EmbeddingShard) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("serving: shard t%d s%d: %w", s.TableIndex, s.ShardIndex, err)
	}
	if len(req.Offsets) == 0 {
		// Rows mode (gather path v2): one raw row per index, no pooling.
		// This is the local/gob transport's analogue of AppendGatherRows.
		n := len(req.Indices)
		dim := s.table.Dim
		out := wire.GetFloat32(n * dim)
		for i, idx := range req.Indices {
			row, err := s.table.Vector(idx)
			if err != nil {
				wire.PutFloat32(out)
				return fmt.Errorf("serving: shard t%d s%d: %w", s.TableIndex, s.ShardIndex, err)
			}
			copy(out[i*dim:(i+1)*dim], row)
		}
		s.Utility.TouchAll(req.Indices)
		reply.BatchSize = n
		reply.Dim = dim
		reply.Pooled = out
		s.Latency.Observe(time.Since(start))
		s.QPS.Mark()
		return nil
	}
	b := embedding.Batch{Indices: req.Indices, Offsets: req.Offsets}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("serving: shard t%d s%d: %w", s.TableIndex, s.ShardIndex, err)
	}
	bs := b.BatchSize()
	// The pooled output draws from the shared buffer pool; the dense
	// shard recycles it after merging (GatherPool zeroes each row before
	// accumulating, so recycled contents never leak through).
	out := tensor.Matrix{Rows: bs, Cols: s.table.Dim, Data: wire.GetFloat32(bs * s.table.Dim)}
	if err := s.table.GatherPoolBatch(&out, &b); err != nil {
		wire.PutFloat32(out.Data)
		return fmt.Errorf("serving: shard t%d s%d: %w", s.TableIndex, s.ShardIndex, err)
	}
	s.Utility.TouchAll(req.Indices)
	reply.BatchSize = bs
	reply.Dim = s.table.Dim
	reply.Pooled = out.Data
	s.Latency.Observe(time.Since(start))
	s.QPS.Mark()
	return nil
}

// AppendGatherRows is the zero-copy server path for rows-mode gathers on
// the binary transport (wire.RowSource): rows are encoded straight from
// the shard's sorted-table storage into the connection's reply frame, so
// the per-call float32 Matrix copy disappears entirely. Metrics and
// validation mirror Gather.
func (s *EmbeddingShard) AppendGatherRows(ctx context.Context, req *wire.GatherRequest, frame []byte, enc byte) ([]byte, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return frame, fmt.Errorf("serving: shard t%d s%d: %w", s.TableIndex, s.ShardIndex, err)
	}
	dim := s.table.Dim
	frame = wire.AppendGatherReplyHeader(frame, len(req.Indices), dim, enc)
	for _, idx := range req.Indices {
		row, err := s.table.Vector(idx)
		if err != nil {
			return frame, fmt.Errorf("serving: shard t%d s%d: %w", s.TableIndex, s.ShardIndex, err)
		}
		frame = wire.AppendGatherRow(frame, row, enc)
	}
	s.Utility.TouchAll(req.Indices)
	s.Latency.Observe(time.Since(start))
	s.QPS.Mark()
	return frame, nil
}

var _ GatherClient = (*EmbeddingShard)(nil)
var _ wire.RowSource = (*EmbeddingShard)(nil)

// Gather-reply buffers recycle through the wire package's shared float32
// pool: on the in-process transport the same backing array cycles
// shard → dense merge → pool → shard; on TCP the server-side copy is
// consumed by the binary codec (and recycled there after the write),
// while the client-side decoded buffer returns to the same pool after the
// merge. One pool for all of it keeps the working set tight across
// transports.
