package serving

import (
	"context"
	"fmt"
	"net"
	"net/rpc"
	"sync"
)

// This file provides the loopback-TCP transport: every shard can be
// exported as a net/rpc service (the stand-in for the paper's C++ gRPC
// layer) and consumed through a GatherClient/PredictClient that dials it.

// RPCServer hosts one or more shard services on a TCP listener.
type RPCServer struct {
	listener net.Listener
	server   *rpc.Server
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	done     chan struct{}
}

// NewRPCServer starts a server on addr ("127.0.0.1:0" picks a free port).
func NewRPCServer(addr string) (*RPCServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serving: rpc listen: %w", err)
	}
	s := &RPCServer{
		listener: ln,
		server:   rpc.NewServer(),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address for clients to dial.
func (s *RPCServer) Addr() string { return s.listener.Addr().String() }

// RegisterGather exposes a gather service under name.
func (s *RPCServer) RegisterGather(name string, svc GatherClient) error {
	return s.server.RegisterName(name, &gatherRPC{svc: svc})
}

// RegisterPredict exposes a predict service under name.
func (s *RPCServer) RegisterPredict(name string, svc PredictClient) error {
	return s.server.RegisterName(name, &predictRPC{svc: svc})
}

// RegisterAdmin exposes a deployment's lifecycle control plane under name
// (conventionally AdminServiceName(frontend), so the admin endpoint rides
// the same listener as the predict traffic it administers).
func (s *RPCServer) RegisterAdmin(name string, ctrl *Controller) error {
	return s.server.RegisterName(name, &adminRPC{ctrl: ctrl})
}

func (s *RPCServer) acceptLoop() {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				return // listener failed; stop accepting
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			s.server.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener and all live connections.
func (s *RPCServer) Close() error {
	close(s.done)
	err := s.listener.Close()
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	return err
}

// gatherRPC adapts a GatherClient to net/rpc's method signature. net/rpc
// methods carry no context, so the caller's deadline rides in the request
// (GatherRequest.Deadline) and is reconstructed here.
type gatherRPC struct{ svc GatherClient }

// Gather is the exported RPC method.
func (g *gatherRPC) Gather(req *GatherRequest, reply *GatherReply) error {
	ctx, cancel := deadlineContext(req.Deadline)
	defer cancel()
	return g.svc.Gather(ctx, req, reply)
}

// predictRPC adapts a PredictClient to net/rpc's method signature.
type predictRPC struct{ svc PredictClient }

// Predict is the exported RPC method.
func (p *predictRPC) Predict(req *PredictRequest, reply *PredictReply) error {
	ctx, cancel := deadlineContext(req.Deadline)
	defer cancel()
	return p.svc.Predict(ctx, req, reply)
}

// RPCGatherClient calls a remote gather service.
type RPCGatherClient struct {
	client *rpc.Client
	method string
}

// DialGather connects to a gather service registered under name at addr.
func DialGather(addr, name string) (*RPCGatherClient, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serving: rpc dial %s: %w", addr, err)
	}
	return &RPCGatherClient{client: c, method: name + ".Gather"}, nil
}

// rpcGo issues one net/rpc call with context cancellation: a canceled
// context unblocks the caller immediately, while the in-flight RPC's
// eventual reply lands in a private struct and is discarded — an
// abandoned call can never race a reply the caller has moved on from.
func rpcGo[Rep any](ctx context.Context, client *rpc.Client, method string, req any, reply *Rep) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var inner Rep
	call := client.Go(method, req, &inner, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return ctx.Err()
	case done := <-call.Done:
		if done.Error != nil {
			return done.Error
		}
		*reply = inner
		return nil
	}
}

// Gather implements GatherClient over the wire: the context deadline is
// stamped onto the request (copy-on-write, the caller's request is never
// mutated) and the call follows the rpcGo cancel contract.
func (c *RPCGatherClient) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	if dl := ctxDeadlineNanos(ctx); dl != 0 && dl != req.Deadline {
		stamped := *req
		stamped.Deadline = dl
		req = &stamped
	}
	return rpcGo(ctx, c.client, c.method, req, reply)
}

// Close tears down the connection.
func (c *RPCGatherClient) Close() error { return c.client.Close() }

var _ GatherClient = (*RPCGatherClient)(nil)

// RPCPredictClient calls a remote predict service.
type RPCPredictClient struct {
	client *rpc.Client
	method string
}

// DialPredict connects to a predict service registered under name at addr.
func DialPredict(addr, name string) (*RPCPredictClient, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serving: rpc dial %s: %w", addr, err)
	}
	return &RPCPredictClient{client: c, method: name + ".Predict"}, nil
}

// Predict implements PredictClient over the wire (same deadline/cancel
// contract as RPCGatherClient.Gather).
func (c *RPCPredictClient) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	if dl := ctxDeadlineNanos(ctx); dl != 0 && dl != req.Deadline {
		stamped := *req
		stamped.Deadline = dl
		req = &stamped
	}
	return rpcGo(ctx, c.client, c.method, req, reply)
}

// Close tears down the connection.
func (c *RPCPredictClient) Close() error { return c.client.Close() }

var _ PredictClient = (*RPCPredictClient)(nil)
