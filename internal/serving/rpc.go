package serving

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/rpc"
	"sync"
	"time"

	"repro/internal/serving/wire"
)

// This file provides the loopback-TCP transport. Every shard can be
// exported as a network service (the stand-in for the paper's C++ gRPC
// layer) and consumed through a GatherClient/PredictClient that dials it.
// One listener speaks two codecs: the binary framed protocol
// (internal/serving/wire — the hot path: no reflection, pooled buffers,
// pipelined sticky connections) and net/rpc gob (the legacy codec, still
// carrying the admin control plane and any pre-wire clients). The codec
// is negotiated at accept time by sniffing the first four bytes of the
// connection: the wire magic routes to the framed server, anything else
// replays into gob.

// DialTimeout bounds every transport dial (TCP connect plus, for the
// binary codec, the handshake), so a hung shard address fails pool
// construction promptly instead of blocking it forever.
const DialTimeout = 5 * time.Second

// RPCServer hosts one or more shard services on a TCP listener, serving
// each accepted connection in whichever codec the client opens with.
type RPCServer struct {
	listener net.Listener
	server   *rpc.Server
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	done     chan struct{}

	epMu      sync.RWMutex
	endpoints map[string]wire.Endpoint
}

// NewRPCServer starts a server on addr ("127.0.0.1:0" picks a free port).
func NewRPCServer(addr string) (*RPCServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serving: rpc listen: %w", err)
	}
	s := &RPCServer{
		listener:  ln,
		server:    rpc.NewServer(),
		conns:     make(map[net.Conn]struct{}),
		done:      make(chan struct{}),
		endpoints: make(map[string]wire.Endpoint),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address for clients to dial.
func (s *RPCServer) Addr() string { return s.listener.Addr().String() }

// GatherWireOptions selects the per-service gather-reply encoding on the
// binary codec (gob replies are unaffected; these are wire encodings, not
// service changes). At most one of Quant/FP16 may be set.
type GatherWireOptions struct {
	Quant bool // int8-quantized rows
	FP16  bool // half-precision rows
}

// RegisterGather exposes a gather service under name on both codecs.
func (s *RPCServer) RegisterGather(name string, svc GatherClient) error {
	return s.RegisterGatherWire(name, svc, GatherWireOptions{})
}

// RegisterQuantGather is RegisterGather with the int8-quantized
// gather-reply encoding on the binary codec.
func (s *RPCServer) RegisterQuantGather(name string, svc GatherClient) error {
	return s.RegisterGatherWire(name, svc, GatherWireOptions{Quant: true})
}

// RegisterGatherWire is RegisterGather with explicit wire options. If svc
// also implements wire.RowSource, rows-mode gathers on the binary codec
// take the zero-copy encode path.
func (s *RPCServer) RegisterGatherWire(name string, svc GatherClient, opts GatherWireOptions) error {
	if opts.Quant && opts.FP16 {
		return fmt.Errorf("serving: service %q: quant and fp16 wire encodings are mutually exclusive", name)
	}
	if err := s.server.RegisterName(name, &gatherRPC{svc: svc}); err != nil {
		return err
	}
	ep := wire.Endpoint{Gather: svc, Quant: opts.Quant, FP16: opts.FP16}
	if rs, ok := svc.(wire.RowSource); ok {
		ep.Rows = rs
	}
	s.epMu.Lock()
	s.endpoints[name] = ep
	s.epMu.Unlock()
	return nil
}

// RegisterPredict exposes a predict service under name on both codecs.
func (s *RPCServer) RegisterPredict(name string, svc PredictClient) error {
	if err := s.server.RegisterName(name, &predictRPC{svc: svc}); err != nil {
		return err
	}
	s.epMu.Lock()
	s.endpoints[name] = wire.Endpoint{Predict: svc}
	s.epMu.Unlock()
	return nil
}

// RegisterAdmin exposes a deployment's lifecycle control plane under name
// (conventionally AdminServiceName(frontend), so the admin endpoint rides
// the same listener as the predict traffic it administers). Admin traffic
// stays on the gob codec: it is low-rate control-plane work, and the
// sniffing accept loop gives it passthrough alongside binary predict
// connections for free.
func (s *RPCServer) RegisterAdmin(name string, ctrl *Controller) error {
	return s.server.RegisterName(name, &adminRPC{ctrl: ctrl})
}

// resolve maps a binary preamble to a registered endpoint.
func (s *RPCServer) resolve(kind byte, name string) (wire.Endpoint, error) {
	s.epMu.RLock()
	ep, ok := s.endpoints[name]
	s.epMu.RUnlock()
	if !ok {
		return wire.Endpoint{}, fmt.Errorf("serving: no service %q", name)
	}
	switch kind {
	case wire.KindGather:
		if ep.Gather == nil {
			return wire.Endpoint{}, fmt.Errorf("serving: service %q is not a gather service", name)
		}
	case wire.KindPredict:
		if ep.Predict == nil {
			return wire.Endpoint{}, fmt.Errorf("serving: service %q is not a predict service", name)
		}
	default:
		return wire.Endpoint{}, fmt.Errorf("serving: unknown connection kind %d", kind)
	}
	return ep, nil
}

func (s *RPCServer) acceptLoop() {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			// A failed Accept is terminal either way; what differs is
			// whether it was asked for. Close closes s.done before the
			// listener, so a clean shutdown stays silent and a listener
			// failure is logged exactly once.
			select {
			case <-s.done:
			default:
				log.Printf("serving: rpc accept on %s failed, no longer accepting: %v", s.Addr(), err)
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			s.serveConn(conn)
			_ = conn.Close()
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// serveConn sniffs the codec from the connection's first four bytes and
// serves it: the wire magic selects the binary framed protocol, anything
// else (a gob type descriptor never starts with the magic's first byte)
// replays the sniffed bytes into net/rpc.
func (s *RPCServer) serveConn(conn net.Conn) {
	var first [4]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return
	}
	if first == wire.Magic {
		wire.ServeConn(conn, s.resolve)
		return
	}
	s.server.ServeConn(&sniffedConn{Conn: conn, prefix: first[:]})
}

// sniffedConn replays sniffed bytes ahead of the remaining stream.
type sniffedConn struct {
	net.Conn
	prefix []byte
}

// Read drains the replay prefix before the live connection.
func (c *sniffedConn) Read(p []byte) (int, error) {
	if len(c.prefix) > 0 {
		n := copy(p, c.prefix)
		c.prefix = c.prefix[n:]
		return n, nil
	}
	return c.Conn.Read(p)
}

// Close stops the listener and all live connections.
func (s *RPCServer) Close() error {
	close(s.done)
	err := s.listener.Close()
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	return err
}

// gatherRPC adapts a GatherClient to net/rpc's method signature. net/rpc
// methods carry no context, so the caller's deadline rides in the request
// (GatherRequest.Deadline) and is reconstructed here.
type gatherRPC struct{ svc GatherClient }

// Gather is the exported RPC method.
func (g *gatherRPC) Gather(req *GatherRequest, reply *GatherReply) error {
	ctx, cancel := deadlineContext(req.Deadline)
	defer cancel()
	return g.svc.Gather(ctx, req, reply)
}

// predictRPC adapts a PredictClient to net/rpc's method signature.
type predictRPC struct{ svc PredictClient }

// Predict is the exported RPC method.
func (p *predictRPC) Predict(req *PredictRequest, reply *PredictReply) error {
	ctx, cancel := deadlineContext(req.Deadline)
	defer cancel()
	return p.svc.Predict(ctx, req, reply)
}

// RPCGatherClient calls a remote gather service over the binary framed
// codec: one sticky pipelined connection, any number of concurrent calls.
type RPCGatherClient struct {
	conn *wire.Conn
}

// DialGather connects to a gather service registered under name at addr,
// negotiating the binary codec (and failing fast on an unregistered name
// or a hung address — the dial and handshake are bounded by DialTimeout).
func DialGather(addr, name string) (*RPCGatherClient, error) {
	c, err := wire.Dial(addr, name, wire.KindGather, DialTimeout)
	if err != nil {
		return nil, err
	}
	return &RPCGatherClient{conn: c}, nil
}

// Gather implements GatherClient over the wire: the context deadline is
// stamped onto the request (copy-on-write, the caller's request is never
// mutated) and the call follows the rpcGo cancel contract — a canceled
// context unblocks the caller immediately, and the abandoned call's
// eventual reply decodes into a private struct the reader discards.
func (c *RPCGatherClient) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	if dl := ctxDeadlineNanos(ctx); dl != 0 && dl != req.Deadline {
		stamped := *req
		stamped.Deadline = dl
		req = &stamped
	}
	var inner GatherReply
	err := c.conn.Call(ctx,
		func(b []byte) []byte { return wire.AppendGatherRequest(b, req) },
		func(p []byte) error { return wire.DecodeGatherReply(p, &inner) })
	if err != nil {
		return err
	}
	*reply = inner
	return nil
}

// Close tears down the connection.
func (c *RPCGatherClient) Close() error { return c.conn.Close() }

var _ GatherClient = (*RPCGatherClient)(nil)

// RPCPredictClient calls a remote predict service over the binary framed
// codec (same pipelining and cancel contract as RPCGatherClient).
type RPCPredictClient struct {
	conn *wire.Conn
}

// DialPredict connects to a predict service registered under name at
// addr over the binary codec (see DialGather).
func DialPredict(addr, name string) (*RPCPredictClient, error) {
	c, err := wire.Dial(addr, name, wire.KindPredict, DialTimeout)
	if err != nil {
		return nil, err
	}
	return &RPCPredictClient{conn: c}, nil
}

// Predict implements PredictClient over the wire (same deadline/cancel
// contract as RPCGatherClient.Gather).
func (c *RPCPredictClient) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	if dl := ctxDeadlineNanos(ctx); dl != 0 && dl != req.Deadline {
		stamped := *req
		stamped.Deadline = dl
		req = &stamped
	}
	var inner PredictReply
	err := c.conn.Call(ctx,
		func(b []byte) []byte { return wire.AppendPredictRequest(b, req) },
		func(p []byte) error { return wire.DecodePredictReply(p, &inner) })
	if err != nil {
		return err
	}
	*reply = inner
	return nil
}

// Close tears down the connection.
func (c *RPCPredictClient) Close() error { return c.conn.Close() }

var _ PredictClient = (*RPCPredictClient)(nil)

// dialGob dials a net/rpc gob connection with the same bound as the
// binary codec's dial.
func dialGob(addr string) (*rpc.Client, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("serving: rpc dial %s: %w", addr, err)
	}
	return rpc.NewClient(conn), nil
}

// rpcGo issues one net/rpc call with context cancellation: a canceled
// context unblocks the caller immediately, while the in-flight RPC's
// eventual reply lands in a private struct and is discarded — an
// abandoned call can never race a reply the caller has moved on from.
func rpcGo[Rep any](ctx context.Context, client *rpc.Client, method string, req any, reply *Rep) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var inner Rep
	call := client.Go(method, req, &inner, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return ctx.Err()
	case done := <-call.Done:
		if done.Error != nil {
			return done.Error
		}
		*reply = inner
		return nil
	}
}

// GobGatherClient calls a remote gather service over the legacy net/rpc
// gob codec. The binary codec (DialGather) is the default everywhere; gob
// clients remain for mixed-fleet interop and as the benchmark baseline
// the wire codec is measured against.
type GobGatherClient struct {
	client *rpc.Client
	method string
}

// DialGatherGob connects to a gather service over the gob codec.
func DialGatherGob(addr, name string) (*GobGatherClient, error) {
	c, err := dialGob(addr)
	if err != nil {
		return nil, err
	}
	return &GobGatherClient{client: c, method: name + ".Gather"}, nil
}

// Gather implements GatherClient over gob (rpcGo cancel contract).
func (c *GobGatherClient) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	if dl := ctxDeadlineNanos(ctx); dl != 0 && dl != req.Deadline {
		stamped := *req
		stamped.Deadline = dl
		req = &stamped
	}
	return rpcGo(ctx, c.client, c.method, req, reply)
}

// Close tears down the connection.
func (c *GobGatherClient) Close() error { return c.client.Close() }

var _ GatherClient = (*GobGatherClient)(nil)

// GobPredictClient calls a remote predict service over the legacy gob
// codec (see GobGatherClient).
type GobPredictClient struct {
	client *rpc.Client
	method string
}

// DialPredictGob connects to a predict service over the gob codec.
func DialPredictGob(addr, name string) (*GobPredictClient, error) {
	c, err := dialGob(addr)
	if err != nil {
		return nil, err
	}
	return &GobPredictClient{client: c, method: name + ".Predict"}, nil
}

// Predict implements PredictClient over gob (rpcGo cancel contract).
func (c *GobPredictClient) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	if dl := ctxDeadlineNanos(ctx); dl != 0 && dl != req.Deadline {
		stamped := *req
		stamped.Deadline = dl
		req = &stamped
	}
	return rpcGo(ctx, c.client, c.method, req, reply)
}

// Close tears down the connection.
func (c *GobPredictClient) Close() error { return c.client.Close() }

var _ PredictClient = (*GobPredictClient)(nil)
