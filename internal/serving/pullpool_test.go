package serving

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// This file is the pull-pool invariant suite (run under -race by the
// race-repartition CI job): no gather is lost or duplicated across
// scale-up, scale-down and kill-replica mid-flight; bounded-queue
// backpressure surfaces the typed error before the caller's deadline
// blows; workers drain to zero on epoch close; and the queue-depth
// autoscaling policy is hysteretic and monotone as a pure function.

// countedGather records every successful serve and stamps a canonical
// reply, so the suite can reconcile caller-side and replica-side tallies.
type countedGather struct {
	served atomic.Int64
}

func (c *countedGather) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	reply.BatchSize = 1
	reply.Dim = 1
	reply.Pooled = append(reply.Pooled[:0], 42)
	c.served.Add(1)
	return nil
}

// TestPullPoolCountedOracleUnderChurn drives concurrent gathers through a
// pool whose replica set is being scaled up, scaled down and
// killed/revived mid-flight, and reconciles the books: every caller
// succeeds exactly once (at most one replica is dead at a time and
// scale-in never removes the last live one, so failover always has a
// live target), the replicas' combined serve count
// equals the callers' success count (nothing lost, nothing duplicated),
// and no reply is ever corrupted by a failed attempt.
func TestPullPoolCountedOracleUnderChurn(t *testing.T) {
	anchor := &countedGather{}
	pool := NewReplicaPool(anchor)
	defer pool.Close()
	clients := []*countedGather{anchor} // every client ever added
	var clientsMu sync.Mutex

	stopChurn := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(2)
	go func() { // membership churn: add and remove replicas above the anchor
		defer churn.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stopChurn:
				return
			default:
			}
			if pool.Size() < 4 && rng.Intn(2) == 0 {
				c := &countedGather{}
				clientsMu.Lock()
				clients = append(clients, c)
				clientsMu.Unlock()
				pool.Add(c)
			} else {
				pool.Remove() // coldest-but-never-last-live; never empties the pool
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	go func() { // fault churn: kill/revive everything but replica 0
		defer churn.Done()
		rng := rand.New(rand.NewSource(2))
		for {
			select {
			case <-stopChurn:
				return
			default:
			}
			if n := pool.Size(); n > 1 {
				i := 1 + rng.Intn(n-1)
				pool.KillReplica(i)
				time.Sleep(100 * time.Microsecond)
				pool.ReviveReplica(i)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const callers, perCaller = 8, 200
	var succ atomic.Int64
	var wg sync.WaitGroup
	req := &GatherRequest{Indices: []int64{1}, Offsets: []int32{0}}
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				var reply GatherReply
				if err := pool.Gather(bg, req, &reply); err != nil {
					t.Errorf("gather failed despite a live anchor replica: %v", err)
					return
				}
				if reply.BatchSize != 1 || reply.Dim != 1 || len(reply.Pooled) != 1 || reply.Pooled[0] != 42 {
					t.Errorf("corrupted reply: %+v", reply)
					return
				}
				succ.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stopChurn)
	churn.Wait()

	clientsMu.Lock()
	var served int64
	for _, c := range clients {
		served += c.served.Load()
	}
	clientsMu.Unlock()
	if succ.Load() != callers*perCaller {
		t.Fatalf("caller successes = %d, want %d", succ.Load(), callers*perCaller)
	}
	if served != succ.Load() {
		t.Fatalf("replica serves = %d, caller successes = %d: a gather was lost or duplicated", served, succ.Load())
	}
}

// TestPullPoolMonolithEquivalence checks the pull pool against the
// monolith oracle: a pool of two replica shards over the same table must
// return byte-identical pooled vectors to a direct single-shard gather,
// request for request.
func TestPullPoolMonolithEquivalence(t *testing.T) {
	tab, err := embedding.NewRandomTable("t", 64, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	mono, _ := NewEmbeddingShard(0, 0, tab, 0, 64)
	r1, _ := NewEmbeddingShard(0, 0, tab, 0, 64)
	r2, _ := NewEmbeddingShard(0, 0, tab, 0, 64)
	pool := NewReplicaPool(r1, r2)
	defer pool.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(4)
		req := &GatherRequest{Offsets: make([]int32, n)}
		for b := 0; b < n; b++ {
			req.Offsets[b] = int32(len(req.Indices))
			for k := 0; k <= rng.Intn(3); k++ {
				req.Indices = append(req.Indices, int64(rng.Intn(64)))
			}
		}
		var want, got GatherReply
		if err := mono.Gather(bg, req, &want); err != nil {
			t.Fatal(err)
		}
		if err := pool.Gather(bg, req, &got); err != nil {
			t.Fatal(err)
		}
		if got.BatchSize != want.BatchSize || got.Dim != want.Dim ||
			!tensor.AlmostEqual(want.Pooled, got.Pooled, 0) {
			t.Fatalf("request %d: pool reply diverged from monolith: %+v vs %+v", i, got, want)
		}
	}
}

// wedgedGather parks every call until released, signalling each start.
type wedgedGather struct {
	calls   atomic.Int64
	started chan struct{}
	release chan struct{}
}

func (b *wedgedGather) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	b.calls.Add(1)
	b.started <- struct{}{}
	select {
	case <-b.release:
	case <-ctx.Done():
		return ctx.Err()
	}
	reply.BatchSize = 1
	return nil
}

// TestPullPoolBackpressureTypedError fills a capacity-1 queue behind a
// wedged replica and checks the next enqueue is rejected immediately with
// the typed ErrQueueFull — long before the caller's generous deadline
// could blow.
func TestPullPoolBackpressureTypedError(t *testing.T) {
	wedged := &wedgedGather{started: make(chan struct{}, 4), release: make(chan struct{})}
	pool := NewReplicaPoolOptions(PoolOptions{QueueCapacity: 1, WorkersPerReplica: 1}, wedged)
	defer pool.Close() // after the release below unwedges the worker
	defer close(wedged.release)
	req := &GatherRequest{Indices: []int64{0}, Offsets: []int32{0}}
	go func() { // occupies the single worker
		var reply GatherReply
		_ = pool.Gather(bg, req, &reply)
	}()
	<-wedged.started
	go func() { // occupies the single queue slot
		var reply GatherReply
		_ = pool.Gather(bg, req, &reply)
	}()
	for pool.QueueStats().Depth == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithTimeout(bg, 10*time.Second)
	defer cancel()
	start := time.Now()
	var reply GatherReply
	err := pool.Gather(ctx, req, &reply)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("backpressure took %v; must reject immediately, not ride the deadline", elapsed)
	}
	if st := pool.QueueStats(); st.Rejected == 0 {
		t.Fatalf("rejection not counted: %+v", st)
	}
}

// TestPullPoolAbandonOnContext cancels a caller whose task is still
// queued behind a wedged replica: the caller must return the context error
// promptly, and the eventually-dequeuing worker must discard the
// abandoned task without serving it.
func TestPullPoolAbandonOnContext(t *testing.T) {
	wedged := &wedgedGather{started: make(chan struct{}, 4), release: make(chan struct{})}
	pool := NewReplicaPoolOptions(PoolOptions{QueueCapacity: 8, WorkersPerReplica: 1}, wedged)
	defer pool.Close()
	req := &GatherRequest{Indices: []int64{0}, Offsets: []int32{0}}
	go func() {
		var reply GatherReply
		_ = pool.Gather(bg, req, &reply)
	}()
	<-wedged.started
	ctx, cancel := context.WithCancel(bg)
	done := make(chan error, 1)
	go func() {
		var reply GatherReply
		done <- pool.Gather(ctx, req, &reply)
	}()
	for pool.QueueStats().Depth == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("abandoned caller did not return promptly")
	}
	close(wedged.release)
	// Let the freed worker dequeue the abandoned task: it must discard it
	// without dispatching to the replica.
	deadline := time.Now().Add(time.Second)
	for pool.QueueStats().Depth > 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(5 * time.Millisecond)
	if got := wedged.calls.Load(); got != 1 {
		t.Fatalf("replica saw %d calls, want 1: an abandoned task was dispatched", got)
	}
}

// TestPullPoolDrainsWorkersOnClose closes a pool under concurrent load:
// Close must wait for every worker to exit (claimed tasks finish first),
// queued tasks must fail with the typed ErrPoolClosed instead of hanging,
// and subsequent enqueues must be rejected.
func TestPullPoolDrainsWorkersOnClose(t *testing.T) {
	tab, _ := embedding.NewRandomTable("t", 16, 2, 1)
	s1, _ := NewEmbeddingShard(0, 0, tab, 0, 16)
	s2, _ := NewEmbeddingShard(0, 0, tab, 0, 16)
	pool := NewReplicaPool(s1, s2)
	if pool.Workers() != 2*DefaultWorkersPerReplica {
		t.Fatalf("workers = %d, want %d", pool.Workers(), 2*DefaultWorkersPerReplica)
	}
	req := &GatherRequest{Indices: []int64{1}, Offsets: []int32{0}}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var reply GatherReply
			// In-flight work either completes or fails with the typed
			// close error; it must never hang or corrupt.
			if err := pool.Gather(bg, req, &reply); err != nil && !errors.Is(err, ErrPoolClosed) {
				t.Errorf("unexpected error during close: %v", err)
			}
		}()
	}
	pool.Close()
	wg.Wait()
	if pool.Workers() != 0 {
		t.Fatalf("workers = %d after Close, want 0", pool.Workers())
	}
	var reply GatherReply
	if err := pool.Gather(bg, req, &reply); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("want ErrPoolClosed after Close, got %v", err)
	}
	pool.Close() // idempotent
}

// TestPullPoolQueuePolicyHysteresis property-checks Decide as a pure
// function: no action inside the [LowDepth, HighDepth] dead band, no two
// actions within the cooldown no matter how hard the signal swings, and
// scale-in never below one replica.
func TestPullPoolQueuePolicyHysteresis(t *testing.T) {
	p := &QueuePolicy{HighDepth: 4, LowDepth: 1, Cooldown: time.Second}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	long := now.Add(-time.Hour) // stale lastScale: cooldown never gates
	// Dead band: per-replica depth in [LowDepth, HighDepth] holds steady.
	for _, depth := range []float64{1, 2, 3.9, 4} {
		if got := p.Decide(QueueStats{DepthEWMA: depth, Replicas: 1}, long, now); got != 0 {
			t.Fatalf("depth %.1f inside dead band: Decide = %d, want 0", depth, got)
		}
	}
	// Cooldown: immediately after a scale action, even an extreme swing
	// in either direction is ignored until the cooldown elapses.
	last := now
	for _, depth := range []float64{0, 100} {
		st := QueueStats{DepthEWMA: depth, Replicas: 4}
		if got := p.Decide(st, last, now.Add(p.Cooldown/2)); got != 0 {
			t.Fatalf("depth %.1f within cooldown: Decide = %d, want 0", depth, got)
		}
		if got := p.Decide(st, last, now.Add(p.Cooldown*2)); got == 0 {
			t.Fatalf("depth %.1f after cooldown: Decide = 0, want a scale action", depth)
		}
	}
	// Floor: scale-in never empties the pool.
	if got := p.Decide(QueueStats{DepthEWMA: 0, Replicas: 1}, long, now); got != 0 {
		t.Fatalf("Decide = %d at one replica, must not scale in below one", got)
	}
	// Simulated ramp with the cooldown enforced: the controller may act at
	// most once per cooldown window, so over a 10-tick overload ramp the
	// actions are spaced, not flapping.
	lastScale := long
	actions := 0
	var lastAction time.Time
	for tick := 0; tick < 10; tick++ {
		at := now.Add(time.Duration(tick) * 300 * time.Millisecond)
		st := QueueStats{DepthEWMA: 50, Replicas: 2}
		if d := p.Decide(st, lastScale, at); d != 0 {
			if actions > 0 && at.Sub(lastAction) < p.Cooldown {
				t.Fatalf("two scale actions %v apart, cooldown is %v", at.Sub(lastAction), p.Cooldown)
			}
			actions++
			lastAction = at
			lastScale = at
		}
	}
	if actions == 0 {
		t.Fatal("sustained overload never scaled")
	}
}

// TestPullPoolQueuePolicyMonotone property-checks monotonicity: holding
// everything else fixed, a deeper queue never produces a smaller scaling
// response.
func TestPullPoolQueuePolicyMonotone(t *testing.T) {
	p := &QueuePolicy{HighDepth: 4, LowDepth: 1}
	long := time.Unix(0, 0)
	now := time.Unix(1000, 0)
	for _, replicas := range []int{1, 2, 4, 8} {
		prev := -2
		for depth := 0.0; depth <= 100; depth += 0.25 {
			got := p.Decide(QueueStats{DepthEWMA: depth, Replicas: replicas}, long, now)
			if got < prev {
				t.Fatalf("replicas=%d: Decide fell from %d to %d as depth rose to %.2f", replicas, prev, got, depth)
			}
			prev = got
		}
		if prev != 1 {
			t.Fatalf("replicas=%d: extreme depth must scale out, got %d", replicas, prev)
		}
	}
	// Nil policy and unset thresholds are inert.
	var nilPolicy *QueuePolicy
	if nilPolicy.Decide(QueueStats{DepthEWMA: 100, Replicas: 1}, long, now) != 0 {
		t.Fatal("nil policy must not scale")
	}
}
