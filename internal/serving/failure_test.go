package serving

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/embedding"
)

// flakyClient fails the first failures calls, then delegates.
type flakyClient struct {
	failures int
	calls    int
	inner    GatherClient
}

func (f *flakyClient) Gather(req *GatherRequest, reply *GatherReply) error {
	f.calls++
	if f.calls <= f.failures {
		return fmt.Errorf("flaky: injected failure %d", f.calls)
	}
	return f.inner.Gather(req, reply)
}

func TestReplicaPoolFailsOverToHealthyReplica(t *testing.T) {
	tab, err := embedding.NewRandomTable("t", 100, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := NewEmbeddingShard(0, 0, tab, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	dead := &flakyClient{failures: 1 << 30, inner: healthy}
	pool := NewReplicaPool(dead, healthy)
	req := &GatherRequest{Indices: []int64{1, 2}, Offsets: []int32{0}}
	// Every call must succeed despite the dead replica in rotation.
	for i := 0; i < 10; i++ {
		var reply GatherReply
		if err := pool.Gather(req, &reply); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestReplicaPoolAllReplicasDown(t *testing.T) {
	dead1 := &flakyClient{failures: 1 << 30}
	dead2 := &flakyClient{failures: 1 << 30}
	pool := NewReplicaPool(dead1, dead2)
	var reply GatherReply
	err := pool.Gather(&GatherRequest{Indices: []int64{0}, Offsets: []int32{0}}, &reply)
	if err == nil {
		t.Fatal("want error when every replica fails")
	}
	if !strings.Contains(err.Error(), "all 2 replicas failed") {
		t.Fatalf("error %q lacks failover context", err)
	}
}

func TestReplicaPoolTransientFailureRecovers(t *testing.T) {
	tab, _ := embedding.NewRandomTable("t", 100, 4, 1)
	healthy, _ := NewEmbeddingShard(0, 0, tab, 0, 100)
	flaky := &flakyClient{failures: 2, inner: healthy}
	pool := NewReplicaPool(flaky)
	req := &GatherRequest{Indices: []int64{1}, Offsets: []int32{0}}
	var reply GatherReply
	// Single replica: first calls fail outright (no other replica).
	if err := pool.Gather(req, &reply); err == nil {
		t.Fatal("want failure during the flaky window")
	}
	if err := pool.Gather(req, &reply); err == nil {
		t.Fatal("want failure during the flaky window")
	}
	// After the transient window the same pool recovers.
	if err := pool.Gather(req, &reply); err != nil {
		t.Fatalf("recovered replica still failing: %v", err)
	}
}

func TestPredictSurvivesShardReplicaFailure(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{100, cfg.RowsPerTable}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	// Poison every pool with a dead replica alongside the healthy one;
	// predictions must keep succeeding via failover.
	for t2 := range ld.Pools {
		for s := range ld.Pools[t2] {
			ld.Pools[t2][s].Add(&flakyClient{failures: 1 << 30})
		}
	}
	for i := 0; i < 10; i++ {
		req := makeRequest(cfg, gen, uint64(i))
		var reply PredictReply
		if err := ld.Predict(req, &reply); err != nil {
			t.Fatalf("query %d failed despite healthy replicas: %v", i, err)
		}
	}
}

func TestPredictFailsWhenShardUnavailable(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{100, cfg.RowsPerTable}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	// Replace table 0 shard 0's only replica with a dead one: the dense
	// shard must surface the failure.
	ld.Pools[0][0].Add(&flakyClient{failures: 1 << 30})
	ld.Pools[0][0].Remove() // removes the healthy one (LIFO)
	// The pool now contains healthy(original)+dead minus newest... make
	// the state explicit: drain to one replica and verify behaviour by
	// checking an actual failure occurs when all replicas are dead.
	onlyDead := NewReplicaPool(&flakyClient{failures: 1 << 30})
	ld.Pools[0][0] = onlyDead
	// Rewire the dense shard's client for (0,0).
	ldDenseRewire(t, ld, 0, 0, onlyDead)
	req := makeRequest(cfg, gen, 1)
	var reply PredictReply
	if err := ld.Predict(req, &reply); err == nil {
		t.Fatal("want error when a required shard is unavailable")
	}
}

// ldDenseRewire swaps the dense shard's gather client for (table, shard).
func ldDenseRewire(t *testing.T, ld *LiveDeployment, table, shard int, c GatherClient) {
	t.Helper()
	ld.Dense.clients[table][shard] = c
}
