package serving

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/embedding"
)

// flakyClient fails the first failures calls, then delegates.
type flakyClient struct {
	failures int
	calls    int
	inner    GatherClient
}

func (f *flakyClient) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	f.calls++
	if f.calls <= f.failures {
		return fmt.Errorf("flaky: injected failure %d", f.calls)
	}
	return f.inner.Gather(ctx, req, reply)
}

// corruptingClient scribbles partial fields into the reply, then fails —
// the shape of a replica dying mid-serialization.
type corruptingClient struct{}

func (corruptingClient) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	reply.BatchSize = 999
	reply.Dim = 999
	reply.Pooled = []float32{1e9, 1e9}
	return fmt.Errorf("corrupting: died mid-reply")
}

func TestReplicaPoolFailsOverToHealthyReplica(t *testing.T) {
	tab, err := embedding.NewRandomTable("t", 100, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := NewEmbeddingShard(0, 0, tab, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	dead := &flakyClient{failures: 1 << 30, inner: healthy}
	pool := NewReplicaPool(dead, healthy)
	req := &GatherRequest{Indices: []int64{1, 2}, Offsets: []int32{0}}
	// Every call must succeed despite the dead replica in rotation.
	for i := 0; i < 10; i++ {
		var reply GatherReply
		if err := pool.Gather(bg, req, &reply); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

// TestReplicaPoolFailoverResetsReply is the regression test for the
// reply-reuse bug: a failed replica that leaves partial fields behind must
// not contaminate the reply a later healthy replica fills in.
func TestReplicaPoolFailoverResetsReply(t *testing.T) {
	tab, err := embedding.NewRandomTable("t", 100, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := NewEmbeddingShard(0, 0, tab, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Two replicas: the round robin must hit the corrupting one first at
	// least every other call, so run several calls and check each reply.
	pool := NewReplicaPool(corruptingClient{}, healthy)
	req := &GatherRequest{Indices: []int64{1}, Offsets: []int32{0}}
	for i := 0; i < 6; i++ {
		var reply GatherReply
		if err := pool.Gather(bg, req, &reply); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if reply.BatchSize != 1 || reply.Dim != 4 || len(reply.Pooled) != 4 {
			t.Fatalf("call %d: corrupted reply leaked through failover: %+v", i, reply)
		}
	}
}

func TestReplicaPoolAllReplicasDown(t *testing.T) {
	dead1 := &flakyClient{failures: 1 << 30}
	dead2 := &flakyClient{failures: 1 << 30}
	pool := NewReplicaPool(dead1, dead2)
	var reply GatherReply
	err := pool.Gather(bg, &GatherRequest{Indices: []int64{0}, Offsets: []int32{0}}, &reply)
	if err == nil {
		t.Fatal("want error when every replica fails")
	}
	if !strings.Contains(err.Error(), "all 2 replicas failed") {
		t.Fatalf("error %q lacks failover context", err)
	}
}

func TestReplicaPoolTransientFailureRecovers(t *testing.T) {
	tab, _ := embedding.NewRandomTable("t", 100, 4, 1)
	healthy, _ := NewEmbeddingShard(0, 0, tab, 0, 100)
	flaky := &flakyClient{failures: 2, inner: healthy}
	pool := NewReplicaPool(flaky)
	req := &GatherRequest{Indices: []int64{1}, Offsets: []int32{0}}
	var reply GatherReply
	// Single replica: first calls fail outright (no other replica).
	if err := pool.Gather(bg, req, &reply); err == nil {
		t.Fatal("want failure during the flaky window")
	}
	if err := pool.Gather(bg, req, &reply); err == nil {
		t.Fatal("want failure during the flaky window")
	}
	// After the transient window the same pool recovers.
	if err := pool.Gather(bg, req, &reply); err != nil {
		t.Fatalf("recovered replica still failing: %v", err)
	}
}

// failingPredict always errors; healthyPredict echoes one probability.
type failingPredict struct{ calls int }

func (f *failingPredict) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	f.calls++
	reply.Probs = []float32{-1} // partial garbage a retry must not keep
	return fmt.Errorf("predict replica down")
}

type healthyPredict struct{}

func (healthyPredict) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	reply.Probs = []float32{0.5}
	return nil
}

// TestPredictPoolFailsOver gives PredictPool the same one-retry failover
// contract ReplicaPool has: a dead dense replica in rotation must not fail
// callers while a healthy one remains, and the reply must be reset
// between attempts.
func TestPredictPoolFailsOver(t *testing.T) {
	dead := &failingPredict{}
	pool := NewPredictPool(dead, healthyPredict{})
	req := &PredictRequest{BatchSize: 1, DenseDim: 1, Dense: []float32{0}}
	for i := 0; i < 6; i++ {
		var reply PredictReply
		if err := pool.Predict(bg, req, &reply); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(reply.Probs) != 1 || reply.Probs[0] != 0.5 {
			t.Fatalf("call %d: failover leaked a failed attempt's reply: %+v", i, reply)
		}
	}
	if dead.calls == 0 {
		t.Fatal("round robin never touched the dead replica")
	}
	allDead := NewPredictPool(&failingPredict{}, &failingPredict{})
	var reply PredictReply
	if err := allDead.Predict(bg, req, &reply); err == nil ||
		!strings.Contains(err.Error(), "all 2 predict replicas failed") {
		t.Fatalf("want all-replicas-failed error, got %v", err)
	}
}

func TestPredictSurvivesShardReplicaFailure(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{100, cfg.RowsPerTable}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	// Poison every pool with a dead replica alongside the healthy one;
	// predictions must keep succeeding via failover.
	rt := ld.Table()
	for t2 := range rt.Pools {
		for s := range rt.Pools[t2] {
			rt.Pools[t2][s].Add(&flakyClient{failures: 1 << 30})
		}
	}
	for i := 0; i < 10; i++ {
		req := makeRequest(cfg, gen, uint64(i))
		var reply PredictReply
		if err := ld.Predict(bg, req, &reply); err != nil {
			t.Fatalf("query %d failed despite healthy replicas: %v", i, err)
		}
	}
}

func TestPredictFailsWhenShardUnavailable(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{100, cfg.RowsPerTable}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	// Publish a routing epoch whose (0,0) client is a dead pool: the
	// dense shard must surface the failure. Building the broken epoch
	// from the live one exercises the same path a bad repartition would.
	rt := ld.Table()
	clients := make([][]GatherClient, len(rt.Clients))
	for t2 := range rt.Clients {
		clients[t2] = append([]GatherClient(nil), rt.Clients[t2]...)
	}
	clients[0][0] = NewReplicaPool(&flakyClient{failures: 1 << 30})
	broken, err := NewRoutingTable(rt.Epoch+1, cfg, rt.Pre, rt.Boundaries, clients)
	if err != nil {
		t.Fatal(err)
	}
	ld.Router.Publish(broken)
	req := makeRequest(cfg, gen, 1)
	var reply PredictReply
	if err := ld.Predict(bg, req, &reply); err == nil {
		t.Fatal("want error when a required shard is unavailable")
	}
}
