package serving

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/embedding"
)

// flakyClient fails the first failures calls, then delegates. Calls is
// atomic because a pull pool's workers may drive one replica concurrently.
type flakyClient struct {
	failures int64
	calls    atomic.Int64
	inner    GatherClient
}

func (f *flakyClient) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	if n := f.calls.Add(1); n <= f.failures {
		return fmt.Errorf("flaky: injected failure %d", n)
	}
	return f.inner.Gather(ctx, req, reply)
}

// corruptingClient scribbles partial fields into the reply, then fails —
// the shape of a replica dying mid-serialization.
type corruptingClient struct{}

func (corruptingClient) Gather(ctx context.Context, req *GatherRequest, reply *GatherReply) error {
	reply.BatchSize = 999
	reply.Dim = 999
	reply.Pooled = []float32{1e9, 1e9}
	return fmt.Errorf("corrupting: died mid-reply")
}

func TestReplicaPoolFailsOverToHealthyReplica(t *testing.T) {
	tab, err := embedding.NewRandomTable("t", 100, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := NewEmbeddingShard(0, 0, tab, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	dead := &flakyClient{failures: 1 << 30, inner: healthy}
	pool := NewReplicaPool(dead, healthy)
	defer pool.Close()
	req := &GatherRequest{Indices: []int64{1, 2}, Offsets: []int32{0}}
	// Every call must succeed despite the dead replica in rotation.
	for i := 0; i < 10; i++ {
		var reply GatherReply
		if err := pool.Gather(bg, req, &reply); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

// TestReplicaPoolFailoverResetsReply is the regression test for the
// reply-reuse bug: a failed replica that leaves partial fields behind must
// not contaminate the reply a later healthy replica fills in.
func TestReplicaPoolFailoverResetsReply(t *testing.T) {
	tab, err := embedding.NewRandomTable("t", 100, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := NewEmbeddingShard(0, 0, tab, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Two replicas: the round robin must hit the corrupting one first at
	// least every other call, so run several calls and check each reply.
	pool := NewReplicaPool(corruptingClient{}, healthy)
	defer pool.Close()
	req := &GatherRequest{Indices: []int64{1}, Offsets: []int32{0}}
	for i := 0; i < 6; i++ {
		var reply GatherReply
		if err := pool.Gather(bg, req, &reply); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if reply.BatchSize != 1 || reply.Dim != 4 || len(reply.Pooled) != 4 {
			t.Fatalf("call %d: corrupted reply leaked through failover: %+v", i, reply)
		}
	}
}

func TestReplicaPoolAllReplicasDown(t *testing.T) {
	dead1 := &flakyClient{failures: 1 << 30}
	dead2 := &flakyClient{failures: 1 << 30}
	pool := NewReplicaPool(dead1, dead2)
	defer pool.Close()
	var reply GatherReply
	err := pool.Gather(bg, &GatherRequest{Indices: []int64{0}, Offsets: []int32{0}}, &reply)
	if err == nil {
		t.Fatal("want error when every replica fails")
	}
	if !strings.Contains(err.Error(), "all 2 replicas failed") {
		t.Fatalf("error %q lacks failover context", err)
	}
}

func TestReplicaPoolTransientFailureRecovers(t *testing.T) {
	tab, _ := embedding.NewRandomTable("t", 100, 4, 1)
	healthy, _ := NewEmbeddingShard(0, 0, tab, 0, 100)
	flaky := &flakyClient{failures: 2, inner: healthy}
	pool := NewReplicaPool(flaky)
	defer pool.Close()
	req := &GatherRequest{Indices: []int64{1}, Offsets: []int32{0}}
	var reply GatherReply
	// Single replica: first calls fail outright (no other replica).
	if err := pool.Gather(bg, req, &reply); err == nil {
		t.Fatal("want failure during the flaky window")
	}
	if err := pool.Gather(bg, req, &reply); err == nil {
		t.Fatal("want failure during the flaky window")
	}
	// After the transient window the same pool recovers.
	if err := pool.Gather(bg, req, &reply); err != nil {
		t.Fatalf("recovered replica still failing: %v", err)
	}
}

// failingPredict always errors; healthyPredict echoes one probability.
type failingPredict struct{ calls atomic.Int64 }

func (f *failingPredict) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	f.calls.Add(1)
	reply.Probs = []float32{-1} // partial garbage a retry must not keep
	return fmt.Errorf("predict replica down")
}

type healthyPredict struct{}

func (healthyPredict) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	reply.Probs = []float32{0.5}
	return nil
}

// TestPredictPoolFailsOver gives PredictPool the same failover contract
// ReplicaPool has: a dead dense replica's workers must not fail callers
// while a healthy replica remains, and the reply must be reset between
// attempts.
func TestPredictPoolFailsOver(t *testing.T) {
	dead := &failingPredict{}
	pool := NewPredictPool(dead, healthyPredict{})
	defer pool.Close()
	req := &PredictRequest{BatchSize: 1, DenseDim: 1, Dense: []float32{0}}
	// Pull model: whichever idle worker claims a task serves it, so drive
	// a concurrent burst — the backlog forces every worker (the dead
	// replica's included) to pull, and each failed attempt must fail over
	// with a reset reply.
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var reply PredictReply
			if err := pool.Predict(bg, req, &reply); err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if len(reply.Probs) != 1 || reply.Probs[0] != 0.5 {
				t.Errorf("call %d: failover leaked a failed attempt's reply: %+v", i, reply)
			}
		}()
	}
	wg.Wait()
	if dead.calls.Load() == 0 {
		t.Fatal("the dead replica's workers never pulled a predict")
	}
	allDead := NewPredictPool(&failingPredict{}, &failingPredict{})
	defer allDead.Close()
	var reply PredictReply
	if err := allDead.Predict(bg, req, &reply); err == nil ||
		!strings.Contains(err.Error(), "all 2 predict replicas failed") {
		t.Fatalf("want all-replicas-failed error, got %v", err)
	}
}

// corruptingPredict scribbles garbage into the reply, then fails — the
// dense-path twin of corruptingClient.
type corruptingPredict struct{ calls atomic.Int64 }

func (c *corruptingPredict) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	c.calls.Add(1)
	reply.Probs = append(reply.Probs, 1e9, 1e9, 1e9)
	return fmt.Errorf("corrupting: died mid-reply")
}

// appendingPredict appends its answer instead of assigning — legitimate
// under the pool contract (every attempt starts from a zeroed reply), and
// exactly the behavior that exposes a missing reset: leaked garbage from a
// failed attempt shows up as extra elements.
type appendingPredict struct{}

func (appendingPredict) Predict(ctx context.Context, req *PredictRequest, reply *PredictReply) error {
	reply.Probs = append(reply.Probs, 0.5)
	return nil
}

// TestPredictPoolFailoverResetsReply is the predict-path regression test
// for the reply-reuse bug: both pools now share the pull-pool failover,
// which must zero the caller's reply before every retry, so a corrupted
// first attempt can never bleed into the healthy replica's answer.
func TestPredictPoolFailoverResetsReply(t *testing.T) {
	corrupt := &corruptingPredict{}
	pool := NewPredictPool(corrupt, appendingPredict{})
	defer pool.Close()
	req := &PredictRequest{BatchSize: 1, DenseDim: 1, Dense: []float32{0}}
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var reply PredictReply
			if err := pool.Predict(bg, req, &reply); err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if len(reply.Probs) != 1 || reply.Probs[0] != 0.5 {
				t.Errorf("call %d: corrupted attempt leaked through failover: %+v", i, reply)
			}
		}()
	}
	wg.Wait()
	if corrupt.calls.Load() == 0 {
		t.Fatal("the corrupting replica's workers never pulled a predict")
	}
}

func TestPredictSurvivesShardReplicaFailure(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{100, cfg.RowsPerTable}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	// Poison every pool with a dead replica alongside the healthy one;
	// predictions must keep succeeding via failover.
	rt := ld.Table()
	for t2 := range rt.Pools {
		for s := range rt.Pools[t2] {
			rt.Pools[t2][s].Add(&flakyClient{failures: 1 << 30})
		}
	}
	for i := 0; i < 10; i++ {
		req := makeRequest(cfg, gen, uint64(i))
		var reply PredictReply
		if err := ld.Predict(bg, req, &reply); err != nil {
			t.Fatalf("query %d failed despite healthy replicas: %v", i, err)
		}
	}
}

func TestPredictFailsWhenShardUnavailable(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	ld, err := BuildElastic(m, stats, []int64{100, cfg.RowsPerTable}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	// Publish a routing epoch whose (0,0) client is a dead pool: the
	// dense shard must surface the failure. Building the broken epoch
	// from the live one exercises the same path a bad repartition would.
	rt := ld.Table()
	// Publishing the hand-assembled epoch below displaces this built one,
	// so ld.Close (which closes only the current epoch) will never reach
	// its shard units — release them explicitly once the test is done.
	defer rt.Close()
	clients := make([][]GatherClient, len(rt.Clients))
	for t2 := range rt.Clients {
		clients[t2] = append([]GatherClient(nil), rt.Clients[t2]...)
	}
	brokenPool := NewReplicaPool(&flakyClient{failures: 1 << 30})
	defer brokenPool.Close()
	clients[0][0] = brokenPool
	broken, err := NewRoutingTable(rt.Epoch+1, cfg, rt.Pre, rt.Boundaries, clients)
	if err != nil {
		t.Fatal(err)
	}
	ld.Router.Publish(broken)
	req := makeRequest(cfg, gen, 1)
	var reply PredictReply
	if err := ld.Predict(bg, req, &reply); err == nil {
		t.Fatal("want error when a required shard is unavailable")
	}
}
