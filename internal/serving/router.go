package serving

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
)

// This file is the epoch-versioned, multi-model routing layer. A
// RoutingTable is one immutable snapshot of one model's serving plan: the
// preprocessing remap, the per-table shard boundaries, and a gather client
// for every shard. The Router publishes a (model name -> plan) map; each
// registered model has its own atomic epoch pointer, so one frontend can
// serve several DLRM variants and repartition each of them independently —
// publishing model A's next epoch never drains or touches model B's
// in-flight requests. A Predict call acquires exactly one epoch of exactly
// one model for its whole fan-out, so a concurrent plan swap can never mix
// shards from two plans (or two models). Live repartitioning (Sec. IV-B's
// re-profiling loop) builds the next epoch side-by-side, publishes it
// atomically, then drains and retires the old one — traffic keeps flowing
// throughout.

// DefaultModel is the model name single-model deployments serve under. A
// request whose Model field is empty routes here, which keeps the
// single-variant API (BuildElastic, NewRouter, Acquire) unchanged.
const DefaultModel = "default"

// canonicalModel maps the empty model name onto DefaultModel so "" and
// "default" address the same plan everywhere (wire format included).
func canonicalModel(name string) string {
	if name == "" {
		return DefaultModel
	}
	return name
}

// RoutingTable is one immutable epoch of one model's serving plan. All
// fields are fixed at construction; only the metrics and the in-flight
// refcount mutate, and those are concurrency-safe.
type RoutingTable struct {
	// Model names the DLRM variant this plan serves. Empty means the
	// deployment's default model; the Router canonicalizes it on
	// registration.
	Model string
	// Epoch numbers the model's plans monotonically; epoch 0 is the
	// BuildElastic/BuildMulti plan. Epochs advance per model — model A's
	// swap never moves model B's epoch.
	Epoch int64
	// Pre is the epoch's preprocessing output (hotness sort + remap). A
	// nil Pre means requests are already in sorted-ID space.
	Pre *Preprocessed
	// Plan is the per-table boundary plan (all tables currently share it).
	Plan []int64
	// Boundaries[t] is table t's shard boundaries in sorted space.
	Boundaries [][]int64
	// Clients[t][s] services gathers for shard s of table t.
	Clients [][]GatherClient
	// Shards[t][s] is the primary service instance behind Clients[t][s]
	// (owner of the epoch's utility/latency metrics).
	Shards [][]*EmbeddingShard
	// Pools[t][s] load-balances shard s of table t (same objects as
	// Clients, concretely typed for replica scaling).
	Pools [][]*ReplicaPool
	// Served counts dense-shard Predict dispatches routed through this
	// epoch — every dispatch lands in exactly one model's one epoch's
	// counter. With dynamic batching enabled a fused batch counts once,
	// not once per fused client request.
	Served *metrics.Counter

	// units[t][s] is the refcounted service bundle behind shard s of
	// table t. Units may be shared with other epochs and with the plan
	// cache; Close releases this epoch's references instead of tearing
	// transports down directly. Nil for hand-assembled tables
	// (NewRoutingTable), which still own servers/closers per epoch.
	units [][]*shardUnit

	servers  []*RPCServer
	closers  []io.Closer
	inflight atomic.Int64
}

// NewRoutingTable validates plan geometry and wraps it as an immutable
// epoch. boundaries[t] and clients[t][s] follow the DenseShard layout.
func NewRoutingTable(epoch int64, cfg model.Config, pre *Preprocessed, boundaries [][]int64, clients [][]GatherClient) (*RoutingTable, error) {
	if len(boundaries) != cfg.NumTables || len(clients) != cfg.NumTables {
		return nil, fmt.Errorf("serving: routing table needs %d tables of boundaries/clients, got %d/%d",
			cfg.NumTables, len(boundaries), len(clients))
	}
	for t := range boundaries {
		if len(boundaries[t]) == 0 {
			return nil, fmt.Errorf("serving: table %d has no shard boundaries", t)
		}
		if len(clients[t]) != len(boundaries[t]) {
			return nil, fmt.Errorf("serving: table %d has %d clients for %d shards",
				t, len(clients[t]), len(boundaries[t]))
		}
		if last := boundaries[t][len(boundaries[t])-1]; last != cfg.RowsPerTable {
			return nil, fmt.Errorf("serving: table %d boundaries end at %d, want %d",
				t, last, cfg.RowsPerTable)
		}
	}
	return &RoutingTable{
		Epoch:      epoch,
		Pre:        pre,
		Boundaries: boundaries,
		Clients:    clients,
		Served:     &metrics.Counter{},
	}, nil
}

// NumShards returns the shard count of table t's plan.
func (rt *RoutingTable) NumShards(t int) int { return len(rt.Boundaries[t]) }

// Utility returns the Fig. 14-style memory utility of shard s of table t
// accumulated within this epoch (0 when the table has no shard services).
func (rt *RoutingTable) Utility(t, s int) float64 {
	if t >= len(rt.Shards) || s >= len(rt.Shards[t]) {
		return 0
	}
	return rt.Shards[t][s].Utility.Utility()
}

// UtilitySkew returns the widest per-shard utility spread (max - min)
// across all tables of this epoch — the Fig. 14 signal the autoscaler
// watches. A hotness-aligned plan is strongly skewed (the small hot shard
// saturates while the big cold shard stays barely touched); drifted
// hotness spreads accesses across boundaries and flattens the profile, so
// a skew below the policy floor marks the plan as stale.
func (rt *RoutingTable) UtilitySkew() float64 {
	skew := 0.0
	for t := range rt.Shards {
		if len(rt.Shards[t]) == 0 {
			continue
		}
		lo, hi := 1.0, 0.0
		for s := range rt.Shards[t] {
			u := rt.Utility(t, s)
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		if hi-lo > skew {
			skew = hi - lo
		}
	}
	return skew
}

// release decrements the in-flight count (paired with Router.Acquire).
func (rt *RoutingTable) release() { rt.inflight.Add(-1) }

// Drain blocks until every in-flight request that acquired this epoch has
// released it, or the context expires. It does not stop new acquisitions —
// publish the successor epoch first.
func (rt *RoutingTable) Drain(ctx context.Context) error {
	for rt.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("serving: draining epoch %d: %w", rt.Epoch, ctx.Err())
		case <-time.After(100 * time.Microsecond):
		}
	}
	return nil
}

// Close releases the epoch's transport resources. Shard units are
// refcounted: a unit shared with a newer epoch (or held warm by the plan
// cache) survives; only units this epoch was the last holder of tear their
// RPC connections and servers down. Call only after Drain.
func (rt *RoutingTable) Close() {
	for _, row := range rt.units {
		for _, u := range row {
			u.release()
		}
	}
	rt.units = nil
	for _, c := range rt.closers {
		_ = c.Close()
	}
	rt.closers = nil
	for _, s := range rt.servers {
		_ = s.Close()
	}
	rt.servers = nil
}

// ShardRefs returns the reference count of the unit behind shard s of
// table t: one per routing-table epoch using it plus one while the plan
// cache keeps it warm (0 when the table was hand-assembled without units).
// Observability for the epoch-reuse tests.
func (rt *RoutingTable) ShardRefs(t, s int) int64 {
	if t >= len(rt.units) || s >= len(rt.units[t]) {
		return 0
	}
	return rt.units[t][s].refs.Load()
}

// modelRoute is one registered model's slot in the router: its current
// epoch pointer and its swap counter. Slots are never removed; the routes
// map itself is copy-on-write, so the per-request lookup is lock-free.
type modelRoute struct {
	current atomic.Pointer[RoutingTable]
	swaps   metrics.Counter
}

// Router publishes a (model name -> routing-table epoch) map to the dense
// hot path. Each model's epochs go through that model's own atomic
// pointer: readers acquire a consistent per-model snapshot per request;
// writers swap one model's plan without ever blocking readers — of that
// model or of any other. Single-model callers keep using the DefaultModel
// convenience methods (Acquire/Load/Publish).
type Router struct {
	// routes is the copy-on-write registry; registerMu serializes
	// Register, never the request path.
	routes     atomic.Pointer[map[string]*modelRoute]
	registerMu sync.Mutex
	// Swaps counts published plan swaps (epoch transitions) across all
	// models; per-model counts come from SwapsFor.
	Swaps *metrics.Counter
}

// NewMultiRouter creates an empty router; register each model's initial
// epoch with Register before serving it.
func NewMultiRouter() *Router {
	r := &Router{Swaps: &metrics.Counter{}}
	empty := map[string]*modelRoute{}
	r.routes.Store(&empty)
	return r
}

// NewRouter creates a router serving the given initial epoch as the
// default model — the single-variant constructor.
func NewRouter(rt *RoutingTable) *Router {
	r := NewMultiRouter()
	if err := r.Register(DefaultModel, rt); err != nil {
		panic(err) // unreachable: the registry is empty
	}
	return r
}

// Register adds a model with its initial epoch. Registering an
// already-served model is an error — epoch succession goes through
// Publish, not Register. Registration is a first-class runtime operation:
// the routes map is copy-on-write, so a model can be registered into a
// router that is actively serving other models without blocking a single
// request. A name freed by Unregister is immediately reusable, with a
// fresh slot (epoch pointer and swap counter start over).
func (r *Router) Register(mdl string, rt *RoutingTable) error {
	if rt == nil {
		return fmt.Errorf("serving: register model %q with a nil routing table", mdl)
	}
	name := canonicalModel(mdl)
	rt.Model = name
	r.registerMu.Lock()
	defer r.registerMu.Unlock()
	old := *r.routes.Load()
	if _, dup := old[name]; dup {
		return fmt.Errorf("serving: model %q already registered", name)
	}
	next := make(map[string]*modelRoute, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	mr := &modelRoute{}
	mr.current.Store(rt)
	next[name] = mr
	r.routes.Store(&next)
	return nil
}

// Unregister removes a model from the routing map and returns its final
// epoch table (the caller drains and closes it to finish the teardown).
// Removal is tombstone-free: the slot is dropped from a copy of the map,
// so the name is immediately reusable by Register and no retired-model
// state (epoch pointer, swap counter) survives in the router. A request
// that raced the removal either misses the new map (and gets the usual
// "serves no model" error) or pinned the final epoch before the swap — the
// returned table's refcount still covers it, so Drain waits it out.
func (r *Router) Unregister(mdl string) (*RoutingTable, error) {
	name := canonicalModel(mdl)
	r.registerMu.Lock()
	defer r.registerMu.Unlock()
	old := *r.routes.Load()
	mr, ok := old[name]
	if !ok {
		return nil, fmt.Errorf("serving: unregister of model %q: not registered", name)
	}
	next := make(map[string]*modelRoute, len(old)-1)
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	r.routes.Store(&next)
	return mr.current.Load(), nil
}

// route returns the model's slot (nil when unregistered); one atomic load.
func (r *Router) route(mdl string) *modelRoute {
	return (*r.routes.Load())[canonicalModel(mdl)]
}

// Models returns the registered model names, sorted.
func (r *Router) Models() []string {
	routes := *r.routes.Load()
	out := make([]string, 0, len(routes))
	for name := range routes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LoadModel returns the model's current epoch without pinning it (nil when
// the model is not registered). Use AcquireModel on the request path;
// LoadModel is for observability (metrics, tests, examples).
func (r *Router) LoadModel(mdl string) *RoutingTable {
	mr := r.route(mdl)
	if mr == nil {
		return nil
	}
	return mr.current.Load()
}

// Load returns the default model's current epoch without pinning it.
func (r *Router) Load() *RoutingTable { return r.LoadModel(DefaultModel) }

// AcquireModel pins the model's current epoch for one request and returns
// it; the caller must release() it when the fan-out completes. The
// increment-then-recheck dance closes the race with Publish: if the table
// changed while we were incrementing, the drain of the old epoch may
// already be watching the count, so back off and pin the fresh table
// instead.
func (r *Router) AcquireModel(mdl string) (*RoutingTable, error) {
	mr := r.route(mdl)
	if mr == nil {
		return nil, fmt.Errorf("serving: router serves no model %q (have %v)", canonicalModel(mdl), r.Models())
	}
	for {
		rt := mr.current.Load()
		rt.inflight.Add(1)
		if mr.current.Load() == rt {
			return rt, nil
		}
		rt.release()
	}
}

// Acquire pins the default model's current epoch (single-variant
// convenience; panics when no default model is registered — a router from
// NewRouter always has one).
func (r *Router) Acquire() *RoutingTable {
	rt, err := r.AcquireModel(DefaultModel)
	if err != nil {
		panic(err)
	}
	return rt
}

// PublishModel atomically installs next as the model's current epoch and
// returns the superseded table (drain and close it to finish the swap).
// Other models' epochs, in-flight requests and counters are untouched.
func (r *Router) PublishModel(mdl string, next *RoutingTable) (*RoutingTable, error) {
	mr := r.route(mdl)
	if mr == nil {
		return nil, fmt.Errorf("serving: publish to unregistered model %q", canonicalModel(mdl))
	}
	next.Model = canonicalModel(mdl)
	prev := mr.current.Swap(next)
	mr.swaps.Inc(1)
	r.Swaps.Inc(1)
	return prev, nil
}

// Publish atomically installs next as the default model's current epoch
// and returns the superseded table (single-variant convenience; panics
// when no default model is registered).
func (r *Router) Publish(next *RoutingTable) *RoutingTable {
	prev, err := r.PublishModel(DefaultModel, next)
	if err != nil {
		panic(err)
	}
	return prev
}

// SwapsFor returns how many plan swaps the model has gone through (0 when
// the model is not registered).
func (r *Router) SwapsFor(mdl string) int64 {
	mr := r.route(mdl)
	if mr == nil {
		return 0
	}
	return mr.swaps.Value()
}
