package serving

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
)

// This file is the epoch-versioned routing layer. A RoutingTable is one
// immutable snapshot of the serving plan: the preprocessing remap, the
// per-table shard boundaries, and a gather client for every shard. The
// Router publishes tables through an atomic pointer; a Predict call
// acquires exactly one epoch for its whole fan-out, so a concurrent plan
// swap can never mix shards from two plans. Live repartitioning
// (Sec. IV-B's re-profiling loop) builds the next epoch side-by-side,
// publishes it atomically, then drains and retires the old one — traffic
// keeps flowing throughout.

// RoutingTable is one immutable epoch of the serving plan. All fields are
// fixed at construction; only the metrics and the in-flight refcount
// mutate, and those are concurrency-safe.
type RoutingTable struct {
	// Epoch numbers plans monotonically; epoch 0 is the BuildElastic plan.
	Epoch int64
	// Pre is the epoch's preprocessing output (hotness sort + remap). A
	// nil Pre means requests are already in sorted-ID space.
	Pre *Preprocessed
	// Plan is the per-table boundary plan (all tables currently share it).
	Plan []int64
	// Boundaries[t] is table t's shard boundaries in sorted space.
	Boundaries [][]int64
	// Clients[t][s] services gathers for shard s of table t.
	Clients [][]GatherClient
	// Shards[t][s] is the primary service instance behind Clients[t][s]
	// (owner of the epoch's utility/latency metrics).
	Shards [][]*EmbeddingShard
	// Pools[t][s] load-balances shard s of table t (same objects as
	// Clients, concretely typed for replica scaling).
	Pools [][]*ReplicaPool
	// Served counts dense-shard Predict dispatches routed through this
	// epoch — every dispatch lands in exactly one epoch's counter. With
	// dynamic batching enabled a fused batch counts once, not once per
	// fused client request.
	Served *metrics.Counter

	servers  []*RPCServer
	closers  []io.Closer
	inflight atomic.Int64
}

// NewRoutingTable validates plan geometry and wraps it as an immutable
// epoch. boundaries[t] and clients[t][s] follow the DenseShard layout.
func NewRoutingTable(epoch int64, cfg model.Config, pre *Preprocessed, boundaries [][]int64, clients [][]GatherClient) (*RoutingTable, error) {
	if len(boundaries) != cfg.NumTables || len(clients) != cfg.NumTables {
		return nil, fmt.Errorf("serving: routing table needs %d tables of boundaries/clients, got %d/%d",
			cfg.NumTables, len(boundaries), len(clients))
	}
	for t := range boundaries {
		if len(boundaries[t]) == 0 {
			return nil, fmt.Errorf("serving: table %d has no shard boundaries", t)
		}
		if len(clients[t]) != len(boundaries[t]) {
			return nil, fmt.Errorf("serving: table %d has %d clients for %d shards",
				t, len(clients[t]), len(boundaries[t]))
		}
		if last := boundaries[t][len(boundaries[t])-1]; last != cfg.RowsPerTable {
			return nil, fmt.Errorf("serving: table %d boundaries end at %d, want %d",
				t, last, cfg.RowsPerTable)
		}
	}
	return &RoutingTable{
		Epoch:      epoch,
		Pre:        pre,
		Boundaries: boundaries,
		Clients:    clients,
		Served:     &metrics.Counter{},
	}, nil
}

// NumShards returns the shard count of table t's plan.
func (rt *RoutingTable) NumShards(t int) int { return len(rt.Boundaries[t]) }

// Utility returns the Fig. 14-style memory utility of shard s of table t
// accumulated within this epoch (0 when the table has no shard services).
func (rt *RoutingTable) Utility(t, s int) float64 {
	if t >= len(rt.Shards) || s >= len(rt.Shards[t]) {
		return 0
	}
	return rt.Shards[t][s].Utility.Utility()
}

// UtilitySkew returns the widest per-shard utility spread (max - min)
// across all tables of this epoch — the Fig. 14 signal the autoscaler
// watches. A hotness-aligned plan is strongly skewed (the small hot shard
// saturates while the big cold shard stays barely touched); drifted
// hotness spreads accesses across boundaries and flattens the profile, so
// a skew below the policy floor marks the plan as stale.
func (rt *RoutingTable) UtilitySkew() float64 {
	skew := 0.0
	for t := range rt.Shards {
		if len(rt.Shards[t]) == 0 {
			continue
		}
		lo, hi := 1.0, 0.0
		for s := range rt.Shards[t] {
			u := rt.Utility(t, s)
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		if hi-lo > skew {
			skew = hi - lo
		}
	}
	return skew
}

// release decrements the in-flight count (paired with Router.Acquire).
func (rt *RoutingTable) release() { rt.inflight.Add(-1) }

// Drain blocks until every in-flight request that acquired this epoch has
// released it, or the context expires. It does not stop new acquisitions —
// publish the successor epoch first.
func (rt *RoutingTable) Drain(ctx context.Context) error {
	for rt.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("serving: draining epoch %d: %w", rt.Epoch, ctx.Err())
		case <-time.After(100 * time.Microsecond):
		}
	}
	return nil
}

// Close tears down the epoch's transport resources (RPC client
// connections, then servers). Call only after Drain.
func (rt *RoutingTable) Close() {
	for _, c := range rt.closers {
		_ = c.Close()
	}
	rt.closers = nil
	for _, s := range rt.servers {
		_ = s.Close()
	}
	rt.servers = nil
}

// Router publishes routing-table epochs to the dense hot path through an
// atomic pointer. Readers acquire a consistent snapshot per request;
// writers swap plans without ever blocking readers.
type Router struct {
	current atomic.Pointer[RoutingTable]
	// Swaps counts published plan swaps (epoch transitions).
	Swaps *metrics.Counter
}

// NewRouter creates a router serving the given initial epoch.
func NewRouter(rt *RoutingTable) *Router {
	r := &Router{Swaps: &metrics.Counter{}}
	r.current.Store(rt)
	return r
}

// Load returns the current epoch without pinning it. Use Acquire on the
// request path; Load is for observability (metrics, tests, examples).
func (r *Router) Load() *RoutingTable { return r.current.Load() }

// Acquire pins the current epoch for one request and returns it; the
// caller must release() it when the fan-out completes. The increment-then-
// recheck dance closes the race with Publish: if the table changed while
// we were incrementing, the drain of the old epoch may already be
// watching the count, so back off and pin the fresh table instead.
func (r *Router) Acquire() *RoutingTable {
	for {
		rt := r.current.Load()
		rt.inflight.Add(1)
		if r.current.Load() == rt {
			return rt
		}
		rt.release()
	}
}

// Publish atomically installs next as the current epoch and returns the
// superseded table (drain and close it to finish the swap).
func (r *Router) Publish(next *RoutingTable) *RoutingTable {
	prev := r.current.Swap(next)
	r.Swaps.Inc(1)
	return prev
}
