package serving

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestRowCacheEquivalence is the correctness gate for gather path v2 with
// the frontend hot-row cache on: predictions must match the monolith to
// the same tolerance as the cache-off path, and replaying each query must
// actually exercise the hit path (a cache that never hits would pass the
// equivalence check vacuously).
func TestRowCacheEquivalence(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	mono := NewMonolith(m.Clone())
	ld, err := BuildElastic(m, stats, []int64{50, 200, cfg.RowsPerTable},
		BuildOptions{Transport: TransportLocal, RowCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	reqs := make([]*PredictRequest, 20)
	for i := range reqs {
		reqs[i] = makeRequest(cfg, gen, uint64(i))
	}
	for pass := 0; pass < 3; pass++ { // later passes replay warm rows
		for i, req := range reqs {
			var monoReply, shardReply PredictReply
			if err := mono.Predict(bg, req, &monoReply); err != nil {
				t.Fatal(err)
			}
			if err := ld.Predict(bg, req, &shardReply); err != nil {
				t.Fatal(err)
			}
			for j := range monoReply.Probs {
				if math.Abs(float64(monoReply.Probs[j]-shardReply.Probs[j])) > 1e-5 {
					t.Fatalf("pass %d query %d input %d: monolith %v vs cached %v",
						pass, i, j, monoReply.Probs[j], shardReply.Probs[j])
				}
			}
		}
	}
	bc := ld.BuildCounters()
	if bc.RowCacheSeeded == 0 {
		t.Fatal("publish-time seeding installed no rows")
	}
	if bc.RowCacheHits == 0 {
		t.Fatal("cache never hit across three passes over the same queries")
	}
	if bc.RowCacheBytes <= 0 || bc.RowCacheBytes > 1<<20 {
		t.Fatalf("cache footprint %d outside (0, budget]", bc.RowCacheBytes)
	}
}

// TestGatherRowsDedupMultiplicity hand-builds batches whose bags repeat
// the same row with different multiplicities — the exact shape the
// in-batch dedup must re-expand correctly. A dropped or double-counted
// multiplicity shifts the pooled sum and diverges from the monolith.
func TestGatherRowsDedupMultiplicity(t *testing.T) {
	cfg := liveConfig()
	m, stats, _ := buildFixture(t, cfg)
	mono := NewMonolith(m.Clone())
	for _, opts := range []BuildOptions{
		{Transport: TransportLocal, GatherRows: true},
		{Transport: TransportLocal, RowCacheBytes: 1 << 18},
	} {
		ld, err := BuildElastic(m.Clone(), stats, []int64{50, 200, cfg.RowsPerTable}, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := workload.NewRNG(7)
		for q := 0; q < 12; q++ {
			req := &PredictRequest{
				BatchSize: cfg.BatchSize,
				DenseDim:  cfg.DenseInputDim,
				Dense:     make([]float32, cfg.BatchSize*cfg.DenseInputDim),
			}
			for i := range req.Dense {
				req.Dense[i] = float32(rng.Float64()*2 - 1)
			}
			// Three bags per table: [r,r,r], [r,s,r,s,s], [s] — heavy
			// duplication within and across bags, plus boundary rows.
			for tb := 0; tb < cfg.NumTables; tb++ {
				r := rng.Intn(cfg.RowsPerTable)
				s := (r + 1 + rng.Intn(100)) % cfg.RowsPerTable
				req.Tables = append(req.Tables, TableBatch{
					Indices: []int64{r, r, r, r, s, r, s, s, s},
					Offsets: []int32{0, 3, 8},
				})
			}
			// Twice: the second run replays the rows through the warm cache.
			for pass := 0; pass < 2; pass++ {
				var monoReply, shardReply PredictReply
				if err := mono.Predict(bg, req, &monoReply); err != nil {
					t.Fatal(err)
				}
				if err := ld.Predict(bg, req, &shardReply); err != nil {
					t.Fatal(err)
				}
				for j := range monoReply.Probs {
					if math.Abs(float64(monoReply.Probs[j]-shardReply.Probs[j])) > 1e-5 {
						t.Fatalf("opts %+v query %d pass %d input %d: monolith %v vs dedup %v",
							opts, q, pass, j, monoReply.Probs[j], shardReply.Probs[j])
					}
				}
			}
		}
		ld.Close()
	}
}

// TestRowCacheRepartitionUnderFire drives closed-loop clients against a
// cache-enabled deployment while Repartition swaps the plan repeatedly.
// Every repartition remaps row ids, so a single cross-epoch cache hit
// would serve a stale vector and diverge from the monolith. Run with
// -race in CI: it also exercises concurrent lookup/fill/advance/lazy
// eviction on the cache shards.
func TestRowCacheRepartitionUnderFire(t *testing.T) {
	cfg := liveConfig()
	m, stats, gen := buildFixture(t, cfg)
	mono := NewMonolith(m.Clone())
	// Small budget: fills run eviction constantly while epochs advance.
	ld, err := BuildElastic(m, stats, []int64{50, 200, cfg.RowsPerTable},
		BuildOptions{Transport: TransportLocal, RowCacheBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()

	const clients = 8
	const perClient = 40
	reqs := make([]*PredictRequest, clients*perClient)
	want := make([][]float32, len(reqs))
	for i := range reqs {
		reqs[i] = makeRequest(cfg, gen, uint64(9000+i))
		var mr PredictReply
		if err := mono.Predict(bg, reqs[i], &mr); err != nil {
			t.Fatal(err)
		}
		want[i] = mr.Probs
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; !stop.Load(); q = (q + 1) % perClient {
				i := c*perClient + q
				var reply PredictReply
				if err := ld.Predict(bg, reqs[i], &reply); err != nil {
					errc <- fmt.Errorf("client %d query %d: %w", c, q, err)
					return
				}
				for j := range want[i] {
					if math.Abs(float64(reply.Probs[j]-want[i][j])) > 1e-4 {
						errc <- fmt.Errorf("client %d query %d input %d: %v != monolith %v (stale cached row?)",
							c, q, j, reply.Probs[j], want[i][j])
						return
					}
				}
			}
		}(c)
	}

	plans := [][]int64{
		{80, 300, cfg.RowsPerTable},
		{50, 200, cfg.RowsPerTable},
		{120, 250, 400, cfg.RowsPerTable},
	}
	const swaps = 8
	for swap := 0; swap < swaps; swap++ {
		fresh := driftedStats(t, cfg, int64(swap*40), uint64(swap))
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		err := ld.Repartition(ctx, fresh, plans[swap%len(plans)])
		cancel()
		if err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("swap %d: %v", swap, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	bc := ld.BuildCounters()
	if bc.RowCacheHits == 0 {
		t.Fatal("cache never hit under fire — the hot path stopped consulting it")
	}
	if bc.RowCacheEvicted == 0 {
		t.Fatal("no evictions across 8 epoch swaps under a 64KiB budget")
	}
	if bc.RowCacheBytes > 64<<10 {
		t.Fatalf("cache footprint %d exceeds the 64KiB budget after swaps", bc.RowCacheBytes)
	}
}

// TestRowCacheEpochSemantics unit-tests the epoch discipline directly:
// in-flight requests of a retiring epoch keep hitting their own entries,
// fills for retired epochs are rejected, and entries from an epoch that
// is neither live nor the requester's are lazily evicted on lookup.
func TestRowCacheEpochSemantics(t *testing.T) {
	c := newRowCache(1 << 16)
	vec := []float32{1, 2, 3, 4}

	if !c.fill(0, 0, 7, vec) {
		t.Fatal("fill at live epoch 0 rejected")
	}
	if got := c.get(0, 0, 7); len(got) != 4 || got[2] != 3 {
		t.Fatalf("get at the filling epoch = %v", got)
	}

	c.advance(1)
	// A request still pinned to epoch 0 may keep hitting its entry...
	if c.get(0, 0, 7) == nil {
		t.Fatal("pinned epoch-0 request lost its entry after advance")
	}
	// ...but retired-epoch fills must be dropped.
	if c.fill(0, 1, 9, vec) {
		t.Fatal("fill for retired epoch 0 accepted after advance(1)")
	}
	// An epoch-1 request misses the epoch-0 entry (same key, possibly a
	// different row after remapping) and must never read it.
	if c.get(1, 0, 7) != nil {
		t.Fatal("cross-epoch hit: epoch-1 request read an epoch-0 entry")
	}

	c.advance(2)
	// Now the entry's epoch 0 is neither live (2) nor the requester's (1):
	// the lookup must lazily evict it.
	if c.get(1, 0, 7) != nil {
		t.Fatal("cross-epoch hit after second advance")
	}
	if got := c.stats(); got.Evicted == 0 {
		t.Fatal("doubly-stale entry was not lazily evicted")
	}
	if c.get(0, 0, 7) != nil {
		t.Fatal("entry readable after lazy eviction")
	}

	// Counters are batched in by the caller, not counted per get.
	c.note(3, 2)
	if st := c.stats(); st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("noted counters = %+v", st)
	}

	// Nil receiver: every method is a safe no-op for the disabled cache.
	var nilCache *rowCache
	if nilCache.get(0, 0, 0) != nil || nilCache.fill(0, 0, 0, vec) {
		t.Fatal("nil cache claimed a hit or fill")
	}
	nilCache.advance(1)
	nilCache.note(1, 1)
	nilCache.clear()
	if st := nilCache.stats(); st != (rowCacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

// TestRowCacheBudgetEviction fills far past the byte budget and checks
// the FIFO eviction holds the footprint under it, while seeding (the
// non-evicting publish-time pass) stops at the budget instead of
// thrashing rows it just installed.
func TestRowCacheBudgetEviction(t *testing.T) {
	const budget = 16 << 10
	c := newRowCache(budget)
	vec := make([]float32, 16) // 64B payload + 64B overhead = 128B/entry
	for i := range vec {
		vec[i] = float32(i)
	}
	for r := int64(0); r < 4096; r++ { // ~512KiB offered against 16KiB
		c.fill(0, 0, r, vec)
	}
	st := c.stats()
	if st.Bytes > budget {
		t.Fatalf("footprint %d exceeds budget %d", st.Bytes, budget)
	}
	if st.Evicted == 0 {
		t.Fatal("filling 32x the budget evicted nothing")
	}
	// The newest rows survive FIFO eviction and stay readable.
	if got := c.get(0, 0, 4095); len(got) != 16 || got[15] != 15 {
		t.Fatal("most recent fill not readable")
	}

	// Seeding a fresh cache's prefix plane stops at its budget share
	// without evicting, and the seeded rows read back lock-free.
	s := newRowCache(budget)
	b := s.newPrefixBuilder(0, 1, len(vec))
	inserted := 0
	for r := int64(0); r < 4096; r++ {
		if !b.add(0, vec) {
			break
		}
		inserted++
	}
	b.install()
	sst := s.stats()
	if sst.Bytes > budget {
		t.Fatalf("seeded footprint %d exceeds budget %d", sst.Bytes, budget)
	}
	if sst.Evicted != 0 {
		t.Fatal("seeding evicted entries")
	}
	if inserted == 0 || inserted == 4096 {
		t.Fatalf("seed inserted %d of 4096 — expected a budget-bounded prefix", inserted)
	}
	if sst.Seeded != int64(inserted) {
		t.Fatalf("Seeded = %d, want %d", sst.Seeded, inserted)
	}
	if got := s.get(0, 0, int64(inserted-1)); len(got) != 16 || got[15] != 15 {
		t.Fatal("last seeded prefix row not readable")
	}
	if s.get(0, 0, int64(inserted)) != nil {
		t.Fatal("row past the seeded prefix claimed a hit")
	}
	// Re-seeding a later epoch retires the old prefix wholesale.
	b2 := s.newPrefixBuilder(1, 1, len(vec))
	s.advance(1)
	if !b2.add(0, vec) {
		t.Fatal("fresh epoch prefix refused its first row")
	}
	b2.install()
	if st := s.stats(); st.Evicted != int64(inserted) {
		t.Fatalf("prefix swap evicted %d, want %d", st.Evicted, inserted)
	}
	if s.get(0, 0, 0) != nil || s.get(1, 0, 0) == nil {
		t.Fatal("prefix epoch gating wrong after swap")
	}
}

// idleGatherClient is a distinguishable no-op replica for pool ranking
// tests.
type idleGatherClient struct{ id int }

func (idleGatherClient) Gather(context.Context, *GatherRequest, *GatherReply) error { return nil }

// TestReplicaPoolRemovesColdest is the property test for utilization-
// ranked scale-in: across random per-replica busy times, Remove must
// return the replica with the lowest utilization, break exact ties
// toward the newest replica, and never empty the pool.
func TestReplicaPoolRemovesColdest(t *testing.T) {
	rng := workload.NewRNG(42)
	for trial := 0; trial < 60; trial++ {
		n := int(2 + rng.Intn(5))
		clients := make([]GatherClient, n)
		for i := range clients {
			clients[i] = idleGatherClient{id: i}
		}
		pool := NewReplicaPool(clients...)

		// Fix every replica's lifetime and assign random busy times; some
		// trials force exact ties to exercise the newest-wins rule.
		base := time.Now().Add(-time.Minute)
		busy := make([]int64, n)
		for i := range busy {
			busy[i] = rng.Intn(int64(time.Minute))
			if trial%4 == 0 {
				busy[i] = int64(trial) * int64(time.Millisecond)
				if i > 0 {
					busy[i] = busy[0] // all tied
				}
			}
			pool.p.replicas[i].added = base
			pool.p.replicas[i].busy.Store(busy[i])
		}
		// Expected victim: minimum busy (equal lifetimes make utilization
		// proportional to busy), ties toward the highest index.
		wantID := 0
		for i := 1; i < n; i++ {
			if busy[i] <= busy[wantID] {
				wantID = i
			}
		}

		got := pool.Remove()
		if got == nil {
			t.Fatalf("trial %d: Remove returned nil with %d replicas", trial, n)
		}
		if id := got.(idleGatherClient).id; id != wantID {
			t.Fatalf("trial %d: removed replica %d, want coldest %d (busy=%v)", trial, id, wantID, busy)
		}
		// Draining: Remove refuses to empty the pool.
		for pool.Remove() != nil {
		}
		if pool.Size() != 1 {
			t.Fatalf("trial %d: pool drained to %d replicas", trial, pool.Size())
		}
		pool.Close()
	}
}
