package metrics

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc(3)
	c.Inc(0)
	if c.Value() != 3 {
		t.Fatalf("Value = %d, want 3", c.Value())
	}
}

func TestCounterPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on negative increment")
		}
	}()
	var c Counter
	c.Inc(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("Value = %d, want 16000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("Value = %v, want 1.5", g.Value())
	}
}

func TestQPSMeterWindow(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	m := newQPSMeterAt(10*time.Second, clock)
	for i := 0; i < 50; i++ {
		m.Mark()
	}
	if got := m.Rate(); got != 5.0 {
		t.Fatalf("Rate = %v, want 5 (50 events / 10s)", got)
	}
	// Advance beyond the window: all events expire.
	now = now.Add(11 * time.Second)
	if got := m.Rate(); got != 0 {
		t.Fatalf("Rate after window = %v, want 0", got)
	}
}

func TestQPSMeterDefaultWindow(t *testing.T) {
	m := NewQPSMeter(0)
	if m.window != 10*time.Second {
		t.Fatalf("default window = %v", m.window)
	}
}

func TestLatencyRecorderExactQuantiles(t *testing.T) {
	l := NewLatencyRecorder(100)
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := l.Quantile(0.95); got != 95*time.Millisecond {
		t.Fatalf("P95 = %v, want 95ms", got)
	}
	if got := l.Quantile(0.5); got != 50*time.Millisecond {
		t.Fatalf("P50 = %v, want 50ms", got)
	}
	if got := l.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("P100 = %v, want 100ms", got)
	}
	if got := l.Quantile(0); got != 1*time.Millisecond {
		t.Fatalf("P0 = %v, want 1ms", got)
	}
}

func TestLatencyRecorderEmptyAndClamps(t *testing.T) {
	l := NewLatencyRecorder(0)
	if l.Quantile(0.95) != 0 || l.Mean() != 0 {
		t.Fatal("empty recorder must report zero")
	}
	l.Observe(time.Second)
	if l.Quantile(-1) != time.Second || l.Quantile(2) != time.Second {
		t.Fatal("quantile args must clamp")
	}
}

func TestLatencyRecorderReservoirBounded(t *testing.T) {
	l := NewLatencyRecorder(64)
	for i := 0; i < 10_000; i++ {
		l.Observe(time.Duration(i) * time.Microsecond)
	}
	if len(l.samples) != 64 {
		t.Fatalf("reservoir size = %d, want 64", len(l.samples))
	}
	if l.Count() != 10_000 {
		t.Fatalf("Count = %d", l.Count())
	}
	// Reservoir quantile should be within the observed range.
	q := l.Quantile(0.5)
	if q < 0 || q > 10*time.Millisecond {
		t.Fatalf("reservoir P50 = %v outside observed range", q)
	}
}

func TestLatencyRecorderReset(t *testing.T) {
	l := NewLatencyRecorder(8)
	l.Observe(time.Second)
	l.Reset()
	if l.Count() != 0 || l.Quantile(0.5) != 0 {
		t.Fatal("Reset must clear samples")
	}
}

func TestLatencyRecorderMean(t *testing.T) {
	l := NewLatencyRecorder(8)
	l.Observe(10 * time.Millisecond)
	l.Observe(30 * time.Millisecond)
	if got := l.Mean(); got != 20*time.Millisecond {
		t.Fatalf("Mean = %v, want 20ms", got)
	}
}

func TestUtilityTracker(t *testing.T) {
	u := NewUtilityTracker(10)
	u.Touch(1)
	u.Touch(1) // duplicate
	u.TouchAll([]int64{2, 3})
	if got := u.TouchedRows(); got != 3 {
		t.Fatalf("TouchedRows = %d, want 3", got)
	}
	if got := u.Utility(); got != 0.3 {
		t.Fatalf("Utility = %v, want 0.3", got)
	}
	u.Reset()
	if u.Utility() != 0 {
		t.Fatal("Reset must clear")
	}
}

func TestUtilityTrackerZeroRows(t *testing.T) {
	u := NewUtilityTracker(0)
	if u.Utility() != 0 {
		t.Fatal("zero-row tracker must report 0")
	}
	u = NewUtilityTracker(-5)
	if u.Utility() != 0 {
		t.Fatal("negative rows clamp to 0")
	}
}

func TestUtilityTrackerConcurrent(t *testing.T) {
	u := NewUtilityTracker(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				u.Touch(i)
			}
		}(g)
	}
	wg.Wait()
	if u.TouchedRows() != 1000 {
		t.Fatalf("TouchedRows = %d, want 1000", u.TouchedRows())
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2 << 10, "2.00 KB"},
		{3 << 20, "3.00 MB"},
		{5 << 30, "5.00 GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	h := NewHistogram([]float64{1, 4, 8})
	for _, v := range []float64{0, 1, 2, 4, 5, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	wantMean := (0.0 + 1 + 2 + 4 + 5 + 9 + 100) / 7
	if got := h.Mean(); got != wantMean {
		t.Fatalf("mean = %v, want %v", got, wantMean)
	}
	snap := h.Snapshot()
	// Buckets: <=1: {0,1}=2; <=4: {2,4}=2; <=8: {5}=1; overflow: {9,100}=2.
	wantCounts := []int64{2, 2, 1, 2}
	for i, w := range wantCounts {
		if snap[i].Count != w {
			t.Fatalf("bucket %d count = %d, want %d (snap %+v)", i, snap[i].Count, w, snap)
		}
	}
	if s := h.String(); s == "" || s == "empty" {
		t.Fatalf("String() = %q", s)
	}
	if s := NewHistogram(nil).String(); s != "empty" {
		t.Fatalf("empty String() = %q", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 800 {
		t.Fatalf("count = %d, want 800", h.Count())
	}
}

func TestGaugeVec(t *testing.T) {
	g := NewGaugeVec()
	if g.Len() != 0 || len(g.Labels()) != 0 {
		t.Fatal("fresh gauge vec not empty")
	}
	g.Set("epoch0/t0/s0", 0.75)
	g.Set("epoch0/t0/s1", 0.25)
	g.Set("epoch0/t0/s0", 0.8) // overwrite
	if v, ok := g.Value("epoch0/t0/s0"); !ok || v != 0.8 {
		t.Fatalf("gauge = %v %v", v, ok)
	}
	if _, ok := g.Value("missing"); ok {
		t.Fatal("missing label reported present")
	}
	labels := g.Labels()
	if len(labels) != 2 || labels[0] != "epoch0/t0/s0" || labels[1] != "epoch0/t0/s1" {
		t.Fatalf("labels = %v", labels)
	}
	if g.Len() != 2 {
		t.Fatalf("len = %d", g.Len())
	}
}

func TestGaugeVecConcurrent(t *testing.T) {
	g := NewGaugeVec()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.Set(fmt.Sprintf("w%d/%d", w, i%10), float64(i))
				g.Value(fmt.Sprintf("w%d/%d", (w+1)%8, i%10))
			}
		}(w)
	}
	wg.Wait()
	if g.Len() != 80 {
		t.Fatalf("len = %d, want 80", g.Len())
	}
}
