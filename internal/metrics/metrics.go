// Package metrics implements the statistics substrate the serving system
// reports: monotonic counters, windowed QPS meters, a streaming quantile
// sketch for tail latency, and the memory-utility tracker from Sec. VI-B of
// the paper (fraction of a shard's embedding rows actually touched while
// servicing queries).
//
// Everything in this package is safe for concurrent use; the live serving
// engine updates these from many goroutines.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Inc adds delta (which must be >= 0) to the counter.
func (c *Counter) Inc(delta int64) {
	if delta < 0 {
		panic("metrics: negative increment on Counter")
	}
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// GaugeVec is a labeled family of gauges, created on first Set — the
// shape the serving layer uses for per-epoch, per-shard utility series
// ("epoch3/t0/s1" → utility) that outlive the epoch that produced them.
type GaugeVec struct {
	mu sync.Mutex
	m  map[string]float64
}

// NewGaugeVec creates an empty gauge family.
func NewGaugeVec() *GaugeVec {
	return &GaugeVec{m: make(map[string]float64)}
}

// Set stores v under the label.
func (g *GaugeVec) Set(label string, v float64) {
	g.mu.Lock()
	g.m[label] = v
	g.mu.Unlock()
}

// Value returns the gauge stored under the label and whether it exists.
func (g *GaugeVec) Value(label string) (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.m[label]
	return v, ok
}

// Labels returns every label with a stored gauge, sorted.
func (g *GaugeVec) Labels() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.m))
	for l := range g.m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored gauges.
func (g *GaugeVec) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// QPSMeter measures completed-queries-per-second over a sliding window.
type QPSMeter struct {
	mu     sync.Mutex
	window time.Duration
	events []time.Time
	now    func() time.Time
}

// NewQPSMeter creates a meter with the given sliding window (e.g. 10s).
func NewQPSMeter(window time.Duration) *QPSMeter {
	if window <= 0 {
		window = 10 * time.Second
	}
	return &QPSMeter{window: window, now: time.Now}
}

// newQPSMeterAt is a test seam with an injectable clock.
func newQPSMeterAt(window time.Duration, now func() time.Time) *QPSMeter {
	m := NewQPSMeter(window)
	m.now = now
	return m
}

// Mark records one completed query at the current time.
func (m *QPSMeter) Mark() {
	t := m.now()
	m.mu.Lock()
	m.events = append(m.events, t)
	m.trimLocked(t)
	m.mu.Unlock()
}

func (m *QPSMeter) trimLocked(now time.Time) {
	cut := now.Add(-m.window)
	i := 0
	for i < len(m.events) && m.events[i].Before(cut) {
		i++
	}
	if i > 0 {
		m.events = append(m.events[:0], m.events[i:]...)
	}
}

// Rate returns the average queries/sec over the window.
func (m *QPSMeter) Rate() float64 {
	t := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trimLocked(t)
	return float64(len(m.events)) / m.window.Seconds()
}

// LatencyRecorder keeps a bounded reservoir of latency samples and reports
// quantiles. With fewer samples than the reservoir size it is exact; beyond
// that it keeps a uniform random-replacement reservoir, which is accurate
// enough for the P95 SLA checks the paper performs.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	seen    int64
	cap     int
	rngSt   uint64
}

// NewLatencyRecorder creates a recorder holding up to capacity samples
// (default 8192 when capacity <= 0).
func NewLatencyRecorder(capacity int) *LatencyRecorder {
	if capacity <= 0 {
		capacity = 8192
	}
	return &LatencyRecorder{cap: capacity, rngSt: 0x9e3779b97f4a7c15}
}

func (l *LatencyRecorder) nextRand() uint64 {
	l.rngSt += 0x9e3779b97f4a7c15
	z := l.rngSt
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Observe records one latency sample.
func (l *LatencyRecorder) Observe(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seen++
	if len(l.samples) < l.cap {
		l.samples = append(l.samples, d)
		return
	}
	// Vitter's Algorithm R replacement.
	j := l.nextRand() % uint64(l.seen)
	if j < uint64(l.cap) {
		l.samples[j] = d
	}
}

// Count returns the total number of observed samples.
func (l *LatencyRecorder) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen
}

// Quantile returns the q-quantile (0 <= q <= 1) of the observed latencies,
// or 0 when no samples have been recorded.
func (l *LatencyRecorder) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	l.mu.Lock()
	snapshot := make([]time.Duration, len(l.samples))
	copy(snapshot, l.samples)
	l.mu.Unlock()
	if len(snapshot) == 0 {
		return 0
	}
	sort.Slice(snapshot, func(i, j int) bool { return snapshot[i] < snapshot[j] })
	idx := int(math.Ceil(q*float64(len(snapshot)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(snapshot) {
		idx = len(snapshot) - 1
	}
	return snapshot[idx]
}

// Mean returns the mean of the retained samples, or 0 when empty.
func (l *LatencyRecorder) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range l.samples {
		sum += d
	}
	return sum / time.Duration(len(l.samples))
}

// Reset discards all samples.
func (l *LatencyRecorder) Reset() {
	l.mu.Lock()
	l.samples = l.samples[:0]
	l.seen = 0
	l.mu.Unlock()
}

// Histogram counts observations into fixed buckets — the shape the serving
// batcher exports for queue depth and fused-batch size so the autoscaler
// and stress tester can see how the dynamic-batching pipeline behaves.
// Bucket i counts observations v with v <= Bounds[i]; one extra overflow
// bucket counts everything above the last bound.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

// NewHistogram creates a histogram over the given ascending bucket upper
// bounds (e.g. 1, 2, 4, 8, ...). An empty bounds slice yields a single
// overflow bucket that still tracks count and mean.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// HistogramBucket is one row of a histogram snapshot.
type HistogramBucket struct {
	UpperBound float64 // +Inf for the overflow bucket
	Count      int64
}

// Snapshot returns the per-bucket counts (last bucket's bound is +Inf).
func (h *Histogram) Snapshot() []HistogramBucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistogramBucket, len(h.counts))
	for i := range h.counts {
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out[i] = HistogramBucket{UpperBound: ub, Count: h.counts[i]}
	}
	return out
}

// String renders the non-empty buckets compactly, e.g. "≤1:12 ≤4:3 >8:1".
func (h *Histogram) String() string {
	snap := h.Snapshot()
	s := ""
	for i, b := range snap {
		if b.Count == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		if math.IsInf(b.UpperBound, 1) {
			if i > 0 {
				s += fmt.Sprintf(">%g:%d", snap[i-1].UpperBound, b.Count)
			} else {
				s += fmt.Sprintf("all:%d", b.Count)
			}
		} else {
			s += fmt.Sprintf("≤%g:%d", b.UpperBound, b.Count)
		}
	}
	if s == "" {
		return "empty"
	}
	return s
}

// UtilityTracker measures memory utility for one embedding shard: the
// fraction of the shard's rows touched at least once while servicing
// queries (Sec. VI-B measures this over the first 1,000 queries).
type UtilityTracker struct {
	mu      sync.Mutex
	touched map[int64]struct{}
	rows    int64
}

// NewUtilityTracker creates a tracker for a shard holding rows embedding
// vectors.
func NewUtilityTracker(rows int64) *UtilityTracker {
	if rows < 0 {
		rows = 0
	}
	return &UtilityTracker{touched: make(map[int64]struct{}), rows: rows}
}

// Touch records an access to the given local row index.
func (u *UtilityTracker) Touch(row int64) {
	u.mu.Lock()
	u.touched[row] = struct{}{}
	u.mu.Unlock()
}

// TouchAll records accesses to a batch of local row indices.
func (u *UtilityTracker) TouchAll(rows []int64) {
	u.mu.Lock()
	for _, r := range rows {
		u.touched[r] = struct{}{}
	}
	u.mu.Unlock()
}

// Utility returns touched-rows / total-rows in [0, 1]. A shard with zero
// rows reports utility 0.
func (u *UtilityTracker) Utility() float64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.rows == 0 {
		return 0
	}
	return float64(len(u.touched)) / float64(u.rows)
}

// TouchedRows returns the number of distinct rows accessed.
func (u *UtilityTracker) TouchedRows() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return int64(len(u.touched))
}

// Reset clears the access set.
func (u *UtilityTracker) Reset() {
	u.mu.Lock()
	u.touched = make(map[int64]struct{})
	u.mu.Unlock()
}

// FormatBytes renders a byte count in human-readable GB/MB/KB form, used by
// the CLI experiment output.
func FormatBytes(b int64) string {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
	)
	switch {
	case b >= gb:
		return fmt.Sprintf("%.2f GB", float64(b)/gb)
	case b >= mb:
		return fmt.Sprintf("%.2f MB", float64(b)/mb)
	case b >= kb:
		return fmt.Sprintf("%.2f KB", float64(b)/kb)
	default:
		return fmt.Sprintf("%d B", b)
	}
}
