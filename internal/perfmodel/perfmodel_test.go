package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
)

func TestProfileFor(t *testing.T) {
	for _, p := range []Platform{CPUOnly, CPUGPU} {
		prof, err := ProfileFor(p)
		if err != nil {
			t.Fatal(err)
		}
		if prof.Platform != p {
			t.Fatalf("platform mismatch: %v", prof.Platform)
		}
	}
	if _, err := ProfileFor("tpu"); err == nil {
		t.Fatal("want error for unknown platform")
	}
}

func TestNodeSpecsMatchPaper(t *testing.T) {
	cpu := CPUOnlyProfile()
	if cpu.Node.Cores != 64 || cpu.Node.MemBytes != 384<<30 || cpu.Node.GPUs != 0 {
		t.Fatalf("CPU-only node: %+v", cpu.Node)
	}
	gpu := CPUGPUProfile()
	if gpu.Node.Cores != 32 || gpu.Node.MemBytes != 120<<30 || gpu.Node.GPUs != 1 {
		t.Fatalf("CPU-GPU node: %+v", gpu.Node)
	}
}

func TestDenseLatencyGrowsWithFLOPs(t *testing.T) {
	p := CPUOnlyProfile()
	light, _ := model.MicroMLP(model.MLPLight)
	heavy, _ := model.MicroMLP(model.MLPHeavy)
	if p.DenseLatency(heavy) <= p.DenseLatency(light) {
		t.Fatal("heavier MLP must be slower")
	}
	if p.DenseQPS(heavy) >= p.DenseQPS(light) {
		t.Fatal("heavier MLP must sustain lower QPS")
	}
}

func TestGPUAcceleratesDense(t *testing.T) {
	cpu := CPUOnlyProfile()
	gpu := CPUGPUProfile()
	for _, cfg := range model.StateOfTheArt() {
		if gpu.DenseQPS(cfg) <= cpu.DenseQPS(cfg) {
			t.Fatalf("%s: GPU dense QPS %v <= CPU %v", cfg.Name, gpu.DenseQPS(cfg), cpu.DenseQPS(cfg))
		}
		// Sparse stays on the CPU for both platforms (Sec. II-B).
		if gpu.MonoSparseQPS(cfg) != cpu.MonoSparseQPS(cfg) {
			t.Fatalf("%s: sparse QPS must match across platforms", cfg.Name)
		}
	}
}

func TestFigure5Mismatch(t *testing.T) {
	// The core observation of Sec. III-A: dense and sparse QPS differ
	// substantially for every workload on both platforms.
	for _, plat := range []Platform{CPUOnly, CPUGPU} {
		prof, _ := ProfileFor(plat)
		for _, cfg := range model.StateOfTheArt() {
			d, s := prof.DenseQPS(cfg), prof.MonoSparseQPS(cfg)
			ratio := d / s
			if ratio > 0.85 && ratio < 1.18 {
				t.Errorf("%s/%s: dense %v vs sparse %v — no QPS mismatch", plat, cfg.Name, d, s)
			}
		}
	}
}

func TestFigure3LatencyShares(t *testing.T) {
	cpu := CPUOnlyProfile()
	gpu := CPUGPUProfile()
	cfg := model.RM1()
	cpuShare := float64(cpu.DenseLatency(cfg)) / float64(cpu.DenseLatency(cfg)+cpu.MonoSparseLatency(cfg))
	gpuShare := float64(gpu.DenseLatency(cfg)) / float64(gpu.DenseLatency(cfg)+gpu.MonoSparseLatency(cfg))
	// Paper: ~67% CPU-only, ~19% CPU-GPU. Require the calibrated shape.
	if cpuShare < 0.45 || cpuShare > 0.80 {
		t.Errorf("CPU-only dense share = %v, want ~0.67", cpuShare)
	}
	if gpuShare > 0.30 {
		t.Errorf("CPU-GPU dense share = %v, want ~0.19", gpuShare)
	}
	if gpuShare >= cpuShare {
		t.Error("GPU offload must shrink the dense share")
	}
}

func TestShardLatencyMonotonicity(t *testing.T) {
	p := CPUOnlyProfile()
	prev := time.Duration(0)
	for _, ns := range []float64{0, 1, 8, 32, 128} {
		lat := p.ShardLatency(32, ns, 32)
		if lat <= prev {
			t.Fatalf("latency must grow with gathers: ns=%v", ns)
		}
		prev = lat
	}
}

func TestFigure9DimensionOrdering(t *testing.T) {
	p := CPUOnlyProfile()
	for _, x := range []float64{1, 10, 100} {
		q32 := p.ShardQPS(32, x, 32)
		q128 := p.ShardQPS(32, x, 128)
		q512 := p.ShardQPS(32, x, 512)
		if !(q32 > q128 && q128 > q512) {
			t.Fatalf("x=%v: QPS ordering broken: %v %v %v", x, q32, q128, q512)
		}
	}
}

func TestModelWiseQPSIsBottleneck(t *testing.T) {
	p := CPUOnlyProfile()
	for _, cfg := range model.StateOfTheArt() {
		mw := p.ModelWiseQPS(cfg)
		want := math.Min(p.DenseQPS(cfg), p.MonoSparseQPS(cfg))
		if mw != want {
			t.Fatalf("%s: ModelWiseQPS = %v, want min %v", cfg.Name, mw, want)
		}
		if p.ModelWiseLatency(cfg) != p.DenseLatency(cfg)+p.MonoSparseLatency(cfg) {
			t.Fatalf("%s: latency must sum stages", cfg.Name)
		}
	}
}

func TestElasticLatencyExceedsStages(t *testing.T) {
	p := CPUOnlyProfile()
	cfg := model.RM1()
	shardLat := p.ShardLatency(cfg.BatchSize, 115, cfg.EmbeddingDim)
	e2e := p.ElasticLatency(cfg, 40, shardLat)
	if e2e <= p.DenseLatency(cfg)+shardLat {
		t.Fatal("elastic latency must include RPC and fan-out overheads")
	}
}

func TestRPCLatencyScalesWithPayload(t *testing.T) {
	p := CPUOnlyProfile()
	small := p.RPCLatency(1 << 10)
	big := p.RPCLatency(100 << 20)
	if big <= small {
		t.Fatal("RPC latency must grow with payload")
	}
	if small < p.RPCBase {
		t.Fatal("RPC latency must include the base cost")
	}
}

func TestColdStartScalesWithParams(t *testing.T) {
	p := CPUOnlyProfile()
	cfg := model.RM1()
	mono := p.ColdStart(cfg.DenseBytes() + cfg.SparseBytes())
	dense := p.ColdStart(cfg.DenseBytes())
	if mono <= dense {
		t.Fatal("loading the full model must take longer")
	}
	// Full RM1 (25.6 GB at 1 GB/s) should take tens of seconds.
	if mono < 20*time.Second || mono > 2*time.Minute {
		t.Fatalf("monolith cold start = %v, want tens of seconds", mono)
	}
}

func TestPerLookupGrowsWithDim(t *testing.T) {
	p := CPUOnlyProfile()
	if p.PerLookup(512) <= p.PerLookup(32) {
		t.Fatal("per-lookup cost must grow with dimension")
	}
}

// --- regression tests ---

func TestSweepGatherQPS(t *testing.T) {
	p := CPUOnlyProfile()
	pts := p.SweepGatherQPS(32, 32, []int{0, 10, 100})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].QPS <= pts[2].QPS {
		t.Fatal("QPS must decrease with gathers")
	}
	neg := p.SweepGatherQPS(32, 32, []int{-1, 5})
	if len(neg) != 1 {
		t.Fatal("negative gather counts must be skipped")
	}
}

func TestDefaultSweepCoversRange(t *testing.T) {
	xs := DefaultSweep(128)
	if xs[0] != 0 {
		t.Fatal("sweep must start at 0")
	}
	if xs[len(xs)-1] != 128 {
		t.Fatal("sweep must end at max")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatal("sweep must be increasing")
		}
	}
}

func TestPiecewiseLinearExactOnProfile(t *testing.T) {
	p := CPUOnlyProfile()
	pts := p.SweepGatherQPS(32, 32, DefaultSweep(128))
	m, err := NewPiecewiseLinearQPS(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Shard latency is affine in the gather count, so interpolation is
	// exact at and between profiled points.
	for _, x := range []float64{0, 3, 17, 64, 128, 99.5} {
		want := p.ShardQPS(32, x, 32)
		got := m.QPS(x)
		if math.Abs(got-want)/want > 1e-6 {
			t.Fatalf("QPS(%v) = %v, want %v", x, got, want)
		}
	}
	// Extrapolation beyond the profiled range stays sane.
	if q := m.QPS(256); q <= 0 || q >= m.QPS(128) {
		t.Fatalf("extrapolated QPS(256) = %v", q)
	}
	if m.Name() != "piecewise-linear" {
		t.Fatal("name mismatch")
	}
}

func TestPiecewiseLinearValidation(t *testing.T) {
	if _, err := NewPiecewiseLinearQPS(nil); err == nil {
		t.Fatal("want error for no points")
	}
	if _, err := NewPiecewiseLinearQPS([]ProfilePoint{{0, 10}}); err == nil {
		t.Fatal("want error for one point")
	}
	if _, err := NewPiecewiseLinearQPS([]ProfilePoint{{0, 10}, {1, -1}}); err == nil {
		t.Fatal("want error for negative QPS")
	}
	if _, err := NewPiecewiseLinearQPS([]ProfilePoint{{1, 10}, {1, 10}}); err == nil {
		t.Fatal("want error for duplicate x only")
	}
}

func TestLogLogQPS(t *testing.T) {
	p := CPUOnlyProfile()
	pts := p.SweepGatherQPS(32, 32, DefaultSweep(128))
	m, err := NewLogLogQPS(pts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "log-log" {
		t.Fatal("name mismatch")
	}
	// Must be monotone decreasing and within a reasonable error band.
	if m.QPS(1) <= m.QPS(100) {
		t.Fatal("log-log fit must decrease")
	}
	if e := MeanAbsRelError(m, pts); e > 0.5 {
		t.Fatalf("log-log error %v too large", e)
	}
	if _, err := NewLogLogQPS([]ProfilePoint{{1, 10}}); err == nil {
		t.Fatal("want error for one point")
	}
	if _, err := NewLogLogQPS([]ProfilePoint{{1, 10}, {1, 20}}); err == nil {
		t.Fatal("want degenerate-fit error")
	}
}

func TestBuildQPSModel(t *testing.T) {
	p := CPUOnlyProfile()
	m, err := p.BuildQPSModel(32, 32, 128)
	if err != nil {
		t.Fatal(err)
	}
	if e := MeanAbsRelError(m, p.SweepGatherQPS(32, 32, []int{2, 33, 77, 111})); e > 1e-6 {
		t.Fatalf("default regression error %v", e)
	}
}

func TestLatencyOf(t *testing.T) {
	if LatencyOf(100) != 10*time.Millisecond {
		t.Fatal("LatencyOf(100) != 10ms")
	}
	if LatencyOf(0) <= 0 {
		t.Fatal("zero QPS must map to a huge latency")
	}
}

// Property: the piecewise regression is monotone non-increasing in ns on
// profile-generated data.
func TestPiecewiseMonotoneProperty(t *testing.T) {
	p := CPUOnlyProfile()
	pts := p.SweepGatherQPS(32, 64, DefaultSweep(200))
	m, err := NewPiecewiseLinearQPS(pts)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw % 200)
		b := float64(bRaw % 200)
		if a > b {
			a, b = b, a
		}
		return m.QPS(a) >= m.QPS(b)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestElasticLatencyMonotoneInFanout(t *testing.T) {
	p := CPUOnlyProfile()
	cfg := model.RM1()
	shardLat := p.ShardLatency(cfg.BatchSize, 64, cfg.EmbeddingDim)
	prev := time.Duration(0)
	for _, contacted := range []int{1, 10, 40, 100} {
		lat := p.ElasticLatency(cfg, contacted, shardLat)
		if lat <= prev {
			t.Fatalf("latency not monotone in fan-out at %d shards", contacted)
		}
		prev = lat
	}
}

func TestShardLatencyScalesWithBatch(t *testing.T) {
	p := CPUOnlyProfile()
	if p.ShardLatency(64, 32, 32) <= p.ShardLatency(8, 32, 32) {
		t.Fatal("larger batches must take longer")
	}
}

func TestMonoSparseScalesWithPoolingNotTables(t *testing.T) {
	p := CPUOnlyProfile()
	base := model.RM1()
	morePool := base
	morePool.Pooling = 256
	if p.MonoSparseLatency(morePool) <= p.MonoSparseLatency(base) {
		t.Fatal("higher pooling must be slower")
	}
	// Tables run in parallel pipelines: only the bandwidth-contention
	// term grows with table count, so the increase is sub-linear.
	moreTables := base
	moreTables.NumTables = 32
	l1 := float64(p.MonoSparseLatency(base))
	l32 := float64(p.MonoSparseLatency(moreTables))
	if l32 <= l1 {
		t.Fatal("more tables must add bandwidth contention")
	}
	if l32 > 3.2*l1 {
		t.Fatalf("table scaling should be sub-linear: %v vs %v", l32, l1)
	}
}
