// Package perfmodel is the analytic stand-in for the paper's physical
// testbed (Sec. V-A): an 11-node dual-socket Xeon 6242 cluster (CPU-only)
// and a 20-node GKE n1-standard-32 + NVIDIA T4 cluster (CPU-GPU). It
// provides per-query latency estimates for dense MLP execution, monolithic
// embedding-layer execution, partitioned embedding-shard execution, RPC
// transfer, and pod cold-start — everything the deployment planners and the
// discrete-event simulation need.
//
// Constants are calibrated once (see DESIGN.md "Calibration notes") so the
// paper's relative behaviour holds: the dense/sparse QPS mismatch of
// Fig. 5, the ~67%/19% dense latency shares of Fig. 3(b), the reciprocal
// gather-QPS curve of Fig. 9, and the model-wise replica counts of Fig. 14.
package perfmodel

import (
	"fmt"
	"time"

	"repro/internal/model"
)

// Platform selects between the paper's two system architectures.
type Platform string

// The two platforms evaluated in Sec. VI.
const (
	CPUOnly Platform = "cpu-only"
	CPUGPU  Platform = "cpu-gpu"
)

// NodeSpec describes one physical server of the cluster.
type NodeSpec struct {
	Name     string
	Cores    int   // logical cores available for pods
	MemBytes int64 // DRAM capacity
	GPUs     int   // discrete accelerators
	// NetBytesPerSec is the NIC bandwidth available to RPC traffic.
	NetBytesPerSec float64
}

// Profile is a calibrated hardware profile for one platform.
type Profile struct {
	Platform Platform
	Node     NodeSpec

	// Dense executor (CPU path): per-query latency is
	// DenseOverhead + FLOPs/DenseRate.
	DenseOverhead time.Duration
	DenseRate     float64 // effective FLOP/s of a dense-shard container

	// Dense executor (GPU path, CPU-GPU platform only).
	GPUDenseOverhead time.Duration // PCIe transfer + kernel launch
	GPUDenseRate     float64       // effective FLOP/s on the accelerator

	// Embedding gather: each row gather costs
	// PerLookupFixed + rowBytes/RowGatherBW (random-access DRAM reads
	// through the framework's EmbeddingBag path).
	PerLookupFixed time.Duration
	RowGatherBW    float64 // bytes/sec streamed per gather pipeline

	// ShardOverhead is the fixed per-query cost of one embedding-shard
	// container (request handling, bucket reassembly).
	ShardOverhead time.Duration
	// MonoSparseOverhead is the fixed per-query cost of the monolithic
	// embedding layer (all tables dispatched in parallel across cores).
	MonoSparseOverhead time.Duration
	// EffMemBW is the node-level effective memory bandwidth shared by
	// concurrent per-table gather pipelines; it adds a contention term
	// proportional to the total bytes a query reads.
	EffMemBW float64

	// RPC: one call costs RPCBase + bytes/Node.NetBytesPerSec; a dense
	// shard contacting S embedding shards additionally pays
	// FanoutPerShard per contacted shard (bucketization, serialisation,
	// connection multiplexing).
	RPCBase        time.Duration
	FanoutPerShard time.Duration

	// MinMemAlloc is the minimally required memory of any container
	// (code, buffers — Algorithm 1 line 3).
	MinMemAlloc int64

	// Cold start: a new pod becomes ready after ColdStartBase +
	// parameterBytes/ModelLoadBW (image pull amortised, parameter load
	// dominated by storage bandwidth).
	ColdStartBase time.Duration
	ModelLoadBW   float64 // bytes/sec parameter loading
}

// CPUOnlyProfile models one compute node of the paper's CPU-only cluster:
// dual-socket Xeon 6242 (64 logical cores), 384 GB DRAM, 10 Gbps network.
func CPUOnlyProfile() *Profile {
	return &Profile{
		Platform: CPUOnly,
		Node: NodeSpec{
			Name:           "xeon6242-dual",
			Cores:          64,
			MemBytes:       384 << 30,
			GPUs:           0,
			NetBytesPerSec: 10e9 / 8,
		},
		DenseOverhead:      35 * time.Millisecond,
		DenseRate:          0.8e9,
		GPUDenseOverhead:   0,
		GPUDenseRate:       0,
		PerLookupFixed:     1 * time.Microsecond,
		RowGatherBW:        32e6,
		ShardOverhead:      2 * time.Millisecond,
		MonoSparseOverhead: 10 * time.Millisecond,
		EffMemBW:           1.5e9,
		RPCBase:            1 * time.Millisecond,
		FanoutPerShard:     1 * time.Millisecond,
		MinMemAlloc:        512 << 20,
		ColdStartBase:      8 * time.Second,
		ModelLoadBW:        1 << 30,
	}
}

// CPUGPUProfile models one node of the paper's GKE cluster:
// n1-standard-32 (32 vCPU, 120 GB) with one NVIDIA T4, 32 Gbps network.
func CPUGPUProfile() *Profile {
	return &Profile{
		Platform: CPUGPU,
		Node: NodeSpec{
			Name:           "n1-standard-32-t4",
			Cores:          32,
			MemBytes:       120 << 30,
			GPUs:           1,
			NetBytesPerSec: 32e9 / 8,
		},
		DenseOverhead:      35 * time.Millisecond,
		DenseRate:          0.8e9,
		GPUDenseOverhead:   4 * time.Millisecond,
		GPUDenseRate:       30e9,
		PerLookupFixed:     1 * time.Microsecond,
		RowGatherBW:        32e6,
		ShardOverhead:      2 * time.Millisecond,
		MonoSparseOverhead: 10 * time.Millisecond,
		EffMemBW:           1.5e9,
		RPCBase:            800 * time.Microsecond,
		FanoutPerShard:     1 * time.Millisecond,
		MinMemAlloc:        512 << 20,
		ColdStartBase:      8 * time.Second,
		ModelLoadBW:        1 << 30,
	}
}

// ProfileFor returns the default profile for a platform.
func ProfileFor(p Platform) (*Profile, error) {
	switch p {
	case CPUOnly:
		return CPUOnlyProfile(), nil
	case CPUGPU:
		return CPUGPUProfile(), nil
	default:
		return nil, fmt.Errorf("perfmodel: unknown platform %q", p)
	}
}

// PerLookup returns the cost of gathering one embedding row of the given
// dimension (Fig. 9's dimension sensitivity: larger rows stream more bytes
// per gather).
func (p *Profile) PerLookup(dim int) time.Duration {
	bytes := float64(dim * 4)
	return p.PerLookupFixed + time.Duration(bytes/p.RowGatherBW*float64(time.Second))
}

// DenseLatency returns the per-query latency of the dense DNN layers for
// cfg on this platform (GPU path when available — Sec. IV-A: CPU-GPU
// systems service dense shards with GPU-centric containers).
func (p *Profile) DenseLatency(cfg model.Config) time.Duration {
	flops := float64(cfg.DenseFLOPsPerQuery())
	if p.Platform == CPUGPU && p.GPUDenseRate > 0 {
		return p.GPUDenseOverhead + time.Duration(flops/p.GPUDenseRate*float64(time.Second))
	}
	return p.DenseOverhead + time.Duration(flops/p.DenseRate*float64(time.Second))
}

// DenseQPS returns the sustainable throughput of one dense-shard replica.
func (p *Profile) DenseQPS(cfg model.Config) float64 {
	return float64(time.Second) / float64(p.DenseLatency(cfg))
}

// MonoSparseLatency returns the per-query latency of the full embedding
// layer inside a monolithic server: per-table gather pipelines run in
// parallel across cores (the per-table term), plus a node-bandwidth
// contention term over the total bytes read.
func (p *Profile) MonoSparseLatency(cfg model.Config) time.Duration {
	perTableLookups := float64(cfg.BatchSize) * float64(cfg.Pooling)
	gather := time.Duration(perTableLookups * float64(p.PerLookup(cfg.EmbeddingDim)))
	contention := time.Duration(float64(cfg.SparseBytesReadPerQuery()) / p.EffMemBW * float64(time.Second))
	return p.MonoSparseOverhead + gather + contention
}

// MonoSparseQPS returns the sustainable embedding-layer throughput of one
// monolithic replica.
func (p *Profile) MonoSparseQPS(cfg model.Config) float64 {
	return float64(time.Second) / float64(p.MonoSparseLatency(cfg))
}

// ShardLatency returns the per-query latency of one embedding-shard
// container that gathers nsPerInput vectors per input (n_s in Algorithm 1)
// of the given dimension, for queries of batchSize inputs.
func (p *Profile) ShardLatency(batchSize int, nsPerInput float64, dim int) time.Duration {
	lookups := float64(batchSize) * nsPerInput
	gather := time.Duration(lookups * float64(p.PerLookup(dim)))
	bytes := lookups * float64(dim*4)
	contention := time.Duration(bytes / p.EffMemBW * float64(time.Second))
	return p.ShardOverhead + gather + contention
}

// ShardQPS returns the sustainable throughput of one embedding-shard
// replica gathering nsPerInput vectors per input.
func (p *Profile) ShardQPS(batchSize int, nsPerInput float64, dim int) float64 {
	return float64(time.Second) / float64(p.ShardLatency(batchSize, nsPerInput, dim))
}

// RPCLatency returns the cost of one RPC carrying payload bytes.
func (p *Profile) RPCLatency(payloadBytes int64) time.Duration {
	return p.RPCBase + time.Duration(float64(payloadBytes)/p.Node.NetBytesPerSec*float64(time.Second))
}

// ModelWiseQPS returns the throughput of one model-wise replica: the
// pipeline is bounded by its slowest stage (Fig. 4's 50-vs-100 example).
func (p *Profile) ModelWiseQPS(cfg model.Config) float64 {
	d := p.DenseQPS(cfg)
	s := p.MonoSparseQPS(cfg)
	if s < d {
		return s
	}
	return d
}

// ModelWiseLatency returns the end-to-end per-query latency of one
// model-wise replica (stages traversed serially).
func (p *Profile) ModelWiseLatency(cfg model.Config) time.Duration {
	return p.DenseLatency(cfg) + p.MonoSparseLatency(cfg)
}

// ElasticLatency returns the end-to-end latency of a sharded query: dense
// compute plus the slowest embedding shard (fan-out is concurrent) plus
// request/response RPCs and the per-shard fan-out cost, with
// contactedShards the number of embedding shards the dense shard calls and
// maxShardLatency their slowest per-query latency.
func (p *Profile) ElasticLatency(cfg model.Config, contactedShards int, maxShardLatency time.Duration) time.Duration {
	// Request: index/offset arrays; response: pooled vectors.
	reqBytes := int64(cfg.BatchSize) * int64(cfg.Pooling) * 8
	respBytes := int64(cfg.BatchSize) * int64(cfg.EmbeddingDim) * 4
	rpc := p.RPCLatency(reqBytes) + p.RPCLatency(respBytes)
	fanout := time.Duration(contactedShards) * p.FanoutPerShard
	return p.DenseLatency(cfg) + maxShardLatency + rpc + fanout
}

// ColdStart returns how long a new pod takes to become ready given its
// parameter footprint (Sec. VI-D: model-wise replicas respond slowly
// because loading the full parameters takes long).
func (p *Profile) ColdStart(paramBytes int64) time.Duration {
	return p.ColdStartBase + time.Duration(float64(paramBytes)/p.ModelLoadBW*float64(time.Second))
}
